#!/usr/bin/env bash
# One-command pipeline: tier-1 verify (configure + build + ctest), the same
# test suite under ASan+UBSan, plus a bench smoke run whose JSON artifacts
# are validated. Mirrors the "Tier-1 verify" line in ROADMAP.md.
set -euo pipefail

cd "$(dirname "$0")/.."

cmake -B build -S .
cmake --build build -j
(cd build && ctest --output-on-failure -j"$(nproc)")

# Sanitizer pass: the full unit/integration suite under AddressSanitizer +
# UndefinedBehaviorSanitizer (fatal on first finding).
cmake -B build-asan -S . -DOMEGA_SANITIZE=address,undefined
cmake --build build-asan -j
(cd build-asan && ctest --output-on-failure -j"$(nproc)")

# Bench smoke: a fast sanity pass over the figure machinery, then the
# extension figures (BENCH_adaptive.json + BENCH_perlink.json +
# BENCH_hierarchy.json + BENCH_roster.json at the repo root). fig12 is also
# the smoke-mode run of the 3-tier harness scenario (regions -> zones ->
# global at up to 500 nodes).
OMEGA_BENCH_HOURS="${OMEGA_BENCH_HOURS:-0.2}" ./build/smoke_check
OMEGA_BENCH_HOURS="${OMEGA_BENCH_HOURS:-0.2}" ./build/fig9_adaptive
OMEGA_BENCH_HOURS="${OMEGA_BENCH_HOURS:-0.2}" ./build/fig10_perlink
OMEGA_BENCH_HOURS="${OMEGA_BENCH_HOURS:-0.2}" ./build/fig11_hierarchy
OMEGA_BENCH_HOURS="${OMEGA_BENCH_HOURS:-0.2}" ./build/fig12_roster_scope

# Adversarial network plane (DESIGN.md §11): price each fault class on the
# 120-node three-tier roster (BENCH_adversary.json, gated below), and pin
# the no-adversary golden fingerprints explicitly — an empty fault_script
# must leave the simulated wire byte-identical. The adversary invariant
# battery itself (tests/adversary/) runs 3 seeds in-process per test and is
# part of both ctest passes above, including the ASan+UBSan one.
OMEGA_BENCH_HOURS="${OMEGA_BENCH_HOURS:-0.2}" ./build/fig15_adversary
(cd build && ctest -R harness_test_golden_trace --output-on-failure)

# Hot-path microbench: pure datagram churn through the zero-copy simulated
# network (DESIGN.md §9). Writes BENCH_sim_hotpath.json; the allocation gate
# below fails CI the moment a steady-state allocation sneaks back into the
# multicast -> admit -> deliver path.
./build/sim_hotpath

# Live scale-out runtime smoke (DESIGN.md §10): real UDP sockets on shared
# epoll loops, batched vs per-datagram, at 32 and 128 hosted services.
# Writes BENCH_live.json (validated and gated below); a non-zero exit means
# some group failed to agree on a leader. Runs after fig12 so the sim
# reference cell can be embedded.
OMEGA_LIVE_SERVICES="${OMEGA_LIVE_SERVICES:-32,128}" \
OMEGA_LIVE_SECONDS="${OMEGA_LIVE_SECONDS:-2}" \
OMEGA_LIVE_WARMUP="${OMEGA_LIVE_WARMUP:-1.5}" \
  ./build/fig14_live

# The hierarchical-election example is a two-level failover demo with a
# pass/fail exit code: run it as part of the smoke set.
./build/example_hierarchical_election > /dev/null

# Metrics-exposition smoke: render the Prometheus text format from a live
# registry and re-parse it, plus a traced experiment's JSONL dump.
./build/obs_smoke

# Live-scrape smoke: run the real-UDP example with its embedded HTTP
# endpoint, scrape /metrics and /trace from the running process, and push
# the scraped /metrics page back through the exposition parser (obs_smoke
# file mode). The example itself enforces the real-UDP causal forensics
# gate (>= 95% of failover events linked) via its exit code.
if command -v python3 > /dev/null; then
  rm -f ci_live_port.txt ci_live_metrics.txt ci_live_trace.jsonl
  OMEGA_LIVE_HTTP_PORT=0 OMEGA_LIVE_LINGER_MS=4000 \
    ./build/example_udp_live > ci_udp_live.log 2>&1 &
  live_pid=$!
  # The port line appears as soon as the endpoint binds; the post-failover
  # snapshots are published ~6.5 s in, within the linger window.
  for _ in $(seq 1 100); do
    grep -oE 'serving /metrics and /trace on 127\.0\.0\.1:[0-9]+' \
      ci_udp_live.log | grep -oE '[0-9]+$' > ci_live_port.txt && break
    sleep 0.1
  done
  sleep 7
  live_port="$(cat ci_live_port.txt)"
  python3 - "$live_port" <<'PY'
import sys, urllib.request
port = sys.argv[1]
for path, out in (("/metrics", "ci_live_metrics.txt"),
                  ("/trace", "ci_live_trace.jsonl")):
    with urllib.request.urlopen(f"http://127.0.0.1:{port}{path}", timeout=5) as r:
        body = r.read()
        assert r.status == 200 and body, (path, r.status, len(body))
        open(out, "wb").write(body)
lines = open("ci_live_trace.jsonl", "rb").read().splitlines()
assert lines and all(l.startswith(b"{") and l.endswith(b"}") for l in lines), \
    "scraped /trace is not JSONL"
print(f"ci.sh: scraped live /metrics and /trace ({len(lines)} trace events)")
PY
  wait "$live_pid" \
    || { echo "ci.sh: example_udp_live failed (see ci_udp_live.log)" >&2; exit 1; }
  ./build/obs_smoke ci_live_metrics.txt
  rm -f ci_live_port.txt ci_live_metrics.txt ci_live_trace.jsonl ci_udp_live.log
else
  echo "ci.sh: python3 unavailable, skipping the live-scrape smoke" >&2
fi

# Every emitted bench artifact must be parseable JSON: the figures are
# consumed by tooling, so a truncated or malformed write fails here, not
# downstream.
if command -v python3 > /dev/null; then
  for f in BENCH_*.json; do
    [ -e "$f" ] || continue
    python3 -m json.tool "$f" > /dev/null \
      || { echo "ci.sh: invalid JSON in $f" >&2; exit 1; }
    echo "ci.sh: $f parses"
  done
  # Roster scoping must beat cluster-wide HELLO on total wire traffic at
  # every 300+ roster of the 3-tier sweep; the observability plane — with
  # causal wire stamping enabled — must not perturb the protocol (msgs/s
  # within 3% of the pre-instrumentation baseline on the stock smoke
  # setting) and must attribute >= 95% of every measured re-election
  # interval to a named phase.
  OMEGA_BENCH_HOURS="${OMEGA_BENCH_HOURS:-0.2}" \
  OMEGA_BENCH_SEED="${OMEGA_BENCH_SEED:-42}" \
  python3 - <<'PY'
import json, os, sys
with open("BENCH_roster.json") as fh:
    data = json.load(fh)
failed = False
for row in data["rosters"]:
    if row["nodes"] < 300:
        continue
    scoped = row["scoped3"]["messages_per_s"]
    cluster = row["cluster3"]["messages_per_s"]
    if scoped >= cluster:
        print(f"ci.sh: scoped msgs/s {scoped} >= cluster-wide {cluster} "
              f"at {row['nodes']} nodes", file=sys.stderr)
        failed = True
    else:
        print(f"ci.sh: roster scoping at {row['nodes']} nodes: "
              f"{scoped:.0f} vs {cluster:.0f} msgs/s "
              f"({cluster / max(scoped, 1e-9):.1f}x)")

# Instrumentation-overhead gate: the simulator is deterministic, so on the
# stock smoke setting (0.2 h window, seed 42) the 120-node scoped3 traffic
# must match the value measured before the observability hooks landed. A
# drift beyond 3% means an instrumentation site changed protocol behaviour.
BASELINE_120_SCOPED3 = 6264.6  # msgs/s, pre-observability, hours=0.2 seed=42
if (os.environ.get("OMEGA_BENCH_HOURS") == "0.2"
        and os.environ.get("OMEGA_BENCH_SEED") == "42"):
    row120 = next((r for r in data["rosters"] if r["nodes"] == 120), None)
    if row120 is None:
        print("ci.sh: no 120-node row in BENCH_roster.json", file=sys.stderr)
        failed = True
    else:
        got = row120["scoped3"]["messages_per_s"]
        drift = abs(got - BASELINE_120_SCOPED3) / BASELINE_120_SCOPED3
        if drift > 0.03:
            print(f"ci.sh: instrumentation overhead gate: 120-node scoped3 "
                  f"{got:.1f} msgs/s drifts {drift * 100:.1f}% from the "
                  f"pre-instrumentation baseline {BASELINE_120_SCOPED3}",
                  file=sys.stderr)
            failed = True
        else:
            print(f"ci.sh: overhead gate: {got:.1f} msgs/s vs baseline "
                  f"{BASELINE_120_SCOPED3} ({drift * 100:.2f}% drift)")
else:
    print("ci.sh: non-stock bench window/seed, skipping the overhead gate")

# Zero-allocation gate: the hot-path microbench must report no heap
# allocations during its measurement window. Any regression here means a
# per-datagram copy or callback-box allocation crept back in (DESIGN.md §9).
with open("BENCH_sim_hotpath.json") as fh:
    hot = json.load(fh)
if hot["allocations"] != 0 or not hot["zero_alloc_steady_state"]:
    print(f"ci.sh: hot path allocated {hot['allocations']} times over "
          f"{hot['datagrams_delivered']} datagrams "
          f"({hot['allocs_per_datagram']:.6f}/datagram)", file=sys.stderr)
    failed = True
else:
    print(f"ci.sh: zero-alloc gate: {hot['datagrams_delivered']} datagrams, "
          f"0 allocations, {hot['events_per_s']:.0f} events/s")

# Wall-clock regression gate: on the stock smoke setting the three 120-node
# fig12 cells are deterministic workloads, so their summed wall clock tracks
# raw simulator throughput. More than 20% above the committed baseline means
# the hot path got slower (the threshold absorbs machine-to-machine noise;
# re-baseline WALL_BASELINE_120_S when hardware changes).
WALL_BASELINE_120_S = 10.9  # sum over 120-node cells, hours=0.2 seed=42
if (os.environ.get("OMEGA_BENCH_HOURS") == "0.2"
        and os.environ.get("OMEGA_BENCH_SEED") == "42"):
    row120 = next((r for r in data["rosters"] if r["nodes"] == 120), None)
    if row120 is None:
        print("ci.sh: no 120-node row for the wall-clock gate", file=sys.stderr)
        failed = True
    else:
        wall = sum(row120[c]["wall_clock_s"]
                   for c in ("cluster3", "scoped3", "two_tier"))
        if wall > WALL_BASELINE_120_S * 1.20:
            print(f"ci.sh: wall-clock gate: 120-node cells took {wall:.1f}s, "
                  f">20% above the {WALL_BASELINE_120_S}s baseline",
                  file=sys.stderr)
            failed = True
        else:
            print(f"ci.sh: wall-clock gate: 120-node cells {wall:.1f}s "
                  f"(baseline {WALL_BASELINE_120_S}s)")
else:
    print("ci.sh: non-stock bench window/seed, skipping the wall-clock gate")

# Forensics gate: every cell that measured re-elections must attribute at
# least 95% of the mean outage window to detection/dissemination/election.
for row in data["rosters"]:
    for cell in ("cluster3", "scoped3", "two_tier"):
        c = row[cell]
        if c["reelection_samples"] == 0:
            continue
        frac = c["latency_budget"]["attributed_fraction_mean"]
        if frac < 0.95:
            print(f"ci.sh: forensics attributed only {frac * 100:.1f}% of "
                  f"the outage at {row['nodes']}/{cell}", file=sys.stderr)
            failed = True

# Adversary-plane gates (BENCH_adversary.json, DESIGN.md §11). Schema
# first: one cell per fault class with the full counter set. Then the
# forensics gate the ISSUE pins: under EVERY fault class at least 95% of
# global-leader outages must be attributed — to a tier failover or to the
# injected fault via the harness's fault oracle. Each cell induces leader
# crashes, so outages_total must be > 0 for the fraction to mean anything.
with open("BENCH_adversary.json") as fh:
    adv = json.load(fh)
ADV_CLASSES = {"none", "cut", "partition", "flap", "dup_reorder", "skew"}
ADV_KEYS = {"fault", "messages_per_s", "bytes_per_s", "reelection_mean_s",
            "reelection_samples", "dropped_cut", "dropped_partition",
            "dropped_flap", "duplicated", "reorder_delayed", "outages_total",
            "outages_blamed_regional", "outages_blamed_global",
            "outages_blamed_fault", "outages_unattributed",
            "attribution_fraction", "wall_clock_s", "events_executed"}
adv_cells = {c.get("fault"): c for c in adv.get("cells", [])}
missing_classes = ADV_CLASSES - adv_cells.keys()
if missing_classes:
    print(f"ci.sh: BENCH_adversary.json lacks fault classes "
          f"{sorted(missing_classes)}", file=sys.stderr)
    failed = True
for fault, c in sorted(adv_cells.items()):
    missing = ADV_KEYS - c.keys()
    if missing:
        print(f"ci.sh: BENCH_adversary.json cell '{fault}' missing "
              f"{sorted(missing)}", file=sys.stderr)
        failed = True
        continue
    if c["outages_total"] == 0:
        print(f"ci.sh: adversary cell '{fault}' measured no global-leader "
              f"outage — the attribution gate would be vacuous",
              file=sys.stderr)
        failed = True
    elif c["attribution_fraction"] < 0.95:
        print(f"ci.sh: adversary forensics attributed only "
              f"{c['attribution_fraction'] * 100:.1f}% of outages under "
              f"'{fault}' (need >= 95%)", file=sys.stderr)
        failed = True
    else:
        print(f"ci.sh: adversary gate '{fault}': "
              f"{c['outages_total']} outages, "
              f"{c['attribution_fraction'] * 100:.0f}% attributed, "
              f"re-election {c['reelection_mean_s']:.2f}s, "
              f"{c['messages_per_s']:.0f} msgs/s")
none_cell = adv_cells.get("none")
if none_cell is not None:
    injected = sum(none_cell[k] for k in ("dropped_cut", "dropped_partition",
                                          "dropped_flap", "duplicated",
                                          "reorder_delayed"))
    if injected != 0:
        print(f"ci.sh: baseline adversary cell reports {injected} injected "
              f"faults — no adversary should be installed", file=sys.stderr)
        failed = True

# Live-runtime gates (BENCH_live.json, DESIGN.md §10). Schema first: the
# artifact is consumed by tooling, so every cell must carry the full set of
# counters. Then the two semantic gates: every cell's groups agreed on a
# leader, and at equal protocol traffic the batched runtime must move a
# datagram in at least 5x fewer syscalls than the per-datagram baseline.
with open("BENCH_live.json") as fh:
    live = json.load(fh)
CELL_KEYS = {"services", "mode", "elapsed_s", "msgs_per_s", "syscalls_per_msg",
             "cpu_ms_per_node_per_s", "leaders_ok", "datagrams_sent",
             "datagrams_received", "bytes_sent", "syscalls", "sendmmsg_calls",
             "sendto_calls", "recvmmsg_calls", "recvfrom_calls", "epoll_waits",
             "send_errors", "queue_drops"}
cells = live.get("cells", [])
if not cells:
    print("ci.sh: BENCH_live.json has no cells", file=sys.stderr)
    failed = True
by_n = {}
for cell in cells:
    missing = CELL_KEYS - cell.keys()
    if missing:
        print(f"ci.sh: BENCH_live.json cell missing {sorted(missing)}",
              file=sys.stderr)
        failed = True
        continue
    if not cell["leaders_ok"]:
        print(f"ci.sh: live run at {cell['services']} services "
              f"({cell['mode']}) ended without leader agreement",
              file=sys.stderr)
        failed = True
    by_n.setdefault(cell["services"], {})[cell["mode"]] = cell
for n, modes in sorted(by_n.items()):
    if "batched" not in modes or "per_datagram" not in modes:
        print(f"ci.sh: BENCH_live.json lacks a batched/per_datagram pair "
              f"at {n} services", file=sys.stderr)
        failed = True
        continue
    batched = modes["batched"]["syscalls_per_msg"]
    base = modes["per_datagram"]["syscalls_per_msg"]
    ratio = base / max(batched, 1e-9)
    if ratio < 5.0:
        print(f"ci.sh: syscall batching gate: only {ratio:.2f}x fewer "
              f"syscalls/msg at {n} services (need >= 5x)", file=sys.stderr)
        failed = True
    else:
        print(f"ci.sh: syscall batching gate at {n} services: "
              f"{base:.3f} -> {batched:.3f} syscalls/msg ({ratio:.1f}x), "
              f"{modes['batched']['msgs_per_s']:.0f} msgs/s live")
sys.exit(1 if failed else 0)
PY
else
  echo "ci.sh: python3 unavailable, skipping BENCH_*.json validation" >&2
fi

echo "ci.sh: all green"
