#!/usr/bin/env bash
# One-command pipeline: tier-1 verify (configure + build + ctest), the same
# test suite under ASan+UBSan, plus a bench smoke run whose JSON artifacts
# are validated. Mirrors the "Tier-1 verify" line in ROADMAP.md.
set -euo pipefail

cd "$(dirname "$0")/.."

cmake -B build -S .
cmake --build build -j
(cd build && ctest --output-on-failure -j"$(nproc)")

# Sanitizer pass: the full unit/integration suite under AddressSanitizer +
# UndefinedBehaviorSanitizer (fatal on first finding).
cmake -B build-asan -S . -DOMEGA_SANITIZE=address,undefined
cmake --build build-asan -j
(cd build-asan && ctest --output-on-failure -j"$(nproc)")

# Bench smoke: a fast sanity pass over the figure machinery, then the
# extension figures (BENCH_adaptive.json + BENCH_perlink.json +
# BENCH_hierarchy.json + BENCH_roster.json at the repo root). fig12 is also
# the smoke-mode run of the 3-tier harness scenario (regions -> zones ->
# global at up to 500 nodes).
OMEGA_BENCH_HOURS="${OMEGA_BENCH_HOURS:-0.2}" ./build/smoke_check
OMEGA_BENCH_HOURS="${OMEGA_BENCH_HOURS:-0.2}" ./build/fig9_adaptive
OMEGA_BENCH_HOURS="${OMEGA_BENCH_HOURS:-0.2}" ./build/fig10_perlink
OMEGA_BENCH_HOURS="${OMEGA_BENCH_HOURS:-0.2}" ./build/fig11_hierarchy
OMEGA_BENCH_HOURS="${OMEGA_BENCH_HOURS:-0.2}" ./build/fig12_roster_scope

# The hierarchical-election example is a two-level failover demo with a
# pass/fail exit code: run it as part of the smoke set.
./build/example_hierarchical_election > /dev/null

# Every emitted bench artifact must be parseable JSON: the figures are
# consumed by tooling, so a truncated or malformed write fails here, not
# downstream.
if command -v python3 > /dev/null; then
  for f in BENCH_*.json; do
    [ -e "$f" ] || continue
    python3 -m json.tool "$f" > /dev/null \
      || { echo "ci.sh: invalid JSON in $f" >&2; exit 1; }
    echo "ci.sh: $f parses"
  done
  # Roster scoping must beat cluster-wide HELLO on total wire traffic at
  # every 300+ roster of the 3-tier sweep.
  python3 - <<'PY'
import json, sys
with open("BENCH_roster.json") as fh:
    data = json.load(fh)
failed = False
for row in data["rosters"]:
    if row["nodes"] < 300:
        continue
    scoped = row["scoped3"]["messages_per_s"]
    cluster = row["cluster3"]["messages_per_s"]
    if scoped >= cluster:
        print(f"ci.sh: scoped msgs/s {scoped} >= cluster-wide {cluster} "
              f"at {row['nodes']} nodes", file=sys.stderr)
        failed = True
    else:
        print(f"ci.sh: roster scoping at {row['nodes']} nodes: "
              f"{scoped:.0f} vs {cluster:.0f} msgs/s "
              f"({cluster / max(scoped, 1e-9):.1f}x)")
sys.exit(1 if failed else 0)
PY
else
  echo "ci.sh: python3 unavailable, skipping BENCH_*.json validation" >&2
fi

echo "ci.sh: all green"
