#!/usr/bin/env bash
# One-command pipeline: tier-1 verify (configure + build + ctest) plus a
# bench smoke run. Mirrors the "Tier-1 verify" line in ROADMAP.md.
set -euo pipefail

cd "$(dirname "$0")/.."

cmake -B build -S .
cmake --build build -j
(cd build && ctest --output-on-failure -j"$(nproc)")

# Bench smoke: a fast sanity pass over the figure machinery, then the
# adaptive-tuning figure (writes BENCH_adaptive.json at the repo root).
OMEGA_BENCH_HOURS="${OMEGA_BENCH_HOURS:-0.2}" ./build/smoke_check
OMEGA_BENCH_HOURS="${OMEGA_BENCH_HOURS:-0.2}" ./build/fig9_adaptive

echo "ci.sh: all green"
