// Figure 9 (extension, not in the paper) — static vs adaptive tuning under
// a degrading link.
//
// The paper configures the failure detector once; this figure measures what
// online re-configuration buys. Setup: the cluster starts on a LAN, then
// the network degrades mid-run in two steps (moderate loss/delay, then WAN
// loss/delay). Two tuning policies run the *same* scenario:
//
//   frozen   — the cold-start operating point (eta = T^U_D/4,
//              delta = 3 T^U_D/4) pinned for the whole run: the static
//              baseline a deployment gets if it never re-tunes.
//   adaptive — the adaptation engine: link tracker + damped retuner with
//              the min-detection objective under the cold-start rate
//              budget. On the LAN it shrinks delta far below the frozen
//              one (same heartbeat rate, much faster detection); as the
//              link degrades it re-tunes delta back up just enough to keep
//              the QoS, instead of either over-paying forever (frozen
//              delta) or violating accuracy.
//
// Expected result: adaptive achieves a lower average leader recovery time
// at an equal-or-lower heartbeat rate, with retunes bounded by the dwell
// timer. Machine-readable output: BENCH_adaptive.json (path overridable
// via OMEGA_BENCH_JSON).
#include <fstream>
#include <iostream>
#include <string>

#include "bench_support.hpp"

using namespace omega;

namespace {

/// An interactive-application QoS class: 1 s detection bound, at most one
/// FD mistake per link every 2 h, 99.99% query accuracy. (The paper's
/// 100-day recurrence leaves no feasible room to trade; Figure 8 already
/// sweeps QoS classes.)
fd::qos_spec bench_qos() {
  fd::qos_spec qos;
  qos.detection_time = sec(1);
  qos.mistake_recurrence =
      std::chrono::duration_cast<omega::duration>(std::chrono::hours(2));
  qos.query_accuracy = 0.9999;
  return qos;
}

harness::scenario make_scenario(adaptive::tuning_mode mode, double hours) {
  harness::scenario sc;
  sc.name = std::string("fig9-") + std::string(adaptive::to_string(mode));
  sc.alg = election::algorithm::omega_lc;
  sc.qos = bench_qos();
  sc.links = net::link_profile::lan();
  sc.adaptive.mode = mode;
  sc.adaptive.retuner.objective = adaptive::tuning_objective::min_detection;
  sc.measured = from_seconds(hours * 3600.0);
  sc.seed = omega::bench::bench_seed() * 1000003u;  // same seed for both modes
  // Faster churn than the paper default (300 s mean uptime instead of
  // 600 s): leader crashes are the Tr sample source, and the comparison
  // needs enough of them in every link phase.
  sc.churn.mean_uptime = sec(300);

  // Degrading link: LAN for the first third, moderate loss/delay for the
  // second, WAN-grade for the last.
  const duration third = sc.measured / 3;
  sc.link_phases.push_back({sc.warmup + third, net::link_profile::lossy(msec(10), 0.01)});
  sc.link_phases.push_back({sc.warmup + 2 * third, net::link_profile::lossy(msec(50), 0.01)});
  return sc;
}

std::string json_cell(const harness::experiment_result& r) {
  std::string s = "{";
  s += "\"tr_mean_s\": " + harness::fmt_double(r.tr_mean_s, 4);
  s += ", \"tr_ci95_s\": " + harness::fmt_double(r.tr_ci95_s, 4);
  s += ", \"tr_samples\": " + std::to_string(r.tr_samples);
  s += ", \"alive_per_node_per_s\": " + harness::fmt_double(r.alive_per_node_per_second, 3);
  s += ", \"kb_per_s\": " + harness::fmt_double(r.kb_per_second, 3);
  s += ", \"lambda_u_per_h\": " + harness::fmt_double(r.lambda_u, 3);
  s += ", \"p_leader\": " + harness::fmt_double(r.p_leader, 6);
  s += ", \"retunes\": " + std::to_string(r.retunes);
  s += ", \"wall_clock_s\": " + harness::fmt_double(r.wall_clock_s, 3);
  s += ", \"events_executed\": " + std::to_string(r.events_executed);
  s += "}";
  return s;
}

}  // namespace

int main() {
  const double hours = omega::bench::bench_hours();

  const auto frozen_sc = make_scenario(adaptive::tuning_mode::frozen, hours);
  const auto adaptive_sc = make_scenario(adaptive::tuning_mode::adaptive, hours);
  const auto frozen = omega::bench::run_cell(frozen_sc);
  const auto adaptive_r = omega::bench::run_cell(adaptive_sc);

  harness::table t(
      "Figure 9: static (frozen cold-start) vs adaptive tuning, degrading link");
  t.headers({"policy", "Tr (s)", "samples", "ALIVE/node/s", "kB/s", "lambda_u (/h)",
             "P_leader", "retunes"});
  const auto row = [&](const char* label, const harness::experiment_result& r) {
    t.row({label, harness::fmt_ci(r.tr_mean_s, r.tr_ci95_s, 3),
           std::to_string(r.tr_samples),
           harness::fmt_double(r.alive_per_node_per_second, 2),
           harness::fmt_double(r.kb_per_second, 2),
           harness::fmt_double(r.lambda_u, 2),
           harness::fmt_percent(r.p_leader, 3), std::to_string(r.retunes)});
  };
  row("frozen", frozen);
  row("adaptive", adaptive_r);
  t.print(std::cout);

  const bool faster = adaptive_r.tr_mean_s < frozen.tr_mean_s;
  // Equal-or-lower heartbeat rate, with 0.5% tolerance for event-driven
  // eager ALIVEs (leadership handovers differ slightly between the runs).
  const bool no_pricier = adaptive_r.alive_per_node_per_second <=
                          frozen.alive_per_node_per_second * 1.005;
  std::cout << "Expected shape: adaptive Tr below frozen Tr at equal-or-lower\n"
               "heartbeat rate; retunes bounded (a handful per phase change).\n"
            << "adaptive_faster=" << (faster ? "yes" : "no")
            << " adaptive_no_pricier=" << (no_pricier ? "yes" : "no") << "\n";

  const char* out_path = std::getenv("OMEGA_BENCH_JSON");
  std::ofstream out(out_path && *out_path ? out_path : "BENCH_adaptive.json");
  out << "{\n  \"figure\": \"fig9_adaptive\",\n  \"simulated_hours\": "
      << harness::fmt_double(frozen.simulated_hours, 3) << ",\n  \"frozen\": "
      << json_cell(frozen) << ",\n  \"adaptive\": " << json_cell(adaptive_r)
      << ",\n  \"adaptive_faster\": " << (faster ? "true" : "false")
      << ",\n  \"adaptive_no_pricier\": " << (no_pricier ? "true" : "false")
      << "\n}\n";
  return 0;
}
