// Figure 10 (extension, not in the paper) — per-(group, remote) operating
// points on a mixed LAN/WAN cluster.
//
// The paper's parameter plane (and PR 1's adaptation engine) configured a
// group globally: one (eta, delta) for every monitor in the group, so one
// bad WAN link dragged every clean LAN link down to the worst link's
// delta. This figure measures what the layered param_plan buys. Setup: a
// 12-workstation cluster where 9 nodes sit on a LAN and 3 are reachable
// only over WAN-grade links (50 ms mean delay, 1% loss). Two adaptive
// policies run the *same* scenario:
//
//   group-global — engine_options::per_link = false: every monitor gets
//                  the point solved from the robust cluster aggregate,
//                  which the WAN links dominate (the PR 1 behaviour).
//   per-link     — engine_options::per_link = true: the aggregate point
//                  is only the group default; every confident peer gets a
//                  refinement solved from its own tracked link window.
//
// Measured: the mean *expected crash-detection latency* E[T_D] =
// delta + eta/2 of the operating points LAN observers hold against LAN
// remotes ("good links") and against WAN remotes, sampled every 10 s over
// the run, plus the realized ALIVE rate and RATE_REQ traffic. Expected
// result: per-link cuts good-link detection far below group-global at an
// equal-or-lower heartbeat rate (the min-detection rate budget binds
// both), at the price of some extra RATE_REQ negotiation — the trade
// ROADMAP asked to measure. Machine-readable output: BENCH_perlink.json
// (path overridable via OMEGA_BENCH_JSON).
#include <algorithm>
#include <fstream>
#include <iostream>
#include <string>

#include "adaptive/retuner.hpp"
#include "bench_support.hpp"

using namespace omega;

namespace {

/// Same interactive QoS class as fig9: 1 s detection bound, one mistake
/// per 2 h, 99.99% query accuracy.
fd::qos_spec bench_qos() {
  fd::qos_spec qos;
  qos.detection_time = sec(1);
  qos.mistake_recurrence =
      std::chrono::duration_cast<omega::duration>(std::chrono::hours(2));
  qos.query_accuracy = 0.9999;
  return qos;
}

harness::scenario make_scenario(bool per_link, double hours) {
  harness::scenario sc;
  sc.name = per_link ? "fig10-per-link" : "fig10-group-global";
  sc.nodes = 12;
  sc.wan_nodes = 3;
  sc.wan_links = net::link_profile::lossy(msec(50), 0.01);
  sc.links = net::link_profile::lan();
  sc.alg = election::algorithm::omega_lc;
  sc.qos = bench_qos();
  sc.churn = harness::churn_profile::none();  // sampling wants all nodes up
  sc.adaptive.mode = adaptive::tuning_mode::adaptive;
  sc.adaptive.per_link = per_link;
  sc.measured = from_seconds(hours * 3600.0);
  sc.seed = omega::bench::bench_seed() * 1000003u;  // same seed for both cells
  return sc;
}

struct cell_result {
  double good_link_detection_s = 0.0;  // LAN observer -> LAN remote
  double wan_link_detection_s = 0.0;   // LAN observer -> WAN remote
  double alive_per_node_per_s = 0.0;
  std::uint64_t rate_req_total = 0;
  std::uint64_t retunes = 0;
  std::size_t samples = 0;
  double simulated_hours = 0.0;
  double wall_clock_s = 0.0;
  std::uint64_t events_executed = 0;
};

cell_result run_cell(const harness::scenario& sc) {
  omega::bench::wall_timer wall;
  harness::experiment exp(sc);
  auto& sim = exp.simulator();
  const std::size_t lan_count = sc.nodes - sc.wan_nodes;
  const group_id group{1};

  // Settle: warm-up plus one estimator-confidence + dwell window, so both
  // policies are sampled at their adapted operating points.
  const duration settle = std::min(sec(60), sc.measured / 3);
  sim.run_until(time_origin + sc.warmup + settle);
  const std::uint64_t alive_base = exp.total_alive_sent();
  const std::uint64_t retunes_base = exp.total_retunes();
  const time_point measure_from = sim.now();
  const time_point end = time_origin + sc.warmup + sc.measured;

  cell_result res;
  double good_sum = 0.0;
  double wan_sum = 0.0;
  std::size_t good_n = 0;
  std::size_t wan_n = 0;
  while (sim.now() < end) {
    sim.run_until(std::min(end, sim.now() + sec(10)));
    for (std::size_t o = 0; o < lan_count; ++o) {
      auto* svc = exp.node_service(node_id{static_cast<std::uint32_t>(o)});
      if (svc == nullptr) continue;
      for (std::size_t r = 0; r < sc.nodes; ++r) {
        if (r == o) continue;
        const auto params = svc->failure_detector().current_params(
            group, node_id{static_cast<std::uint32_t>(r)});
        const double detect_s = adaptive::retuner::expected_detection_s(params);
        if (r < lan_count) {
          good_sum += detect_s;
          ++good_n;
        } else {
          wan_sum += detect_s;
          ++wan_n;
        }
      }
    }
    ++res.samples;
  }

  const double span_s = to_seconds(sim.now() - measure_from);
  res.good_link_detection_s = good_n > 0 ? good_sum / static_cast<double>(good_n) : 0.0;
  res.wan_link_detection_s = wan_n > 0 ? wan_sum / static_cast<double>(wan_n) : 0.0;
  res.alive_per_node_per_s =
      span_s > 0.0 ? static_cast<double>(exp.total_alive_sent() - alive_base) /
                         (span_s * static_cast<double>(sc.nodes))
                   : 0.0;
  for (std::size_t n = 0; n < sc.nodes; ++n) {
    auto* svc = exp.node_service(node_id{static_cast<std::uint32_t>(n)});
    if (svc != nullptr) res.rate_req_total += svc->stats().rate_request_sent;
  }
  res.retunes = exp.total_retunes() - retunes_base;
  res.simulated_hours = to_seconds(sc.measured) / 3600.0;
  res.wall_clock_s = wall.seconds();
  res.events_executed = sim.events_executed();
  return res;
}

std::string json_cell(const cell_result& r) {
  std::string s = "{";
  s += "\"good_link_detection_s\": " + harness::fmt_double(r.good_link_detection_s, 4);
  s += ", \"wan_link_detection_s\": " + harness::fmt_double(r.wan_link_detection_s, 4);
  s += ", \"alive_per_node_per_s\": " + harness::fmt_double(r.alive_per_node_per_s, 3);
  s += ", \"rate_req_total\": " + std::to_string(r.rate_req_total);
  s += ", \"retunes\": " + std::to_string(r.retunes);
  s += ", \"samples\": " + std::to_string(r.samples);
  s += ", \"wall_clock_s\": " + harness::fmt_double(r.wall_clock_s, 3);
  s += ", \"events_executed\": " + std::to_string(r.events_executed);
  s += "}";
  return s;
}

}  // namespace

int main() {
  const double hours = omega::bench::bench_hours();

  const auto global = run_cell(make_scenario(/*per_link=*/false, hours));
  const auto perlink = run_cell(make_scenario(/*per_link=*/true, hours));

  harness::table t(
      "Figure 10: group-global vs per-(group, remote) override, 9 LAN + 3 WAN nodes");
  t.headers({"policy", "good-link E[T_D] (s)", "WAN-link E[T_D] (s)",
             "ALIVE/node/s", "RATE_REQs", "retunes"});
  const auto row = [&](const char* label, const cell_result& r) {
    t.row({label, harness::fmt_double(r.good_link_detection_s, 3),
           harness::fmt_double(r.wan_link_detection_s, 3),
           harness::fmt_double(r.alive_per_node_per_s, 2),
           std::to_string(r.rate_req_total), std::to_string(r.retunes)});
  };
  row("group-global", global);
  row("per-link", perlink);
  t.print(std::cout);

  const bool faster_good_links =
      perlink.good_link_detection_s < global.good_link_detection_s;
  // Equal-or-lower heartbeat rate, with 0.5% tolerance for event-driven
  // eager ALIVEs (leadership churn differs slightly between the runs).
  const bool no_pricier =
      perlink.alive_per_node_per_s <= global.alive_per_node_per_s * 1.005;
  std::cout << "Expected shape: per-link keeps good links at their own small\n"
               "delta instead of the WAN links' aggregate, at an equal-or-lower\n"
               "heartbeat rate (extra cost shows up as RATE_REQ traffic only).\n"
            << "per_link_faster_good_links=" << (faster_good_links ? "yes" : "no")
            << " per_link_no_pricier=" << (no_pricier ? "yes" : "no") << "\n";

  const char* out_path = std::getenv("OMEGA_BENCH_JSON");
  std::ofstream out(out_path && *out_path ? out_path : "BENCH_perlink.json");
  out << "{\n  \"figure\": \"fig10_perlink\",\n  \"simulated_hours\": "
      << harness::fmt_double(global.simulated_hours, 3)
      << ",\n  \"group_global\": " << json_cell(global)
      << ",\n  \"per_link\": " << json_cell(perlink)
      << ",\n  \"per_link_faster_good_links\": "
      << (faster_good_links ? "true" : "false")
      << ",\n  \"per_link_no_pricier\": " << (no_pricier ? "true" : "false")
      << "\n}\n";
  return 0;
}
