// Figure 3 — service S1 (Omega_id) in lossy networks.
//
// Paper (§6.2): across five lossy-link settings, S1's average leader
// recovery time T_r stays close to (just under) the 1-second FD detection
// bound, and its mistake rate stays ~6 unjustified demotions per hour —
// all of them caused by smaller-id processes re-joining after recovery,
// none by FD mistakes.
#include <iostream>

#include "bench_support.hpp"

using namespace omega;

namespace {

// Values read off Figure 3 of the paper (approximate: the figure is a plot).
constexpr double kPaperTr[5] = {0.81, 0.83, 0.88, 0.86, 0.94};
constexpr double kPaperLambda[5] = {6.0, 6.0, 6.0, 6.0, 6.0};

}  // namespace

int main() {
  harness::table tr("Figure 3 (top): S1 average leader recovery time, lossy links");
  tr.headers({"links (D, pL)", "Tr paper (s)", "Tr measured (s)", "samples"});

  harness::table lam("Figure 3 (bottom): S1 mistake rate, lossy links");
  lam.headers({"links (D, pL)", "lambda_u paper (/h)", "lambda_u measured (/h)",
               "unjustified"});

  for (int i = 0; i < 5; ++i) {
    const auto& link = bench::kLossyGrid[i];
    harness::scenario sc;
    sc.name = std::string("fig3-") + link.label;
    sc.alg = election::algorithm::omega_id;
    sc.links = net::link_profile::lossy(link.mean_delay, link.loss);
    sc = bench::with_defaults(sc);

    const auto r = bench::run_cell(sc);
    tr.row({link.label, harness::fmt_double(kPaperTr[i], 2),
            harness::fmt_ci(r.tr_mean_s, r.tr_ci95_s, 2),
            std::to_string(r.tr_samples)});
    lam.row({link.label, harness::fmt_double(kPaperLambda[i], 1),
             harness::fmt_double(r.lambda_u, 1), std::to_string(r.unjustified)});
  }

  tr.print(std::cout);
  lam.print(std::cout);
  std::cout << "Expected shape: Tr just under the 1 s detection bound in every\n"
               "network; lambda_u flat at ~6/h, entirely from smaller-id rejoins.\n";
  return 0;
}
