// Figure 11 (extension, not in the paper) — flat vs hierarchical election
// on large rosters.
//
// The paper's §7 names hierarchical election as the way to large dynamic
// systems: keep each election among a small candidate set, let regional
// leaders compete one tier up. This figure measures what src/hierarchy/
// buys over flat omega_lc at *equal per-node ALIVE rate* (both cells run
// the same FD QoS on every tier, and the service multiplexes all groups
// over one heartbeat stream, so a node's cadence is identical — only the
// fan-out differs):
//
//   flat — one group, every node a candidate, omega_lc: every node
//          broadcasts to every other, O(n^2) ALIVEs per interval, and the
//          per-link adaptation plane tracks ~n refinements per node.
//   hier — regions of 10 under one global group (hierarchy_coordinator):
//          region ALIVEs fan out to ~9 peers, listeners never send in the
//          global tier (omega_l), and each node tracks only its region
//          peers plus the global senders.
//
// Swept over 30/60/120-node rosters. Measured per cell: total messages/s
// and bytes/s on the wire, realized ALIVE/node/s, per-remote `param_plan`
// refinement entries per node (the per-link override memory the ROADMAP
// asked to size), and the global detection + re-election time after
// crashing the current (global) leader — for the hierarchy that includes
// the regional failover and the promotion of a replacement. Machine
// readable output: BENCH_hierarchy.json (override: OMEGA_BENCH_JSON).
#include <algorithm>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_support.hpp"

using namespace omega;

namespace {

constexpr std::size_t kRegionSize = 10;

/// Same interactive QoS as fig9/fig10: 1 s detection bound, one mistake
/// per 2 h, 99.99% query accuracy — on both tiers, so the per-node
/// heartbeat cadence of the two policies is identical by construction.
fd::qos_spec bench_qos() {
  fd::qos_spec qos;
  qos.detection_time = sec(1);
  qos.mistake_recurrence =
      std::chrono::duration_cast<omega::duration>(std::chrono::hours(2));
  qos.query_accuracy = 0.9999;
  return qos;
}

harness::scenario make_scenario(std::size_t nodes, bool hier) {
  harness::scenario sc;
  sc.name = (hier ? "fig11-hier-" : "fig11-flat-") + std::to_string(nodes);
  sc.nodes = nodes;
  sc.alg = election::algorithm::omega_lc;
  sc.links = net::link_profile::lan();
  sc.qos = bench_qos();
  sc.churn = harness::churn_profile::none();  // failovers are driven manually
  sc.adaptive.mode = adaptive::tuning_mode::adaptive;
  sc.adaptive.per_link = true;
  if (hier) {
    sc.hierarchy = harness::hierarchy_profile::with_region_size(kRegionSize);
    sc.hierarchy.global_qos = bench_qos();
  }
  sc.seed = omega::bench::bench_seed() * 1000003u + nodes;  // same per roster
  return sc;
}

struct cell_result {
  double messages_per_s = 0.0;  // all datagrams on the wire, cluster total
  double bytes_per_s = 0.0;
  double alive_per_node_per_s = 0.0;
  double plan_entries_per_node = 0.0;  // per-remote param_plan refinements
  double reelection_mean_s = 0.0;      // crash -> cluster-wide new leader
  std::size_t reelection_samples = 0;
  std::uint64_t promotions = 0;  // hierarchy only
  std::uint64_t demotions = 0;   // hierarchy only
  double wall_clock_s = 0.0;
  std::uint64_t events_executed = 0;
};

/// Crashes the node hosting the current agreed (global) leader and returns
/// the time until every live node agrees on a different live leader.
double measure_failover(harness::experiment& exp) {
  auto& sim = exp.simulator();
  std::optional<process_id> leader = exp.group().agreed_leader();
  const time_point deadline = sim.now() + sec(30);
  while (!leader.has_value() && sim.now() < deadline) {
    sim.run_until(sim.now() + msec(100));
    leader = exp.group().agreed_leader();
  }
  if (!leader.has_value()) return -1.0;  // never settled: report as failure

  const node_id victim{leader->value()};  // harness runs pid i on node i
  const time_point crash_at = sim.now();
  exp.crash_node(victim);
  bool converged = false;
  while (sim.now() < crash_at + sec(30)) {
    sim.run_until(sim.now() + msec(25));
    const auto agreed = exp.group().agreed_leader();
    if (agreed.has_value() && *agreed != *leader) {
      converged = true;
      break;
    }
  }
  // A run that never re-converges is a failed sample, not a ~30 s one.
  const double recovery_s =
      converged ? to_seconds(sim.now() - crash_at) : -1.0;
  exp.recover_node(victim);
  sim.run_until(sim.now() + sec(30));  // let it rejoin cleanly
  return recovery_s;
}

cell_result run_cell(const harness::scenario& sc, double window_s,
                     std::size_t failovers) {
  omega::bench::wall_timer wall;
  harness::experiment exp(sc);
  auto& sim = exp.simulator();

  // Settle: warm-up plus one estimator-confidence + retuner-dwell window.
  sim.run_until(time_origin + sc.warmup + sec(60));

  // Traffic window (no failures): fan-out and plan-memory economics.
  exp.network().reset_traffic();
  const std::uint64_t alive_base = exp.total_alive_sent();
  const time_point window_from = sim.now();
  const time_point window_end = window_from + from_seconds(window_s);
  double plan_sum = 0.0;
  std::size_t plan_samples = 0;
  while (sim.now() < window_end) {
    sim.run_until(std::min(window_end, sim.now() + from_seconds(window_s / 5)));
    std::size_t entries = 0;
    for (std::size_t n = 0; n < sc.nodes; ++n) {
      if (auto* svc = exp.node_service(node_id{static_cast<std::uint32_t>(n)})) {
        entries += svc->failure_detector().plan_refinement_count();
      }
    }
    plan_sum += static_cast<double>(entries) / static_cast<double>(sc.nodes);
    ++plan_samples;
  }

  cell_result res;
  const double span_s = to_seconds(sim.now() - window_from);
  std::uint64_t msgs = 0;
  std::uint64_t bytes = 0;
  for (std::size_t n = 0; n < sc.nodes; ++n) {
    const auto& t = exp.network().traffic(node_id{static_cast<std::uint32_t>(n)});
    msgs += t.datagrams_sent;
    bytes += t.bytes_sent;
  }
  res.messages_per_s = static_cast<double>(msgs) / span_s;
  res.bytes_per_s = static_cast<double>(bytes) / span_s;
  res.alive_per_node_per_s =
      static_cast<double>(exp.total_alive_sent() - alive_base) /
      (span_s * static_cast<double>(sc.nodes));
  res.plan_entries_per_node =
      plan_samples > 0 ? plan_sum / static_cast<double>(plan_samples) : 0.0;

  // Failover phase: global detection + re-election time.
  double sum = 0.0;
  for (std::size_t k = 0; k < failovers; ++k) {
    const double t = measure_failover(exp);
    if (t < 0.0) continue;
    sum += t;
    ++res.reelection_samples;
  }
  res.reelection_mean_s =
      res.reelection_samples > 0
          ? sum / static_cast<double>(res.reelection_samples)
          : -1.0;

  for (std::size_t n = 0; n < sc.nodes; ++n) {
    if (auto* c = exp.node_coordinator(node_id{static_cast<std::uint32_t>(n)})) {
      res.promotions += c->promotions();
      res.demotions += c->demotions();
    }
  }
  res.wall_clock_s = wall.seconds();
  res.events_executed = sim.events_executed();
  return res;
}

std::string json_cell(const cell_result& r) {
  std::string s = "{";
  s += "\"messages_per_s\": " + harness::fmt_double(r.messages_per_s, 1);
  s += ", \"bytes_per_s\": " + harness::fmt_double(r.bytes_per_s, 1);
  s += ", \"alive_per_node_per_s\": " +
       harness::fmt_double(r.alive_per_node_per_s, 3);
  s += ", \"plan_entries_per_node\": " +
       harness::fmt_double(r.plan_entries_per_node, 2);
  s += ", \"reelection_mean_s\": " + harness::fmt_double(r.reelection_mean_s, 3);
  s += ", \"reelection_samples\": " + std::to_string(r.reelection_samples);
  s += ", \"wall_clock_s\": " + harness::fmt_double(r.wall_clock_s, 3);
  s += ", \"events_executed\": " + std::to_string(r.events_executed);
  s += ", \"promotions\": " + std::to_string(r.promotions);
  s += ", \"demotions\": " + std::to_string(r.demotions);
  s += "}";
  return s;
}

}  // namespace

int main() {
  const double hours = omega::bench::bench_hours();
  // The window needs to cover estimator confidence + retuner dwell but not
  // the paper's multi-hour runs: fan-out economics are stationary.
  const double window_s = std::clamp(hours * 300.0, 60.0, 600.0);
  const std::size_t failovers = 3;
  const std::size_t rosters[] = {30, 60, 120};

  harness::table t(
      "Figure 11: flat omega_lc vs hierarchical (regions of 10) at equal "
      "per-node ALIVE rate");
  t.headers({"roster", "policy", "msgs/s", "KB/s", "ALIVE/node/s",
             "plan entries/node", "re-election (s)"});

  std::string rows_json;
  bool fewer_messages_at_120 = false;
  bool fewer_plan_entries_at_120 = false;
  for (const std::size_t nodes : rosters) {
    const auto flat = run_cell(make_scenario(nodes, false), window_s, failovers);
    const auto hier = run_cell(make_scenario(nodes, true), window_s, failovers);
    const auto row = [&](const char* label, const cell_result& r) {
      t.row({std::to_string(nodes), label,
             harness::fmt_double(r.messages_per_s, 0),
             harness::fmt_double(r.bytes_per_s / 1024.0, 1),
             harness::fmt_double(r.alive_per_node_per_s, 2),
             harness::fmt_double(r.plan_entries_per_node, 1),
             harness::fmt_double(r.reelection_mean_s, 2)});
    };
    row("flat", flat);
    row("hier", hier);
    if (nodes == 120) {
      fewer_messages_at_120 = hier.messages_per_s < flat.messages_per_s;
      fewer_plan_entries_at_120 =
          hier.plan_entries_per_node < flat.plan_entries_per_node;
    }
    if (!rows_json.empty()) rows_json += ",\n    ";
    rows_json += "{\"nodes\": " + std::to_string(nodes) +
                 ", \"flat\": " + json_cell(flat) +
                 ", \"hier\": " + json_cell(hier) + "}";
  }
  t.print(std::cout);
  std::cout << "Expected shape: the hierarchy keeps ALIVE fan-out inside\n"
               "regions (plus the global tier's few senders), so total\n"
               "messages/s and per-remote plan entries grow ~linearly with\n"
               "the roster instead of quadratically, at the same per-node\n"
               "heartbeat rate.\n"
            << "hier_fewer_messages_at_120="
            << (fewer_messages_at_120 ? "yes" : "no")
            << " hier_fewer_plan_entries_at_120="
            << (fewer_plan_entries_at_120 ? "yes" : "no") << "\n";

  const char* out_path = std::getenv("OMEGA_BENCH_JSON");
  std::ofstream out(out_path && *out_path ? out_path : "BENCH_hierarchy.json");
  out << "{\n  \"figure\": \"fig11_hierarchy\",\n  \"region_size\": "
      << kRegionSize << ",\n  \"window_s\": " << harness::fmt_double(window_s, 1)
      << ",\n  \"rosters\": [\n    " << rows_json
      << "\n  ],\n  \"hier_fewer_messages_at_120\": "
      << (fewer_messages_at_120 ? "true" : "false")
      << ",\n  \"hier_fewer_plan_entries_at_120\": "
      << (fewer_plan_entries_at_120 ? "true" : "false") << "\n}\n";
  return 0;
}
