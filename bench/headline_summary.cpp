// Headline numbers quoted in the paper's introduction (§1) and summary.
//
// One bench that reproduces the paper's elevator pitch in a single table:
//   * In the "difficult" environment (12 nodes, 10-minute crash cycles,
//     1-in-10 message loss, 100 ms mean delay, FD QoS (1 s, 100 days)):
//     both S2 (Omega_lc) and S3 (Omega_l) never demote a leader by mistake
//     and keep a commonly-agreed leader ~99.8% of the time, at
//     ~0.3% CPU / 62.38 KB/s (S2) vs ~0.04% CPU / 6.48 KB/s (S3).
//   * Adding 60 s-mean link crashes: S2 stays at 98.78% availability,
//     S3 falls to 77.42%.
#include <iostream>

#include "bench_support.hpp"

using namespace omega;

namespace {

harness::experiment_result run(election::algorithm alg, bool link_crashes) {
  harness::scenario sc;
  sc.name = std::string("headline-") + std::string(election::to_string(alg)) +
            (link_crashes ? "-crashes" : "-lossy");
  sc.alg = alg;
  if (link_crashes) {
    sc.links = net::link_profile::lan();
    sc.link_crashes = net::link_crash_profile::crashes(sec(60), sec(3));
  } else {
    sc.links = net::link_profile::lossy(msec(100), 0.1);
  }
  sc = bench::with_defaults(sc);
  return bench::run_cell(sc);
}

}  // namespace

int main() {
  const auto s2 = run(election::algorithm::omega_lc, false);
  const auto s3 = run(election::algorithm::omega_l, false);
  const auto s2c = run(election::algorithm::omega_lc, true);
  const auto s3c = run(election::algorithm::omega_l, true);

  harness::table t("Paper §1 headline scenario: (100ms, 0.1) links, 10-min churn");
  t.headers({"metric", "paper S2", "measured S2", "paper S3", "measured S3"});
  t.row({"unjustified demotions", "0", std::to_string(s2.unjustified), "0",
         std::to_string(s3.unjustified)});
  t.row({"leader availability", "99.82%", harness::fmt_percent(s2.p_leader, 2),
         "99.84%", harness::fmt_percent(s3.p_leader, 2)});
  t.row({"CPU / workstation", "0.30%", harness::fmt_double(s2.cpu_percent, 3) + "%",
         "0.04%", harness::fmt_double(s3.cpu_percent, 3) + "%"});
  t.row({"traffic / workstation", "62.38 KB/s",
         harness::fmt_double(s2.kb_per_second, 2) + " KB/s", "6.48 KB/s",
         harness::fmt_double(s3.kb_per_second, 2) + " KB/s"});

  harness::table tc("Paper §1 hostile scenario: 60 s link crashes on top of churn");
  tc.headers({"metric", "paper S2", "measured S2", "paper S3", "measured S3"});
  tc.row({"leader availability", "98.78%", harness::fmt_percent(s2c.p_leader, 2),
          "77.42%", harness::fmt_percent(s3c.p_leader, 2)});

  t.print(std::cout);
  tc.print(std::cout);
  std::cout << "Expected shape: zero unjustified demotions and >= 99.8%\n"
               "availability for both algorithms on lossy links; an order-of-\n"
               "magnitude cost gap in S3's favour; under 60 s link crashes S2\n"
               "stays near 99% while S3 drops far below.\n";
  return 0;
}
