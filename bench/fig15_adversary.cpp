// Figure 15 (extension, not in the paper) — election under an adversarial
// network plane, per fault class.
//
// ISSUE 10's fault battery asserts the *invariants* (no dual leadership
// after heal, no stale-incarnation resurrection, ...); this figure prices
// them: what does each injected fault class cost in wire traffic and in
// global re-election time on the large three-tier roster (120 nodes, 12
// regions x 2 zones)? Each cell runs the same scenario with one class of
// the `fault_script` library active across the whole measurement:
//
//   none        — baseline, no adversary installed (byte-identical path)
//   cut         — permanent one-way cross-region cuts (asymmetric loss)
//   partition   — a region severed for 30 s every 3 min (split + heal)
//   flap        — every WAN link on a 5 s duty cycle, 80% up
//   dup_reorder — 25% bounded duplication + window-3 reordering
//   skew        — three nodes with 200 ms offsets and 100 ppm drift
//
// Measured per cell: cluster messages/s and bytes/s over a steady window
// with the fault active, mean global re-election time over three induced
// leader crashes (detection + failover, as fig11), the adversary's own
// per-class fault counters, and the forensics blame split — the fraction
// of global-leader outages attributed to a tier or to the injected fault
// (ci.sh gates this at >= 95% per cell). Machine-readable output:
// BENCH_adversary.json (override: OMEGA_BENCH_JSON).
#include <algorithm>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_support.hpp"

using namespace omega;

namespace {

constexpr std::size_t kNodes = 120;

/// Same interactive QoS as fig9/fig11 on both tiers: 1 s detection bound,
/// one mistake per 2 h, 99.99% query accuracy.
fd::qos_spec bench_qos() {
  fd::qos_spec qos;
  qos.detection_time = sec(1);
  qos.mistake_recurrence =
      std::chrono::duration_cast<omega::duration>(std::chrono::hours(2));
  qos.query_accuracy = 0.9999;
  return qos;
}

harness::scenario make_scenario(const char* fault,
                                std::vector<harness::fault_step> script) {
  harness::scenario sc;
  sc.name = std::string("fig15-") + fault;
  sc.nodes = kNodes;
  sc.alg = election::algorithm::omega_lc;
  sc.links = net::link_profile::lan();
  sc.qos = bench_qos();
  sc.churn = harness::churn_profile::none();  // failovers are driven manually
  sc.adaptive.mode = adaptive::tuning_mode::adaptive;
  sc.adaptive.per_link = true;
  sc.hierarchy = harness::hierarchy_profile::three_tier(12, 2);
  sc.hierarchy.global_qos = bench_qos();
  sc.fault_script = std::move(script);
  sc.seed = omega::bench::bench_seed() * 1000003u + 15;  // same across cells
  return sc;
}

/// The script library. Every fault engages at t = 30 s — before the
/// settle window ends — so both the traffic window and the induced
/// failovers run with the fault live.
std::vector<harness::fault_step> make_script(const std::string& fault) {
  std::vector<harness::fault_step> script;
  if (fault == "cut") {
    // Three permanent one-way cross-region cuts: region 0's first node
    // loses its outbound word toward one node of regions 3, 6 and 9.
    for (const std::uint32_t to : {30u, 60u, 90u}) {
      harness::fault_step step;
      step.at = sec(30);
      step.action = harness::fault_cut{node_id{0}, node_id{to}};
      script.push_back(step);
    }
  } else if (fault == "partition") {
    // Region 1 severed for 30 s every 3 minutes, long enough episodes to
    // demote its members' leadership, healed each time.
    harness::fault_step step;
    step.at = sec(60);
    step.lasts = sec(30);
    step.repeat_every = sec(180);
    step.repeat_count = 16;  // covers any window/failover schedule
    harness::fault_partition part;
    part.name = "region1";
    part.regions = {1};
    step.action = part;
    script.push_back(step);
  } else if (fault == "flap") {
    // Permanent WAN flapping: 5 s duty cycle, 80% up — each down spell
    // (1 s) sits right at the detection bound, so the global tier rides
    // the edge of suspicion for the whole run.
    harness::fault_step step;
    step.at = sec(30);
    harness::fault_flap_wan flap;
    flap.spec.period = sec(5);
    flap.spec.up_fraction = 0.8;
    step.action = flap;
    script.push_back(step);
  } else if (fault == "dup_reorder") {
    harness::fault_step dup;
    dup.at = sec(30);
    harness::fault_duplicate dspec;
    dspec.spec.probability = 0.25;
    dspec.spec.max_copies = 2;
    dup.action = dspec;
    script.push_back(dup);
    harness::fault_step reorder;
    reorder.at = sec(30);
    harness::fault_reorder rspec;
    rspec.spec.window = 3;
    reorder.action = rspec;
    script.push_back(reorder);
  } else if (fault == "skew") {
    // One skewed node per tier role: a region member, a region whose
    // leader feeds zone 1, and one in the last region. 200 ms offsets,
    // +/-100 ppm drift, permanent.
    const struct {
      std::uint32_t node;
      int sign;
    } skews[] = {{1, +1}, {61, -1}, {113, +1}};
    for (const auto& s : skews) {
      harness::fault_step step;
      step.at = sec(30);
      harness::fault_skew skew;
      skew.node = node_id{s.node};
      skew.offset = msec(200 * s.sign);
      skew.drift = 100e-6 * s.sign;
      step.action = skew;
      script.push_back(step);
    }
  }
  return script;
}

struct cell_result {
  double messages_per_s = 0.0;  // all datagrams on the wire, cluster total
  double bytes_per_s = 0.0;
  double reelection_mean_s = 0.0;  // crash -> cluster-wide new leader
  std::size_t reelection_samples = 0;
  net::adversary::counters faults;  // zero when no adversary installed
  std::uint64_t outages_total = 0;
  std::uint64_t outages_blamed_regional = 0;
  std::uint64_t outages_blamed_global = 0;
  std::uint64_t outages_blamed_fault = 0;
  std::uint64_t outages_unattributed = 0;
  double attribution_fraction = 1.0;  // 1.0 when there was nothing to blame
  double wall_clock_s = 0.0;
  std::uint64_t events_executed = 0;
};

/// Crashes the node hosting the current agreed (global) leader and returns
/// the time until every live node agrees on a different live leader
/// (fig11's measurement, unchanged so the columns compare).
double measure_failover(harness::experiment& exp) {
  auto& sim = exp.simulator();
  std::optional<process_id> leader = exp.group().agreed_leader();
  const time_point deadline = sim.now() + sec(30);
  while (!leader.has_value() && sim.now() < deadline) {
    sim.run_until(sim.now() + msec(100));
    leader = exp.group().agreed_leader();
  }
  if (!leader.has_value()) return -1.0;  // never settled: report as failure

  const node_id victim{leader->value()};  // harness runs pid i on node i
  const time_point crash_at = sim.now();
  exp.crash_node(victim);
  bool converged = false;
  while (sim.now() < crash_at + sec(30)) {
    sim.run_until(sim.now() + msec(25));
    const auto agreed = exp.group().agreed_leader();
    if (agreed.has_value() && *agreed != *leader) {
      converged = true;
      break;
    }
  }
  const double recovery_s =
      converged ? to_seconds(sim.now() - crash_at) : -1.0;
  exp.recover_node(victim);
  sim.run_until(sim.now() + sec(30));  // let it rejoin cleanly
  return recovery_s;
}

cell_result run_cell(const harness::scenario& sc, double window_s,
                     std::size_t failovers) {
  omega::bench::wall_timer wall;
  harness::experiment exp(sc);
  auto& sim = exp.simulator();

  // Settle past warm-up, estimator confidence, and the first fault onset.
  sim.run_until(time_origin + sc.warmup + sec(60));

  // Outage accounting (the blame split) is off until begin(): run() flips
  // it at the measured phase; this manual driver flips it here so the
  // induced failovers below are classified.
  if (auto* hm = exp.hier_metrics()) hm->begin(sim.now());

  // Traffic window with the fault live.
  exp.network().reset_traffic();
  const time_point window_from = sim.now();
  sim.run_until(window_from + from_seconds(window_s));

  cell_result res;
  const double span_s = to_seconds(sim.now() - window_from);
  std::uint64_t msgs = 0;
  std::uint64_t bytes = 0;
  for (std::size_t n = 0; n < sc.nodes; ++n) {
    const auto& t =
        exp.network().traffic(node_id{static_cast<std::uint32_t>(n)});
    msgs += t.datagrams_sent;
    bytes += t.bytes_sent;
  }
  res.messages_per_s = static_cast<double>(msgs) / span_s;
  res.bytes_per_s = static_cast<double>(bytes) / span_s;

  // Failover phase: global detection + re-election time under the fault.
  double sum = 0.0;
  for (std::size_t k = 0; k < failovers; ++k) {
    const double t = measure_failover(exp);
    if (t < 0.0) continue;
    sum += t;
    ++res.reelection_samples;
  }
  res.reelection_mean_s =
      res.reelection_samples > 0
          ? sum / static_cast<double>(res.reelection_samples)
          : -1.0;

  if (const net::adversary* adv = exp.fault_plane()) {
    res.faults = adv->totals();
  }
  if (auto* hm = exp.hier_metrics()) {
    hm->finish(sim.now());
    res.outages_blamed_regional = hm->outages_blamed_regional();
    res.outages_blamed_global = hm->outages_blamed_global();
    res.outages_blamed_fault = hm->outages_blamed_fault();
    res.outages_unattributed = hm->outages_unattributed();
    const std::uint64_t attributed = res.outages_blamed_regional +
                                     res.outages_blamed_global +
                                     res.outages_blamed_fault;
    res.outages_total = attributed + res.outages_unattributed;
    if (res.outages_total > 0) {
      res.attribution_fraction = static_cast<double>(attributed) /
                                 static_cast<double>(res.outages_total);
    }
  }
  res.wall_clock_s = wall.seconds();
  res.events_executed = sim.events_executed();
  return res;
}

std::string json_cell(const char* fault, const cell_result& r) {
  std::string s = "{";
  s += "\"fault\": \"" + std::string(fault) + "\"";
  s += ", \"messages_per_s\": " + harness::fmt_double(r.messages_per_s, 1);
  s += ", \"bytes_per_s\": " + harness::fmt_double(r.bytes_per_s, 1);
  s += ", \"reelection_mean_s\": " +
       harness::fmt_double(r.reelection_mean_s, 3);
  s += ", \"reelection_samples\": " + std::to_string(r.reelection_samples);
  s += ", \"dropped_cut\": " + std::to_string(r.faults.dropped_cut);
  s += ", \"dropped_partition\": " +
       std::to_string(r.faults.dropped_partition);
  s += ", \"dropped_flap\": " + std::to_string(r.faults.dropped_flap);
  s += ", \"duplicated\": " + std::to_string(r.faults.duplicated);
  s += ", \"reorder_delayed\": " + std::to_string(r.faults.reorder_delayed);
  s += ", \"outages_total\": " + std::to_string(r.outages_total);
  s += ", \"outages_blamed_regional\": " +
       std::to_string(r.outages_blamed_regional);
  s += ", \"outages_blamed_global\": " +
       std::to_string(r.outages_blamed_global);
  s += ", \"outages_blamed_fault\": " +
       std::to_string(r.outages_blamed_fault);
  s += ", \"outages_unattributed\": " +
       std::to_string(r.outages_unattributed);
  s += ", \"attribution_fraction\": " +
       harness::fmt_double(r.attribution_fraction, 4);
  s += ", \"wall_clock_s\": " + harness::fmt_double(r.wall_clock_s, 3);
  s += ", \"events_executed\": " + std::to_string(r.events_executed);
  s += "}";
  return s;
}

}  // namespace

int main() {
  const double hours = omega::bench::bench_hours();
  // The steady window prices the fault's wire overhead; the economics are
  // stationary once the adversary is live, so minutes suffice.
  const double window_s = std::clamp(hours * 300.0, 60.0, 600.0);
  const std::size_t failovers = 3;
  const char* const classes[] = {"none",        "cut",  "partition",
                                 "flap",        "dup_reorder", "skew"};

  harness::table t(
      "Figure 15: 120-node three-tier election under the adversarial "
      "network plane, per fault class");
  t.headers({"fault", "msgs/s", "KB/s", "re-election (s)", "samples",
             "dropped", "dup'd", "attributed"});

  std::string cells_json;
  for (const char* fault : classes) {
    const cell_result r =
        run_cell(make_scenario(fault, make_script(fault)), window_s,
                 failovers);
    const std::uint64_t dropped = r.faults.dropped_cut +
                                  r.faults.dropped_partition +
                                  r.faults.dropped_flap;
    t.row({fault, harness::fmt_double(r.messages_per_s, 0),
           harness::fmt_double(r.bytes_per_s / 1024.0, 1),
           harness::fmt_double(r.reelection_mean_s, 2),
           std::to_string(r.reelection_samples), std::to_string(dropped),
           std::to_string(r.faults.duplicated),
           harness::fmt_double(r.attribution_fraction, 3)});
    if (!cells_json.empty()) cells_json += ",\n    ";
    cells_json += json_cell(fault, r);
  }
  t.print(std::cout);
  std::cout << "Expected shape: duplication inflates msgs/s ~1.25x over the\n"
               "baseline; cuts/partitions/flaps shave traffic (dropped on\n"
               "the wire) while stretching re-election; skew must leave\n"
               "both columns near the baseline; and every cell keeps the\n"
               "forensics attribution fraction at 1.00 (gated >= 0.95).\n";

  const char* out_path = std::getenv("OMEGA_BENCH_JSON");
  std::ofstream out(out_path && *out_path ? out_path : "BENCH_adversary.json");
  out << "{\n  \"figure\": \"fig15_adversary\",\n  \"nodes\": " << kNodes
      << ",\n  \"tiers\": [12, 2, 1],\n  \"window_s\": "
      << harness::fmt_double(window_s, 1) << ",\n  \"failovers\": "
      << failovers << ",\n  \"cells\": [\n    " << cells_json
      << "\n  ]\n}\n";
  return 0;
}
