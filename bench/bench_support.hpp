// Shared scaffolding for the figure-reproduction bench binaries.
//
// Every bench binary reproduces one figure of the paper's evaluation
// (§6.2–§6.6): it sweeps the figure's x-axis, runs one simulated experiment
// per cell, and prints the measured series next to the values published in
// the paper. Absolute agreement is not expected (the substrate is a
// simulator, not the authors' 12-workstation LAN); the *shape* — who wins,
// by what factor, where the crossovers fall — is what EXPERIMENTS.md tracks.
//
// Runtime control:
//   OMEGA_BENCH_HOURS   simulated measurement window per cell (default 2.0;
//                       the paper ran 1–5 *days* per point, which the
//                       deterministic simulator does not need for tight CIs).
//   OMEGA_BENCH_SEED    base RNG seed (default 42); each cell derives its
//                       own stream from it.
#pragma once

#include <chrono>
#include <cstdlib>
#include <iostream>
#include <string>

#include "harness/experiment.hpp"
#include "harness/report.hpp"
#include "harness/scenario.hpp"

namespace omega::bench {

inline double env_double(const char* name, double fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(v, &end);
  return end != v ? parsed : fallback;
}

inline double bench_hours() { return env_double("OMEGA_BENCH_HOURS", 2.0); }

inline std::uint64_t bench_seed() {
  return static_cast<std::uint64_t>(env_double("OMEGA_BENCH_SEED", 42.0));
}

/// Wall-clock stopwatch. The benches sweep *virtual* time; this measures
/// the real CPU cost of simulating it — the number the hot-path work
/// (DESIGN.md §9) moves, reported as `wall_clock_s` in every BENCH_*.json
/// and gated against regression by scripts/ci.sh.
class wall_timer {
 public:
  wall_timer() : start_(std::chrono::steady_clock::now()) {}
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// The paper's five headline lossy-link settings, in figure order.
struct lossy_setting {
  const char* label;
  duration mean_delay;
  double loss;
};

inline const lossy_setting kLossyGrid[5] = {
    {"(0.025ms, 0)", usec(25), 0.0},        {"(10ms, 0.01)", msec(10), 0.01},
    {"(100ms, 0.01)", msec(100), 0.01},     {"(10ms, 0.1)", msec(10), 0.1},
    {"(100ms, 0.1)", msec(100), 0.1},
};

/// Applies the common CLI/env conventions to a scenario.
inline harness::scenario with_defaults(harness::scenario sc) {
  sc.measured = from_seconds(bench_hours() * 3600.0);
  sc.seed = bench_seed() * 1000003u + std::hash<std::string>{}(sc.name);
  return sc;
}

inline harness::experiment_result run_cell(const harness::scenario& sc) {
  harness::experiment exp(sc);
  return exp.run();
}

}  // namespace omega::bench
