// Figure 5 — S2 (Omega_lc) versus S3 (Omega_l) in lossy networks.
//
// Paper (§6.4): the message-efficient S3 is essentially as good as S2 on
// lossy links — both perfectly stable (lambda_u = 0, so the paper omits
// that plot), recovery times close to the 1 s detection bound, and
// availability >= 99.82% even in the worst network.
#include <iostream>

#include "bench_support.hpp"

using namespace omega;

namespace {

constexpr double kPaperTrS2[5] = {0.88, 0.90, 0.95, 0.93, 1.02};
constexpr double kPaperTrS3[5] = {0.90, 0.92, 1.00, 0.95, 1.05};
constexpr double kPaperPlS2[5] = {0.9993, 0.9992, 0.9990, 0.9991, 0.9982};
constexpr double kPaperPlS3[5] = {0.9993, 0.9992, 0.9988, 0.9990, 0.9984};

harness::experiment_result run(election::algorithm alg, int cell) {
  const auto& link = bench::kLossyGrid[cell];
  harness::scenario sc;
  sc.name = std::string("fig5-") + std::string(election::to_string(alg)) +
            link.label;
  sc.alg = alg;
  sc.links = net::link_profile::lossy(link.mean_delay, link.loss);
  sc = bench::with_defaults(sc);
  return bench::run_cell(sc);
}

}  // namespace

int main() {
  harness::table tr("Figure 5 (top): average leader recovery time, S2 vs S3");
  tr.headers({"links (D, pL)", "S2 paper", "S2 measured", "S3 paper",
              "S3 measured"});
  harness::table pl("Figure 5 (bottom): leader availability, S2 vs S3");
  pl.headers({"links (D, pL)", "S2 paper", "S2 measured", "S3 paper",
              "S3 measured"});
  harness::table lam("Figure 5 (stability check, not plotted in the paper)");
  lam.headers({"links (D, pL)", "S2 lambda_u (/h)", "S3 lambda_u (/h)"});

  for (int i = 0; i < 5; ++i) {
    const auto& link = bench::kLossyGrid[i];
    const auto s2 = run(election::algorithm::omega_lc, i);
    const auto s3 = run(election::algorithm::omega_l, i);

    tr.row({link.label, harness::fmt_double(kPaperTrS2[i], 2),
            harness::fmt_ci(s2.tr_mean_s, s2.tr_ci95_s, 2),
            harness::fmt_double(kPaperTrS3[i], 2),
            harness::fmt_ci(s3.tr_mean_s, s3.tr_ci95_s, 2)});
    pl.row({link.label, harness::fmt_percent(kPaperPlS2[i], 2),
            harness::fmt_percent(s2.p_leader, 2),
            harness::fmt_percent(kPaperPlS3[i], 2),
            harness::fmt_percent(s3.p_leader, 2)});
    lam.row({link.label, harness::fmt_double(s2.lambda_u, 2),
             harness::fmt_double(s3.lambda_u, 2)});
  }

  tr.print(std::cout);
  pl.print(std::cout);
  lam.print(std::cout);
  std::cout << "Expected shape: both algorithms stable (lambda_u = 0), Tr close\n"
               "to the 1 s bound, availability >= 99.8% in every lossy network.\n";
  return 0;
}
