// Micro-benchmarks for the service's hot paths (google-benchmark).
//
// These are not paper figures; they document the cost of the individual
// building blocks: FD parameter computation, link-quality updates, wire
// serialization, the simulator event queue, and a full simulated cluster
// step. Run with --benchmark_filter=... to narrow.
#include <benchmark/benchmark.h>

#include "common/random.hpp"
#include "common/serialization.hpp"
#include "fd/configurator.hpp"
#include "fd/link_quality_estimator.hpp"
#include "harness/experiment.hpp"
#include "proto/wire.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace omega;

void BM_ConfiguratorFeasible(benchmark::State& state) {
  fd::qos_spec qos = fd::qos_spec::paper_default();
  fd::link_estimate link;
  link.loss_probability = 0.1;
  link.delay_mean = msec(100);
  link.delay_stddev = msec(100);
  link.samples = 1000;
  for (auto _ : state) {
    benchmark::DoNotOptimize(fd::configure(qos, link, {}));
  }
}
BENCHMARK(BM_ConfiguratorFeasible);

void BM_ConfiguratorInfeasible(benchmark::State& state) {
  fd::qos_spec qos = fd::qos_spec::paper_default();
  qos.detection_time = msec(50);  // tighter than the link can support
  fd::link_estimate link;
  link.loss_probability = 0.5;
  link.delay_mean = msec(100);
  link.delay_stddev = msec(100);
  link.samples = 1000;
  for (auto _ : state) {
    benchmark::DoNotOptimize(fd::configure(qos, link, {}));
  }
}
BENCHMARK(BM_ConfiguratorInfeasible);

void BM_LinkEstimatorUpdate(benchmark::State& state) {
  fd::link_quality_estimator est;
  std::uint64_t seq = 0;
  time_point now = time_origin;
  for (auto _ : state) {
    now += msec(250);
    est.on_heartbeat(++seq, now - msec(3), now);
    benchmark::DoNotOptimize(est.estimate());
  }
}
BENCHMARK(BM_LinkEstimatorUpdate);

proto::alive_msg sample_alive() {
  proto::alive_msg msg;
  msg.from = node_id{7};
  msg.inc = 3;
  msg.seq = 123456;
  msg.send_time = time_origin + sec(5);
  msg.eta = msec(250);
  proto::group_payload payload;
  payload.group = group_id{1};
  payload.pid = process_id{7};
  payload.candidate = true;
  payload.competing = true;
  payload.accusation_time = time_origin + sec(1);
  payload.local_leader = process_id{3};
  payload.local_leader_acc = time_origin + sec(2);
  msg.groups.push_back(payload);
  return msg;
}

void BM_WireEncodeAlive(benchmark::State& state) {
  const proto::wire_message msg{sample_alive()};
  for (auto _ : state) {
    benchmark::DoNotOptimize(proto::encode(msg));
  }
}
BENCHMARK(BM_WireEncodeAlive);

void BM_WireDecodeAlive(benchmark::State& state) {
  const auto bytes = proto::encode(proto::wire_message{sample_alive()});
  for (auto _ : state) {
    benchmark::DoNotOptimize(proto::decode(bytes));
  }
}
BENCHMARK(BM_WireDecodeAlive);

void BM_EventQueueArmFire(benchmark::State& state) {
  sim::simulator sim;
  rng r{1234};
  const std::size_t batch = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    for (std::size_t i = 0; i < batch; ++i) {
      sim.schedule_at(sim.now() + usec(1 + static_cast<std::int64_t>(
                                              r.uniform_below(1000000))),
                      [] {});
    }
    sim.run_until(sim.now() + sec(2));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch));
}
BENCHMARK(BM_EventQueueArmFire)->Arg(64)->Arg(1024);

void BM_SimulatedClusterSecond(benchmark::State& state) {
  // Cost of simulating one second of a full 12-node S3 cluster.
  harness::scenario sc;
  sc.name = "micro-cluster";
  sc.alg = election::algorithm::omega_l;
  sc.churn.enabled = false;
  sc.measured = sec(1);
  sc.warmup = sec(30);
  for (auto _ : state) {
    harness::experiment exp(sc);
    benchmark::DoNotOptimize(exp.run());
  }
}
BENCHMARK(BM_SimulatedClusterSecond)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
