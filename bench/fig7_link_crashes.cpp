// Figure 7 — S2 vs S3 with crash-prone links.
//
// Paper (§6.5 "Robustness"): on top of the usual workstation churn, every
// directed link crashes (drops everything) for ~3 s on average, with mean
// up-time 600 s, 300 s or 60 s. S2's local-leader forwarding masks
// individual link crashes, so it stays near-perfectly available (98.78% in
// the nastiest setting); S3, with no forwarding, falls to 77.42% and its
// recovery time grows to ~3 s. Both now make mistakes — unavoidable, since
// a 3 s total blackout must defeat a 1 s detection bound.
#include <iostream>

#include "bench_support.hpp"

using namespace omega;

namespace {

struct grid_point {
  const char* label;
  duration mean_uptime;
};

constexpr grid_point kGrid[3] = {
    {"(600s, 3s)", sec(600)}, {"(300s, 3s)", sec(300)}, {"(60s, 3s)", sec(60)}};

// Read off Figure 7 (top/middle/bottom).
constexpr double kPaperTrS2[3] = {1.0, 1.0, 1.1};
constexpr double kPaperTrS3[3] = {1.1, 1.4, 3.0};
constexpr double kPaperLamS2[3] = {10.0, 25.0, 150.0};
constexpr double kPaperLamS3[3] = {20.0, 80.0, 400.0};
constexpr double kPaperPlS2[3] = {0.9980, 0.9980, 0.9878};
constexpr double kPaperPlS3[3] = {0.9950, 0.9766, 0.7742};

harness::experiment_result run(election::algorithm alg, int cell) {
  harness::scenario sc;
  sc.name = std::string("fig7-") + std::string(election::to_string(alg)) +
            kGrid[cell].label;
  sc.alg = alg;
  sc.links = net::link_profile::lan();
  sc.link_crashes =
      net::link_crash_profile::crashes(kGrid[cell].mean_uptime, sec(3));
  sc = bench::with_defaults(sc);
  return bench::run_cell(sc);
}

}  // namespace

int main() {
  harness::table tr("Figure 7 (top): average leader recovery time (s)");
  tr.headers({"links (up, down)", "S2 paper", "S2 measured", "S3 paper",
              "S3 measured"});
  harness::table lam("Figure 7 (middle): mistake rate (/hour)");
  lam.headers({"links (up, down)", "S2 paper", "S2 measured", "S3 paper",
               "S3 measured"});
  harness::table pl("Figure 7 (bottom): leader availability");
  pl.headers({"links (up, down)", "S2 paper", "S2 measured", "S3 paper",
              "S3 measured"});

  for (int i = 0; i < 3; ++i) {
    const auto s2 = run(election::algorithm::omega_lc, i);
    const auto s3 = run(election::algorithm::omega_l, i);

    tr.row({kGrid[i].label, harness::fmt_double(kPaperTrS2[i], 2),
            harness::fmt_ci(s2.tr_mean_s, s2.tr_ci95_s, 2),
            harness::fmt_double(kPaperTrS3[i], 2),
            harness::fmt_ci(s3.tr_mean_s, s3.tr_ci95_s, 2)});
    lam.row({kGrid[i].label, harness::fmt_double(kPaperLamS2[i], 1),
             harness::fmt_double(s2.lambda_u, 1),
             harness::fmt_double(kPaperLamS3[i], 1),
             harness::fmt_double(s3.lambda_u, 1)});
    pl.row({kGrid[i].label, harness::fmt_percent(kPaperPlS2[i], 2),
            harness::fmt_percent(s2.p_leader, 2),
            harness::fmt_percent(kPaperPlS3[i], 2),
            harness::fmt_percent(s3.p_leader, 2)});
  }

  tr.print(std::cout);
  lam.print(std::cout);
  pl.print(std::cout);
  std::cout << "Expected shape: S2 degrades gracefully (still ~99% available at\n"
               "60 s link up-time) while S3 collapses toward ~77%; S3's Tr grows\n"
               "toward ~3 s; both mistake rates climb as link crashes get more\n"
               "frequent, S3's faster than S2's.\n";
  return 0;
}
