// Live scale-out runtime bench (not a paper figure; "fig14" extends the
// figure sequence past the sim-only evaluation).
//
// Hosts N real leader-election services — real UDP sockets on localhost,
// partitioned into groups of `g` — on a small pool of shared epoll loops,
// and measures what the syscall-batched runtime (sendmmsg/recvmmsg + send
// rings + encode-once payloads, DESIGN.md §10) buys over the per-datagram
// baseline (one sendto/recvfrom per datagram) at identical protocol
// traffic. Reported per cell:
//
//   msgs/s          datagrams delivered per wall second (both modes must
//                   agree within noise: batching changes syscalls, not
//                   protocol traffic);
//   syscalls/msg    network-related syscalls per datagram moved — THE
//                   figure of merit, gated >= 5x apart by scripts/ci.sh;
//   cpu ms/node/s   process CPU per hosted service per wall second;
//   leaders_ok      every group ends the window agreeing on one live
//                   leader (the run is invalid otherwise).
//
// Env knobs:
//   OMEGA_LIVE_SERVICES   comma list of N (default "32,128,256")
//   OMEGA_LIVE_GROUP      services per election group   (default 8)
//   OMEGA_LIVE_LOOPS      event loops in the pool       (default 4)
//   OMEGA_LIVE_SECONDS    measured window per cell      (default 5)
//   OMEGA_LIVE_WARMUP     settle time before measuring  (default 2)
//   OMEGA_LIVE_DETECT_MS  per-group FD detection bound  (default 400)
//   OMEGA_BENCH_JSON      output path (default BENCH_live.json)
//
// Machine readable: BENCH_live.json. When BENCH_roster.json (fig12) is
// present its 120-node scoped-membership sim cell is embedded as
// `sim_reference`, putting the live msgs/s next to the simulated ones.
#include <sys/resource.h>

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_support.hpp"
#include "election/elector.hpp"
#include "harness/report.hpp"
#include "runtime/event_loop.hpp"
#include "runtime/loop_transport.hpp"
#include "service/service.hpp"

using namespace omega;

namespace {

std::vector<std::size_t> env_sizes(const char* name,
                                   std::vector<std::size_t> fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  std::vector<std::size_t> out;
  std::stringstream ss(v);
  std::string tok;
  while (std::getline(ss, tok, ',')) {
    const long n = std::strtol(tok.c_str(), nullptr, 10);
    if (n > 0) out.push_back(static_cast<std::size_t>(n));
  }
  return out.empty() ? fallback : out;
}

double cpu_seconds() {
  rusage ru{};
  ::getrusage(RUSAGE_SELF, &ru);
  const auto tv = [](const timeval& t) {
    return static_cast<double>(t.tv_sec) +
           static_cast<double>(t.tv_usec) * 1e-6;
  };
  return tv(ru.ru_utime) + tv(ru.ru_stime);
}

std::string pad(std::string s, std::size_t width) {
  if (s.size() < width) s.append(width - s.size(), ' ');
  return s;
}

node_id nid(std::size_t i) { return node_id{static_cast<std::uint32_t>(i)}; }
process_id pid(std::size_t i) {
  return process_id{static_cast<std::uint32_t>(i)};
}

struct cell_result {
  std::size_t services = 0;
  std::string mode;
  double elapsed_s = 0;
  double msgs_per_s = 0;
  double syscalls_per_msg = 0;
  double cpu_ms_per_node_per_s = 0;
  bool leaders_ok = false;
  runtime::loop_stats io;  // deltas over the measured window
  std::uint64_t send_errors = 0;
  std::uint64_t queue_drops = 0;
};

/// One hosted instance: a service and its socket, pinned to one loop.
struct instance {
  runtime::event_loop* loop = nullptr;
  std::unique_ptr<runtime::loop_udp_transport> transport;
  std::unique_ptr<service::leader_election_service> svc;
};

cell_result run_cell(std::size_t n_services, bool batching,
                     std::size_t group_size, std::size_t n_loops,
                     double warmup_s, double measured_s, duration detection) {
  cell_result r;
  r.services = n_services;
  r.mode = batching ? "batched" : "per_datagram";

  runtime::event_loop::options opts;
  opts.batching = batching;
  runtime::loop_pool pool(n_loops, opts);

  // Bind every socket on port 0 first, then distribute the real address
  // book per group (nobody talks across groups, so each transport only
  // learns its group's endpoints — the scoped-membership deployment).
  const std::size_t n_groups = (n_services + group_size - 1) / group_size;
  std::vector<instance> cluster(n_services);
  for (std::size_t i = 0; i < n_services; ++i) {
    const std::size_t group = i / group_size;
    runtime::udp_roster bind_roster;
    const std::size_t lo = group * group_size;
    const std::size_t hi = std::min(lo + group_size, n_services);
    for (std::size_t j = lo; j < hi; ++j) {
      bind_roster[nid(j)] = runtime::udp_endpoint{"127.0.0.1", 0};
    }
    // Whole groups share a loop: members tick in the same slack-clustered
    // iteration, so a group's ALIVE fan-out goes out in one flush and
    // lands on each member's socket as one recvmmsg burst. (Assigning
    // round-robin by service instead scatters each group over every loop
    // and caps the receive batch at services-per-loop-per-group.)
    cluster[i].loop = &pool.at(group);
    cluster[i].transport = std::make_unique<runtime::loop_udp_transport>(
        *cluster[i].loop, nid(i), bind_roster);
  }
  for (std::size_t group = 0; group < n_groups; ++group) {
    const std::size_t lo = group * group_size;
    const std::size_t hi = std::min(lo + group_size, n_services);
    runtime::udp_roster real_roster;
    std::vector<node_id> members;
    for (std::size_t j = lo; j < hi; ++j) {
      real_roster[nid(j)] = runtime::udp_endpoint{
          "127.0.0.1", cluster[j].transport->bound_port()};
      members.push_back(nid(j));
    }
    for (std::size_t j = lo; j < hi; ++j) {
      auto& inst = cluster[j];
      inst.loop->sync([&] {
        inst.transport->set_roster(real_roster);
        service::service_config cfg;
        cfg.self = nid(j);
        cfg.roster = members;
        cfg.alg = election::algorithm::omega_lc;
        inst.svc = std::make_unique<service::leader_election_service>(
            *inst.loop, *inst.loop, *inst.transport, cfg);
        inst.svc->register_process(pid(j));
        service::join_options jopts;
        jopts.qos.detection_time = detection;
        inst.svc->join_group(pid(j), group_id{static_cast<std::uint32_t>(group + 1)}, jopts);
      });
    }
  }

  std::this_thread::sleep_for(std::chrono::duration<double>(warmup_s));

  const runtime::loop_stats before = pool.total_stats();
  const double cpu_before = cpu_seconds();
  const auto wall_before = std::chrono::steady_clock::now();

  std::this_thread::sleep_for(std::chrono::duration<double>(measured_s));

  const runtime::loop_stats after = pool.total_stats();
  const double cpu_after = cpu_seconds();
  r.elapsed_s = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                              wall_before)
                    .count();

  // Deltas over the measured window only (warm-up joins, HELLO storms and
  // the teardown below don't pollute the figure).
  r.io = after;
  r.io.epoll_waits -= before.epoll_waits;
  r.io.eventfd_reads -= before.eventfd_reads;
  r.io.sendmmsg_calls -= before.sendmmsg_calls;
  r.io.sendto_calls -= before.sendto_calls;
  r.io.recvmmsg_calls -= before.recvmmsg_calls;
  r.io.recvfrom_calls -= before.recvfrom_calls;
  r.io.datagrams_sent -= before.datagrams_sent;
  r.io.datagrams_received -= before.datagrams_received;
  r.io.bytes_sent -= before.bytes_sent;
  r.io.bytes_received -= before.bytes_received;
  r.io.timers_fired -= before.timers_fired;
  r.io.tasks_run -= before.tasks_run;
  r.io.iterations -= before.iterations;

  const double moved = static_cast<double>(r.io.datagrams_sent +
                                           r.io.datagrams_received);
  r.msgs_per_s = static_cast<double>(r.io.datagrams_received) / r.elapsed_s;
  r.syscalls_per_msg =
      moved > 0 ? static_cast<double>(r.io.syscalls()) / moved : 0.0;
  r.cpu_ms_per_node_per_s = (cpu_after - cpu_before) * 1000.0 /
                            static_cast<double>(n_services) / r.elapsed_s;

  // Every group must agree on one live leader, checked on each member's
  // loop thread.
  r.leaders_ok = true;
  for (std::size_t group = 0; group < n_groups && r.leaders_ok; ++group) {
    const std::size_t lo = group * group_size;
    const std::size_t hi = std::min(lo + group_size, n_services);
    std::optional<process_id> first;
    for (std::size_t j = lo; j < hi && r.leaders_ok; ++j) {
      auto& inst = cluster[j];
      inst.loop->sync([&] {
        const auto view = inst.svc->leader(group_id{static_cast<std::uint32_t>(group + 1)});
        if (!view.has_value() || (first.has_value() && view != first)) {
          r.leaders_ok = false;
        }
        if (!first.has_value()) first = view;
      });
    }
  }

  for (auto& inst : cluster) {
    inst.loop->sync([&] {
      r.send_errors += inst.transport->stats().send_errors();
      r.queue_drops += inst.transport->stats().send_queue_drops;
      inst.svc.reset();
      inst.transport.reset();
    });
  }
  pool.stop_all();
  return r;
}

std::string json_cell(const cell_result& r) {
  std::string s = "{";
  s += "\"services\": " + std::to_string(r.services);
  s += ", \"mode\": \"" + r.mode + "\"";
  s += ", \"elapsed_s\": " + harness::fmt_double(r.elapsed_s, 3);
  s += ", \"msgs_per_s\": " + harness::fmt_double(r.msgs_per_s, 1);
  s += ", \"syscalls_per_msg\": " + harness::fmt_double(r.syscalls_per_msg, 4);
  s += ", \"cpu_ms_per_node_per_s\": " +
       harness::fmt_double(r.cpu_ms_per_node_per_s, 3);
  s += ", \"leaders_ok\": " + std::string(r.leaders_ok ? "true" : "false");
  s += ", \"datagrams_sent\": " + std::to_string(r.io.datagrams_sent);
  s += ", \"datagrams_received\": " + std::to_string(r.io.datagrams_received);
  s += ", \"bytes_sent\": " + std::to_string(r.io.bytes_sent);
  s += ", \"syscalls\": " + std::to_string(r.io.syscalls());
  s += ", \"sendmmsg_calls\": " + std::to_string(r.io.sendmmsg_calls);
  s += ", \"sendto_calls\": " + std::to_string(r.io.sendto_calls);
  s += ", \"recvmmsg_calls\": " + std::to_string(r.io.recvmmsg_calls);
  s += ", \"recvfrom_calls\": " + std::to_string(r.io.recvfrom_calls);
  s += ", \"epoll_waits\": " + std::to_string(r.io.epoll_waits);
  s += ", \"send_errors\": " + std::to_string(r.send_errors);
  s += ", \"queue_drops\": " + std::to_string(r.queue_drops);
  s += "}";
  return s;
}

/// Crude extraction of fig12's 120-node scoped3 sim cell, if the artifact
/// exists: find "\"nodes\": 120", then the first "scoped3" object after
/// it, then its messages_per_s value. Any miss returns empty.
std::string sim_reference() {
  std::ifstream in("BENCH_roster.json");
  if (!in) return {};
  std::string all((std::istreambuf_iterator<char>(in)),
                  std::istreambuf_iterator<char>());
  const auto row = all.find("\"nodes\": 120");
  if (row == std::string::npos) return {};
  const auto scoped = all.find("\"scoped3\"", row);
  if (scoped == std::string::npos) return {};
  const auto key = all.find("\"messages_per_s\": ", scoped);
  if (key == std::string::npos) return {};
  const auto start = key + std::string("\"messages_per_s\": ").size();
  const auto end = all.find_first_of(",}", start);
  if (end == std::string::npos) return {};
  return "{\"bench\": \"fig12_roster_scope\", \"nodes\": 120, "
         "\"membership\": \"scoped3\", \"messages_per_s\": " +
         all.substr(start, end - start) + "}";
}

}  // namespace

int main() {
  const auto sizes = env_sizes("OMEGA_LIVE_SERVICES", {32, 128, 256});
  const auto group_size = static_cast<std::size_t>(
      bench::env_double("OMEGA_LIVE_GROUP", 8.0));
  const auto n_loops = static_cast<std::size_t>(
      bench::env_double("OMEGA_LIVE_LOOPS", 4.0));
  const double measured_s = bench::env_double("OMEGA_LIVE_SECONDS", 5.0);
  const double warmup_s = bench::env_double("OMEGA_LIVE_WARMUP", 2.0);
  const auto detection =
      msec(static_cast<std::int64_t>(bench::env_double("OMEGA_LIVE_DETECT_MS", 400.0)));

  std::cout << "fig14_live: real-socket scale-out runtime — " << n_loops
            << " shared epoll loop(s), groups of " << group_size << ", "
            << measured_s << "s measured per cell\n\n";
  std::cout << "services  mode          msgs/s    syscalls/msg  cpu ms/node/s"
               "  leaders\n";

  std::string rows;
  std::vector<cell_result> results;
  for (const std::size_t n : sizes) {
    for (const bool batching : {true, false}) {
      const cell_result r = run_cell(n, batching, group_size, n_loops,
                                     warmup_s, measured_s, detection);
      std::cout << pad(std::to_string(n), 8)
                << "  " << pad(r.mode, 12) << "  "
                << pad(harness::fmt_double(r.msgs_per_s, 1), 8)
                << "  " << pad(harness::fmt_double(r.syscalls_per_msg, 4), 12)
                << "  " << pad(harness::fmt_double(r.cpu_ms_per_node_per_s, 3), 13)
                << "  " << (r.leaders_ok ? "ok" : "FAIL") << "\n";
      if (!rows.empty()) rows += ",\n    ";
      rows += json_cell(r);
      results.push_back(r);
    }
    // Per-N batching win, the number ci.sh gates on.
    const auto& batched = results[results.size() - 2];
    const auto& base = results[results.size() - 1];
    if (batched.syscalls_per_msg > 0) {
      std::cout << "          -> syscall amortization: "
                << harness::fmt_double(
                       base.syscalls_per_msg / batched.syscalls_per_msg, 2)
                << "x fewer syscalls/msg batched\n";
    }
  }

  const std::string sim = sim_reference();
  const char* out_path = std::getenv("OMEGA_BENCH_JSON");
  std::ofstream out(out_path && *out_path ? out_path : "BENCH_live.json");
  out << "{\n  \"bench\": \"fig14_live\""
      << ",\n  \"group_size\": " << group_size
      << ",\n  \"loops\": " << n_loops
      << ",\n  \"measured_s\": " << harness::fmt_double(measured_s, 3)
      << ",\n  \"detection_ms\": "
      << std::chrono::duration_cast<std::chrono::milliseconds>(detection).count()
      << ",\n  \"cells\": [\n    " << rows << "\n  ]"
      << ",\n  \"sim_reference\": " << (sim.empty() ? "null" : sim)
      << "\n}\n";

  bool all_ok = true;
  for (const auto& r : results) all_ok = all_ok && r.leaders_ok;
  return all_ok ? 0 : 1;
}
