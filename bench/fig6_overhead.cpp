// Figure 6 — CPU and network-bandwidth overhead of S2 vs S3.
//
// Paper (§6.5): per-workstation overhead at n = 4, 8, 12 workstations in
// two networks — the real LAN (0.025 ms, 0) and the worst simulated lossy
// network (100 ms, 0.1). S2's cost grows roughly quadratically with n
// (every process heartbeats every other process forever), S3's only
// linearly (eventually only the leader sends). Headline worst-case points:
// S3 <= 0.04% CPU and 6.48 KB/s, S2 <= 0.3% CPU and 62.38 KB/s.
//
// Absolute CPU% depends on the authors' P4 3.2 GHz hardware; our cost model
// counts protocol work (messages sent/received, timer fires) and converts
// with a fixed per-operation constant, so the *growth shape* and the
// S2-vs-S3 ratio are the comparable quantities.
#include <iostream>

#include "bench_support.hpp"

using namespace omega;

namespace {

struct paper_point {
  double cpu_lan, cpu_lossy;  // percent
  double kbs_lan, kbs_lossy;  // KB/s
};

// Read off Figure 6 (n = 4, 8, 12).
constexpr paper_point kPaperS2[3] = {
    {0.02, 0.05, 4.0, 8.0}, {0.08, 0.15, 14.0, 28.0}, {0.17, 0.30, 30.0, 62.38}};
constexpr paper_point kPaperS3[3] = {
    {0.005, 0.01, 1.2, 2.2}, {0.01, 0.02, 2.4, 4.4}, {0.02, 0.04, 3.6, 6.48}};

harness::experiment_result run(election::algorithm alg, std::size_t n,
                               bool lossy) {
  harness::scenario sc;
  sc.name = std::string("fig6-") + std::string(election::to_string(alg)) +
            (lossy ? "-lossy-" : "-lan-") + std::to_string(n);
  sc.alg = alg;
  sc.nodes = n;
  sc.links = lossy ? net::link_profile::lossy(msec(100), 0.1)
                   : net::link_profile::lan();
  sc = bench::with_defaults(sc);
  // Overhead rates converge fast; a quarter of the usual window suffices.
  sc.measured = sc.measured / 4;
  return bench::run_cell(sc);
}

}  // namespace

int main() {
  const std::size_t sizes[3] = {4, 8, 12};

  harness::table cpu("Figure 6 (top): average CPU per workstation (%)");
  cpu.headers({"n", "net", "S2 paper", "S2 measured", "S3 paper", "S3 measured",
               "S2/S3 ratio"});
  harness::table net_tbl(
      "Figure 6 (bottom): average traffic per workstation (KB/s)");
  net_tbl.headers({"n", "net", "S2 paper", "S2 measured", "S3 paper",
                   "S3 measured", "S2/S3 ratio"});

  for (int i = 0; i < 3; ++i) {
    for (bool lossy : {false, true}) {
      const auto s2 = run(election::algorithm::omega_lc, sizes[i], lossy);
      const auto s3 = run(election::algorithm::omega_l, sizes[i], lossy);
      const char* net_label = lossy ? "(100ms, 0.1)" : "(0.025ms, 0)";

      cpu.row({std::to_string(sizes[i]), net_label,
               harness::fmt_double(lossy ? kPaperS2[i].cpu_lossy
                                         : kPaperS2[i].cpu_lan, 3),
               harness::fmt_double(s2.cpu_percent, 3),
               harness::fmt_double(lossy ? kPaperS3[i].cpu_lossy
                                         : kPaperS3[i].cpu_lan, 3),
               harness::fmt_double(s3.cpu_percent, 3),
               harness::fmt_double(s2.cpu_percent /
                                       std::max(s3.cpu_percent, 1e-9), 1)});
      net_tbl.row({std::to_string(sizes[i]), net_label,
                   harness::fmt_double(lossy ? kPaperS2[i].kbs_lossy
                                             : kPaperS2[i].kbs_lan, 2),
                   harness::fmt_double(s2.kb_per_second, 2),
                   harness::fmt_double(lossy ? kPaperS3[i].kbs_lossy
                                             : kPaperS3[i].kbs_lan, 2),
                   harness::fmt_double(s3.kb_per_second, 2),
                   harness::fmt_double(s2.kb_per_second /
                                           std::max(s3.kb_per_second, 1e-9),
                                       1)});
    }
  }

  cpu.print(std::cout);
  net_tbl.print(std::cout);
  std::cout << "Expected shape: S2 grows ~quadratically with n, S3 ~linearly;\n"
               "overhead rises when the network degrades; at n = 12 the S2/S3\n"
               "traffic ratio is roughly an order of magnitude (paper: 9.6x).\n";
  return 0;
}
