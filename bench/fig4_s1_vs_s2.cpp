// Figure 4 — S1 (Omega_id) versus S2 (Omega_lc) in lossy networks.
//
// Paper (§6.3): S2 is perfectly stable (lambda_u = 0 in all five networks)
// while S1 makes ~6 mistakes/hour; S2's recovery time is slightly larger
// (the local-leader forwarding step delays demotion of a crashed leader),
// yet its availability beats S1 everywhere thanks to the missing
// unjustified demotions.
#include <iostream>

#include "bench_support.hpp"

using namespace omega;

namespace {

constexpr double kPaperTrS1[5] = {0.81, 0.83, 0.88, 0.86, 0.94};
constexpr double kPaperTrS2[5] = {0.88, 0.90, 0.95, 0.93, 1.02};
constexpr double kPaperLamS1[5] = {6.0, 6.0, 6.0, 6.0, 6.0};
constexpr double kPaperLamS2[5] = {0.0, 0.0, 0.0, 0.0, 0.0};
constexpr double kPaperPlS1[5] = {0.9989, 0.9988, 0.9985, 0.9986, 0.9982};
constexpr double kPaperPlS2[5] = {0.9993, 0.9992, 0.9990, 0.9991, 0.9982};

harness::experiment_result run(election::algorithm alg, int cell) {
  const auto& link = bench::kLossyGrid[cell];
  harness::scenario sc;
  sc.name = std::string("fig4-") + std::string(election::to_string(alg)) +
            link.label;
  sc.alg = alg;
  sc.links = net::link_profile::lossy(link.mean_delay, link.loss);
  sc = bench::with_defaults(sc);
  return bench::run_cell(sc);
}

}  // namespace

int main() {
  harness::table tr("Figure 4 (top): average leader recovery time, S1 vs S2");
  tr.headers({"links (D, pL)", "S1 paper", "S1 measured", "S2 paper",
              "S2 measured"});
  harness::table lam("Figure 4 (middle): mistake rate, S1 vs S2");
  lam.headers({"links (D, pL)", "S1 paper", "S1 measured", "S2 paper",
               "S2 measured"});
  harness::table pl("Figure 4 (bottom): leader availability, S1 vs S2");
  pl.headers({"links (D, pL)", "S1 paper", "S1 measured", "S2 paper",
              "S2 measured"});

  for (int i = 0; i < 5; ++i) {
    const auto& link = bench::kLossyGrid[i];
    const auto s1 = run(election::algorithm::omega_id, i);
    const auto s2 = run(election::algorithm::omega_lc, i);

    tr.row({link.label, harness::fmt_double(kPaperTrS1[i], 2),
            harness::fmt_ci(s1.tr_mean_s, s1.tr_ci95_s, 2),
            harness::fmt_double(kPaperTrS2[i], 2),
            harness::fmt_ci(s2.tr_mean_s, s2.tr_ci95_s, 2)});
    lam.row({link.label, harness::fmt_double(kPaperLamS1[i], 1),
             harness::fmt_double(s1.lambda_u, 1),
             harness::fmt_double(kPaperLamS2[i], 1),
             harness::fmt_double(s2.lambda_u, 1)});
    pl.row({link.label, harness::fmt_percent(kPaperPlS1[i], 2),
            harness::fmt_percent(s1.p_leader, 2),
            harness::fmt_percent(kPaperPlS2[i], 2),
            harness::fmt_percent(s2.p_leader, 2)});
  }

  tr.print(std::cout);
  lam.print(std::cout);
  pl.print(std::cout);
  std::cout << "Expected shape: S2 lambda_u = 0 everywhere; S1 ~6/h; S2's Tr a\n"
               "little above S1's; S2's availability >= S1's in every network.\n";
  return 0;
}
