// Ablation bench — not a paper figure, but the paper's two causal claims,
// isolated mechanism by mechanism (DESIGN.md §"ablation benches"):
//
//   claim A (§6.3/Fig. 7): Omega_lc tolerates crashed links *because of*
//     the stage-2 local-leader forwarding. We run Fig. 7's nastiest setting
//     with and without forwarding.
//   claim B (§6.4): Omega_l stays stable despite voluntary silence *because
//     of* the phase guard on accusations. We run the standard churn setting
//     with and without the guard.
#include <iostream>

#include "bench_support.hpp"

using namespace omega;

namespace {

harness::experiment_result run(election::algorithm alg, bool link_crashes,
                               const char* tag) {
  harness::scenario sc;
  sc.name = std::string("ablation-") + tag;
  sc.alg = alg;
  sc.links = net::link_profile::lan();
  if (link_crashes) {
    sc.link_crashes = net::link_crash_profile::crashes(sec(60), sec(3));
  }
  sc = bench::with_defaults(sc);
  return bench::run_cell(sc);
}

}  // namespace

int main() {
  harness::table fwd(
      "Ablation A: Omega_lc forwarding under (60s, 3s) link crashes");
  fwd.headers({"variant", "P_leader", "lambda_u (/h)", "Tr (s)"});
  for (auto [alg, label] :
       {std::pair{election::algorithm::omega_lc, "S2 (forwarding ON)"},
        std::pair{election::algorithm::omega_lc_noforward,
                  "S2 w/o forwarding"}}) {
    const auto r = run(alg, /*link_crashes=*/true, label);
    fwd.row({label, harness::fmt_percent(r.p_leader, 2),
             harness::fmt_double(r.lambda_u, 1),
             harness::fmt_ci(r.tr_mean_s, r.tr_ci95_s, 2)});
  }

  harness::table guard(
      "Ablation B: Omega_l phase guard, default churn, LAN links");
  guard.headers({"variant", "P_leader", "lambda_u (/h)", "unjustified"});
  for (auto [alg, label] :
       {std::pair{election::algorithm::omega_l, "S3 (phase guard ON)"},
        std::pair{election::algorithm::omega_l_nophase,
                  "S3 w/o phase guard"}}) {
    const auto r = run(alg, /*link_crashes=*/false, label);
    guard.row({label, harness::fmt_percent(r.p_leader, 2),
               harness::fmt_double(r.lambda_u, 1),
               std::to_string(r.unjustified)});
  }

  fwd.print(std::cout);
  guard.print(std::cout);
  std::cout << "Expected shape for A: removing forwarding collapses\n"
               "availability under link crashes (the Figure-7 mechanism).\n"
               "For B: aggregate metrics typically do NOT separate — the\n"
               "graceful-withdrawal ALIVE and the not-competing check already\n"
               "shield most voluntary silence; the phase guard closes a narrow\n"
               "race (a stale in-flight accusation arriving just after\n"
               "re-entry) that this workload almost never triggers. The unit\n"
               "tests (AblationOmegaL.*) demonstrate the mechanism directly.\n";
  return 0;
}
