// Figure 12 (extension, not in the paper) — roster-scoped vs cluster-wide
// membership dissemination on deep hierarchies.
//
// fig11 showed the two-tier hierarchy collapses ALIVE fan-out from O(n^2)
// to ~O(n); after that, the cluster-wide HELLO anti-entropy broadcast is
// the dominant per-node cost: every node still gossips membership to all n
// peers every `hello_interval`, though it shares groups with only a
// handful of them. `membership::hello_fanout::roster` scopes each HELLO
// (and LEAVE) to the per-group rosters — candidates to the whole group
// roster, listeners to the candidate hosts — with a round-robin discovery
// probe healing lost joins.
//
// This figure sweeps a 3-tier shape (regions of 10 -> zones -> global) at
// 120/300/500 nodes and measures, per cell:
//   cluster3 — 3-tier hierarchy, cluster-wide HELLO (pre-scoping baseline),
//   scoped3  — 3-tier hierarchy, roster-scoped HELLO,
//   two_tier — 2-tier hierarchy, roster-scoped (re-election baseline: the
//              acceptance gate wants 3-tier failover within 25% of it).
// Total messages/s and HELLO messages/s on the wire (the latter split out
// with a `sim_network` send tap + `proto::peek_kind`), bytes/s, realized
// ALIVE/node/s, global re-election time after crashing the agreed global
// leader, mean per-region availability, and the cross-tier blame split of
// global outages. Machine readable: BENCH_roster.json (OMEGA_BENCH_JSON).
#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_support.hpp"
#include "obs/forensics.hpp"
#include "proto/wire.hpp"

using namespace omega;

namespace {

constexpr std::size_t kRegionSize = 10;

/// Same interactive QoS as fig11 on every tier: 1 s detection bound, one
/// mistake per 2 h, 99.99% query accuracy.
fd::qos_spec bench_qos() {
  fd::qos_spec qos;
  qos.detection_time = sec(1);
  qos.mistake_recurrence =
      std::chrono::duration_cast<omega::duration>(std::chrono::hours(2));
  qos.query_accuracy = 0.9999;
  return qos;
}

enum class policy { cluster3, scoped3, two_tier };

const char* policy_label(policy p) {
  switch (p) {
    case policy::cluster3: return "cluster3";
    case policy::scoped3: return "scoped3";
    case policy::two_tier: return "two-tier";
  }
  return "?";
}

harness::scenario make_scenario(std::size_t nodes, policy p) {
  harness::scenario sc;
  sc.name = "fig12-" + std::string(policy_label(p)) + "-" + std::to_string(nodes);
  sc.nodes = nodes;
  sc.alg = election::algorithm::omega_lc;
  sc.links = net::link_profile::lan();
  sc.qos = bench_qos();
  sc.churn = harness::churn_profile::none();  // failovers are driven manually
  const std::size_t regions = (nodes + kRegionSize - 1) / kRegionSize;
  if (p == policy::two_tier) {
    sc.hierarchy = harness::hierarchy_profile::with_regions(regions);
  } else {
    const std::size_t zones = std::max<std::size_t>(1, regions / 5);
    sc.hierarchy = harness::hierarchy_profile::three_tier(regions, zones);
  }
  sc.hierarchy.scoped_hello = (p != policy::cluster3);
  sc.hierarchy.global_qos = bench_qos();
  // Trace every node so the failover phase can attribute each re-election's
  // latency budget (detection / dissemination / election) from the merged
  // event stream. Virtual-time traffic is unaffected — the CI overhead gate
  // (scripts/ci.sh) checks msgs/s against the pre-instrumentation baseline.
  sc.trace = true;
  // Causal stamping on: the overhead gate measures the worst case — every
  // causally potent datagram carries the 16-byte version-2 cause stamp.
  // msgs/s must still stay within 3% of the pre-instrumentation baseline.
  sc.causal = true;
  sc.warmup = sec(30);
  sc.seed = omega::bench::bench_seed() * 1000003u + nodes;  // same per roster
  return sc;
}

struct cell_result {
  double messages_per_s = 0.0;        // all datagrams on the wire, cluster total
  double hello_messages_per_s = 0.0;  // HELLO datagrams only (send tap)
  double bytes_per_s = 0.0;
  double alive_per_node_per_s = 0.0;
  double reelection_mean_s = 0.0;  // crash -> cluster-wide new global leader
  std::size_t reelection_samples = 0;
  double region_availability_mean = 0.0;
  std::uint64_t blamed_regional = 0;
  std::uint64_t blamed_global = 0;
  /// Forensic latency budget of the measured re-elections (means over the
  /// attributed outages): how much of each interval was failure detection,
  /// suspicion dissemination, and election convergence.
  obs::forensics_summary budget;
  /// Real time spent simulating the whole cell (settle + traffic window +
  /// failovers) and the events it took — the simulator-cost numbers the
  /// ci.sh wall-clock regression gate tracks.
  double wall_clock_s = 0.0;
  std::uint64_t events_executed = 0;
};

struct failover_sample {
  double recovery_s = -1.0;  // crash -> agreement on a live successor
  std::optional<obs::outage_budget> budget;
};

/// Crashes the node hosting the current agreed (global) leader, measures
/// the time until every live node agrees on a different live leader, and
/// attributes that interval from the merged trace.
failover_sample measure_failover(harness::experiment& exp) {
  auto& sim = exp.simulator();
  failover_sample sample;
  std::optional<process_id> leader = exp.group().agreed_leader();
  const time_point deadline = sim.now() + sec(30);
  while (!leader.has_value() && sim.now() < deadline) {
    sim.run_until(sim.now() + msec(100));
    leader = exp.group().agreed_leader();
  }
  if (!leader.has_value()) return sample;  // never settled: report as failure

  const node_id victim{leader->value()};  // harness runs pid i on node i
  const time_point crash_at = sim.now();
  exp.crash_node(victim);
  std::optional<process_id> successor;
  while (sim.now() < crash_at + sec(30)) {
    sim.run_until(sim.now() + msec(25));
    const auto agreed = exp.group().agreed_leader();
    if (agreed.has_value() && *agreed != *leader) {
      successor = agreed;
      break;
    }
  }
  if (successor.has_value()) {
    const time_point converged_at = sim.now();
    sample.recovery_s = to_seconds(converged_at - crash_at);
    sample.budget =
        exp.attribute_outage(victim, crash_at, converged_at, successor);
  }
  exp.recover_node(victim);
  sim.run_until(sim.now() + sec(10));  // let it rejoin cleanly
  return sample;
}

cell_result run_cell(const harness::scenario& sc, double window_s,
                     std::size_t failovers) {
  omega::bench::wall_timer wall;
  harness::experiment exp(sc);
  auto& sim = exp.simulator();

  // Settle: warm-up plus a short agreement window.
  sim.run_until(time_origin + sc.warmup + sec(10));

  // HELLO share of the wire, via the envelope peek (no full decode).
  std::uint64_t hello_dgrams = 0;
  exp.network().set_send_tap(
      [&hello_dgrams](node_id, node_id, std::span<const std::byte> payload) {
        if (proto::peek_kind(payload) == proto::msg_kind::hello) ++hello_dgrams;
      });

  exp.network().reset_traffic();
  exp.group().begin(sim.now());
  exp.hier_metrics()->begin(sim.now());
  const std::uint64_t alive_base = exp.total_alive_sent();
  const time_point window_from = sim.now();
  sim.run_until(window_from + from_seconds(window_s));

  cell_result res;
  const double span_s = to_seconds(sim.now() - window_from);
  std::uint64_t msgs = 0;
  std::uint64_t bytes = 0;
  for (std::size_t n = 0; n < sc.nodes; ++n) {
    const auto& t = exp.network().traffic(node_id{static_cast<std::uint32_t>(n)});
    msgs += t.datagrams_sent;
    bytes += t.bytes_sent;
  }
  res.messages_per_s = static_cast<double>(msgs) / span_s;
  res.hello_messages_per_s = static_cast<double>(hello_dgrams) / span_s;
  res.bytes_per_s = static_cast<double>(bytes) / span_s;
  res.alive_per_node_per_s =
      static_cast<double>(exp.total_alive_sent() - alive_base) /
      (span_s * static_cast<double>(sc.nodes));

  // Failover phase: global detection + re-election time, blame split and
  // forensic per-phase latency budget.
  double sum = 0.0;
  for (std::size_t k = 0; k < failovers; ++k) {
    const failover_sample s = measure_failover(exp);
    if (s.recovery_s < 0.0) continue;
    sum += s.recovery_s;
    ++res.reelection_samples;
    if (s.budget.has_value()) res.budget.add(*s.budget);
  }
  res.reelection_mean_s =
      res.reelection_samples > 0
          ? sum / static_cast<double>(res.reelection_samples)
          : -1.0;

  exp.group().finish(sim.now());
  exp.hier_metrics()->finish(sim.now());
  const auto* hm = exp.hier_metrics();
  double availability_sum = 0.0;
  for (std::size_t r = 0; r < hm->regions(); ++r) {
    availability_sum += hm->region(r).leader_availability();
  }
  res.region_availability_mean =
      availability_sum / static_cast<double>(hm->regions());
  res.blamed_regional = hm->outages_blamed_regional();
  res.blamed_global = hm->outages_blamed_global();
  res.wall_clock_s = wall.seconds();
  res.events_executed = sim.events_executed();
  return res;
}

std::string json_cell(const cell_result& r) {
  std::string s = "{";
  s += "\"messages_per_s\": " + harness::fmt_double(r.messages_per_s, 1);
  s += ", \"hello_messages_per_s\": " +
       harness::fmt_double(r.hello_messages_per_s, 1);
  s += ", \"bytes_per_s\": " + harness::fmt_double(r.bytes_per_s, 1);
  s += ", \"alive_per_node_per_s\": " +
       harness::fmt_double(r.alive_per_node_per_s, 3);
  s += ", \"reelection_mean_s\": " + harness::fmt_double(r.reelection_mean_s, 3);
  s += ", \"reelection_samples\": " + std::to_string(r.reelection_samples);
  s += ", \"region_availability_mean\": " +
       harness::fmt_double(r.region_availability_mean, 5);
  s += ", \"outages_blamed_regional\": " + std::to_string(r.blamed_regional);
  s += ", \"outages_blamed_global\": " + std::to_string(r.blamed_global);
  s += ", \"wall_clock_s\": " + harness::fmt_double(r.wall_clock_s, 3);
  s += ", \"events_executed\": " + std::to_string(r.events_executed);
  const auto mean_or = [](const running_stats& st, double fallback) {
    return st.empty() ? fallback : st.mean();
  };
  s += ", \"latency_budget\": {\"detection_mean_s\": " +
       harness::fmt_double(mean_or(r.budget.detection, -1.0), 3) +
       ", \"dissemination_mean_s\": " +
       harness::fmt_double(mean_or(r.budget.dissemination, -1.0), 3) +
       ", \"election_mean_s\": " +
       harness::fmt_double(mean_or(r.budget.election, -1.0), 3) +
       ", \"attributed_fraction_mean\": " +
       harness::fmt_double(mean_or(r.budget.fraction, 0.0), 4) + "}";
  s += "}";
  return s;
}

}  // namespace

int main() {
  const double hours = omega::bench::bench_hours();
  // Membership-dissemination economics are stationary: a few minutes of
  // simulated wire suffice per cell, even where the paper ran days.
  const double window_s = std::clamp(hours * 120.0, 45.0, 180.0);
  // OMEGA_BENCH_ROSTERS ("120,300,500" default) restricts the roster sweep:
  // profiling runs and the CI wall-clock gate only need one size each.
  std::vector<std::size_t> rosters = {120, 300, 500};
  if (const char* env = std::getenv("OMEGA_BENCH_ROSTERS"); env && *env) {
    rosters.clear();
    std::size_t value = 0;
    for (const char* c = env;; ++c) {
      if (*c >= '0' && *c <= '9') {
        value = value * 10 + static_cast<std::size_t>(*c - '0');
      } else {
        if (value > 0) rosters.push_back(value);
        value = 0;
        if (*c == '\0') break;
      }
    }
  }

  harness::table t(
      "Figure 12: roster-scoped vs cluster-wide HELLO dissemination, 3-tier "
      "hierarchy (regions of 10)");
  t.headers({"roster", "policy", "msgs/s", "HELLO/s", "KB/s", "ALIVE/node/s",
             "re-election (s)", "det/diss/elect (s)", "region avail",
             "blame reg/glob", "wall (s)"});

  std::string rows_json;
  bool scoped_fewer_at_300 = false;
  bool scoped_fewer_at_500 = false;
  bool scoped_2x_at_500 = false;
  bool reelection_within_25pct_at_500 = false;
  for (const std::size_t nodes : rosters) {
    const std::size_t failovers = nodes >= 300 ? 2 : 3;
    const auto timed_cell = [&](policy p) {
      std::cerr << "fig12: running " << nodes << "/" << policy_label(p)
                << "...\n";
      return run_cell(make_scenario(nodes, p), window_s, failovers);
    };
    const auto cluster3 = timed_cell(policy::cluster3);
    const auto scoped3 = timed_cell(policy::scoped3);
    const auto two_tier = timed_cell(policy::two_tier);
    const auto row = [&](policy p, const cell_result& r) {
      const std::string split =
          r.budget.fraction.empty()
              ? "-"
              : harness::fmt_double(r.budget.detection.mean(), 2) + "/" +
                    harness::fmt_double(r.budget.dissemination.mean(), 2) +
                    "/" + harness::fmt_double(r.budget.election.mean(), 2);
      t.row({std::to_string(nodes), policy_label(p),
             harness::fmt_double(r.messages_per_s, 0),
             harness::fmt_double(r.hello_messages_per_s, 0),
             harness::fmt_double(r.bytes_per_s / 1024.0, 1),
             harness::fmt_double(r.alive_per_node_per_s, 2),
             harness::fmt_double(r.reelection_mean_s, 2), split,
             harness::fmt_double(r.region_availability_mean, 4),
             std::to_string(r.blamed_regional) + "/" +
                 std::to_string(r.blamed_global),
             harness::fmt_double(r.wall_clock_s, 1)});
    };
    row(policy::cluster3, cluster3);
    row(policy::scoped3, scoped3);
    row(policy::two_tier, two_tier);
    if (nodes == 300) {
      scoped_fewer_at_300 = scoped3.messages_per_s < cluster3.messages_per_s;
    }
    if (nodes == 500) {
      scoped_fewer_at_500 = scoped3.messages_per_s < cluster3.messages_per_s;
      scoped_2x_at_500 =
          scoped3.messages_per_s * 2.0 <= cluster3.messages_per_s;
      reelection_within_25pct_at_500 =
          scoped3.reelection_mean_s > 0.0 && two_tier.reelection_mean_s > 0.0 &&
          scoped3.reelection_mean_s <= 1.25 * two_tier.reelection_mean_s;
    }
    if (!rows_json.empty()) rows_json += ",\n    ";
    rows_json += "{\"nodes\": " + std::to_string(nodes) +
                 ", \"cluster3\": " + json_cell(cluster3) +
                 ", \"scoped3\": " + json_cell(scoped3) +
                 ", \"two_tier\": " + json_cell(two_tier) + "}";
  }
  t.print(std::cout);
  std::cout << "Expected shape: scoped dissemination sends each node's HELLO\n"
               "to its group rosters (candidates) or candidate hosts\n"
               "(listeners) instead of all n peers, so HELLO traffic stops\n"
               "growing with the cluster and total msgs/s drops several-fold\n"
               "at 300+ nodes, at unchanged failover behaviour.\n"
            << "scoped_fewer_msgs_at_300=" << (scoped_fewer_at_300 ? "yes" : "no")
            << " scoped_2x_fewer_msgs_at_500=" << (scoped_2x_at_500 ? "yes" : "no")
            << " reelection_within_25pct_of_two_tier_at_500="
            << (reelection_within_25pct_at_500 ? "yes" : "no") << "\n";

  const char* out_path = std::getenv("OMEGA_BENCH_JSON");
  std::ofstream out(out_path && *out_path ? out_path : "BENCH_roster.json");
  out << "{\n  \"figure\": \"fig12_roster_scope\",\n  \"region_size\": "
      << kRegionSize << ",\n  \"window_s\": " << harness::fmt_double(window_s, 1)
      << ",\n  \"rosters\": [\n    " << rows_json
      << "\n  ],\n  \"scoped_fewer_msgs_at_300\": "
      << (scoped_fewer_at_300 ? "true" : "false")
      << ",\n  \"scoped_fewer_msgs_at_500\": "
      << (scoped_fewer_at_500 ? "true" : "false")
      << ",\n  \"scoped_2x_fewer_msgs_at_500\": "
      << (scoped_2x_at_500 ? "true" : "false")
      << ",\n  \"reelection_within_25pct_of_two_tier_at_500\": "
      << (reelection_within_25pct_at_500 ? "true" : "false") << "\n}\n";
  return 0;
}
