// Figure 8 — effect of the FD detection bound T^U_D on S2 and S3.
//
// Paper (§6.6): on the real LAN with the usual churn, sweeping
// T^U_D in {0.1, 0.25, 0.5, 0.75, 1 s} moves the leader recovery time
// proportionally (Tr stays just below T^U_D) and improves availability
// accordingly — i.e. applications can steer the leader-election QoS
// directly through the FD QoS knob. Footnote 6 records the price of
// T^U_D = 0.1 s: S3 0.1% CPU / 12.6 KB/s, S2 1.23% CPU / 135.17 KB/s.
#include <iostream>

#include "bench_support.hpp"

using namespace omega;

namespace {

constexpr double kTud[5] = {0.1, 0.25, 0.5, 0.75, 1.0};
// Read off Figure 8: Tr tracks just under T^U_D for both algorithms.
constexpr double kPaperTrS2[5] = {0.09, 0.22, 0.45, 0.67, 0.88};
constexpr double kPaperTrS3[5] = {0.10, 0.23, 0.47, 0.70, 0.90};
constexpr double kPaperPlS2[5] = {0.99985, 0.99970, 0.99945, 0.99920, 0.99900};
constexpr double kPaperPlS3[5] = {0.99983, 0.99968, 0.99940, 0.99915, 0.99895};

harness::experiment_result run(election::algorithm alg, int cell) {
  harness::scenario sc;
  sc.name = std::string("fig8-") + std::string(election::to_string(alg)) +
            std::to_string(cell);
  sc.alg = alg;
  sc.links = net::link_profile::lan();
  sc.qos.detection_time = from_seconds(kTud[cell]);
  sc = bench::with_defaults(sc);
  return bench::run_cell(sc);
}

}  // namespace

int main() {
  harness::table tr("Figure 8 (top): Tr vs T^U_D (LAN links, default churn)");
  tr.headers({"T^U_D (s)", "S2 paper", "S2 measured", "S3 paper",
              "S3 measured"});
  harness::table pl("Figure 8 (bottom): P_leader vs T^U_D");
  pl.headers({"T^U_D (s)", "S2 paper", "S2 measured", "S3 paper",
              "S3 measured"});
  harness::table cost("Footnote 6: overhead at T^U_D = 0.1 s (n = 12, LAN)");
  cost.headers({"algorithm", "CPU paper (%)", "CPU measured (%)",
                "traffic paper (KB/s)", "traffic measured (KB/s)"});

  harness::experiment_result fastest_s2, fastest_s3;
  for (int i = 0; i < 5; ++i) {
    const auto s2 = run(election::algorithm::omega_lc, i);
    const auto s3 = run(election::algorithm::omega_l, i);
    if (i == 0) {
      fastest_s2 = s2;
      fastest_s3 = s3;
    }

    tr.row({harness::fmt_double(kTud[i], 2),
            harness::fmt_double(kPaperTrS2[i], 2),
            harness::fmt_ci(s2.tr_mean_s, s2.tr_ci95_s, 2),
            harness::fmt_double(kPaperTrS3[i], 2),
            harness::fmt_ci(s3.tr_mean_s, s3.tr_ci95_s, 2)});
    pl.row({harness::fmt_double(kTud[i], 2),
            harness::fmt_percent(kPaperPlS2[i], 3),
            harness::fmt_percent(s2.p_leader, 3),
            harness::fmt_percent(kPaperPlS3[i], 3),
            harness::fmt_percent(s3.p_leader, 3)});
  }

  cost.row({"S2 (Omega_lc)", "1.23", harness::fmt_double(fastest_s2.cpu_percent, 3),
            "135.17", harness::fmt_double(fastest_s2.kb_per_second, 2)});
  cost.row({"S3 (Omega_l)", "0.10", harness::fmt_double(fastest_s3.cpu_percent, 3),
            "12.60", harness::fmt_double(fastest_s3.kb_per_second, 2)});

  tr.print(std::cout);
  pl.print(std::cout);
  cost.print(std::cout);
  std::cout << "Expected shape: Tr scales ~proportionally with T^U_D and stays\n"
               "just below it; availability improves as T^U_D shrinks; the\n"
               "overhead price of a tight bound is ~10x higher for S2 than S3.\n";
  return 0;
}
