// Simulator hot-path microbench (not a paper figure).
//
// Strips the protocol away and drives the datagram path directly: every
// node periodically encodes one ALIVE-shaped message into the network's
// payload pool and multicasts it to the full roster, so the measured loop
// is exactly (timer fire -> encode -> admit x N -> delivery x N) — the
// inner loop of every figure bench. Two numbers matter:
//
//   events/s            raw simulator throughput (wall clock, not virtual);
//   allocs/datagram     heap allocations per *delivered* datagram in steady
//                       state, counted by a global operator new hook. The
//                       zero-copy design (DESIGN.md §9) makes this 0.000:
//                       payload buffers recycle through the pool, timer
//                       callbacks live in the slab, the heap vector and the
//                       per-node scratch all reach a fixed point during
//                       warm-up. scripts/ci.sh gates on it staying 0.
//
// Machine readable: BENCH_sim_hotpath.json (override: OMEGA_BENCH_JSON).
#include <atomic>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <new>
#include <string>
#include <vector>

#include "bench_support.hpp"
#include "net/sim_network.hpp"
#include "proto/wire.hpp"
#include "sim/simulator.hpp"

// ---- counting allocator hook ------------------------------------------------
// Replaces global operator new/delete for this binary only. The counter is
// read before/after the measured window; everything the hot path allocates
// lands here, including allocations from inlined std:: machinery.

namespace {
std::atomic<std::uint64_t> g_allocs{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }

void* operator new[](std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

// -----------------------------------------------------------------------------

using namespace omega;

namespace {

/// One sending node: a fixed pre-built message multicast to the full
/// roster every `interval`. The message object and destination list are
/// built once; the tick only mutates scalar fields.
struct driver {
  sim::simulator* sim = nullptr;
  net::transport* ep = nullptr;
  proto::wire_message msg;
  std::vector<node_id> dsts;
  duration interval{};
  std::uint64_t seq = 0;

  void tick() {
    auto& alive = std::get<proto::alive_msg>(msg);
    alive.seq = ++seq;
    alive.send_time = sim->now();
    ep->multicast(dsts, proto::encode_shared(msg, ep->pool()));
    sim->schedule_after(interval, [this] { tick(); });
  }
};

}  // namespace

int main() {
  const std::size_t nodes = static_cast<std::size_t>(
      bench::env_double("OMEGA_BENCH_HOTPATH_NODES", 200.0));
  const double measure_s = bench::env_double("OMEGA_BENCH_HOTPATH_SECONDS", 20.0);

  sim::simulator sim;
  rng seed(bench::bench_seed() * 1000003u + 7777u);
  net::sim_network net(sim, nodes, net::link_profile::lan(), seed.split());

  // Sink every delivery into a byte counter, so receive work is counted but
  // trivial (the protocol layer is out of scope here by design).
  std::uint64_t rx_bytes = 0;
  std::vector<driver> drivers(nodes);
  for (std::size_t i = 0; i < nodes; ++i) {
    const node_id self{static_cast<std::uint32_t>(i)};
    auto& d = drivers[i];
    d.sim = &sim;
    d.ep = &net.endpoint(self);
    d.ep->set_receive_handler(
        [&rx_bytes](const net::datagram& dg) { rx_bytes += dg.payload.size(); });
    proto::alive_msg alive;
    alive.from = self;
    alive.inc = 1;
    alive.eta = msec(100);
    alive.groups.resize(2);  // typical shared-FD piggyback load
    alive.groups[0].group = group_id{0};
    alive.groups[0].pid = process_id{static_cast<std::uint32_t>(i)};
    alive.groups[1].group = group_id{1};
    alive.groups[1].pid = process_id{static_cast<std::uint32_t>(i)};
    d.msg = proto::wire_message{std::move(alive)};
    d.dsts.reserve(nodes - 1);
    for (std::size_t j = 0; j < nodes; ++j) {
      if (j != i) d.dsts.push_back(node_id{static_cast<std::uint32_t>(j)});
    }
    d.interval = msec(100);
    // Stagger starts so deliveries interleave instead of bursting.
    sim.schedule_at(time_origin + usec(500 * i), [&d] { d.tick(); });
  }

  // Warm-up: let the payload pool, the event heap, the callback slab and
  // every vector reach steady-state capacity.
  sim.run_until(time_origin + sec(5));

  std::uint64_t delivered_before = 0;
  for (std::size_t i = 0; i < nodes; ++i) {
    delivered_before +=
        net.traffic(node_id{static_cast<std::uint32_t>(i)}).datagrams_received;
  }
  const std::uint64_t events_before = sim.events_executed();
  const std::uint64_t allocs_before = g_allocs.load(std::memory_order_relaxed);

  bench::wall_timer timer;
  sim.run_until(time_origin + sec(5) + from_seconds(measure_s));
  const double wall_s = timer.seconds();

  const std::uint64_t allocs_after = g_allocs.load(std::memory_order_relaxed);
  const std::uint64_t events_after = sim.events_executed();
  std::uint64_t delivered_after = 0;
  for (std::size_t i = 0; i < nodes; ++i) {
    delivered_after +=
        net.traffic(node_id{static_cast<std::uint32_t>(i)}).datagrams_received;
  }

  const std::uint64_t events = events_after - events_before;
  const std::uint64_t delivered = delivered_after - delivered_before;
  const std::uint64_t allocs = allocs_after - allocs_before;
  const double events_per_s =
      wall_s > 0.0 ? static_cast<double>(events) / wall_s : 0.0;
  const double allocs_per_datagram =
      delivered > 0 ? static_cast<double>(allocs) / static_cast<double>(delivered)
                    : -1.0;

  harness::table t("Simulator hot path: slab timers + pooled zero-copy payloads");
  t.headers({"nodes", "events", "delivered", "wall (s)", "events/s",
             "allocs", "allocs/datagram"});
  t.row({std::to_string(nodes), std::to_string(events), std::to_string(delivered),
         harness::fmt_double(wall_s, 3), harness::fmt_double(events_per_s, 0),
         std::to_string(allocs), harness::fmt_double(allocs_per_datagram, 6)});
  t.print(std::cout);
  std::cout << "zero_alloc_steady_state=" << (allocs == 0 ? "yes" : "no")
            << " (rx_bytes=" << rx_bytes << ")\n";

  const char* out_path = std::getenv("OMEGA_BENCH_JSON");
  std::ofstream out(out_path && *out_path ? out_path : "BENCH_sim_hotpath.json");
  out << "{\n  \"figure\": \"sim_hotpath\",\n  \"nodes\": " << nodes
      << ",\n  \"measure_virtual_s\": " << harness::fmt_double(measure_s, 1)
      << ",\n  \"events_executed\": " << events
      << ",\n  \"datagrams_delivered\": " << delivered
      << ",\n  \"wall_clock_s\": " << harness::fmt_double(wall_s, 3)
      << ",\n  \"events_per_s\": " << harness::fmt_double(events_per_s, 0)
      << ",\n  \"allocations\": " << allocs
      << ",\n  \"allocs_per_datagram\": "
      << harness::fmt_double(allocs_per_datagram, 6)
      << ",\n  \"zero_alloc_steady_state\": "
      << (allocs == 0 ? "true" : "false") << "\n}\n";
  return 0;
}
