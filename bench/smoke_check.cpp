// Scratch validation: one short cell per algorithm, LAN + worst lossy link.
#include <chrono>
#include <iostream>

#include "bench_support.hpp"

using namespace omega;

int main() {
  for (auto alg : {election::algorithm::omega_id, election::algorithm::omega_lc,
                   election::algorithm::omega_l}) {
    for (const auto& link : {bench::kLossyGrid[0], bench::kLossyGrid[4]}) {
      harness::scenario sc;
      sc.name = std::string(election::to_string(alg)) + link.label;
      sc.alg = alg;
      sc.links = net::link_profile::lossy(link.mean_delay, link.loss);
      sc.measured = sec(600);
      auto wall0 = std::chrono::steady_clock::now();
      auto r = bench::run_cell(sc);
      auto wall1 = std::chrono::steady_clock::now();
      std::cout << sc.name << ": P_leader=" << r.p_leader
                << " Tr=" << r.tr_mean_s << "s (n=" << r.tr_samples << ")"
                << " lambda_u=" << r.lambda_u << "/h"
                << " cpu=" << r.cpu_percent << "% kb/s=" << r.kb_per_second
                << " events=" << r.events_executed << " wall="
                << std::chrono::duration_cast<std::chrono::milliseconds>(wall1 -
                                                                         wall0)
                       .count()
                << "ms\n";
    }
  }
  return 0;
}
