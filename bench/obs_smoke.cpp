// Observability exposition smoke (run by scripts/ci.sh): builds a registry
// covering every metric type and label shape the stack emits, renders the
// Prometheus text, re-parses it, and cross-checks every sample against the
// live registry; then runs a traced 12-node experiment and verifies the
// trace ring dumps as well-formed JSONL. Exits non-zero on any mismatch.
#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "bench_support.hpp"
#include "obs/exposition.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

using namespace omega;

namespace {

int failures = 0;

void check(bool ok, const std::string& what) {
  if (!ok) {
    ++failures;
    std::cerr << "obs_smoke FAIL: " << what << "\n";
  }
}

const obs::parsed_sample* find(const std::vector<obs::parsed_sample>& samples,
                               std::string_view name, obs::label_set labels) {
  std::sort(labels.begin(), labels.end());
  for (const auto& s : samples) {
    if (s.name != name) continue;
    obs::label_set got = s.labels;  // renderer puts `le` last, not sorted
    std::sort(got.begin(), got.end());
    if (got == labels) return &s;
  }
  return nullptr;
}

void render_reparse_roundtrip() {
  obs::registry reg;
  reg.get_counter("omega_messages_sent_total", {{"kind", "alive"}, {"node", "0"}})
      .inc(12345);
  reg.get_counter("omega_messages_sent_total", {{"kind", "accuse"}, {"node", "0"}})
      .inc(7);
  reg.get_gauge("omega_heartbeat_interval_seconds", {{"node", "0"}}).set(0.934);
  // Hostile label value: every escape the format defines.
  reg.get_counter("omega_escapes_total", {{"path", "a\\b\"c\nd"}}).inc();
  auto& h = reg.get_histogram("omega_reelection_seconds", {{"tier", "2"}},
                              {0.5, 1.0, 2.0, 5.0});
  h.observe(0.7);
  h.observe(0.9);
  h.observe(4.0);
  h.observe(60.0);

  const std::string text = obs::render_prometheus(reg);
  const auto samples = obs::parse_prometheus(text);
  check(samples.has_value(), "rendered text must re-parse");
  if (!samples.has_value()) return;

  const auto* alive = find(*samples, "omega_messages_sent_total",
                           {{"kind", "alive"}, {"node", "0"}});
  check(alive != nullptr && alive->value == 12345.0, "counter round-trips");
  const auto* esc =
      find(*samples, "omega_escapes_total", {{"path", "a\\b\"c\nd"}});
  check(esc != nullptr, "escaped label value round-trips");
  const auto* b1 = find(*samples, "omega_reelection_seconds_bucket",
                        {{"le", "1"}, {"tier", "2"}});
  check(b1 != nullptr && b1->value == 2.0, "cumulative bucket le=1");
  const auto* binf = find(*samples, "omega_reelection_seconds_bucket",
                          {{"le", "+Inf"}, {"tier", "2"}});
  const auto* count =
      find(*samples, "omega_reelection_seconds_count", {{"tier", "2"}});
  check(binf != nullptr && count != nullptr && binf->value == count->value &&
            count->value == 4.0,
        "+Inf bucket equals count");
}

void traced_experiment_smoke() {
  harness::scenario sc;
  sc.name = "obs-smoke";
  sc.nodes = 12;
  sc.churn = harness::churn_profile::none();
  sc.trace = true;
  sc.measured = sec(60);
  sc.warmup = sec(30);
  harness::experiment exp(sc);
  exp.simulator().run_until(time_origin + sec(40));
  exp.export_metrics();

  auto* reg = exp.node_registry(node_id{0});
  check(reg != nullptr, "traced run exposes a per-node registry");
  if (reg != nullptr) {
    const auto samples = obs::parse_prometheus(obs::render_prometheus(*reg));
    check(samples.has_value() && !samples->empty(),
          "live-service registry renders and re-parses");
    const auto* alive = find(*samples, "omega_messages_sent_total",
                             {{"kind", "alive"}, {"node", "0"}});
    check(alive != nullptr && alive->value > 0.0,
          "exported ALIVE counter is live");
  }

  const auto merged = exp.merged_trace();
  check(!merged.empty(), "traced run produces events");
  const std::string jsonl = obs::render_jsonl(merged);
  std::size_t lines = 0;
  for (char c : jsonl) lines += c == '\n';
  check(lines == merged.size(), "JSONL has one line per event");
}

// File mode (scripts/ci.sh): re-parse a /metrics page scraped from a live
// process through the same parser the unit tests use. The scrape is real
// output of the embedded HTTP endpoint, so any malformed line is a render
// (or server framing) bug.
int reparse_scrape(const char* path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::cerr << "obs_smoke: cannot read " << path << "\n";
    return 1;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();
  check(!text.empty(), "scraped exposition is non-empty");
  const auto samples = obs::parse_prometheus(text);
  check(samples.has_value(), "scraped exposition re-parses cleanly");
  if (samples.has_value()) {
    check(!samples->empty(), "scraped exposition has samples");
    const bool has_alive = std::any_of(
        samples->begin(), samples->end(), [](const obs::parsed_sample& s) {
          return s.name == "omega_messages_sent_total";
        });
    check(has_alive, "scrape contains the service traffic counters");
  }
  if (failures == 0) {
    std::cout << "obs_smoke: scraped /metrics re-parsed ("
              << (samples ? samples->size() : 0) << " samples)\n";
    return 0;
  }
  std::cout << "obs_smoke: " << failures << " scrape check(s) failed\n";
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1) return reparse_scrape(argv[1]);
  render_reparse_roundtrip();
  traced_experiment_smoke();
  if (failures == 0) {
    std::cout << "obs_smoke: all exposition checks passed\n";
    return 0;
  }
  std::cout << "obs_smoke: " << failures << " check(s) failed\n";
  return 1;
}
