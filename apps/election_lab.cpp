// election_lab: run any leader-election scenario from the command line.
//
// The paper's whole experimental methodology in one binary — pick an
// algorithm, a fault environment and an FD QoS, and get the §5 metrics.
//
//   election_lab --alg=s3 --nodes=12 --loss=0.1 --delay-ms=100 \
//                --minutes=60 --churn-uptime=600 --tud-ms=1000
//   election_lab --alg=s2 --link-crash-uptime=60 --link-crash-downtime=3
//   election_lab --list          (show every flag and its default)
//
// Exit code 0 on success, 2 on a bad flag.
#include <cstdlib>
#include <iostream>
#include <map>
#include <sstream>
#include <string>

#include "harness/experiment.hpp"
#include "harness/report.hpp"

using namespace omega;

namespace {

struct flag_spec {
  std::string value;
  const char* help;
};

using flag_map = std::map<std::string, flag_spec>;

flag_map default_flags() {
  return {
      {"alg", {"s2", "election algorithm: s1|s2|s3|s2-noforward|s3-nophase"}},
      {"nodes", {"12", "cluster size"}},
      {"candidates", {"0", "how many processes compete (0 = all)"}},
      {"minutes", {"10", "simulated measurement window"}},
      {"warmup-s", {"60", "warm-up before metrics start (seconds)"}},
      {"seed", {"42", "base RNG seed"}},
      {"loss", {"0", "per-message loss probability p_L"}},
      {"delay-ms", {"0.025", "mean message delay D (milliseconds)"}},
      {"churn-uptime", {"600", "mean workstation uptime (s; 0 = no churn)"}},
      {"churn-recovery", {"5", "mean workstation recovery time (s)"}},
      {"link-crash-uptime", {"0", "mean link uptime (s; 0 = links never crash)"}},
      {"link-crash-downtime", {"3", "mean link downtime (s)"}},
      {"tud-ms", {"1000", "FD detection bound T^U_D (ms)"}},
      {"tmr-days", {"100", "FD mistake recurrence bound T^L_MR (days)"}},
  };
}

void print_usage(const flag_map& flags) {
  std::cout << "usage: election_lab [--flag=value ...]\n\nflags:\n";
  for (const auto& [name, spec] : flags) {
    std::cout << "  --" << name << " (default " << spec.value << "): "
              << spec.help << "\n";
  }
}

bool parse_args(int argc, char** argv, flag_map& flags) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--list" || arg == "--help" || arg == "-h") {
      print_usage(flags);
      return false;
    }
    if (arg.rfind("--", 0) != 0) {
      std::cerr << "unrecognized argument: " << arg << "\n";
      std::exit(2);
    }
    const auto eq = arg.find('=');
    if (eq == std::string::npos) {
      std::cerr << "flags take the form --name=value: " << arg << "\n";
      std::exit(2);
    }
    const std::string name = arg.substr(2, eq - 2);
    auto it = flags.find(name);
    if (it == flags.end()) {
      std::cerr << "unknown flag --" << name << " (see --list)\n";
      std::exit(2);
    }
    it->second.value = arg.substr(eq + 1);
  }
  return true;
}

double num(const flag_map& flags, const std::string& name) {
  const std::string& v = flags.at(name).value;
  char* end = nullptr;
  const double parsed = std::strtod(v.c_str(), &end);
  if (end == v.c_str()) {
    std::cerr << "flag --" << name << " expects a number, got '" << v << "'\n";
    std::exit(2);
  }
  return parsed;
}

election::algorithm parse_alg(const std::string& v) {
  if (v == "s1") return election::algorithm::omega_id;
  if (v == "s2") return election::algorithm::omega_lc;
  if (v == "s3") return election::algorithm::omega_l;
  if (v == "s2-noforward") return election::algorithm::omega_lc_noforward;
  if (v == "s3-nophase") return election::algorithm::omega_l_nophase;
  std::cerr << "unknown algorithm '" << v
            << "' (s1|s2|s3|s2-noforward|s3-nophase)\n";
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  flag_map flags = default_flags();
  if (!parse_args(argc, argv, flags)) return 0;

  harness::scenario sc;
  sc.name = "election-lab";
  sc.alg = parse_alg(flags.at("alg").value);
  sc.nodes = static_cast<std::size_t>(num(flags, "nodes"));
  sc.candidates = static_cast<std::size_t>(num(flags, "candidates"));
  sc.measured = from_seconds(num(flags, "minutes") * 60.0);
  sc.warmup = from_seconds(num(flags, "warmup-s"));
  sc.seed = static_cast<std::uint64_t>(num(flags, "seed"));
  sc.links = net::link_profile::lossy(from_seconds(num(flags, "delay-ms") / 1e3),
                                      num(flags, "loss"));

  const double churn_up = num(flags, "churn-uptime");
  if (churn_up > 0) {
    sc.churn.enabled = true;
    sc.churn.mean_uptime = from_seconds(churn_up);
    sc.churn.mean_recovery = from_seconds(num(flags, "churn-recovery"));
  } else {
    sc.churn = harness::churn_profile::none();
  }

  const double link_up = num(flags, "link-crash-uptime");
  if (link_up > 0) {
    sc.link_crashes = net::link_crash_profile::crashes(
        from_seconds(link_up), from_seconds(num(flags, "link-crash-downtime")));
  }

  sc.qos.detection_time = from_seconds(num(flags, "tud-ms") / 1e3);
  sc.qos.mistake_recurrence =
      from_seconds(num(flags, "tmr-days") * 24.0 * 3600.0);

  std::cout << "running " << election::to_string(sc.alg) << " on "
            << sc.nodes << " nodes for " << num(flags, "minutes")
            << " simulated minutes...\n";

  harness::experiment exp(sc);
  const auto r = exp.run();

  harness::table t("Results (paper §5 metrics)");
  t.headers({"metric", "value"});
  t.row({"leader availability (P_leader)", harness::fmt_percent(r.p_leader, 3)});
  t.row({"avg leader recovery time (Tr)",
         harness::fmt_ci(r.tr_mean_s, r.tr_ci95_s, 3) + " s, n=" +
             std::to_string(r.tr_samples)});
  t.row({"mistake rate (lambda_u)",
         harness::fmt_double(r.lambda_u, 2) + " /h (" +
             std::to_string(r.unjustified) + " unjustified, " +
             std::to_string(r.justified) + " justified)"});
  t.row({"leader crashes", std::to_string(r.leader_crashes)});
  t.row({"CPU / workstation", harness::fmt_double(r.cpu_percent, 3) + " %"});
  t.row({"traffic / workstation",
         harness::fmt_double(r.kb_per_second, 2) + " KB/s"});
  t.row({"events executed", std::to_string(r.events_executed)});
  t.print(std::cout);
  return 0;
}
