// Chaos demo: the paper's §6.1 fault environment, narrated.
//
// Runs the full experiment harness on a 12-node cluster with the paper's
// default churn (each workstation crashes every ~10 minutes and recovers
// after ~5 s), the worst lossy links of the evaluation (100 ms mean delay,
// 1-in-10 loss), and prints a live narration of ground-truth events next to
// what the service reports. Ends with the same QoS metrics the paper's
// figures use.
//
// Usage: chaos_demo [s1|s2|s3] [minutes]   (default: s2 10)
#include <cstdlib>
#include <iostream>
#include <string>

#include "harness/experiment.hpp"
#include "harness/report.hpp"

using namespace omega;

int main(int argc, char** argv) {
  election::algorithm alg = election::algorithm::omega_lc;
  if (argc > 1) {
    const std::string pick = argv[1];
    if (pick == "s1") alg = election::algorithm::omega_id;
    else if (pick == "s2") alg = election::algorithm::omega_lc;
    else if (pick == "s3") alg = election::algorithm::omega_l;
    else {
      std::cerr << "usage: chaos_demo [s1|s2|s3] [minutes]\n";
      return 2;
    }
  }
  const int minutes = argc > 2 ? std::atoi(argv[2]) : 10;

  harness::scenario sc;
  sc.name = "chaos-demo";
  sc.alg = alg;
  sc.links = net::link_profile::lossy(msec(100), 0.1);
  sc.churn = harness::churn_profile::paper_default();
  sc.measured = sec(60L * minutes);
  sc.seed = 2026;

  std::cout << "-- running " << election::to_string(alg) << " for " << minutes
            << " simulated minutes in the (100ms, 0.1) network with "
               "10-minute crash cycles\n";

  harness::experiment exp(sc);

  // Narrate ground-truth agreement changes as the simulation runs.
  std::optional<process_id> last;
  bool had_any = false;
  exp.group().set_agreement_observer(
      [&](time_point t, std::optional<process_id> leader) {
        const double ts = to_seconds(t - time_origin);
        if (leader) {
          std::cout << "  [t=" << ts << "s] group agrees on leader "
                    << leader->value();
          if (had_any && last && *last != *leader) std::cout << "  (changed)";
          std::cout << "\n";
          last = leader;
          had_any = true;
        } else {
          std::cout << "  [t=" << ts << "s] group is leaderless\n";
        }
      });

  const auto r = exp.run();

  harness::table t("Chaos run summary (paper §5 metrics)");
  t.headers({"metric", "value"});
  t.row({"leader availability (P_leader)", harness::fmt_percent(r.p_leader, 2)});
  t.row({"avg leader recovery time (Tr)",
         harness::fmt_ci(r.tr_mean_s, r.tr_ci95_s, 2) + " s over " +
             std::to_string(r.tr_samples) + " leader crashes"});
  t.row({"unjustified demotions (lambda_u)",
         harness::fmt_double(r.lambda_u, 2) + " /h (" +
             std::to_string(r.unjustified) + " total)"});
  t.row({"justified leader changes", std::to_string(r.justified)});
  t.row({"CPU per workstation", harness::fmt_double(r.cpu_percent, 3) + " %"});
  t.row({"traffic per workstation",
         harness::fmt_double(r.kb_per_second, 2) + " KB/s"});
  t.row({"simulated hours", harness::fmt_double(r.simulated_hours, 2)});
  t.print(std::cout);
  return 0;
}
