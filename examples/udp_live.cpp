// Live deployment example: the same service code over real UDP sockets,
// hosted on the shared scale-out runtime.
//
// The paper's implementation ran as a C daemon over UDP on a LAN. This
// example runs three unmodified service instances on localhost — all
// hosted on a two-loop `runtime::loop_pool`, each with its own batched
// `loop_udp_transport` socket (DESIGN.md §10) instead of the historical
// one-engine-plus-two-threads per workstation — elects a leader in real
// time, kills the leader's instance on its live loop, and watches the
// survivors re-elect within the FD detection bound.
//
// Each instance carries the full observability plane: a metrics registry,
// a trace ring with the causal plane on (wire-stamped cause ids + the
// monotonic wall clock), and — when OMEGA_LIVE_HTTP_PORT is set — a live
// /metrics + /trace HTTP endpoint that scripts/ci.sh scrapes mid-run. The
// /metrics page now also carries the runtime families (send-error classes,
// queue backpressure, per-loop syscall counters) next to the service
// counters. At the end the merged rings are rebuilt into a causal DAG on
// the wall timeline (no shared engine clock exists between the instances)
// and the run fails unless >= 95% of the failover's events link back to
// root-cause evidence about the victim — the same forensics gate the sim
// harness enforces, on a real-UDP run.
//
// (Total wall-clock runtime: about 6 seconds, plus OMEGA_LIVE_LINGER_MS.)
#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <iostream>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "election/elector.hpp"
#include "obs/causal_graph.hpp"
#include "obs/exposition.hpp"
#include "obs/http_endpoint.hpp"
#include "obs/metrics.hpp"
#include "obs/runtime_export.hpp"
#include "obs/service_export.hpp"
#include "obs/sink.hpp"
#include "obs/trace.hpp"
#include "runtime/event_loop.hpp"
#include "runtime/loop_transport.hpp"
#include "runtime/real_time.hpp"
#include "service/service.hpp"

using namespace omega;

namespace {

constexpr std::size_t kNodes = 3;
constexpr std::size_t kLoops = 2;
const group_id kGroup{1};

node_id nid(std::size_t i) { return node_id{static_cast<std::uint32_t>(i)}; }

struct workstation {
  runtime::event_loop* loop = nullptr;  // shared; owned by the pool
  std::unique_ptr<runtime::loop_udp_transport> transport;
  std::unique_ptr<service::leader_election_service> svc;
  // Observability outlives the service (the sink is registered in its
  // config); rendered after shutdown.
  obs::registry metrics;
  obs::ring_recorder trace{256};
  obs::sink sink{&metrics, &trace};
};

// Renders every live workstation's registry and trace on its own loop
// thread (registries are loop-owned; reading them from main would race)
// and publishes the combined pages, appending the pool's per-loop syscall
// counters. Concatenated expositions repeat `# TYPE` headers; the parser
// and the endpoint contract both allow that.
void publish_snapshots(obs::http_endpoint& http,
                       std::vector<workstation>& cluster,
                       runtime::loop_pool& pool, obs::registry& pool_metrics) {
  std::string metrics_page;
  std::vector<obs::trace_event> merged;
  for (auto& ws : cluster) {
    if (!ws.svc) continue;
    std::string page;
    std::vector<obs::trace_event> events;
    ws.loop->sync([&ws, &page, &events] {
      obs::export_service_stats(ws.metrics, *ws.svc);
      obs::export_transport_stats(ws.metrics, *ws.transport);
      page = obs::render_prometheus(ws.metrics);
      events = ws.trace.events();
    });
    metrics_page += page;
    merged.insert(merged.end(), events.begin(), events.end());
  }
  for (std::size_t l = 0; l < pool.size(); ++l) {
    obs::export_loop_stats(pool_metrics, l, pool.at(l).stats_snapshot());
  }
  metrics_page += obs::render_prometheus(pool_metrics);
  std::sort(merged.begin(), merged.end(),
            [](const obs::trace_event& a, const obs::trace_event& b) {
              if (a.wall_us != b.wall_us) return a.wall_us < b.wall_us;
              if (a.node != b.node) return a.node < b.node;
              return a.seq < b.seq;
            });
  http.publish("/metrics", std::move(metrics_page),
               std::string(obs::http_endpoint::metrics_content_type));
  http.publish("/trace", obs::render_jsonl(merged),
               std::string(obs::http_endpoint::trace_content_type));
}

}  // namespace

int main() {
  // Fixed localhost ports; a production deployment reads these from its
  // cluster configuration, exactly like the paper's per-cluster install.
  runtime::udp_roster roster_map;
  std::vector<node_id> roster;
  for (std::size_t i = 0; i < kNodes; ++i) {
    roster.push_back(nid(i));
    roster_map[nid(i)] =
        runtime::udp_endpoint{"127.0.0.1", static_cast<std::uint16_t>(39400 + i)};
  }

  // Two shared epoll loops host all three instances (round-robin) — the
  // scale-out shape of bench/fig14_live at example size.
  runtime::loop_pool pool(kLoops);
  obs::registry pool_metrics;
  std::vector<workstation> cluster(kNodes);
  for (std::size_t i = 0; i < kNodes; ++i) {
    workstation& ws = cluster[i];
    ws.loop = &pool.at(i);
    ws.transport = std::make_unique<runtime::loop_udp_transport>(
        *ws.loop, nid(i), roster_map);
    // Dual timestamps: every trace event carries the host's monotonic wall
    // clock, the only timeline the loops share.
    ws.sink.set_wall_clock(&runtime::monotonic_wall_us);
    ws.sink.set_self(nid(i));

    service::service_config cfg;
    cfg.self = nid(i);
    cfg.roster = roster;
    cfg.alg = election::algorithm::omega_l;
    cfg.sink = &ws.sink;
    cfg.causal_stamping = true;  // wire-stamp causally potent datagrams

    // Service construction and all API calls must happen on the hosting
    // loop's thread (the protocol stack is single-threaded by design).
    ws.loop->sync([&ws, cfg, i] {
      ws.transport->set_sink(&ws.sink);  // trace unknown-peer drops too
      ws.svc = std::make_unique<service::leader_election_service>(
          *ws.loop, *ws.loop, *ws.transport, cfg);
      const process_id pid{static_cast<std::uint32_t>(i)};
      ws.svc->register_process(pid);
      service::join_options opts;
      opts.candidate = true;
      opts.qos.detection_time = msec(500);  // detect a dead leader in 0.5 s
      ws.svc->join_group(pid, kGroup, opts,
                         [i](group_id, std::optional<process_id> leader) {
                           std::cout << "  [node " << i << "] leader -> "
                                     << (leader
                                             ? std::to_string(leader->value())
                                             : std::string("(none)"))
                                     << std::endl;
                         });
    });
  }

  // Live telemetry endpoint (opt-in): OMEGA_LIVE_HTTP_PORT=0 binds an
  // ephemeral port and prints it, any other value binds that port.
  obs::http_endpoint http;
  if (const char* port_env = std::getenv("OMEGA_LIVE_HTTP_PORT")) {
    if (!http.start(static_cast<std::uint16_t>(std::atoi(port_env)))) {
      std::cerr << "failed to bind OMEGA_LIVE_HTTP_PORT=" << port_env << "\n";
      return 1;
    }
    std::cout << "-- serving /metrics and /trace on 127.0.0.1:" << http.port()
              << std::endl;
  }

  std::cout << "-- 3 service instances up on 127.0.0.1:39400-39402 ("
            << kLoops << " shared loops); waiting 3 s of real time\n";
  std::this_thread::sleep_for(std::chrono::seconds(3));

  std::optional<process_id> leader;
  cluster[0].loop->sync([&] { leader = cluster[0].svc->leader(kGroup); });
  if (!leader) {
    std::cerr << "no leader elected\n";
    return 1;
  }
  std::cout << "-- elected leader: process " << leader->value() << "\n";
  if (http.running()) publish_snapshots(http, cluster, pool, pool_metrics);

  const std::size_t victim = leader->value();
  std::cout << "-- killing node " << victim << "'s service instance\n";
  const std::int64_t kill_wall_us = runtime::monotonic_wall_us();
  // Destroy service and socket on the victim's own loop thread; the loop
  // itself keeps running — it is shared infrastructure, and tearing one
  // tenant down mid-traffic is exactly what the runtime must survive.
  cluster[victim].loop->sync([&] {
    cluster[victim].svc.reset();
    cluster[victim].transport.reset();
  });

  // Poll for re-election instead of sleeping a fixed window: the heal
  // instant bounds the causal-linkage window below, and a tight window
  // keeps unrelated post-election events (a transient false suspicion of a
  // live peer) out of the forensics denominator.
  bool healed = false;
  std::optional<process_id> new_leader;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (!healed && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    healed = true;
    new_leader = std::nullopt;
    for (std::size_t i = 0; i < kNodes; ++i) {
      if (i == victim) continue;
      std::optional<process_id> now_leader;
      cluster[i].loop->sync(
          [&, i] { now_leader = cluster[i].svc->leader(kGroup); });
      if (!now_leader || now_leader->value() == victim ||
          (new_leader && *new_leader != *now_leader)) {
        healed = false;
        break;
      }
      new_leader = now_leader;
    }
  }
  const std::int64_t heal_wall_us = runtime::monotonic_wall_us();
  std::cout << "-- survivors agree on leader: "
            << (new_leader ? std::to_string(new_leader->value())
                           : std::string("(none)"))
            << (healed ? "" : "  [TIMED OUT]") << "\n";
  if (http.running()) {
    publish_snapshots(http, cluster, pool, pool_metrics);
    // Give out-of-process scrapers (scripts/ci.sh) a deterministic window
    // to hit the post-failover snapshots before shutdown.
    if (const char* linger = std::getenv("OMEGA_LIVE_LINGER_MS")) {
      std::this_thread::sleep_for(std::chrono::milliseconds(std::atoi(linger)));
    }
  }

  // Orderly shutdown: services die on their loop threads first. Each
  // survivor exports its counters on its own loop before dying (the same
  // render a /metrics scrape would trigger), then the pool stops.
  for (std::size_t i = 0; i < kNodes; ++i) {
    if (i == victim) continue;
    cluster[i].loop->sync([&, i] {
      obs::export_service_stats(cluster[i].metrics, *cluster[i].svc);
      obs::export_transport_stats(cluster[i].metrics, *cluster[i].transport);
      cluster[i].svc.reset();
      cluster[i].transport.reset();
    });
  }
  for (std::size_t l = 0; l < pool.size(); ++l) {
    obs::export_loop_stats(pool_metrics, l, pool.at(l).stats_snapshot());
  }
  pool.stop_all();
  http.stop();

  // One survivor's observability, post-mortem: the Prometheus exposition
  // (service + transport families), the pool's runtime counters, and the
  // tail of the structured trace.
  const std::size_t witness = victim == 0 ? 1 : 0;
  std::cout << "\n-- node " << witness << " /metrics snapshot:\n"
            << obs::render_prometheus(cluster[witness].metrics);
  std::cout << "\n-- loop pool runtime counters:\n"
            << obs::render_prometheus(pool_metrics);
  auto events = cluster[witness].trace.events();
  const std::size_t tail = events.size() > 8 ? events.size() - 8 : 0;
  std::cout << "\n-- node " << witness << " trace (last "
            << (events.size() - tail) << " of " << events.size()
            << " events, JSONL):\n"
            << obs::render_jsonl(
                   std::span<const obs::trace_event>(events).subspan(tail));

  // Causal forensics on the wall timeline: all loops are stopped, so the
  // rings are safe to merge from here. The loops never shared a virtual
  // clock — the DAG is rebuilt purely from cause ids, windowed by the
  // monotonic wall clock.
  std::vector<obs::trace_event> all_events;
  for (auto& ws : cluster) {
    const auto evs = ws.trace.events();
    all_events.insert(all_events.end(), evs.begin(), evs.end());
  }
  const auto graph = obs::causal_graph::build(all_events);
  const node_id victim_node = nid(victim);
  const process_id victim_pid{static_cast<std::uint32_t>(victim)};
  const auto report = graph.linkage(
      victim_node, victim_pid, time_point{usec(kill_wall_us)},
      time_point{usec(heal_wall_us)}, obs::causal_graph::timeline::wall);
  std::cout << "\n-- causal DAG over " << graph.size() << " events: "
            << report.linked << "/" << report.considered
            << " failover events linked to victim evidence ("
            << report.evidence_roots << " roots, " << report.dangling
            << " dangling), wall-skew violations: "
            << graph.wall_skew_violations() << "\n";
  const auto budget = graph.attribute_outage(
      victim_node, victim_pid, time_point{usec(kill_wall_us)},
      time_point{usec(heal_wall_us)}, new_leader,
      obs::causal_graph::timeline::wall);
  std::cout << "-- outage attribution: detect " << budget.detection_s
            << " s, disseminate " << budget.dissemination_s << " s, elect "
            << budget.election_s << " s\n";

  const bool linked_enough =
      report.considered > 0 && report.fraction() >= 0.95;
  if (!linked_enough) std::cout << "-- FAILED causal linkage gate (>= 95%)\n";
  const bool skew_ok = graph.wall_skew_violations() == 0;
  if (!skew_ok) std::cout << "-- FAILED wall-clock skew check\n";

  std::cout << (healed ? "-- re-election over real UDP succeeded\n"
                       : "-- FAILED to re-elect\n");
  return healed && linked_enough && skew_ok ? 0 : 1;
}
