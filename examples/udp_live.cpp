// Live deployment example: the same service code over real UDP sockets.
//
// The paper's implementation ran as a C daemon over UDP on a LAN. This
// example runs three unmodified service instances on localhost — one
// real_time_engine + udp_transport per "workstation" — elects a leader in
// real time, kills the leader's instance, and watches the survivors
// re-elect within the FD detection bound.
//
// Each instance carries the observability plane: a metrics registry plus a
// trace ring, rendered at the end as a Prometheus text snapshot and a JSONL
// event dump — what a production daemon would serve from a /metrics
// endpoint and write to its flight-recorder file.
//
// (Total wall-clock runtime: about 6 seconds.)
#include <chrono>
#include <iostream>
#include <span>
#include <thread>

#include "election/elector.hpp"
#include "obs/exposition.hpp"
#include "obs/metrics.hpp"
#include "obs/service_export.hpp"
#include "obs/sink.hpp"
#include "obs/trace.hpp"
#include "runtime/real_time.hpp"
#include "runtime/udp_transport.hpp"
#include "service/service.hpp"

using namespace omega;

namespace {

constexpr std::size_t kNodes = 3;
const group_id kGroup{1};

struct workstation {
  std::unique_ptr<runtime::real_time_engine> engine;
  std::unique_ptr<runtime::udp_transport> transport;
  std::unique_ptr<service::leader_election_service> svc;
  // Observability outlives the service (the sink is registered in its
  // config); rendered after shutdown.
  obs::registry metrics;
  obs::ring_recorder trace{256};
  obs::sink sink{&metrics, &trace};
};

}  // namespace

int main() {
  // Fixed localhost ports; a production deployment reads these from its
  // cluster configuration, exactly like the paper's per-cluster install.
  runtime::udp_roster roster_map;
  std::vector<node_id> roster;
  for (std::size_t i = 0; i < kNodes; ++i) {
    roster.push_back(node_id{i});
    roster_map[node_id{i}] =
        runtime::udp_endpoint{"127.0.0.1", static_cast<std::uint16_t>(39400 + i)};
  }

  std::vector<workstation> cluster(kNodes);
  for (std::size_t i = 0; i < kNodes; ++i) {
    workstation& ws = cluster[i];
    ws.engine = std::make_unique<runtime::real_time_engine>();
    ws.transport = std::make_unique<runtime::udp_transport>(
        *ws.engine, node_id{i}, roster_map);

    service::service_config cfg;
    cfg.self = node_id{i};
    cfg.roster = roster;
    cfg.alg = election::algorithm::omega_l;
    cfg.sink = &ws.sink;

    // Service construction and all API calls must happen on the engine's
    // loop thread (the protocol stack is single-threaded by design).
    ws.engine->post([&ws, cfg, i] {
      ws.svc = std::make_unique<service::leader_election_service>(
          *ws.engine, *ws.engine, *ws.transport, cfg);
      const process_id pid{i};
      ws.svc->register_process(pid);
      service::join_options opts;
      opts.candidate = true;
      opts.qos.detection_time = msec(500);  // detect a dead leader in 0.5 s
      ws.svc->join_group(pid, kGroup, opts,
                         [i](group_id, std::optional<process_id> leader) {
                           std::cout << "  [node " << i << "] leader -> "
                                     << (leader
                                             ? std::to_string(leader->value())
                                             : std::string("(none)"))
                                     << std::endl;
                         });
    });
  }

  std::cout << "-- 3 service instances up on 127.0.0.1:39400-39402; waiting "
               "3 s of real time\n";
  std::this_thread::sleep_for(std::chrono::seconds(3));

  std::optional<process_id> leader;
  cluster[0].engine->post([&] { leader = cluster[0].svc->leader(kGroup); });
  cluster[0].engine->drain(msec(50));
  if (!leader) {
    std::cerr << "no leader elected\n";
    return 1;
  }
  std::cout << "-- elected leader: process " << leader->value() << "\n";

  const std::size_t victim = leader->value();
  std::cout << "-- killing node " << victim << "'s service instance\n";
  // Destroy on the victim's own loop thread, then stop the engine.
  cluster[victim].engine->post([&] { cluster[victim].svc.reset(); });
  cluster[victim].engine->drain(msec(50));
  cluster[victim].transport.reset();
  cluster[victim].engine->stop();

  std::this_thread::sleep_for(std::chrono::seconds(3));

  bool healed = true;
  for (std::size_t i = 0; i < kNodes; ++i) {
    if (i == victim) continue;
    std::optional<process_id> now_leader;
    cluster[i].engine->post([&, i] { now_leader = cluster[i].svc->leader(kGroup); });
    cluster[i].engine->drain(msec(50));
    std::cout << "-- node " << i << " follows: "
              << (now_leader ? std::to_string(now_leader->value())
                             : std::string("(none)"))
              << "\n";
    if (!now_leader || now_leader->value() == victim) healed = false;
  }

  // Orderly shutdown: services die on their loop threads first. Each
  // survivor exports its counters on its own loop before dying (the same
  // render a /metrics scrape would trigger).
  for (std::size_t i = 0; i < kNodes; ++i) {
    if (i == victim) continue;
    cluster[i].engine->post([&, i] {
      obs::export_service_stats(cluster[i].metrics, *cluster[i].svc);
      cluster[i].svc.reset();
    });
    cluster[i].engine->drain(msec(50));
    cluster[i].transport.reset();
    cluster[i].engine->stop();
  }

  // One survivor's observability, post-mortem: the Prometheus exposition
  // and the tail of the structured trace.
  const std::size_t witness = victim == 0 ? 1 : 0;
  std::cout << "\n-- node " << witness << " /metrics snapshot:\n"
            << obs::render_prometheus(cluster[witness].metrics);
  auto events = cluster[witness].trace.events();
  const std::size_t tail = events.size() > 8 ? events.size() - 8 : 0;
  std::cout << "\n-- node " << witness << " trace (last "
            << (events.size() - tail) << " of " << events.size()
            << " events, JSONL):\n"
            << obs::render_jsonl(
                   std::span<const obs::trace_event>(events).subspan(tail));

  std::cout << (healed ? "-- re-election over real UDP succeeded\n"
                       : "-- FAILED to re-elect\n");
  return healed ? 0 : 1;
}
