// Quickstart: elect and maintain a leader in a simulated 5-node cluster.
//
// Demonstrates the whole public API surface in ~80 lines:
//   1. build a substrate (here the deterministic simulator; see udp_live.cpp
//      for the real-time UDP runtime — the service code is identical),
//   2. start one leader_election_service per workstation,
//   3. register a process and join a group with an FD QoS,
//   4. observe leader changes through the interrupt callback,
//   5. crash the current leader and watch the service re-elect.
#include <iostream>

#include "election/elector.hpp"
#include "net/sim_network.hpp"
#include "service/service.hpp"
#include "sim/simulator.hpp"

using namespace omega;

int main() {
  constexpr std::size_t kNodes = 5;
  const group_id kGroup{1};

  // Substrate: virtual clock + fully connected network with LAN-like links.
  sim::simulator sim;
  net::sim_network net(sim, kNodes, net::link_profile::lan(), rng{2024});

  std::vector<node_id> roster;
  for (std::size_t i = 0; i < kNodes; ++i) roster.push_back(node_id{i});

  // One service instance per workstation, one application process on each.
  std::vector<std::unique_ptr<service::leader_election_service>> services;
  for (node_id node : roster) {
    service::service_config cfg;
    cfg.self = node;
    cfg.roster = roster;
    cfg.alg = election::algorithm::omega_l;  // S3: the message-efficient one
    auto svc = std::make_unique<service::leader_election_service>(
        sim, sim, net.endpoint(node), cfg);

    const process_id pid{node.value()};
    svc->register_process(pid);

    service::join_options opts;
    opts.candidate = true;
    opts.qos.detection_time = sec(1);  // T^U_D: detect a dead leader in <= 1 s
    svc->join_group(pid, kGroup, opts,
                    [node](group_id, std::optional<process_id> leader) {
                      std::cout << "  [node " << node.value() << "] leader -> "
                                << (leader ? std::to_string(leader->value())
                                           : std::string("(none)"))
                                << "\n";
                    });
    services.push_back(std::move(svc));
  }

  std::cout << "-- letting the cluster settle (5 simulated seconds)\n";
  sim.run_until(sim.now() + sec(5));

  const auto leader = services[0]->leader(kGroup);
  if (!leader) {
    std::cerr << "no leader elected?!\n";
    return 1;
  }
  std::cout << "-- agreed leader: process " << leader->value() << "\n";

  std::cout << "-- crashing the leader's workstation\n";
  const auto dead = node_id{leader->value()};
  net.set_node_alive(dead, false);       // unplug it from the network
  services[leader->value()].reset();     // and kill the service instance

  sim.run_until(sim.now() + sec(5));
  for (std::size_t i = 0; i < kNodes; ++i) {
    if (!services[i]) continue;
    const auto now_leader = services[i]->leader(kGroup);
    std::cout << "-- node " << i << " now follows: "
              << (now_leader ? std::to_string(now_leader->value())
                             : std::string("(none)"))
              << "\n";
  }
  return 0;
}
