// Leader-based replication — the paper's §1 motivating application.
//
// A minimal replicated log ("state machine approach", Lamport [12]) built on
// the leader-election service: clients submit commands to whichever process
// the service currently designates as leader; the leader assigns a slot and
// replicates the command to its followers. Leader election keeps exactly one
// writer at a time (in the steady state), and the stability of Omega_lc/
// Omega_l means a healthy writer is never demoted for spurious reasons —
// demotion happens only when the writer really crashes.
//
// The replication protocol here is deliberately simple (no quorums; followers
// trust the current leader's slot assignment) — the point of the example is
// how an application consumes the election API: candidacy, the interrupt
// callback, and query-mode reads.
#include <deque>
#include <iostream>
#include <map>

#include "election/elector.hpp"
#include "net/sim_network.hpp"
#include "service/service.hpp"
#include "sim/simulator.hpp"

using namespace omega;

namespace {

constexpr std::size_t kNodes = 5;
const group_id kGroup{7};

/// One replica: an application process colocated with a service instance.
/// Replicas exchange REPLICATE messages on their own little port — the
/// election service does not (and should not) carry application traffic.
class replica {
 public:
  replica(node_id self, sim::simulator& sim,
          service::leader_election_service& svc)
      : self_(self), sim_(sim), svc_(svc) {}

  void on_leader_change(std::optional<process_id> leader) {
    leader_ = leader;
    if (leader_ && leader_->value() == self_.value()) {
      if (!i_am_leader_) {
        i_am_leader_ = true;
        std::cout << "    [t=" << to_seconds(sim_.now() - time_origin)
                  << "s] node " << self_.value()
                  << " takes over as writer at slot " << next_slot_ << "\n";
      }
    } else {
      i_am_leader_ = false;
    }
  }

  /// A client hands a command to this replica; it is accepted only if this
  /// replica currently believes it is the leader (otherwise the client must
  /// retry against the real leader — standard leader-based service shape).
  bool submit(const std::string& command, std::vector<replica*>& peers) {
    if (!i_am_leader_) return false;
    const std::uint64_t slot = next_slot_++;
    apply(slot, command);
    for (replica* peer : peers) {
      if (peer != this) peer->replicate(slot, command);
    }
    return true;
  }

  void replicate(std::uint64_t slot, const std::string& command) {
    // Followers accept the leader's assignment.
    apply(slot, command);
    next_slot_ = std::max(next_slot_, slot + 1);
  }

  [[nodiscard]] const std::map<std::uint64_t, std::string>& log() const {
    return log_;
  }
  [[nodiscard]] bool is_leader() const { return i_am_leader_; }
  [[nodiscard]] node_id id() const { return self_; }

 private:
  void apply(std::uint64_t slot, const std::string& command) {
    log_[slot] = command;
  }

  node_id self_;
  sim::simulator& sim_;
  service::leader_election_service& svc_;
  std::optional<process_id> leader_;
  bool i_am_leader_ = false;
  std::uint64_t next_slot_ = 0;
  std::map<std::uint64_t, std::string> log_;
};

}  // namespace

int main() {
  sim::simulator sim;
  net::sim_network net(sim, kNodes, net::link_profile::lossy(msec(1), 0.01),
                       rng{7});

  std::vector<node_id> roster;
  for (std::size_t i = 0; i < kNodes; ++i) roster.push_back(node_id{i});

  std::vector<std::unique_ptr<service::leader_election_service>> services;
  std::vector<std::unique_ptr<replica>> replicas;
  std::vector<replica*> peers;

  for (node_id node : roster) {
    service::service_config cfg;
    cfg.self = node;
    cfg.roster = roster;
    cfg.alg = election::algorithm::omega_lc;  // S2: robust choice
    auto svc = std::make_unique<service::leader_election_service>(
        sim, sim, net.endpoint(node), cfg);
    auto rep = std::make_unique<replica>(node, sim, *svc);

    const process_id pid{node.value()};
    svc->register_process(pid);
    service::join_options opts;
    opts.candidate = true;
    opts.qos = fd::qos_spec::paper_default();
    replica* rep_ptr = rep.get();
    svc->join_group(pid, kGroup, opts,
                    [rep_ptr](group_id, std::optional<process_id> leader) {
                      rep_ptr->on_leader_change(leader);
                    });

    services.push_back(std::move(svc));
    replicas.push_back(std::move(rep));
    peers.push_back(replicas.back().get());
  }

  sim.run_until(sim.now() + sec(3));

  // A "client" that retries against whoever is leader, submitting one
  // command every 100 ms of simulated time.
  std::size_t accepted = 0, submitted = 0;
  auto submit_one = [&](const std::string& cmd) {
    ++submitted;
    for (auto& rep : replicas) {
      if (rep && rep->submit(cmd, peers)) {
        ++accepted;
        return;
      }
    }
  };

  std::cout << "-- phase 1: steady-state writes through the elected writer\n";
  for (int i = 0; i < 20; ++i) {
    submit_one("put k" + std::to_string(i));
    sim.run_until(sim.now() + msec(100));
  }

  std::cout << "-- phase 2: crash the writer mid-stream\n";
  for (std::size_t i = 0; i < replicas.size(); ++i) {
    if (replicas[i] && replicas[i]->is_leader()) {
      std::cout << "    crashing node " << i << "\n";
      net.set_node_alive(node_id{i}, false);
      // Remove the dead replica from the peer list (its memory lives on,
      // modelling a crashed process that no longer participates).
      peers.erase(std::remove(peers.begin(), peers.end(), replicas[i].get()),
                  peers.end());
      services[i].reset();
      replicas[i].reset();
      break;
    }
  }
  for (int i = 20; i < 40; ++i) {
    submit_one("put k" + std::to_string(i));
    sim.run_until(sim.now() + msec(100));
  }

  // Check replication: all surviving replicas hold identical logs.
  const std::map<std::uint64_t, std::string>* reference = nullptr;
  bool consistent = true;
  for (const auto& rep : replicas) {
    if (!rep) continue;
    if (reference == nullptr) {
      reference = &rep->log();
    } else if (rep->log() != *reference) {
      consistent = false;
    }
  }

  std::cout << "-- results: " << accepted << "/" << submitted
            << " commands accepted (rejections happen while the group is "
               "between leaders)\n";
  std::cout << "-- replicated log length: "
            << (reference ? reference->size() : 0) << ", replicas consistent: "
            << (consistent ? "yes" : "NO") << "\n";
  return consistent ? 0 : 1;
}
