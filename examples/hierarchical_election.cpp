// Hierarchical election — the paper's §7 "future work", built with the
// group semantics the service already has.
//
// Nine processes are organized in three regions. Each region runs its own
// election group (everyone in the region is a candidate). The processes
// that currently lead their region additionally join a global group as
// candidates; every other process joins the global group as a passive
// non-candidate member (a "listener": it learns the global leader but never
// competes — the §7 suggestion for keeping elections among a small set of
// candidates). When regional leadership moves, the old regional leader
// leaves the global group and the new one joins it.
//
// The demo crashes the current global leader's workstation and shows both
// levels healing: its region elects a replacement, the replacement joins
// the global group, and the global group re-elects.
#include <iostream>
#include <vector>

#include "election/elector.hpp"
#include "net/sim_network.hpp"
#include "service/service.hpp"
#include "sim/simulator.hpp"

using namespace omega;

namespace {

constexpr std::size_t kRegions = 3;
constexpr std::size_t kPerRegion = 3;
constexpr std::size_t kNodes = kRegions * kPerRegion;
const group_id kGlobal{100};

group_id region_group(std::size_t region) {
  return group_id{1 + static_cast<std::uint32_t>(region)};
}

struct node_state {
  node_id node;
  std::size_t region = 0;
  std::unique_ptr<service::leader_election_service> svc;
  bool in_global_as_candidate = false;
};

}  // namespace

int main() {
  sim::simulator sim;
  net::sim_network net(sim, kNodes, net::link_profile::lossy(msec(5), 0.01),
                       rng{99});

  std::vector<node_id> roster;
  for (std::size_t i = 0; i < kNodes; ++i) roster.push_back(node_id{i});

  std::vector<node_state> nodes(kNodes);

  // Regional leader changes re-shape the global candidate set.
  auto on_region_leader = [&](std::size_t region, std::size_t self,
                              std::optional<process_id> leader) {
    node_state& me = nodes[self];
    if (!me.svc) return;
    const bool should_lead_globally =
        leader.has_value() && leader->value() == self;
    if (should_lead_globally && !me.in_global_as_candidate) {
      // Promoted to regional leader: compete globally. Re-joining with a
      // different candidacy is the documented way to change the flag.
      me.svc->leave_group(process_id{self}, kGlobal);
      service::join_options opts;
      opts.candidate = true;
      me.svc->join_group(process_id{self}, kGlobal, opts);
      me.in_global_as_candidate = true;
      std::cout << "  [t=" << to_seconds(sim.now() - time_origin) << "s] node "
                << self << " now leads region " << region
                << " and enters the global election\n";
    } else if (!should_lead_globally && me.in_global_as_candidate) {
      me.svc->leave_group(process_id{self}, kGlobal);
      service::join_options opts;
      opts.candidate = false;  // back to listener
      me.svc->join_group(process_id{self}, kGlobal, opts);
      me.in_global_as_candidate = false;
      std::cout << "  [t=" << to_seconds(sim.now() - time_origin) << "s] node "
                << self << " no longer leads region " << region
                << ", withdraws from the global election\n";
    }
  };

  for (std::size_t i = 0; i < kNodes; ++i) {
    node_state& st = nodes[i];
    st.node = node_id{i};
    st.region = i / kPerRegion;

    service::service_config cfg;
    cfg.self = st.node;
    cfg.roster = roster;
    cfg.alg = election::algorithm::omega_l;
    st.svc = std::make_unique<service::leader_election_service>(
        sim, sim, net.endpoint(st.node), cfg);

    const process_id pid{i};
    st.svc->register_process(pid);

    // Level 1: regional group, everyone competes.
    service::join_options region_opts;
    region_opts.candidate = true;
    const std::size_t region = st.region;
    st.svc->join_group(pid, region_group(region), region_opts,
                       [&, region, i](group_id, std::optional<process_id> l) {
                         on_region_leader(region, i, l);
                       });

    // Level 2: global group, start as a passive listener.
    service::join_options global_opts;
    global_opts.candidate = false;
    st.svc->join_group(pid, kGlobal, global_opts);
  }

  sim.run_until(sim.now() + sec(8));

  auto print_state = [&] {
    for (std::size_t r = 0; r < kRegions; ++r) {
      // Ask any live node of the region.
      for (std::size_t i = r * kPerRegion; i < (r + 1) * kPerRegion; ++i) {
        if (!nodes[i].svc) continue;
        const auto l = nodes[i].svc->leader(region_group(r));
        std::cout << "    region " << r << " leader: "
                  << (l ? std::to_string(l->value()) : "(none)") << "\n";
        break;
      }
    }
    for (const auto& st : nodes) {
      if (!st.svc) continue;
      const auto g = st.svc->leader(kGlobal);
      std::cout << "    global leader: "
                << (g ? std::to_string(g->value()) : "(none)") << "\n";
      break;
    }
  };

  std::cout << "-- after settling:\n";
  print_state();

  // Find and crash the global leader.
  std::optional<process_id> global_leader;
  for (const auto& st : nodes) {
    if (st.svc) {
      global_leader = st.svc->leader(kGlobal);
      break;
    }
  }
  if (!global_leader) {
    std::cerr << "no global leader elected\n";
    return 1;
  }
  const std::size_t victim = global_leader->value();
  std::cout << "-- crashing global leader (node " << victim << ")\n";
  net.set_node_alive(node_id{victim}, false);
  nodes[victim].svc.reset();

  sim.run_until(sim.now() + sec(8));
  std::cout << "-- after healing:\n";
  print_state();

  // Verify: some global leader exists and is not the crashed node.
  for (const auto& st : nodes) {
    if (!st.svc) continue;
    const auto g = st.svc->leader(kGlobal);
    if (!g || g->value() == victim) {
      std::cerr << "global level failed to heal\n";
      return 1;
    }
    break;
  }
  std::cout << "-- both levels healed\n";
  return 0;
}
