// Hierarchical election — the paper's §7 tiered topology, now a
// first-class subsystem (src/hierarchy/) instead of hand-wired groups.
//
// Nine processes are organized in three regions. A `hierarchy::topology`
// describes the shape (3 regions under one global group); each node runs
// a `hierarchy::hierarchy_coordinator` next to its service instance. The
// coordinator joins the region group as a candidate and the global group
// as a passive listener, and automatically promotes this node into the
// global election when it wins its region (demoting it again when
// regional leadership moves). Regions run the link-crash-tolerant
// omega_lc; the global tier runs the communication-efficient omega_l, so
// listeners never send ALIVE payloads there.
//
// The demo crashes the current global leader's workstation and shows both
// levels healing: its region elects a replacement, the replacement is
// promoted into the global group, and the global group re-elects.
#include <iostream>
#include <vector>

#include "hierarchy/coordinator.hpp"
#include "net/sim_network.hpp"
#include "service/service.hpp"
#include "sim/simulator.hpp"

using namespace omega;

namespace {

constexpr std::size_t kRegions = 3;
constexpr std::size_t kNodes = 9;

struct node_state {
  std::unique_ptr<service::leader_election_service> svc;
  std::unique_ptr<hierarchy::hierarchy_coordinator> coord;
};

}  // namespace

int main() {
  sim::simulator sim;
  net::sim_network net(sim, kNodes, net::link_profile::lossy(msec(5), 0.01),
                       rng{99});

  const hierarchy::topology topo =
      hierarchy::topology::two_tier(kNodes, kRegions);

  std::vector<node_id> roster;
  for (std::size_t i = 0; i < kNodes; ++i) roster.push_back(node_id{i});

  std::vector<node_state> nodes(kNodes);
  for (std::size_t i = 0; i < kNodes; ++i) {
    node_state& st = nodes[i];

    service::service_config cfg;
    cfg.self = node_id{i};
    cfg.roster = roster;
    st.svc = std::make_unique<service::leader_election_service>(
        sim, sim, net.endpoint(node_id{i}), cfg);

    // The coordinator registers the pid, joins region + global groups and
    // handles promotion/demotion; the callback just narrates promotions.
    // (It can fire during construction, so it must not touch st.coord.)
    const std::size_t region = topo.region_of(node_id{i});
    st.coord = std::make_unique<hierarchy::hierarchy_coordinator>(
        *st.svc, topo, process_id{i}, hierarchy::coordinator_options{},
        [&sim, i, region](std::size_t tier, std::optional<process_id> leader) {
          if (tier != 0 || !leader.has_value()) return;
          if (leader->value() == i) {
            std::cout << "  [t=" << to_seconds(sim.now() - time_origin)
                      << "s] node " << i << " now leads region " << region
                      << " and enters the global election\n";
          }
        });
  }

  sim.run_until(sim.now() + sec(8));

  auto print_state = [&] {
    for (std::size_t r = 0; r < kRegions; ++r) {
      // Ask any live node of the region.
      for (std::size_t i = 0; i < kNodes; ++i) {
        const auto& st = nodes[i];
        if (!st.coord || st.coord->region() != r) continue;
        const auto l = st.coord->leader(0);
        std::cout << "    region " << r << " leader: "
                  << (l ? std::to_string(l->value()) : "(none)") << "\n";
        break;
      }
    }
    for (const auto& st : nodes) {
      if (!st.coord) continue;
      const auto g = st.coord->global_leader();
      std::cout << "    global leader: "
                << (g ? std::to_string(g->value()) : "(none)") << "\n";
      break;
    }
  };

  std::cout << "-- after settling:\n";
  print_state();

  // Find and crash the global leader.
  std::optional<process_id> global_leader;
  for (const auto& st : nodes) {
    if (st.coord) {
      global_leader = st.coord->global_leader();
      break;
    }
  }
  if (!global_leader) {
    std::cerr << "no global leader elected\n";
    return 1;
  }
  const std::size_t victim = global_leader->value();
  std::cout << "-- crashing global leader (node " << victim << ")\n";
  net.set_node_alive(node_id{victim}, false);
  nodes[victim].coord.reset();  // crash: no goodbyes
  nodes[victim].svc.reset();

  sim.run_until(sim.now() + sec(8));
  std::cout << "-- after healing:\n";
  print_state();

  // Verify: some global leader exists and is not the crashed node.
  for (const auto& st : nodes) {
    if (!st.coord) continue;
    const auto g = st.coord->global_leader();
    if (!g || g->value() == victim) {
      std::cerr << "global level failed to heal\n";
      return 1;
    }
    break;
  }
  std::cout << "-- both levels healed\n";
  return 0;
}
