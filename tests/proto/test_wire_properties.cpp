// Property sweep: every wire message with randomized field values must
// survive encode -> decode exactly, across many seeds (parameterized).
#include <gtest/gtest.h>

#include "common/random.hpp"
#include "proto/wire.hpp"

namespace omega::proto {
namespace {

class WireProperty : public ::testing::TestWithParam<std::uint64_t> {};

time_point random_time(rng& r) {
  return time_origin + usec(static_cast<std::int64_t>(r.uniform_below(1ull << 40)));
}

group_payload random_payload(rng& r) {
  group_payload p;
  p.group = group_id{static_cast<std::uint32_t>(r.uniform_below(1u << 16))};
  p.pid = process_id{static_cast<std::uint32_t>(r.uniform_below(1u << 16))};
  p.candidate = r.bernoulli(0.5);
  p.competing = r.bernoulli(0.5);
  p.accusation_time = random_time(r);
  p.phase = static_cast<std::uint32_t>(r.uniform_below(1u << 20));
  p.local_leader = r.bernoulli(0.3)
                       ? process_id::invalid()
                       : process_id{static_cast<std::uint32_t>(r.uniform_below(64))};
  p.local_leader_acc = random_time(r);
  return p;
}

TEST_P(WireProperty, AliveRoundTripsExactly) {
  rng r{GetParam()};
  alive_msg msg;
  msg.from = node_id{static_cast<std::uint32_t>(r.uniform_below(1u << 10))};
  msg.inc = static_cast<incarnation>(r.uniform_below(1u << 20));
  msg.seq = r.uniform_below(1ull << 50);
  msg.send_time = random_time(r);
  msg.eta = usec(static_cast<std::int64_t>(r.uniform_below(10'000'000)));
  const std::size_t n_groups = r.uniform_below(5);
  for (std::size_t i = 0; i < n_groups; ++i) msg.groups.push_back(random_payload(r));

  const auto decoded = decode(encode(wire_message{msg}));
  ASSERT_TRUE(decoded.has_value());
  const auto* out = std::get_if<alive_msg>(&*decoded);
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(*out, msg);
}

TEST_P(WireProperty, AccuseRoundTripsExactly) {
  rng r{GetParam() ^ 0x1111};
  accuse_msg msg;
  msg.from = node_id{static_cast<std::uint32_t>(r.uniform_below(1u << 10))};
  msg.from_inc = static_cast<incarnation>(r.uniform_below(1u << 20));
  msg.group = group_id{static_cast<std::uint32_t>(r.uniform_below(1u << 16))};
  msg.target = process_id{static_cast<std::uint32_t>(r.uniform_below(1u << 16))};
  msg.target_inc = static_cast<incarnation>(r.uniform_below(1u << 20));
  msg.phase = static_cast<std::uint32_t>(r.uniform_below(1u << 20));
  msg.when = random_time(r);

  const auto decoded = decode(encode(wire_message{msg}));
  ASSERT_TRUE(decoded.has_value());
  const auto* out = std::get_if<accuse_msg>(&*decoded);
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(*out, msg);
}

TEST_P(WireProperty, HelloAndAckRoundTripExactly) {
  rng r{GetParam() ^ 0x2222};
  hello_msg hello;
  hello.from = node_id{static_cast<std::uint32_t>(r.uniform_below(1u << 10))};
  hello.inc = static_cast<incarnation>(r.uniform_below(1u << 20));
  hello.reply_requested = r.bernoulli(0.5);
  const std::size_t n = r.uniform_below(6);
  for (std::size_t i = 0; i < n; ++i) {
    hello.entries.push_back(
        {group_id{static_cast<std::uint32_t>(r.uniform_below(64))},
         process_id{static_cast<std::uint32_t>(r.uniform_below(64))},
         r.bernoulli(0.5)});
  }
  auto decoded = decode(encode(wire_message{hello}));
  ASSERT_TRUE(decoded.has_value());
  const auto* h = std::get_if<hello_msg>(&*decoded);
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(*h, hello);

  hello_ack_msg ack;
  ack.from = hello.from;
  ack.inc = hello.inc;
  for (std::size_t i = 0; i < n; ++i) {
    ack.entries.push_back(
        {group_id{static_cast<std::uint32_t>(r.uniform_below(64))},
         process_id{static_cast<std::uint32_t>(r.uniform_below(64))},
         node_id{static_cast<std::uint32_t>(r.uniform_below(64))},
         static_cast<incarnation>(r.uniform_below(1u << 16)),
         r.bernoulli(0.5)});
  }
  decoded = decode(encode(wire_message{ack}));
  ASSERT_TRUE(decoded.has_value());
  const auto* a = std::get_if<hello_ack_msg>(&*decoded);
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(*a, ack);
}

TEST_P(WireProperty, TruncationAtEveryLengthRejectedOrValid) {
  // Chopping an encoded ALIVE at any byte boundary must either fail decode
  // cleanly or (never) produce a different message — it must never crash.
  rng r{GetParam() ^ 0x3333};
  alive_msg msg;
  msg.from = node_id{1};
  msg.inc = 2;
  msg.seq = 3;
  msg.send_time = random_time(r);
  msg.eta = msec(250);
  msg.groups.push_back(random_payload(r));
  const auto bytes = encode(wire_message{msg});
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    const auto truncated =
        std::vector<std::byte>(bytes.begin(), bytes.begin() + len);
    const auto decoded = decode(truncated);
    EXPECT_FALSE(decoded.has_value()) << "truncated to " << len << " bytes";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WireProperty,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u, 9u,
                                           10u));

}  // namespace
}  // namespace omega::proto
