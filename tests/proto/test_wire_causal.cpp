// Version-2 (causally stamped) wire envelope: round-trip of the cause id,
// byte-identity of unstamped encodes, and two-way compatibility between
// stamped and unstamped stacks (DESIGN.md §7).
#include <gtest/gtest.h>

#include "proto/wire.hpp"

namespace omega::proto {
namespace {

accuse_msg sample_accuse() {
  accuse_msg m;
  m.from = node_id{4};
  m.from_inc = 2;
  m.group = group_id{1};
  m.target = process_id{7};
  m.target_inc = 1;
  m.phase = 3;
  m.when = time_origin + msec(1234);
  return m;
}

cause_id sample_cause() {
  cause_id c;
  c.origin = node_id{9};
  c.inc = 5;
  c.seq = 0xdeadbeef12345678ull;
  return c;
}

TEST(WireCausal, StampedRoundTripCarriesCause) {
  const accuse_msg original = sample_accuse();
  const auto bytes = encode(wire_message{original}, sample_cause());
  ASSERT_FALSE(bytes.empty());
  EXPECT_EQ(static_cast<std::uint8_t>(bytes[0]), protocol_version_stamped);

  cause_id got;
  const auto decoded = decode(bytes, &got);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(std::get<accuse_msg>(*decoded), original);
  EXPECT_EQ(got, sample_cause());
}

TEST(WireCausal, InvalidCauseEmitsVersion1Bytes) {
  // Stamping disabled (or a spontaneous periodic send) must be
  // byte-identical to the pre-causal encoder: the golden-trace guard and
  // the wire fingerprints of deployed unstamped nodes both depend on it.
  const wire_message msg{sample_accuse()};
  const auto plain = encode(msg);
  const auto defaulted = encode(msg, cause_id{});
  EXPECT_EQ(plain, defaulted);
  EXPECT_EQ(static_cast<std::uint8_t>(plain[0]), protocol_version);
}

TEST(WireCausal, StampAdds16Bytes) {
  const wire_message msg{sample_accuse()};
  EXPECT_EQ(encode(msg, sample_cause()).size(), encode(msg).size() + 16u);
}

TEST(WireCausal, UnstampedParserStillAcceptsStampedDatagram) {
  // An unstamped receiver (no `cause` out-param) must interoperate with a
  // stamped sender: the stamp is skipped, the body decodes unchanged.
  const accuse_msg original = sample_accuse();
  const auto bytes = encode(wire_message{original}, sample_cause());
  const auto decoded = decode(bytes);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(std::get<accuse_msg>(*decoded), original);
}

TEST(WireCausal, StampedParserReportsInvalidCauseForVersion1) {
  cause_id got = sample_cause();  // pre-poisoned: decode must reset it
  const auto bytes = encode(wire_message{sample_accuse()});
  const auto decoded = decode(bytes, &got);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_FALSE(got.valid());
}

TEST(WireCausal, PeekKindReadsBothVersions) {
  const wire_message msg{sample_accuse()};
  EXPECT_EQ(peek_kind(encode(msg)), msg_kind::accuse);
  EXPECT_EQ(peek_kind(encode(msg, sample_cause())), msg_kind::accuse);
}

TEST(WireCausal, TruncatedStampRejected) {
  auto bytes = encode(wire_message{sample_accuse()}, sample_cause());
  // Cut inside the 16-byte stamp (2-byte envelope + partial cause id).
  bytes.resize(10);
  EXPECT_FALSE(decode(bytes).has_value());
  wire_message scratch{sample_accuse()};
  EXPECT_FALSE(decode_into(scratch, bytes));
}

TEST(WireCausal, DecodeIntoRoundTripsStampedAlive) {
  alive_msg m;
  m.from = node_id{1};
  m.inc = 3;
  m.seq = 42;
  m.send_time = time_origin + sec(2);
  m.eta = msec(100);
  group_payload g;
  g.group = group_id{1};
  g.pid = process_id{1};
  g.candidate = true;
  m.groups.push_back(g);

  const auto bytes = encode(wire_message{m}, sample_cause());
  wire_message scratch{alive_msg{}};
  cause_id got;
  ASSERT_TRUE(decode_into(scratch, bytes, &got));
  EXPECT_EQ(std::get<alive_msg>(scratch), m);
  EXPECT_EQ(got, sample_cause());
}

TEST(WireCausal, KindLabelsCoverAllTypes) {
  EXPECT_EQ(to_string(msg_kind::alive), "alive");
  EXPECT_EQ(to_string(msg_kind::accuse), "accuse");
  EXPECT_EQ(to_string(msg_kind::hello), "hello");
  EXPECT_EQ(to_string(msg_kind::hello_ack), "hello_ack");
  EXPECT_EQ(to_string(msg_kind::leave), "leave");
  EXPECT_EQ(to_string(msg_kind::rate_request), "rate_request");
}

}  // namespace
}  // namespace omega::proto
