#include "proto/wire.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/random.hpp"

namespace omega::proto {
namespace {

alive_msg sample_alive() {
  alive_msg m;
  m.from = node_id{3};
  m.inc = 7;
  m.seq = 123456789;
  m.send_time = time_origin + msec(1500);
  m.eta = msec(250);
  group_payload g;
  g.group = group_id{1};
  g.pid = process_id{3};
  g.candidate = true;
  g.competing = true;
  g.accusation_time = time_origin + sec(42);
  g.phase = 9;
  g.local_leader = process_id{1};
  g.local_leader_acc = time_origin + sec(2);
  m.groups.push_back(g);
  return m;
}

TEST(Wire, AliveRoundTrip) {
  const alive_msg original = sample_alive();
  const auto bytes = encode(wire_message{original});
  const auto decoded = decode(bytes);
  ASSERT_TRUE(decoded.has_value());
  ASSERT_TRUE(std::holds_alternative<alive_msg>(*decoded));
  EXPECT_EQ(std::get<alive_msg>(*decoded), original);
}

TEST(Wire, AliveMultipleGroupsRoundTrip) {
  alive_msg m = sample_alive();
  group_payload g2 = m.groups[0];
  g2.group = group_id{2};
  g2.competing = false;
  g2.local_leader = process_id::invalid();
  m.groups.push_back(g2);
  const auto decoded = decode(encode(wire_message{m}));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(std::get<alive_msg>(*decoded), m);
}

TEST(Wire, AliveEmptyGroupsRoundTrip) {
  alive_msg m = sample_alive();
  m.groups.clear();
  const auto decoded = decode(encode(wire_message{m}));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(std::get<alive_msg>(*decoded), m);
}

TEST(Wire, AccuseRoundTrip) {
  accuse_msg m;
  m.from = node_id{2};
  m.from_inc = 5;
  m.group = group_id{1};
  m.target = process_id{9};
  m.target_inc = 3;
  m.phase = 17;
  m.when = time_origin + sec(100);
  const auto decoded = decode(encode(wire_message{m}));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(std::get<accuse_msg>(*decoded), m);
}

TEST(Wire, HelloRoundTrip) {
  hello_msg m;
  m.from = node_id{1};
  m.inc = 2;
  m.reply_requested = true;
  m.entries.push_back({group_id{1}, process_id{1}, true});
  m.entries.push_back({group_id{7}, process_id{1}, false});
  const auto decoded = decode(encode(wire_message{m}));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(std::get<hello_msg>(*decoded), m);
}

TEST(Wire, HelloAckRoundTrip) {
  hello_ack_msg m;
  m.from = node_id{4};
  m.inc = 1;
  for (std::uint32_t i = 0; i < 12; ++i) {
    m.entries.push_back({group_id{1}, process_id{i}, node_id{i}, i + 1, i % 2 == 0});
  }
  const auto decoded = decode(encode(wire_message{m}));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(std::get<hello_ack_msg>(*decoded), m);
}

TEST(Wire, LeaveRoundTrip) {
  leave_msg m{node_id{5}, 9, group_id{2}, process_id{5}};
  const auto decoded = decode(encode(wire_message{m}));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(std::get<leave_msg>(*decoded), m);
}

TEST(Wire, RateRequestRoundTrip) {
  rate_request_msg m{node_id{6}, 2, msec(125)};
  const auto decoded = decode(encode(wire_message{m}));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(std::get<rate_request_msg>(*decoded), m);
}

TEST(Wire, SenderAndIncarnationAccessors) {
  EXPECT_EQ(sender_of(wire_message{sample_alive()}), node_id{3});
  EXPECT_EQ(incarnation_of(wire_message{sample_alive()}), 7u);
  accuse_msg a;
  a.from = node_id{8};
  a.from_inc = 12;
  EXPECT_EQ(sender_of(wire_message{a}), node_id{8});
  EXPECT_EQ(incarnation_of(wire_message{a}), 12u);
}

TEST(Wire, RejectsEmptyInput) { EXPECT_FALSE(decode({}).has_value()); }

TEST(Wire, RejectsWrongVersion) {
  auto bytes = encode(wire_message{sample_alive()});
  bytes[0] = std::byte{0x7F};
  EXPECT_FALSE(decode(bytes).has_value());
}

TEST(Wire, RejectsUnknownType) {
  auto bytes = encode(wire_message{sample_alive()});
  bytes[1] = std::byte{0x63};
  EXPECT_FALSE(decode(bytes).has_value());
}

TEST(Wire, RejectsTruncation) {
  const auto bytes = encode(wire_message{sample_alive()});
  for (std::size_t cut = 2; cut < bytes.size(); cut += 3) {
    EXPECT_FALSE(decode(std::span(bytes).first(cut)).has_value())
        << "truncation at " << cut << " should fail";
  }
}

TEST(Wire, RejectsTrailingGarbage) {
  auto bytes = encode(wire_message{sample_alive()});
  bytes.push_back(std::byte{0});
  EXPECT_FALSE(decode(bytes).has_value());
}

TEST(Wire, FuzzRandomBytesNeverCrash) {
  rng r(2024);
  for (int round = 0; round < 2000; ++round) {
    std::vector<std::byte> junk(r.uniform_below(128));
    for (auto& b : junk) b = std::byte(r.uniform_below(256));
    (void)decode(junk);  // must not crash; result may be anything valid
  }
}

TEST(Wire, FuzzBitFlippedMessagesNeverCrash) {
  rng r(7);
  const auto base = encode(wire_message{sample_alive()});
  for (int round = 0; round < 2000; ++round) {
    auto bytes = base;
    const std::size_t flips = 1 + r.uniform_below(8);
    for (std::size_t i = 0; i < flips; ++i) {
      const std::size_t pos = r.uniform_below(bytes.size());
      bytes[pos] ^= std::byte(1u << r.uniform_below(8));
    }
    (void)decode(bytes);
  }
}

TEST(EncodeCache, ReusesBufferForIdenticalMessage) {
  net::payload_pool pool;
  encode_cache cache;
  hello_msg hello;
  hello.from = node_id{2};
  hello.inc = 3;
  hello.entries.push_back({group_id{1}, process_id{2}, true});
  const wire_message msg{hello};

  const auto a = cache.get(msg, pool);
  const auto b = cache.get(msg, pool);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 1u);
  // Same sealed block, not just equal bytes.
  EXPECT_EQ(a.bytes().data(), b.bytes().data());
  // Bytes must be exactly what encode_shared would have produced.
  const auto fresh = encode(msg);
  ASSERT_EQ(a.size(), fresh.size());
  EXPECT_TRUE(std::equal(fresh.begin(), fresh.end(), a.bytes().begin()));
}

TEST(EncodeCache, ReencodesOnChangeAndInvalidate) {
  net::payload_pool pool;
  encode_cache cache;
  hello_msg hello;
  hello.from = node_id{2};
  hello.entries.push_back({group_id{1}, process_id{2}, false});
  const auto a = cache.get(wire_message{hello}, pool);

  hello.entries.push_back({group_id{2}, process_id{2}, true});  // membership change
  const auto b = cache.get(wire_message{hello}, pool);
  EXPECT_EQ(cache.misses(), 2u);
  EXPECT_NE(a.bytes().data(), b.bytes().data());
  ASSERT_TRUE(decode(b.bytes()).has_value());

  cache.invalidate();
  const auto c = cache.get(wire_message{hello}, pool);
  EXPECT_EQ(cache.misses(), 3u);
  EXPECT_EQ(c.size(), b.size());
}

TEST(EncodeCache, CauseStampBypassesCache) {
  // A causal stamp makes each datagram unique: the cache must encode fresh
  // and must not poison itself with the stamped bytes.
  net::payload_pool pool;
  encode_cache cache;
  hello_msg hello;
  hello.from = node_id{1};
  const wire_message msg{hello};
  const auto plain = cache.get(msg, pool);
  const cause_id cause{node_id{1}, 1, 42};
  const auto stamped = cache.get(msg, pool, cause);
  EXPECT_NE(stamped.size(), plain.size()) << "v2 envelope carries the stamp";
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.misses(), 1u) << "stamped sends never count against the cache";
  const auto again = cache.get(msg, pool);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(again.bytes().data(), plain.bytes().data());
}

TEST(Wire, AliveMessageSizeIsCompact) {
  // The ALIVE with one group payload is the bandwidth unit of the service;
  // keep an eye on its wire size (paper's overhead figures depend on it).
  const auto bytes = encode(wire_message{sample_alive()});
  EXPECT_LT(bytes.size(), 128u);
  EXPECT_GT(bytes.size(), 32u);
}

}  // namespace
}  // namespace omega::proto
