// Determinism guard for the simulator hot path (ISSUE 7 satellite).
//
// The zero-copy rewrite (shared payload buffers, slab-allocated events,
// lazy link-crash draws) must not change protocol behaviour: for a fixed
// seed, the merged trace of a 120-node scoped3 run — event order, leader
// changes, everything — must stay byte-for-byte identical to what the
// pre-rewrite simulator produced. The serialized JSONL trace is fingerprinted
// with FNV-1a against a golden constant captured from the seed semantics;
// the same run executed twice must also agree with itself exactly.
//
// If a PR changes this hash *intentionally* (a real protocol change), rerun
// the test, paste the new values from the failure message, and say so in the
// commit — the point of the guard is that such drift is loud, never silent.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "harness/experiment.hpp"
#include "obs/exposition.hpp"

namespace omega::harness {
namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = kFnvOffset;
  for (const char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= kFnvPrime;
  }
  return h;
}

/// The fig12 120-node scoped3 shape (regions of 10 -> zones -> global),
/// shrunk to a test-sized window: settle, one global-leader failover,
/// recovery. Everything that exercises the hot path — ALIVE fan-out over
/// rosters, scoped HELLOs, FD suspicion, hierarchical re-election.
scenario golden_scenario() {
  scenario sc;
  sc.name = "golden-scoped3-120";
  sc.nodes = 120;
  sc.alg = election::algorithm::omega_lc;
  sc.links = net::link_profile::lan();
  sc.churn = churn_profile::none();
  sc.hierarchy = hierarchy_profile::three_tier(12, 2);
  sc.hierarchy.scoped_hello = true;
  sc.trace = true;
  sc.warmup = sec(30);
  sc.seed = 42ull * 1000003ull + 120ull;  // fig12's 120-node stream
  return sc;
}

/// Runs the scenario deterministically: settle, crash the agreed global
/// leader, wait for a successor, recover, settle again. Returns the full
/// merged multi-node trace serialized as JSONL. With `causal` the sinks
/// chain causes and the wire carries stamps — same event stream, each
/// line gaining its "cause" field.
std::string run_golden_trace(bool causal = false) {
  scenario sc = golden_scenario();
  sc.causal = causal;
  experiment exp(sc);
  auto& sim = exp.simulator();
  sim.run_until(time_origin + sec(40));

  std::optional<process_id> leader = exp.group().agreed_leader();
  const time_point settle_deadline = sim.now() + sec(30);
  while (!leader.has_value() && sim.now() < settle_deadline) {
    sim.run_until(sim.now() + msec(100));
    leader = exp.group().agreed_leader();
  }
  EXPECT_TRUE(leader.has_value());
  if (leader.has_value()) {
    const node_id victim{leader->value()};  // harness runs pid i on node i
    exp.crash_node(victim);
    const time_point crash_at = sim.now();
    while (sim.now() < crash_at + sec(15)) {
      sim.run_until(sim.now() + msec(25));
      const auto agreed = exp.group().agreed_leader();
      if (agreed.has_value() && *agreed != *leader) break;
    }
    exp.recover_node(victim);
    sim.run_until(sim.now() + sec(10));
  }
  return obs::render_jsonl(exp.merged_trace());
}

// Golden fingerprint of the run above, captured from the pre-rewrite
// (seed-semantics) simulator. OMEGA_GOLDEN_* below were produced by the
// heap-of-std::function simulator with per-destination payload copies; the
// zero-copy hot path must reproduce them exactly.
constexpr std::uint64_t kGoldenTraceHash = 0xd5c43d67bcaff419ull;
constexpr std::size_t kGoldenTraceBytes = 7913082;

TEST(GoldenTrace, Scoped3RunMatchesSeedSemantics) {
  const std::string jsonl = run_golden_trace();
  EXPECT_FALSE(jsonl.empty());
  EXPECT_EQ(fnv1a(jsonl), kGoldenTraceHash)
      << "merged-trace fingerprint drifted from the seed semantics\n"
      << "  bytes: " << jsonl.size() << " (golden " << kGoldenTraceBytes
      << ")\n  hash: 0x" << std::hex << fnv1a(jsonl)
      << " (golden 0x" << kGoldenTraceHash << ")\n"
      << "First lines:\n" << jsonl.substr(0, 400);
  EXPECT_EQ(jsonl.size(), kGoldenTraceBytes);
}

TEST(GoldenTrace, TwoRunsAreByteIdentical) {
  const std::string first = run_golden_trace();
  const std::string second = run_golden_trace();
  EXPECT_EQ(first, second);
}

// Second fingerprint: the same run with causal stamping on. Stamping must
// not perturb the event timeline (stamps ride existing datagrams; the sim's
// link delays are size-independent), so the JSONL differs from the golden
// stream only by the added "cause" fields — pinned separately.
constexpr std::uint64_t kGoldenStampedHash = 0x1b124e21fa904b04ull;
constexpr std::size_t kGoldenStampedBytes = 9384167;

TEST(GoldenTrace, StampedRunHasItsOwnPinnedFingerprint) {
  const std::string jsonl = run_golden_trace(/*causal=*/true);
  EXPECT_FALSE(jsonl.empty());
  EXPECT_EQ(fnv1a(jsonl), kGoldenStampedHash)
      << "stamped-trace fingerprint drifted\n"
      << "  bytes: " << jsonl.size() << " (golden " << kGoldenStampedBytes
      << ")\n  hash: 0x" << std::hex << fnv1a(jsonl) << " (golden 0x"
      << kGoldenStampedHash << ")\nFirst lines:\n"
      << jsonl.substr(0, 400);
  EXPECT_EQ(jsonl.size(), kGoldenStampedBytes);
  EXPECT_GT(jsonl.size(), kGoldenTraceBytes)
      << "stamping on must add cause fields";
}

}  // namespace
}  // namespace omega::harness
