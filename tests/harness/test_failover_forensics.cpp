// Failover forensics end-to-end: run a traced 3-tier hierarchy, kill the
// global leader, and check that the merged multi-node trace attributes the
// whole measured outage window to the named phases (detection /
// dissemination / election), cross-checked against the ground-truth
// window the experiment itself measured.
#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <string>
#include <vector>

#include "harness/experiment.hpp"
#include "obs/exposition.hpp"
#include "obs/forensics.hpp"

namespace omega::harness {
namespace {

constexpr std::size_t kNodes = 18;

/// 18 nodes, 6 regions of 3, 3 zones, one global group — traced.
scenario traced_three_tier(std::uint64_t seed = 29) {
  scenario sc;
  sc.name = "failover-forensics";
  sc.nodes = kNodes;
  sc.alg = election::algorithm::omega_lc;
  sc.links = net::link_profile::lan();
  sc.churn = churn_profile::none();
  sc.hierarchy = hierarchy_profile::three_tier(6, 3);
  sc.trace = true;
  sc.seed = seed;
  return sc;
}

std::optional<process_id> settle(experiment& exp, duration budget = sec(40)) {
  auto& sim = exp.simulator();
  if (sim.now() < time_origin + sec(5)) sim.run_until(time_origin + sec(5));
  const time_point deadline = sim.now() + budget;
  while (sim.now() < deadline) {
    if (auto agreed = exp.group().agreed_leader()) return agreed;
    sim.run_until(sim.now() + msec(100));
  }
  return exp.group().agreed_leader();
}

bool all_coordinators_agree(experiment& exp) {
  const auto agreed = exp.group().agreed_leader();
  if (!agreed.has_value()) return false;
  for (std::uint32_t i = 0; i < kNodes; ++i) {
    auto* coord = exp.node_coordinator(node_id{i});
    if (coord == nullptr) continue;
    if (coord->global_leader() != agreed) return false;
  }
  return true;
}

TEST(FailoverForensics, AttributesGlobalLeaderOutageToNamedPhases) {
  experiment exp(traced_three_tier());
  auto& sim = exp.simulator();
  const auto global = settle(exp);
  ASSERT_TRUE(global.has_value());
  // Let the whole hierarchy converge before injecting the crash.
  {
    const time_point deadline = sim.now() + sec(30);
    while (sim.now() < deadline && !all_coordinators_agree(exp)) {
      sim.run_until(sim.now() + msec(100));
    }
    ASSERT_TRUE(all_coordinators_agree(exp));
  }

  // Ground-truth outage window: crash instant -> every live coordinator
  // agreeing on a live successor.
  const node_id victim{global->value()};
  const time_point crash_at = sim.now();
  exp.crash_node(victim);

  std::optional<process_id> successor;
  const time_point deadline = sim.now() + sec(60);
  while (sim.now() < deadline) {
    sim.run_until(sim.now() + msec(50));
    const auto agreed = exp.group().agreed_leader();
    if (agreed.has_value() && *agreed != *global && all_coordinators_agree(exp)) {
      successor = agreed;
      break;
    }
  }
  ASSERT_TRUE(successor.has_value()) << "no converged successor within 60 s";
  const time_point converged_at = sim.now();
  const double outage_s = to_seconds(converged_at - crash_at);
  ASSERT_GT(outage_s, 0.0);

  const auto budget =
      exp.attribute_outage(victim, crash_at, converged_at, successor);

  // The acceptance gate: >= 95% of the measured re-election interval is
  // attributed to a named phase.
  EXPECT_TRUE(budget.saw_detection) << "no suspicion/accusation of the victim";
  EXPECT_TRUE(budget.saw_engagement) << "no survivor engagement found";
  EXPECT_GE(budget.attributed_fraction(), 0.95)
      << "detection=" << budget.detection_s
      << " dissemination=" << budget.dissemination_s
      << " election=" << budget.election_s << " window=" << budget.window_s();

  // Cross-check against the ground-truth outage window: the phase sum must
  // equal the independently measured crash -> convergence interval.
  EXPECT_NEAR(budget.attributed_s(), outage_s, outage_s * 0.05 + 1e-9);
  EXPECT_NEAR(budget.window_s(), outage_s, 1e-9);

  // Phase sanity: detection dominates on a quiet LAN (the FD freshness
  // deadline is the long pole), and no phase is negative.
  EXPECT_GT(budget.detection_s, 0.0);
  EXPECT_GE(budget.dissemination_s, 0.0);
  EXPECT_GE(budget.election_s, 0.0);
}

TEST(FailoverForensics, MergedTraceIsTimeOrderedAndMultiNode) {
  experiment exp(traced_three_tier(31));
  const auto global = settle(exp);
  ASSERT_TRUE(global.has_value());

  const auto merged = exp.merged_trace();
  ASSERT_FALSE(merged.empty());
  std::size_t distinct_nodes = 0;
  std::vector<bool> seen(kNodes, false);
  for (std::size_t i = 0; i < merged.size(); ++i) {
    if (i > 0) {
      EXPECT_GE(merged[i].at, merged[i - 1].at) << "at index " << i;
    }
    const auto n = merged[i].node;
    ASSERT_TRUE(n.valid());
    if (!seen[n.value()]) {
      seen[n.value()] = true;
      ++distinct_nodes;
    }
  }
  EXPECT_GT(distinct_nodes, kNodes / 2) << "trace should span most nodes";

  // Hierarchy runs annotate tiers: at least the region-tier (0) events and
  // some upper-tier events must carry their tier.
  bool saw_region_tier = false;
  bool saw_upper_tier = false;
  for (const auto& ev : merged) {
    if (ev.tier == 0) saw_region_tier = true;
    if (ev.tier > 0) saw_upper_tier = true;
  }
  EXPECT_TRUE(saw_region_tier);
  EXPECT_TRUE(saw_upper_tier);

  // The merged stream dumps as JSONL (one line per event).
  const std::string jsonl = obs::render_jsonl(merged);
  EXPECT_EQ(static_cast<std::size_t>(
                std::count(jsonl.begin(), jsonl.end(), '\n')),
            merged.size());
}

TEST(FailoverForensics, RegistriesSurviveCrashRecoveryMonotonically) {
  experiment exp(traced_three_tier(37));
  auto& sim = exp.simulator();
  const auto global = settle(exp);
  ASSERT_TRUE(global.has_value());

  exp.export_metrics();
  auto* reg = exp.node_registry(node_id{0});
  ASSERT_NE(reg, nullptr);
  const auto before =
      reg->get_counter("omega_messages_sent_total",
                       {{"kind", "alive"}, {"node", "0"}})
          .value();
  EXPECT_GT(before, 0u);

  // Crash node 0 (stats are exported as the instance dies), recover it,
  // run on, re-export: the per-node counter must never move backwards even
  // though the new incarnation restarted its internal counts from zero.
  exp.crash_node(node_id{0});
  auto* reg_after_crash = exp.node_registry(node_id{0});
  ASSERT_EQ(reg, reg_after_crash) << "registry must outlive the instance";
  const auto at_crash =
      reg->get_counter("omega_messages_sent_total",
                       {{"kind", "alive"}, {"node", "0"}})
          .value();
  EXPECT_GE(at_crash, before);

  exp.recover_node(node_id{0});
  sim.run_until(sim.now() + sec(5));
  exp.export_metrics();
  const auto after =
      reg->get_counter("omega_messages_sent_total",
                       {{"kind", "alive"}, {"node", "0"}})
          .value();
  EXPECT_GE(after, at_crash);
}

TEST(FailoverForensics, UntracedScenarioHasNoObservability) {
  scenario sc = traced_three_tier();
  sc.trace = false;
  experiment exp(sc);
  EXPECT_EQ(exp.node_registry(node_id{0}), nullptr);
  EXPECT_EQ(exp.node_trace(node_id{0}), nullptr);
  EXPECT_TRUE(exp.merged_trace().empty());
}

}  // namespace
}  // namespace omega::harness
