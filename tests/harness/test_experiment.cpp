// Experiment-harness tests: determinism, churn injection, candidate
// restriction, warm-up semantics, and metric extraction plumbing.
#include <gtest/gtest.h>

#include "harness/experiment.hpp"

namespace omega::harness {
namespace {

scenario small(election::algorithm alg = election::algorithm::omega_lc) {
  scenario sc;
  sc.name = "harness-test";
  sc.nodes = 4;
  sc.alg = alg;
  sc.links = net::link_profile::lan();
  sc.churn = churn_profile::none();
  sc.measured = sec(60);
  sc.warmup = sec(30);
  sc.seed = 13;
  return sc;
}

TEST(Experiment, SameSeedSameResult) {
  scenario sc = small();
  sc.churn = churn_profile::paper_default();
  sc.churn.mean_uptime = sec(120);
  sc.measured = sec(300);

  experiment a(sc);
  experiment b(sc);
  const auto ra = a.run();
  const auto rb = b.run();
  EXPECT_EQ(ra.p_leader, rb.p_leader);
  EXPECT_EQ(ra.tr_mean_s, rb.tr_mean_s);
  EXPECT_EQ(ra.unjustified, rb.unjustified);
  EXPECT_EQ(ra.leader_crashes, rb.leader_crashes);
  EXPECT_EQ(ra.events_executed, rb.events_executed);
  EXPECT_EQ(ra.kb_per_second, rb.kb_per_second);
}

TEST(Experiment, DifferentSeedDifferentTrajectory) {
  scenario sc = small();
  sc.churn = churn_profile::paper_default();
  sc.churn.mean_uptime = sec(120);
  sc.measured = sec(300);

  experiment a(sc);
  sc.seed = 14;
  experiment b(sc);
  EXPECT_NE(a.run().events_executed, b.run().events_executed);
}

TEST(Experiment, ChurnActuallyKillsNodes) {
  scenario sc = small();
  sc.churn = churn_profile::paper_default();
  sc.churn.mean_uptime = sec(60);  // aggressive
  sc.measured = sec(600);
  experiment exp(sc);
  const auto r = exp.run();
  EXPECT_GT(r.leader_crashes + r.justified, 0u)
      << "10 simulated minutes at 1-minute mean uptime must kill leaders";
}

TEST(Experiment, QuietClusterIsPerfect) {
  experiment exp(small());
  const auto r = exp.run();
  EXPECT_DOUBLE_EQ(r.p_leader, 1.0);
  EXPECT_EQ(r.unjustified, 0u);
  EXPECT_EQ(r.tr_samples, 0u);
  EXPECT_GT(r.kb_per_second, 0.0);
  EXPECT_GT(r.cpu_percent, 0.0);
}

TEST(Experiment, CandidateRestrictionRespected) {
  scenario sc = small();
  sc.candidates = 2;  // only processes 0 and 1 may lead
  sc.churn = churn_profile::none();
  experiment exp(sc);
  exp.run();
  const auto leader = exp.group().agreed_leader();
  ASSERT_TRUE(leader.has_value());
  EXPECT_LT(leader->value(), 2u);
}

TEST(Experiment, CandidateRestrictionSurvivesLeaderCrash) {
  scenario sc = small();
  sc.candidates = 2;
  experiment exp(sc);
  auto& sim = exp.simulator();
  sim.run_until(time_origin + sec(30));
  const auto leader = exp.group().agreed_leader();
  ASSERT_TRUE(leader.has_value());
  exp.crash_node(node_id{leader->value()});
  sim.run_until(sim.now() + sec(5));
  const auto new_leader = exp.group().agreed_leader();
  ASSERT_TRUE(new_leader.has_value());
  EXPECT_LT(new_leader->value(), 2u);
  EXPECT_NE(*new_leader, *leader);
}

TEST(Experiment, NodeUpTracksCrashAndRecover) {
  scenario sc = small();
  experiment exp(sc);
  exp.simulator().run_until(time_origin + sec(10));
  EXPECT_TRUE(exp.node_up(node_id{2}));
  exp.crash_node(node_id{2});
  EXPECT_FALSE(exp.node_up(node_id{2}));
  EXPECT_EQ(exp.node_service(node_id{2}), nullptr);
  exp.recover_node(node_id{2});
  EXPECT_TRUE(exp.node_up(node_id{2}));
  EXPECT_NE(exp.node_service(node_id{2}), nullptr);
}

TEST(Experiment, RecoveredNodeGetsFreshIncarnation) {
  scenario sc = small();
  experiment exp(sc);
  exp.simulator().run_until(time_origin + sec(10));
  const auto inc_before = exp.node_service(node_id{1})->config().inc;
  exp.crash_node(node_id{1});
  exp.recover_node(node_id{1});
  EXPECT_GT(exp.node_service(node_id{1})->config().inc, inc_before);
}

TEST(Experiment, SimulatedHoursMatchScenario) {
  scenario sc = small();
  sc.measured = sec(720);
  experiment exp(sc);
  const auto r = exp.run();
  EXPECT_NEAR(r.simulated_hours, 0.2, 1e-9);
}

TEST(Experiment, LinkCrashesDegradeOmegaL) {
  // Sanity: the Figure-7 effect exists at test scale. Omega_l's availability
  // with 30s-mean link crashes must fall below its lossy-only availability.
  scenario calm = small(election::algorithm::omega_l);
  calm.measured = sec(600);
  calm.churn = churn_profile::none();
  experiment calm_exp(calm);
  const double calm_avail = calm_exp.run().p_leader;

  scenario hostile = calm;
  hostile.link_crashes = net::link_crash_profile::crashes(sec(30), sec(3));
  experiment hostile_exp(hostile);
  const double hostile_avail = hostile_exp.run().p_leader;

  EXPECT_LT(hostile_avail, calm_avail);
}

TEST(Experiment, OmegaLcBeatsOmegaLUnderLinkCrashes) {
  // The headline robustness ordering, at test scale.
  scenario sc = small(election::algorithm::omega_lc);
  sc.measured = sec(900);
  sc.churn = churn_profile::none();
  sc.link_crashes = net::link_crash_profile::crashes(sec(30), sec(3));
  experiment s2(sc);
  sc.alg = election::algorithm::omega_l;
  experiment s3(sc);
  EXPECT_GT(s2.run().p_leader, s3.run().p_leader);
}

TEST(Experiment, BandwidthGrowsWithClusterSize) {
  scenario four = small(election::algorithm::omega_lc);
  scenario eight = four;
  eight.nodes = 8;
  experiment e4(four);
  experiment e8(eight);
  EXPECT_GT(e8.run().kb_per_second, e4.run().kb_per_second);
}

TEST(Experiment, OmegaLCheaperThanOmegaLc) {
  scenario s2 = small(election::algorithm::omega_lc);
  scenario s3 = small(election::algorithm::omega_l);
  s2.nodes = s3.nodes = 8;
  experiment e2(s2);
  experiment e3(s3);
  const auto r2 = e2.run();
  const auto r3 = e3.run();
  EXPECT_GT(r2.kb_per_second, 2.0 * r3.kb_per_second)
      << "S2 must cost several times S3 at n=8";
}

}  // namespace
}  // namespace omega::harness
