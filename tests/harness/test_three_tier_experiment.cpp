// End-to-end 3-tier harness runs: per-region metrics and blame counters
// come out of experiment::run(), roster scoping beats cluster-wide HELLO
// on the wire at equal behaviour, and the per-group hello stats expose the
// scoped fan-out.
#include <gtest/gtest.h>

#include "harness/experiment.hpp"
#include "proto/wire.hpp"

namespace omega::harness {
namespace {

scenario small_three_tier(bool scoped, duration measured = sec(120)) {
  scenario sc;
  sc.name = scoped ? "e2e-3tier-scoped" : "e2e-3tier-cluster";
  sc.nodes = 18;
  sc.alg = election::algorithm::omega_lc;
  sc.links = net::link_profile::lan();
  sc.churn = churn_profile::none();
  sc.hierarchy = hierarchy_profile::three_tier(6, 3);
  sc.hierarchy.scoped_hello = scoped;
  sc.measured = measured;
  sc.seed = 71;
  return sc;
}

TEST(ThreeTierExperiment, RunPopulatesPerRegionMetrics) {
  scenario sc = small_three_tier(true);
  // Light churn so the per-region trackers see some action.
  sc.churn = churn_profile{true, sec(90), sec(4)};
  experiment exp(sc);
  const experiment_result res = exp.run();

  ASSERT_EQ(res.regions.size(), 6u);
  EXPECT_GT(res.p_leader, 0.80);
  double mean_region_availability = 0.0;
  for (const auto& region : res.regions) {
    EXPECT_GE(region.availability, 0.0);
    EXPECT_LE(region.availability, 1.0);
    mean_region_availability += region.availability / 6.0;
  }
  // Regions are 3-node omega_lc groups on a LAN: they should be healthy
  // almost all of the time even under churn.
  EXPECT_GT(mean_region_availability, 0.80);
  // Every counted global outage lands in at most one bucket each, and the
  // buckets only ever count crash-caused outages.
  EXPECT_LE(res.outages_blamed_regional + res.outages_blamed_global,
            res.justified + res.leader_crashes + 1);
}

TEST(ThreeTierExperiment, FlatScenarioHasNoRegionMetrics) {
  scenario sc;
  sc.nodes = 6;
  sc.churn = churn_profile::none();
  sc.measured = sec(30);
  experiment exp(sc);
  EXPECT_EQ(exp.hier_metrics(), nullptr);
  const experiment_result res = exp.run();
  EXPECT_TRUE(res.regions.empty());
  EXPECT_EQ(res.outages_blamed_regional + res.outages_blamed_global, 0u);
}

TEST(ThreeTierExperiment, RosterScopingCutsHelloTrafficAtEqualAvailability) {
  const duration window = sec(90);
  struct cell {
    experiment_result res;
    std::uint64_t hello_dgrams = 0;
  };
  auto run = [&](bool scoped) {
    scenario sc = small_three_tier(scoped, window);
    experiment exp(sc);
    cell c;
    exp.network().set_send_tap(
        [&c](node_id, node_id, std::span<const std::byte> payload) {
          if (proto::peek_kind(payload) == proto::msg_kind::hello) {
            ++c.hello_dgrams;
          }
        });
    c.res = exp.run();
    return c;
  };
  const cell scoped = run(true);
  const cell cluster = run(false);

  // Same healthy cluster either way...
  EXPECT_GT(scoped.res.p_leader, 0.95);
  EXPECT_GT(cluster.res.p_leader, 0.95);
  // ...but scoping sends materially fewer HELLO datagrams. 18 nodes is
  // near the worst case for the ratio: 3 of them are global candidates
  // that legitimately announce roster-wide, and the boot-time promotion
  // churn's join broadcasts plus the discovery probes are fixed costs —
  // the steady-state sweep alone is ~0.45x here and keeps shrinking with
  // the listener share (fig12 shows the >= 2x whole-wire cut at 300+).
  EXPECT_LT(static_cast<double>(scoped.hello_dgrams),
            0.7 * static_cast<double>(cluster.hello_dgrams))
      << "scoped=" << scoped.hello_dgrams << " cluster=" << cluster.hello_dgrams;
  EXPECT_LT(scoped.res.kb_per_second, cluster.res.kb_per_second)
      << "scoped=" << scoped.res.kb_per_second
      << " cluster=" << cluster.res.kb_per_second;
}

TEST(ThreeTierExperiment, PerGroupHelloStatsExposeScopedFanOut) {
  scenario sc = small_three_tier(true, sec(60));
  experiment exp(sc);
  (void)exp.run();

  const auto* topo = exp.topo();
  ASSERT_NE(topo, nullptr);
  auto* svc = exp.node_service(node_id{0});
  ASSERT_NE(svc, nullptr);
  EXPECT_EQ(svc->hello_fanout(), membership::hello_fanout::roster);

  const auto& by_group = svc->stats().hello_by_group;
  const group_id region_group = topo->group_at(node_id{0}, 0);
  auto it = by_group.find(region_group);
  ASSERT_NE(it, by_group.end()) << "no hello accounting for the region group";
  ASSERT_GT(it->second.hellos, 0u);
  // A region of 3 has 2 peers: the scoped fan-out per region HELLO must be
  // far below the 17-node cluster roster.
  const double avg_destinations =
      static_cast<double>(it->second.destinations) /
      static_cast<double>(it->second.hellos);
  EXPECT_LE(avg_destinations, 4.0);
  EXPECT_GE(avg_destinations, 1.0);
}

}  // namespace
}  // namespace omega::harness
