// Causal forensics end-to-end on the sim harness: a stamped 3-tier run,
// a global-leader kill, and the DAG rebuilt from the merged per-node rings
// must (a) link >= 95% of the failover's events back to root-cause
// evidence about the victim, (b) attribute the outage into phase budgets
// matching the windowed heuristic within 5%, and (c) expose the run over
// the embedded HTTP endpoint. Also covers the sim profiler histograms.
#include <gtest/gtest.h>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <optional>
#include <string>

#include "harness/experiment.hpp"
#include "obs/causal_graph.hpp"
#include "obs/exposition.hpp"

namespace omega::harness {
namespace {

constexpr std::size_t kNodes = 18;

/// The failover-forensics hierarchy (18 nodes, 6 regions, 3 zones), with
/// the causal plane on: sinks chain causes and the wire carries stamps.
scenario stamped_three_tier(std::uint64_t seed = 29) {
  scenario sc;
  sc.name = "causal-forensics";
  sc.nodes = kNodes;
  sc.alg = election::algorithm::omega_lc;
  sc.links = net::link_profile::lan();
  sc.churn = churn_profile::none();
  sc.hierarchy = hierarchy_profile::three_tier(6, 3);
  sc.trace = true;
  sc.causal = true;
  sc.seed = seed;
  return sc;
}

std::optional<process_id> settle(experiment& exp, duration budget = sec(40)) {
  auto& sim = exp.simulator();
  if (sim.now() < time_origin + sec(5)) sim.run_until(time_origin + sec(5));
  const time_point deadline = sim.now() + budget;
  while (sim.now() < deadline) {
    if (auto agreed = exp.group().agreed_leader()) return agreed;
    sim.run_until(sim.now() + msec(100));
  }
  return exp.group().agreed_leader();
}

bool all_coordinators_agree(experiment& exp) {
  const auto agreed = exp.group().agreed_leader();
  if (!agreed.has_value()) return false;
  for (std::uint32_t i = 0; i < kNodes; ++i) {
    auto* coord = exp.node_coordinator(node_id{i});
    if (coord == nullptr) continue;
    if (coord->global_leader() != agreed) return false;
  }
  return true;
}

struct failover {
  node_id victim;
  time_point crash_at;
  time_point converged_at;
  process_id successor;
};

/// Converge the hierarchy, kill the global leader, run until every live
/// coordinator agrees on a live successor; the window is the ground truth.
failover kill_global_leader(experiment& exp) {
  auto& sim = exp.simulator();
  const auto global = settle(exp);
  EXPECT_TRUE(global.has_value());
  {
    const time_point deadline = sim.now() + sec(30);
    while (sim.now() < deadline && !all_coordinators_agree(exp)) {
      sim.run_until(sim.now() + msec(100));
    }
    EXPECT_TRUE(all_coordinators_agree(exp));
  }
  failover f{node_id{global->value()}, sim.now(), sim.now(), process_id{}};
  exp.crash_node(f.victim);
  const time_point deadline = sim.now() + sec(60);
  while (sim.now() < deadline) {
    sim.run_until(sim.now() + msec(50));
    const auto agreed = exp.group().agreed_leader();
    if (agreed.has_value() && *agreed != *global &&
        all_coordinators_agree(exp)) {
      f.successor = *agreed;
      break;
    }
  }
  EXPECT_TRUE(f.successor.valid()) << "no converged successor within 60 s";
  f.converged_at = sim.now();
  return f;
}

TEST(CausalForensics, DagLinksGlobalLeaderFailover) {
  experiment exp(stamped_three_tier());
  const failover f = kill_global_leader(exp);

  const auto graph = exp.build_causal_graph();
  ASSERT_GT(graph.size(), 0u);
  const auto report = graph.linkage(f.victim, process_id{f.victim.value()},
                                    f.crash_at, f.converged_at);

  // The acceptance gate: >= 95% of the causally potent events in the
  // outage window descend from root-cause evidence about the victim.
  EXPECT_GT(report.considered, 0u);
  EXPECT_GE(report.evidence_roots, 1u);
  EXPECT_GE(report.fraction(), 0.95)
      << report.linked << "/" << report.considered << " linked, "
      << report.dangling << " dangling";

  // Chains must actually cross nodes — an accusation heard remotely links
  // back into the accuser's ring through the wire stamp.
  bool cross_node_edge = false;
  for (std::size_t i = 0; i < graph.size(); ++i) {
    const int parent = graph.cause_index(i);
    if (parent >= 0 && graph.event(i).node !=
                           graph.event(static_cast<std::size_t>(parent)).node) {
      cross_node_edge = true;
      break;
    }
  }
  EXPECT_TRUE(cross_node_edge);
}

TEST(CausalForensics, DagAttributionMatchesWindowedWithinFivePercent) {
  experiment exp(stamped_three_tier(31));
  const failover f = kill_global_leader(exp);
  const double outage_s = to_seconds(f.converged_at - f.crash_at);
  ASSERT_GT(outage_s, 0.0);

  const auto windowed =
      exp.attribute_outage(f.victim, f.crash_at, f.converged_at, f.successor);
  const auto dag = exp.attribute_outage_dag(f.victim, f.crash_at,
                                            f.converged_at, f.successor);

  ASSERT_TRUE(dag.saw_detection);
  ASSERT_TRUE(dag.saw_engagement);
  EXPECT_GE(dag.attributed_fraction(), 0.95);
  EXPECT_NEAR(dag.window_s(), outage_s, 1e-9);

  // Same forensics, two reconstructions: each phase budget agrees with the
  // windowed heuristic within 5% of the outage.
  const double tol = outage_s * 0.05 + 1e-9;
  EXPECT_NEAR(dag.detection_s, windowed.detection_s, tol);
  EXPECT_NEAR(dag.dissemination_s, windowed.dissemination_s, tol);
  EXPECT_NEAR(dag.election_s, windowed.election_s, tol);
}

TEST(CausalForensics, StampingOffLeavesEveryEventARoot) {
  scenario sc = stamped_three_tier(37);
  sc.causal = false;
  experiment exp(sc);
  const auto global = settle(exp);
  ASSERT_TRUE(global.has_value());
  const auto graph = exp.build_causal_graph();
  ASSERT_GT(graph.size(), 0u);
  for (std::size_t i = 0; i < graph.size(); ++i) {
    EXPECT_EQ(graph.cause_index(i), -1);
    EXPECT_FALSE(graph.is_dangling(i));
  }
}

TEST(CausalForensics, ProfilerBucketsHostTimePerMessageKind) {
  scenario sc = stamped_three_tier(41);
  sc.profile_sim = true;
  experiment exp(sc);
  const auto global = settle(exp);
  ASSERT_TRUE(global.has_value());

  // Heartbeats dominate any settled run; their handler histogram must have
  // samples and positive total host time.
  auto& h = exp.sim_registry().get_histogram("omega_sim_handler_seconds",
                                             {{"kind", "alive"}}, {});
  EXPECT_GT(h.count(), 100u);
  EXPECT_GT(h.sum(), 0.0);
}

/// One blocking GET against the experiment's endpoint.
std::string http_get(std::uint16_t port, const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(fd);
    return "";
  }
  const std::string req = "GET " + path + " HTTP/1.0\r\n\r\n";
  (void)!::send(fd, req.data(), req.size(), MSG_NOSIGNAL);
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

TEST(CausalForensics, HarnessServesMergedMetricsAndTraceOverHttp) {
  experiment exp(stamped_three_tier(43));
  const auto global = settle(exp);
  ASSERT_TRUE(global.has_value());
  ASSERT_TRUE(exp.serve_http(0));
  ASSERT_GT(exp.http_port(), 0);
  exp.export_metrics();
  exp.publish_http();

  const std::string metrics = http_get(exp.http_port(), "/metrics");
  EXPECT_NE(metrics.find("HTTP/1.0 200 OK"), std::string::npos);
  EXPECT_NE(metrics.find("omega_messages_sent_total"), std::string::npos);
  // The page is one merged exposition across all node registries plus the
  // harness registry: the body must re-parse.
  const auto body_at = metrics.find("\r\n\r\n");
  ASSERT_NE(body_at, std::string::npos);
  const auto samples = obs::parse_prometheus(metrics.substr(body_at + 4));
  ASSERT_TRUE(samples.has_value());
  EXPECT_FALSE(samples->empty());

  const std::string trace = http_get(exp.http_port(), "/trace");
  EXPECT_NE(trace.find("HTTP/1.0 200 OK"), std::string::npos);
  EXPECT_NE(trace.find("\"kind\""), std::string::npos);
}

}  // namespace
}  // namespace omega::harness
