// Formatting tests for the bench report tables.
#include <gtest/gtest.h>

#include <sstream>

#include "harness/report.hpp"

namespace omega::harness {
namespace {

TEST(Report, FmtDouble) {
  EXPECT_EQ(fmt_double(0.938, 2), "0.94");
  EXPECT_EQ(fmt_double(5.0, 1), "5.0");
  EXPECT_EQ(fmt_double(-1.25, 2), "-1.25");
  EXPECT_EQ(fmt_double(0.0, 3), "0.000");
}

TEST(Report, FmtPercent) {
  EXPECT_EQ(fmt_percent(0.99842, 2), "99.84%");
  EXPECT_EQ(fmt_percent(1.0, 2), "100.00%");
  EXPECT_EQ(fmt_percent(0.7742, 2), "77.42%");
  EXPECT_EQ(fmt_percent(0.0, 1), "0.0%");
}

TEST(Report, FmtCi) {
  EXPECT_EQ(fmt_ci(0.94, 0.052, 2), "0.94 +/-0.05");
  EXPECT_EQ(fmt_ci(3.0, 0.0, 1), "3.0 +/-0.0");
}

TEST(Report, TableAlignsColumns) {
  table t("Demo");
  t.headers({"name", "value"});
  t.row({"short", "1"});
  t.row({"a much longer cell", "22"});
  std::ostringstream out;
  t.print(out);
  const std::string s = out.str();
  EXPECT_NE(s.find("== Demo =="), std::string::npos);
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("a much longer cell"), std::string::npos);

  // All data lines are padded to the same width per column: the separator
  // row must be at least as wide as the widest cell row.
  std::istringstream lines(s);
  std::string line, sep;
  std::size_t max_len = 0;
  while (std::getline(lines, line)) {
    if (line.find("---") != std::string::npos) sep = line;
    max_len = std::max(max_len, line.size());
  }
  ASSERT_FALSE(sep.empty());
}

TEST(Report, EmptyTableStillPrintsTitle) {
  table t("Nothing");
  std::ostringstream out;
  t.print(out);
  EXPECT_NE(out.str().find("Nothing"), std::string::npos);
}

TEST(Report, RowsShorterThanHeadersTolerated) {
  table t("Ragged");
  t.headers({"a", "b", "c"});
  t.row({"1"});
  std::ostringstream out;
  t.print(out);  // must not crash
  EXPECT_NE(out.str().find("1"), std::string::npos);
}

}  // namespace
}  // namespace omega::harness
