// Unit tests of metrics::hierarchy_metrics: per-region availability and
// T_r, and the cross-tier blame split of global-leader outages — including
// the edge case where a global outage spans a concurrent regional failover
// (exactly one bucket must take it).
#include "metrics/hierarchy_metrics.hpp"

#include <gtest/gtest.h>

namespace omega::metrics {
namespace {

// 9 processes in 3 regions of 3: region(pid) = pid / 3.
constexpr std::size_t kRegions = 3;

hierarchy_metrics make_tracker() {
  return hierarchy_metrics(kRegions,
                           [](process_id pid) { return pid.value() / 3; });
}

process_id p(std::uint32_t v) { return process_id{v}; }

/// Joins the 3 processes of `region` and agrees them on `leader`.
void agree_region(hierarchy_metrics& hm, std::size_t region, time_point now,
                  std::optional<process_id> leader) {
  for (std::uint32_t i = 0; i < 3; ++i) {
    const process_id pid = p(static_cast<std::uint32_t>(region * 3 + i));
    hm.on_region_view(now, pid, leader);
  }
}

struct fixture {
  hierarchy_metrics hm = make_tracker();
  time_point t0 = time_origin;

  fixture() {
    for (std::uint32_t i = 0; i < 9; ++i) hm.on_join(t0, p(i));
  }
};

TEST(HierarchyMetrics, PerRegionAvailabilityIsIndependent) {
  fixture f;
  // Region 0 agreed, region 1 agreed, region 2 leaderless throughout.
  agree_region(f.hm, 0, f.t0, p(0));
  agree_region(f.hm, 1, f.t0, p(3));
  agree_region(f.hm, 2, f.t0, std::nullopt);
  f.hm.begin(f.t0);
  f.hm.finish(f.t0 + sec(100));

  EXPECT_DOUBLE_EQ(f.hm.region(0).leader_availability(), 1.0);
  EXPECT_DOUBLE_EQ(f.hm.region(1).leader_availability(), 1.0);
  EXPECT_DOUBLE_EQ(f.hm.region(2).leader_availability(), 0.0);
}

TEST(HierarchyMetrics, PerRegionRecoveryTimeTracksThatRegionOnly) {
  fixture f;
  agree_region(f.hm, 0, f.t0, p(0));
  agree_region(f.hm, 1, f.t0, p(3));
  agree_region(f.hm, 2, f.t0, p(6));
  f.hm.begin(f.t0);

  // Region 1's leader crashes; the region re-agrees 2 s later.
  f.hm.on_crash(f.t0 + sec(10), p(3));
  agree_region(f.hm, 1, f.t0 + sec(10), std::nullopt);
  agree_region(f.hm, 1, f.t0 + sec(12), p(4));
  f.hm.finish(f.t0 + sec(100));

  EXPECT_EQ(f.hm.region(1).recovery_times().count(), 1u);
  EXPECT_NEAR(f.hm.region(1).recovery_times().mean(), 2.0, 1e-9);
  EXPECT_EQ(f.hm.region(1).leader_crashes(), 1u);
  EXPECT_EQ(f.hm.region(0).recovery_times().count(), 0u);
  EXPECT_EQ(f.hm.region(2).recovery_times().count(), 0u);
  // Availability of region 1 lost those 2 s; the others stayed perfect.
  EXPECT_NEAR(f.hm.region(1).leader_availability(), 0.98, 1e-9);
  EXPECT_DOUBLE_EQ(f.hm.region(0).leader_availability(), 1.0);
}

TEST(HierarchyMetrics, CrashResolvedInOwnRegionBlamesRegionalFailover) {
  fixture f;
  f.hm.begin(f.t0);
  f.hm.on_global_agreement(f.t0, p(0));

  f.hm.on_global_agreement(f.t0 + sec(10), std::nullopt);
  f.hm.on_crash(f.t0 + sec(10), p(0));
  // Resolved by p(1) — same region as the victim: the vacancy waited on
  // the regional failover + promotion chain.
  f.hm.on_global_agreement(f.t0 + sec(13), p(1));

  EXPECT_EQ(f.hm.outages_blamed_regional(), 1u);
  EXPECT_EQ(f.hm.outages_blamed_global(), 0u);
  EXPECT_EQ(f.hm.outages_unattributed(), 0u);
  EXPECT_NEAR(f.hm.regional_blame_durations().mean(), 3.0, 1e-9);
}

TEST(HierarchyMetrics, CrashResolvedByForeignCandidateBlamesGlobalReelection) {
  fixture f;
  f.hm.begin(f.t0);
  f.hm.on_global_agreement(f.t0, p(0));

  f.hm.on_crash(f.t0 + sec(10), p(0));
  f.hm.on_global_agreement(f.t0 + sec(10), std::nullopt);
  f.hm.on_global_agreement(f.t0 + sec(11), p(4));  // region 1: established

  EXPECT_EQ(f.hm.outages_blamed_regional(), 0u);
  EXPECT_EQ(f.hm.outages_blamed_global(), 1u);
  EXPECT_NEAR(f.hm.global_blame_durations().mean(), 1.0, 1e-9);
}

TEST(HierarchyMetrics, OutageSpanningRegionalFailoverLandsInExactlyOneBucket) {
  // The edge case: the global leader crashes, its region is leaderless for
  // a while (a regional failover is in flight), but an established foreign
  // candidate resolves the *global* outage first. Exactly one bucket — the
  // resolving one — takes the outage.
  fixture f;
  agree_region(f.hm, 0, f.t0, p(0));
  f.hm.begin(f.t0);
  f.hm.on_global_agreement(f.t0, p(0));

  f.hm.on_crash(f.t0 + sec(10), p(0));
  f.hm.on_global_agreement(f.t0 + sec(10), std::nullopt);
  agree_region(f.hm, 0, f.t0 + sec(10), std::nullopt);  // regional failover opens
  f.hm.on_global_agreement(f.t0 + sec(12), p(4));       // foreign candidate wins
  agree_region(f.hm, 0, f.t0 + sec(14), p(1));          // region heals later

  EXPECT_EQ(f.hm.outages_blamed_global(), 1u);
  EXPECT_EQ(f.hm.outages_blamed_regional(), 0u);
  EXPECT_EQ(f.hm.outages_blamed_global() + f.hm.outages_blamed_regional() +
                f.hm.outages_unattributed(),
            1u);
  // The concurrent regional failover is still visible where it belongs:
  // in region 0's own recovery-time tracker.
  EXPECT_EQ(f.hm.region(0).recovery_times().count(), 1u);
  EXPECT_NEAR(f.hm.region(0).recovery_times().mean(), 4.0, 1e-9);
}

TEST(HierarchyMetrics, HealthyLeaderChangeIsUnattributed) {
  fixture f;
  f.hm.begin(f.t0);
  f.hm.on_global_agreement(f.t0, p(0));
  // Agreement wobbles and lands on another leader although p(0) is alive.
  f.hm.on_global_agreement(f.t0 + sec(10), std::nullopt);
  f.hm.on_global_agreement(f.t0 + sec(11), p(4));

  EXPECT_EQ(f.hm.outages_blamed_regional(), 0u);
  EXPECT_EQ(f.hm.outages_blamed_global(), 0u);
  EXPECT_EQ(f.hm.outages_unattributed(), 1u);
}

TEST(HierarchyMetrics, ReagreementOnSameLeaderIsABlipNotAnOutage) {
  fixture f;
  f.hm.begin(f.t0);
  f.hm.on_global_agreement(f.t0, p(0));
  f.hm.on_global_agreement(f.t0 + sec(10), std::nullopt);
  f.hm.on_global_agreement(f.t0 + sec(11), p(0));

  EXPECT_EQ(f.hm.outages_blamed_regional() + f.hm.outages_blamed_global() +
                f.hm.outages_unattributed(),
            0u);
}

TEST(HierarchyMetrics, SlowReelectionPastJustificationWindowStillBlamed) {
  // The crash is flagged at event time, so a re-election slower than the
  // justification window is still attributed to the crash.
  fixture f;
  f.hm.set_justification_window(sec(2));
  f.hm.begin(f.t0);
  f.hm.on_global_agreement(f.t0, p(0));

  f.hm.on_global_agreement(f.t0 + sec(10), std::nullopt);
  f.hm.on_crash(f.t0 + sec(10), p(0));
  f.hm.on_global_agreement(f.t0 + sec(20), p(4));  // 10 s > window

  EXPECT_EQ(f.hm.outages_blamed_global(), 1u);
  EXPECT_EQ(f.hm.outages_unattributed(), 0u);
}

TEST(HierarchyMetrics, DirectSwitchAfterCrashIsClassified) {
  fixture f;
  f.hm.begin(f.t0);
  f.hm.on_global_agreement(f.t0, p(0));
  f.hm.on_crash(f.t0 + sec(10), p(0));
  // Agreement jumps straight to the successor without a leaderless gap.
  f.hm.on_global_agreement(f.t0 + sec(10) + msec(500), p(1));

  EXPECT_EQ(f.hm.outages_blamed_regional(), 1u);
  EXPECT_EQ(f.hm.outages_blamed_global(), 0u);
}

TEST(HierarchyMetrics, NothingIsCountedOutsideAccounting) {
  fixture f;  // begin() never called
  f.hm.on_global_agreement(f.t0, p(0));
  f.hm.on_crash(f.t0 + sec(10), p(0));
  f.hm.on_global_agreement(f.t0 + sec(10), std::nullopt);
  f.hm.on_global_agreement(f.t0 + sec(12), p(4));

  EXPECT_EQ(f.hm.outages_blamed_regional() + f.hm.outages_blamed_global() +
                f.hm.outages_unattributed(),
            0u);
}

}  // namespace
}  // namespace omega::metrics
