#include "obs/exposition.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace omega::obs {
namespace {

const parsed_sample* find_sample(const std::vector<parsed_sample>& samples,
                                 std::string_view name,
                                 const label_set& labels) {
  for (const auto& s : samples) {
    if (s.name == name && s.labels == labels) return &s;
  }
  return nullptr;
}

TEST(Exposition, RendersTypeLinesAndPlainSamples) {
  registry reg;
  reg.get_counter("omega_msgs_total", {{"kind", "alive"}}).inc(7);
  reg.get_gauge("omega_eta_seconds").set(2.5);
  std::string text = render_prometheus(reg);
  EXPECT_NE(text.find("# TYPE omega_msgs_total counter\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE omega_eta_seconds gauge\n"), std::string::npos);
  EXPECT_NE(text.find("omega_msgs_total{kind=\"alive\"} 7\n"),
            std::string::npos);
  EXPECT_NE(text.find("omega_eta_seconds 2.5\n"), std::string::npos);
}

TEST(Exposition, EscapesLabelValues) {
  registry reg;
  reg.get_counter("m", {{"path", "a\\b\"c\nd"}}).inc();
  std::string text = render_prometheus(reg);
  EXPECT_NE(text.find("m{path=\"a\\\\b\\\"c\\nd\"} 1\n"), std::string::npos);
  // And the parser must unescape it back to the original value.
  auto samples = parse_prometheus(text);
  ASSERT_TRUE(samples.has_value());
  const auto* s = find_sample(*samples, "m", {{"path", "a\\b\"c\nd"}});
  ASSERT_NE(s, nullptr);
  EXPECT_DOUBLE_EQ(s->value, 1.0);
}

TEST(Exposition, HistogramBucketsAreCumulative) {
  registry reg;
  histogram& h = reg.get_histogram("lat", {{"g", "1"}}, {0.1, 1.0});
  h.observe(0.05);
  h.observe(0.5);
  h.observe(0.7);
  h.observe(50.0);
  std::string text = render_prometheus(reg);
  auto samples = parse_prometheus(text);
  ASSERT_TRUE(samples.has_value());

  auto bucket = [&](const char* le) {
    return find_sample(*samples, "lat_bucket", {{"g", "1"}, {"le", le}});
  };
  const auto* b0 = bucket("0.1");
  const auto* b1 = bucket("1");
  const auto* binf = bucket("+Inf");
  ASSERT_NE(b0, nullptr);
  ASSERT_NE(b1, nullptr);
  ASSERT_NE(binf, nullptr);
  EXPECT_DOUBLE_EQ(b0->value, 1.0);
  EXPECT_DOUBLE_EQ(b1->value, 3.0);  // cumulative: 1 + 2
  EXPECT_DOUBLE_EQ(binf->value, 4.0);

  const auto* count = find_sample(*samples, "lat_count", {{"g", "1"}});
  const auto* sum = find_sample(*samples, "lat_sum", {{"g", "1"}});
  ASSERT_NE(count, nullptr);
  ASSERT_NE(sum, nullptr);
  EXPECT_DOUBLE_EQ(count->value, 4.0);
  EXPECT_DOUBLE_EQ(count->value, binf->value);  // +Inf bucket == count
  EXPECT_NEAR(sum->value, 51.25, 1e-9);
}

TEST(Exposition, CounterStaysMonotoneAcrossComponentResets) {
  registry reg;
  counter& c = reg.get_counter("omega_sent_total");

  // First incarnation publishes a snapshot of 42.
  c.advance_to(42);
  auto first = parse_prometheus(render_prometheus(reg));
  ASSERT_TRUE(first.has_value());
  const auto* s1 = find_sample(*first, "omega_sent_total", {});
  ASSERT_NE(s1, nullptr);

  // The component restarts and republishes from a fresh internal count.
  c.advance_to(5);
  auto second = parse_prometheus(render_prometheus(reg));
  ASSERT_TRUE(second.has_value());
  const auto* s2 = find_sample(*second, "omega_sent_total", {});
  ASSERT_NE(s2, nullptr);
  EXPECT_GE(s2->value, s1->value);  // never observed going backwards

  c.advance_to(50);
  auto third = parse_prometheus(render_prometheus(reg));
  const auto* s3 = find_sample(*third, "omega_sent_total", {});
  ASSERT_NE(s3, nullptr);
  EXPECT_DOUBLE_EQ(s3->value, 50.0);
}

TEST(Exposition, RoundTripsEveryRenderedSample) {
  registry reg;
  reg.get_counter("a_total", {{"x", "1"}}).inc(3);
  reg.get_counter("a_total", {{"x", "2"}}).inc(9);
  reg.get_gauge("b", {{"node", "7"}, {"group", "g one"}}).set(-0.25);
  reg.get_histogram("c", {}, {1.0, 2.0}).observe(1.5);
  auto samples = parse_prometheus(render_prometheus(reg));
  ASSERT_TRUE(samples.has_value());
  // 2 counters + 1 gauge + (3 buckets + sum + count) = 8 samples.
  EXPECT_EQ(samples->size(), 8u);
}

TEST(Exposition, ParserRejectsMalformedLines) {
  EXPECT_FALSE(parse_prometheus("name_without_value\n").has_value());
  EXPECT_FALSE(parse_prometheus("m{unterminated=\"x} 1\n").has_value());
  EXPECT_FALSE(parse_prometheus("m 12abc\n").has_value());
  EXPECT_TRUE(parse_prometheus("# just a comment\n\n").has_value());
}

TEST(Exposition, JsonlDumpsOneObjectPerEvent) {
  trace_event ev;
  ev.kind = event_kind::suspicion_raised;
  ev.at = time_origin + msec(1500);
  ev.node = node_id{3};
  ev.group = group_id{1};
  ev.tier = 2;
  ev.peer = node_id{9};
  ev.value = 0.75;
  ev.seq = 12;
  std::vector<trace_event> events{ev};
  std::string out = render_jsonl(events);
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 1);
  EXPECT_NE(out.find("\"kind\":\"suspicion_raised\""), std::string::npos);
  EXPECT_NE(out.find("\"node\":3"), std::string::npos);
  EXPECT_NE(out.find("\"tier\":2"), std::string::npos);
  EXPECT_NE(out.find("\"peer\":9"), std::string::npos);
  EXPECT_NE(out.find("\"seq\":12"), std::string::npos);
  // Unset ids render as null, not as sentinel integers.
  EXPECT_NE(out.find("\"subject\":null"), std::string::npos);
}

TEST(Exposition, ZeroObservationHistogramRendersEmptyButValid) {
  // A histogram that exists (the family is registered) but never observed:
  // all buckets 0, count 0, sum 0 — and the page must still re-parse.
  registry reg;
  reg.get_histogram("cold", {{"g", "1"}}, {0.1, 1.0});
  auto samples = parse_prometheus(render_prometheus(reg));
  ASSERT_TRUE(samples.has_value());
  const auto* binf = find_sample(*samples, "cold_bucket",
                                 {{"g", "1"}, {"le", "+Inf"}});
  const auto* count = find_sample(*samples, "cold_count", {{"g", "1"}});
  const auto* sum = find_sample(*samples, "cold_sum", {{"g", "1"}});
  ASSERT_NE(binf, nullptr);
  ASSERT_NE(count, nullptr);
  ASSERT_NE(sum, nullptr);
  EXPECT_DOUBLE_EQ(binf->value, 0.0);
  EXPECT_DOUBLE_EQ(count->value, 0.0);
  EXPECT_DOUBLE_EQ(sum->value, 0.0);
}

TEST(Exposition, HistogramReparseReconstructsDistribution) {
  // Full re-parse round-trip: from the text alone, the non-cumulative
  // per-bucket counts must be recoverable and match the live histogram.
  registry reg;
  histogram& h = reg.get_histogram("rt", {}, {0.1, 1.0, 10.0});
  h.observe(0.05);
  h.observe(0.5);
  h.observe(0.6);
  h.observe(5.0);
  h.observe(100.0);
  auto samples = parse_prometheus(render_prometheus(reg));
  ASSERT_TRUE(samples.has_value());

  const char* les[] = {"0.1", "1", "10", "+Inf"};
  double cumulative_prev = 0.0;
  const std::uint64_t expect_per_bucket[] = {1, 2, 1, 1};
  for (std::size_t i = 0; i < 4; ++i) {
    const auto* b = find_sample(*samples, "rt_bucket", {{"le", les[i]}});
    ASSERT_NE(b, nullptr) << "le=" << les[i];
    const double non_cumulative = b->value - cumulative_prev;
    EXPECT_DOUBLE_EQ(non_cumulative,
                     static_cast<double>(expect_per_bucket[i]))
        << "le=" << les[i];
    EXPECT_EQ(h.bucket_count(i), expect_per_bucket[i]);
    cumulative_prev = b->value;
  }
  const auto* sum = find_sample(*samples, "rt_sum", {});
  ASSERT_NE(sum, nullptr);
  EXPECT_NEAR(sum->value, h.sum(), 1e-9);
}

TEST(Exposition, BackslashHeavyLabelSurvivesRoundTrip) {
  // Pathological escaping: trailing backslash, backslash before quote,
  // consecutive newlines — every case the escaper and parser must agree on.
  const std::string hostile = "\\\\x\\\"\n\n\\";
  registry reg;
  reg.get_counter("esc_total", {{"v", hostile}}).inc(2);
  auto samples = parse_prometheus(render_prometheus(reg));
  ASSERT_TRUE(samples.has_value());
  const auto* s = find_sample(*samples, "esc_total", {{"v", hostile}});
  ASSERT_NE(s, nullptr);
  EXPECT_DOUBLE_EQ(s->value, 2.0);
}

TEST(Exposition, MergedRegistriesRenderOneFamilyHeader) {
  // Per-node registries merged into one page: one # TYPE line per family,
  // every registry's series beneath it, and the page re-parses.
  registry a;
  registry b;
  a.get_counter("omega_msgs_total", {{"node", "0"}}).inc(3);
  b.get_counter("omega_msgs_total", {{"node", "1"}}).inc(5);
  b.get_gauge("omega_only_b").set(1.5);
  const registry* regs[] = {&a, &b, nullptr};  // nulls are skipped
  const std::string text =
      render_prometheus(std::span<const registry* const>(regs));

  std::size_t headers = 0;
  for (std::size_t pos = 0;
       (pos = text.find("# TYPE omega_msgs_total", pos)) != std::string::npos;
       ++pos) {
    ++headers;
  }
  EXPECT_EQ(headers, 1u);
  auto samples = parse_prometheus(text);
  ASSERT_TRUE(samples.has_value());
  const auto* s0 = find_sample(*samples, "omega_msgs_total", {{"node", "0"}});
  const auto* s1 = find_sample(*samples, "omega_msgs_total", {{"node", "1"}});
  const auto* only_b = find_sample(*samples, "omega_only_b", {});
  ASSERT_NE(s0, nullptr);
  ASSERT_NE(s1, nullptr);
  ASSERT_NE(only_b, nullptr);
  EXPECT_DOUBLE_EQ(s0->value, 3.0);
  EXPECT_DOUBLE_EQ(s1->value, 5.0);
}

TEST(Exposition, JsonlEmitsCauseAndWallOnlyWhenPresent) {
  trace_event plain;
  plain.kind = event_kind::leader_change;
  plain.at = time_origin + sec(1);
  plain.node = node_id{1};

  trace_event stamped = plain;
  stamped.cause.origin = node_id{4};
  stamped.cause.inc = 2;
  stamped.cause.seq = 17;
  stamped.wall_us = 987654321;

  std::vector<trace_event> events{plain, stamped};
  const std::string out = render_jsonl(events);
  const std::size_t eol = out.find('\n');
  const std::string line1 = out.substr(0, eol);
  const std::string line2 = out.substr(eol + 1);

  // The unstamped event renders byte-identically to the pre-causal format.
  EXPECT_EQ(line1.find("cause"), std::string::npos);
  EXPECT_EQ(line1.find("wall_us"), std::string::npos);
  EXPECT_NE(line2.find("\"cause\":{\"node\":4,\"inc\":2,\"seq\":17}"),
            std::string::npos);
  EXPECT_NE(line2.find("\"wall_us\":987654321"), std::string::npos);
}

}  // namespace
}  // namespace omega::obs
