#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace omega::obs {
namespace {

TEST(MetricsRegistry, CounterStartsAtZeroAndAccumulates) {
  registry reg;
  counter& c = reg.get_counter("omega_test_total");
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(4);
  EXPECT_EQ(c.value(), 5u);
}

TEST(MetricsRegistry, SameNameAndLabelsReturnsSameCell) {
  registry reg;
  counter& a = reg.get_counter("omega_msgs_total", {{"kind", "alive"}});
  counter& b = reg.get_counter("omega_msgs_total", {{"kind", "alive"}});
  EXPECT_EQ(&a, &b);
  counter& other = reg.get_counter("omega_msgs_total", {{"kind", "accuse"}});
  EXPECT_NE(&a, &other);
  EXPECT_EQ(reg.series_count(), 2u);
}

TEST(MetricsRegistry, LabelOrderIsNormalized) {
  registry reg;
  counter& a = reg.get_counter("m", {{"a", "1"}, {"b", "2"}});
  counter& b = reg.get_counter("m", {{"b", "2"}, {"a", "1"}});
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(reg.series_count(), 1u);
}

TEST(MetricsRegistry, AdvanceToNeverMovesBackwards) {
  registry reg;
  counter& c = reg.get_counter("restarts");
  c.advance_to(10);
  EXPECT_EQ(c.value(), 10u);
  // A component restarting from zero re-publishes smaller snapshots; the
  // exported series must stay monotone.
  c.advance_to(3);
  EXPECT_EQ(c.value(), 10u);
  c.advance_to(12);
  EXPECT_EQ(c.value(), 12u);
}

TEST(MetricsRegistry, GaugeMovesBothWays) {
  registry reg;
  gauge& g = reg.get_gauge("omega_eta_seconds");
  g.set(2.5);
  g.add(-1.0);
  EXPECT_DOUBLE_EQ(g.value(), 1.5);
}

TEST(MetricsRegistry, HistogramBucketsAreInclusiveUpperBounds) {
  registry reg;
  histogram& h = reg.get_histogram("latency", {}, {0.1, 1.0, 10.0});
  h.observe(0.1);   // lands in le=0.1 (inclusive)
  h.observe(0.5);   // le=1.0
  h.observe(100.0); // +Inf
  EXPECT_EQ(h.bucket_count(0), 1u);
  EXPECT_EQ(h.bucket_count(1), 1u);
  EXPECT_EQ(h.bucket_count(2), 0u);
  EXPECT_EQ(h.bucket_count(3), 1u);  // +Inf
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.sum(), 100.6);
}

TEST(MetricsRegistry, HistogramBoundsSortedAndDeduped) {
  registry reg;
  histogram& h = reg.get_histogram("h", {}, {5.0, 1.0, 5.0});
  ASSERT_EQ(h.bounds().size(), 2u);
  EXPECT_DOUBLE_EQ(h.bounds()[0], 1.0);
  EXPECT_DOUBLE_EQ(h.bounds()[1], 5.0);
}

TEST(MetricsRegistry, TypeMismatchThrows) {
  registry reg;
  reg.get_counter("omega_thing");
  EXPECT_THROW(reg.get_gauge("omega_thing"), std::logic_error);
  EXPECT_THROW(reg.get_histogram("omega_thing", {}, {1.0}), std::logic_error);
}

TEST(MetricsRegistry, FamiliesIterateInNameOrder) {
  registry reg;
  reg.get_counter("zzz");
  reg.get_counter("aaa");
  reg.get_gauge("mmm");
  std::vector<std::string> names;
  for (const auto& [name, fam] : reg.families()) names.push_back(name);
  ASSERT_EQ(names.size(), 3u);
  EXPECT_EQ(names[0], "aaa");
  EXPECT_EQ(names[1], "mmm");
  EXPECT_EQ(names[2], "zzz");
}

}  // namespace
}  // namespace omega::obs
