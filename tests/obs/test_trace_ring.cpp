#include "obs/trace.hpp"

#include <gtest/gtest.h>

namespace omega::obs {
namespace {

trace_event ev_at(std::uint64_t i) {
  trace_event ev;
  ev.kind = event_kind::leader_change;
  ev.at = time_origin + sec(static_cast<std::int64_t>(i));
  ev.value = static_cast<double>(i);
  return ev;
}

TEST(TraceRing, RetainsEverythingBelowCapacity) {
  ring_recorder ring(8);
  for (std::uint64_t i = 0; i < 5; ++i) ring.record(ev_at(i));
  auto events = ring.events();
  ASSERT_EQ(events.size(), 5u);
  for (std::uint64_t i = 0; i < 5; ++i) {
    EXPECT_EQ(events[i].seq, i);
    EXPECT_DOUBLE_EQ(events[i].value, static_cast<double>(i));
  }
  EXPECT_EQ(ring.recorded(), 5u);
  EXPECT_EQ(ring.dropped(), 0u);
}

TEST(TraceRing, WraparoundKeepsNewestInSeqOrder) {
  ring_recorder ring(4);
  for (std::uint64_t i = 0; i < 11; ++i) ring.record(ev_at(i));
  auto events = ring.events();
  ASSERT_EQ(events.size(), 4u);
  // Oldest retained is 7; order must be strictly seq-ascending even though
  // the ring's physical layout wrapped mid-window.
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].seq, 7u + i);
    EXPECT_DOUBLE_EQ(events[i].value, static_cast<double>(7 + i));
  }
  EXPECT_EQ(ring.recorded(), 11u);
  EXPECT_EQ(ring.dropped(), 7u);
}

TEST(TraceRing, WraparoundExactlyAtCapacityBoundary) {
  ring_recorder ring(4);
  for (std::uint64_t i = 0; i < 8; ++i) ring.record(ev_at(i));
  auto events = ring.events();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events.front().seq, 4u);
  EXPECT_EQ(events.back().seq, 7u);
}

TEST(TraceRing, ClearResetsRetainedButSeqKeepsCounting) {
  ring_recorder ring(4);
  for (std::uint64_t i = 0; i < 3; ++i) ring.record(ev_at(i));
  ring.clear();
  EXPECT_TRUE(ring.events().empty());
  ring.record(ev_at(99));
  auto events = ring.events();
  ASSERT_EQ(events.size(), 1u);
  // Sequence numbers stay globally unique per recorder across clears.
  EXPECT_EQ(events[0].seq, 3u);
}

TEST(TraceRing, ZeroCapacityClampsToOne) {
  ring_recorder ring(0);
  EXPECT_EQ(ring.capacity(), 1u);
  ring.record(ev_at(0));
  ring.record(ev_at(1));
  auto events = ring.events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].seq, 1u);
}

TEST(TraceRing, NullRecorderSwallows) {
  null_recorder null;
  null.record(ev_at(0));  // must simply not crash
}

}  // namespace
}  // namespace omega::obs
