// Embedded telemetry HTTP server: request routing, published snapshots,
// on-demand handlers, error responses and lifecycle.
#include <gtest/gtest.h>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <string>

#include "obs/http_endpoint.hpp"

namespace omega::obs {
namespace {

/// One blocking HTTP exchange against 127.0.0.1:`port`; returns the full
/// response (headers + body), or "" on connect failure.
std::string http_get(std::uint16_t port, const std::string& request) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(fd);
    return "";
  }
  (void)!::send(fd, request.data(), request.size(), MSG_NOSIGNAL);
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

std::string get_path(std::uint16_t port, const std::string& path) {
  return http_get(port, "GET " + path + " HTTP/1.0\r\nHost: x\r\n\r\n");
}

TEST(HttpEndpoint, ServesPublishedSnapshot) {
  http_endpoint ep;
  ASSERT_TRUE(ep.start(0));  // ephemeral port
  ASSERT_GT(ep.port(), 0);
  ep.publish("/metrics", "omega_up 1\n",
             std::string(http_endpoint::metrics_content_type));

  const std::string resp = get_path(ep.port(), "/metrics");
  EXPECT_NE(resp.find("HTTP/1.0 200 OK"), std::string::npos);
  EXPECT_NE(resp.find("Content-Type: text/plain; version=0.0.4"),
            std::string::npos);
  EXPECT_NE(resp.find("Content-Length: 11"), std::string::npos);
  EXPECT_NE(resp.find("omega_up 1\n"), std::string::npos);
}

TEST(HttpEndpoint, RepublishReplacesSnapshot) {
  http_endpoint ep;
  ASSERT_TRUE(ep.start(0));
  ep.publish("/metrics", "v1\n", "text/plain");
  ep.publish("/metrics", "v2\n", "text/plain");
  EXPECT_NE(get_path(ep.port(), "/metrics").find("v2"), std::string::npos);
}

TEST(HttpEndpoint, QueryStringIgnoredAndUnknownPath404s) {
  http_endpoint ep;
  ASSERT_TRUE(ep.start(0));
  ep.publish("/metrics", "ok\n", "text/plain");
  EXPECT_NE(get_path(ep.port(), "/metrics?scrape=1").find("200 OK"),
            std::string::npos);
  EXPECT_NE(get_path(ep.port(), "/nope").find("404 Not Found"),
            std::string::npos);
}

TEST(HttpEndpoint, NonGetRejectedWith405) {
  http_endpoint ep;
  ASSERT_TRUE(ep.start(0));
  const std::string resp =
      http_get(ep.port(), "POST /metrics HTTP/1.0\r\n\r\n");
  EXPECT_NE(resp.find("405 Method Not Allowed"), std::string::npos);
}

TEST(HttpEndpoint, HandlerTakesPrecedenceAndFallsBack) {
  http_endpoint ep;
  ASSERT_TRUE(ep.start(0));
  ep.publish("/trace", "published\n", "application/x-ndjson");
  ep.set_handler([](std::string_view path) -> std::optional<std::string> {
    if (path == "/metrics") return "rendered on demand\n";
    return std::nullopt;  // fall through to snapshots
  });
  EXPECT_NE(get_path(ep.port(), "/metrics").find("rendered on demand"),
            std::string::npos);
  EXPECT_NE(get_path(ep.port(), "/trace").find("published"),
            std::string::npos);
}

TEST(HttpEndpoint, StopIsIdempotentAndRestartable) {
  http_endpoint ep;
  ASSERT_TRUE(ep.start(0));
  const std::uint16_t old_port = ep.port();
  ep.stop();
  ep.stop();
  EXPECT_FALSE(ep.running());
  EXPECT_EQ(ep.port(), 0);
  EXPECT_TRUE(get_path(old_port, "/metrics").empty());

  ASSERT_TRUE(ep.start(0));
  ep.publish("/metrics", "back\n", "text/plain");
  EXPECT_NE(get_path(ep.port(), "/metrics").find("back"), std::string::npos);
}

TEST(HttpEndpoint, DoubleStartRefused) {
  http_endpoint ep;
  ASSERT_TRUE(ep.start(0));
  EXPECT_FALSE(ep.start(0));
}

}  // namespace
}  // namespace omega::obs
