// Causal DAG reconstruction from per-node rings: cause resolution,
// dangling detection, victim-evidence anchoring, windowed linkage on both
// timelines, and the wall-clock skew check.
#include <gtest/gtest.h>

#include "obs/causal_graph.hpp"

namespace omega::obs {
namespace {

struct event_builder {
  trace_event ev;
  event_builder(node_id node, std::uint64_t seq, event_kind kind,
                std::int64_t at_ms) {
    ev.node = node;
    ev.seq = seq;
    ev.kind = kind;
    ev.at = time_origin + msec(at_ms);
    ev.group = group_id{1};
  }
  event_builder& caused_by(node_id origin, std::uint64_t seq) {
    ev.cause.origin = origin;
    ev.cause.inc = 1;
    ev.cause.seq = seq;
    return *this;
  }
  event_builder& peer(node_id p) {
    ev.peer = p;
    return *this;
  }
  event_builder& subject(process_id p) {
    ev.subject = p;
    return *this;
  }
  event_builder& wall(std::int64_t us) {
    ev.wall_us = us;
    return *this;
  }
  operator trace_event() const { return ev; }  // NOLINT
};

const node_id kVictim{0};
const process_id kVictimPid{0};

// A minimal two-survivor failover: node 1 suspects the victim, accuses it,
// node 2 receives the accusation (cross-node edge), both see leadership
// move. Every non-root event names its provoking event.
std::vector<trace_event> failover_events() {
  return {
      event_builder(node_id{1}, 10, event_kind::suspicion_raised, 1000)
          .peer(kVictim),
      event_builder(node_id{1}, 11, event_kind::accusation_sent, 1001)
          .peer(kVictim)
          .subject(kVictimPid)
          .caused_by(node_id{1}, 10),
      event_builder(node_id{2}, 20, event_kind::accusation_received, 1002)
          .subject(kVictimPid)
          .caused_by(node_id{1}, 11),
      event_builder(node_id{1}, 12, event_kind::leader_change, 1005)
          .subject(process_id{1})
          .caused_by(node_id{1}, 11),
      event_builder(node_id{2}, 21, event_kind::leader_change, 1006)
          .subject(process_id{1})
          .caused_by(node_id{2}, 20),
  };
}

TEST(CausalGraph, ResolvesCrossNodeEdges) {
  const auto events = failover_events();
  const auto g = causal_graph::build(events);
  ASSERT_EQ(g.size(), 5u);
  EXPECT_EQ(g.cause_index(0), -1);  // root
  EXPECT_EQ(g.cause_index(1), 0);
  EXPECT_EQ(g.cause_index(2), 1);  // node 2's event points into node 1's ring
  EXPECT_EQ(g.cause_index(3), 1);
  EXPECT_EQ(g.cause_index(4), 2);
  for (std::size_t i = 0; i < g.size(); ++i) EXPECT_FALSE(g.is_dangling(i));
}

TEST(CausalGraph, FullLinkageOnACleanFailover) {
  const auto g = causal_graph::build(failover_events());
  const auto r = g.linkage(kVictim, kVictimPid, time_origin + msec(500),
                           time_origin + msec(2000));
  EXPECT_EQ(r.considered, 5u);
  EXPECT_EQ(r.linked, 5u);
  // The suspicion, the sent accusation and the received accusation.
  EXPECT_EQ(r.evidence_roots, 3u);
  EXPECT_EQ(r.dangling, 0u);
  EXPECT_DOUBLE_EQ(r.fraction(), 1.0);
}

TEST(CausalGraph, UnrelatedRootIsNotLinked) {
  auto events = failover_events();
  // A spontaneous suspicion of a *live* peer: potent, in-window, but not
  // explained by the victim's failure.
  events.push_back(event_builder(node_id{2}, 22, event_kind::suspicion_raised,
                                 1500)
                       .peer(node_id{1}));
  const auto g = causal_graph::build(events);
  const auto r = g.linkage(kVictim, kVictimPid, time_origin + msec(500),
                           time_origin + msec(2000));
  EXPECT_EQ(r.considered, 6u);
  EXPECT_EQ(r.linked, 5u);
}

TEST(CausalGraph, WraparoundGapCountsAsDangling) {
  auto events = failover_events();
  events.erase(events.begin());  // the root suspicion fell off the ring
  const auto g = causal_graph::build(events);
  const auto r = g.linkage(kVictim, kVictimPid, time_origin + msec(500),
                           time_origin + msec(2000));
  EXPECT_EQ(r.dangling, 1u);  // the accusation's cause no longer resolves
  // The accusation is itself victim evidence, so the chain re-anchors there
  // and downstream events stay linked.
  EXPECT_EQ(r.linked, 4u);
}

TEST(CausalGraph, SelfReferenceIsDanglingNotACycle) {
  std::vector<trace_event> events = {
      event_builder(node_id{1}, 10, event_kind::leader_change, 1000)
          .caused_by(node_id{1}, 10),
  };
  const auto g = causal_graph::build(events);
  EXPECT_EQ(g.cause_index(0), -1);
  EXPECT_TRUE(g.is_dangling(0));
}

TEST(CausalGraph, CycleOfStampsDoesNotHangOrAnchor) {
  // Corrupted rings could name each other in a loop; anchoring must
  // terminate and refuse to link through the cycle.
  std::vector<trace_event> events = {
      event_builder(node_id{1}, 10, event_kind::leader_change, 1000)
          .caused_by(node_id{2}, 20),
      event_builder(node_id{2}, 20, event_kind::leader_change, 1001)
          .caused_by(node_id{1}, 10),
  };
  const auto g = causal_graph::build(events);
  const auto r = g.linkage(kVictim, kVictimPid, time_origin,
                           time_origin + msec(2000));
  EXPECT_EQ(r.considered, 2u);
  EXPECT_EQ(r.linked, 0u);
}

TEST(CausalGraph, InertKindsExcludedFromLinkage) {
  auto events = failover_events();
  events.push_back(event_builder(node_id{1}, 13, event_kind::retune, 1500));
  const auto g = causal_graph::build(events);
  const auto r = g.linkage(kVictim, kVictimPid, time_origin + msec(500),
                           time_origin + msec(2000));
  EXPECT_EQ(r.considered, 5u);  // the retune is bookkeeping, not failover
  EXPECT_DOUBLE_EQ(r.fraction(), 1.0);
}

TEST(CausalGraph, WallTimelineWindowsOnWallStamps) {
  auto events = failover_events();
  for (std::size_t i = 0; i < events.size(); ++i) {
    events[i].wall_us = 5'000'000 + static_cast<std::int64_t>(i) * 1000;
  }
  // One event without a wall stamp: excluded from wall-timeline queries.
  events.push_back(event_builder(node_id{2}, 22, event_kind::leader_change,
                                 1500)
                       .subject(process_id{1})
                       .caused_by(node_id{2}, 20));
  const auto g = causal_graph::build(events);
  const auto r =
      g.linkage(kVictim, kVictimPid, time_point{usec(4'000'000)},
                time_point{usec(6'000'000)}, causal_graph::timeline::wall);
  EXPECT_EQ(r.considered, 5u);
  EXPECT_EQ(r.linked, 5u);
}

TEST(CausalGraph, WallSkewViolationDetected) {
  auto events = failover_events();
  for (std::size_t i = 0; i < events.size(); ++i) {
    events[i].wall_us = 5'000'000 + static_cast<std::int64_t>(i) * 1000;
  }
  EXPECT_EQ(causal_graph::build(events).wall_skew_violations(), 0u);
  events[4].wall_us = 1;  // child "before" its parent: impossible
  EXPECT_EQ(causal_graph::build(events).wall_skew_violations(), 1u);
}

TEST(CausalGraph, AttributeOutagePhases) {
  const auto g = causal_graph::build(failover_events());
  const auto b = g.attribute_outage(kVictim, kVictimPid,
                                    time_origin + msec(500),
                                    time_origin + msec(2000), process_id{1});
  EXPECT_TRUE(b.saw_detection);
  EXPECT_TRUE(b.saw_engagement);
  EXPECT_NEAR(b.detection_s, 0.5, 1e-9);  // kill at 500ms, suspicion at 1s
  EXPECT_GT(b.attributed_fraction(), 0.99);
}

TEST(CausalGraph, AttributeOutagePrefersLinkedEngagement) {
  auto events = failover_events();
  // An *unlinked* leader_change before the real, causally-certified one:
  // the windowed heuristic would pick it; the DAG must not.
  events.push_back(event_builder(node_id{2}, 19, event_kind::leader_change,
                                 1003)
                       .subject(process_id{1}));
  const auto g = causal_graph::build(events);
  const auto b = g.attribute_outage(kVictim, kVictimPid,
                                    time_origin + msec(500),
                                    time_origin + msec(2000), process_id{1});
  ASSERT_TRUE(b.saw_engagement);
  // Engagement = first *linked* engagement at 1005 ms, not 1003 ms:
  // dissemination spans detection (1000 ms) -> 1005 ms.
  EXPECT_NEAR(b.dissemination_s, 0.005, 1e-9);
}

TEST(CausalGraph, EmptyWindowYieldsNoBudget) {
  const auto g = causal_graph::build(failover_events());
  const auto b = g.attribute_outage(kVictim, kVictimPid,
                                    time_origin + msec(3000),
                                    time_origin + msec(4000));
  EXPECT_FALSE(b.saw_detection);
  EXPECT_DOUBLE_EQ(b.attributed_fraction(), 0.0);
}

}  // namespace
}  // namespace omega::obs
