// The sink's causal plane: activation scopes, cause inheritance, potent
// chaining, dual timestamps and the derived path-latency histograms.
#include <gtest/gtest.h>

#include "obs/metrics.hpp"
#include "obs/sink.hpp"
#include "obs/trace.hpp"

namespace omega::obs {
namespace {

trace_event make_event(event_kind kind) {
  trace_event ev;
  ev.kind = kind;
  ev.at = time_origin + sec(1);
  ev.group = group_id{1};
  return ev;
}

TEST(CausalSink, DatagramScopeAttributesAndChains) {
  registry reg;
  ring_recorder ring(16);
  sink s(&reg, &ring, node_id{1});
  s.enable_causal(3);

  cause_id inbound;
  inbound.origin = node_id{9};
  inbound.inc = 2;
  inbound.seq = 40;
  {
    sink::activation scope(&s, inbound);
    // First event inherits the wire stamp...
    s.record(make_event(event_kind::suspicion_raised));
    // ...then, being potent, becomes the cause of the next one.
    s.record(make_event(event_kind::accusation_sent));
    // The outbound stamp the service would read now names the local event.
    EXPECT_EQ(s.current_cause().origin, node_id{1});
    EXPECT_EQ(s.current_cause().inc, 3u);
  }
  // The scope restores the idle state: no cause leaks past it.
  EXPECT_FALSE(s.current_cause().valid());

  const auto events = ring.events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].cause, inbound);
  EXPECT_EQ(events[1].cause.origin, node_id{1});
  EXPECT_EQ(events[1].cause.seq, events[0].seq);
}

TEST(CausalSink, RootScopeStartsUncausedChain) {
  registry reg;
  ring_recorder ring(16);
  sink s(&reg, &ring, node_id{1});
  s.enable_causal(1);
  {
    sink::activation scope(&s);  // timer entry point: spontaneous root
    s.record(make_event(event_kind::suspicion_raised));
    s.record(make_event(event_kind::accusation_sent));
  }
  const auto events = ring.events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_FALSE(events[0].cause.valid());  // root has no cause
  EXPECT_EQ(events[1].cause.origin, node_id{1});  // but starts a chain
  EXPECT_EQ(events[1].cause.seq, events[0].seq);
}

TEST(CausalSink, NestedRootScopeKeepsOuterCause) {
  // An FD transition fired from within datagram handling opens its own
  // root-flavoured scope; it must NOT clobber the inbound attribution.
  registry reg;
  ring_recorder ring(16);
  sink s(&reg, &ring, node_id{1});
  s.enable_causal(1);
  cause_id inbound;
  inbound.origin = node_id{5};
  inbound.seq = 7;
  {
    sink::activation outer(&s, inbound);
    sink::activation inner(&s);  // no-op: already inside an activation
    s.record(make_event(event_kind::suspicion_raised));
  }
  ASSERT_EQ(ring.events().size(), 1u);
  EXPECT_EQ(ring.events()[0].cause, inbound);
}

TEST(CausalSink, InertKindsDoNotAdvanceTheChain) {
  registry reg;
  ring_recorder ring(16);
  sink s(&reg, &ring, node_id{1});
  s.enable_causal(1);
  cause_id inbound;
  inbound.origin = node_id{5};
  inbound.seq = 7;
  {
    sink::activation scope(&s, inbound);
    s.record(make_event(event_kind::retune));  // bookkeeping, not causality
    s.record(make_event(event_kind::leader_change));
  }
  const auto events = ring.events();
  ASSERT_EQ(events.size(), 2u);
  // The leader_change is attributed to the datagram, not to the retune.
  EXPECT_EQ(events[1].cause, inbound);
}

TEST(CausalSink, RecordingOutsideAnyScopeNeverChains) {
  registry reg;
  ring_recorder ring(16);
  sink s(&reg, &ring, node_id{1});
  s.enable_causal(1);
  s.record(make_event(event_kind::leader_change));
  EXPECT_FALSE(s.current_cause().valid());
  EXPECT_FALSE(ring.events()[0].cause.valid());
}

TEST(CausalSink, CausalOffRecordsNoCauses) {
  registry reg;
  ring_recorder ring(16);
  sink s(&reg, &ring, node_id{1});
  cause_id inbound;
  inbound.origin = node_id{5};
  inbound.seq = 7;
  {
    sink::activation scope(&s, inbound);  // no-op with causal off
    s.record(make_event(event_kind::suspicion_raised));
  }
  EXPECT_FALSE(ring.events()[0].cause.valid());
}

TEST(CausalSink, WallClockStampsWhenInstalled) {
  registry reg;
  ring_recorder ring(16);
  sink s(&reg, &ring, node_id{1});
  s.record(make_event(event_kind::leader_change));
  EXPECT_EQ(ring.events()[0].wall_us, -1);  // sim runs: no wall clock

  s.set_wall_clock(+[]() -> std::int64_t { return 123456; });
  s.record(make_event(event_kind::leader_change));
  EXPECT_EQ(ring.events()[1].wall_us, 123456);
}

TEST(CausalSink, SuspicionToAccusationHistogram) {
  registry reg;
  ring_recorder ring(16);
  sink s(&reg, &ring, node_id{2});

  trace_event susp = make_event(event_kind::suspicion_raised);
  susp.peer = node_id{7};
  susp.at = time_origin + msec(1000);
  s.record(susp);

  trace_event acc = make_event(event_kind::accusation_sent);
  acc.peer = node_id{7};
  acc.at = time_origin + msec(1003);
  s.record(acc);

  auto& h = reg.get_histogram("omega_suspicion_to_accusation_seconds",
                              {{"node", "2"}}, {});
  EXPECT_EQ(h.count(), 1u);
  EXPECT_NEAR(h.sum(), 0.003, 1e-9);

  // A cleared suspicion must not produce a sample for a later accusation.
  susp.at = time_origin + msec(2000);
  s.record(susp);
  trace_event clear = make_event(event_kind::suspicion_cleared);
  clear.peer = node_id{7};
  s.record(clear);
  s.record(acc);
  EXPECT_EQ(h.count(), 1u);
}

TEST(CausalSink, ElectionRoundHistogramOpensOnEngagement) {
  registry reg;
  ring_recorder ring(16);
  sink s(&reg, &ring, node_id{2});

  trace_event enter = make_event(event_kind::competition_enter);
  enter.at = time_origin + msec(1000);
  s.record(enter);
  trace_event change = make_event(event_kind::leader_change);
  change.at = time_origin + msec(1250);
  s.record(change);

  auto& h = reg.get_histogram("omega_election_round_seconds",
                              {{"node", "2"}, {"tier", "-1"}}, {});
  EXPECT_EQ(h.count(), 1u);
  EXPECT_NEAR(h.sum(), 0.25, 1e-9);

  // A leader_change without a preceding engagement (steady-state refinement)
  // does not close a round.
  s.record(change);
  EXPECT_EQ(h.count(), 1u);
}

}  // namespace
}  // namespace omega::obs
