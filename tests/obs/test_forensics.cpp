#include "obs/forensics.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace omega::obs {
namespace {

constexpr node_id kVictimNode{2};
constexpr process_id kVictimPid{2};
constexpr node_id kSurvivor{5};
constexpr process_id kSurvivorPid{5};

trace_event make(event_kind kind, duration at_offset, node_id node) {
  trace_event ev;
  ev.kind = kind;
  ev.at = time_origin + at_offset;
  ev.node = node;
  ev.group = group_id{1};
  return ev;
}

TEST(Forensics, FullyEvidencedOutageTilesTheWindow) {
  std::vector<trace_event> events;
  // Victim crashes at t=10s; first suspicion at 12s; survivor enters the
  // competition at 13.5s; converged leader_change at 15s.
  auto suspicion = make(event_kind::suspicion_raised, sec(12), kSurvivor);
  suspicion.peer = kVictimNode;
  events.push_back(suspicion);

  auto engage = make(event_kind::competition_enter, msec(13500), kSurvivor);
  engage.subject = kSurvivorPid;
  events.push_back(engage);

  auto lead = make(event_kind::leader_change, sec(15), kSurvivor);
  lead.subject = kSurvivorPid;
  events.push_back(lead);

  auto b = attribute_outage(events, kVictimNode, kVictimPid,
                            time_origin + sec(10), time_origin + sec(15));
  EXPECT_TRUE(b.saw_detection);
  EXPECT_TRUE(b.saw_engagement);
  EXPECT_NEAR(b.detection_s, 2.0, 1e-9);
  EXPECT_NEAR(b.dissemination_s, 1.5, 1e-9);
  EXPECT_NEAR(b.election_s, 1.5, 1e-9);
  EXPECT_NEAR(b.attributed_s(), b.window_s(), 1e-9);
  EXPECT_NEAR(b.attributed_fraction(), 1.0, 1e-9);
}

TEST(Forensics, EarliestSuspicionAcrossNodesWins) {
  std::vector<trace_event> events;
  for (int node = 3; node <= 6; ++node) {
    auto s = make(event_kind::suspicion_raised, sec(11) + msec(100 * node),
                  node_id{static_cast<std::uint32_t>(node)});
    s.peer = kVictimNode;
    events.push_back(s);
  }
  auto b = attribute_outage(events, kVictimNode, kVictimPid,
                            time_origin + sec(10), time_origin + sec(20));
  EXPECT_TRUE(b.saw_detection);
  EXPECT_NEAR(b.detection_s, 1.3, 1e-9);  // node 3's suspicion at 11.3s
}

TEST(Forensics, IgnoresSuspicionsOfOtherNodes) {
  std::vector<trace_event> events;
  auto s = make(event_kind::suspicion_raised, sec(12), kSurvivor);
  s.peer = node_id{9};  // somebody else entirely
  events.push_back(s);
  auto b = attribute_outage(events, kVictimNode, kVictimPid,
                            time_origin + sec(10), time_origin + sec(20));
  EXPECT_FALSE(b.saw_detection);
  EXPECT_DOUBLE_EQ(b.attributed_s(), 0.0);
}

TEST(Forensics, VictimOwnEventsAreNotEngagement) {
  std::vector<trace_event> events;
  auto s = make(event_kind::suspicion_raised, sec(12), kSurvivor);
  s.peer = kVictimNode;
  events.push_back(s);
  // The victim's stale recorder claims it re-entered the race — must not
  // count as a survivor engaging.
  auto stale = make(event_kind::competition_enter, sec(13), kVictimNode);
  stale.subject = kVictimPid;
  events.push_back(stale);
  auto b = attribute_outage(events, kVictimNode, kVictimPid,
                            time_origin + sec(10), time_origin + sec(20));
  EXPECT_TRUE(b.saw_detection);
  EXPECT_FALSE(b.saw_engagement);
  // Only the detection phase is evidenced.
  EXPECT_NEAR(b.attributed_s(), 2.0, 1e-9);
}

TEST(Forensics, ResolvedLeaderRestrictsLeaderChangeEvidence) {
  std::vector<trace_event> events;
  auto s = make(event_kind::suspicion_raised, sec(11), kSurvivor);
  s.peer = kVictimNode;
  events.push_back(s);
  // A transient wrong pick at 12s, then the agreed leader at 14s.
  auto wrong = make(event_kind::leader_change, sec(12), node_id{7});
  wrong.subject = process_id{7};
  events.push_back(wrong);
  auto right = make(event_kind::leader_change, sec(14), kSurvivor);
  right.subject = kSurvivorPid;
  events.push_back(right);

  auto unrestricted = attribute_outage(events, kVictimNode, kVictimPid,
                                       time_origin + sec(10),
                                       time_origin + sec(15));
  EXPECT_NEAR(unrestricted.dissemination_s, 1.0, 1e-9);  // engaged at 12s

  auto restricted = attribute_outage(events, kVictimNode, kVictimPid,
                                     time_origin + sec(10),
                                     time_origin + sec(15), kSurvivorPid);
  EXPECT_NEAR(restricted.dissemination_s, 3.0, 1e-9);  // engaged at 14s
}

TEST(Forensics, EventsOutsideWindowAreIgnored) {
  std::vector<trace_event> events;
  auto before = make(event_kind::suspicion_raised, sec(9), kSurvivor);
  before.peer = kVictimNode;
  events.push_back(before);
  auto after = make(event_kind::suspicion_raised, sec(21), kSurvivor);
  after.peer = kVictimNode;
  events.push_back(after);
  auto b = attribute_outage(events, kVictimNode, kVictimPid,
                            time_origin + sec(10), time_origin + sec(20));
  EXPECT_FALSE(b.saw_detection);
}

TEST(Forensics, EvictionCountsAsDetection) {
  std::vector<trace_event> events;
  auto evict = make(event_kind::member_evicted, sec(13), kSurvivor);
  evict.subject = kVictimPid;
  events.push_back(evict);
  auto b = attribute_outage(events, kVictimNode, kVictimPid,
                            time_origin + sec(10), time_origin + sec(20));
  EXPECT_TRUE(b.saw_detection);
  EXPECT_NEAR(b.detection_s, 3.0, 1e-9);
}

TEST(Forensics, SummaryAggregates) {
  forensics_summary sum;
  outage_budget b;
  b.start = time_origin;
  b.end = time_origin + sec(4);
  b.detection_s = 2.0;
  b.dissemination_s = 1.0;
  b.election_s = 1.0;
  sum.add(b);
  b.detection_s = 4.0;
  b.dissemination_s = 0.0;
  b.election_s = 0.0;
  sum.add(b);
  EXPECT_EQ(sum.detection.count(), 2u);
  EXPECT_NEAR(sum.detection.mean(), 3.0, 1e-9);
  EXPECT_NEAR(sum.fraction.mean(), 1.0, 1e-9);
}

}  // namespace
}  // namespace omega::obs
