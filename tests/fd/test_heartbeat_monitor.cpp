#include "fd/heartbeat_monitor.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "sim/simulator.hpp"

namespace omega::fd {
namespace {

class MonitorTest : public ::testing::Test {
 protected:
  sim::simulator sim;
  std::vector<bool> transitions;

  std::unique_ptr<heartbeat_monitor> make(duration delta) {
    return std::make_unique<heartbeat_monitor>(
        sim, sim, delta, [this](bool trusted) { transitions.push_back(trusted); });
  }
};

TEST_F(MonitorTest, FirstHeartbeatEstablishesTrust) {
  auto m = make(msec(500));
  EXPECT_FALSE(m->trusted());
  m->on_heartbeat(sim.now(), msec(250));
  EXPECT_TRUE(m->trusted());
  ASSERT_EQ(transitions.size(), 1u);
  EXPECT_TRUE(transitions[0]);
}

TEST_F(MonitorTest, SuspectsAfterFreshnessExpires) {
  auto m = make(msec(500));
  m->on_heartbeat(sim.now(), msec(250));
  // Freshness: send + eta + delta = 750ms.
  sim.run_until(time_origin + msec(749));
  EXPECT_TRUE(m->trusted());
  sim.run_until(time_origin + msec(751));
  EXPECT_FALSE(m->trusted());
  ASSERT_EQ(transitions.size(), 2u);
  EXPECT_FALSE(transitions[1]);
}

TEST_F(MonitorTest, SteadyHeartbeatsNeverSuspect) {
  auto m = make(msec(500));
  for (int i = 0; i <= 40; ++i) {
    m->on_heartbeat(sim.now(), msec(250));
    sim.run_until(time_origin + msec(250) * (i + 1));
  }
  EXPECT_TRUE(m->trusted());
  EXPECT_EQ(transitions.size(), 1u);  // only the initial trust
}

TEST_F(MonitorTest, RecoversTrustOnLateHeartbeat) {
  auto m = make(msec(100));
  m->on_heartbeat(sim.now(), msec(100));
  sim.run_until(time_origin + msec(500));
  EXPECT_FALSE(m->trusted());
  m->on_heartbeat(sim.now(), msec(100));
  EXPECT_TRUE(m->trusted());
  ASSERT_EQ(transitions.size(), 3u);  // trust, suspect, trust
}

TEST_F(MonitorTest, StaleHeartbeatCannotRestoreTrust) {
  auto m = make(msec(100));
  m->on_heartbeat(sim.now(), msec(100));
  sim.run_until(time_origin + sec(10));
  EXPECT_FALSE(m->trusted());
  // A heartbeat that was sent long ago (freshness already passed) is noise.
  m->on_heartbeat(time_origin + msec(50), msec(100));
  EXPECT_FALSE(m->trusted());
}

TEST_F(MonitorTest, ReorderedHeartbeatsKeepLatestDeadline) {
  auto m = make(msec(200));
  m->on_heartbeat(time_origin, msec(100));  // deadline 300ms
  const time_point d1 = m->deadline();
  // An older heartbeat arrives late; deadline must not regress.
  m->on_heartbeat(time_origin - msec(50), msec(100));
  EXPECT_EQ(m->deadline(), d1);
}

TEST_F(MonitorTest, SenderRateChangePropagatesToDeadline) {
  auto m = make(msec(500));
  m->on_heartbeat(sim.now(), msec(250));
  EXPECT_EQ(m->deadline(), time_origin + msec(750));
  sim.run_until(time_origin + msec(100));
  m->on_heartbeat(sim.now(), msec(1000));  // sender slowed down
  EXPECT_EQ(m->deadline(), time_origin + msec(100) + msec(1500));
}

TEST_F(MonitorTest, DeltaUpdateAffectsSubsequentHeartbeats) {
  auto m = make(msec(500));
  m->on_heartbeat(sim.now(), msec(100));
  m->set_delta(msec(900));
  sim.run_until(time_origin + msec(50));
  m->on_heartbeat(sim.now(), msec(100));
  EXPECT_EQ(m->deadline(), time_origin + msec(50) + msec(1000));
}

TEST_F(MonitorTest, SuspectExactlyOncePerSilence) {
  auto m = make(msec(100));
  m->on_heartbeat(sim.now(), msec(100));
  sim.run_until(time_origin + sec(60));
  int suspects = 0;
  for (bool t : transitions) {
    if (!t) ++suspects;
  }
  EXPECT_EQ(suspects, 1);
}

TEST_F(MonitorTest, DestructionCancelsTimer) {
  auto m = make(msec(100));
  m->on_heartbeat(sim.now(), msec(100));
  m.reset();
  sim.run_until(time_origin + sec(10));  // must not crash / fire callbacks
  EXPECT_EQ(transitions.size(), 1u);
}

}  // namespace
}  // namespace omega::fd
