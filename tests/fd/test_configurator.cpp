#include "fd/configurator.hpp"

#include <gtest/gtest.h>

#include <tuple>

namespace omega::fd {
namespace {

link_estimate make_link(double loss, duration delay, std::size_t samples = 1000) {
  link_estimate est;
  est.loss_probability = loss;
  est.delay_mean = delay;
  est.delay_stddev = delay;  // exponential
  est.samples = samples;
  return est;
}

TEST(DelayTail, ExponentialBasics) {
  const auto link = make_link(0.0, msec(100));
  EXPECT_DOUBLE_EQ(delay_tail(link, delay_tail_model::exponential, 0.0), 1.0);
  EXPECT_NEAR(delay_tail(link, delay_tail_model::exponential, 0.1), 0.3679, 1e-3);
  EXPECT_LT(delay_tail(link, delay_tail_model::exponential, 1.0), 1e-4);
}

TEST(DelayTail, ChebyshevBasics) {
  const auto link = make_link(0.0, msec(100));
  // At or below the mean the bound is vacuous.
  EXPECT_DOUBLE_EQ(delay_tail(link, delay_tail_model::chebyshev, 0.05), 1.0);
  // One stddev above the mean: V/(V+V) = 1/2.
  EXPECT_NEAR(delay_tail(link, delay_tail_model::chebyshev, 0.2), 0.5, 1e-9);
  // Far above: decays quadratically.
  EXPECT_NEAR(delay_tail(link, delay_tail_model::chebyshev, 1.1), 0.01, 2e-3);
}

TEST(DelayTail, ParetoBasics) {
  const auto link = make_link(0.0, msec(100));
  // Moment fit with E = S = 100 ms: alpha = 1 + sqrt(2), x_m ~ 58.6 ms.
  // At or below the fitted scale the tail is certain.
  EXPECT_DOUBLE_EQ(delay_tail(link, delay_tail_model::pareto, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(delay_tail(link, delay_tail_model::pareto, 0.05), 1.0);
  // (x_m / x)^alpha at x = 1 s: (0.0586)^2.414 ~ 1.06e-3.
  EXPECT_NEAR(delay_tail(link, delay_tail_model::pareto, 1.0), 1.06e-3, 2e-4);
  // Monotone decreasing past the scale.
  EXPECT_GT(delay_tail(link, delay_tail_model::pareto, 0.2),
            delay_tail(link, delay_tail_model::pareto, 0.4));
}

TEST(DelayTail, ParetoHeavierThanExponentialFarOut) {
  // The defining property of the heavy tail: polynomial decay dominates
  // exponential decay far from the mean — exactly where freshness points
  // live on a WAN link with a tight detection bound.
  const auto link = make_link(0.0, msec(10));
  for (double x : {0.1, 0.2, 0.5, 1.0}) {  // 10x..100x the mean delay
    EXPECT_GT(delay_tail(link, delay_tail_model::pareto, x),
              delay_tail(link, delay_tail_model::exponential, x))
        << "x=" << x;
  }
}

TEST(MistakeProbability, ParetoMoreConservativeInTheFarTail) {
  // With no loss, q0 is a pure product of tail probabilities; at freshness
  // points tens of mean-delays out, the polynomial tail dominates and the
  // predicted mistake rate is (much) higher than the exponential model's.
  const auto link = make_link(0.0, msec(10));
  const double q_par =
      mistake_probability(link, delay_tail_model::pareto, 0.25, 0.75);
  const double q_exp =
      mistake_probability(link, delay_tail_model::exponential, 0.25, 0.75);
  EXPECT_GT(q_par, q_exp);
}

TEST(Configurator, ParetoFeasiblePointsSatisfyConstraints) {
  // Self-consistency of the heavy-tail solver: every point it claims
  // feasible holds both QoS constraints evaluated under the same model.
  configurator_options opts;
  opts.tail = delay_tail_model::pareto;
  const qos_spec qos = qos_spec::paper_default();
  for (double loss : {0.0, 0.01, 0.05}) {
    for (auto delay : {msec(1), msec(10), msec(50)}) {
      const auto link = make_link(loss, delay);
      const auto params = configure(qos, link, opts);
      EXPECT_EQ(params.eta + params.delta, qos.detection_time);
      if (!params.qos_feasible) continue;
      const double q0 =
          mistake_probability(link, delay_tail_model::pareto,
                              to_seconds(params.eta), to_seconds(params.delta));
      EXPECT_GE(to_seconds(params.eta) / q0, to_seconds(qos.mistake_recurrence))
          << "loss=" << loss << " delay=" << to_seconds(delay);
      EXPECT_GE(1.0 - q0 / (1.0 - loss), qos.query_accuracy);
    }
  }
}

TEST(MistakeProbability, DecreasesWithSmallerEta) {
  const auto link = make_link(0.1, msec(10));
  const double q_large = mistake_probability(link, delay_tail_model::exponential, 0.5, 0.5);
  const double q_small = mistake_probability(link, delay_tail_model::exponential, 0.1, 0.9);
  EXPECT_LT(q_small, q_large);
}

TEST(MistakeProbability, PerfectLinkNearZero) {
  const auto link = make_link(0.0, usec(25));
  const double q = mistake_probability(link, delay_tail_model::exponential, 0.5, 0.5);
  EXPECT_LT(q, 1e-12);
}

TEST(Configurator, ColdStartBeforeEnoughSamples) {
  const qos_spec qos = qos_spec::paper_default();
  const auto params = configure(qos, make_link(0.1, msec(10), /*samples=*/3));
  EXPECT_EQ(params.eta, qos.detection_time / 4);
  EXPECT_EQ(params.delta, qos.detection_time - qos.detection_time / 4);
  EXPECT_FALSE(params.qos_feasible);
}

TEST(Configurator, DetectionBudgetAlwaysRespected) {
  const qos_spec qos = qos_spec::paper_default();
  for (double loss : {0.001, 0.01, 0.1, 0.5}) {
    for (auto delay : {usec(25), msec(1), msec(10), msec(100)}) {
      const auto params = configure(qos, make_link(loss, delay));
      EXPECT_EQ(params.eta + params.delta, qos.detection_time)
          << "loss=" << loss << " delay=" << to_seconds(delay);
      EXPECT_GT(params.eta, duration{0});
    }
  }
}

TEST(Configurator, FeasibleOnPaperSettings) {
  // All five lossy-link settings of the paper admit a feasible operating
  // point under the default QoS (the paper's experiments ran there).
  const qos_spec qos = qos_spec::paper_default();
  const std::pair<duration, double> settings[] = {
      {usec(25), 0.5 / 256.0},  // LAN after the estimator floor
      {msec(10), 0.01},
      {msec(100), 0.01},
      {msec(10), 0.1},
      {msec(100), 0.1},
  };
  for (const auto& [delay, loss] : settings) {
    const auto params = configure(qos, make_link(loss, delay));
    EXPECT_TRUE(params.qos_feasible)
        << "(" << to_seconds(delay) << ", " << loss << ")";
  }
}

TEST(Configurator, WorseLinkMeansFasterHeartbeats) {
  const qos_spec qos = qos_spec::paper_default();
  const auto lan = configure(qos, make_link(0.5 / 256.0, usec(25)));
  const auto mid = configure(qos, make_link(0.01, msec(10)));
  const auto bad = configure(qos, make_link(0.1, msec(100)));
  EXPECT_GE(lan.eta, mid.eta);
  EXPECT_GT(mid.eta, bad.eta);
}

TEST(Configurator, PredictedRecurrenceMeetsRequirement) {
  const qos_spec qos = qos_spec::paper_default();
  const auto link = make_link(0.1, msec(100));
  const auto params = configure(qos, link);
  ASSERT_TRUE(params.qos_feasible);
  const double q0 = mistake_probability(link, delay_tail_model::exponential,
                                        to_seconds(params.eta),
                                        to_seconds(params.delta));
  const double recurrence = to_seconds(params.eta) / q0;
  EXPECT_GE(recurrence, to_seconds(qos.mistake_recurrence));
}

TEST(Configurator, EtaScalesWithDetectionTime) {
  // Figure 8: tightening T^U_D from 1s to 0.1s shrinks both eta and delta.
  qos_spec tight = qos_spec::paper_default();
  tight.detection_time = msec(100);
  const auto link = make_link(0.5 / 256.0, usec(25));
  const auto loose_params = configure(qos_spec::paper_default(), link);
  const auto tight_params = configure(tight, link);
  EXPECT_LT(tight_params.eta, loose_params.eta);
  EXPECT_LT(tight_params.delta, loose_params.delta);
  EXPECT_EQ(tight_params.eta + tight_params.delta, tight.detection_time);
}

TEST(Configurator, InfeasibleFallsBackToBestEffort) {
  // 90% loss with a 1-second budget and a 100-day recurrence bound cannot
  // be met; the configurator must still return a usable operating point.
  const qos_spec qos = qos_spec::paper_default();
  const auto params = configure(qos, make_link(0.9, msec(100)));
  EXPECT_FALSE(params.qos_feasible);
  EXPECT_GT(params.eta, duration{0});
  EXPECT_EQ(params.eta + params.delta, qos.detection_time);
}

TEST(Configurator, ChebyshevModeIsMoreConservative) {
  configurator_options exp_opts;
  configurator_options cheb_opts;
  cheb_opts.tail = delay_tail_model::chebyshev;
  const auto link = make_link(0.01, msec(10));
  const auto exp_params = configure(qos_spec::paper_default(), link, exp_opts);
  const auto cheb_params = configure(qos_spec::paper_default(), link, cheb_opts);
  // Distribution-free bounds demand at least as much redundancy.
  EXPECT_LE(cheb_params.eta, exp_params.eta);
}

// Property sweep: on every feasible grid point the configurator's chosen
// point satisfies both QoS constraints it claims to satisfy.
class ConfiguratorProperty
    : public ::testing::TestWithParam<std::tuple<double, int>> {};

TEST_P(ConfiguratorProperty, FeasiblePointsSatisfyConstraints) {
  const auto [loss, delay_ms] = GetParam();
  const qos_spec qos = qos_spec::paper_default();
  const auto link = make_link(loss, msec(delay_ms));
  const auto params = configure(qos, link);
  if (!params.qos_feasible) return;  // nothing claimed
  const double eta_s = to_seconds(params.eta);
  const double delta_s = to_seconds(params.delta);
  const double q0 =
      mistake_probability(link, delay_tail_model::exponential, eta_s, delta_s);
  EXPECT_GE(eta_s / q0, to_seconds(qos.mistake_recurrence));
  EXPECT_GE(1.0 - q0 / (1.0 - loss), qos.query_accuracy);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ConfiguratorProperty,
    ::testing::Combine(::testing::Values(0.001, 0.01, 0.05, 0.1, 0.3),
                       ::testing::Values(1, 10, 50, 100)));

}  // namespace
}  // namespace omega::fd
