// End-to-end QoS validation of the Chen et al. failure detector: a sender
// heartbeats through a simulated lossy link into an NFD-S monitor whose
// (eta, delta) come from the configurator, and we verify the three QoS
// guarantees the paper's service builds on (§3):
//
//   T^U_D  — a real crash is detected within the bound,
//   T^L_MR — mistakes are at least as rare as required (statistically),
//   P^L_A  — the monitor is right about the sender almost all the time.
//
// Swept over the paper's lossy-link grid with parameterized gtest.
#include <gtest/gtest.h>

#include <tuple>

#include "common/random.hpp"
#include "fd/configurator.hpp"
#include "fd/heartbeat_monitor.hpp"
#include "net/link_model.hpp"
#include "sim/simulator.hpp"

namespace omega::fd {
namespace {

using param = std::tuple<double, int>;  // (loss probability, delay ms)

class FdQosEndToEnd : public ::testing::TestWithParam<param> {};

struct qos_run {
  std::uint64_t mistakes = 0;       // trust -> suspect while sender alive
  double trusted_seconds = 0.0;     // time spent trusting while alive
  double alive_seconds = 0.0;       // total alive time observed
  double detection_seconds = -1.0;  // time from real crash to suspicion
};

/// Simulates `alive` seconds of heartbeating over the link, then a crash.
qos_run simulate(const qos_spec& qos, double loss, duration delay,
                 duration alive, std::uint64_t seed) {
  sim::simulator sim;
  net::link_model link({loss, delay}, rng{seed});

  // Configure from the true link characteristics (the estimator's job in
  // the full stack; here we isolate the monitor's QoS).
  link_estimate est;
  est.loss_probability = loss;
  est.delay_mean = delay;
  est.delay_stddev = delay;  // exponential: stddev == mean
  est.samples = 1000;
  const fd_params params = configure(qos, est, {});
  EXPECT_TRUE(params.qos_feasible);

  qos_run out;
  bool sender_alive = true;
  bool trusted = false;
  time_point last_edge = sim.now();
  time_point crash_at{};

  heartbeat_monitor monitor(sim, sim, params.delta, [&](bool now_trusted) {
    const time_point t = sim.now();
    if (trusted && sender_alive) {
      out.trusted_seconds += to_seconds(t - last_edge);
    }
    if (!now_trusted) {
      if (sender_alive) {
        ++out.mistakes;
      } else if (out.detection_seconds < 0) {
        out.detection_seconds = to_seconds(t - crash_at);
      }
    }
    trusted = now_trusted;
    last_edge = t;
  });

  // Sender loop: heartbeat every eta until the crash time.
  std::function<void()> tick = [&] {
    if (!sender_alive) return;
    const time_point send_time = sim.now();
    if (const auto transit = link.transit()) {
      sim.schedule_after(*transit, [&, send_time] {
        monitor.on_heartbeat(send_time, params.eta);
      });
    }
    sim.schedule_after(params.eta, tick);
  };
  sim.schedule_at(sim.now(), tick);

  sim.schedule_after(alive, [&] {
    sender_alive = true;  // close the books on the alive period first
    if (trusted) out.trusted_seconds += to_seconds(sim.now() - last_edge);
    out.alive_seconds = to_seconds(alive);
    sender_alive = false;
    crash_at = sim.now();
    last_edge = sim.now();
  });

  // Run past the crash long enough for detection.
  sim.run_until(time_origin + alive + qos.detection_time * 4);
  return out;
}

TEST_P(FdQosEndToEnd, MeetsConfiguredQoS) {
  const auto [loss, delay_ms] = GetParam();

  // A relaxed-but-checkable QoS: detect within 1 s, at most ~1 mistake per
  // simulated hour. (The paper's 100-day bound would need a 100-day
  // simulation to falsify; the *mechanism* is identical.)
  qos_spec qos;
  qos.detection_time = sec(1);
  qos.mistake_recurrence = sec(3600);
  qos.query_accuracy = 0.999;

  const double sim_hours = 6.0;
  qos_run total;
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    const auto run = simulate(qos, loss, msec(delay_ms),
                              from_seconds(sim_hours * 3600.0 / 3.0), seed);
    total.mistakes += run.mistakes;
    total.trusted_seconds += run.trusted_seconds;
    total.alive_seconds += run.alive_seconds;
    ASSERT_GE(run.detection_seconds, 0.0) << "crash was never detected";
    // T^U_D: detection within the bound (small scheduling epsilon).
    EXPECT_LE(run.detection_seconds, to_seconds(qos.detection_time) + 0.001);
  }

  // T^L_MR: with E[T_MR] >= 1 h, seeing > 18 mistakes in 6 h is
  // implausible (Poisson tail at 3x the mean is ~1e-4 per cell).
  EXPECT_LE(total.mistakes, 3.0 * sim_hours)
      << "mistake rate far above the configured bound";

  // P^L_A: fraction of alive time spent trusted. Allow a small calibration
  // margin below the target.
  const double pa = total.trusted_seconds / total.alive_seconds;
  EXPECT_GE(pa, 0.995) << "query accuracy collapsed";
}

std::string param_name(const ::testing::TestParamInfo<param>& info) {
  const auto [loss, delay_ms] = info.param;
  std::string l = loss == 0.0 ? "0" : (loss == 0.01 ? "1pc" : "10pc");
  return "loss" + l + "_delay" + std::to_string(delay_ms) + "ms";
}

INSTANTIATE_TEST_SUITE_P(
    LossyGrid, FdQosEndToEnd,
    ::testing::Values(param{0.0, 1}, param{0.01, 10}, param{0.01, 100},
                      param{0.1, 10}, param{0.1, 100}),
    param_name);

}  // namespace
}  // namespace omega::fd
