// Tests for the skew-tolerant (NFD-E-style) estimator mode: delay jitter
// estimated without comparable clocks.
#include <gtest/gtest.h>

#include "common/random.hpp"
#include "fd/link_quality_estimator.hpp"

namespace omega::fd {
namespace {

link_quality_estimator::options skewed_opts() {
  link_quality_estimator::options o;
  o.synchronized_clocks = false;
  return o;
}

TEST(SkewTolerantEstimator, HugeClockSkewDoesNotInflateDelay) {
  // Sender's clock is 1 hour ahead; true delay is a constant 5 ms.
  link_quality_estimator est(skewed_opts());
  const duration skew = sec(3600);
  time_point now = time_origin + sec(10);
  for (std::uint64_t s = 1; s <= 100; ++s) {
    est.on_heartbeat(s, now + skew, now + msec(5));
    now += msec(250);
  }
  const auto e = est.estimate();
  // Constant delay == zero jitter: mean re-bases to ~0 regardless of skew.
  EXPECT_LT(to_seconds(e.delay_mean), 0.001);
  EXPECT_LT(to_seconds(e.delay_stddev), 0.001);
}

TEST(SkewTolerantEstimator, NegativeDifferencesHandled) {
  // Receiver's clock behind the sender's: raw differences are negative.
  link_quality_estimator est(skewed_opts());
  time_point now = time_origin + sec(3600);
  for (std::uint64_t s = 1; s <= 100; ++s) {
    est.on_heartbeat(s, now + sec(100), now + msec(2));
    now += msec(250);
  }
  const auto e = est.estimate();
  EXPECT_GE(to_seconds(e.delay_mean), 0.0);
  EXPECT_LT(to_seconds(e.delay_mean), 0.001);
}

TEST(SkewTolerantEstimator, JitterEstimatedAboveFloor) {
  // Skew 10 min, delays alternating 1 ms / 21 ms: jitter mean should be
  // ~10 ms above the observed floor, stddev ~10 ms.
  link_quality_estimator est(skewed_opts());
  const duration skew = sec(600);
  time_point now = time_origin;
  for (std::uint64_t s = 1; s <= 200; ++s) {
    const duration d = (s % 2 == 0) ? msec(21) : msec(1);
    est.on_heartbeat(s, now + skew, now + d);
    now += msec(250);
  }
  const auto e = est.estimate();
  EXPECT_NEAR(to_seconds(e.delay_mean), 0.010, 0.002);
  EXPECT_NEAR(to_seconds(e.delay_stddev), 0.010, 0.003);
}

TEST(SkewTolerantEstimator, LossEstimationUnaffectedBySkew) {
  link_quality_estimator est(skewed_opts());
  const duration skew = sec(1234);
  time_point now = time_origin;
  rng r{5};
  std::uint64_t seq = 0;
  for (int i = 0; i < 1000; ++i) {
    ++seq;
    if (r.bernoulli(0.2)) continue;  // dropped
    est.on_heartbeat(seq, now + skew, now + msec(1));
    now += msec(100);
  }
  const auto e = est.estimate();
  EXPECT_NEAR(e.loss_probability, 0.2, 0.06);
}

TEST(SkewTolerantEstimator, MatchesSynchronizedModeUpToTheFloor) {
  // With zero skew and exponential delays, the skewed estimate should land
  // close to the synchronized one minus the minimum observed delay.
  link_quality_estimator sync_est;  // default: synchronized
  link_quality_estimator skew_est(skewed_opts());
  rng r{9};
  time_point now = time_origin;
  double min_delay = 1e9;
  for (std::uint64_t s = 1; s <= 256; ++s) {
    const double d = r.exponential(0.010);
    min_delay = std::min(min_delay, d);
    sync_est.on_heartbeat(s, now, now + from_seconds(d));
    skew_est.on_heartbeat(s, now, now + from_seconds(d));
    now += msec(250);
  }
  const auto sync_e = sync_est.estimate();
  const auto skew_e = skew_est.estimate();
  EXPECT_NEAR(to_seconds(skew_e.delay_mean),
              to_seconds(sync_e.delay_mean) - min_delay, 1e-6);
  EXPECT_NEAR(to_seconds(skew_e.delay_stddev), to_seconds(sync_e.delay_stddev),
              1e-6);
}

TEST(SkewTolerantEstimator, ResetClearsRawWindow) {
  link_quality_estimator est(skewed_opts());
  est.on_heartbeat(1, time_origin, time_origin + msec(5));
  ASSERT_GT(est.estimate().samples, 0u);
  est.reset();
  EXPECT_EQ(est.estimate().samples, 0u);
}

}  // namespace
}  // namespace omega::fd
