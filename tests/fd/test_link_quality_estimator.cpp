#include "fd/link_quality_estimator.hpp"

#include <gtest/gtest.h>

#include "common/random.hpp"

namespace omega::fd {
namespace {

// Feeds `n` heartbeats at interval eta with loss probability `loss` and
// exponential delay `delay_mean`, returning the resulting estimate.
link_estimate feed_stream(link_quality_estimator& lqe, int n, duration eta,
                          double loss, duration delay_mean, std::uint64_t seed) {
  rng r(seed);
  time_point send = time_origin;
  for (int seq = 1; seq <= n; ++seq) {
    send += eta;
    if (r.bernoulli(loss)) continue;  // lost: the monitor never sees it
    const duration d = r.exponential(delay_mean);
    lqe.on_heartbeat(static_cast<std::uint64_t>(seq), send, send + d);
  }
  return lqe.estimate();
}

TEST(LinkQualityEstimator, NoSamplesYieldsDefaults) {
  link_quality_estimator lqe;
  const link_estimate est = lqe.estimate();
  EXPECT_EQ(est.samples, 0u);
  EXPECT_GT(est.loss_probability, 0.0);  // conservative default
}

TEST(LinkQualityEstimator, EstimatesDelayMean) {
  link_quality_estimator lqe;
  const auto est = feed_stream(lqe, 2000, msec(100), 0.0, msec(10), 1);
  EXPECT_NEAR(to_seconds(est.delay_mean), 0.010, 0.002);
  // Exponential: stddev equals mean.
  EXPECT_NEAR(to_seconds(est.delay_stddev), 0.010, 0.003);
}

TEST(LinkQualityEstimator, EstimatesLossProbability) {
  link_quality_estimator lqe;
  const auto est = feed_stream(lqe, 5000, msec(100), 0.1, msec(1), 2);
  EXPECT_NEAR(est.loss_probability, 0.1, 0.03);
}

TEST(LinkQualityEstimator, CleanLinkHitsLossFloor) {
  link_quality_estimator::options opts;
  link_quality_estimator lqe(opts);
  const auto est = feed_stream(lqe, 5000, msec(100), 0.0, usec(25), 3);
  EXPECT_DOUBLE_EQ(est.loss_probability, opts.loss_floor);
}

TEST(LinkQualityEstimator, HeavyLossEstimated) {
  link_quality_estimator lqe;
  const auto est = feed_stream(lqe, 20000, msec(10), 0.5, msec(1), 4);
  EXPECT_NEAR(est.loss_probability, 0.5, 0.06);
}

TEST(LinkQualityEstimator, AdaptsWhenLinkDegrades) {
  link_quality_estimator lqe;
  feed_stream(lqe, 3000, msec(100), 0.0, msec(1), 5);
  const double clean = lqe.estimate().loss_probability;
  // Continue the same stream but now lossy (sequence numbers keep rising).
  rng r(6);
  time_point send = time_origin + sec(300);
  for (int seq = 3001; seq <= 8000; ++seq) {
    send += msec(100);
    if (r.bernoulli(0.1)) continue;
    lqe.on_heartbeat(static_cast<std::uint64_t>(seq), send, send + msec(1));
  }
  const double degraded = lqe.estimate().loss_probability;
  EXPECT_GT(degraded, clean * 5);
}

TEST(LinkQualityEstimator, ResetForgetsEverything) {
  link_quality_estimator lqe;
  feed_stream(lqe, 1000, msec(100), 0.3, msec(5), 7);
  lqe.reset();
  EXPECT_EQ(lqe.estimate().samples, 0u);
  EXPECT_EQ(lqe.heartbeats_seen(), 0u);
}

TEST(LinkQualityEstimator, ReorderedHeartbeatsTolerated) {
  link_quality_estimator lqe;
  // Deliver seq 2 before seq 1, repeatedly: span math must not underflow.
  time_point t = time_origin;
  for (std::uint64_t base = 1; base <= 600; base += 2) {
    t += msec(100);
    lqe.on_heartbeat(base + 1, t, t + msec(2));
    lqe.on_heartbeat(base, t, t + msec(3));
  }
  const auto est = lqe.estimate();
  EXPECT_LT(est.loss_probability, 0.05);  // nothing was actually lost
}

TEST(LinkQualityEstimator, ClockSkewClampedToZeroDelay) {
  link_quality_estimator lqe;
  for (std::uint64_t seq = 1; seq <= 64; ++seq) {
    const time_point send = time_origin + sec(1) * seq;
    lqe.on_heartbeat(seq, send, send - usec(50));  // "arrived before sent"
  }
  EXPECT_GE(to_seconds(lqe.estimate().delay_mean), 0.0);
}

TEST(LinkQualityEstimator, SampleCountTracksWindow) {
  link_quality_estimator::options opts;
  opts.delay_window = 100;
  link_quality_estimator lqe(opts);
  feed_stream(lqe, 500, msec(10), 0.0, msec(1), 8);
  EXPECT_EQ(lqe.estimate().samples, 100u);
  EXPECT_EQ(lqe.heartbeats_seen(), 500u);
}

}  // namespace
}  // namespace omega::fd
