// fd_manager tests: the shared, per-workstation failure-detector module —
// lazy monitor creation, trust transitions, incarnation handling, rate
// renegotiation with hysteresis, and adaptation to degrading links.
#include <gtest/gtest.h>

#include <vector>

#include "fd/fd_manager.hpp"
#include "sim/simulator.hpp"

namespace omega::fd {
namespace {

const group_id g1{1};
const group_id g2{2};
constexpr node_id remote{7};

struct transition {
  group_id group;
  node_id node;
  bool trusted;
};

struct fd_fixture {
  sim::simulator sim;
  fd_manager fd;
  std::vector<transition> transitions;
  std::vector<std::pair<node_id, duration>> rate_requests;

  fd_fixture() : fd(sim, sim) {
    fd.set_transition_handler([this](group_id g, node_id n, bool t) {
      transitions.push_back({g, n, t});
    });
    fd.set_rate_request_fn([this](node_id n, duration eta) {
      rate_requests.emplace_back(n, eta);
    });
    fd.start();
  }

  proto::alive_msg alive_from(node_id from, incarnation inc, std::uint64_t seq,
                              duration eta,
                              std::initializer_list<group_id> groups = {g1}) {
    proto::alive_msg msg;
    msg.from = from;
    msg.inc = inc;
    msg.seq = seq;
    msg.send_time = sim.now();
    msg.eta = eta;
    for (group_id g : groups) {
      proto::group_payload p;
      p.group = g;
      p.pid = process_id{from.value()};
      p.candidate = true;
      p.competing = true;
      msg.groups.push_back(p);
    }
    return msg;
  }

  proto::alive_msg alive(incarnation inc, std::uint64_t seq, duration eta,
                         std::initializer_list<group_id> groups = {g1}) {
    return alive_from(remote, inc, seq, eta, groups);
  }
};

TEST(FdManager, FirstAliveCreatesMonitorAndTrusts) {
  fd_fixture f;
  f.fd.add_group(g1, qos_spec::paper_default());
  EXPECT_FALSE(f.fd.is_trusted(g1, remote));
  f.fd.on_alive(f.alive(1, 1, msec(250)), f.sim.now());
  EXPECT_TRUE(f.fd.is_trusted(g1, remote));
  ASSERT_FALSE(f.transitions.empty());
  EXPECT_TRUE(f.transitions.back().trusted);
  EXPECT_EQ(f.fd.monitor_count(), 1u);
}

TEST(FdManager, AliveForUnknownGroupIgnored) {
  fd_fixture f;
  f.fd.add_group(g1, qos_spec::paper_default());
  f.fd.on_alive(f.alive(1, 1, msec(250), {g2}), f.sim.now());
  EXPECT_EQ(f.fd.monitor_count(), 0u);
  EXPECT_FALSE(f.fd.is_trusted(g2, remote));
}

TEST(FdManager, SilenceTriggersSuspicion) {
  fd_fixture f;
  f.fd.add_group(g1, qos_spec::paper_default());  // T^U_D = 1 s
  f.fd.on_alive(f.alive(1, 1, msec(250)), f.sim.now());
  ASSERT_TRUE(f.fd.is_trusted(g1, remote));
  f.sim.run_until(f.sim.now() + sec(3));
  EXPECT_FALSE(f.fd.is_trusted(g1, remote));
  ASSERT_GE(f.transitions.size(), 2u);
  EXPECT_FALSE(f.transitions.back().trusted);
}

TEST(FdManager, SteadyHeartbeatsKeepTrust) {
  fd_fixture f;
  f.fd.add_group(g1, qos_spec::paper_default());
  std::uint64_t seq = 0;
  for (int i = 0; i < 40; ++i) {
    f.fd.on_alive(f.alive(1, ++seq, msec(250)), f.sim.now());
    f.sim.run_until(f.sim.now() + msec(250));
  }
  EXPECT_TRUE(f.fd.is_trusted(g1, remote));
  // Exactly one transition: the initial trust.
  EXPECT_EQ(f.transitions.size(), 1u);
}

TEST(FdManager, RecoveredHeartbeatRestoresTrust) {
  fd_fixture f;
  f.fd.add_group(g1, qos_spec::paper_default());
  f.fd.on_alive(f.alive(1, 1, msec(250)), f.sim.now());
  f.sim.run_until(f.sim.now() + sec(3));
  ASSERT_FALSE(f.fd.is_trusted(g1, remote));
  f.fd.on_alive(f.alive(1, 2, msec(250)), f.sim.now());
  EXPECT_TRUE(f.fd.is_trusted(g1, remote));
}

TEST(FdManager, NewIncarnationResetsLinkHistory) {
  fd_fixture f;
  f.fd.add_group(g1, qos_spec::paper_default());
  std::uint64_t seq = 0;
  for (int i = 0; i < 300; ++i) {
    f.fd.on_alive(f.alive(1, ++seq, msec(250)), f.sim.now());
    f.sim.run_until(f.sim.now() + msec(250));
  }
  const auto before = f.fd.link_quality(remote);
  EXPECT_GT(before.samples, 100u);
  // The remote restarts: its heartbeat stream starts over.
  f.fd.on_alive(f.alive(2, 1, msec(250)), f.sim.now());
  const auto after = f.fd.link_quality(remote);
  EXPECT_LT(after.samples, before.samples)
      << "stale stream statistics must not survive a reincarnation";
}

TEST(FdManager, StaleIncarnationAliveDiscarded) {
  fd_fixture f;
  f.fd.add_group(g1, qos_spec::paper_default());
  f.fd.on_alive(f.alive(3, 1, msec(250)), f.sim.now());
  ASSERT_TRUE(f.fd.is_trusted(g1, remote));
  f.sim.run_until(f.sim.now() + sec(3));
  ASSERT_FALSE(f.fd.is_trusted(g1, remote));
  // A ghost heartbeat from the previous life must not restore trust.
  f.fd.on_alive(f.alive(2, 99, msec(250)), f.sim.now());
  EXPECT_FALSE(f.fd.is_trusted(g1, remote));
}

TEST(FdManager, PerGroupMonitorsShareOneEstimator) {
  fd_fixture f;
  f.fd.add_group(g1, qos_spec::paper_default());
  f.fd.add_group(g2, qos_spec::paper_default());
  f.fd.on_alive(f.alive(1, 1, msec(250), {g1, g2}), f.sim.now());
  EXPECT_TRUE(f.fd.is_trusted(g1, remote));
  EXPECT_TRUE(f.fd.is_trusted(g2, remote));
  EXPECT_EQ(f.fd.monitor_count(), 2u);
}

TEST(FdManager, TighterGroupDrivesRateRequest) {
  fd_fixture f;
  f.fd.add_group(g1, qos_spec::paper_default());  // 1 s bound
  std::uint64_t seq = 0;
  for (int i = 0; i < 40; ++i) {
    f.fd.on_alive(f.alive(1, ++seq, msec(250)), f.sim.now());
    f.sim.run_until(f.sim.now() + msec(250));
  }
  const duration eta_loose = f.fd.requested_eta(remote);
  EXPECT_GT(eta_loose, duration{0});

  qos_spec tight;
  tight.detection_time = msec(200);
  f.fd.add_group(g2, tight);
  f.fd.on_alive(f.alive(1, ++seq, msec(250), {g1, g2}), f.sim.now());
  f.sim.run_until(f.sim.now() + sec(3));
  const duration eta_tight = f.fd.requested_eta(remote);
  EXPECT_LT(eta_tight, eta_loose)
      << "the tighter group must pull the requested rate down";
  ASSERT_FALSE(f.rate_requests.empty());
  EXPECT_EQ(f.rate_requests.back().first, remote);
}

TEST(FdManager, RateHysteresisSuppressesTinyChanges) {
  fd_fixture f;
  f.fd.add_group(g1, qos_spec::paper_default());
  std::uint64_t seq = 0;
  // Settle into a steady operating point.
  for (int i = 0; i < 80; ++i) {
    f.fd.on_alive(f.alive(1, ++seq, msec(250)), f.sim.now());
    f.sim.run_until(f.sim.now() + msec(250));
  }
  const auto sent_before = f.rate_requests.size();
  for (int i = 0; i < 40; ++i) {
    f.fd.on_alive(f.alive(1, ++seq, msec(250)), f.sim.now());
    f.sim.run_until(f.sim.now() + msec(250));
  }
  // Stable link, stable QoS: only periodic refreshes (<= 1 per rate_refresh
  // window), not one per reconfiguration tick.
  EXPECT_LE(f.rate_requests.size() - sent_before, 2u);
}

TEST(FdManager, DropForgetsGroupMonitor) {
  fd_fixture f;
  f.fd.add_group(g1, qos_spec::paper_default());
  f.fd.add_group(g2, qos_spec::paper_default());
  f.fd.on_alive(f.alive(1, 1, msec(250), {g1, g2}), f.sim.now());
  f.fd.drop(g1, remote);
  EXPECT_FALSE(f.fd.is_trusted(g1, remote));
  EXPECT_TRUE(f.fd.is_trusted(g2, remote));
  f.fd.drop_node(remote);
  EXPECT_FALSE(f.fd.is_trusted(g2, remote));
  EXPECT_EQ(f.fd.monitor_count(), 0u);
}

TEST(FdManager, RemoveGroupDropsItsMonitors) {
  fd_fixture f;
  f.fd.add_group(g1, qos_spec::paper_default());
  f.fd.on_alive(f.alive(1, 1, msec(250)), f.sim.now());
  ASSERT_EQ(f.fd.monitor_count(), 1u);
  f.fd.remove_group(g1);
  EXPECT_EQ(f.fd.monitor_count(), 0u);
  EXPECT_FALSE(f.fd.is_trusted(g1, remote));
}

TEST(FdManager, PerRemoteOverrideRefinesGroupDefault) {
  fd_fixture f;
  f.fd.add_group(g1, qos_spec::paper_default());
  const node_id r2{8};
  f.fd.on_alive(f.alive(1, 1, msec(250)), f.sim.now());
  f.fd.on_alive(f.alive_from(r2, 1, 1, msec(250)), f.sim.now());

  const fd_params group_default{msec(250), msec(750), true};
  const fd_params refined{msec(100), msec(150), true};
  f.fd.set_params_override(g1, group_default);
  f.fd.set_params_override(g1, remote, refined);
  EXPECT_EQ(f.fd.current_params(g1, remote), refined);
  EXPECT_EQ(f.fd.current_params(g1, r2), group_default);

  // Updating the group default must not stomp the per-remote refinement.
  const fd_params new_default{msec(200), msec(800), true};
  f.fd.set_params_override(g1, new_default);
  EXPECT_EQ(f.fd.current_params(g1, remote), refined);
  EXPECT_EQ(f.fd.current_params(g1, r2), new_default);
  ASSERT_TRUE(f.fd.params_override(g1).has_value());
  EXPECT_EQ(*f.fd.params_override(g1), new_default);
  ASSERT_TRUE(f.fd.params_override(g1, remote).has_value());
  EXPECT_EQ(*f.fd.params_override(g1, remote), refined);

  // Clearing the refinement falls back to the group default layer.
  f.fd.clear_params_override(g1, remote);
  EXPECT_EQ(f.fd.current_params(g1, remote), new_default);
}

TEST(FdManager, PerRemoteOverrideDrivesPerRemoteRates) {
  fd_fixture f;
  f.fd.add_group(g1, qos_spec::paper_default());
  const node_id r2{8};
  std::uint64_t seq = 0;
  for (int i = 0; i < 8; ++i) {
    f.fd.on_alive(f.alive(1, ++seq, msec(250)), f.sim.now());
    f.fd.on_alive(f.alive_from(r2, 1, ++seq, msec(250)), f.sim.now());
    f.sim.run_until(f.sim.now() + msec(250));
  }
  // Only the first remote's link gets the fast refinement.
  f.fd.set_params_override(g1, fd_params{msec(400), msec(600), true});
  f.fd.set_params_override(g1, remote, fd_params{msec(100), msec(200), true});
  f.sim.run_until(f.sim.now() + sec(3));  // a few reconfiguration passes
  EXPECT_EQ(f.fd.requested_eta(remote), msec(100));
  EXPECT_EQ(f.fd.requested_eta(r2), msec(400))
      << "the group default must rule remotes without a refinement";
}

TEST(FdManager, RequestedRateMinCombinesAcrossGroupsPerRemote) {
  fd_fixture f;
  f.fd.add_group(g1, qos_spec::paper_default());
  f.fd.add_group(g2, qos_spec::paper_default());
  std::uint64_t seq = 0;
  for (int i = 0; i < 8; ++i) {
    f.fd.on_alive(f.alive(1, ++seq, msec(250), {g1, g2}), f.sim.now());
    f.sim.run_until(f.sim.now() + msec(250));
  }
  // g1 pins this link fast, g2 slow: the remote must be asked for the min.
  f.fd.set_params_override(g1, remote, fd_params{msec(120), msec(300), true});
  f.fd.set_params_override(g2, remote, fd_params{msec(450), msec(550), true});
  f.sim.run_until(f.sim.now() + sec(3));
  EXPECT_EQ(f.fd.requested_eta(remote), msec(120));
}

TEST(FdManager, DropRenegotiatesRateImmediately) {
  fd_fixture f;
  f.fd.add_group(g1, qos_spec::paper_default());  // 1 s bound
  qos_spec tight;
  tight.detection_time = msec(200);
  f.fd.add_group(g2, tight);
  std::uint64_t seq = 0;
  for (int i = 0; i < 60; ++i) {
    f.fd.on_alive(f.alive(1, ++seq, msec(50), {g1, g2}), f.sim.now());
    f.sim.run_until(f.sim.now() + msec(50));
  }
  const duration pinned = f.fd.requested_eta(remote);
  ASSERT_GT(pinned, duration{0});
  const auto sent_before = f.rate_requests.size();

  // The member leaves the tight group: the relaxed min-combined rate must
  // go out immediately, not at the next periodic refresh (20 s away).
  f.fd.drop(g2, remote);
  const duration relaxed = f.fd.requested_eta(remote);
  EXPECT_GT(relaxed, pinned)
      << "dropping the tightest group must relax the requested rate";
  ASSERT_GT(f.rate_requests.size(), sent_before);
  EXPECT_EQ(f.rate_requests.back().first, remote);
  EXPECT_EQ(f.rate_requests.back().second, relaxed);

  // And the relaxation must survive subsequent reconfiguration passes:
  // g2 is still registered locally (other remotes may be members), but it
  // no longer monitors *this* remote, so its eta must stay out of the
  // min-combine.
  for (int i = 0; i < 10; ++i) {
    f.fd.on_alive(f.alive(1, ++seq, msec(50), {g1}), f.sim.now());
    f.sim.run_until(f.sim.now() + msec(500));
  }
  EXPECT_EQ(f.fd.requested_eta(remote), relaxed)
      << "the dropped group's rate must not be re-pinned by the next pass";
}

TEST(FdManager, DropNodeClearsPerRemoteRefinements) {
  fd_fixture f;
  f.fd.add_group(g1, qos_spec::paper_default());
  f.fd.on_alive(f.alive(1, 1, msec(250)), f.sim.now());
  f.fd.set_params_override(g1, remote, fd_params{msec(100), msec(200), true});
  ASSERT_TRUE(f.fd.params_override(g1, remote).has_value());
  f.fd.drop_node(remote);
  EXPECT_FALSE(f.fd.params_override(g1, remote).has_value())
      << "a gone node's refinement must not apply to its reincarnation";
}

TEST(FdManager, ParamsAdaptWhenLinkDegrades) {
  fd_fixture f;
  fd_manager::options opts;
  f.fd.add_group(g1, qos_spec::paper_default());
  std::uint64_t seq = 0;
  // Clean link first: heartbeats arrive instantly.
  for (int i = 0; i < 200; ++i) {
    f.fd.on_alive(f.alive(1, ++seq, msec(250)), f.sim.now());
    f.sim.run_until(f.sim.now() + msec(250));
  }
  const auto clean = f.fd.current_params(g1, remote);
  // Degrade: half the heartbeats vanish (sequence gaps).
  for (int i = 0; i < 400; ++i) {
    seq += 2;  // every other heartbeat lost
    f.fd.on_alive(f.alive(1, seq, msec(250)), f.sim.now());
    f.sim.run_until(f.sim.now() + msec(250));
  }
  const auto lossy = f.fd.current_params(g1, remote);
  EXPECT_LT(lossy.eta, clean.eta)
      << "heavy loss must force faster heartbeats to hold the QoS";
}

}  // namespace
}  // namespace omega::fd
