#include "fd/rate_controller.hpp"

#include <gtest/gtest.h>

namespace omega::fd {
namespace {

TEST(RateController, DefaultWithoutRequests) {
  rate_controller rc(msec(250));
  EXPECT_EQ(rc.effective_eta(time_origin), msec(250));
}

TEST(RateController, FastestRequestWins) {
  rate_controller rc(msec(250));
  rc.on_request(node_id{1}, msec(200), time_origin);
  rc.on_request(node_id{2}, msec(100), time_origin);
  rc.on_request(node_id{3}, msec(400), time_origin);
  EXPECT_EQ(rc.effective_eta(time_origin), msec(100));
}

TEST(RateController, SlowRequestsRelaxBelowDefault) {
  // Requests drive the rate in both directions: when every live monitor
  // asked for a slower stream, the sender is allowed to deliver it (the
  // monitors' freshness adapts through the eta carried in each ALIVE).
  rate_controller rc(msec(250));
  rc.on_request(node_id{1}, sec(5), time_origin);
  EXPECT_EQ(rc.effective_eta(time_origin), sec(5));
  // A second, faster monitor pulls the min-combine back down.
  rc.on_request(node_id{2}, msec(400), time_origin);
  EXPECT_EQ(rc.effective_eta(time_origin), msec(400));
}

TEST(RateController, DefaultAppliesOnlyWithNoOutstandingRequests) {
  rate_controller rc(msec(250), sec(60));
  EXPECT_EQ(rc.effective_eta(time_origin), msec(250));
  rc.on_request(node_id{1}, sec(1), time_origin);
  EXPECT_EQ(rc.effective_eta(time_origin + sec(30)), sec(1));
  // Once the only request expires, the cold-start default rules again.
  EXPECT_EQ(rc.effective_eta(time_origin + sec(61)), msec(250));
}

TEST(RateController, MixedExpiryMinCombinesSurvivors) {
  rate_controller rc(msec(250), sec(60));
  rc.on_request(node_id{1}, msec(50), time_origin);             // expires at 60
  rc.on_request(node_id{2}, msec(500), time_origin + sec(30));  // expires at 90
  EXPECT_EQ(rc.effective_eta(time_origin + sec(40)), msec(50));
  // The fast requester aged out; the surviving slow one now defines the rate.
  EXPECT_EQ(rc.effective_eta(time_origin + sec(70)), msec(500));
  EXPECT_EQ(rc.effective_eta(time_origin + sec(95)), msec(250));
}

TEST(RateController, RequestsExpire) {
  rate_controller rc(msec(250), sec(60));
  rc.on_request(node_id{1}, msec(50), time_origin);
  EXPECT_EQ(rc.effective_eta(time_origin + sec(59)), msec(50));
  EXPECT_EQ(rc.effective_eta(time_origin + sec(61)), msec(250));
}

TEST(RateController, RenewalExtendsExpiry) {
  rate_controller rc(msec(250), sec(60));
  rc.on_request(node_id{1}, msec(50), time_origin);
  rc.on_request(node_id{1}, msec(50), time_origin + sec(50));
  EXPECT_EQ(rc.effective_eta(time_origin + sec(100)), msec(50));
}

TEST(RateController, LatestRequestPerNodeWins) {
  rate_controller rc(msec(250));
  rc.on_request(node_id{1}, msec(50), time_origin);
  rc.on_request(node_id{1}, msec(150), time_origin + sec(1));
  EXPECT_EQ(rc.effective_eta(time_origin + sec(2)), msec(150));
  EXPECT_EQ(rc.outstanding_requests(), 1u);
}

TEST(RateController, ForgetDropsNode) {
  rate_controller rc(msec(250));
  rc.on_request(node_id{1}, msec(50), time_origin);
  rc.forget(node_id{1});
  EXPECT_EQ(rc.effective_eta(time_origin), msec(250));
}

TEST(RateController, MalformedRequestIgnored) {
  rate_controller rc(msec(250));
  rc.on_request(node_id{1}, duration{0}, time_origin);
  rc.on_request(node_id{2}, duration{-5}, time_origin);
  EXPECT_EQ(rc.effective_eta(time_origin), msec(250));
  EXPECT_EQ(rc.outstanding_requests(), 0u);
}

TEST(RateController, SetDefaultEta) {
  rate_controller rc(msec(250));
  rc.set_default_eta(msec(125));
  EXPECT_EQ(rc.effective_eta(time_origin), msec(125));
}

}  // namespace
}  // namespace omega::fd
