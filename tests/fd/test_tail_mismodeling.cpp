// Tail mis-modeling (ISSUE 10 satellite): the online tail-shape verdict in
// the link quality estimator must tell an exponential delay tail from a
// Pareto one, and the `auto_tail` configurator switch must turn that
// verdict into a different — safer — operating point. The failure mode
// being pinned: modeling a heavy Pareto tail as exponential makes the
// predicted Pr(D > x) collapse far too fast, so the configurator certifies
// an (eta, delta) point whose *actual* mistake probability blows through
// the QoS; auto_tail closes exactly that gap.
#include <gtest/gtest.h>

#include "common/random.hpp"
#include "fd/configurator.hpp"
#include "fd/link_quality_estimator.hpp"
#include "net/link_model.hpp"

namespace omega::fd {
namespace {

/// Feeds `n` delivered heartbeats whose delay is drawn by `draw`.
template <typename Draw>
link_estimate feed(link_quality_estimator& lqe, int n, Draw&& draw) {
  time_point send = time_origin;
  for (int seq = 1; seq <= n; ++seq) {
    send += msec(100);
    lqe.on_heartbeat(static_cast<std::uint64_t>(seq), send, send + draw());
  }
  return lqe.estimate();
}

TEST(TailMismodeling, ExponentialStreamKeepsExponentialVerdict) {
  link_quality_estimator lqe;
  rng r(7);
  const auto est = feed(lqe, 2000, [&] { return r.exponential(msec(10)); });
  EXPECT_EQ(est.tail, delay_tail_model::exponential);
}

TEST(TailMismodeling, ParetoStreamFlipsTheVerdict) {
  // alpha = 2.5: a classic WAN-ish heavy tail — finite mean and variance,
  // divergent fourth moment, so the window's excess kurtosis runs far past
  // any exponential's (6) as samples accumulate.
  link_quality_estimator lqe;
  rng r(7);
  const auto est = feed(lqe, 2000, [&] { return r.pareto(msec(10), 2.5); });
  EXPECT_EQ(est.tail, delay_tail_model::pareto);
}

TEST(TailMismodeling, HeavyTailedLinkProfileFlipsTheVerdict) {
  // End-to-end over the simulator's own WAN model: delays drawn by a
  // `link_model` on `link_profile::heavy_tailed` (not hand-rolled draws)
  // must flip the verdict, while the LAN profile keeps it exponential.
  net::link_model wan(net::link_profile::heavy_tailed(msec(10), 0.0, 2.5),
                      rng(11));
  net::link_model lan(net::link_profile::lan(), rng(12));
  link_quality_estimator wan_lqe;
  link_quality_estimator lan_lqe;
  const auto wan_est = feed(wan_lqe, 2000, [&] { return *wan.transit(); });
  const auto lan_est = feed(lan_lqe, 2000, [&] { return *lan.transit(); });
  EXPECT_EQ(wan_est.tail, delay_tail_model::pareto);
  EXPECT_EQ(lan_est.tail, delay_tail_model::exponential);
}

TEST(TailMismodeling, VerdictNeedsEnoughSamples) {
  // Below tail_min_samples the kurtosis is noise: no verdict flip.
  link_quality_estimator lqe;
  rng r(7);
  const auto est = feed(lqe, 32, [&] { return r.pareto(msec(10), 2.5); });
  EXPECT_EQ(est.tail, delay_tail_model::exponential);
}

TEST(TailMismodeling, ResetForgetsTheVerdict) {
  link_quality_estimator lqe;
  rng r(7);
  feed(lqe, 2000, [&] { return r.pareto(msec(10), 2.5); });
  lqe.reset();
  EXPECT_EQ(lqe.estimate().tail, delay_tail_model::exponential);
}

TEST(TailMismodeling, AutoTailPicksASaferOperatingPoint) {
  // Build the estimate a Pareto link would produce, then configure twice:
  // once mis-modeled (static exponential tail) and once with auto_tail
  // honoring the verdict. The honest model must not certify feasibility
  // the mis-model only pretends to have, and at the mis-modeled operating
  // point the *Pareto* mistake probability must exceed what the
  // exponential model predicted — the quantitative mis-modeling gap.
  link_quality_estimator lqe;
  rng r(7);
  const link_estimate est =
      feed(lqe, 4000, [&] { return r.pareto(msec(20), 2.5); });
  ASSERT_EQ(est.tail, delay_tail_model::pareto);

  qos_spec qos;  // paper default: detect in 1 s, rare mistakes
  configurator_options mis;  // static exponential assumption
  configurator_options honest;
  honest.auto_tail = true;
  EXPECT_EQ(effective_tail(est, mis), delay_tail_model::exponential);
  EXPECT_EQ(effective_tail(est, honest), delay_tail_model::pareto);

  const fd_params p_mis = configure(qos, est, mis);
  const double eta = to_seconds(p_mis.eta);
  const double delta = to_seconds(p_mis.delta);
  const double q0_pretended =
      mistake_probability(est, delay_tail_model::exponential, eta, delta);
  const double q0_actual =
      mistake_probability(est, delay_tail_model::pareto, eta, delta);
  EXPECT_GT(q0_actual, q0_pretended)
      << "the heavy tail must make the certified point worse than promised";

  // The honest configuration reacts: either it must flag the QoS as
  // infeasible under the heavy tail, or its chosen point must actually
  // satisfy the constraints under the Pareto model.
  const fd_params p_honest = configure(qos, est, honest);
  if (p_honest.qos_feasible) {
    EXPECT_TRUE(qos_constraints_hold(qos, est, delay_tail_model::pareto,
                                     to_seconds(p_honest.eta),
                                     to_seconds(p_honest.delta)));
  }
  // And the mis-modeled point must NOT pass the honest constraint check if
  // the honest search had to move away from it.
  if (p_honest.qos_feasible &&
      (p_honest.eta != p_mis.eta || p_honest.delta != p_mis.delta)) {
    EXPECT_FALSE(qos_constraints_hold(qos, est, delay_tail_model::pareto, eta,
                                      delta))
        << "honest search moved, so the mis-modeled point should be invalid";
  }
}

}  // namespace
}  // namespace omega::fd
