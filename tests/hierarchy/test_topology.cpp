// Unit tests for the hierarchy topology descriptor: group-id allocation,
// region mapping, and shape validation.
#include "hierarchy/topology.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <unordered_set>

namespace omega::hierarchy {
namespace {

TEST(Topology, TwoTierShape) {
  const topology t = topology::two_tier(12, 3);
  EXPECT_EQ(t.nodes(), 12u);
  EXPECT_EQ(t.tiers(), 2u);
  EXPECT_EQ(t.top_tier(), 1u);
  EXPECT_EQ(t.groups_in_tier(0), 3u);
  EXPECT_EQ(t.groups_in_tier(1), 1u);
}

TEST(Topology, ContiguousBalancedRegions) {
  const topology t = topology::two_tier(12, 3);
  for (std::uint32_t i = 0; i < 12; ++i) {
    EXPECT_EQ(t.region_of(node_id{i}), i / 4u);
  }
  EXPECT_EQ(t.region_size(0), 4u);
  EXPECT_TRUE(t.same_region(node_id{0}, node_id{3}));
  EXPECT_FALSE(t.same_region(node_id{3}, node_id{4}));
}

TEST(Topology, NonDividingRosterStaysBalanced) {
  // 11 nodes over 3 regions: sizes may differ by at most one, every node
  // lands in exactly one region, and region_size must agree exactly with
  // counting region_of assignments (the two formulas must be inverses).
  const topology t = topology::two_tier(11, 3);
  std::size_t counted[3] = {0, 0, 0};
  for (std::uint32_t i = 0; i < 11; ++i) {
    const std::size_t r = t.region_of(node_id{i});
    ASSERT_LT(r, 3u);
    ++counted[r];
  }
  std::size_t total = 0;
  for (std::size_t r = 0; r < 3; ++r) {
    const std::size_t size = t.region_size(r);
    EXPECT_EQ(size, counted[r]) << "region " << r;
    EXPECT_GE(size, 3u);
    EXPECT_LE(size, 4u);
    total += size;
  }
  EXPECT_EQ(total, 11u);
}

TEST(Topology, GroupIdsAreUniqueAcrossTiers) {
  const topology t(24, {6, 2, 1});
  std::unordered_set<group_id> ids;
  for (std::size_t tier = 0; tier < t.tiers(); ++tier) {
    for (std::size_t g = 0; g < t.groups_in_tier(tier); ++g) {
      EXPECT_TRUE(ids.insert(t.tier_group(tier, g)).second);
    }
  }
  EXPECT_EQ(ids.size(), 9u);
  EXPECT_EQ(t.top_group(), t.tier_group(2, 0));
}

TEST(Topology, GroupChainCoarsensMonotonically) {
  const topology t(24, {6, 2, 1});
  for (std::uint32_t i = 0; i < 24; ++i) {
    const node_id n{i};
    EXPECT_EQ(t.group_at(n, 0), t.tier_group(0, t.region_of(n)));
    // Nodes in the same tier-0 region share every upper-tier group.
    EXPECT_EQ(t.group_index(n, 1), t.region_of(n) * 2 / 6);
    EXPECT_EQ(t.group_at(n, 2), t.top_group());
  }
}

TEST(Topology, RejectsMalformedShapes) {
  EXPECT_THROW(topology(0, {1}), std::invalid_argument);
  EXPECT_THROW(topology(4, {}), std::invalid_argument);
  EXPECT_THROW(topology(4, {2, 2}), std::invalid_argument);   // top != 1
  EXPECT_THROW(topology(4, {2, 3, 1}), std::invalid_argument);  // growing
  EXPECT_THROW(topology(4, {8, 1}), std::invalid_argument);   // > nodes
  EXPECT_THROW(topology::two_tier(12, 3).tier_group(0, 3), std::out_of_range);
  EXPECT_THROW(topology::two_tier(12, 3).region_of(node_id{12}),
               std::out_of_range);
}

}  // namespace
}  // namespace omega::hierarchy
