// Failover tests of the hierarchy coordinator: promotion of a regional
// replacement into the global group, stale-incarnation rejoin safety, and
// the listener invariant (only regional leaders ever compete globally).
#include "hierarchy/coordinator.hpp"

#include <gtest/gtest.h>

#include "harness/experiment.hpp"

namespace omega::harness {
namespace {

scenario hier_sc(std::size_t nodes = 9, std::size_t regions = 3) {
  scenario sc;
  sc.name = "hierarchy-test";
  sc.nodes = nodes;
  sc.alg = election::algorithm::omega_lc;
  sc.links = net::link_profile::lan();
  sc.churn = churn_profile::none();
  sc.hierarchy = hierarchy_profile::with_regions(regions);
  sc.seed = 17;
  return sc;
}

/// Runs the sim until every live node agrees on a global leader (bounded),
/// returning it. Waits out the experiment's staggered boot first so that
/// early agreement among the first joiners does not end the settling while
/// some nodes are still down.
std::optional<process_id> settle(experiment& exp, duration budget = sec(30)) {
  auto& sim = exp.simulator();
  if (sim.now() < time_origin + sec(5)) sim.run_until(time_origin + sec(5));
  const time_point deadline = sim.now() + budget;
  while (sim.now() < deadline) {
    if (auto agreed = exp.group().agreed_leader()) return agreed;
    sim.run_until(sim.now() + msec(100));
  }
  return exp.group().agreed_leader();
}

TEST(HierarchyCoordinator, SettlesOnGlobalLeaderWithRegionalCandidateSet) {
  experiment exp(hier_sc());
  const auto global = settle(exp);
  ASSERT_TRUE(global.has_value());

  // Exactly the regional leaders compete globally; everyone else listens.
  std::size_t global_candidates = 0;
  for (std::uint32_t i = 0; i < 9; ++i) {
    auto* coord = exp.node_coordinator(node_id{i});
    ASSERT_NE(coord, nullptr);
    const auto region_leader = coord->leader(0);
    ASSERT_TRUE(region_leader.has_value());
    EXPECT_EQ(coord->candidate_at(1), *region_leader == coord->pid());
    if (coord->candidate_at(1)) ++global_candidates;
    // The global leader must itself be a regional leader.
    if (*global == coord->pid()) EXPECT_TRUE(coord->candidate_at(1));
  }
  EXPECT_EQ(global_candidates, 3u);
}

TEST(HierarchyCoordinator, RegionalLeaderCrashPromotesReplacement) {
  experiment exp(hier_sc());
  auto& sim = exp.simulator();
  const auto global = settle(exp);
  ASSERT_TRUE(global.has_value());

  const node_id victim{global->value()};
  const std::size_t crashed_region =
      exp.topo()->region_of(victim);
  exp.crash_node(victim);

  // Both tiers must heal: a new global leader that is not the victim, and
  // a replacement regional leader in the crashed region, promoted into the
  // global election.
  const time_point deadline = sim.now() + sec(20);
  std::optional<process_id> healed;
  while (sim.now() < deadline) {
    sim.run_until(sim.now() + msec(50));
    const auto agreed = exp.group().agreed_leader();
    if (agreed.has_value() && *agreed != *global) {
      healed = agreed;
      break;
    }
  }
  ASSERT_TRUE(healed.has_value());
  EXPECT_NE(*healed, *global);

  // Let the crashed region's own election finish too, then check promotion.
  sim.run_until(sim.now() + sec(10));
  hierarchy::hierarchy_coordinator* replacement = nullptr;
  for (std::uint32_t i = 0; i < 9; ++i) {
    const node_id n{i};
    if (n == victim || exp.topo()->region_of(n) != crashed_region) continue;
    auto* coord = exp.node_coordinator(n);
    ASSERT_NE(coord, nullptr);
    const auto region_leader = coord->leader(0);
    ASSERT_TRUE(region_leader.has_value());
    EXPECT_NE(region_leader->value(), victim.value());
    if (*region_leader == coord->pid()) replacement = coord;
  }
  ASSERT_NE(replacement, nullptr);
  EXPECT_TRUE(replacement->candidate_at(1));
  EXPECT_GE(replacement->promotions(), 1u);
}

TEST(HierarchyCoordinator, StaleIncarnationRejoinDoesNotDemoteGlobalLeader) {
  experiment exp(hier_sc());
  auto& sim = exp.simulator();
  const auto first = settle(exp);
  ASSERT_TRUE(first.has_value());

  // Crash the global leader, let a successor establish itself.
  const node_id victim{first->value()};
  exp.crash_node(victim);
  const time_point deadline = sim.now() + sec(20);
  std::optional<process_id> successor;
  while (sim.now() < deadline) {
    sim.run_until(sim.now() + msec(50));
    const auto agreed = exp.group().agreed_leader();
    if (agreed.has_value() && *agreed != *first) {
      successor = agreed;
      break;
    }
  }
  ASSERT_TRUE(successor.has_value());

  // The old leader recovers with a higher incarnation and rejoins the
  // hierarchy. Its fresh accusation time ranks it behind the established
  // successor on both tiers: the global leader must not move.
  exp.recover_node(victim);
  const time_point observe_until = sim.now() + sec(60);
  while (sim.now() < observe_until) {
    sim.run_until(sim.now() + msec(200));
    const auto agreed = exp.group().agreed_leader();
    if (agreed.has_value()) {
      EXPECT_EQ(*agreed, *successor)
          << "recovered stale leader demoted the established one at t="
          << to_seconds(sim.now() - time_origin);
      if (agreed != successor) break;
    }
  }
  EXPECT_EQ(exp.group().agreed_leader(), successor);
  // And the recovered node is back as a listener, not a global candidate.
  auto* recovered = exp.node_coordinator(victim);
  ASSERT_NE(recovered, nullptr);
  EXPECT_FALSE(recovered->candidate_at(1));
}

TEST(HierarchyCoordinator, ListenersNeverBecomeGlobalCandidates) {
  // Region-scoped links: LAN inside regions, heavy-tailed (Pareto) WAN
  // between them — the deployment shape the hierarchy is for.
  scenario sc = hier_sc();
  sc.hierarchy.inter_region_links =
      net::link_profile::heavy_tailed(msec(20), 0.01);
  experiment exp(sc);
  auto& sim = exp.simulator();
  ASSERT_TRUE(settle(exp).has_value());

  // Churn a regional leader mid-run, then sample the invariant: a node that
  // sees another process leading its region is never a global candidate.
  // (During a leaderless window — view nullopt — candidacy is deliberately
  // held, so the invariant conditions on a definite foreign leader.)
  const auto global = exp.group().agreed_leader();
  ASSERT_TRUE(global.has_value());
  const node_id churned{global->value()};
  bool crashed = false;
  bool recovered = false;
  const time_point start = sim.now();
  const time_point end = start + sec(60);
  while (sim.now() < end) {
    sim.run_until(sim.now() + msec(500));
    if (!crashed && sim.now() >= start + sec(10)) {
      exp.crash_node(churned);
      crashed = true;
    } else if (crashed && !recovered && sim.now() >= start + sec(25)) {
      exp.recover_node(churned);
      recovered = true;
    }
    for (std::uint32_t i = 0; i < 9; ++i) {
      auto* coord = exp.node_coordinator(node_id{i});
      if (coord == nullptr) continue;
      const auto region_leader = coord->leader(0);
      if (region_leader.has_value() && *region_leader != coord->pid()) {
        EXPECT_FALSE(coord->candidate_at(1))
            << "node " << i << " listens to region leader "
            << region_leader->value() << " but competes globally at t="
            << to_seconds(sim.now() - time_origin);
      }
    }
  }
  EXPECT_TRUE(crashed);
  EXPECT_TRUE(recovered);
}

}  // namespace
}  // namespace omega::harness
