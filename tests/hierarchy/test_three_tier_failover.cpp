// Three-tier failover battery (regions -> zones -> global) under
// roster-scoped dissemination: kill a zone leader, kill the global leader,
// crash-and-rejoin with a stale incarnation, and partition one region.
// After every event the promotion/demotion invariants must hold and the
// cluster must converge on exactly one global leader.
#include <gtest/gtest.h>

#include <optional>
#include <set>

#include "harness/experiment.hpp"
#include "hierarchy/coordinator.hpp"

namespace omega::harness {
namespace {

constexpr std::size_t kNodes = 18;

/// 18 nodes, 6 regions of 3, 3 zones of 2 regions, one global group.
scenario three_tier_sc(std::uint64_t seed = 29) {
  scenario sc;
  sc.name = "three-tier-failover";
  sc.nodes = kNodes;
  sc.alg = election::algorithm::omega_lc;
  sc.links = net::link_profile::lan();
  sc.churn = churn_profile::none();
  sc.hierarchy = hierarchy_profile::three_tier(6, 3);
  sc.seed = seed;
  return sc;
}

/// Runs the sim until every live node agrees on a global leader (bounded).
std::optional<process_id> settle(experiment& exp, duration budget = sec(40)) {
  auto& sim = exp.simulator();
  if (sim.now() < time_origin + sec(5)) sim.run_until(time_origin + sec(5));
  const time_point deadline = sim.now() + budget;
  while (sim.now() < deadline) {
    if (auto agreed = exp.group().agreed_leader()) return agreed;
    sim.run_until(sim.now() + msec(100));
  }
  return exp.group().agreed_leader();
}

/// True when the metric tracker agrees AND every live coordinator's own
/// global view names the same single leader.
bool converged_on_one_global_leader(experiment& exp) {
  const auto agreed = exp.group().agreed_leader();
  if (!agreed.has_value()) return false;
  for (std::uint32_t i = 0; i < kNodes; ++i) {
    auto* coord = exp.node_coordinator(node_id{i});
    if (coord == nullptr) continue;  // node down
    if (coord->global_leader() != agreed) return false;
  }
  return true;
}

/// Waits (bounded) for cluster-wide convergence on one global leader.
bool wait_converged(experiment& exp, duration budget = sec(30)) {
  auto& sim = exp.simulator();
  const time_point deadline = sim.now() + budget;
  while (sim.now() < deadline) {
    sim.run_until(sim.now() + msec(100));
    if (converged_on_one_global_leader(exp)) return true;
  }
  return false;
}

/// The promotion/demotion invariant: wherever a node sees a *definite*
/// leader at tier t, its tier-(t+1) candidacy equals "that leader is me".
/// (Leaderless windows deliberately hold candidacy, so they are skipped.)
void check_candidacy_invariants(experiment& exp) {
  for (std::uint32_t i = 0; i < kNodes; ++i) {
    auto* coord = exp.node_coordinator(node_id{i});
    if (coord == nullptr) continue;
    for (std::size_t tier = 0; tier + 1 < coord->topo().tiers(); ++tier) {
      const auto leader = coord->leader(tier);
      if (!leader.has_value()) continue;
      EXPECT_EQ(coord->candidate_at(tier + 1), *leader == coord->pid())
          << "node " << i << " tier " << tier;
    }
  }
}

/// A zone leader (global candidate) other than the global leader.
hierarchy::hierarchy_coordinator* find_other_zone_leader(experiment& exp,
                                                         process_id global) {
  for (std::uint32_t i = 0; i < kNodes; ++i) {
    auto* coord = exp.node_coordinator(node_id{i});
    if (coord == nullptr || coord->pid() == global) continue;
    if (coord->candidate_at(2)) return coord;
  }
  return nullptr;
}

TEST(ThreeTierFailover, KillZoneLeaderPromotesReplacementWithoutGlobalOutage) {
  experiment exp(three_tier_sc());
  auto& sim = exp.simulator();
  const auto global = settle(exp);
  ASSERT_TRUE(global.has_value());
  ASSERT_TRUE(wait_converged(exp));

  auto* zone_leader = find_other_zone_leader(exp, *global);
  ASSERT_NE(zone_leader, nullptr) << "no second zone leader promoted";
  const node_id victim{zone_leader->pid().value()};
  const group_id zone_group = exp.topo()->group_at(victim, 1);
  exp.crash_node(victim);

  // The victim's zone must re-elect (a region leader of that zone gets
  // promoted), while the global tier never loses its leader.
  sim.run_until(sim.now() + sec(20));
  EXPECT_EQ(exp.group().agreed_leader(), global)
      << "global leader moved although only a foreign zone leader died";

  hierarchy::hierarchy_coordinator* replacement = nullptr;
  for (std::uint32_t i = 0; i < kNodes; ++i) {
    const node_id n{i};
    auto* coord = exp.node_coordinator(n);
    if (coord == nullptr || exp.topo()->group_at(n, 1) != zone_group) continue;
    const auto zl = coord->leader(1);
    ASSERT_TRUE(zl.has_value()) << "zone still leaderless after 20 s";
    EXPECT_NE(zl->value(), victim.value());
    if (*zl == coord->pid()) replacement = coord;
  }
  ASSERT_NE(replacement, nullptr);
  EXPECT_TRUE(replacement->candidate_at(2))
      << "new zone leader was not promoted into the global election";
  check_candidacy_invariants(exp);
  EXPECT_TRUE(converged_on_one_global_leader(exp));
}

TEST(ThreeTierFailover, KillGlobalLeaderConvergesOnExactlyOneSuccessor) {
  experiment exp(three_tier_sc());
  auto& sim = exp.simulator();
  const auto global = settle(exp);
  ASSERT_TRUE(global.has_value());
  ASSERT_TRUE(wait_converged(exp));

  // Turn on accounting so the blame split sees this outage.
  exp.group().begin(sim.now());
  exp.hier_metrics()->begin(sim.now());

  const node_id victim{global->value()};
  exp.crash_node(victim);
  const time_point deadline = sim.now() + sec(30);
  std::optional<process_id> successor;
  while (sim.now() < deadline) {
    sim.run_until(sim.now() + msec(50));
    const auto agreed = exp.group().agreed_leader();
    if (agreed.has_value() && *agreed != *global) {
      successor = agreed;
      break;
    }
  }
  ASSERT_TRUE(successor.has_value()) << "no successor within 30 s";
  EXPECT_TRUE(wait_converged(exp));
  check_candidacy_invariants(exp);

  // The victim's own region must have healed too.
  const std::size_t crashed_region = exp.topo()->region_of(victim);
  sim.run_until(sim.now() + sec(10));
  for (std::uint32_t i = 0; i < kNodes; ++i) {
    const node_id n{i};
    auto* coord = exp.node_coordinator(n);
    if (coord == nullptr || exp.topo()->region_of(n) != crashed_region) continue;
    const auto rl = coord->leader(0);
    ASSERT_TRUE(rl.has_value());
    EXPECT_NE(rl->value(), victim.value());
  }

  // Exactly one blame bucket took the outage; with two established foreign
  // zone leaders in the global group, re-election beats the victim
  // region's promotion chain.
  const auto* hm = exp.hier_metrics();
  EXPECT_EQ(hm->outages_blamed_regional() + hm->outages_blamed_global(), 1u);
  EXPECT_EQ(hm->outages_blamed_global(), 1u);
}

TEST(ThreeTierFailover, StaleIncarnationRejoinNeverDemotesTheSuccessor) {
  experiment exp(three_tier_sc());
  auto& sim = exp.simulator();
  const auto first = settle(exp);
  ASSERT_TRUE(first.has_value());
  ASSERT_TRUE(wait_converged(exp));

  const node_id victim{first->value()};
  exp.crash_node(victim);
  const time_point deadline = sim.now() + sec(30);
  std::optional<process_id> successor;
  while (sim.now() < deadline) {
    sim.run_until(sim.now() + msec(50));
    const auto agreed = exp.group().agreed_leader();
    if (agreed.has_value() && *agreed != *first) {
      successor = agreed;
      break;
    }
  }
  ASSERT_TRUE(successor.has_value());

  // The old global leader recovers with a higher incarnation. Its fresh
  // accusation times rank it behind every established leader on every
  // tier: it must come back as a pure listener and the successor must
  // keep the global group.
  exp.recover_node(victim);
  const time_point observe_until = sim.now() + sec(45);
  while (sim.now() < observe_until) {
    sim.run_until(sim.now() + msec(200));
    const auto agreed = exp.group().agreed_leader();
    if (agreed.has_value()) {
      ASSERT_EQ(*agreed, *successor)
          << "stale rejoin demoted the established successor at t="
          << to_seconds(sim.now() - time_origin);
    }
  }
  EXPECT_TRUE(converged_on_one_global_leader(exp));
  EXPECT_EQ(exp.group().agreed_leader(), successor);
  auto* recovered = exp.node_coordinator(victim);
  ASSERT_NE(recovered, nullptr);
  EXPECT_FALSE(recovered->candidate_at(1));
  EXPECT_FALSE(recovered->candidate_at(2));
  check_candidacy_invariants(exp);
}

TEST(ThreeTierFailover, PartitionedRegionRejoinsWithoutDisturbingTheRest) {
  experiment exp(three_tier_sc());
  auto& sim = exp.simulator();
  const auto global = settle(exp);
  ASSERT_TRUE(global.has_value());
  ASSERT_TRUE(wait_converged(exp));

  // Partition a region from a different zone than the global leader's, so
  // the majority side keeps its whole promotion chain intact.
  const node_id leader_node{global->value()};
  const std::size_t leader_zone = exp.topo()->group_index(leader_node, 1);
  std::optional<std::size_t> cut_region;
  for (std::uint32_t i = 0; i < kNodes; ++i) {
    const node_id n{i};
    if (exp.topo()->group_index(n, 1) != leader_zone) {
      cut_region = exp.topo()->region_of(n);
      break;
    }
  }
  ASSERT_TRUE(cut_region.has_value());

  const auto in_cut = [&](node_id n) {
    return exp.topo()->region_of(n) == *cut_region;
  };
  const auto set_partition = [&](bool up) {
    for (std::uint32_t a = 0; a < kNodes; ++a) {
      for (std::uint32_t b = 0; b < kNodes; ++b) {
        const node_id na{a};
        const node_id nb{b};
        if (a == b || in_cut(na) == in_cut(nb)) continue;
        exp.network().force_link_state(na, nb, up);
      }
    }
  };
  set_partition(false);
  sim.run_until(sim.now() + sec(20));

  // The majority side must still agree on the same untouched global leader.
  for (std::uint32_t i = 0; i < kNodes; ++i) {
    const node_id n{i};
    auto* coord = exp.node_coordinator(n);
    if (coord == nullptr || in_cut(n)) continue;
    EXPECT_EQ(coord->global_leader(), global)
        << "majority-side node " << i << " lost the global leader";
  }
  // The partitioned region keeps running its own election (its region
  // leader may well promote itself all the way up: split brain is the
  // expected transient under partition for an eventual leader election).
  for (std::uint32_t i = 0; i < kNodes; ++i) {
    const node_id n{i};
    auto* coord = exp.node_coordinator(n);
    if (coord == nullptr || !in_cut(n)) continue;
    const auto rl = coord->leader(0);
    ASSERT_TRUE(rl.has_value()) << "partitioned region lost its own leader";
    EXPECT_TRUE(in_cut(node_id{rl->value()}));
  }

  // Heal: the pretender's fresh promotion ranks behind the established
  // leader, so the cluster must converge back on exactly one global
  // leader (and every definite view obeys the candidacy invariant).
  set_partition(true);
  ASSERT_TRUE(wait_converged(exp, sec(45)));
  check_candidacy_invariants(exp);
}

}  // namespace
}  // namespace omega::harness
