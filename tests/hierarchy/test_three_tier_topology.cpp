// Three-tier topology shapes: coarsening consistency, group-id allocation
// across tiers, balanced region/zone blocks, and shape validation — the
// descriptor-level guarantees the 3-tier failover battery builds on.
#include "hierarchy/topology.hpp"

#include <gtest/gtest.h>

#include <set>
#include <stdexcept>

namespace omega::hierarchy {
namespace {

TEST(ThreeTierTopology, ChainIsConsistentAcrossTiers) {
  const topology topo(18, {6, 3, 1});
  ASSERT_EQ(topo.tiers(), 3u);
  EXPECT_EQ(topo.top_tier(), 2u);
  for (std::uint32_t i = 0; i < 18; ++i) {
    const node_id n{i};
    // Tier-0 group index is the region; tier 1 coarsens pairs of regions
    // (6 regions -> 3 zones); tier 2 is the single global group.
    EXPECT_EQ(topo.group_index(n, 0), topo.region_of(n));
    EXPECT_EQ(topo.group_index(n, 1), topo.region_of(n) * 3 / 6);
    EXPECT_EQ(topo.group_index(n, 2), 0u);
    EXPECT_EQ(topo.group_at(n, 2), topo.top_group());
  }
}

TEST(ThreeTierTopology, SameZoneIffSameCoarsenedRegion) {
  const topology topo(18, {6, 3, 1});
  for (std::uint32_t a = 0; a < 18; ++a) {
    for (std::uint32_t b = 0; b < 18; ++b) {
      const bool same_zone =
          topo.group_at(node_id{a}, 1) == topo.group_at(node_id{b}, 1);
      EXPECT_EQ(same_zone, topo.group_index(node_id{a}, 1) ==
                               topo.group_index(node_id{b}, 1));
      // Nodes of one region never straddle a zone boundary.
      if (topo.same_region(node_id{a}, node_id{b})) EXPECT_TRUE(same_zone);
    }
  }
}

TEST(ThreeTierTopology, GroupIdsAreDistinctAcrossAllTiers) {
  const topology topo(40, {8, 4, 1});
  std::set<std::uint32_t> ids;
  for (std::size_t tier = 0; tier < topo.tiers(); ++tier) {
    for (std::size_t g = 0; g < topo.groups_in_tier(tier); ++g) {
      EXPECT_TRUE(ids.insert(topo.tier_group(tier, g).value()).second)
          << "duplicate group id at tier " << tier << " index " << g;
    }
  }
  EXPECT_EQ(ids.size(), 8u + 4u + 1u);
  // All allocated from the private base, clear of application group ids.
  for (const auto id : ids) {
    EXPECT_GE(id, topology::default_group_base);
  }
}

TEST(ThreeTierTopology, RegionSizesArePartitionOfRoster) {
  // Uneven split: 17 nodes over 5 regions — sizes differ by at most one
  // and region_size stays the exact inverse of region_of.
  const topology topo(17, {5, 2, 1});
  std::size_t total = 0;
  for (std::size_t r = 0; r < 5; ++r) {
    const std::size_t size = topo.region_size(r);
    EXPECT_GE(size, 17u / 5u);
    EXPECT_LE(size, 17u / 5u + 1u);
    total += size;
  }
  EXPECT_EQ(total, 17u);
  std::size_t counted = 0;
  for (std::uint32_t i = 0; i < 17; ++i) {
    counted += topo.region_of(node_id{i}) < 5 ? 1 : 0;
  }
  EXPECT_EQ(counted, 17u);
}

TEST(ThreeTierTopology, MalformedShapesThrow) {
  EXPECT_THROW(topology(18, {4, 5, 1}), std::invalid_argument);  // widening
  EXPECT_THROW(topology(18, {6, 3, 2}), std::invalid_argument);  // top != 1
  EXPECT_THROW(topology(18, {6, 0, 1}), std::invalid_argument);  // empty tier
  EXPECT_THROW(topology(4, {6, 3, 1}), std::invalid_argument);   // regions > nodes
  EXPECT_NO_THROW(topology(18, {6, 3, 1}));
  EXPECT_NO_THROW(topology(18, {6, 6, 1}));  // equal-width middle tier is legal
}

}  // namespace
}  // namespace omega::hierarchy
