// The multicast-to-set send path and the send tap of the simulated
// network, plus the envelope peek the tap-based traffic classification
// relies on.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "net/sim_network.hpp"
#include "proto/wire.hpp"
#include "sim/simulator.hpp"

namespace omega::net {
namespace {

constexpr node_id n0{0};
constexpr node_id n1{1};
constexpr node_id n2{2};
constexpr node_id n3{3};

std::vector<std::byte> hello_bytes() {
  proto::hello_msg msg;
  msg.from = n0;
  msg.inc = 1;
  msg.entries.push_back({group_id{1}, process_id{0}, true});
  return proto::encode(proto::wire_message{msg});
}

TEST(MulticastTap, MulticastDeliversToEveryDestination) {
  sim::simulator sim;
  sim_network net(sim, 4, link_profile::lan(), rng(7));
  std::set<std::uint32_t> received;
  for (std::uint32_t i = 1; i < 4; ++i) {
    net.endpoint(node_id{i}).set_receive_handler([&received, i](const datagram& d) {
      EXPECT_EQ(d.from, n0);
      received.insert(i);
    });
  }

  const auto bytes = hello_bytes();
  const std::vector<node_id> dsts{n1, n3};
  net.endpoint(n0).multicast(dsts, bytes);
  sim.run_until(sim.now() + sec(1));

  EXPECT_EQ(received, (std::set<std::uint32_t>{1, 3}));
  // One datagram per destination on the sender's wire accounting.
  EXPECT_EQ(net.traffic(n0).datagrams_sent, 2u);
  EXPECT_EQ(net.traffic(n1).datagrams_received, 1u);
  EXPECT_EQ(net.traffic(n2).datagrams_received, 0u);
}

TEST(MulticastTap, SendTapSeesEveryAcceptedSend) {
  sim::simulator sim;
  sim_network net(sim, 4, link_profile::lan(), rng(7));
  std::vector<std::pair<std::uint32_t, std::uint32_t>> taps;
  net.set_send_tap([&taps](node_id from, node_id to, std::span<const std::byte>) {
    taps.emplace_back(from.value(), to.value());
  });

  const auto bytes = hello_bytes();
  net.endpoint(n0).send(n1, bytes);
  net.endpoint(n0).multicast(std::vector<node_id>{n2, n3}, bytes);
  EXPECT_EQ(taps.size(), 3u);
  EXPECT_EQ(taps[0], (std::pair<std::uint32_t, std::uint32_t>{0, 1}));

  // A dead host transmits nothing, so the tap must not fire either.
  net.set_node_alive(n0, false);
  net.endpoint(n0).send(n1, bytes);
  EXPECT_EQ(taps.size(), 3u);

  // And an empty tap uninstalls cleanly.
  net.set_node_alive(n0, true);
  net.set_send_tap({});
  net.endpoint(n0).send(n1, bytes);
  EXPECT_EQ(taps.size(), 3u);
}

TEST(MulticastTap, PeekKindClassifiesWithoutFullDecode) {
  const auto hello = hello_bytes();
  EXPECT_EQ(proto::peek_kind(hello), proto::msg_kind::hello);

  proto::alive_msg alive;
  alive.from = n1;
  alive.inc = 2;
  EXPECT_EQ(proto::peek_kind(proto::encode(proto::wire_message{alive})),
            proto::msg_kind::alive);
  EXPECT_EQ(proto::peek_kind(proto::encode(
                proto::wire_message{proto::leave_msg{n1, 1, group_id{1},
                                                    process_id{1}}})),
            proto::msg_kind::leave);

  // Truncated, wrong-version and unknown-type envelopes are rejected.
  EXPECT_EQ(proto::peek_kind({}), std::nullopt);
  EXPECT_EQ(proto::peek_kind(std::span<const std::byte>(hello.data(), 1)),
            std::nullopt);
  std::vector<std::byte> wrong_version = hello;
  wrong_version[0] = std::byte{0x7f};
  EXPECT_EQ(proto::peek_kind(wrong_version), std::nullopt);
  std::vector<std::byte> bad_type = hello;
  bad_type[1] = std::byte{0x2a};
  EXPECT_EQ(proto::peek_kind(bad_type), std::nullopt);

  // peek agrees with the full decode's variant tag.
  const auto decoded = proto::decode(hello);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(proto::kind_of(*decoded), proto::msg_kind::hello);
}

}  // namespace
}  // namespace omega::net
