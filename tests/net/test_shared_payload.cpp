// Lifetime and recycling tests for the zero-copy datagram path
// (net::shared_payload / net::payload_pool, DESIGN.md §9).
//
// The interesting hazards are all about references outliving their origin:
// a delivery event holding the buffer after the *sender* crashed, after the
// receiver was marked dead mid-flight, after the pool itself was destroyed,
// and hundreds of multicast destinations aliasing one immutable buffer.
// The ASan pass of scripts/ci.sh runs these against instrumented builds.
#include "net/shared_payload.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "net/sim_network.hpp"
#include "proto/wire.hpp"
#include "sim/simulator.hpp"

namespace omega::net {
namespace {

std::vector<std::byte> bytes_of(const std::string& s) {
  std::vector<std::byte> out(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) out[i] = std::byte(s[i]);
  return out;
}

std::string string_of(std::span<const std::byte> b) {
  return std::string(reinterpret_cast<const char*>(b.data()), b.size());
}

// ---- pool mechanics ---------------------------------------------------------

TEST(PayloadPool, SealCopyAndRefcount) {
  payload_pool pool;
  shared_payload p = pool.copy(bytes_of("abc"));
  EXPECT_EQ(p.size(), 3u);
  EXPECT_EQ(p.use_count(), 1u);
  EXPECT_EQ(pool.live_payloads(), 1u);

  shared_payload q = p;  // alias
  EXPECT_EQ(p.use_count(), 2u);
  EXPECT_EQ(string_of(q.bytes()), "abc");

  p = shared_payload{};  // drop one reference
  EXPECT_EQ(q.use_count(), 1u);
  EXPECT_EQ(pool.live_payloads(), 1u);

  q = shared_payload{};  // last reference: storage returns to the free list
  EXPECT_EQ(pool.live_payloads(), 0u);
  EXPECT_EQ(pool.free_buffers(), 1u);
}

TEST(PayloadPool, CheckoutRecyclesCapacity) {
  payload_pool pool;
  { shared_payload p = pool.copy(std::vector<std::byte>(512)); }
  ASSERT_EQ(pool.free_buffers(), 1u);

  std::vector<std::byte> buf = pool.checkout();
  EXPECT_TRUE(buf.empty());
  EXPECT_GE(buf.capacity(), 512u);  // the recycled vector keeps its storage
  buf.push_back(std::byte{7});
  shared_payload p = pool.seal(std::move(buf));
  EXPECT_EQ(p.size(), 1u);
  EXPECT_EQ(pool.free_buffers(), 0u);  // the one block is live again
}

TEST(PayloadPool, FreeListIsBounded) {
  payload_pool pool(/*max_free=*/2);
  std::vector<shared_payload> live;
  for (int i = 0; i < 5; ++i) live.push_back(pool.copy(bytes_of("x")));
  live.clear();
  EXPECT_EQ(pool.free_buffers(), 2u);  // the other three were freed outright
}

TEST(PayloadPool, PayloadOutlivesPool) {
  shared_payload survivor;
  {
    payload_pool pool;
    survivor = pool.copy(bytes_of("still here"));
    // Pool dies first (the simulator can hold delivery events past the
    // network's teardown); the block must be orphaned, not dangled.
  }
  EXPECT_EQ(string_of(survivor.bytes()), "still here");
  survivor = shared_payload{};  // self-deletes; ASan would flag a bad free
}

// ---- in-flight lifetime through the simulated network -----------------------

class PayloadLifetimeTest : public ::testing::Test {
 protected:
  sim::simulator sim;
  sim_network net{sim, 4, link_profile{0.0, msec(5)}, rng(99)};
};

TEST_F(PayloadLifetimeTest, DeliveryAfterSenderCrashMidFlight) {
  std::vector<std::string> got;
  net.endpoint(node_id{1}).set_receive_handler(
      [&](const datagram& d) { got.push_back(string_of(d.payload)); });

  net.endpoint(node_id{0}).send(
      node_id{1}, net.buffer_pool().copy(bytes_of("from the grave")));
  // The sender dies while the datagram is on the wire; the delivery event
  // still owns a reference and must deliver intact bytes.
  net.set_node_alive(node_id{0}, false);
  sim.run_until(time_origin + sec(1));
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], "from the grave");
}

TEST_F(PayloadLifetimeTest, ReceiverDeadMidFlightDropsAndRecycles) {
  int received = 0;
  net.endpoint(node_id{1}).set_receive_handler(
      [&](const datagram&) { ++received; });
  net.endpoint(node_id{0}).send(node_id{1},
                                net.buffer_pool().copy(bytes_of("late")));
  net.set_node_alive(node_id{1}, false);  // dies after admit, before delivery
  sim.run_until(time_origin + sec(1));
  EXPECT_EQ(received, 0);
  EXPECT_EQ(net.dropped_dead_node(), 1u);
  // The dropped delivery released the last reference: buffer recycled.
  EXPECT_EQ(net.buffer_pool().live_payloads(), 0u);
  EXPECT_GE(net.buffer_pool().free_buffers(), 1u);
}

TEST_F(PayloadLifetimeTest, MulticastAliasesOneBuffer) {
  // All three destinations must see identical bytes even though only one
  // buffer exists, and no receiver can perturb another (spans are const).
  std::vector<std::string> got;
  for (std::uint32_t n = 1; n < 4; ++n) {
    net.endpoint(node_id{n}).set_receive_handler(
        [&](const datagram& d) { got.push_back(string_of(d.payload)); });
  }
  shared_payload p = net.buffer_pool().copy(bytes_of("fanout"));
  const node_id dsts[] = {node_id{1}, node_id{2}, node_id{3}};
  net.endpoint(node_id{0}).multicast(dsts, p);
  // One buffer, one sender handle + three in-flight references.
  EXPECT_EQ(p.use_count(), 4u);
  EXPECT_EQ(net.buffer_pool().live_payloads(), 1u);
  sim.run_until(time_origin + sec(1));
  ASSERT_EQ(got.size(), 3u);
  for (const auto& s : got) EXPECT_EQ(s, "fanout");
  EXPECT_EQ(p.use_count(), 1u);  // only the local handle left
}

TEST_F(PayloadLifetimeTest, SteadyStateReusesFreeList) {
  net.endpoint(node_id{1}).set_receive_handler([](const datagram&) {});
  // Round 1 grows the pool to the working set...
  for (int i = 0; i < 10; ++i) {
    net.endpoint(node_id{0}).send(node_id{1},
                                  net.buffer_pool().copy(bytes_of("warm")));
  }
  sim.run_until(time_origin + sec(1));
  const std::size_t settled = net.buffer_pool().free_buffers();
  EXPECT_GE(settled, 1u);
  // ...round 2 cycles through it without growing it.
  for (int i = 0; i < 10; ++i) {
    net.endpoint(node_id{0}).send(node_id{1},
                                  net.buffer_pool().copy(bytes_of("reuse")));
  }
  sim.run_until(time_origin + sec(2));
  EXPECT_EQ(net.buffer_pool().free_buffers(), settled);
  EXPECT_EQ(net.buffer_pool().live_payloads(), 0u);
}

TEST(PayloadTeardown, InFlightPayloadSurvivesNetworkTeardown) {
  // The harness destroys members in reverse declaration order: the network
  // (and its pool) dies before the simulator, which still holds delivery
  // closures owning payload references. Those events never fire — but their
  // queued closures are destroyed with the simulator, and releasing the
  // last reference then must free the orphaned block directly instead of
  // chasing the dangling pool pointer (ASan guards the frees).
  sim::simulator sim;
  {
    sim_network net(sim, 2, link_profile{0.0, msec(5)}, rng(7));
    net.endpoint(node_id{1}).set_receive_handler([](const datagram&) {});
    net.endpoint(node_id{0}).send(node_id{1},
                                  net.buffer_pool().copy(bytes_of("orphan")));
    EXPECT_EQ(net.buffer_pool().live_payloads(), 1u);
  }
  // Simulator destroyed at scope exit with the in-flight event still queued.
}

// ---- encode_shared ----------------------------------------------------------

TEST(EncodeShared, MatchesPlainEncodeByteForByte) {
  proto::alive_msg m;
  m.from = node_id{3};
  m.inc = 2;
  m.seq = 41;
  m.eta = msec(100);
  m.groups.resize(1);
  m.groups[0].group = group_id{1};
  m.groups[0].pid = process_id{3};
  const proto::wire_message wm{m};

  const std::vector<std::byte> plain = proto::encode(wm);
  payload_pool pool;
  const shared_payload shared = proto::encode_shared(wm, pool);
  ASSERT_EQ(shared.size(), plain.size());
  EXPECT_TRUE(std::equal(plain.begin(), plain.end(), shared.bytes().begin()));
}

}  // namespace
}  // namespace omega::net
