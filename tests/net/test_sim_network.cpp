#include "net/sim_network.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/simulator.hpp"

namespace omega::net {
namespace {

std::vector<std::byte> bytes_of(const std::string& s) {
  std::vector<std::byte> out(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) out[i] = std::byte(s[i]);
  return out;
}

std::string string_of(std::span<const std::byte> b) {
  return std::string(reinterpret_cast<const char*>(b.data()), b.size());
}

class SimNetworkTest : public ::testing::Test {
 protected:
  sim::simulator sim;
  net::sim_network net{sim, 3, link_profile{0.0, msec(1)}, rng(42)};
};

TEST_F(SimNetworkTest, DeliversBetweenNodes) {
  std::vector<std::string> received;
  net.endpoint(node_id{1}).set_receive_handler([&](const datagram& d) {
    received.push_back(to_string(d.from) + ":" + string_of(d.payload));
  });
  net.endpoint(node_id{0}).send(node_id{1}, bytes_of("hi"));
  sim.run_until(time_origin + sec(1));
  ASSERT_EQ(received.size(), 1u);
  EXPECT_EQ(received[0], "n0:hi");
}

TEST_F(SimNetworkTest, DeliveryIsDelayed) {
  time_point arrival{};
  net.endpoint(node_id{1}).set_receive_handler(
      [&](const datagram&) { arrival = sim.now(); });
  net.endpoint(node_id{0}).send(node_id{1}, bytes_of("x"));
  sim.run_until(time_origin + sec(1));
  EXPECT_GT(arrival, time_origin);
  EXPECT_LT(arrival, time_origin + sec(1));
}

TEST_F(SimNetworkTest, DeadDestinationDropsDatagrams) {
  int received = 0;
  net.endpoint(node_id{1}).set_receive_handler([&](const datagram&) { ++received; });
  net.set_node_alive(node_id{1}, false);
  net.endpoint(node_id{0}).send(node_id{1}, bytes_of("x"));
  sim.run_until(time_origin + sec(1));
  EXPECT_EQ(received, 0);
  EXPECT_EQ(net.dropped_dead_node(), 1u);
}

TEST_F(SimNetworkTest, DeadSourceCannotSend) {
  int received = 0;
  net.endpoint(node_id{1}).set_receive_handler([&](const datagram&) { ++received; });
  net.set_node_alive(node_id{0}, false);
  net.endpoint(node_id{0}).send(node_id{1}, bytes_of("x"));
  sim.run_until(time_origin + sec(1));
  EXPECT_EQ(received, 0);
  EXPECT_EQ(net.traffic(node_id{0}).datagrams_sent, 0u);
}

TEST_F(SimNetworkTest, CrashedNodeInFlightDeliveryDropped) {
  // Datagram sent while destination alive, but the destination dies before
  // the delay elapses: the datagram must vanish.
  int received = 0;
  net.endpoint(node_id{1}).set_receive_handler([&](const datagram&) { ++received; });
  net.endpoint(node_id{0}).send(node_id{1}, bytes_of("x"));
  net.set_node_alive(node_id{1}, false);
  sim.run_until(time_origin + sec(1));
  EXPECT_EQ(received, 0);
}

TEST_F(SimNetworkTest, TrafficAccountingIncludesOverhead) {
  net.endpoint(node_id{0}).send(node_id{1}, bytes_of("abcd"));
  sim.run_until(time_origin + sec(1));
  const auto& tx = net.traffic(node_id{0});
  const auto& rx = net.traffic(node_id{1});
  EXPECT_EQ(tx.datagrams_sent, 1u);
  EXPECT_EQ(tx.bytes_sent, 4u + wire_overhead_bytes);
  EXPECT_EQ(rx.datagrams_received, 1u);
  EXPECT_EQ(rx.bytes_received, 4u + wire_overhead_bytes);
}

TEST_F(SimNetworkTest, ResetTrafficZeroes) {
  net.endpoint(node_id{0}).send(node_id{1}, bytes_of("x"));
  sim.run_until(time_origin + sec(1));
  net.reset_traffic();
  EXPECT_EQ(net.traffic(node_id{0}).datagrams_sent, 0u);
  EXPECT_EQ(net.traffic(node_id{1}).datagrams_received, 0u);
}

TEST_F(SimNetworkTest, ResetTrafficZeroesDropCounters) {
  // Drop one datagram on a downed link and one at a dead destination, then
  // reset: the drop counters must restart with the per-node totals, so drop
  // *rates* are computed over the same window as traffic.
  net.force_link_state(node_id{0}, node_id{1}, false);
  net.endpoint(node_id{0}).send(node_id{1}, bytes_of("a"));  // link drop
  net.force_link_state(node_id{0}, node_id{1}, true);
  net.set_node_alive(node_id{2}, false);
  net.endpoint(node_id{0}).send(node_id{2}, bytes_of("b"));  // dead-node drop
  sim.run_until(time_origin + sec(1));
  EXPECT_EQ(net.dropped_by_links(), 1u);
  EXPECT_EQ(net.dropped_dead_node(), 1u);
  net.reset_traffic();
  EXPECT_EQ(net.dropped_by_links(), 0u);
  EXPECT_EQ(net.dropped_dead_node(), 0u);
}

TEST_F(SimNetworkTest, ForcedLinkDownDropsOneDirection) {
  int to1 = 0;
  int to0 = 0;
  net.endpoint(node_id{1}).set_receive_handler([&](const datagram&) { ++to1; });
  net.endpoint(node_id{0}).set_receive_handler([&](const datagram&) { ++to0; });
  net.force_link_state(node_id{0}, node_id{1}, false);
  net.endpoint(node_id{0}).send(node_id{1}, bytes_of("a"));  // dropped
  net.endpoint(node_id{1}).send(node_id{0}, bytes_of("b"));  // delivered
  sim.run_until(time_origin + sec(1));
  EXPECT_EQ(to1, 0);
  EXPECT_EQ(to0, 1);
  EXPECT_EQ(net.dropped_by_links(), 1u);
  EXPECT_FALSE(net.link_up(node_id{0}, node_id{1}));
  EXPECT_TRUE(net.link_up(node_id{1}, node_id{0}));
}

TEST_F(SimNetworkTest, LinkCrashProcessTogglesLinks) {
  net.enable_link_crashes(link_crash_profile::crashes(sec(10), sec(2)));
  // After enough simulated time at least one link must have gone down at
  // some point; statistically all of them.
  int down_observed = 0;
  for (int t = 1; t <= 200; ++t) {
    sim.run_until(time_origin + sec(t));
    if (!net.link_up(node_id{0}, node_id{1})) ++down_observed;
  }
  EXPECT_GT(down_observed, 0);
}

TEST_F(SimNetworkTest, LossyLinkDropsExpectedFraction) {
  net.set_all_link_profiles(link_profile{0.5, msec(1)});
  int received = 0;
  net.endpoint(node_id{1}).set_receive_handler([&](const datagram&) { ++received; });
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    net.endpoint(node_id{0}).send(node_id{1}, bytes_of("x"));
  }
  sim.run_until(time_origin + sec(10));
  EXPECT_NEAR(static_cast<double>(received) / n, 0.5, 0.03);
}

TEST_F(SimNetworkTest, MutedEndpointDropsSilently) {
  // No receive handler installed on node 2 at all.
  net.endpoint(node_id{0}).send(node_id{2}, bytes_of("x"));
  sim.run_until(time_origin + sec(1));
  EXPECT_EQ(net.traffic(node_id{2}).datagrams_received, 1u);
}

TEST(SimNetworkCtor, ZeroNodesRejected) {
  sim::simulator sim;
  EXPECT_THROW(net::sim_network(sim, 0, link_profile{}, rng(1)),
               std::invalid_argument);
}

}  // namespace
}  // namespace omega::net
