#include "net/link_model.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace omega::net {
namespace {

TEST(LinkModel, LosslessLinkDeliversEverything) {
  link_model link(link_profile{0.0, msec(1)}, rng(1));
  for (int i = 0; i < 1000; ++i) {
    EXPECT_TRUE(link.transit().has_value());
  }
}

TEST(LinkModel, FullLossDropsEverything) {
  link_model link(link_profile{1.0, msec(1)}, rng(2));
  for (int i = 0; i < 1000; ++i) {
    EXPECT_FALSE(link.transit().has_value());
  }
}

TEST(LinkModel, LossRateMatchesProfile) {
  link_model link(link_profile{0.1, msec(1)}, rng(3));
  int dropped = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (!link.transit().has_value()) ++dropped;
  }
  EXPECT_NEAR(static_cast<double>(dropped) / n, 0.1, 0.01);
}

TEST(LinkModel, DelayMeanMatchesProfile) {
  link_model link(link_profile{0.0, msec(100)}, rng(4));
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += to_seconds(*link.transit());
  EXPECT_NEAR(sum / n, 0.1, 0.005);
}

TEST(LinkModel, ZeroDelayProfile) {
  link_model link(link_profile{0.0, duration{0}}, rng(5));
  EXPECT_EQ(*link.transit(), duration{0});
}

TEST(LinkModel, CrashedLinkDropsAll) {
  link_model link(link_profile{0.0, msec(1)}, rng(6));
  link.set_up(false);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(link.transit().has_value());
  }
  link.set_up(true);
  EXPECT_TRUE(link.transit().has_value());
}

TEST(LinkModel, CrashDurationsFollowProfile) {
  link_model link(link_profile{}, rng(7));
  const link_crash_profile p = link_crash_profile::crashes(sec(60), sec(3));
  double up_sum = 0.0;
  double down_sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    up_sum += to_seconds(link.draw_uptime(p));
    down_sum += to_seconds(link.draw_downtime(p));
  }
  EXPECT_NEAR(up_sum / n, 60.0, 1.5);
  EXPECT_NEAR(down_sum / n, 3.0, 0.1);
}

TEST(LinkProfile, PaperFactories) {
  EXPECT_EQ(link_profile::lan().loss_probability, 0.0);
  EXPECT_EQ(link_profile::lan().mean_delay, usec(25));
  const auto lossy = link_profile::lossy(msec(100), 0.1);
  EXPECT_EQ(lossy.mean_delay, msec(100));
  EXPECT_DOUBLE_EQ(lossy.loss_probability, 0.1);
  EXPECT_FALSE(link_crash_profile::none().enabled);
  EXPECT_TRUE(link_crash_profile::crashes(sec(60), sec(3)).enabled);
}

TEST(LinkProfile, HeavyTailedFactory) {
  const auto wan = link_profile::heavy_tailed(msec(50), 0.01, 1.8);
  EXPECT_EQ(wan.mean_delay, msec(50));
  EXPECT_DOUBLE_EQ(wan.loss_probability, 0.01);
  EXPECT_EQ(wan.delay_dist, delay_distribution::pareto);
  EXPECT_DOUBLE_EQ(wan.pareto_alpha, 1.8);
  EXPECT_EQ(link_profile::lan().delay_dist, delay_distribution::exponential);
}

TEST(LinkModel, ParetoDelayMeanMatchesProfile) {
  link_model link(link_profile::heavy_tailed(msec(100), 0.0, 2.5), rng(7));
  double sum = 0.0;
  double min_delay = 1e9;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double d = to_seconds(*link.transit());
    sum += d;
    min_delay = std::min(min_delay, d);
  }
  EXPECT_NEAR(sum / n, 0.1, 0.01);
  // Pareto support starts at x_m = mean (alpha - 1) / alpha = 60 ms.
  EXPECT_GE(min_delay, 0.06 - 1e-9);
}

TEST(LinkModel, ParetoTailIsHeavierThanExponential) {
  // Same mean, same draw count: far out in the tail (10x the mean) the
  // Pareto link must produce many more stragglers than the exponential
  // one — that is the WAN behaviour the hierarchy/fig9 benches need.
  link_model pareto(link_profile::heavy_tailed(msec(10), 0.0, 2.5), rng(8));
  link_model expo(link_profile::lossy(msec(10), 0.0), rng(9));
  const double threshold = 0.1;  // 10 x mean
  int pareto_late = 0;
  int expo_late = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    if (to_seconds(*pareto.transit()) > threshold) ++pareto_late;
    if (to_seconds(*expo.transit()) > threshold) ++expo_late;
  }
  EXPECT_GT(pareto_late, 5 * (expo_late + 1));
}

}  // namespace
}  // namespace omega::net
