// Tests for the demotion justification window: a leader that crashes and
// recovers faster than the FD can detect must not turn the (crash-caused)
// leader change into an "unjustified" demotion.
#include <gtest/gtest.h>

#include "metrics/group_metrics.hpp"

namespace omega::metrics {
namespace {

constexpr process_id p1{1};
constexpr process_id p2{2};
constexpr process_id p3{3};

time_point at(double s) { return time_origin + from_seconds(s); }

group_metrics agreed_group() {
  group_metrics g;
  g.set_justification_window(sec(2));
  g.on_join(at(0), p1);
  g.on_join(at(0), p2);
  g.on_join(at(0), p3);
  g.on_leader_view(at(0), p1, p1);
  g.on_leader_view(at(0), p2, p1);
  g.on_leader_view(at(0), p3, p1);
  g.begin(at(0));
  return g;
}

TEST(JustificationWindow, FlashRecoveryBlipThenSwitchIsJustified) {
  group_metrics g = agreed_group();
  // p1 crashes at t=10 and is back 0.1 s later — before anyone detected it.
  g.on_crash(at(10.0), p1);
  g.on_recover(at(10.1), p1);
  g.on_join(at(10.1), p1);
  g.on_leader_view(at(10.1), p1, p1);  // fresh instance self-view
  // Agreement transiently re-forms on p1 (peers never changed their view).
  EXPECT_EQ(g.agreed_leader(), p1);
  // The fresh incarnation ranks last, so the group moves to p2 momentarily.
  g.on_leader_view(at(10.6), p1, p2);
  g.on_leader_view(at(10.6), p2, p2);
  g.on_leader_view(at(10.7), p3, p2);
  g.finish(at(20));

  EXPECT_EQ(g.unjustified_demotions(), 0u)
      << "the p1->p2 switch was caused by p1's real crash";
  EXPECT_EQ(g.justified_changes(), 1u);
}

TEST(JustificationWindow, SwitchLongAfterRecoveryIsUnjustified) {
  group_metrics g = agreed_group();
  g.on_crash(at(10.0), p1);
  g.on_recover(at(10.1), p1);
  g.on_join(at(10.1), p1);
  g.on_leader_view(at(10.1), p1, p1);
  EXPECT_EQ(g.agreed_leader(), p1);
  // The switch away happens 30 s later: way outside the window, so it
  // cannot be attributed to the old crash.
  g.on_leader_view(at(40.0), p1, p2);
  g.on_leader_view(at(40.0), p2, p2);
  g.on_leader_view(at(40.1), p3, p2);
  g.finish(at(60));

  EXPECT_EQ(g.unjustified_demotions(), 1u);
}

TEST(JustificationWindow, DirectSwitchAfterRecentCrashJustified) {
  // Even an instantaneous L -> L' agreement flip (no leaderless gap) is
  // justified when L crashed moments ago.
  group_metrics g = agreed_group();
  g.on_crash(at(10.0), p1);
  g.on_recover(at(10.05), p1);
  g.on_join(at(10.05), p1);
  g.on_leader_view(at(10.05), p1, p1);
  ASSERT_EQ(g.agreed_leader(), p1);
  // All three views flip to p2 in one instant: direct switch.
  g.on_leader_view(at(10.5), p1, p2);
  g.on_leader_view(at(10.5), p2, p2);
  g.on_leader_view(at(10.5), p3, p2);
  g.finish(at(20));
  EXPECT_EQ(g.unjustified_demotions(), 0u);
  EXPECT_EQ(g.justified_changes(), 1u);
}

TEST(JustificationWindow, UnrelatedDemotionStillCounted) {
  // p3 crashed recently, but the demoted leader is p1: no masking.
  group_metrics g = agreed_group();
  g.on_crash(at(9.5), p3);
  g.on_leader_view(at(10.0), p1, p2);
  g.on_leader_view(at(10.0), p2, p2);
  g.finish(at(20));
  EXPECT_EQ(g.unjustified_demotions(), 1u);
}

TEST(JustificationWindow, LeaveInsideWindowJustifiesSwitch) {
  group_metrics g = agreed_group();
  g.on_leave(at(10.0), p1);
  g.on_join(at(10.2), p1);  // immediately re-joins (no crash)
  g.on_leader_view(at(10.2), p1, p1);
  ASSERT_EQ(g.agreed_leader(), p1);
  g.on_leader_view(at(10.9), p1, p2);
  g.on_leader_view(at(10.9), p2, p2);
  g.on_leader_view(at(10.9), p3, p2);
  g.finish(at(20));
  EXPECT_EQ(g.unjustified_demotions(), 0u);
}

TEST(JustificationWindow, WindowIsConfigurable) {
  group_metrics g = agreed_group();
  g.set_justification_window(msec(100));  // very tight
  g.on_crash(at(10.0), p1);
  g.on_recover(at(10.05), p1);
  g.on_join(at(10.05), p1);
  g.on_leader_view(at(10.05), p1, p1);
  // Switch at t=11: 1 s after the crash — outside the 100 ms window.
  g.on_leader_view(at(11.0), p1, p2);
  g.on_leader_view(at(11.0), p2, p2);
  g.on_leader_view(at(11.0), p3, p2);
  g.finish(at(20));
  EXPECT_EQ(g.unjustified_demotions(), 1u);
}

}  // namespace
}  // namespace omega::metrics
