#include "metrics/group_metrics.hpp"

#include <gtest/gtest.h>

namespace omega::metrics {
namespace {

constexpr process_id p1{1};
constexpr process_id p2{2};
constexpr process_id p3{3};

time_point at(int s) { return time_origin + sec(s); }

// A three-process group that agrees on p1 from t=0.
group_metrics agreed_group() {
  group_metrics g;
  g.on_join(at(0), p1);
  g.on_join(at(0), p2);
  g.on_join(at(0), p3);
  g.on_leader_view(at(0), p1, p1);
  g.on_leader_view(at(0), p2, p1);
  g.on_leader_view(at(0), p3, p1);
  g.begin(at(0));
  return g;
}

TEST(GroupMetrics, FullAgreementFullAvailability) {
  group_metrics g = agreed_group();
  g.finish(at(100));
  EXPECT_DOUBLE_EQ(g.leader_availability(), 1.0);
  EXPECT_EQ(g.unjustified_demotions(), 0u);
  EXPECT_EQ(g.agreed_leader(), p1);  // state survives finish()
}

TEST(GroupMetrics, AgreedLeaderExposed) {
  group_metrics g = agreed_group();
  EXPECT_EQ(g.agreed_leader(), p1);
}

TEST(GroupMetrics, DisagreementBreaksAvailability) {
  group_metrics g = agreed_group();
  g.on_leader_view(at(50), p3, p2);  // p3 dissents
  g.on_leader_view(at(75), p3, p1);  // p3 returns
  g.finish(at(100));
  EXPECT_NEAR(g.leader_availability(), 0.75, 1e-9);
  // Re-agreement on the same leader is a blip, not a demotion.
  EXPECT_EQ(g.unjustified_demotions(), 0u);
}

TEST(GroupMetrics, MissingViewBlocksAgreement) {
  group_metrics g;
  g.on_join(at(0), p1);
  g.on_join(at(0), p2);
  g.on_leader_view(at(0), p1, p1);
  g.begin(at(0));  // p2 has no view yet
  g.on_leader_view(at(10), p2, p1);
  g.finish(at(20));
  EXPECT_NEAR(g.leader_availability(), 0.5, 1e-9);
}

TEST(GroupMetrics, DeadLeaderViewIsNoAgreement) {
  group_metrics g = agreed_group();
  g.on_crash(at(10), p1);  // everyone still views p1, but p1 is dead
  g.finish(at(20));
  EXPECT_NEAR(g.leader_availability(), 0.5, 1e-9);
}

TEST(GroupMetrics, LeaderCrashOpensRecoverySample) {
  group_metrics g = agreed_group();
  g.on_crash(at(10), p1);
  g.on_leader_view(at(11), p2, p2);
  g.on_leader_view(at(12), p3, p2);  // agreement on p2 at t=12
  g.finish(at(20));
  EXPECT_EQ(g.leader_crashes(), 1u);
  ASSERT_EQ(g.recovery_times().count(), 1u);
  EXPECT_NEAR(g.recovery_times().mean(), 2.0, 1e-9);
  // Old leader crashed: the change is justified.
  EXPECT_EQ(g.unjustified_demotions(), 0u);
  EXPECT_EQ(g.justified_changes(), 1u);
}

TEST(GroupMetrics, UnjustifiedDemotionDetected) {
  group_metrics g = agreed_group();
  // p1 stays alive, but everyone switches to p2 (e.g. a smaller-id rejoin
  // in S1 or an FD mistake).
  g.on_leader_view(at(10), p1, p2);
  g.on_leader_view(at(10), p2, p2);
  g.on_leader_view(at(11), p3, p2);
  g.finish(at(20));
  EXPECT_EQ(g.unjustified_demotions(), 1u);
  EXPECT_EQ(g.justified_changes(), 0u);
  EXPECT_GT(g.mistakes_per_hour(), 0.0);
}

TEST(GroupMetrics, NonLeaderCrashNoRecoverySample) {
  group_metrics g = agreed_group();
  g.on_crash(at(10), p3);
  g.finish(at(20));
  EXPECT_EQ(g.leader_crashes(), 0u);
  EXPECT_EQ(g.recovery_times().count(), 0u);
  // p1 and p2 still agree on p1.
  EXPECT_DOUBLE_EQ(g.leader_availability(), 1.0);
}

TEST(GroupMetrics, RecoveredProcessMustRejoinAndView) {
  group_metrics g = agreed_group();
  g.on_crash(at(10), p3);
  g.on_recover(at(15), p3);
  // p3 recovered but has not rejoined: agreement unaffected.
  EXPECT_EQ(g.agreed_leader(), p1);
  g.on_join(at(16), p3);
  // Joined but no view yet: agreement lost.
  EXPECT_EQ(g.agreed_leader(), std::nullopt);
  g.on_leader_view(at(17), p3, p1);
  EXPECT_EQ(g.agreed_leader(), p1);
  g.finish(at(20));
  EXPECT_EQ(g.unjustified_demotions(), 0u);
}

TEST(GroupMetrics, LeaderLeaveIsJustified) {
  group_metrics g = agreed_group();
  g.on_leave(at(10), p1);
  g.on_leader_view(at(11), p2, p2);
  g.on_leader_view(at(11), p3, p2);
  g.finish(at(20));
  EXPECT_EQ(g.unjustified_demotions(), 0u);
  EXPECT_EQ(g.justified_changes(), 1u);
  EXPECT_EQ(g.leader_crashes(), 0u);  // not a crash
}

TEST(GroupMetrics, RecoveryContinuesAcrossSecondCrash) {
  group_metrics g = agreed_group();
  g.on_crash(at(10), p1);
  // The would-be successor crashes too before agreement forms.
  g.on_crash(at(12), p2);
  g.on_leader_view(at(15), p3, p3);
  g.finish(at(20));
  ASSERT_EQ(g.recovery_times().count(), 1u);
  EXPECT_NEAR(g.recovery_times().mean(), 5.0, 1e-9);  // 10 -> 15
}

TEST(GroupMetrics, EmptyGroupHasNoLeader) {
  group_metrics g;
  g.begin(at(0));
  g.finish(at(10));
  EXPECT_DOUBLE_EQ(g.leader_availability(), 0.0);
}

TEST(GroupMetrics, MistakesPerHourNormalization) {
  group_metrics g = agreed_group();
  g.on_leader_view(at(10), p1, p2);
  g.on_leader_view(at(10), p2, p2);
  g.on_leader_view(at(10), p3, p2);
  g.finish(at(1800));  // half an hour
  EXPECT_NEAR(g.mistakes_per_hour(), 2.0, 1e-9);
}

TEST(GroupMetrics, OutageDurationsTracked) {
  group_metrics g = agreed_group();
  g.on_leader_view(at(10), p3, p2);  // agreement lost
  g.on_leader_view(at(13), p3, p1);  // restored (same leader)
  g.finish(at(20));
  ASSERT_EQ(g.outage_durations().count(), 1u);
  EXPECT_NEAR(g.outage_durations().mean(), 3.0, 1e-9);
}

}  // namespace
}  // namespace omega::metrics
