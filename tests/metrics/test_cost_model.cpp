// Cost-model tests: the work-proxy CPU accounting and exact bandwidth
// accounting behind Figure 6.
#include <gtest/gtest.h>

#include "metrics/cost_model.hpp"

namespace omega::metrics {
namespace {

net::traffic_totals traffic(std::uint64_t sent, std::uint64_t sent_bytes,
                            std::uint64_t recv, std::uint64_t recv_bytes) {
  net::traffic_totals t;
  t.datagrams_sent = sent;
  t.bytes_sent = sent_bytes;
  t.datagrams_received = recv;
  t.bytes_received = recv_bytes;
  return t;
}

TEST(CostModel, ZeroTrafficZeroCost) {
  cost_model m;
  EXPECT_DOUBLE_EQ(m.cpu_percent(traffic(0, 0, 0, 0), sec(60)), 0.0);
  EXPECT_DOUBLE_EQ(cost_model::sent_kb_per_second(traffic(0, 0, 0, 0), sec(60)),
                   0.0);
}

TEST(CostModel, CpuScalesLinearlyWithDatagrams) {
  cost_model m;
  const double one = m.cpu_percent(traffic(1000, 100000, 1000, 100000), sec(60));
  const double two = m.cpu_percent(traffic(2000, 200000, 2000, 200000), sec(60));
  EXPECT_NEAR(two, 2.0 * one, 1e-12);
}

TEST(CostModel, CpuCountsBothDirections) {
  cost_model m;
  const double tx = m.cpu_percent(traffic(1000, 100000, 0, 0), sec(60));
  const double rx = m.cpu_percent(traffic(0, 0, 1000, 100000), sec(60));
  EXPECT_DOUBLE_EQ(tx, rx) << "send and receive cost the same per datagram";
}

TEST(CostModel, KnownValue) {
  // 10^6 us of work over 10^8 us elapsed = 1% CPU.
  cost_model m;
  m.us_per_datagram = 10.0;
  m.us_per_kilobyte = 0.0;
  const auto t = traffic(100000, 0, 0, 0);  // 10^5 datagrams * 10us = 10^6 us
  EXPECT_NEAR(m.cpu_percent(t, sec(100)), 1.0, 1e-9);
}

TEST(CostModel, BandwidthCountsSentOnly) {
  // The paper reports traffic *generated* per workstation.
  const auto t = traffic(100, 61440, 100, 1024000);
  EXPECT_NEAR(cost_model::sent_kb_per_second(t, sec(60)), 1.0, 1e-12);
}

TEST(CostModel, ShorterWindowHigherRate) {
  const auto t = traffic(100, 61440, 0, 0);
  EXPECT_GT(cost_model::sent_kb_per_second(t, sec(30)),
            cost_model::sent_kb_per_second(t, sec(60)));
}

TEST(CostModel, ZeroElapsedIsSafe) {
  cost_model m;
  EXPECT_DOUBLE_EQ(m.cpu_percent(traffic(10, 100, 10, 100), duration{0}), 0.0);
  EXPECT_DOUBLE_EQ(cost_model::sent_kb_per_second(traffic(10, 100, 0, 0),
                                                  duration{0}),
                   0.0);
}

}  // namespace
}  // namespace omega::metrics
