// UDP transport tests over localhost sockets, plus one full-stack
// mini-election on the real-time runtime (mirrors examples/udp_live.cpp at
// test scale and speed).
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "election/elector.hpp"
#include "runtime/real_time.hpp"
#include "runtime/udp_transport.hpp"
#include "service/service.hpp"

namespace omega::runtime {
namespace {

udp_roster make_roster(std::uint16_t base, std::size_t n) {
  udp_roster roster;
  for (std::size_t i = 0; i < n; ++i) {
    roster[node_id{i}] = udp_endpoint{
        "127.0.0.1", static_cast<std::uint16_t>(base + i)};
  }
  return roster;
}

TEST(UdpTransport, LoopbackDelivery) {
  const auto roster = make_roster(41000, 2);
  real_time_engine ea, eb;
  udp_transport ta(ea, node_id{0}, roster);
  udp_transport tb(eb, node_id{1}, roster);

  std::atomic<int> received{0};
  node_id got_from;
  std::vector<std::byte> got_payload;  // span is only valid in the handler
  std::mutex mu;
  eb.post([&] {
    tb.set_receive_handler([&](const net::datagram& d) {
      std::lock_guard<std::mutex> l(mu);
      got_from = d.from;
      got_payload.assign(d.payload.begin(), d.payload.end());
      received.fetch_add(1);
    });
  });
  eb.drain(msec(20));

  const std::vector<std::byte> payload = {std::byte{1}, std::byte{2},
                                          std::byte{3}};
  ta.send(node_id{1}, payload);

  for (int i = 0; i < 100 && received.load() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_GE(received.load(), 1);
  std::lock_guard<std::mutex> l(mu);
  EXPECT_EQ(got_from, node_id{0});
  EXPECT_EQ(got_payload, payload);
}

TEST(UdpTransport, UnknownSenderClassifiedInvalid) {
  // A datagram from an address not in the roster must not be attributed to
  // a roster node (it arrives as node_id::invalid() / is ignorable).
  const auto roster = make_roster(41100, 2);
  real_time_engine ea, eb;
  udp_transport ta(ea, node_id{0}, roster);

  // Node 1's endpoint in *ta's* roster is 41101, but we bind an impostor
  // socket on another port by building a second transport with a shifted
  // roster that maps node 0 to the victim's address.
  udp_roster impostor_roster;
  impostor_roster[node_id{0}] = udp_endpoint{"127.0.0.1", 41150};  // us
  impostor_roster[node_id{1}] = roster.at(node_id{0});             // victim
  udp_transport impostor(eb, node_id{0}, impostor_roster);

  std::atomic<int> classified_known{0};
  std::atomic<int> classified_unknown{0};
  ea.post([&] {
    ta.set_receive_handler([&](const net::datagram& d) {
      if (d.from.valid()) {
        classified_known.fetch_add(1);
      } else {
        classified_unknown.fetch_add(1);
      }
    });
  });
  ea.drain(msec(20));

  const std::vector<std::byte> payload = {std::byte{9}};
  impostor.send(node_id{1}, payload);
  for (int i = 0; i < 100 &&
                  classified_known.load() + classified_unknown.load() == 0;
       ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(classified_known.load(), 0)
      << "datagram from an unlisted source was attributed to a roster node";
}

TEST(UdpTransport, SendToUnknownNodeIsNoop) {
  const auto roster = make_roster(41200, 1);
  real_time_engine eng;
  udp_transport t(eng, node_id{0}, roster);
  const std::vector<std::byte> payload = {std::byte{1}};
  t.send(node_id{42}, payload);  // not in roster: silently dropped
}

TEST(UdpTransport, SendErrorsAreCounted) {
  // A >64KB datagram fails at the socket (EMSGSIZE). The old transport
  // void-cast the failure away; now it must land in the error counters.
  const auto roster = make_roster(41250, 2);
  real_time_engine eng;
  udp_transport t(eng, node_id{0}, roster);
  const std::vector<std::byte> oversized(70 * 1024, std::byte{1});
  t.send(node_id{1}, oversized);
  const auto stats = t.stats();
  EXPECT_EQ(stats.send_err_other, 1u);
  EXPECT_EQ(stats.datagrams_sent, 0u);
  EXPECT_EQ(stats.send_errors(), 1u);

  const std::vector<std::byte> small(8, std::byte{2});
  t.send(node_id{1}, small);
  EXPECT_EQ(t.stats().datagrams_sent, 1u);
  EXPECT_EQ(t.stats().bytes_sent, 8u);
}

TEST(UdpTransport, BindConflictThrows) {
  const auto roster = make_roster(41300, 1);
  real_time_engine e1, e2;
  udp_transport first(e1, node_id{0}, roster);
  EXPECT_THROW(udp_transport(e2, node_id{0}, roster), std::system_error);
}

TEST(UdpRuntime, FullStackElection) {
  // Three real services over real UDP agree on a leader within two seconds
  // of wall-clock time, using a 300 ms detection bound.
  constexpr std::size_t kNodes = 3;
  const auto roster_map = make_roster(41400, kNodes);
  std::vector<node_id> roster;
  for (std::size_t i = 0; i < kNodes; ++i) roster.push_back(node_id{i});

  struct ws {
    std::unique_ptr<real_time_engine> engine;
    std::unique_ptr<udp_transport> transport;
    std::unique_ptr<service::leader_election_service> svc;
  };
  std::vector<ws> cluster(kNodes);
  for (std::size_t i = 0; i < kNodes; ++i) {
    cluster[i].engine = std::make_unique<real_time_engine>();
    cluster[i].transport = std::make_unique<udp_transport>(
        *cluster[i].engine, node_id{i}, roster_map);
    auto& c = cluster[i];
    c.engine->post([&c, &roster, i] {
      service::service_config cfg;
      cfg.self = node_id{i};
      cfg.roster = roster;
      cfg.alg = election::algorithm::omega_lc;
      c.svc = std::make_unique<service::leader_election_service>(
          *c.engine, *c.engine, *c.transport, cfg);
      c.svc->register_process(process_id{i});
      service::join_options opts;
      opts.qos.detection_time = msec(300);
      c.svc->join_group(process_id{i}, group_id{1}, opts);
    });
  }

  std::this_thread::sleep_for(std::chrono::seconds(2));

  std::vector<std::optional<process_id>> views(kNodes);
  for (std::size_t i = 0; i < kNodes; ++i) {
    auto& c = cluster[i];
    c.engine->post([&c, &views, i] {
      views[i] = c.svc->leader(group_id{1});
    });
    c.engine->drain(msec(50));
  }
  ASSERT_TRUE(views[0].has_value());
  EXPECT_EQ(views[1], views[0]);
  EXPECT_EQ(views[2], views[0]);

  for (std::size_t i = 0; i < kNodes; ++i) {
    auto& c = cluster[i];
    c.engine->post([&c] { c.svc.reset(); });
    c.engine->drain(msec(50));
    c.transport.reset();
    c.engine->stop();
  }
}

}  // namespace
}  // namespace omega::runtime
