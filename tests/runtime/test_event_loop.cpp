// Shared event-loop driver tests: timer/post/sync semantics, then the
// scale-out integration — many real services on ONE loop thread over real
// UDP sockets electing, losing and re-electing a leader, plus the teardown
// edge cases (transport destroyed mid-traffic, port-0 rebind).
//
// Every wait is wall-clock bounded: a hang fails the test instead of the
// suite.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <optional>
#include <thread>
#include <vector>

#include "election/elector.hpp"
#include "runtime/event_loop.hpp"
#include "runtime/loop_transport.hpp"
#include "service/service.hpp"

namespace omega::runtime {
namespace {

using namespace std::chrono_literals;

/// Spin-waits (wall clock) until `cond` holds or `deadline` elapses.
template <typename Cond>
bool wait_until(Cond cond, std::chrono::milliseconds deadline) {
  const auto start = std::chrono::steady_clock::now();
  while (std::chrono::steady_clock::now() - start < deadline) {
    if (cond()) return true;
    std::this_thread::sleep_for(2ms);
  }
  return cond();
}

node_id nid(std::size_t i) { return node_id{static_cast<std::uint32_t>(i)}; }
process_id pid(std::size_t i) {
  return process_id{static_cast<std::uint32_t>(i)};
}

udp_roster make_roster(std::uint16_t base, std::size_t n) {
  udp_roster roster;
  for (std::size_t i = 0; i < n; ++i) {
    roster[nid(i)] =
        udp_endpoint{"127.0.0.1", static_cast<std::uint16_t>(base + i)};
  }
  return roster;
}

TEST(EventLoop, TimersFireInOrder) {
  event_loop loop;
  std::vector<int> order;
  std::atomic<int> fired{0};
  loop.sync([&] {
    loop.schedule_after(msec(30), [&] {
      order.push_back(2);
      fired.fetch_add(1);
    });
    loop.schedule_after(msec(5), [&] {
      order.push_back(1);
      fired.fetch_add(1);
    });
  });
  ASSERT_TRUE(wait_until([&] { return fired.load() == 2; }, 2000ms));
  loop.sync([&] {
    ASSERT_EQ(order.size(), 2u);
    EXPECT_EQ(order[0], 1);
    EXPECT_EQ(order[1], 2);
  });
}

TEST(EventLoop, CancelPreventsFiring) {
  event_loop loop;
  std::atomic<bool> cancelled_ran{false};
  std::atomic<bool> kept_ran{false};
  loop.sync([&] {
    const timer_id id =
        loop.schedule_after(msec(20), [&] { cancelled_ran.store(true); });
    loop.schedule_after(msec(25), [&] { kept_ran.store(true); });
    loop.cancel(id);
  });
  ASSERT_TRUE(wait_until([&] { return kept_ran.load(); }, 2000ms));
  EXPECT_FALSE(cancelled_ran.load());
}

TEST(EventLoop, TimerSlackClustersDueTimers) {
  // Two timers within the slack window of each other run on the same
  // wakeup — the alignment that keeps co-scheduled heartbeats batched.
  event_loop::options opts;
  opts.timer_slack = msec(5);
  event_loop loop(opts);
  std::atomic<int> fired{0};
  std::uint64_t iter_first = 0;
  std::uint64_t iter_second = 0;
  loop.sync([&] {
    loop.schedule_after(msec(20), [&] {
      iter_first = loop.stats_snapshot().iterations;
      fired.fetch_add(1);
    });
    loop.schedule_after(msec(22), [&] {
      iter_second = loop.stats_snapshot().iterations;
      fired.fetch_add(1);
    });
  });
  ASSERT_TRUE(wait_until([&] { return fired.load() == 2; }, 2000ms));
  EXPECT_EQ(iter_first, iter_second)
      << "timers 2ms apart (slack 5ms) should fire on one loop iteration";
}

TEST(EventLoop, PostRunsOnLoopThread) {
  event_loop loop;
  std::atomic<bool> ran{false};
  bool on_loop = false;
  loop.post([&] {
    on_loop = loop.on_loop_thread();
    ran.store(true);
  });
  ASSERT_TRUE(wait_until([&] { return ran.load(); }, 2000ms));
  EXPECT_TRUE(on_loop);
}

TEST(EventLoop, SyncRunsInlineOnLoopThread) {
  // sync() from inside a loop callback must not deadlock.
  event_loop loop;
  std::atomic<bool> done{false};
  loop.sync([&] {
    loop.sync([&] { done.store(true); });
  });
  EXPECT_TRUE(done.load());
}

TEST(EventLoop, NowIsMonotonic) {
  event_loop loop;
  const time_point a = loop.now();
  std::this_thread::sleep_for(5ms);
  const time_point b = loop.now();
  EXPECT_GT(b, a);
}

TEST(EventLoop, StopIsIdempotentAndDropsTimers) {
  event_loop loop;
  std::atomic<bool> ran{false};
  loop.sync([&] {
    loop.schedule_after(sec(60), [&] { ran.store(true); });
  });
  loop.stop();
  loop.stop();  // second stop is a no-op
  EXPECT_FALSE(ran.load());
  EXPECT_FALSE(loop.running());
}

TEST(LoopPool, RoundRobinAssignment) {
  loop_pool pool(2);
  EXPECT_EQ(pool.size(), 2u);
  EXPECT_EQ(&pool.at(0), &pool.at(2));
  EXPECT_EQ(&pool.at(1), &pool.at(3));
  EXPECT_NE(&pool.at(0), &pool.at(1));
  pool.stop_all();
}

// ---- integration: services sharing one loop ---------------------------------

struct instance {
  std::unique_ptr<loop_udp_transport> transport;
  std::unique_ptr<service::leader_election_service> svc;
};

/// Builds `n` services on `loop`, all members of group 1, with port-0
/// sockets (the roster is distributed after binding).
std::vector<instance> start_cluster(event_loop& loop, std::size_t n,
                                    duration detection) {
  udp_roster bind_roster;
  for (std::size_t i = 0; i < n; ++i) {
    bind_roster[nid(i)] = udp_endpoint{"127.0.0.1", 0};
  }
  std::vector<instance> cluster(n);
  udp_roster real_roster;
  for (std::size_t i = 0; i < n; ++i) {
    cluster[i].transport =
        std::make_unique<loop_udp_transport>(loop, nid(i), bind_roster);
    real_roster[nid(i)] =
        udp_endpoint{"127.0.0.1", cluster[i].transport->bound_port()};
  }
  std::vector<node_id> roster;
  for (std::size_t i = 0; i < n; ++i) roster.push_back(nid(i));
  loop.sync([&] {
    for (std::size_t i = 0; i < n; ++i) {
      cluster[i].transport->set_roster(real_roster);
    }
    for (std::size_t i = 0; i < n; ++i) {
      service::service_config cfg;
      cfg.self = nid(i);
      cfg.roster = roster;
      cfg.alg = election::algorithm::omega_lc;
      cluster[i].svc = std::make_unique<service::leader_election_service>(
          loop, loop, *cluster[i].transport, cfg);
      cluster[i].svc->register_process(pid(i));
      service::join_options opts;
      opts.qos.detection_time = detection;
      cluster[i].svc->join_group(pid(i), group_id{1}, opts);
    }
  });
  return cluster;
}

/// All live services agree on one valid leader? (Runs on the loop.)
bool agreed(event_loop& loop, std::vector<instance>& cluster,
            std::optional<process_id>* who = nullptr) {
  bool ok = false;
  loop.sync([&] {
    std::optional<process_id> first;
    ok = true;
    for (auto& inst : cluster) {
      if (!inst.svc) continue;
      const auto view = inst.svc->leader(group_id{1});
      if (!view.has_value()) {
        ok = false;
        return;
      }
      if (!first.has_value()) first = view;
      if (view != first) {
        ok = false;
        return;
      }
    }
    ok = ok && first.has_value();
    if (who != nullptr) *who = first;
  });
  return ok;
}

TEST(EventLoopCluster, ElectKillReelectOnSharedLoop) {
  // Eight services, one loop thread, real UDP: elect a leader, kill its
  // node (service + socket torn down on the live loop), and the survivors
  // must agree on a new one.
  constexpr std::size_t kNodes = 8;
  event_loop loop;
  auto cluster = start_cluster(loop, kNodes, msec(300));

  std::optional<process_id> first;
  ASSERT_TRUE(wait_until([&] { return agreed(loop, cluster, &first); }, 10000ms))
      << "no initial agreement within the deadline";
  ASSERT_TRUE(first.has_value());

  // Kill the leader's whole node: destroy the service, then its transport
  // — from the loop thread, while the others keep sending to its address
  // (teardown mid-traffic).
  const auto victim = static_cast<std::size_t>(first->value());
  ASSERT_LT(victim, kNodes);
  loop.sync([&] {
    cluster[victim].svc.reset();
    cluster[victim].transport.reset();
  });

  // Survivors keep trusting the dead leader until the FD times out, so the
  // condition is agreement on a *different* leader.
  std::optional<process_id> second;
  ASSERT_TRUE(wait_until(
      [&] { return agreed(loop, cluster, &second) && second != first; },
      15000ms))
      << "no re-election after the leader was killed";
  ASSERT_TRUE(second.has_value());
  EXPECT_NE(*second, *first);

  loop.sync([&] {
    for (auto& inst : cluster) {
      inst.svc.reset();
      inst.transport.reset();
    }
  });
  loop.stop();
}

TEST(EventLoopCluster, TeardownMidReceiveIsClean) {
  // Destroy one endpoint's transport on the loop while a peer floods it:
  // datagrams in flight for the dead fd must be dropped without touching
  // freed state (ASan exercises this).
  event_loop loop;
  auto roster = make_roster(0, 2);  // port 0: ephemeral
  auto a = std::make_unique<loop_udp_transport>(loop, node_id{0}, roster);
  auto b = std::make_unique<loop_udp_transport>(loop, node_id{1}, roster);
  udp_roster real_roster;
  real_roster[node_id{0}] = udp_endpoint{"127.0.0.1", a->bound_port()};
  real_roster[node_id{1}] = udp_endpoint{"127.0.0.1", b->bound_port()};
  std::atomic<int> received{0};
  loop.sync([&] {
    a->set_roster(real_roster);
    b->set_roster(real_roster);
    b->set_receive_handler(
        [&](const net::datagram&) { received.fetch_add(1); });
  });
  const std::vector<std::byte> payload(32, std::byte{0xAB});
  for (int burst = 0; burst < 10; ++burst) {
    loop.sync([&] {
      for (int i = 0; i < 20; ++i) a->send(node_id{1}, payload);
    });
  }
  ASSERT_TRUE(wait_until([&] { return received.load() > 0; }, 2000ms));
  // Tear b down from the loop thread while a's last burst may still be in
  // the socket buffer, then keep sending to the dead address.
  loop.sync([&] { b.reset(); });
  loop.sync([&] {
    for (int i = 0; i < 20; ++i) a->send(node_id{1}, payload);
  });
  std::this_thread::sleep_for(50ms);
  loop.sync([&] { a.reset(); });
  loop.stop();
}

TEST(EventLoopCluster, PortZeroRebindDelivers) {
  // Bind everything on port 0, then distribute the real ports via
  // set_roster — the pattern the fig14 bench and tests use to avoid
  // hard-coded port clashes.
  event_loop loop;
  auto roster = make_roster(0, 2);
  loop_udp_transport a(loop, node_id{0}, roster);
  loop_udp_transport b(loop, node_id{1}, roster);
  ASSERT_NE(a.bound_port(), 0);
  ASSERT_NE(b.bound_port(), 0);
  ASSERT_NE(a.bound_port(), b.bound_port());

  udp_roster real_roster;
  real_roster[node_id{0}] = udp_endpoint{"127.0.0.1", a.bound_port()};
  real_roster[node_id{1}] = udp_endpoint{"127.0.0.1", b.bound_port()};
  std::atomic<int> received{0};
  node_id got_from;
  loop.sync([&] {
    a.set_roster(real_roster);
    b.set_roster(real_roster);
    b.set_receive_handler([&](const net::datagram& d) {
      got_from = d.from;
      received.fetch_add(1);
    });
  });
  const std::vector<std::byte> payload = {std::byte{7}};
  loop.sync([&] { a.send(node_id{1}, payload); });
  ASSERT_TRUE(wait_until([&] { return received.load() >= 1; }, 2000ms));
  loop.sync([&] { EXPECT_EQ(got_from, node_id{0}); });
}

}  // namespace
}  // namespace omega::runtime
