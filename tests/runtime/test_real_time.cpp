// Real-time engine tests: timer ordering, cancellation, cross-thread post,
// and clock monotonicity. These use real wall-clock time, so delays are
// kept tiny and assertions generous.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "runtime/real_time.hpp"

namespace omega::runtime {
namespace {

TEST(RealTime, ClockAdvances) {
  real_time_engine eng;
  const auto a = eng.now();
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const auto b = eng.now();
  EXPECT_GE(b - a, msec(10));
}

TEST(RealTime, TimersFireInDeadlineOrder) {
  real_time_engine eng;
  std::vector<int> order;
  std::mutex mu;
  // Generous spacing + polling: the loop thread can be starved on loaded
  // CI machines, and drain() alone may return between firings.
  eng.schedule_after(msec(90), [&] {
    std::lock_guard<std::mutex> l(mu);
    order.push_back(3);
  });
  eng.schedule_after(msec(30), [&] {
    std::lock_guard<std::mutex> l(mu);
    order.push_back(1);
  });
  eng.schedule_after(msec(60), [&] {
    std::lock_guard<std::mutex> l(mu);
    order.push_back(2);
  });
  for (int i = 0; i < 400; ++i) {
    {
      std::lock_guard<std::mutex> l(mu);
      if (order.size() == 3) break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  std::lock_guard<std::mutex> l(mu);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(RealTime, CancelPreventsFiring) {
  real_time_engine eng;
  std::atomic<bool> fired{false};
  const timer_id id = eng.schedule_after(msec(20), [&] { fired = true; });
  eng.cancel(id);
  eng.drain(msec(50));
  EXPECT_FALSE(fired.load());
}

TEST(RealTime, CancelUnknownIdIsSafe) {
  real_time_engine eng;
  eng.cancel(timer_id{123456});  // must not crash or hang
  eng.drain(msec(10));
}

TEST(RealTime, PostRunsOnLoopThread) {
  real_time_engine eng;
  std::atomic<bool> ran{false};
  std::thread::id loop_thread;
  eng.post([&] {
    loop_thread = std::this_thread::get_id();
    ran = true;
  });
  eng.drain(msec(20));
  ASSERT_TRUE(ran.load());
  EXPECT_NE(loop_thread, std::this_thread::get_id());
}

TEST(RealTime, PostFromManyThreads) {
  real_time_engine eng;
  std::atomic<int> count{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 50; ++i) {
        eng.post([&] { count.fetch_add(1); });
      }
    });
  }
  for (auto& t : threads) t.join();
  eng.drain(msec(50));
  EXPECT_EQ(count.load(), 200);
}

TEST(RealTime, TimerCanRearmItself) {
  real_time_engine eng;
  std::atomic<int> fires{0};
  std::function<void()> tick = [&] {
    if (fires.fetch_add(1) < 4) eng.schedule_after(msec(5), tick);
  };
  eng.schedule_after(msec(5), tick);
  // Poll rather than drain(): the chain is never "quiescent" until it ends.
  for (int i = 0; i < 200 && fires.load() < 5; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_GE(fires.load(), 5);
}

TEST(RealTime, StopDropsPendingWork) {
  real_time_engine eng;
  std::atomic<bool> fired{false};
  eng.schedule_after(sec(10), [&] { fired = true; });
  eng.stop();
  EXPECT_FALSE(fired.load());
}

}  // namespace
}  // namespace omega::runtime
