// Batched loop transport tests: the encode-once refcount contract (one
// pooled buffer crosses the whole multicast fan-out and exactly one
// sendmmsg), the per-errno send accounting, unknown-peer drops (counted
// and traced), the per-datagram baseline mode, and the obs export bridge.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/runtime_export.hpp"
#include "obs/sink.hpp"
#include "obs/trace.hpp"
#include "runtime/event_loop.hpp"
#include "runtime/loop_transport.hpp"

namespace omega::runtime {
namespace {

using namespace std::chrono_literals;

template <typename Cond>
bool wait_until(Cond cond, std::chrono::milliseconds deadline) {
  const auto start = std::chrono::steady_clock::now();
  while (std::chrono::steady_clock::now() - start < deadline) {
    if (cond()) return true;
    std::this_thread::sleep_for(2ms);
  }
  return cond();
}

/// n transports on `loop`, all port-0 bound with the real roster
/// distributed afterwards.
std::vector<std::unique_ptr<loop_udp_transport>> make_cluster(
    event_loop& loop, std::size_t n) {
  udp_roster bind_roster;
  const auto nid = [](std::size_t i) {
    return node_id{static_cast<std::uint32_t>(i)};
  };
  for (std::size_t i = 0; i < n; ++i) {
    bind_roster[nid(i)] = udp_endpoint{"127.0.0.1", 0};
  }
  std::vector<std::unique_ptr<loop_udp_transport>> out;
  udp_roster real_roster;
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(
        std::make_unique<loop_udp_transport>(loop, nid(i), bind_roster));
    real_roster[nid(i)] =
        udp_endpoint{"127.0.0.1", out.back()->bound_port()};
  }
  loop.sync([&] {
    for (auto& t : out) t->set_roster(real_roster);
  });
  return out;
}

TEST(LoopTransport, EncodeOnceMulticastSharesOneBuffer) {
  // The tentpole contract: a multicast to g-1 destinations is ONE encode,
  // one pooled buffer referenced from every ring entry, and one
  // sendmmsg(2) — never a per-destination copy or syscall.
  event_loop loop;
  auto cluster = make_cluster(loop, 5);
  std::atomic<int> received{0};
  loop.sync([&] {
    for (std::size_t i = 1; i < cluster.size(); ++i) {
      cluster[i]->set_receive_handler(
          [&](const net::datagram&) { received.fetch_add(1); });
    }
  });

  const std::vector<node_id> dsts = {node_id{1}, node_id{2}, node_id{3},
                                     node_id{4}};
  const std::vector<std::byte> raw(100, std::byte{0x5A});
  std::uint64_t sendmmsg_before = 0;
  std::uint32_t refs_while_queued = 0;
  std::size_t queued = 0;
  loop.sync([&] {
    sendmmsg_before = loop.stats_snapshot().sendmmsg_calls;
    net::shared_payload payload = cluster[0]->pool().copy(raw);
    EXPECT_EQ(payload.use_count(), 1u);
    cluster[0]->multicast(dsts, payload);
    // Our handle + one reference per ring entry — and no byte copies: the
    // ring holds the same block.
    refs_while_queued = payload.use_count();
    queued = cluster[0]->queue_depth();
  });
  EXPECT_EQ(refs_while_queued, 5u) << "fan-out must share one buffer";
  EXPECT_EQ(queued, 4u);

  ASSERT_TRUE(wait_until([&] { return received.load() == 4; }, 5000ms));
  std::uint64_t sendmmsg_after = 0;
  std::uint64_t sendto_after = 0;
  loop.sync([&] {
    const auto s = loop.stats_snapshot();
    sendmmsg_after = s.sendmmsg_calls;
    sendto_after = s.sendto_calls;
    EXPECT_EQ(cluster[0]->queue_depth(), 0u);
    EXPECT_EQ(cluster[0]->stats().datagrams_sent, 4u);
  });
  EXPECT_EQ(sendmmsg_after - sendmmsg_before, 1u)
      << "4-way fan-out must cost exactly one sendmmsg";
  EXPECT_EQ(sendto_after, 0u) << "batched mode must never fall back to sendto";
}

TEST(LoopTransport, OversizedSendCountedAsError) {
  // A >64KB datagram fails with EMSGSIZE; it must be counted (errno class
  // "other"), dropped, and must not wedge the ring for later datagrams.
  event_loop loop;
  auto cluster = make_cluster(loop, 2);
  std::atomic<int> received{0};
  loop.sync([&] {
    cluster[1]->set_receive_handler(
        [&](const net::datagram&) { received.fetch_add(1); });
  });
  const std::vector<std::byte> oversized(70 * 1024, std::byte{1});
  const std::vector<std::byte> small(16, std::byte{2});
  loop.sync([&] {
    cluster[0]->send(node_id{1}, oversized);
    cluster[0]->send(node_id{1}, small);
  });
  ASSERT_TRUE(wait_until([&] { return received.load() >= 1; }, 5000ms));
  loop.sync([&] {
    EXPECT_GE(cluster[0]->stats().send_err_other, 1u);
    EXPECT_EQ(cluster[0]->stats().send_err_eagain, 0u);
    EXPECT_EQ(cluster[0]->stats().datagrams_sent, 1u);
  });
}

TEST(LoopTransport, UnknownPeerCountedAndTraced) {
  // Datagrams from an (addr, port) outside the roster must be dropped,
  // counted, and leave a trace event — not vanish.
  event_loop loop;
  auto cluster = make_cluster(loop, 2);

  // The impostor knows the victim's address but is not in its roster.
  udp_roster impostor_roster;
  impostor_roster[node_id{9}] = udp_endpoint{"127.0.0.1", 0};
  impostor_roster[node_id{0}] =
      udp_endpoint{"127.0.0.1", cluster[0]->bound_port()};
  loop_udp_transport impostor(loop, node_id{9}, impostor_roster);

  obs::ring_recorder ring(64);
  obs::sink sink(nullptr, &ring, node_id{0});
  std::atomic<int> handler_calls{0};
  loop.sync([&] {
    cluster[0]->set_sink(&sink);
    cluster[0]->set_receive_handler(
        [&](const net::datagram&) { handler_calls.fetch_add(1); });
  });
  const std::vector<std::byte> payload = {std::byte{0xEE}};
  loop.sync([&] { impostor.send(node_id{0}, payload); });

  ASSERT_TRUE(wait_until(
      [&] {
        std::uint64_t drops = 0;
        loop.sync([&] { drops = cluster[0]->stats().rx_unknown_peer; });
        return drops >= 1;
      },
      5000ms));
  EXPECT_EQ(handler_calls.load(), 0)
      << "unknown-peer datagram must not reach the service";
  bool traced = false;
  loop.sync([&] {
    for (const auto& ev : ring.events()) {
      if (ev.kind == obs::event_kind::unknown_peer_drop &&
          ev.node == node_id{0}) {
        traced = true;
      }
    }
  });
  EXPECT_TRUE(traced) << "drop must leave an unknown_peer_drop trace event";
}

TEST(LoopTransport, BaselineModeUsesPerDatagramSyscalls) {
  event_loop::options opts;
  opts.batching = false;
  event_loop loop(opts);
  auto cluster = make_cluster(loop, 3);
  std::atomic<int> received{0};
  loop.sync([&] {
    for (std::size_t i = 1; i < cluster.size(); ++i) {
      cluster[i]->set_receive_handler(
          [&](const net::datagram&) { received.fetch_add(1); });
    }
  });
  const std::vector<node_id> dsts = {node_id{1}, node_id{2}};
  const std::vector<std::byte> payload(64, std::byte{3});
  loop.sync([&] { cluster[0]->multicast(dsts, payload); });
  ASSERT_TRUE(wait_until([&] { return received.load() == 2; }, 5000ms));
  loop.sync([&] {
    const auto s = loop.stats_snapshot();
    EXPECT_EQ(s.sendmmsg_calls, 0u);
    EXPECT_EQ(s.recvmmsg_calls, 0u);
    EXPECT_EQ(s.sendto_calls, 2u) << "baseline: one sendto per destination";
    EXPECT_GE(s.recvfrom_calls, 2u);
    EXPECT_EQ(cluster[0]->queue_depth(), 0u) << "baseline never queues";
  });
}

TEST(LoopTransport, ExportPublishesRuntimeFamilies) {
  event_loop loop;
  auto cluster = make_cluster(loop, 2);
  std::atomic<int> received{0};
  loop.sync([&] {
    cluster[1]->set_receive_handler(
        [&](const net::datagram&) { received.fetch_add(1); });
  });
  const std::vector<std::byte> payload(32, std::byte{4});
  loop.sync([&] { cluster[0]->send(node_id{1}, payload); });
  ASSERT_TRUE(wait_until([&] { return received.load() == 1; }, 5000ms));

  obs::registry reg;
  loop.sync([&] {
    obs::export_transport_stats(reg, *cluster[0]);
    obs::export_transport_stats(reg, *cluster[1]);
    obs::export_loop_stats(reg, 0, loop.stats_snapshot());
  });
  EXPECT_EQ(reg.get_counter("runtime_transport_datagrams_total",
                            {{"node", "0"}, {"dir", "tx"}})
                .value(),
            1u);
  EXPECT_EQ(reg.get_counter("runtime_transport_datagrams_total",
                            {{"node", "1"}, {"dir", "rx"}})
                .value(),
            1u);
  EXPECT_EQ(reg.get_counter("runtime_send_errors_total",
                            {{"node", "0"}, {"reason", "eagain"}})
                .value(),
            0u);
  EXPECT_GE(reg.get_counter("runtime_syscalls_total",
                            {{"loop", "0"}, {"op", "sendmmsg"}})
                .value(),
            1u);
  EXPECT_GE(reg.get_counter("runtime_syscalls_total",
                            {{"loop", "0"}, {"op", "epoll_wait"}})
                .value(),
            1u);
}

TEST(LoopTransport, SendToUnknownNodeIsNoop) {
  event_loop loop;
  auto cluster = make_cluster(loop, 1);
  const std::vector<std::byte> payload = {std::byte{1}};
  loop.sync([&] {
    cluster[0]->send(node_id{42}, payload);
    EXPECT_EQ(cluster[0]->queue_depth(), 0u);
    EXPECT_EQ(cluster[0]->stats().datagrams_sent, 0u);
  });
}

}  // namespace
}  // namespace omega::runtime
