#include "adaptive/retuner.hpp"

#include <gtest/gtest.h>

namespace omega::adaptive {
namespace {

fd::link_estimate link(double loss, duration delay, std::size_t samples = 1000) {
  fd::link_estimate e;
  e.loss_probability = loss;
  e.delay_mean = delay;
  e.delay_stddev = delay;
  e.samples = samples;
  return e;
}

fd::qos_spec interactive_qos() {
  fd::qos_spec qos;
  qos.detection_time = sec(1);
  qos.mistake_recurrence =
      std::chrono::duration_cast<omega::duration>(std::chrono::hours(2));
  qos.query_accuracy = 0.9999;
  return qos;
}

time_point at(int seconds) { return time_origin + sec(seconds); }

TEST(RetunerSolve, ColdStartBelowSampleFloor) {
  const auto qos = interactive_qos();
  const auto params = retuner::solve(qos, link(0.01, msec(10), /*samples=*/3),
                                     retuner_options{});
  EXPECT_EQ(params, fd::cold_start_params(qos));
}

TEST(RetunerSolve, MinDetectionBeatsColdStartOnGoodLink) {
  const auto qos = interactive_qos();
  const auto params = retuner::solve(qos, link(0.002, usec(25)), retuner_options{});
  ASSERT_TRUE(params.qos_feasible);
  // Same heartbeat rate as the cold-start point...
  EXPECT_EQ(params.eta, qos.detection_time / 4);
  // ...but strictly faster expected detection.
  EXPECT_LT(retuner::expected_detection_s(params),
            retuner::expected_detection_s(fd::cold_start_params(qos)));
  // And the detection bound still holds.
  EXPECT_LE(params.eta + params.delta, qos.detection_time);
}

TEST(RetunerSolve, MinDetectionRespectsQosConstraints) {
  const auto qos = interactive_qos();
  retuner_options opts;
  opts.quantize_inputs = false;  // probe the solver itself
  for (double loss : {0.002, 0.01, 0.05}) {
    for (auto delay : {usec(25), msec(10), msec(50)}) {
      const auto params = retuner::solve(qos, link(loss, delay), opts);
      if (!params.qos_feasible) continue;
      const double q0 = fd::mistake_probability(
          link(loss, delay), fd::delay_tail_model::exponential,
          to_seconds(params.eta), to_seconds(params.delta));
      EXPECT_GE(to_seconds(params.eta) / q0, to_seconds(qos.mistake_recurrence))
          << "loss=" << loss << " delay=" << to_seconds(delay);
      EXPECT_GE(1.0 - q0 / (1.0 - loss), qos.query_accuracy);
      EXPECT_GE(params.eta, qos.detection_time / 4);  // rate budget held
    }
  }
}

TEST(RetunerSolve, HardRateCapFallsBackToFullWindow) {
  // 30% loss cannot meet the QoS within the budgeted rate; the hard cap
  // keeps eta at the budget and surrenders accuracy explicitly.
  const auto qos = interactive_qos();
  const auto params = retuner::solve(qos, link(0.3, msec(100)), retuner_options{});
  EXPECT_FALSE(params.qos_feasible);
  EXPECT_EQ(params.eta, qos.detection_time / 4);
  EXPECT_EQ(params.delta, qos.detection_time - qos.detection_time / 4);
}

TEST(RetunerSolve, SoftRateCapRestoresAccuracyWithFasterHeartbeats) {
  const auto qos = interactive_qos();
  retuner_options opts;
  opts.rate_cap_hard = false;
  const auto params = retuner::solve(qos, link(0.05, msec(10)), opts);
  // The paper solver may exceed the budget (smaller eta) to hold the QoS.
  EXPECT_LT(params.eta, qos.detection_time / 4);
}

TEST(RetunerSolve, OversizedBudgetClampedInsideDetectionWindow) {
  const auto qos = interactive_qos();
  retuner_options opts;
  // Budget beyond the detection bound: must clamp, never emit a negative
  // delta (which would arm monitors with an instant-suspicion timeout).
  opts.eta_budget = sec(2);
  const auto params = retuner::solve(qos, link(0.3, msec(100)), opts);
  EXPECT_GT(params.delta, duration{0});
  EXPECT_LE(params.eta + params.delta, qos.detection_time);

  // Budget above T/2 but inside the window: stays a floor on eta.
  opts.eta_budget = msec(800);
  const auto p2 = retuner::solve(qos, link(0.002, usec(25)), opts);
  EXPECT_GE(p2.eta, msec(800));
  EXPECT_GT(p2.delta, duration{0});
}

TEST(RetunerSolve, WorseLinkNeedsLargerDelta) {
  const auto qos = interactive_qos();
  const auto clean = retuner::solve(qos, link(0.002, usec(25)), retuner_options{});
  const auto mid = retuner::solve(qos, link(0.01, msec(10)), retuner_options{});
  const auto bad = retuner::solve(qos, link(0.01, msec(50)), retuner_options{});
  EXPECT_LT(clean.delta, mid.delta);
  EXPECT_LT(mid.delta, bad.delta);
}

TEST(Retuner, AdoptsInitialPointImmediately) {
  retuner rt(interactive_qos(), retuner_options{});
  const auto adopted = rt.evaluate(link(0.002, usec(25)), at(0));
  ASSERT_TRUE(adopted.has_value());
  EXPECT_EQ(rt.retune_count(), 1u);
  EXPECT_EQ(rt.current(), *adopted);
}

TEST(Retuner, DeadBandHoldsUnderEstimateJitter) {
  retuner rt(interactive_qos(), retuner_options{});
  ASSERT_TRUE(rt.evaluate(link(0.01, msec(10)), at(0)).has_value());
  // Jitter well inside one quantization cell, spread over many dwell
  // windows: never a retune.
  for (int t = 20; t < 200; t += 20) {
    const double loss = 0.008 + 0.002 * ((t / 20) % 2);
    const auto delay = msec(9 + (t / 20) % 2);
    EXPECT_FALSE(rt.evaluate(link(loss, delay), at(t)).has_value()) << t;
  }
  EXPECT_EQ(rt.retune_count(), 1u);
}

TEST(Retuner, RetunesOnSustainedLossShift) {
  retuner rt(interactive_qos(), retuner_options{});
  ASSERT_TRUE(rt.evaluate(link(0.002, usec(25)), at(0)).has_value());
  const auto before = rt.current();
  // Loss jumps two decades and stays there: after the dwell the point moves.
  const auto adopted = rt.evaluate(link(0.05, msec(10)), at(30));
  ASSERT_TRUE(adopted.has_value());
  EXPECT_GT(adopted->delta, before.delta);
  EXPECT_EQ(rt.retune_count(), 2u);
}

TEST(Retuner, DwellBoundsOscillation) {
  // Acceptance criterion: on a stationary lossy link, no more than one
  // retune per min-dwell window no matter how noisy the estimates are.
  retuner_options opts;
  opts.min_dwell = sec(10);
  retuner rt(interactive_qos(), opts);

  std::uint64_t evaluations = 0;
  for (int t = 0; t <= 120; ++t) {  // one evaluation per second
    // Adversarial estimates: alternate between two points whose solutions
    // differ far beyond any dead band.
    const auto est =
        t % 2 == 0 ? link(0.002, usec(25)) : link(0.1, msec(100));
    (void)rt.evaluate(est, at(t));
    ++evaluations;
  }
  EXPECT_EQ(evaluations, 121u);
  // 120 s / 10 s dwell = at most 12 windows, plus the initial adoption.
  EXPECT_LE(rt.retune_count(), 13u);
  EXPECT_GE(rt.retune_count(), 2u);  // it did keep adapting
}

TEST(Retuner, StationaryLinkSettlesToOnePoint) {
  retuner rt(interactive_qos(), retuner_options{});
  // Stationary lossy link with realistic estimator noise around 1%.
  for (int t = 0; t <= 300; t += 2) {
    const double noise = 0.002 * (((t / 2) % 5) - 2);  // +/-0.4% wobble
    (void)rt.evaluate(link(0.011 + noise, msec(10)), at(t));
  }
  // Initial adoption + at most a couple of convergence steps; definitely
  // not one per dwell window (which would be ~30).
  EXPECT_LE(rt.retune_count(), 3u);
}

TEST(RetunerClass, BackgroundMinimizesHeartbeatRate) {
  // Same QoS, same link: the background class picks the largest feasible
  // eta (the paper's cheapest point), the interactive class holds the rate
  // budget and spends it on detection latency.
  const auto qos = interactive_qos();
  retuner bg(qos, qos_class::background, retuner_options{});
  retuner ia(qos, qos_class::interactive, retuner_options{});
  const auto est = link(0.002, usec(25));
  const auto bg_point = bg.evaluate(est, at(0));
  const auto ia_point = ia.evaluate(est, at(0));
  ASSERT_TRUE(bg_point.has_value());
  ASSERT_TRUE(ia_point.has_value());
  EXPECT_GT(bg_point->eta, ia_point->eta)
      << "background must send fewer heartbeats than interactive";
  EXPECT_TRUE(bg_point->qos_feasible);
  EXPECT_LT(retuner::expected_detection_s(*ia_point),
            retuner::expected_detection_s(*bg_point));
  EXPECT_EQ(bg.service_class(), qos_class::background);
}

TEST(RetunerPerPeer, IndependentStatePerLink) {
  retuner rt(interactive_qos(), retuner_options{});
  const node_id lan{1};
  const node_id wan{2};
  const auto lan_point = rt.evaluate_peer(lan, link(0.002, usec(25)), at(0));
  const auto wan_point = rt.evaluate_peer(wan, link(0.01, msec(50)), at(0));
  ASSERT_TRUE(lan_point.has_value());
  ASSERT_TRUE(wan_point.has_value());
  // The WAN link pays its own delta; the LAN link keeps its small one.
  EXPECT_LT(lan_point->delta, wan_point->delta);
  EXPECT_EQ(rt.current(lan), *lan_point);
  EXPECT_EQ(rt.current(wan), *wan_point);

  // Per-peer dwell windows are independent: a WAN re-tune right now must
  // not consume the LAN link's dwell budget (and vice versa).
  const auto wan_shift = rt.evaluate_peer(wan, link(0.1, msec(100)), at(30));
  EXPECT_TRUE(wan_shift.has_value());
  EXPECT_FALSE(rt.evaluate_peer(lan, link(0.002, usec(26)), at(30)).has_value())
      << "LAN point should stand: estimate moved within its quantization cell";
  EXPECT_EQ(rt.current(lan), *lan_point);
}

TEST(RetunerPerPeer, ForgetPeerFallsBackToGroupPoint) {
  retuner rt(interactive_qos(), retuner_options{});
  ASSERT_TRUE(rt.evaluate(link(0.01, msec(10)), at(0)).has_value());
  const node_id peer{5};
  ASSERT_TRUE(rt.evaluate_peer(peer, link(0.002, usec(25)), at(0)).has_value());
  EXPECT_TRUE(rt.has_peer(peer));
  EXPECT_NE(rt.current(peer), rt.current());
  rt.forget_peer(peer);
  EXPECT_FALSE(rt.has_peer(peer));
  EXPECT_EQ(rt.current(peer), rt.current());
  // Damping restarts on return: the next evaluation adopts immediately.
  EXPECT_TRUE(rt.evaluate_peer(peer, link(0.002, usec(25)), at(1)).has_value());
}

TEST(Retuner, ParetoTailQuantizationGridConverges) {
  // ROADMAP's WAN validation: the retuner's coarse 1.5^n delay grid was
  // chosen to survive heavy tails. Under the Pareto tail model a
  // stationary WAN link with +/-10% delay wobble (inside one grid cell)
  // must settle to one operating point — no dwell-window flapping.
  retuner_options opts;
  opts.configurator.tail = fd::delay_tail_model::pareto;
  retuner rt(interactive_qos(), opts);
  for (int t = 0; t <= 300; t += 2) {
    const double wobble = 1.0 + 0.05 * (((t / 2) % 5) - 2);  // +/-10% spread
    const auto delay = from_seconds(0.020 * wobble);
    (void)rt.evaluate(link(0.008, delay), at(t));
  }
  // Initial adoption + at most a couple of convergence steps across ~30
  // dwell windows; flapping would show up as one retune per window.
  EXPECT_LE(rt.retune_count(), 3u);
  EXPECT_TRUE(rt.current().qos_feasible);
  // And the adopted point really holds the QoS under the heavy tail.
  EXPECT_TRUE(retuner::point_feasible(interactive_qos(), link(0.008, msec(20)),
                                      rt.current(), opts));
}

TEST(Retuner, StalePointReplacedWhenQosBreaks) {
  retuner_options opts;
  opts.min_dwell = sec(10);
  retuner rt(interactive_qos(), opts);
  ASSERT_TRUE(rt.evaluate(link(0.002, usec(25)), at(0)).has_value());
  const auto lan_point = rt.current();
  ASSERT_TRUE(lan_point.qos_feasible);
  // The link degrades so much that the LAN point violates the QoS: the
  // retuner must not keep it for calm's sake, dead band or not.
  const auto adopted = rt.evaluate(link(0.1, msec(100)), at(20));
  ASSERT_TRUE(adopted.has_value());
  EXPECT_FALSE(retuner::point_feasible(interactive_qos(),
                                       link(0.1, msec(100)), lan_point, opts));
}

}  // namespace
}  // namespace omega::adaptive
