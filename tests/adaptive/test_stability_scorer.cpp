#include "adaptive/stability_scorer.hpp"

#include <gtest/gtest.h>

namespace omega::adaptive {
namespace {

time_point at(int seconds) { return time_origin + sec(seconds); }

TEST(StabilityScorer, UnknownProcessScoresZero) {
  stability_scorer scorer;
  EXPECT_DOUBLE_EQ(scorer.score(process_id{9}, at(0)), 0.0);
}

TEST(StabilityScorer, UptimeGrowsScore) {
  stability_scorer scorer;
  scorer.on_member_seen(process_id{1}, node_id{1}, 1, at(0));
  const double young = scorer.score(process_id{1}, at(5));
  const double older = scorer.score(process_id{1}, at(120));
  const double old_ = scorer.score(process_id{1}, at(600));
  EXPECT_LT(young, older);
  EXPECT_LT(older, old_);
  EXPECT_GT(old_, 0.9);  // fully stable: near the top of the scale
  EXPECT_LE(old_, 1.0);
}

TEST(StabilityScorer, AccusationAdvancesAreInstabilityEvents) {
  stability_scorer scorer;
  scorer.on_member_seen(process_id{1}, node_id{1}, 1, at(0));
  // First accusation time seen is the baseline (join time), not an event.
  scorer.on_accusation_observed(process_id{1}, 1, at(0), at(1));
  EXPECT_DOUBLE_EQ(scorer.instability_events(process_id{1}, at(1)), 0.0);
  const double before = scorer.score(process_id{1}, at(300));

  // An *advance* is one event; a repeat of the same value is not.
  scorer.on_accusation_observed(process_id{1}, 1, at(200), at(300));
  scorer.on_accusation_observed(process_id{1}, 1, at(200), at(301));
  EXPECT_NEAR(scorer.instability_events(process_id{1}, at(301)), 1.0, 0.01);
  EXPECT_LT(scorer.score(process_id{1}, at(301)), before);
}

TEST(StabilityScorer, EventsDecayOverTime) {
  stability_scorer::options opts;
  opts.event_halflife = sec(100);
  stability_scorer scorer(opts);
  scorer.on_member_seen(process_id{1}, node_id{1}, 1, at(0));
  scorer.on_accusation_observed(process_id{1}, 1, at(0), at(0));
  scorer.on_accusation_observed(process_id{1}, 1, at(10), at(10));
  scorer.on_accusation_observed(process_id{1}, 1, at(20), at(20));
  EXPECT_NEAR(scorer.instability_events(process_id{1}, at(20)), 2.0, 0.2);
  // Two half-lives later the history has faded to a quarter.
  EXPECT_NEAR(scorer.instability_events(process_id{1}, at(220)), 0.5, 0.1);
  EXPECT_GT(scorer.score(process_id{1}, at(220)),
            scorer.score(process_id{1}, at(21)));
}

TEST(StabilityScorer, ReincarnationResetsHistory) {
  stability_scorer scorer;
  scorer.on_member_seen(process_id{1}, node_id{1}, 1, at(0));
  scorer.on_accusation_observed(process_id{1}, 1, at(0), at(0));
  scorer.on_accusation_observed(process_id{1}, 1, at(50), at(50));
  const double crashed_score = scorer.score(process_id{1}, at(600));

  // The process recovers with a higher incarnation: uptime restarts, the
  // accusation history of the dead incarnation is gone.
  scorer.on_member_seen(process_id{1}, node_id{1}, 2, at(600));
  EXPECT_DOUBLE_EQ(scorer.instability_events(process_id{1}, at(600)), 0.0);
  EXPECT_LT(scorer.score(process_id{1}, at(605)), crashed_score);

  // Stale evidence from the old incarnation is ignored.
  scorer.on_accusation_observed(process_id{1}, 1, at(700), at(700));
  EXPECT_DOUBLE_EQ(scorer.instability_events(process_id{1}, at(700)), 0.0);
}

TEST(StabilityScorer, LossyLinkLowersScore) {
  stability_scorer scorer;
  scorer.on_member_seen(process_id{1}, node_id{1}, 1, at(0));
  scorer.on_member_seen(process_id{2}, node_id{2}, 1, at(0));
  scorer.set_link_loss(node_id{1}, 0.0);
  scorer.set_link_loss(node_id{2}, 0.2);  // past saturation: term zeroed
  EXPECT_GT(scorer.score(process_id{1}, at(300)),
            scorer.score(process_id{2}, at(300)));
}

TEST(StabilityScorer, RemovedMemberForgotten) {
  stability_scorer scorer;
  scorer.on_member_seen(process_id{1}, node_id{1}, 1, at(0));
  scorer.on_member_removed(process_id{1}, 1);
  EXPECT_EQ(scorer.tracked_count(), 0u);
  EXPECT_DOUBLE_EQ(scorer.score(process_id{1}, at(10)), 0.0);
}

}  // namespace
}  // namespace omega::adaptive
