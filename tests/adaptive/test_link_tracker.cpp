#include "adaptive/link_tracker.hpp"

#include <gtest/gtest.h>

namespace omega::adaptive {
namespace {

fd::link_estimate est(double loss, duration delay, std::size_t samples = 200) {
  fd::link_estimate e;
  e.loss_probability = loss;
  e.delay_mean = delay;
  e.delay_stddev = delay;
  e.samples = samples;
  return e;
}

time_point at(int seconds) { return time_origin + sec(seconds); }

TEST(LinkTracker, TracksObservedPeer) {
  link_tracker tracker;
  tracker.observe(node_id{1}, est(0.01, msec(5)), at(0));
  const auto tracked = tracker.tracked(node_id{1}, at(1));
  ASSERT_TRUE(tracked.has_value());
  EXPECT_DOUBLE_EQ(tracked->loss_probability, 0.01);
  EXPECT_EQ(tracked->delay_mean, msec(5));
  EXPECT_EQ(tracked->samples, 200u);
  EXPECT_FALSE(tracker.tracked(node_id{2}, at(1)).has_value());
}

TEST(LinkTracker, LowConfidenceSnapshotsIgnored) {
  // Below the confidence floor the estimator is still reporting its prior,
  // not the link; those snapshots must not enter the window at all.
  link_tracker tracker;
  tracker.observe(node_id{1}, est(0.5, msec(100), /*samples=*/3), at(0));
  EXPECT_FALSE(tracker.tracked(node_id{1}, at(1)).has_value());
  tracker.observe(node_id{1}, est(0.01, msec(5), /*samples=*/60), at(2));
  const auto tracked = tracker.tracked(node_id{1}, at(3));
  ASSERT_TRUE(tracked.has_value());
  EXPECT_DOUBLE_EQ(tracked->loss_probability, 0.01);  // prior never blended in
}

TEST(LinkTracker, WindowSmoothsAndAgesOut) {
  link_tracker::options opts;
  opts.window = sec(10);
  link_tracker tracker(opts);
  tracker.observe(node_id{1}, est(0.02, msec(10)), at(0));
  tracker.observe(node_id{1}, est(0.04, msec(20)), at(1));
  auto tracked = tracker.tracked(node_id{1}, at(2));
  ASSERT_TRUE(tracked.has_value());
  EXPECT_NEAR(tracked->loss_probability, 0.03, 1e-12);
  EXPECT_EQ(tracked->delay_mean, msec(15));

  // The older snapshot ages past the window; only the newer one remains.
  tracked = tracker.tracked(node_id{1}, at(11) + msec(500));
  ASSERT_TRUE(tracked.has_value());
  EXPECT_NEAR(tracked->loss_probability, 0.04, 1e-12);
}

TEST(LinkTracker, StalenessDecaysConfidenceNotEstimate) {
  link_tracker::options opts;
  opts.stale_after = sec(10);
  opts.stale_decay = 0.5;
  link_tracker tracker(opts);
  tracker.observe(node_id{1}, est(0.01, msec(5), 256), at(0));

  const auto fresh = tracker.tracked(node_id{1}, at(5));
  ASSERT_TRUE(fresh.has_value());
  EXPECT_EQ(fresh->samples, 256u);

  // One decay period past the grace interval: confidence halves.
  const auto stale = tracker.tracked(node_id{1}, at(20));
  ASSERT_TRUE(stale.has_value());
  EXPECT_EQ(stale->samples, 128u);
  EXPECT_DOUBLE_EQ(stale->loss_probability, 0.01);  // estimate itself kept

  // Confidence decays monotonically with silence toward zero.
  const auto very_stale = tracker.tracked(node_id{1}, at(120));
  ASSERT_TRUE(very_stale.has_value());
  EXPECT_LT(very_stale->samples, 2u);
}

TEST(LinkTracker, AggregateTakesWorstLink) {
  link_tracker::options opts;
  opts.aggregate_quantile = 1.0;  // strict worst link
  link_tracker tracker(opts);
  tracker.observe(node_id{1}, est(0.001, msec(1), 100), at(0));
  tracker.observe(node_id{2}, est(0.05, msec(30), 200), at(0));
  tracker.observe(node_id{3}, est(0.01, msec(80), 50), at(0));

  const auto agg = tracker.aggregate(at(1));
  EXPECT_DOUBLE_EQ(agg.loss_probability, 0.05);  // worst loss: peer 2
  EXPECT_EQ(agg.delay_mean, msec(80));           // worst delay: peer 3
  EXPECT_EQ(agg.samples, 50u);                   // least-known link: peer 3
}

TEST(LinkTracker, AggregateQuantileRejectsSingleOutlier) {
  link_tracker::options opts;
  opts.aggregate_quantile = 0.9;
  link_tracker tracker(opts);
  // Ten well-behaved peers, one excursion.
  for (std::uint32_t i = 1; i <= 10; ++i) {
    tracker.observe(node_id{i}, est(0.01, msec(10)), at(0));
  }
  tracker.observe(node_id{11}, est(0.30, msec(200)), at(0));
  const auto agg = tracker.aggregate(at(1));
  EXPECT_DOUBLE_EQ(agg.loss_probability, 0.01);
  EXPECT_EQ(agg.delay_mean, msec(10));
}

TEST(LinkTracker, AggregateExcludesUnconfidentAndEmpty) {
  link_tracker tracker;
  EXPECT_EQ(tracker.aggregate(at(0)).samples, 0u);  // nothing observed

  // A peer that went silent long ago decays below the floor and drops out
  // of the aggregate instead of dragging it to the cold-start path.
  tracker.observe(node_id{1}, est(0.01, msec(5), 256), at(0));
  tracker.observe(node_id{2}, est(0.02, msec(10), 256), at(299));
  const auto agg = tracker.aggregate(at(300));
  EXPECT_DOUBLE_EQ(agg.loss_probability, 0.02);  // peer 1 aged out entirely
  EXPECT_EQ(agg.samples, 256u);
}

TEST(LinkTracker, ForgetDropsPeer) {
  link_tracker tracker;
  tracker.observe(node_id{1}, est(0.01, msec(5)), at(0));
  EXPECT_EQ(tracker.peer_count(), 1u);
  tracker.forget(node_id{1});
  EXPECT_EQ(tracker.peer_count(), 0u);
  EXPECT_FALSE(tracker.tracked(node_id{1}, at(1)).has_value());
}

TEST(LinkTracker, DelayTrendSeesRouteFlap) {
  link_tracker tracker;
  // Stable delay: no trend.
  for (int i = 0; i < 10; ++i) {
    tracker.observe(node_id{1}, est(0.01, msec(10)), at(i));
  }
  EXPECT_LT(tracker.delay_trend_stddev(node_id{1}, at(10)), msec(1));
  // Flapping delay: large trend stddev even though each snapshot's own
  // stddev is moderate.
  for (int i = 0; i < 10; ++i) {
    tracker.observe(node_id{2}, est(0.01, i % 2 == 0 ? msec(5) : msec(50)), at(i));
  }
  EXPECT_GT(tracker.delay_trend_stddev(node_id{2}, at(10)), msec(10));
}

}  // namespace
}  // namespace omega::adaptive
