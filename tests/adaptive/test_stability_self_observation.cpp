// Regression test for the stability-scorer self-observation gap: ALIVEs
// are not self-delivered, so without explicit local feeding the scorer
// never observes the local pid, stability(self) stays 0.0, and omega_lc's
// stage-1 pre-filter can drop a node's own candidacy once peers' scores
// exceed the tolerance.
#include <gtest/gtest.h>

#include "harness/experiment.hpp"

namespace omega::harness {
namespace {

scenario ranking_sc() {
  scenario sc;
  sc.name = "stability-self";
  sc.nodes = 4;
  sc.alg = election::algorithm::omega_lc;
  sc.links = net::link_profile::lan();
  sc.churn = churn_profile::none();
  sc.adaptive.mode = adaptive::tuning_mode::adaptive;
  sc.stability_ranking = true;
  sc.seed = 23;
  return sc;
}

TEST(StabilitySelfObservation, LocalPidScoresLikeAPeer) {
  experiment exp(ranking_sc());
  auto& sim = exp.simulator();
  sim.run_until(time_origin + sec(180));

  for (std::uint32_t i = 0; i < 4; ++i) {
    auto* svc = exp.node_service(node_id{i});
    ASSERT_NE(svc, nullptr);
    auto* engine = svc->adaptation();
    ASSERT_NE(engine, nullptr);
    const double self_score = engine->stability(process_id{i});
    // After 3 minutes of quiet uptime the self score must be established
    // (uptime term alone reaches ~0.39 of the 0.5 weight), not the 0.0 of
    // an unobserved process...
    EXPECT_GT(self_score, 0.4) << "node " << i;
    // ...and must sit in the same band as the peers' view of anyone else:
    // the stage-1 pre-filter (tolerance 0.25) must never drop the local
    // candidacy of a healthy node.
    for (std::uint32_t peer = 0; peer < 4; ++peer) {
      if (peer == i) continue;
      const double peer_score = engine->stability(process_id{peer});
      EXPECT_GT(self_score, peer_score - 0.25)
          << "node " << i << " would pre-filter its own candidacy vs peer "
          << peer;
    }
  }

  // The cluster still agrees on a leader with ranking enabled.
  EXPECT_TRUE(exp.group().agreed_leader().has_value());
}

}  // namespace
}  // namespace omega::harness
