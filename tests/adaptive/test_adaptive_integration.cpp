// Integration tests of the adaptation engine against the full service
// stack: a mid-run LAN -> lossy phase change must be absorbed by re-tuning
// (detection stays within the QoS bound, heartbeat rate stays within the
// budget), and the stability-ranking flag must steer elections.
#include <gtest/gtest.h>

#include "harness/experiment.hpp"

namespace omega::harness {
namespace {

fd::qos_spec interactive_qos() {
  fd::qos_spec qos;
  qos.detection_time = sec(1);
  qos.mistake_recurrence =
      std::chrono::duration_cast<omega::duration>(std::chrono::hours(2));
  qos.query_accuracy = 0.9999;
  return qos;
}

scenario adaptive_sc(std::size_t nodes = 6) {
  scenario sc;
  sc.name = "adaptive-integration";
  sc.nodes = nodes;
  sc.alg = election::algorithm::omega_lc;
  sc.qos = interactive_qos();
  sc.links = net::link_profile::lan();
  sc.churn = churn_profile::none();
  sc.adaptive.mode = adaptive::tuning_mode::adaptive;
  sc.warmup = sec(30);
  sc.measured = sec(300);
  sc.seed = 7;
  // Mid-run degradation: LAN for 90 s, then a lossy 10 ms / 2% network.
  sc.link_phases.push_back({sec(90), net::link_profile::lossy(msec(10), 0.02)});
  return sc;
}

/// Crashes the current leader and returns how long the survivors took to
/// agree on a new one (simulated seconds).
double measure_recovery(experiment& exp) {
  auto& sim = exp.simulator();
  const auto leader = exp.group().agreed_leader();
  EXPECT_TRUE(leader.has_value());
  const node_id lnode{leader->value()};
  const time_point crash_at = sim.now();
  exp.crash_node(lnode);
  // Step until the survivors agree on a new live leader (bounded wait).
  while (sim.now() < crash_at + sec(10)) {
    sim.run_until(sim.now() + msec(10));
    const auto agreed = exp.group().agreed_leader();
    if (agreed.has_value() && *agreed != *leader) break;
  }
  const double recovery_s = to_seconds(sim.now() - crash_at);
  exp.recover_node(lnode);
  sim.run_until(sim.now() + sec(20));  // let it rejoin cleanly
  return recovery_s;
}

TEST(AdaptiveIntegration, RetunesThroughPhaseChangeAndDetectionRecovers) {
  experiment exp(adaptive_sc());
  auto& sim = exp.simulator();
  exp.group().begin(time_origin);

  // Settle on the LAN and verify the engine tightened delta below the
  // cold-start point at the budgeted rate.
  sim.run_until(time_origin + sec(80));
  auto* svc = exp.node_service(node_id{0});
  ASSERT_NE(svc, nullptr);
  ASSERT_NE(svc->adaptation(), nullptr);
  const auto* rt = svc->adaptation()->retuner_for(group_id{1});
  ASSERT_NE(rt, nullptr);
  const auto lan_params = rt->current();
  EXPECT_TRUE(lan_params.qos_feasible);
  EXPECT_EQ(lan_params.eta, interactive_qos().detection_time / 4);
  EXPECT_LT(lan_params.delta, interactive_qos().detection_time / 2);

  const double lan_recovery = measure_recovery(exp);
  EXPECT_LT(lan_recovery, 1.0) << "LAN-phase detection above the QoS bound";

  // Cross the phase change and give the estimators + dwell time to adapt.
  sim.run_until(time_origin + sec(220));
  svc = exp.node_service(node_id{0});
  ASSERT_NE(svc, nullptr);
  rt = svc->adaptation()->retuner_for(group_id{1});
  ASSERT_NE(rt, nullptr);
  const auto lossy_params = rt->current();
  EXPECT_GT(lossy_params.delta, lan_params.delta)
      << "retuner did not widen delta for the lossy phase";
  EXPECT_GE(lossy_params.eta, interactive_qos().detection_time / 4)
      << "retuner exceeded the heartbeat-rate budget";

  // Detection after the phase change recovers to within the QoS bound
  // (plus one message delay of agreement slack).
  const double lossy_recovery = measure_recovery(exp);
  EXPECT_LT(lossy_recovery, 1.3)
      << "post-degradation detection did not recover";
}

TEST(AdaptiveIntegration, MessageRateStaysWithinBudgetAcrossPhases) {
  experiment exp(adaptive_sc());
  auto& sim = exp.simulator();

  // Measure the ALIVE rate over the whole run, phases included.
  sim.run_until(time_origin + sec(30));
  const std::uint64_t base = exp.total_alive_sent();
  const time_point from = sim.now();
  sim.run_until(time_origin + sec(330));
  const double per_node_per_s =
      static_cast<double>(exp.total_alive_sent() - base) /
      (to_seconds(sim.now() - from) * 6.0);

  // Budget: eta = T/4 = 250 ms => 4 ALIVE/s, plus a little slack for
  // event-driven eager sends.
  EXPECT_LE(per_node_per_s, 4.3);
  // And the cluster did adapt rather than idle.
  EXPECT_GE(exp.total_retunes(), 12u);  // >= initial + solved per engine
}

TEST(AdaptiveIntegration, PerLinkKeepsGoodLinksFastOnMixedTopology) {
  // 4 LAN nodes + 2 nodes behind WAN-grade links. Per-link refinement must
  // keep the LAN monitors at their own small delta while the WAN monitors
  // pay theirs; the group-global baseline drags everyone to the aggregate.
  scenario sc = adaptive_sc(6);
  sc.link_phases.clear();
  sc.wan_nodes = 2;
  sc.wan_links = net::link_profile::lossy(msec(50), 0.01);

  experiment exp(sc);
  exp.simulator().run_until(time_origin + sec(150));
  auto* svc = exp.node_service(node_id{0});
  ASSERT_NE(svc, nullptr);
  const auto lan_params =
      svc->failure_detector().current_params(group_id{1}, node_id{1});
  const auto wan_params =
      svc->failure_detector().current_params(group_id{1}, node_id{5});
  EXPECT_LT(lan_params.delta, wan_params.delta)
      << "the LAN link must not inherit the WAN link's freshness shift";
  EXPECT_TRUE(lan_params.qos_feasible);
  // Both operating points stay within the detection bound.
  EXPECT_LE(lan_params.eta + lan_params.delta, sc.qos.detection_time);
  EXPECT_LE(wan_params.eta + wan_params.delta, sc.qos.detection_time);

  // Group-global baseline on the identical scenario: one point for all.
  scenario global_sc = sc;
  global_sc.adaptive.per_link = false;
  experiment global_exp(global_sc);
  global_exp.simulator().run_until(time_origin + sec(150));
  auto* global_svc = global_exp.node_service(node_id{0});
  ASSERT_NE(global_svc, nullptr);
  const auto global_lan =
      global_svc->failure_detector().current_params(group_id{1}, node_id{1});
  const auto global_wan =
      global_svc->failure_detector().current_params(group_id{1}, node_id{5});
  EXPECT_EQ(global_lan, global_wan)
      << "without per-link refinement every monitor shares the aggregate";
  EXPECT_LT(lan_params.delta, global_lan.delta)
      << "per-link must beat group-global on the good links";
}

TEST(AdaptiveIntegration, BackgroundClassTradesDetectionForTraffic) {
  // Identical clusters, one interactive and one background: background
  // must send measurably fewer heartbeats while staying inside the same
  // detection bound (eta + delta <= T^U_D).
  scenario ia_sc = adaptive_sc(4);
  ia_sc.link_phases.clear();
  scenario bg_sc = ia_sc;
  bg_sc.fd_class = adaptive::qos_class::background;

  experiment ia(ia_sc);
  experiment bg(bg_sc);
  const auto rate_after_settle = [](experiment& exp) {
    auto& sim = exp.simulator();
    sim.run_until(time_origin + sec(120));
    const std::uint64_t base = exp.total_alive_sent();
    const time_point from = sim.now();
    sim.run_until(time_origin + sec(240));
    return static_cast<double>(exp.total_alive_sent() - base) /
           (to_seconds(sim.now() - from) * 4.0);
  };
  const double ia_rate = rate_after_settle(ia);
  const double bg_rate = rate_after_settle(bg);
  EXPECT_LT(bg_rate, ia_rate * 0.8)
      << "background class should relax the heartbeat stream";

  auto* svc = bg.node_service(node_id{0});
  ASSERT_NE(svc, nullptr);
  const auto* rt = svc->adaptation()->retuner_for(group_id{1});
  ASSERT_NE(rt, nullptr);
  EXPECT_EQ(rt->service_class(), adaptive::qos_class::background);
  const auto params = rt->current();
  EXPECT_TRUE(params.qos_feasible);
  EXPECT_LE(params.eta + params.delta, ia_sc.qos.detection_time);
  EXPECT_GT(params.eta, ia_sc.qos.detection_time / 4)
      << "background should send slower than the interactive budget";
}

TEST(AdaptiveIntegration, StabilityRankingPrefersEstablishedLeader) {
  // With stability ranking on, a freshly recovered small-pid candidate must
  // not displace the established leader even transiently: its stability
  // score (uptime term) is far below everyone else's.
  scenario sc = adaptive_sc(4);
  sc.link_phases.clear();
  sc.stability_ranking = true;
  experiment exp(sc);
  auto& sim = exp.simulator();

  sim.run_until(time_origin + sec(60));
  const auto leader = exp.group().agreed_leader();
  ASSERT_TRUE(leader.has_value());

  // Crash the smallest-pid member (the rank-order favourite) and bring it
  // back: omega_lc's accusation times already demote it; the scorer must
  // agree with that choice (coherence check, not a behaviour change).
  const node_id small{0};
  if (leader->value() != 0) {
    exp.crash_node(small);
    sim.run_until(sim.now() + sec(5));
    exp.recover_node(small);
    sim.run_until(sim.now() + sec(30));
    const auto after = exp.group().agreed_leader();
    ASSERT_TRUE(after.has_value());
    EXPECT_NE(after->value(), 0u)
        << "fresh recovery must rank behind the established leader";
  }

  // The scorer itself must rank the established leader above the recovered
  // process.
  auto* svc = exp.node_service(node_id{1});
  ASSERT_NE(svc, nullptr);
  ASSERT_NE(svc->adaptation(), nullptr);
  const double est = svc->adaptation()->stability(*exp.group().agreed_leader());
  const double fresh = svc->adaptation()->stability(process_id{0});
  EXPECT_GT(est, fresh);
}

}  // namespace
}  // namespace omega::harness
