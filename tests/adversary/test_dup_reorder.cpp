// Duplication + reordering vs the incarnation discipline (ISSUE 10): with
// the network duplicating and permuting datagrams throughout, a crashed
// leader's recovered instance must rank behind the successor — no
// stale-incarnation resurrection, trace-checked.
#include <gtest/gtest.h>

#include "adversary/adversary_fixture.hpp"

namespace omega::harness::adversary_testing {
namespace {

constexpr std::size_t kNodes = 8;

scenario dup_scenario(std::uint64_t seed) {
  scenario sc;
  sc.name = "dup-reorder";
  sc.nodes = kNodes;
  sc.alg = election::algorithm::omega_lc;
  sc.churn = churn_profile::none();
  sc.trace = true;
  sc.trace_capacity = 8192;
  sc.seed = seed;

  // At-least-once, out-of-order delivery from t = 0, permanently.
  fault_step dup;
  fault_duplicate dspec;
  dspec.spec.probability = 0.35;
  dspec.spec.max_copies = 3;
  dspec.spec.spread = msec(8);
  dup.action = dspec;
  sc.fault_script.push_back(dup);

  fault_step reorder;
  fault_reorder rspec;
  rspec.spec.window = 4;
  rspec.spec.spacing = msec(3);
  reorder.action = rspec;
  sc.fault_script.push_back(reorder);
  return sc;
}

std::optional<process_id> poll_agreed(experiment& exp, duration budget) {
  const time_point deadline = exp.simulator().now() + budget;
  std::optional<process_id> leader = exp.group().agreed_leader();
  while (!leader.has_value() && exp.simulator().now() < deadline) {
    exp.simulator().run_until(exp.simulator().now() + msec(100));
    leader = exp.group().agreed_leader();
  }
  return leader;
}

TEST(adversary_dup_reorder, no_stale_incarnation_resurrection) {
  for_each_seed([](std::uint64_t seed) {
    experiment exp(dup_scenario(seed));

    // The cluster elects despite pervasive duplication and reordering.
    run_to(exp, sec(40));
    const auto first = poll_agreed(exp, sec(30));
    ASSERT_TRUE(first.has_value());
    ASSERT_NE(exp.fault_plane(), nullptr);
    EXPECT_GT(exp.fault_plane()->totals().duplicated, 0u);
    EXPECT_GT(exp.fault_plane()->totals().reorder_delayed, 0u);

    // Crash the leader; a successor takes over.
    const node_id victim{first->value()};
    exp.crash_node(victim);
    const time_point crashed = exp.simulator().now();
    exp.simulator().run_until(crashed + sec(5));
    const auto second = poll_agreed(exp, sec(30));
    ASSERT_TRUE(second.has_value());
    EXPECT_NE(*second, *first);

    // Recover the old leader (new incarnation, fresh accusation time): it
    // must rejoin at the back of the order. Duplicated stale payloads of
    // the dead incarnation keep bouncing around — none may resurrect it.
    exp.recover_node(victim);
    const time_point recovered = exp.simulator().now();
    exp.simulator().run_until(recovered + sec(40));
    const auto final_leader = exp.group().agreed_leader();
    ASSERT_TRUE(final_leader.has_value());
    EXPECT_EQ(*final_leader, *second);
    // The recovered node itself follows the successor.
    auto* svc = exp.node_service(victim);
    ASSERT_NE(svc, nullptr);
    EXPECT_EQ(svc->leader(group_id{1}), second);

    // Trace-checked: after the failover settled, no node ever adopted the
    // old leader's pid again.
    EXPECT_FALSE(
        adopted_after(exp.merged_trace(), *first, crashed + sec(10)));
  });
}

}  // namespace
}  // namespace omega::harness::adversary_testing
