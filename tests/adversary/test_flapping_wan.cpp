// Flapping WAN links vs the hierarchical election (ISSUE 10): the global
// tier must reach (and keep) a single global leader while inter-region
// links flap on a gentle duty cycle, and must re-converge after a harsh
// flapping episode ends.
#include <gtest/gtest.h>

#include "adversary/adversary_fixture.hpp"

namespace omega::harness::adversary_testing {
namespace {

constexpr std::size_t kNodes = 24;

scenario wan_scenario(std::uint64_t seed) {
  scenario sc;
  sc.name = "flapping-wan";
  sc.nodes = kNodes;
  sc.churn = churn_profile::none();
  sc.hierarchy = hierarchy_profile::three_tier(6, 2);  // regions of 4
  sc.trace = true;
  sc.trace_capacity = 8192;
  sc.warmup = sec(30);
  sc.seed = seed;
  return sc;
}

std::optional<process_id> poll_agreed(experiment& exp, duration budget) {
  const time_point deadline = exp.simulator().now() + budget;
  std::optional<process_id> leader = exp.group().agreed_leader();
  while (!leader.has_value() && exp.simulator().now() < deadline) {
    exp.simulator().run_until(exp.simulator().now() + msec(250));
    leader = exp.group().agreed_leader();
  }
  return leader;
}

TEST(adversary_flapping_wan, harsh_flap_episode_then_reconvergence) {
  for_each_seed([](std::uint64_t seed) {
    scenario sc = wan_scenario(seed);
    fault_step step;
    step.at = sec(45);
    step.lasts = sec(30);
    fault_flap_wan flap;
    flap.spec.period = sec(10);
    flap.spec.up_fraction = 0.3;  // 7 s dark per cycle: brutal for a 1 s FD
    step.action = flap;
    sc.fault_script.push_back(step);

    experiment exp(sc);
    run_to(exp, sec(45));
    const auto pre = poll_agreed(exp, sec(30));
    ASSERT_TRUE(pre.has_value());

    // Ride out the episode (the global tier may churn freely here), then
    // demand a single agreed global leader again.
    run_to(exp, sec(80));
    const auto post = poll_agreed(exp, sec(40));
    ASSERT_TRUE(post.has_value());
    ASSERT_NE(exp.fault_plane(), nullptr);
    EXPECT_GT(exp.fault_plane()->totals().dropped_flap, 0u);

    // And it sticks: quiet global tier once re-converged.
    const time_point converged = exp.simulator().now();
    exp.simulator().run_until(converged + sec(20));
    EXPECT_EQ(exp.group().agreed_leader(), post);
  });
}

TEST(adversary_flapping_wan, eventual_single_leader_while_flapping_persists) {
  for_each_seed([](std::uint64_t seed) {
    scenario sc = wan_scenario(seed);
    fault_step step;
    step.at = sec(45);  // lasts = 0: flaps forever
    fault_flap_wan flap;
    flap.spec.period = sec(2);
    flap.spec.up_fraction = 0.9;  // 200 ms dark per cycle: below the FD's
                                  // freshness slack, so leadership can hold
    step.action = flap;
    sc.fault_script.push_back(step);

    experiment exp(sc);
    run_to(exp, sec(45));
    ASSERT_TRUE(poll_agreed(exp, sec(30)).has_value());

    // Let the permanent flapping bite, then require agreement *while the
    // links keep flapping* — the eventual-leadership claim.
    run_to(exp, sec(90));
    const auto agreed = poll_agreed(exp, sec(40));
    ASSERT_TRUE(agreed.has_value());
    const time_point at = exp.simulator().now();
    exp.simulator().run_until(at + sec(15));
    EXPECT_EQ(exp.group().agreed_leader(), agreed);
    EXPECT_GT(exp.fault_plane()->totals().dropped_flap, 0u);
  });
}

}  // namespace
}  // namespace omega::harness::adversary_testing
