// Declarative fault-script semantics (ISSUE 10 tentpole): at-time
// application, for-duration revert, repetition, region-based partition
// resolution, and the skewed-clock seam — all checked white-box against
// the experiment's installed fault plane.
#include <gtest/gtest.h>

#include <cmath>

#include "adversary/adversary_fixture.hpp"

namespace omega::harness::adversary_testing {
namespace {

scenario base_scenario(std::uint64_t seed, std::size_t nodes = 4) {
  scenario sc;
  sc.name = "fault-script-semantics";
  sc.nodes = nodes;
  sc.churn = churn_profile::none();
  sc.seed = seed;
  return sc;
}

TEST(adversary_fault_script, empty_script_installs_no_adversary) {
  for_each_seed([](std::uint64_t seed) {
    experiment exp(base_scenario(seed));
    EXPECT_EQ(exp.fault_plane(), nullptr);
    EXPECT_EQ(exp.node_clock(node_id{0}), nullptr);
  });
}

TEST(adversary_fault_script, at_time_applies_and_duration_reverts) {
  for_each_seed([](std::uint64_t seed) {
    scenario sc = base_scenario(seed);
    fault_step step;
    step.at = sec(5);
    step.lasts = sec(10);
    step.action = fault_cut{node_id{0}, node_id{1}};
    sc.fault_script.push_back(step);

    experiment exp(sc);
    ASSERT_NE(exp.fault_plane(), nullptr);
    run_to(exp, sec(4));
    EXPECT_FALSE(exp.fault_plane()->link_cut(node_id{0}, node_id{1}));
    run_to(exp, sec(6));
    EXPECT_TRUE(exp.fault_plane()->link_cut(node_id{0}, node_id{1}));
    run_to(exp, sec(16));
    EXPECT_FALSE(exp.fault_plane()->link_cut(node_id{0}, node_id{1}));
  });
}

TEST(adversary_fault_script, zero_duration_means_permanent) {
  for_each_seed([](std::uint64_t seed) {
    scenario sc = base_scenario(seed);
    fault_step step;
    step.at = sec(2);
    step.action = fault_cut{node_id{2}, node_id{3}};
    sc.fault_script.push_back(step);

    experiment exp(sc);
    run_to(exp, sec(60));
    EXPECT_TRUE(exp.fault_plane()->link_cut(node_id{2}, node_id{3}));
  });
}

TEST(adversary_fault_script, repeat_fires_count_plus_one_times) {
  for_each_seed([](std::uint64_t seed) {
    scenario sc = base_scenario(seed);
    fault_step step;
    step.at = sec(2);
    step.lasts = sec(1);
    step.repeat_every = sec(5);
    step.repeat_count = 2;  // firings at 2s, 7s, 12s — three in total
    step.action = fault_cut{node_id{0}, node_id{1}};
    sc.fault_script.push_back(step);

    experiment exp(sc);
    auto* adv = exp.fault_plane();
    ASSERT_NE(adv, nullptr);
    const auto cut = [&] { return adv->link_cut(node_id{0}, node_id{1}); };
    struct probe {
      duration at;
      bool expect_cut;
    };
    const probe probes[] = {
        {msec(2500), true},  {sec(4), false},  {msec(7500), true},
        {sec(9), false},     {msec(12500), true}, {sec(14), false},
        {msec(17500), false},  // no fourth firing
    };
    for (const probe& p : probes) {
      run_to(exp, p.at);
      EXPECT_EQ(cut(), p.expect_cut)
          << "at t=" << to_seconds(p.at) << "s";
    }
  });
}

TEST(adversary_fault_script, partition_resolves_hierarchy_regions) {
  for_each_seed([](std::uint64_t seed) {
    scenario sc = base_scenario(seed, 16);
    sc.hierarchy = hierarchy_profile::three_tier(4, 2);  // regions of 4
    fault_step step;
    step.at = sec(1);
    fault_partition part;
    part.name = "region0-plus-guest";
    part.regions = {0};                  // nodes 0..3
    part.members = {node_id{7}};         // plus one explicit outsider
    step.action = part;
    sc.fault_script.push_back(step);

    experiment exp(sc);
    run_to(exp, sec(2));
    auto* adv = exp.fault_plane();
    ASSERT_NE(adv, nullptr);
    EXPECT_EQ(adv->active_partitions(), 1u);
    // Inside the island: region 0 and the explicit guest.
    EXPECT_FALSE(adv->partitioned(node_id{0}, node_id{3}));
    EXPECT_FALSE(adv->partitioned(node_id{2}, node_id{7}));
    // Across the boundary, both directions.
    EXPECT_TRUE(adv->partitioned(node_id{1}, node_id{5}));
    EXPECT_TRUE(adv->partitioned(node_id{12}, node_id{0}));
    // Outsiders among themselves are untouched.
    EXPECT_FALSE(adv->partitioned(node_id{5}, node_id{12}));
  });
}

TEST(adversary_fault_script, skew_wraps_only_targeted_clocks) {
  for_each_seed([](std::uint64_t seed) {
    scenario sc = base_scenario(seed);
    fault_step step;
    step.at = sec(5);
    step.lasts = sec(5);
    fault_skew skew;
    skew.node = node_id{2};
    skew.offset = msec(250);
    skew.drift = 0.001;  // 1000 ppm
    step.action = skew;
    sc.fault_script.push_back(step);

    experiment exp(sc);
    ASSERT_NE(exp.node_clock(node_id{2}), nullptr);
    EXPECT_EQ(exp.node_clock(node_id{1}), nullptr);

    // Before the step fires the wrapper is an exact pass-through.
    run_to(exp, sec(4));
    EXPECT_EQ(exp.node_clock(node_id{2})->now(), exp.simulator().now());

    // While active: offset plus drift accumulated since the anchor (5s).
    run_to(exp, sec(9));
    const duration ahead =
        exp.node_clock(node_id{2})->now() - exp.simulator().now();
    EXPECT_GE(ahead, msec(250));
    EXPECT_LE(ahead, msec(260));  // 4 s of 1000 ppm = 4 ms on top

    // Reverted: exact pass-through again.
    run_to(exp, sec(11));
    EXPECT_EQ(exp.node_clock(node_id{2})->now(), exp.simulator().now());
  });
}

TEST(adversary_fault_script, wan_flap_covers_inter_region_links_only) {
  for_each_seed([](std::uint64_t seed) {
    scenario sc = base_scenario(seed, 8);
    sc.hierarchy = hierarchy_profile::with_regions(2);  // 0..3 | 4..7
    fault_step step;
    step.at = sec(1);
    fault_flap_wan flap;
    flap.spec.period = sec(10);
    flap.spec.up_fraction = 0.0;  // permanently down while active
    step.action = flap;
    sc.fault_script.push_back(step);

    experiment exp(sc);
    run_to(exp, sec(2));
    auto* adv = exp.fault_plane();
    ASSERT_NE(adv, nullptr);
    const time_point now = exp.simulator().now();
    EXPECT_FALSE(adv->flap_up(node_id{0}, node_id{5}, now));
    EXPECT_FALSE(adv->flap_up(node_id{6}, node_id{2}, now));
    // Intra-region links never flap: no flap registered means "up".
    EXPECT_TRUE(adv->flap_up(node_id{0}, node_id{1}, now));
    EXPECT_TRUE(adv->flap_up(node_id{4}, node_id{7}, now));
  });
}

}  // namespace
}  // namespace omega::harness::adversary_testing
