// Asymmetric (one-way) link cuts vs the election invariants (ISSUE 10):
// the failure detector must degrade gracefully — a bounded reshuffle, then
// renewed agreement — and after the cut heals the cluster must converge on
// a single leader, trace-checked.
#include <gtest/gtest.h>

#include "adversary/adversary_fixture.hpp"
#include "net/adversary.hpp"

namespace omega::harness::adversary_testing {
namespace {

constexpr std::size_t kNodes = 8;

scenario cut_scenario(std::uint64_t seed) {
  scenario sc;
  sc.name = "one-way-cut";
  sc.nodes = kNodes;
  sc.alg = election::algorithm::omega_lc;
  sc.churn = churn_profile::none();
  sc.trace = true;
  sc.trace_capacity = 8192;
  sc.seed = seed;
  return sc;
}

/// Polls the ground-truth oracle until every up node agrees (or timeout).
std::optional<process_id> poll_agreed(experiment& exp, duration budget) {
  const time_point deadline = exp.simulator().now() + budget;
  std::optional<process_id> leader = exp.group().agreed_leader();
  while (!leader.has_value() && exp.simulator().now() < deadline) {
    exp.simulator().run_until(exp.simulator().now() + msec(100));
    leader = exp.group().agreed_leader();
  }
  return leader;
}

TEST(adversary_one_way_cut, muted_leader_is_replaced_and_stays_replaced) {
  for_each_seed([](std::uint64_t seed) {
    net::adversary adv(rng(seed ^ 0xadf00dull));
    experiment exp(cut_scenario(seed));
    exp.network().install_adversary(&adv);

    run_to(exp, sec(40));
    const auto first = poll_agreed(exp, sec(30));
    ASSERT_TRUE(first.has_value());
    const node_id muted{first->value()};  // pid i runs on node i

    // Cut every *outbound* link of the leader: it hears the cluster, the
    // cluster no longer hears it — the classic asymmetric failure.
    for (std::uint32_t i = 0; i < kNodes; ++i) {
      if (node_id{i} != muted) adv.cut_link(muted, node_id{i});
    }
    exp.simulator().run_until(exp.simulator().now() + sec(5));
    const auto second = poll_agreed(exp, sec(40));
    ASSERT_TRUE(second.has_value());
    // The cluster replaced the mute leader — and the mute node itself
    // agrees (its inbound links still work, so it adopts the successor).
    EXPECT_NE(*second, *first);
    EXPECT_GT(adv.totals().dropped_cut, 0u);

    // Heal. The demoted ex-leader's accusation time advanced while muted,
    // so leadership must NOT flap back to it.
    for (std::uint32_t i = 0; i < kNodes; ++i) {
      if (node_id{i} != muted) adv.heal_link(muted, node_id{i});
    }
    const time_point healed = exp.simulator().now();
    exp.simulator().run_until(healed + sec(30));
    const auto final_leader = exp.group().agreed_leader();
    ASSERT_TRUE(final_leader.has_value());
    EXPECT_EQ(*final_leader, *second);

    // Trace-checked: once converged after the heal, no node's leader view
    // moves again — no two simultaneous leaders anywhere in that window.
    EXPECT_EQ(leader_changes_after(exp.merged_trace(), healed + sec(15),
                                   group_id{1}),
              0u);
    const auto views = final_views(exp.merged_trace(), kNodes, group_id{1});
    for (std::uint32_t i = 0; i < kNodes; ++i) {
      EXPECT_EQ(views[i], *final_leader) << "node " << i;
    }
  });
}

TEST(adversary_one_way_cut, deafened_node_degrades_gracefully) {
  for_each_seed([](std::uint64_t seed) {
    net::adversary adv(rng(seed ^ 0xdeaf00ull));
    experiment exp(cut_scenario(seed));
    exp.network().install_adversary(&adv);

    run_to(exp, sec(40));
    const auto first = poll_agreed(exp, sec(30));
    ASSERT_TRUE(first.has_value());
    // Deafen a non-leader node: it hears nobody, everybody hears it.
    const node_id deaf{
        static_cast<std::uint32_t>((first->value() + 1) % kNodes)};

    for (std::uint32_t i = 0; i < kNodes; ++i) {
      if (node_id{i} != deaf) adv.cut_link(node_id{i}, deaf);
    }
    // The deaf node's FD suspects everyone and accuses each candidate at
    // most once (one trust->suspect edge per peer), advancing their
    // accusation times — while its own stays put and its ALIVEs still
    // flow. Graceful degradation = one bounded reshuffle: the cluster
    // re-agrees (on the deaf node, now holding the earliest accusation
    // time), rather than demoting leaders in an endless storm.
    exp.simulator().run_until(exp.simulator().now() + sec(10));
    const auto during = poll_agreed(exp, sec(50));
    ASSERT_TRUE(during.has_value());
    EXPECT_EQ(during->value(), deaf.value());

    for (std::uint32_t i = 0; i < kNodes; ++i) {
      if (node_id{i} != deaf) adv.heal_link(node_id{i}, deaf);
    }
    const time_point healed = exp.simulator().now();
    exp.simulator().run_until(healed + sec(30));
    const auto final_leader = exp.group().agreed_leader();
    ASSERT_TRUE(final_leader.has_value());
    // Stable after the heal: converged and quiet.
    EXPECT_EQ(leader_changes_after(exp.merged_trace(), healed + sec(15),
                                   group_id{1}),
              0u);
  });
}

}  // namespace
}  // namespace omega::harness::adversary_testing
