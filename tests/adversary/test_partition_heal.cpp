// Named partitions vs the agreement invariant (ISSUE 10): during a
// partition each side may elect its own leader (that is unavoidable), but
// after the heal the cluster must converge on a *single* leader — checked
// both through the ground-truth oracle and the merged trace.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "adversary/adversary_fixture.hpp"
#include "net/adversary.hpp"

namespace omega::harness::adversary_testing {
namespace {

constexpr std::size_t kNodes = 9;

scenario partition_scenario(std::uint64_t seed) {
  scenario sc;
  sc.name = "partition-heal";
  sc.nodes = kNodes;
  sc.alg = election::algorithm::omega_lc;
  sc.churn = churn_profile::none();
  sc.trace = true;
  sc.trace_capacity = 8192;
  sc.seed = seed;
  return sc;
}

std::optional<process_id> poll_agreed(experiment& exp, duration budget) {
  const time_point deadline = exp.simulator().now() + budget;
  std::optional<process_id> leader = exp.group().agreed_leader();
  while (!leader.has_value() && exp.simulator().now() < deadline) {
    exp.simulator().run_until(exp.simulator().now() + msec(100));
    leader = exp.group().agreed_leader();
  }
  return leader;
}

TEST(adversary_partition, no_two_leaders_after_heal) {
  for_each_seed([](std::uint64_t seed) {
    net::adversary adv(rng(seed ^ 0x5017ull));
    experiment exp(partition_scenario(seed));
    exp.network().install_adversary(&adv);

    run_to(exp, sec(40));
    const auto pre = poll_agreed(exp, sec(30));
    ASSERT_TRUE(pre.has_value());
    const node_id leader_node{pre->value()};

    // Carve a 3-node minority island around the leader; the 6-node rest
    // must elect a replacement while the island keeps the old leader.
    std::vector<node_id> island{leader_node};
    for (std::uint32_t i = 0; island.size() < 3; ++i) {
      if (node_id{i} != leader_node) island.push_back(node_id{i});
    }
    adv.partition("island", island);
    exp.simulator().run_until(exp.simulator().now() + sec(40));

    // Both sides settled on *their* leader: the island still follows the
    // old one (it hears it; cross-boundary accusations died at the fence)…
    for (const node_id n : island) {
      auto* svc = exp.node_service(n);
      ASSERT_NE(svc, nullptr);
      EXPECT_EQ(svc->leader(group_id{1}), pre) << "island node " << n.value();
    }
    // …while the majority converged on a single replacement.
    std::optional<process_id> majority;
    bool majority_agrees = true;
    for (std::uint32_t i = 0; i < kNodes; ++i) {
      const node_id n{i};
      if (std::find(island.begin(), island.end(), n) != island.end()) continue;
      auto* svc = exp.node_service(n);
      ASSERT_NE(svc, nullptr);
      const auto view = svc->leader(group_id{1});
      if (!view.has_value()) {
        majority_agrees = false;
        break;
      }
      if (!majority.has_value()) {
        majority = view;
      } else if (*majority != *view) {
        majority_agrees = false;
      }
    }
    ASSERT_TRUE(majority_agrees);
    ASSERT_TRUE(majority.has_value());
    EXPECT_NE(*majority, *pre);
    EXPECT_GT(adv.totals().dropped_partition, 0u);

    // Heal. The old leader's accusation time never advanced (the fence ate
    // every accusation), so it still ranks first: the cluster must
    // re-unify behind exactly one leader and go quiet.
    ASSERT_TRUE(adv.heal_partition("island"));
    const time_point healed = exp.simulator().now();
    exp.simulator().run_until(healed + sec(30));
    const auto unified = exp.group().agreed_leader();
    ASSERT_TRUE(unified.has_value());

    const auto trace = exp.merged_trace();
    EXPECT_EQ(leader_changes_after(trace, healed + sec(15), group_id{1}), 0u);
    const auto views = final_views(trace, kNodes, group_id{1});
    for (std::uint32_t i = 0; i < kNodes; ++i) {
      EXPECT_EQ(views[i], *unified) << "node " << i;
    }
  });
}

}  // namespace
}  // namespace omega::harness::adversary_testing
