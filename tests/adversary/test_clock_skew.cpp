// Clock skew/drift vs election fairness (ISSUE 10): skewed clocks shift a
// node's view of time through the clock_source seam. The cluster must keep
// (or quickly restore) agreement when skew appears, and a skewed node must
// stay electable — timestamp offset alone must not permanently bar it from
// leadership.
#include <gtest/gtest.h>

#include "adversary/adversary_fixture.hpp"

namespace omega::harness::adversary_testing {
namespace {

constexpr std::size_t kNodes = 8;
const node_id kAhead{3};   // clock jumps +300 ms and drifts +400 ppm
const node_id kBehind{5};  // clock jumps -300 ms

scenario skew_scenario(std::uint64_t seed) {
  scenario sc;
  sc.name = "clock-skew";
  sc.nodes = kNodes;
  sc.alg = election::algorithm::omega_lc;
  sc.churn = churn_profile::none();
  sc.trace = true;
  sc.trace_capacity = 8192;
  sc.seed = seed;

  fault_step ahead;
  ahead.at = sec(20);
  fault_skew a;
  a.node = kAhead;
  a.offset = msec(300);
  a.drift = 400e-6;
  ahead.action = a;
  sc.fault_script.push_back(ahead);

  fault_step behind;
  behind.at = sec(20);
  fault_skew b;
  b.node = kBehind;
  b.offset = -msec(300);
  behind.action = b;
  sc.fault_script.push_back(behind);
  return sc;
}

std::optional<process_id> poll_agreed(experiment& exp, duration budget) {
  const time_point deadline = exp.simulator().now() + budget;
  std::optional<process_id> leader = exp.group().agreed_leader();
  while (!leader.has_value() && exp.simulator().now() < deadline) {
    exp.simulator().run_until(exp.simulator().now() + msec(100));
    leader = exp.group().agreed_leader();
  }
  return leader;
}

TEST(adversary_clock_skew, agreement_survives_skew_onset) {
  for_each_seed([](std::uint64_t seed) {
    experiment exp(skew_scenario(seed));
    run_to(exp, sec(60));
    const auto agreed = poll_agreed(exp, sec(30));
    ASSERT_TRUE(agreed.has_value());

    // The wrappers report exactly the scripted offsets.
    ASSERT_NE(exp.node_clock(kAhead), nullptr);
    ASSERT_NE(exp.node_clock(kBehind), nullptr);
    const duration ahead_by =
        exp.node_clock(kAhead)->now() - exp.simulator().now();
    EXPECT_GE(ahead_by, msec(300));
    EXPECT_LE(ahead_by, msec(340));  // +400 ppm over the elapsed window
    EXPECT_EQ(exp.node_clock(kBehind)->now() + msec(300),
              exp.simulator().now());

    // Bounded disturbance, then quiet: the onset may cost a reshuffle but
    // must not leave the cluster oscillating.
    const time_point now = exp.simulator().now();
    exp.simulator().run_until(now + sec(20));
    EXPECT_EQ(exp.group().agreed_leader(), agreed);
    EXPECT_EQ(leader_changes_after(exp.merged_trace(), now + sec(5),
                                   group_id{1}),
              0u);
  });
}

TEST(adversary_clock_skew, skewed_nodes_remain_electable) {
  for_each_seed([](std::uint64_t seed) {
    experiment exp(skew_scenario(seed));
    run_to(exp, sec(60));
    ASSERT_TRUE(poll_agreed(exp, sec(30)).has_value());

    // Kill every unskewed node: leadership must land on one of the two
    // skewed survivors — offset alone must not disqualify them.
    for (std::uint32_t i = 0; i < kNodes; ++i) {
      const node_id n{i};
      if (n != kAhead && n != kBehind) exp.crash_node(n);
    }
    exp.simulator().run_until(exp.simulator().now() + sec(10));
    const auto pair_leader = poll_agreed(exp, sec(60));
    ASSERT_TRUE(pair_leader.has_value());
    EXPECT_TRUE(pair_leader->value() == kAhead.value() ||
                pair_leader->value() == kBehind.value());

    // Kill that one too: the remaining skewed node must elect itself —
    // both skew signs end up leading at some point.
    const node_id second_victim{pair_leader->value()};
    const node_id last = second_victim == kAhead ? kBehind : kAhead;
    exp.crash_node(second_victim);
    exp.simulator().run_until(exp.simulator().now() + sec(10));
    const auto last_leader = poll_agreed(exp, sec(60));
    ASSERT_TRUE(last_leader.has_value());
    EXPECT_EQ(last_leader->value(), last.value());
  });
}

}  // namespace
}  // namespace omega::harness::adversary_testing
