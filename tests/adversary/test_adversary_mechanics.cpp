// Unit mechanics of the net::adversary fault plane (ISSUE 10 tentpole):
// each fault class exercised directly against a raw sim_network, with the
// per-class counters checked against observed deliveries.
#include <gtest/gtest.h>

#include <array>
#include <cstddef>
#include <vector>

#include "adversary/adversary_fixture.hpp"
#include "net/adversary.hpp"
#include "net/sim_network.hpp"
#include "proto/wire.hpp"
#include "sim/simulator.hpp"

namespace omega::harness::adversary_testing {
namespace {

/// One received datagram: who sent it, the first payload byte (the tests
/// use it as a message tag), and when it arrived.
struct rx_record {
  node_id from;
  std::uint8_t tag;
  time_point at;
};

/// Four nodes on a lossless LAN with an adversary installed and every
/// endpoint recording what it receives.
struct mesh {
  sim::simulator sim;
  net::sim_network net;
  net::adversary adv;
  std::array<std::vector<rx_record>, 4> rx;

  explicit mesh(std::uint64_t seed)
      : net(sim, 4, net::link_profile::lan(), rng(seed)),
        adv(rng(seed ^ 0x9e3779b97f4a7c15ull)) {
    net.install_adversary(&adv);
    for (std::size_t i = 0; i < 4; ++i) {
      net.endpoint(node_id{static_cast<std::uint32_t>(i)})
          .set_receive_handler([this, i](const net::datagram& d) {
            rx[i].push_back({d.from,
                             std::to_integer<std::uint8_t>(d.payload[0]),
                             sim.now()});
          });
    }
  }

  void send(std::uint32_t from, std::uint32_t to, std::uint8_t tag) {
    const std::byte payload[1] = {std::byte{tag}};
    net.endpoint(node_id{from}).send(node_id{to}, payload);
  }

  void flush() { sim.run_until(sim.now() + sec(1)); }
};

TEST(adversary_mechanics, one_way_cut_drops_exactly_one_direction) {
  for_each_seed([](std::uint64_t seed) {
    mesh m(seed);
    m.adv.cut_link(node_id{0}, node_id{1});
    EXPECT_TRUE(m.adv.link_cut(node_id{0}, node_id{1}));
    EXPECT_FALSE(m.adv.link_cut(node_id{1}, node_id{0}));
    for (int i = 0; i < 10; ++i) {
      m.send(0, 1, 1);
      m.send(1, 0, 2);
    }
    m.flush();
    EXPECT_TRUE(m.rx[1].empty());            // cut direction
    EXPECT_EQ(m.rx[0].size(), 10u);          // reverse direction untouched
    EXPECT_EQ(m.adv.totals().dropped_cut, 10u);

    m.adv.heal_link(node_id{0}, node_id{1});
    m.send(0, 1, 3);
    m.flush();
    EXPECT_EQ(m.rx[1].size(), 1u);
    EXPECT_EQ(m.adv.totals().dropped_cut, 10u);  // no more drops after heal
  });
}

TEST(adversary_mechanics, partition_severs_both_ways_and_heals_by_name) {
  for_each_seed([](std::uint64_t seed) {
    mesh m(seed);
    m.adv.partition("split", {node_id{0}, node_id{1}});
    EXPECT_TRUE(m.adv.partitioned(node_id{0}, node_id{2}));
    EXPECT_TRUE(m.adv.partitioned(node_id{3}, node_id{1}));
    EXPECT_FALSE(m.adv.partitioned(node_id{0}, node_id{1}));
    EXPECT_FALSE(m.adv.partitioned(node_id{2}, node_id{3}));

    m.send(0, 2, 1);  // crosses the boundary: dropped
    m.send(2, 0, 2);  // crosses the boundary: dropped
    m.send(0, 1, 3);  // same side: delivered
    m.send(2, 3, 4);  // same side: delivered
    m.flush();
    EXPECT_TRUE(m.rx[2].empty());
    EXPECT_EQ(m.rx[1].size(), 1u);
    EXPECT_EQ(m.rx[3].size(), 1u);
    EXPECT_EQ(m.adv.totals().dropped_partition, 2u);

    // Partitions compose: a second named partition isolating node 3 severs
    // 2<->3 while the first one still severs 0<->2.
    m.adv.partition("lone", {node_id{3}});
    EXPECT_TRUE(m.adv.partitioned(node_id{2}, node_id{3}));
    EXPECT_TRUE(m.adv.heal_partition("lone"));
    EXPECT_FALSE(m.adv.heal_partition("lone"));  // already healed
    EXPECT_FALSE(m.adv.partitioned(node_id{2}, node_id{3}));

    EXPECT_TRUE(m.adv.heal_partition("split"));
    m.send(0, 2, 5);
    m.flush();
    EXPECT_EQ(m.rx[2].size(), 1u);
  });
}

TEST(adversary_mechanics, flap_duty_cycle_is_deterministic_arithmetic) {
  for_each_seed([](std::uint64_t seed) {
    mesh m(seed);
    net::flap_spec flap;
    flap.period = sec(10);
    flap.up_fraction = 0.5;
    m.adv.flap_link(node_id{0}, node_id{1}, flap);

    // Pure phase arithmetic, no RNG: up on [0,5s), down on [5s,10s).
    EXPECT_TRUE(m.adv.flap_up(node_id{0}, node_id{1}, time_origin + sec(2)));
    EXPECT_FALSE(m.adv.flap_up(node_id{0}, node_id{1}, time_origin + sec(7)));
    EXPECT_TRUE(m.adv.flap_up(node_id{0}, node_id{1}, time_origin + sec(12)));

    m.sim.run_until(time_origin + sec(2));
    m.send(0, 1, 1);  // up window
    m.sim.run_until(time_origin + sec(7));
    m.send(0, 1, 2);  // down window
    m.send(1, 0, 3);  // reverse link never flaps
    m.sim.run_until(time_origin + sec(12));
    m.send(0, 1, 4);  // up again
    m.flush();

    ASSERT_EQ(m.rx[1].size(), 2u);
    EXPECT_EQ(m.rx[1][0].tag, 1u);
    EXPECT_EQ(m.rx[1][1].tag, 4u);
    EXPECT_EQ(m.rx[0].size(), 1u);
    EXPECT_EQ(m.adv.totals().dropped_flap, 1u);

    m.adv.stop_flap(node_id{0}, node_id{1});
    m.sim.run_until(time_origin + sec(17));  // would be a down window
    m.send(0, 1, 5);
    m.flush();
    EXPECT_EQ(m.rx[1].size(), 3u);
  });
}

TEST(adversary_mechanics, duplication_is_bounded_and_counted) {
  for_each_seed([](std::uint64_t seed) {
    mesh m(seed);
    net::duplicate_spec dup;
    dup.probability = 1.0;
    dup.max_copies = 3;
    dup.spread = msec(5);
    m.adv.set_duplication(dup);

    constexpr std::size_t kSends = 50;
    for (std::size_t i = 0; i < kSends; ++i) m.send(0, 1, 1);
    m.flush();

    // Every send is duplicated with 1..max_copies extra copies on top of
    // the original, so deliveries land in [2N, (1+max)N] on a lossless LAN.
    EXPECT_GE(m.rx[1].size(), 2 * kSends);
    EXPECT_LE(m.rx[1].size(), (1 + dup.max_copies) * kSends);
    EXPECT_EQ(m.rx[1].size(), kSends + m.adv.totals().duplicated);

    m.adv.clear_duplication();
    m.rx[1].clear();
    m.send(0, 1, 2);
    m.flush();
    EXPECT_EQ(m.rx[1].size(), 1u);
  });
}

TEST(adversary_mechanics, reorder_window_permutes_a_burst) {
  for_each_seed([](std::uint64_t seed) {
    mesh m(seed);
    net::reorder_spec re;
    re.window = 4;
    re.spacing = msec(20);  // >> the 25 us LAN jitter: order is forced
    m.adv.set_reorder(re);

    // A burst of 4 sent in the same instant arrives reversed: slot k gets
    // an extra (window-1-k) * spacing delay.
    for (std::uint8_t tag = 0; tag < 4; ++tag) m.send(0, 1, tag);
    m.flush();
    ASSERT_EQ(m.rx[1].size(), 4u);
    for (std::uint8_t i = 0; i < 4; ++i) {
      EXPECT_EQ(m.rx[1][i].tag, 3 - i) << "position " << int(i);
    }
    // The last slot of the window travels undelayed; the rest are counted.
    EXPECT_EQ(m.adv.totals().reorder_delayed, 3u);

    m.adv.clear_reorder();
    m.rx[1].clear();
    for (std::uint8_t tag = 0; tag < 4; ++tag) {
      // 1 ms apart: the 25 us LAN jitter cannot invert consecutive sends.
      m.send(0, 1, tag);
      m.sim.run_until(m.sim.now() + msec(1));
    }
    m.flush();
    ASSERT_EQ(m.rx[1].size(), 4u);
    for (std::uint8_t i = 0; i < 4; ++i) EXPECT_EQ(m.rx[1][i].tag, i);
  });
}

TEST(adversary_mechanics, kind_delay_targets_only_the_selected_kind) {
  for_each_seed([](std::uint64_t seed) {
    mesh m(seed);
    m.adv.set_kind_delay(proto::msg_kind::accuse, msec(200));

    // Minimal wire envelopes: [version, type]. peek_kind only reads these
    // two bytes, so the adversary classifies them like real datagrams.
    const std::byte alive[2] = {std::byte{proto::protocol_version},
                                std::byte{1}};  // msg_kind::alive
    const std::byte accuse[2] = {std::byte{proto::protocol_version},
                                 std::byte{2}};  // msg_kind::accuse
    m.net.endpoint(node_id{0}).send(node_id{1}, alive);
    m.net.endpoint(node_id{0}).send(node_id{1}, accuse);
    m.flush();

    ASSERT_EQ(m.rx[1].size(), 2u);
    // tag here is the version byte for both; distinguish by arrival time.
    const duration alive_delay = m.rx[1][0].at - time_origin;
    const duration accuse_delay = m.rx[1][1].at - time_origin;
    EXPECT_LT(alive_delay, msec(50));
    EXPECT_GE(accuse_delay, msec(200));
    EXPECT_EQ(m.adv.totals().kind_delayed, 1u);

    m.adv.clear_kind_delays();
    m.rx[1].clear();
    const time_point sent = m.sim.now();
    m.net.endpoint(node_id{0}).send(node_id{1}, accuse);
    m.flush();
    ASSERT_EQ(m.rx[1].size(), 1u);
    EXPECT_LT(m.rx[1][0].at - sent, msec(50));
  });
}

TEST(adversary_mechanics, drop_precedence_is_cut_then_partition_then_flap) {
  for_each_seed([](std::uint64_t seed) {
    mesh m(seed);
    // All three fault classes cover 0 -> 1; the cut wins the accounting.
    m.adv.cut_link(node_id{0}, node_id{1});
    m.adv.partition("p", {node_id{0}});
    net::flap_spec flap;
    flap.period = sec(10);
    flap.up_fraction = 0.0;
    m.adv.flap_link(node_id{0}, node_id{1}, flap);

    m.send(0, 1, 1);
    m.flush();
    EXPECT_EQ(m.adv.totals().dropped_cut, 1u);
    EXPECT_EQ(m.adv.totals().dropped_partition, 0u);
    EXPECT_EQ(m.adv.totals().dropped_flap, 0u);

    m.adv.heal_link(node_id{0}, node_id{1});
    m.send(0, 1, 2);
    m.flush();
    EXPECT_EQ(m.adv.totals().dropped_partition, 1u);

    m.adv.heal_all_partitions();
    m.send(0, 1, 3);
    m.flush();
    EXPECT_EQ(m.adv.totals().dropped_flap, 1u);
    EXPECT_TRUE(m.rx[1].empty());
    EXPECT_EQ(m.net.dropped_by_adversary(), 3u);
  });
}

}  // namespace
}  // namespace omega::harness::adversary_testing
