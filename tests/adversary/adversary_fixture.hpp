// Shared fixture for the adversarial-network invariant battery (ISSUE 10).
//
// Every test in tests/adversary/ runs its body once per seed in
// `battery_seeds` — three distinct RNG streams inside one ctest invocation,
// the in-process flaky guard: an invariant that only holds on one lucky
// stream fails loudly here instead of intermittently in CI.
#pragma once

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <optional>
#include <vector>

#include "harness/experiment.hpp"

namespace omega::harness::adversary_testing {

inline constexpr std::array<std::uint64_t, 3> battery_seeds{11, 4242, 900019};

/// Runs `fn(seed)` once per battery seed with a SCOPED_TRACE naming the
/// stream, so a failure reports which seed broke the invariant.
template <typename Fn>
void for_each_seed(Fn&& fn) {
  for (const std::uint64_t seed : battery_seeds) {
    SCOPED_TRACE(::testing::Message() << "seed=" << seed);
    fn(seed);
  }
}

/// Advances the experiment's virtual clock to `at` past the time origin.
inline void run_to(experiment& exp, duration at) {
  exp.simulator().run_until(time_origin + at);
}

/// Polls the ground-truth agreement oracle until every up node reports the
/// same leader (or the deadline passes). Returns the agreed pid, if any.
inline std::optional<process_id> settle_leader(experiment& exp,
                                               duration deadline) {
  std::optional<process_id> leader = exp.group().agreed_leader();
  while (!leader.has_value() &&
         exp.simulator().now() < time_origin + deadline) {
    exp.simulator().run_until(exp.simulator().now() + msec(100));
    leader = exp.group().agreed_leader();
  }
  return leader;
}

/// Number of leader_change events recorded (any node) strictly after `t`
/// for `group` — zero over a window proves no node's leader view moved,
/// i.e. no two simultaneous leaders existed anywhere in that window.
inline std::size_t leader_changes_after(const std::vector<obs::trace_event>& tr,
                                        time_point t, group_id group) {
  std::size_t n = 0;
  for (const auto& ev : tr) {
    if (ev.kind == obs::event_kind::leader_change && ev.group == group &&
        ev.at > t) {
      ++n;
    }
  }
  return n;
}

/// True when some node adopted `pid` as its leader strictly after `t`
/// (any group) — the resurrection probe for stale-incarnation checks.
inline bool adopted_after(const std::vector<obs::trace_event>& tr,
                          process_id pid, time_point t) {
  for (const auto& ev : tr) {
    if (ev.kind == obs::event_kind::leader_change && ev.at > t &&
        ev.subject == pid) {
      return true;
    }
  }
  return false;
}

/// Each node's final leader view for `group` from the merged trace
/// (index = node id; invalid process_id when the node never recorded one).
inline std::vector<process_id> final_views(const std::vector<obs::trace_event>& tr,
                                           std::size_t nodes, group_id group) {
  std::vector<process_id> views(nodes, process_id::invalid());
  for (const auto& ev : tr) {  // merged trace is time-ordered
    if (ev.kind == obs::event_kind::leader_change && ev.group == group) {
      const std::size_t n = ev.node.value();
      if (n < nodes) views[n] = ev.subject;
    }
  }
  return views;
}

}  // namespace omega::harness::adversary_testing
