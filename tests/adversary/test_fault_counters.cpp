// Fault-plane accounting (ISSUE 10): per-fault-class counters surface in
// the harness obs registry, and the hierarchy forensics keep attributing
// >= 95% of global-leader outages under every fault class in the script
// library — injected faults must not blind the blame split.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "adversary/adversary_fixture.hpp"

namespace omega::harness::adversary_testing {
namespace {

TEST(adversary_counters, totals_are_exported_to_the_sim_registry) {
  for_each_seed([](std::uint64_t seed) {
    scenario sc;
    sc.name = "counter-export";
    sc.nodes = 6;
    sc.churn = churn_profile::none();
    sc.seed = seed;

    fault_step cut;
    cut.action = fault_cut{node_id{0}, node_id{1}};
    sc.fault_script.push_back(cut);
    fault_step dup;
    fault_duplicate dspec;
    dspec.spec.probability = 0.5;
    dspec.spec.max_copies = 2;
    dup.action = dspec;
    sc.fault_script.push_back(dup);
    fault_step reorder;
    fault_reorder rspec;
    rspec.spec.window = 3;
    reorder.action = rspec;
    sc.fault_script.push_back(reorder);
    fault_step kind;
    fault_kind_delay kspec;
    kspec.kind = proto::msg_kind::alive;
    kspec.extra = msec(3);
    kind.action = kspec;
    sc.fault_script.push_back(kind);

    experiment exp(sc);
    run_to(exp, sec(20));
    exp.export_metrics();

    ASSERT_NE(exp.fault_plane(), nullptr);
    const auto& totals = exp.fault_plane()->totals();
    EXPECT_GT(totals.dropped_cut, 0u);
    EXPECT_GT(totals.duplicated, 0u);
    EXPECT_GT(totals.reorder_delayed, 0u);
    EXPECT_GT(totals.kind_delayed, 0u);

    auto& reg = exp.sim_registry();
    EXPECT_EQ(reg.get_counter("omega_adversary_dropped_total",
                              {{"fault", "cut"}})
                  .value(),
              totals.dropped_cut);
    EXPECT_EQ(reg.get_counter("omega_adversary_dropped_total",
                              {{"fault", "partition"}})
                  .value(),
              totals.dropped_partition);
    EXPECT_EQ(reg.get_counter("omega_adversary_dropped_total",
                              {{"fault", "flap"}})
                  .value(),
              totals.dropped_flap);
    EXPECT_EQ(reg.get_counter("omega_adversary_duplicated_total").value(),
              totals.duplicated);
    EXPECT_EQ(reg.get_counter("omega_adversary_reorder_delayed_total").value(),
              totals.reorder_delayed);
    EXPECT_EQ(reg.get_counter("omega_adversary_kind_delayed_total").value(),
              totals.kind_delayed);
    EXPECT_EQ(exp.network().dropped_by_adversary(), totals.dropped_cut);
  });
}

/// Runs a churny three-tier scenario under `script` and asserts the blame
/// split: at least 95% of global-leader outages attributed — to a tier
/// (regional or global failover of a departed leader) or to an injected
/// fault via the harness's fault oracle — i.e. unattributed <= 5%.
void expect_attribution_holds(std::uint64_t seed,
                              std::vector<fault_step> script,
                              const char* name) {
  scenario sc;
  sc.name = name;
  sc.nodes = 16;
  sc.hierarchy = hierarchy_profile::three_tier(4, 2);
  sc.churn = {true, sec(150), sec(5)};
  sc.trace = true;
  sc.trace_capacity = 8192;
  sc.warmup = sec(60);
  sc.measured = sec(1200);
  sc.seed = seed;
  sc.fault_script = std::move(script);

  experiment exp(sc);
  const experiment_result res = exp.run();
  ASSERT_NE(exp.hier_metrics(), nullptr);
  const std::uint64_t attributed = res.outages_blamed_regional +
                                   res.outages_blamed_global +
                                   res.outages_blamed_fault;
  const std::uint64_t unattributed =
      exp.hier_metrics()->outages_unattributed();
  const std::uint64_t total = attributed + unattributed;
  ASSERT_GT(total, 0u) << "churn produced no global-leader outage";
  EXPECT_LE(20 * unattributed, total)
      << "attributed " << attributed << "/" << total << " under " << name;
}

TEST(adversary_attribution, holds_under_one_way_cuts) {
  for_each_seed([](std::uint64_t seed) {
    fault_step step;
    step.at = sec(120);
    step.action = fault_cut{node_id{0}, node_id{8}};  // cross-region, one-way
    expect_attribution_holds(seed, {step}, "attr-cut");
  });
}

TEST(adversary_attribution, holds_under_partitions) {
  for_each_seed([](std::uint64_t seed) {
    fault_step step;
    step.at = sec(300);
    step.lasts = sec(60);
    step.repeat_every = sec(400);
    step.repeat_count = 1;  // two 60 s episodes
    fault_partition part;
    part.name = "region1";
    part.regions = {1};
    step.action = part;
    expect_attribution_holds(seed, {step}, "attr-partition");
  });
}

TEST(adversary_attribution, holds_under_flapping) {
  for_each_seed([](std::uint64_t seed) {
    fault_step step;
    step.at = sec(200);
    step.lasts = sec(120);
    fault_flap_wan flap;
    flap.spec.period = sec(10);
    flap.spec.up_fraction = 0.7;
    step.action = flap;
    expect_attribution_holds(seed, {step}, "attr-flap");
  });
}

TEST(adversary_attribution, holds_under_dup_reorder) {
  for_each_seed([](std::uint64_t seed) {
    fault_step dup;
    fault_duplicate dspec;
    dspec.spec.probability = 0.25;
    dspec.spec.max_copies = 2;
    dup.action = dspec;
    fault_step reorder;
    fault_reorder rspec;
    rspec.spec.window = 3;
    reorder.action = rspec;
    expect_attribution_holds(seed, {dup, reorder}, "attr-dup-reorder");
  });
}

TEST(adversary_attribution, holds_under_clock_skew) {
  for_each_seed([](std::uint64_t seed) {
    fault_step step;
    step.at = sec(100);
    fault_skew skew;
    skew.node = node_id{2};
    skew.offset = msec(200);
    skew.drift = 100e-6;
    step.action = skew;
    expect_attribution_holds(seed, {step}, "attr-skew");
  });
}

}  // namespace
}  // namespace omega::harness::adversary_testing
