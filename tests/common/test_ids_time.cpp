#include <gtest/gtest.h>

#include <unordered_set>

#include "common/ids.hpp"
#include "common/time.hpp"

namespace omega {
namespace {

TEST(Ids, DefaultIsInvalid) {
  node_id n;
  EXPECT_FALSE(n.valid());
  EXPECT_EQ(n, node_id::invalid());
}

TEST(Ids, ComparisonAndEquality) {
  EXPECT_LT(process_id{1}, process_id{2});
  EXPECT_EQ(group_id{5}, group_id{5});
  EXPECT_NE(node_id{0}, node_id{1});
}

TEST(Ids, Hashable) {
  std::unordered_set<process_id> set;
  set.insert(process_id{1});
  set.insert(process_id{2});
  set.insert(process_id{1});
  EXPECT_EQ(set.size(), 2u);
}

TEST(Ids, ToString) {
  EXPECT_EQ(to_string(node_id{3}), "n3");
  EXPECT_EQ(to_string(process_id{4}), "p4");
  EXPECT_EQ(to_string(group_id{9}), "g9");
  EXPECT_EQ(to_string(node_id{}), "n<invalid>");
}

TEST(Time, UnitHelpers) {
  EXPECT_EQ(usec(1500), msec(1) + usec(500));
  EXPECT_EQ(msec(1000), sec(1));
  EXPECT_EQ(sec(60).count(), 60'000'000);
}

TEST(Time, SecondsConversionRoundTrip) {
  EXPECT_DOUBLE_EQ(to_seconds(msec(2500)), 2.5);
  EXPECT_EQ(from_seconds(2.5), msec(2500));
  EXPECT_DOUBLE_EQ(to_seconds(from_seconds(0.123456)), 0.123456);
}

TEST(Time, TimePointArithmetic) {
  const time_point t = time_origin + sec(10);
  EXPECT_EQ(t - time_origin, sec(10));
  EXPECT_EQ(to_seconds(t), 10.0);
  EXPECT_LT(time_origin, t);
}

}  // namespace
}  // namespace omega
