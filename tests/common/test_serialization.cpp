#include "common/serialization.hpp"

#include <gtest/gtest.h>

#include <limits>

namespace omega {
namespace {

TEST(Serialization, PrimitivesRoundTrip) {
  byte_writer w;
  w.write_u8(0xAB);
  w.write_u16(0xBEEF);
  w.write_u32(0xDEADBEEF);
  w.write_u64(0x0123456789ABCDEFULL);
  w.write_i64(-42);
  w.write_f64(3.14159);
  w.write_bool(true);
  w.write_bool(false);

  byte_reader r(w.buffer());
  EXPECT_EQ(r.read_u8(), 0xAB);
  EXPECT_EQ(r.read_u16(), 0xBEEF);
  EXPECT_EQ(r.read_u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.read_u64(), 0x0123456789ABCDEFULL);
  EXPECT_EQ(r.read_i64(), -42);
  EXPECT_DOUBLE_EQ(r.read_f64(), 3.14159);
  EXPECT_TRUE(r.read_bool());
  EXPECT_FALSE(r.read_bool());
  EXPECT_TRUE(r.exhausted());
}

TEST(Serialization, IdsRoundTrip) {
  byte_writer w;
  w.write_id(node_id{7});
  w.write_id(process_id{11});
  w.write_id(group_id{13});
  w.write_id(process_id::invalid());

  byte_reader r(w.buffer());
  EXPECT_EQ(r.read_id<node_id>(), node_id{7});
  EXPECT_EQ(r.read_id<process_id>(), process_id{11});
  EXPECT_EQ(r.read_id<group_id>(), group_id{13});
  EXPECT_FALSE(r.read_id<process_id>().valid());
  EXPECT_TRUE(r.exhausted());
}

TEST(Serialization, TimeTypesRoundTrip) {
  byte_writer w;
  w.write_duration(msec(1500));
  w.write_time(time_origin + sec(42));
  w.write_duration(duration{-5});

  byte_reader r(w.buffer());
  EXPECT_EQ(r.read_duration(), msec(1500));
  EXPECT_EQ(r.read_time(), time_origin + sec(42));
  EXPECT_EQ(r.read_duration(), duration{-5});
}

TEST(Serialization, StringsRoundTrip) {
  byte_writer w;
  w.write_string("hello");
  w.write_string("");
  w.write_string(std::string(1000, 'x'));

  byte_reader r(w.buffer());
  EXPECT_EQ(r.read_string(), "hello");
  EXPECT_EQ(r.read_string(), "");
  EXPECT_EQ(r.read_string(), std::string(1000, 'x'));
  EXPECT_TRUE(r.exhausted());
}

TEST(Serialization, TruncatedInputPoisonsReader) {
  byte_writer w;
  w.write_u64(123);
  auto buf = w.buffer();
  buf.resize(4);  // cut the u64 in half

  byte_reader r(buf);
  EXPECT_EQ(r.read_u64(), 0u);
  EXPECT_FALSE(r.ok());
  // Subsequent reads stay zero and harmless.
  EXPECT_EQ(r.read_u32(), 0u);
  EXPECT_FALSE(r.exhausted());
}

TEST(Serialization, EmptyReaderFailsGracefully) {
  byte_reader r({});
  EXPECT_EQ(r.read_u8(), 0);
  EXPECT_FALSE(r.ok());
}

TEST(Serialization, BadStringLengthDetected) {
  byte_writer w;
  w.write_u16(100);  // claims 100 bytes follow
  w.write_u8('x');   // only one does

  byte_reader r(w.buffer());
  EXPECT_EQ(r.read_string(), "");
  EXPECT_FALSE(r.ok());
}

TEST(Serialization, OversizeByteStringThrows) {
  byte_writer w;
  std::vector<std::byte> big(70000);
  EXPECT_THROW(w.write_bytes(big), std::length_error);
}

TEST(Serialization, LittleEndianLayout) {
  byte_writer w;
  w.write_u32(0x01020304);
  const auto& buf = w.buffer();
  ASSERT_EQ(buf.size(), 4u);
  EXPECT_EQ(std::to_integer<int>(buf[0]), 0x04);
  EXPECT_EQ(std::to_integer<int>(buf[3]), 0x01);
}

TEST(Serialization, NegativeAndExtremeValues) {
  byte_writer w;
  w.write_i64(std::numeric_limits<std::int64_t>::min());
  w.write_i64(std::numeric_limits<std::int64_t>::max());
  w.write_f64(-0.0);
  w.write_f64(std::numeric_limits<double>::infinity());

  byte_reader r(w.buffer());
  EXPECT_EQ(r.read_i64(), std::numeric_limits<std::int64_t>::min());
  EXPECT_EQ(r.read_i64(), std::numeric_limits<std::int64_t>::max());
  EXPECT_EQ(r.read_f64(), 0.0);
  EXPECT_EQ(r.read_f64(), std::numeric_limits<double>::infinity());
}

}  // namespace
}  // namespace omega
