// scoped_timer tests: the RAII wrapper every periodic protocol task uses.
#include <gtest/gtest.h>

#include "common/executor.hpp"
#include "sim/simulator.hpp"

namespace omega {
namespace {

TEST(ScopedTimer, FiresAtDeadline) {
  sim::simulator sim;
  scoped_timer t(sim);
  int fired = 0;
  t.arm_at(sim.now() + sec(2), [&] { ++fired; });
  sim.run_until(sim.now() + sec(1));
  EXPECT_EQ(fired, 0);
  sim.run_until(sim.now() + sec(2));
  EXPECT_EQ(fired, 1);
}

TEST(ScopedTimer, RearmReplacesPrevious) {
  sim::simulator sim;
  scoped_timer t(sim);
  int first = 0, second = 0;
  t.arm_at(sim.now() + sec(1), [&] { ++first; });
  t.arm_at(sim.now() + sec(2), [&] { ++second; });
  sim.run_until(sim.now() + sec(5));
  EXPECT_EQ(first, 0) << "re-arming must cancel the earlier deadline";
  EXPECT_EQ(second, 1);
}

TEST(ScopedTimer, CancelStopsFiring) {
  sim::simulator sim;
  scoped_timer t(sim);
  int fired = 0;
  t.arm_at(sim.now() + sec(1), [&] { ++fired; });
  t.cancel();
  sim.run_until(sim.now() + sec(5));
  EXPECT_EQ(fired, 0);
}

TEST(ScopedTimer, DestructionCancels) {
  sim::simulator sim;
  int fired = 0;
  {
    scoped_timer t(sim);
    t.arm_at(sim.now() + sec(1), [&] { ++fired; });
  }
  sim.run_until(sim.now() + sec(5));
  EXPECT_EQ(fired, 0);
}

TEST(ScopedTimer, RearmFromInsideCallback) {
  sim::simulator sim;
  scoped_timer t(sim);
  int fired = 0;
  std::function<void()> tick = [&] {
    if (++fired < 3) t.arm_at(sim.now() + sec(1), tick);
  };
  t.arm_at(sim.now() + sec(1), tick);
  sim.run_until(sim.now() + sec(10));
  EXPECT_EQ(fired, 3);
}

TEST(ScopedTimer, CancelIsIdempotent) {
  sim::simulator sim;
  scoped_timer t(sim);
  t.cancel();
  t.arm_at(sim.now() + sec(1), [] {});
  t.cancel();
  t.cancel();
  sim.run_until(sim.now() + sec(2));  // must not crash
}

}  // namespace
}  // namespace omega
