#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace omega {
namespace {

TEST(RunningStats, EmptyIsZero) {
  running_stats s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.ci95_half_width(), 0.0);
}

TEST(RunningStats, MeanAndVariance) {
  running_stats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 4.571428, 1e-5);  // unbiased: 32/7
}

TEST(RunningStats, SingleSample) {
  running_stats s;
  s.add(3.5);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.ci95_half_width(), 0.0);
}

TEST(RunningStats, CiShrinksWithSamples) {
  running_stats small;
  running_stats large;
  for (int i = 0; i < 5; ++i) small.add(i % 2 == 0 ? 1.0 : 2.0);
  for (int i = 0; i < 500; ++i) large.add(i % 2 == 0 ? 1.0 : 2.0);
  EXPECT_GT(small.ci95_half_width(), large.ci95_half_width());
}

TEST(RunningStats, ResetClears) {
  running_stats s;
  s.add(1.0);
  s.add(2.0);
  s.reset();
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.mean(), 0.0);
}

TEST(WindowedStats, RespectsCapacity) {
  windowed_stats s(3);
  s.add(100.0);
  s.add(1.0);
  s.add(2.0);
  s.add(3.0);  // evicts 100
  EXPECT_EQ(s.count(), 3u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.0);
}

TEST(WindowedStats, VarianceMatchesDirectComputation) {
  windowed_stats s(10);
  for (double x : {1.0, 2.0, 3.0, 4.0, 5.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
  EXPECT_NEAR(s.variance(), 2.5, 1e-9);
  EXPECT_NEAR(s.stddev(), std::sqrt(2.5), 1e-9);
}

TEST(WindowedStats, FullFlag) {
  windowed_stats s(2);
  EXPECT_FALSE(s.full());
  s.add(1);
  EXPECT_FALSE(s.full());
  s.add(2);
  EXPECT_TRUE(s.full());
}

TEST(WindowedStats, VarianceNeverNegative) {
  windowed_stats s(50);
  for (int i = 0; i < 100; ++i) s.add(1e9 + 0.001 * (i % 2));
  EXPECT_GE(s.variance(), 0.0);
}

TEST(TimeFraction, BasicAccounting) {
  time_fraction f;
  f.begin(time_origin, false);
  f.update(time_origin + sec(10), true);   // 10s false
  f.update(time_origin + sec(30), false);  // 20s true
  f.finish(time_origin + sec(40));         // 10s false
  EXPECT_EQ(f.total(), sec(40));
  EXPECT_EQ(f.time_true(), sec(20));
  EXPECT_DOUBLE_EQ(f.fraction(), 0.5);
}

TEST(TimeFraction, RedundantUpdatesIgnored) {
  time_fraction f;
  f.begin(time_origin, true);
  f.update(time_origin + sec(1), true);
  f.update(time_origin + sec(2), true);
  f.finish(time_origin + sec(10));
  EXPECT_DOUBLE_EQ(f.fraction(), 1.0);
}

TEST(TimeFraction, AlwaysFalse) {
  time_fraction f;
  f.begin(time_origin, false);
  f.finish(time_origin + sec(5));
  EXPECT_DOUBLE_EQ(f.fraction(), 0.0);
}

TEST(TimeFraction, ZeroDuration) {
  time_fraction f;
  f.begin(time_origin, true);
  f.finish(time_origin);
  EXPECT_DOUBLE_EQ(f.fraction(), 0.0);
}

}  // namespace
}  // namespace omega
