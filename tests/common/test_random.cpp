#include "common/random.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace omega {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  rng a(12345);
  rng b(12345);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  rng a(1);
  rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, Uniform01InRange) {
  rng r(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, Uniform01MeanIsHalf) {
  rng r(99);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += r.uniform01();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformBelowRespectsBound) {
  rng r(3);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(r.uniform_below(17), 17u);
  }
}

TEST(Rng, UniformBelowCoversAllValues) {
  rng r(4);
  bool seen[8] = {};
  for (int i = 0; i < 1000; ++i) seen[r.uniform_below(8)] = true;
  for (bool s : seen) EXPECT_TRUE(s);
}

TEST(Rng, BernoulliEdgeCases) {
  rng r(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.bernoulli(0.0));
    EXPECT_TRUE(r.bernoulli(1.0));
    EXPECT_FALSE(r.bernoulli(-0.5));
    EXPECT_TRUE(r.bernoulli(1.5));
  }
}

TEST(Rng, BernoulliFrequencyMatchesP) {
  rng r(6);
  const int n = 100000;
  int hits = 0;
  for (int i = 0; i < n; ++i) {
    if (r.bernoulli(0.1)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.1, 0.005);
}

TEST(Rng, ExponentialMeanMatches) {
  rng r(8);
  const int n = 200000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += r.exponential(2.5);
  EXPECT_NEAR(sum / n, 2.5, 0.05);
}

TEST(Rng, ExponentialNonNegative) {
  rng r(9);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_GE(r.exponential(1.0), 0.0);
  }
}

TEST(Rng, ExponentialZeroMeanYieldsZero) {
  rng r(10);
  EXPECT_EQ(r.exponential(0.0), 0.0);
  EXPECT_EQ(r.exponential(-1.0), 0.0);
}

TEST(Rng, ExponentialDurationMean) {
  rng r(11);
  const int n = 100000;
  double sum_s = 0.0;
  for (int i = 0; i < n; ++i) sum_s += to_seconds(r.exponential(sec(600)));
  EXPECT_NEAR(sum_s / n, 600.0, 10.0);
}

TEST(Rng, SplitStreamsAreIndependentAndDeterministic) {
  rng parent1(42);
  rng parent2(42);
  rng childa = parent1.split();
  rng childb = parent2.split();
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(childa.next_u64(), childb.next_u64());
  }
  // Child stream differs from a fresh parent stream.
  rng parent3(42);
  rng child = parent3.split();
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (child.next_u64() == parent3.next_u64()) ++same;
  }
  EXPECT_LT(same, 3);
}

}  // namespace
}  // namespace omega
