// Roster-scoped dissemination unit tests: scoped HELLO destination sets
// (union of shared-group rosters for candidates, candidate hosts for
// listeners), cluster-wide join bootstrap, discovery probes, scoped LEAVE,
// and the `hello_fanout::all` regression guard (flat deployments must see
// byte-identical traffic).
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "membership/group_maintenance.hpp"
#include "proto/wire.hpp"
#include "sim/simulator.hpp"

namespace omega::membership {
namespace {

const group_id g1{1};
const group_id g2{2};
constexpr node_id n0{0};
constexpr node_id n1{1};
constexpr node_id n2{2};
constexpr node_id n3{3};
constexpr node_id n4{4};
constexpr node_id n5{5};

struct scoped_fixture {
  sim::simulator sim;
  std::vector<proto::wire_message> broadcasts;
  std::vector<std::pair<node_id, proto::wire_message>> unicasts;
  std::vector<std::pair<std::vector<node_id>, proto::wire_message>> multicasts;
  group_maintenance gm;

  explicit scoped_fixture(group_maintenance::options opts = roster_options())
      : gm(sim, sim, n0, /*inc=*/1, opts) {
    gm.set_broadcast([this](const proto::wire_message& m) {
      broadcasts.push_back(m);
    });
    gm.set_unicast([this](node_id dst, const proto::wire_message& m) {
      unicasts.emplace_back(dst, m);
    });
    gm.set_multicast(
        [this](const std::vector<node_id>& dsts, const proto::wire_message& m) {
          multicasts.emplace_back(dsts, m);
        });
    gm.set_cluster_roster({n0, n1, n2, n3, n4, n5});
    gm.start();
  }

  static group_maintenance::options roster_options() {
    group_maintenance::options opts;
    opts.fanout = hello_fanout::roster;
    return opts;
  }

  void add_member(group_id g, node_id node, process_id pid, bool candidate) {
    proto::hello_msg msg;
    msg.from = node;
    msg.inc = 1;
    msg.entries.push_back({g, pid, candidate});
    gm.on_hello(msg, sim.now());
  }

  /// Runs one anti-entropy sweep and returns the scoped HELLOs it emitted
  /// (probe HELLOs are reply_requested and reported separately).
  void run_one_sweep() {
    multicasts.clear();
    broadcasts.clear();
    sim.run_until(sim.now() + gm_opts().hello_interval + msec(1));
  }

  [[nodiscard]] group_maintenance::options gm_opts() const {
    return group_maintenance::options{};  // defaults match construction
  }

  /// All (destination, entry-group) pairs of non-probe scoped HELLOs.
  [[nodiscard]] std::set<std::pair<std::uint32_t, std::uint32_t>>
  scoped_reach() const {
    std::set<std::pair<std::uint32_t, std::uint32_t>> reach;
    for (const auto& [dsts, msg] : multicasts) {
      const auto* hello = std::get_if<proto::hello_msg>(&msg);
      if (hello == nullptr || hello->reply_requested) continue;
      for (const node_id dst : dsts) {
        for (const auto& entry : hello->entries) {
          reach.emplace(dst.value(), entry.group.value());
        }
      }
    }
    return reach;
  }

  [[nodiscard]] std::set<std::uint32_t> probe_destinations() const {
    std::set<std::uint32_t> probes;
    for (const auto& [dsts, msg] : multicasts) {
      const auto* hello = std::get_if<proto::hello_msg>(&msg);
      if (hello == nullptr || !hello->reply_requested) continue;
      for (const node_id dst : dsts) probes.insert(dst.value());
    }
    return probes;
  }
};

TEST(RosterScope, JoinAnnouncesClusterWideButSolicitsBoundedSnapshots) {
  // The join announcement is the discovery bootstrap: it must still go
  // through the cluster-wide broadcast hook. But it must NOT solicit a
  // snapshot from every roster node (O(n) ACKs of O(n) entries per join,
  // paid again on every promotion re-join): the solicitation is a bounded
  // multicast instead.
  scoped_fixture f;
  f.gm.local_join(g1, process_id{0}, true);
  ASSERT_EQ(f.broadcasts.size(), 1u);
  const auto* announce = std::get_if<proto::hello_msg>(&f.broadcasts.back());
  ASSERT_NE(announce, nullptr);
  EXPECT_FALSE(announce->reply_requested);

  ASSERT_EQ(f.multicasts.size(), 1u);
  const auto& [dsts, msg] = f.multicasts.back();
  const auto* ask = std::get_if<proto::hello_msg>(&msg);
  ASSERT_NE(ask, nullptr);
  EXPECT_TRUE(ask->reply_requested);
  EXPECT_LE(dsts.size(), group_maintenance::kSnapshotFanout);
  EXPECT_FALSE(dsts.empty());
  for (const node_id d : dsts) EXPECT_NE(d, n0);  // never self

  // A later join prefers peers we already track over roster rotation.
  f.add_member(g1, n2, process_id{2}, true);
  f.multicasts.clear();
  f.gm.local_join(g2, process_id{100}, true);
  ASSERT_FALSE(f.multicasts.empty());
  const auto& warm = f.multicasts.back().first;
  EXPECT_TRUE(std::find(warm.begin(), warm.end(), n2) != warm.end());
}

TEST(RosterScope, CandidateSweepReachesExactlyUnionOfSharedGroupRosters) {
  scoped_fixture f;
  f.gm.local_join(g1, process_id{0}, true);
  f.gm.local_join(g2, process_id{100}, true);
  f.add_member(g1, n1, process_id{1}, true);
  f.add_member(g1, n2, process_id{2}, true);
  f.add_member(g2, n2, process_id{102}, true);
  f.add_member(g2, n3, process_id{103}, true);

  f.run_one_sweep();

  // A candidate's entry reaches every node of that group's roster — no
  // more, no less: g1 -> {n1, n2}, g2 -> {n2, n3}.
  const auto reach = f.scoped_reach();
  const std::set<std::pair<std::uint32_t, std::uint32_t>> expected = {
      {1, 1}, {2, 1}, {2, 2}, {3, 2}};
  EXPECT_EQ(reach, expected);

  // And the overall destination set is exactly the union of the rosters.
  std::set<std::uint32_t> dsts;
  for (const auto& [dst, group] : reach) dsts.insert(dst);
  EXPECT_EQ(dsts, (std::set<std::uint32_t>{1, 2, 3}));
}

TEST(RosterScope, ListenerEntriesReachOnlyCandidateHosts) {
  scoped_fixture f;
  f.gm.local_join(g1, process_id{0}, /*candidate=*/false);
  f.add_member(g1, n1, process_id{1}, /*candidate=*/true);
  f.add_member(g1, n2, process_id{2}, /*candidate=*/false);
  f.add_member(g1, n3, process_id{3}, /*candidate=*/true);

  f.run_one_sweep();

  // A listener only refreshes its entry where it matters: at the nodes
  // hosting the group's candidates (they keep us in their tables and send
  // us the leader's ALIVEs). The fellow listener on n2 gets nothing.
  const auto reach = f.scoped_reach();
  const std::set<std::pair<std::uint32_t, std::uint32_t>> expected = {
      {1, 1}, {3, 1}};
  EXPECT_EQ(reach, expected);
}

TEST(RosterScope, ProbesRotateThroughUncoveredRosterNodes) {
  scoped_fixture f;
  f.gm.local_join(g1, process_id{0}, true);
  f.add_member(g1, n1, process_id{1}, true);

  // Sweep 1 covers n1; exactly one probe to an uncovered roster node with a
  // reply-requested full HELLO (it solicits the peer's snapshot back).
  f.run_one_sweep();
  auto probes = f.probe_destinations();
  ASSERT_EQ(probes.size(), 1u);
  std::set<std::uint32_t> seen = probes;
  EXPECT_EQ(probes.count(0), 0u);  // never self
  EXPECT_EQ(probes.count(1), 0u);  // never an already-covered node

  // Subsequent sweeps keep rotating: within a few rounds every uncovered
  // roster node {n2..n5} has been probed at least once.
  for (int i = 0; i < 3; ++i) {
    f.run_one_sweep();
    for (const auto p : f.probe_destinations()) seen.insert(p);
  }
  EXPECT_EQ(seen, (std::set<std::uint32_t>{2, 3, 4, 5}));
}

TEST(RosterScope, ScopedLeaveReachesOnlyTheGroupRoster) {
  scoped_fixture f;
  f.gm.local_join(g1, process_id{0}, true);
  f.gm.local_join(g2, process_id{100}, true);
  f.add_member(g1, n1, process_id{1}, true);
  f.add_member(g1, n2, process_id{2}, false);
  f.add_member(g2, n3, process_id{103}, true);

  f.multicasts.clear();
  f.broadcasts.clear();
  f.gm.local_leave(g1, process_id{0});

  // The LEAVE rides the scoped path: g1's roster {n1, n2} hears it, the
  // disjoint-group peer n3 does not, and nothing goes cluster-wide.
  EXPECT_TRUE(f.broadcasts.empty());
  ASSERT_EQ(f.multicasts.size(), 1u);
  const auto& [dsts, msg] = f.multicasts.front();
  ASSERT_NE(std::get_if<proto::leave_msg>(&msg), nullptr);
  std::set<std::uint32_t> dst_set;
  for (const node_id d : dsts) dst_set.insert(d.value());
  EXPECT_EQ(dst_set, (std::set<std::uint32_t>{1, 2}));
}

TEST(RosterScope, AllFanoutIsByteIdenticalToSeedBehaviour) {
  // Regression guard for flat deployments: with `hello_fanout::all`, a
  // module wired with the full scoped tooling (multicast hook, cluster
  // roster) must emit exactly the same byte stream through exactly the
  // same hooks as the seed configuration.
  sim::simulator sim_seed;
  std::vector<std::vector<std::byte>> seed_bytes;
  group_maintenance seed_gm(sim_seed, sim_seed, n0, 1, {});
  seed_gm.set_broadcast([&](const proto::wire_message& m) {
    seed_bytes.push_back(proto::encode(m));
  });
  seed_gm.start();

  sim::simulator sim_new;
  std::vector<std::vector<std::byte>> new_bytes;
  bool multicast_used = false;
  group_maintenance new_gm(sim_new, sim_new, n0, 1, {});  // fanout defaults to all
  new_gm.set_broadcast([&](const proto::wire_message& m) {
    new_bytes.push_back(proto::encode(m));
  });
  new_gm.set_multicast([&](const std::vector<node_id>&,
                           const proto::wire_message&) { multicast_used = true; });
  new_gm.set_cluster_roster({n0, n1, n2, n3});

  const auto drive = [](group_maintenance& gm, sim::simulator& sim) {
    gm.local_join(g1, process_id{0}, true);
    proto::hello_msg remote;
    remote.from = n1;
    remote.inc = 1;
    remote.entries.push_back({g1, process_id{1}, true});
    gm.on_hello(remote, sim.now());
    sim.run_until(sim.now() + sec(10));
    gm.local_leave(g1, process_id{0});
  };
  new_gm.start();
  drive(seed_gm, sim_seed);
  drive(new_gm, sim_new);

  EXPECT_FALSE(multicast_used);
  EXPECT_EQ(seed_bytes, new_bytes);
}

TEST(RosterScope, AllFanoutSnapshotStaysUnscoped) {
  // Under `all` fanout the HELLO_ACK must stay the seed's full known
  // world, even when the requester announced only a subset of our groups
  // (roster mode intersects; flat deployments must not).
  sim::simulator sim;
  std::vector<std::pair<node_id, proto::wire_message>> unicasts;
  group_maintenance gm(sim, sim, n0, 1, {});  // fanout::all
  gm.set_unicast([&](node_id dst, const proto::wire_message& m) {
    unicasts.emplace_back(dst, m);
  });
  gm.local_join(g1, process_id{0}, true);
  gm.local_join(g2, process_id{100}, true);

  proto::hello_msg ask;
  ask.from = n1;
  ask.inc = 1;
  ask.reply_requested = true;
  ask.entries.push_back({g1, process_id{1}, true});  // announces g1 only
  gm.on_hello(ask, sim.now());

  ASSERT_EQ(unicasts.size(), 1u);
  const auto* ack = std::get_if<proto::hello_ack_msg>(&unicasts.back().second);
  ASSERT_NE(ack, nullptr);
  bool has_g2 = false;
  for (const auto& e : ack->entries) has_g2 |= e.group == g2;
  EXPECT_TRUE(has_g2) << "all-mode snapshot was scoped to the request";
}

TEST(RosterScope, ScopedSnapshotIntersectsWithTheRequest) {
  scoped_fixture f;
  f.gm.local_join(g1, process_id{0}, true);
  f.gm.local_join(g2, process_id{100}, true);

  proto::hello_msg ask;
  ask.from = n1;
  ask.inc = 1;
  ask.reply_requested = true;
  ask.entries.push_back({g1, process_id{1}, true});
  f.gm.on_hello(ask, f.sim.now());

  ASSERT_EQ(f.unicasts.size(), 1u);
  const auto* ack = std::get_if<proto::hello_ack_msg>(&f.unicasts.back().second);
  ASSERT_NE(ack, nullptr);
  for (const auto& e : ack->entries) {
    EXPECT_EQ(e.group, g1) << "scoped snapshot leaked a non-requested group";
  }
}

TEST(RosterScope, FallsBackToBroadcastWithoutMulticastHook) {
  // `roster` mode without a multicast hook (old-style wiring) must degrade
  // to the safe cluster-wide behaviour, not go silent.
  sim::simulator sim;
  std::vector<proto::wire_message> broadcasts;
  group_maintenance::options opts;
  opts.fanout = hello_fanout::roster;
  group_maintenance gm(sim, sim, n0, 1, opts);
  gm.set_broadcast([&](const proto::wire_message& m) { broadcasts.push_back(m); });
  gm.start();
  gm.local_join(g1, process_id{0}, true);
  const auto before = broadcasts.size();
  sim.run_until(sim.now() + sec(5));
  EXPECT_GT(broadcasts.size(), before);
}

}  // namespace
}  // namespace omega::membership
