#include "membership/member_table.hpp"

#include <gtest/gtest.h>

namespace omega::membership {
namespace {

TEST(MemberTable, JoinAndFind) {
  member_table t;
  EXPECT_EQ(t.upsert(process_id{1}, node_id{1}, 1, true, time_origin),
            upsert_result::joined);
  const member_info* m = t.find(process_id{1});
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->node, node_id{1});
  EXPECT_TRUE(m->candidate);
  EXPECT_EQ(t.size(), 1u);
}

TEST(MemberTable, RefreshIsUnchanged) {
  member_table t;
  t.upsert(process_id{1}, node_id{1}, 1, true, time_origin);
  EXPECT_EQ(t.upsert(process_id{1}, node_id{1}, 1, true, time_origin + sec(5)),
            upsert_result::unchanged);
  EXPECT_EQ(t.find(process_id{1})->last_refresh, time_origin + sec(5));
}

TEST(MemberTable, RefreshTimestampNeverRegresses) {
  member_table t;
  t.upsert(process_id{1}, node_id{1}, 1, true, time_origin + sec(10));
  t.upsert(process_id{1}, node_id{1}, 1, true, time_origin + sec(5));
  EXPECT_EQ(t.find(process_id{1})->last_refresh, time_origin + sec(10));
}

TEST(MemberTable, ReincarnationReplaces) {
  member_table t;
  t.upsert(process_id{1}, node_id{1}, 1, true, time_origin);
  EXPECT_EQ(t.upsert(process_id{1}, node_id{1}, 2, false, time_origin + sec(1)),
            upsert_result::reincarnated);
  EXPECT_EQ(t.find(process_id{1})->inc, 2u);
  EXPECT_FALSE(t.find(process_id{1})->candidate);
}

TEST(MemberTable, StaleIncarnationIgnored) {
  member_table t;
  t.upsert(process_id{1}, node_id{1}, 5, true, time_origin);
  EXPECT_EQ(t.upsert(process_id{1}, node_id{1}, 3, false, time_origin + sec(1)),
            upsert_result::stale_ignored);
  EXPECT_TRUE(t.find(process_id{1})->candidate);
}

TEST(MemberTable, CandidateFlagChangeIsUpdated) {
  member_table t;
  t.upsert(process_id{1}, node_id{1}, 1, true, time_origin);
  EXPECT_EQ(t.upsert(process_id{1}, node_id{1}, 1, false, time_origin),
            upsert_result::updated);
}

TEST(MemberTable, RemoveRespectsIncarnation) {
  member_table t;
  t.upsert(process_id{1}, node_id{1}, 5, true, time_origin);
  EXPECT_FALSE(t.remove(process_id{1}, 4).has_value());  // stale LEAVE
  EXPECT_EQ(t.size(), 1u);
  auto removed = t.remove(process_id{1}, 5);
  ASSERT_TRUE(removed.has_value());
  EXPECT_EQ(removed->pid, process_id{1});
  EXPECT_TRUE(t.empty());
}

TEST(MemberTable, RemoveUnknownIsNoop) {
  member_table t;
  EXPECT_FALSE(t.remove(process_id{9}, 1).has_value());
}

TEST(MemberTable, RemoveNodeDropsAllItsProcesses) {
  member_table t;
  t.upsert(process_id{1}, node_id{1}, 1, true, time_origin);
  t.upsert(process_id{2}, node_id{1}, 1, true, time_origin);
  t.upsert(process_id{3}, node_id{2}, 1, true, time_origin);
  const auto removed = t.remove_node(node_id{1});
  EXPECT_EQ(removed.size(), 2u);
  EXPECT_EQ(t.size(), 1u);
  EXPECT_NE(t.find(process_id{3}), nullptr);
}

TEST(MemberTable, EvictStaleHonoursVouching) {
  member_table t;
  t.upsert(process_id{1}, node_id{1}, 1, true, time_origin);
  t.upsert(process_id{2}, node_id{2}, 1, true, time_origin);
  // Evict anything older than t=10s unless it is pid 2 (vouched).
  const auto evicted =
      t.evict_stale(time_origin + sec(10), [](const member_info& m) {
        return m.pid == process_id{2};
      });
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_EQ(evicted[0].pid, process_id{1});
  EXPECT_NE(t.find(process_id{2}), nullptr);
}

TEST(MemberTable, EvictKeepsFreshEntries) {
  member_table t;
  t.upsert(process_id{1}, node_id{1}, 1, true, time_origin + sec(20));
  const auto evicted = t.evict_stale(time_origin + sec(10),
                                     [](const member_info&) { return false; });
  EXPECT_TRUE(evicted.empty());
  EXPECT_EQ(t.size(), 1u);
}

TEST(MemberTable, MembersSortedByPid) {
  member_table t;
  t.upsert(process_id{3}, node_id{3}, 1, true, time_origin);
  t.upsert(process_id{1}, node_id{1}, 1, true, time_origin);
  t.upsert(process_id{2}, node_id{2}, 1, true, time_origin);
  const auto members = t.members();
  ASSERT_EQ(members.size(), 3u);
  EXPECT_EQ(members[0].pid, process_id{1});
  EXPECT_EQ(members[1].pid, process_id{2});
  EXPECT_EQ(members[2].pid, process_id{3});
}

}  // namespace
}  // namespace omega::membership
