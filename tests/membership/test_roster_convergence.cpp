// Property-style convergence tests of roster-scoped dissemination: a small
// cluster of group_maintenance instances wired through an in-memory bus
// must converge to identical group rosters after join/leave churn, and the
// round-robin discovery probes must heal a lost join HELLO.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <vector>

#include "membership/group_maintenance.hpp"
#include "proto/wire.hpp"
#include "sim/simulator.hpp"

namespace omega::membership {
namespace {

const group_id g1{1};
const group_id g2{2};

/// N maintenance modules delivering to each other synchronously (the
/// membership protocol itself is delay-tolerant; the property under test is
/// state convergence, not timing).
struct bus {
  sim::simulator sim;
  std::vector<std::unique_ptr<group_maintenance>> gms;
  /// When true, every delivery is suppressed (a total blackout used to
  /// simulate a lost join HELLO).
  bool drop_all = false;

  explicit bus(std::size_t n) {
    group_maintenance::options opts;
    opts.fanout = hello_fanout::roster;
    std::vector<node_id> roster;
    for (std::size_t i = 0; i < n; ++i) {
      roster.push_back(node_id{static_cast<std::uint32_t>(i)});
    }
    for (std::size_t i = 0; i < n; ++i) {
      auto gm = std::make_unique<group_maintenance>(
          sim, sim, node_id{static_cast<std::uint32_t>(i)}, /*inc=*/1, opts);
      gm->set_cluster_roster(roster);
      gms.push_back(std::move(gm));
    }
    for (std::size_t i = 0; i < n; ++i) {
      auto* gm = gms[i].get();
      gm->set_broadcast([this, i](const proto::wire_message& m) {
        for (std::size_t j = 0; j < gms.size(); ++j) {
          if (j != i) deliver(i, j, m);
        }
      });
      gm->set_multicast([this, i](const std::vector<node_id>& dsts,
                                  const proto::wire_message& m) {
        for (const node_id dst : dsts) deliver(i, dst.value(), m);
      });
      gm->set_unicast([this, i](node_id dst, const proto::wire_message& m) {
        deliver(i, dst.value(), m);
      });
      gm->start();
    }
  }

  void deliver(std::size_t from, std::size_t to, const proto::wire_message& m) {
    (void)from;
    if (drop_all || to >= gms.size()) return;
    auto& target = *gms[to];
    if (const auto* hello = std::get_if<proto::hello_msg>(&m)) {
      target.on_hello(*hello, sim.now());
    } else if (const auto* ack = std::get_if<proto::hello_ack_msg>(&m)) {
      target.on_hello_ack(*ack, sim.now());
    } else if (const auto* leave = std::get_if<proto::leave_msg>(&m)) {
      target.on_leave(*leave);
    }
  }

  [[nodiscard]] std::set<std::uint32_t> roster_of(std::size_t i,
                                                  group_id g) const {
    std::set<std::uint32_t> pids;
    for (const auto& m : gms[i]->table(g).members()) pids.insert(m.pid.value());
    return pids;
  }
};

TEST(RosterConvergence, AllMembersConvergeAfterJoinChurn) {
  bus b(5);
  // Staggered joins with overlapping groups: evens join g1, odds g2, node 0
  // joins both.
  for (std::size_t i = 0; i < 5; ++i) {
    const process_id pid{static_cast<std::uint32_t>(i)};
    if (i % 2 == 0) b.gms[i]->local_join(g1, pid, true);
    if (i % 2 == 1 || i == 0) {
      b.gms[i]->local_join(g2, process_id{static_cast<std::uint32_t>(100 + i)},
                           true);
    }
    b.sim.run_until(b.sim.now() + msec(500));
  }
  b.sim.run_until(b.sim.now() + sec(10));

  const std::set<std::uint32_t> g1_expected{0, 2, 4};
  const std::set<std::uint32_t> g2_expected{100, 101, 103};
  for (const std::size_t i : {0u, 2u, 4u}) {
    EXPECT_EQ(b.roster_of(i, g1), g1_expected) << "node " << i;
  }
  for (const std::size_t i : {0u, 1u, 3u}) {
    EXPECT_EQ(b.roster_of(i, g2), g2_expected) << "node " << i;
  }
}

TEST(RosterConvergence, LeaveChurnConvergesEverywhere) {
  bus b(4);
  for (std::size_t i = 0; i < 4; ++i) {
    b.gms[i]->local_join(g1, process_id{static_cast<std::uint32_t>(i)}, true);
  }
  b.sim.run_until(b.sim.now() + sec(5));
  for (std::size_t i = 0; i < 4; ++i) {
    ASSERT_EQ(b.roster_of(i, g1), (std::set<std::uint32_t>{0, 1, 2, 3}));
  }

  b.gms[2]->local_leave(g1, process_id{2});
  b.sim.run_until(b.sim.now() + sec(5));
  for (const std::size_t i : {0u, 1u, 3u}) {
    EXPECT_EQ(b.roster_of(i, g1), (std::set<std::uint32_t>{0, 1, 3}))
        << "node " << i << " still lists the departed member";
  }
}

TEST(RosterConvergence, ProbesHealALostJoinHello) {
  bus b(4);
  for (std::size_t i = 0; i < 3; ++i) {
    b.gms[i]->local_join(g1, process_id{static_cast<std::uint32_t>(i)}, true);
  }
  b.sim.run_until(b.sim.now() + sec(5));

  // Node 3 joins during a blackout: its join HELLO (and first sweeps) are
  // lost, so nobody knows it and — because its own table only holds itself —
  // its scoped sweeps alone would never reach the others.
  b.drop_all = true;
  b.gms[3]->local_join(g1, process_id{3}, true);
  b.sim.run_until(b.sim.now() + sec(5));
  b.drop_all = false;
  EXPECT_EQ(b.roster_of(0, g1), (std::set<std::uint32_t>{0, 1, 2}));

  // The round-robin discovery probes (reply-requested HELLOs to roster
  // nodes outside the scoped set) must reconnect it within a few sweeps.
  b.sim.run_until(b.sim.now() + sec(15));
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(b.roster_of(i, g1), (std::set<std::uint32_t>{0, 1, 2, 3}))
        << "node " << i << " did not heal after the blackout";
  }
}

}  // namespace
}  // namespace omega::membership
