// Unit tests for the Group Maintenance module: HELLO/HELLO_ACK/LEAVE
// handling, implicit membership via ALIVE, anti-entropy, eviction, and
// reincarnation — driven with a hand-cranked simulator clock.
#include <gtest/gtest.h>

#include <unordered_set>

#include "membership/group_maintenance.hpp"
#include "sim/simulator.hpp"

namespace omega::membership {
namespace {

const group_id g1{1};
const group_id g2{2};
constexpr node_id n0{0};
constexpr node_id n1{1};
constexpr node_id n2{2};

struct gm_fixture {
  sim::simulator sim;
  std::vector<proto::wire_message> broadcasts;
  std::vector<std::pair<node_id, proto::wire_message>> unicasts;
  std::vector<std::pair<group_id, member_info>> joined;
  std::vector<std::pair<group_id, member_info>> removed;
  std::unordered_set<std::uint32_t> vouched_nodes;  // FD trust by node value
  group_maintenance gm;

  explicit gm_fixture(group_maintenance::options opts = {})
      : gm(sim, sim, n0, /*inc=*/1, opts) {
    gm.set_broadcast([this](const proto::wire_message& m) {
      broadcasts.push_back(m);
    });
    gm.set_unicast([this](node_id dst, const proto::wire_message& m) {
      unicasts.emplace_back(dst, m);
    });
    gm.set_vouch([this](group_id, const member_info& m) {
      return vouched_nodes.count(m.node.value()) > 0;
    });
    gm.set_events(group_maintenance::events{
        .on_member_joined =
            [this](group_id g, const member_info& m) {
              joined.emplace_back(g, m);
            },
        .on_member_removed =
            [this](group_id g, const member_info& m) {
              removed.emplace_back(g, m);
            },
        .on_member_reincarnated = nullptr,
    });
    gm.start();
  }

  proto::hello_msg hello_from(node_id node, incarnation inc, group_id g,
                              process_id pid, bool reply = false) {
    proto::hello_msg msg;
    msg.from = node;
    msg.inc = inc;
    msg.reply_requested = reply;
    msg.entries.push_back({g, pid, true});
    return msg;
  }
};

TEST(GroupMaintenance, LocalJoinBroadcastsHello) {
  gm_fixture f;
  f.gm.local_join(g1, process_id{0}, true);
  ASSERT_FALSE(f.broadcasts.empty());
  const auto* hello = std::get_if<proto::hello_msg>(&f.broadcasts.back());
  ASSERT_NE(hello, nullptr);
  EXPECT_TRUE(hello->reply_requested);
  ASSERT_EQ(hello->entries.size(), 1u);
  EXPECT_EQ(hello->entries[0].group, g1);
}

TEST(GroupMaintenance, LocalJoinAppearsInTable) {
  gm_fixture f;
  f.gm.local_join(g1, process_id{0}, true);
  EXPECT_TRUE(f.gm.table(g1).find(process_id{0}) != nullptr);
  EXPECT_EQ(f.gm.local_member(g1)->pid, process_id{0});
  EXPECT_EQ(f.gm.groups().size(), 1u);
}

TEST(GroupMaintenance, HelloAddsRemoteMember) {
  gm_fixture f;
  f.gm.local_join(g1, process_id{0}, true);
  f.gm.on_hello(f.hello_from(n1, 1, g1, process_id{1}), f.sim.now());
  const auto* m = f.gm.table(g1).find(process_id{1});
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->node, n1);
  EXPECT_EQ(f.joined.size(), 2u);  // self + remote
}

TEST(GroupMaintenance, HelloForUnknownGroupIgnored) {
  // A node that never joined g2 must not start tracking it just because a
  // peer mentioned it (the peer's snapshot means nothing to us here).
  gm_fixture f;
  f.gm.local_join(g1, process_id{0}, true);
  f.gm.on_hello(f.hello_from(n1, 1, g2, process_id{1}), f.sim.now());
  EXPECT_EQ(f.gm.table(g2).members().size(), 0u);
}

TEST(GroupMaintenance, ReplyRequestedHelloGetsSnapshotAck) {
  gm_fixture f;
  f.gm.local_join(g1, process_id{0}, true);
  f.gm.on_hello(f.hello_from(n1, 1, g1, process_id{1}, /*reply=*/true),
                f.sim.now());
  ASSERT_FALSE(f.unicasts.empty());
  EXPECT_EQ(f.unicasts.back().first, n1);
  const auto* ack =
      std::get_if<proto::hello_ack_msg>(&f.unicasts.back().second);
  ASSERT_NE(ack, nullptr);
  // The snapshot must mention both us and the newly learned member.
  EXPECT_EQ(ack->entries.size(), 2u);
}

TEST(GroupMaintenance, PeriodicHelloIsAntiEntropy) {
  gm_fixture f;
  f.gm.local_join(g1, process_id{0}, true);
  const auto before = f.broadcasts.size();
  f.sim.run_until(f.sim.now() + sec(10));
  EXPECT_GE(f.broadcasts.size(), before + 4)
      << "periodic HELLO must keep broadcasting";
}

TEST(GroupMaintenance, HelloAckPopulatesMembership) {
  gm_fixture f;
  f.gm.local_join(g1, process_id{0}, true);
  proto::hello_ack_msg ack;
  ack.from = n1;
  ack.inc = 1;
  ack.entries.push_back({g1, process_id{1}, n1, 1, true});
  ack.entries.push_back({g1, process_id{2}, n2, 3, false});
  f.gm.on_hello_ack(ack, f.sim.now());
  EXPECT_NE(f.gm.table(g1).find(process_id{1}), nullptr);
  const auto* p2 = f.gm.table(g1).find(process_id{2});
  ASSERT_NE(p2, nullptr);
  EXPECT_EQ(p2->inc, 3u);
  EXPECT_FALSE(p2->candidate);
}

TEST(GroupMaintenance, AliveIsImplicitMembership) {
  gm_fixture f;
  f.gm.local_join(g1, process_id{0}, true);
  proto::alive_msg alive;
  alive.from = n2;
  alive.inc = 2;
  proto::group_payload p;
  p.group = g1;
  p.pid = process_id{2};
  p.candidate = true;
  p.competing = true;
  alive.groups.push_back(p);
  f.gm.on_alive(alive, f.sim.now());
  const auto* m = f.gm.table(g1).find(process_id{2});
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->inc, 2u);
}

TEST(GroupMaintenance, LeaveRemovesMember) {
  gm_fixture f;
  f.gm.local_join(g1, process_id{0}, true);
  f.gm.on_hello(f.hello_from(n1, 1, g1, process_id{1}), f.sim.now());
  ASSERT_NE(f.gm.table(g1).find(process_id{1}), nullptr);

  proto::leave_msg leave;
  leave.from = n1;
  leave.inc = 1;
  leave.group = g1;
  leave.pid = process_id{1};
  f.gm.on_leave(leave);
  EXPECT_EQ(f.gm.table(g1).find(process_id{1}), nullptr);
  ASSERT_FALSE(f.removed.empty());
  EXPECT_EQ(f.removed.back().second.pid, process_id{1});
}

TEST(GroupMaintenance, StaleLeaveIgnored) {
  // A LEAVE from an older incarnation must not remove the live member.
  gm_fixture f;
  f.gm.local_join(g1, process_id{0}, true);
  f.gm.on_hello(f.hello_from(n1, 3, g1, process_id{1}), f.sim.now());

  proto::leave_msg leave;
  leave.from = n1;
  leave.inc = 2;  // previous life
  leave.group = g1;
  leave.pid = process_id{1};
  f.gm.on_leave(leave);
  EXPECT_NE(f.gm.table(g1).find(process_id{1}), nullptr);
}

TEST(GroupMaintenance, LocalLeaveBroadcastsAndForgets) {
  gm_fixture f;
  f.gm.local_join(g1, process_id{0}, true);
  f.broadcasts.clear();
  f.gm.local_leave(g1, process_id{0});
  ASSERT_FALSE(f.broadcasts.empty());
  EXPECT_NE(std::get_if<proto::leave_msg>(&f.broadcasts.front()), nullptr);
  EXPECT_EQ(f.gm.local_member(g1), std::nullopt);
}

TEST(GroupMaintenance, SilentMemberEvictedAfterTimeout) {
  group_maintenance::options opts;
  opts.eviction_after = sec(10);
  gm_fixture f(opts);
  f.gm.local_join(g1, process_id{0}, true);
  f.gm.on_hello(f.hello_from(n1, 1, g1, process_id{1}), f.sim.now());
  // The FD does not vouch for n1 (vouched_nodes empty) and it sends
  // nothing: it must be gone after the eviction window (+ sweep period).
  f.sim.run_until(f.sim.now() + sec(15));
  EXPECT_EQ(f.gm.table(g1).find(process_id{1}), nullptr);
}

TEST(GroupMaintenance, VouchedMemberSurvivesSilence) {
  // Omega_l followers are silent by design; the FD's node-level trust must
  // keep them from being evicted.
  group_maintenance::options opts;
  opts.eviction_after = sec(10);
  gm_fixture f(opts);
  f.vouched_nodes.insert(n1.value());
  f.gm.local_join(g1, process_id{0}, true);
  f.gm.on_hello(f.hello_from(n1, 1, g1, process_id{1}), f.sim.now());
  f.sim.run_until(f.sim.now() + sec(30));
  EXPECT_NE(f.gm.table(g1).find(process_id{1}), nullptr);
}

TEST(GroupMaintenance, RefreshPreventsEviction) {
  group_maintenance::options opts;
  opts.eviction_after = sec(10);
  gm_fixture f(opts);
  f.gm.local_join(g1, process_id{0}, true);
  f.gm.on_hello(f.hello_from(n1, 1, g1, process_id{1}), f.sim.now());
  for (int i = 0; i < 6; ++i) {
    f.sim.run_until(f.sim.now() + sec(5));
    f.gm.on_hello(f.hello_from(n1, 1, g1, process_id{1}), f.sim.now());
  }
  EXPECT_NE(f.gm.table(g1).find(process_id{1}), nullptr);
}

TEST(GroupMaintenance, ReincarnationReplacesOldEntry) {
  gm_fixture f;
  f.gm.local_join(g1, process_id{0}, true);
  f.gm.on_hello(f.hello_from(n1, 1, g1, process_id{1}), f.sim.now());
  f.removed.clear();
  // Same process re-joins with a higher incarnation (after a crash).
  f.gm.on_hello(f.hello_from(n1, 2, g1, process_id{1}), f.sim.now());
  const auto* m = f.gm.table(g1).find(process_id{1});
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->inc, 2u);
  // The old incarnation was removed on the way.
  ASSERT_EQ(f.removed.size(), 1u);
  EXPECT_EQ(f.removed[0].second.inc, 1u);
}

TEST(GroupMaintenance, StaleIncarnationHelloIgnored) {
  gm_fixture f;
  f.gm.local_join(g1, process_id{0}, true);
  f.gm.on_hello(f.hello_from(n1, 5, g1, process_id{1}), f.sim.now());
  f.gm.on_hello(f.hello_from(n1, 4, g1, process_id{1}), f.sim.now());
  EXPECT_EQ(f.gm.table(g1).find(process_id{1})->inc, 5u);
}

TEST(GroupMaintenance, MultipleGroupsTrackedIndependently) {
  gm_fixture f;
  f.gm.local_join(g1, process_id{0}, true);
  f.gm.local_join(g2, process_id{0}, false);
  f.gm.on_hello(f.hello_from(n1, 1, g1, process_id{1}), f.sim.now());
  EXPECT_EQ(f.gm.table(g1).members().size(), 2u);
  EXPECT_EQ(f.gm.table(g2).members().size(), 1u);
  EXPECT_FALSE(f.gm.local_member(g2)->candidate);
}

TEST(GroupMaintenance, StopSilencesPeriodicHello) {
  gm_fixture f;
  f.gm.local_join(g1, process_id{0}, true);
  f.gm.stop();
  const auto before = f.broadcasts.size();
  f.sim.run_until(f.sim.now() + sec(30));
  EXPECT_EQ(f.broadcasts.size(), before);
}

}  // namespace
}  // namespace omega::membership
