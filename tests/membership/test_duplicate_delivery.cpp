// Duplicate-delivery idempotency (ISSUE 10 satellite): the adversary plane
// can deliver any datagram k times, so every membership handler must be
// idempotent — re-applying HELLO / HELLO_ACK / LEAVE must not double-fire
// membership events, and a stale duplicate arriving after a reincarnation
// must not kill the new incarnation.
#include <gtest/gtest.h>

#include <unordered_set>

#include "membership/group_maintenance.hpp"
#include "sim/simulator.hpp"

namespace omega::membership {
namespace {

const group_id g1{1};
constexpr node_id n0{0};
constexpr node_id n1{1};

struct dup_fixture {
  sim::simulator sim;
  std::vector<std::pair<group_id, member_info>> joined;
  std::vector<std::pair<group_id, member_info>> removed;
  group_maintenance gm;

  dup_fixture() : gm(sim, sim, n0, /*inc=*/1, {}) {
    gm.set_events(group_maintenance::events{
        .on_member_joined =
            [this](group_id g, const member_info& m) {
              joined.emplace_back(g, m);
            },
        .on_member_removed =
            [this](group_id g, const member_info& m) {
              removed.emplace_back(g, m);
            },
        .on_member_reincarnated = nullptr,
    });
    gm.start();
    gm.local_join(g1, process_id{0}, true);
    joined.clear();
  }

  proto::hello_msg hello(incarnation inc) {
    proto::hello_msg msg;
    msg.from = n1;
    msg.inc = inc;
    msg.entries.push_back({g1, process_id{1}, true});
    return msg;
  }

  proto::leave_msg leave(incarnation inc) {
    proto::leave_msg msg;
    msg.from = n1;
    msg.inc = inc;
    msg.group = g1;
    msg.pid = process_id{1};
    return msg;
  }
};

TEST(DuplicateDelivery, RepeatedHelloJoinsOnce) {
  dup_fixture f;
  for (int i = 0; i < 4; ++i) f.gm.on_hello(f.hello(1), f.sim.now());
  EXPECT_EQ(f.joined.size(), 1u);
  EXPECT_EQ(f.gm.table(g1).members().size(), 2u);
}

TEST(DuplicateDelivery, RepeatedHelloAckJoinsOnce) {
  dup_fixture f;
  proto::hello_ack_msg ack;
  ack.from = n1;
  ack.inc = 1;
  ack.entries.push_back({g1, process_id{1}, n1, 1, true});
  for (int i = 0; i < 4; ++i) f.gm.on_hello_ack(ack, f.sim.now());
  EXPECT_EQ(f.joined.size(), 1u);
}

TEST(DuplicateDelivery, RepeatedLeaveRemovesOnce) {
  dup_fixture f;
  f.gm.on_hello(f.hello(1), f.sim.now());
  for (int i = 0; i < 4; ++i) f.gm.on_leave(f.leave(1));
  EXPECT_EQ(f.removed.size(), 1u);
  EXPECT_EQ(f.gm.table(g1).find(process_id{1}), nullptr);
}

TEST(DuplicateDelivery, StaleDuplicateLeaveSparesReincarnation) {
  // The classic resurrection-killer: p leaves (inc 1), rejoins as inc 2,
  // then the adversary replays the old LEAVE. The new incarnation must
  // survive, and no removal event may fire for it.
  dup_fixture f;
  f.gm.on_hello(f.hello(1), f.sim.now());
  f.gm.on_leave(f.leave(1));
  f.gm.on_hello(f.hello(2), f.sim.now());
  f.removed.clear();

  f.gm.on_leave(f.leave(1));  // delayed duplicate from the previous life
  const auto* m = f.gm.table(g1).find(process_id{1});
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->inc, 2u);
  EXPECT_TRUE(f.removed.empty());
}

TEST(DuplicateDelivery, StaleDuplicateHelloCannotDowngrade) {
  // A replayed HELLO from a dead incarnation must neither resurrect the
  // old entry nor fire a join event once inc 2 is installed.
  dup_fixture f;
  f.gm.on_hello(f.hello(2), f.sim.now());
  f.joined.clear();
  f.gm.on_hello(f.hello(1), f.sim.now());
  EXPECT_EQ(f.gm.table(g1).find(process_id{1})->inc, 2u);
  EXPECT_TRUE(f.joined.empty());
}

TEST(DuplicateDelivery, InterleavedDuplicatesConvergeToNewestIncarnation) {
  // An adversarial interleaving of duplicates from two incarnations: the
  // table must end on the newest incarnation with exactly one join event
  // per incarnation, however the copies are ordered.
  dup_fixture f;
  f.gm.on_hello(f.hello(1), f.sim.now());
  f.gm.on_hello(f.hello(2), f.sim.now());
  f.gm.on_hello(f.hello(1), f.sim.now());
  f.gm.on_hello(f.hello(2), f.sim.now());
  f.gm.on_hello(f.hello(1), f.sim.now());
  EXPECT_EQ(f.gm.table(g1).find(process_id{1})->inc, 2u);
  EXPECT_EQ(f.joined.size(), 2u);  // inc 1 once + inc 2 once
}

}  // namespace
}  // namespace omega::membership
