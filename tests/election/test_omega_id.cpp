// Unit tests for Omega_id (S1): leader = smallest id among trusted
// candidates. Includes the deliberate instability that motivates S2/S3.
#include <gtest/gtest.h>

#include "election/omega_id.hpp"
#include "elector_fixture.hpp"

namespace omega::election {
namespace {

using testing::elector_world;
using testing::payload_from;

constexpr process_id p1{1};
constexpr process_id p2{2};
constexpr process_id p3{3};

TEST(OmegaId, AloneElectsSelf) {
  elector_world w;
  omega_id e(w.context(p2, /*candidate=*/true));
  w.add_member(p2);
  EXPECT_EQ(e.evaluate(), p2);
}

TEST(OmegaId, SmallestTrustedCandidateWins) {
  elector_world w;
  omega_id e(w.context(p2, true));
  w.add_member(p1);
  w.add_member(p2);
  w.add_member(p3);
  EXPECT_EQ(e.evaluate(), p1);
}

TEST(OmegaId, SuspectedProcessIsSkipped) {
  elector_world w;
  omega_id e(w.context(p2, true));
  w.add_member(p1);
  w.add_member(p2);
  w.distrust(p1);
  EXPECT_EQ(e.evaluate(), p2);
}

TEST(OmegaId, TrustRestoredDemotesLeader) {
  // The instability S1 is famous for: a smaller id coming back always wins.
  elector_world w;
  omega_id e(w.context(p2, true));
  w.add_member(p1);
  w.add_member(p2);
  w.distrust(p1);
  ASSERT_EQ(e.evaluate(), p2);
  w.trust(p1);
  EXPECT_EQ(e.evaluate(), p1);
}

TEST(OmegaId, NonCandidatesNeverElected) {
  elector_world w;
  omega_id e(w.context(p3, true));
  w.add_member(p1, /*candidate=*/false);
  w.add_member(p2, /*candidate=*/false);
  w.add_member(p3, true);
  EXPECT_EQ(e.evaluate(), p3);
}

TEST(OmegaId, NoCandidateMeansNoLeader) {
  elector_world w;
  omega_id e(w.context(p2, /*candidate=*/false));
  w.add_member(p1, false);
  w.add_member(p2, false);
  EXPECT_EQ(e.evaluate(), std::nullopt);
}

TEST(OmegaId, SelfIsAlwaysFresh) {
  // A process never suspects itself even if its own node id is not in the
  // trusted set (the FD does not monitor the local node).
  elector_world w;
  omega_id e(w.context(p2, true));
  w.add_member(p2);
  w.distrust(p2);
  EXPECT_EQ(e.evaluate(), p2);
}

TEST(OmegaId, CandidatesSendAlive) {
  elector_world w;
  omega_id cand(w.context(p1, true));
  omega_id passive(w.context(p2, false));
  EXPECT_TRUE(cand.should_send_alive());
  EXPECT_FALSE(passive.should_send_alive());
}

TEST(OmegaId, PayloadCarriesIdentityAndCandidacy) {
  elector_world w;
  omega_id e(w.context(p2, true));
  proto::group_payload payload;
  e.fill_payload(payload);
  EXPECT_EQ(payload.pid, p2);
  EXPECT_TRUE(payload.candidate);
  EXPECT_TRUE(payload.competing);
  EXPECT_EQ(payload.group, group_id{1});
}

TEST(OmegaId, IgnoresAccusations) {
  // S1 has no accusation mechanism; an ACCUSE must be a no-op.
  elector_world w;
  omega_id e(w.context(p1, true));
  w.add_member(p1);
  proto::accuse_msg accuse;
  accuse.target = p1;
  accuse.target_inc = 1;
  e.on_accuse(accuse);
  EXPECT_EQ(e.evaluate(), p1);
}

TEST(OmegaId, NeverSendsAccusations) {
  elector_world w;
  omega_id e(w.context(p2, true));
  w.add_member(p1);
  w.add_member(p2);
  e.on_fd_transition(node_id{1}, false);
  EXPECT_TRUE(w.accusations.empty());
}

TEST(OmegaId, FactoryProducesOmegaId) {
  elector_world w;
  auto e = make_elector(algorithm::omega_id, w.context(p1, true));
  EXPECT_EQ(e->name(), "omega_id");
}

}  // namespace
}  // namespace omega::election
