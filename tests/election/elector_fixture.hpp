// Shared fixture for elector unit tests: a hand-cranked elector_context
// with a controllable clock, membership list, trust oracle, and a capture
// of outgoing ACCUSE messages.
#pragma once

#include <gtest/gtest.h>

#include <unordered_set>
#include <vector>

#include "election/elector.hpp"

namespace omega::election::testing {

class manual_clock final : public clock_source {
 public:
  [[nodiscard]] time_point now() const override { return now_; }
  void advance(duration d) { now_ += d; }
  void set(time_point t) { now_ = t; }

 private:
  time_point now_ = time_origin;
};

struct sent_accusation {
  proto::accuse_msg msg;
  node_id dst;
};

/// Builds contexts and keeps the mutable "world" the elector observes.
class elector_world {
 public:
  manual_clock clock;
  std::vector<membership::member_info> members;
  std::unordered_set<node_id> trusted;
  std::vector<sent_accusation> accusations;

  elector_context context(process_id self, bool candidate,
                          incarnation inc = 1) {
    elector_context ctx;
    ctx.self_node = node_id{self.value()};
    ctx.self_pid = self;
    ctx.self_inc = inc;
    ctx.group = group_id{1};
    ctx.candidate = candidate;
    ctx.clock = &clock;
    ctx.is_trusted = [this](node_id n) { return trusted.count(n) > 0; };
    ctx.members = [this]() -> const std::vector<membership::member_info>& {
      return members;
    };
    ctx.send_accuse = [this](const proto::accuse_msg& m, node_id dst) {
      accusations.push_back({m, dst});
    };
    return ctx;
  }

  /// Adds a member hosted on the node with the same numeric id.
  membership::member_info& add_member(process_id pid, bool candidate = true,
                                      incarnation inc = 1) {
    members.push_back({pid, node_id{pid.value()}, inc, candidate, clock.now()});
    trusted.insert(node_id{pid.value()});
    return members.back();
  }

  void remove_member(process_id pid) {
    std::erase_if(members,
                  [&](const membership::member_info& m) { return m.pid == pid; });
  }

  void distrust(process_id pid) { trusted.erase(node_id{pid.value()}); }
  void trust(process_id pid) { trusted.insert(node_id{pid.value()}); }
};

/// Convenience: an ALIVE payload as a peer running the same algorithm would
/// fill it in.
inline proto::group_payload payload_from(process_id pid, time_point acc,
                                         bool candidate = true,
                                         bool competing = true,
                                         std::uint32_t phase = 1) {
  proto::group_payload p;
  p.group = group_id{1};
  p.pid = pid;
  p.candidate = candidate;
  p.competing = competing;
  p.accusation_time = acc;
  p.phase = phase;
  p.local_leader = process_id::invalid();
  p.local_leader_acc = time_point{};
  return p;
}

}  // namespace omega::election::testing
