// ACCUSE idempotency under at-least-once delivery (ISSUE 10 satellite).
// The adversary plane duplicates and reorders datagrams, so both electors
// identify a suspicion by (accuser, accuser's suspicion time `when`):
// replaying the same ACCUSE, or delivering an older one late, must not
// demote the target a second time — otherwise a duplicating network keeps
// a healthy leader demoted forever. A genuinely *new* suspicion from the
// same accuser (a later `when`) must still count.
#include <gtest/gtest.h>

#include "election/omega_l.hpp"
#include "election/omega_lc.hpp"
#include "elector_fixture.hpp"

namespace omega::election {
namespace {

using testing::elector_world;

constexpr process_id p1{1};

proto::accuse_msg accuse_from(node_id accuser, time_point when,
                              std::uint32_t phase = 1) {
  proto::accuse_msg msg;
  msg.from = accuser;
  msg.group = group_id{1};
  msg.target = p1;
  msg.target_inc = 1;
  msg.when = when;
  msg.phase = phase;
  return msg;
}

TEST(AccuseIdempotency, OmegaLcReplayDoesNotDemoteTwice) {
  elector_world w;
  w.clock.set(time_origin + sec(10));
  omega_lc e(w.context(p1, true));
  w.add_member(p1);

  const proto::accuse_msg msg = accuse_from(node_id{2}, w.clock.now());
  e.on_accuse(msg);
  const time_point demoted_to = e.self_accusation_time();
  EXPECT_EQ(demoted_to, w.clock.now());

  // The duplicate arrives 30 s later. Without dedup this would re-stamp
  // self_acc to t40 — a permanent demotion under steady duplication.
  w.clock.advance(sec(30));
  e.on_accuse(msg);
  EXPECT_EQ(e.self_accusation_time(), demoted_to);
}

TEST(AccuseIdempotency, OmegaLcReorderedOlderAccuseIsSubsumed) {
  elector_world w;
  w.clock.set(time_origin + sec(10));
  omega_lc e(w.context(p1, true));
  w.add_member(p1);

  // The accuser suspected us at t5 and again at t10; the network delivers
  // them newest-first. The stale t5 suspicion is subsumed by the t10 one.
  e.on_accuse(accuse_from(node_id{2}, time_origin + sec(10)));
  const time_point demoted_to = e.self_accusation_time();
  w.clock.advance(sec(30));
  e.on_accuse(accuse_from(node_id{2}, time_origin + sec(5)));
  EXPECT_EQ(e.self_accusation_time(), demoted_to);
}

TEST(AccuseIdempotency, OmegaLcFreshSuspicionStillDemotes) {
  elector_world w;
  w.clock.set(time_origin + sec(10));
  omega_lc e(w.context(p1, true));
  w.add_member(p1);

  e.on_accuse(accuse_from(node_id{2}, w.clock.now()));
  const time_point first = e.self_accusation_time();

  // A genuinely newer suspicion from the same accuser must count.
  w.clock.advance(sec(30));
  e.on_accuse(accuse_from(node_id{2}, w.clock.now()));
  EXPECT_GT(e.self_accusation_time(), first);
}

TEST(AccuseIdempotency, OmegaLcDistinctAccusersEachCount) {
  elector_world w;
  w.clock.set(time_origin + sec(10));
  omega_lc e(w.context(p1, true));
  w.add_member(p1);

  // Two accusers happen to stamp the same `when`: dedup is per accuser,
  // so the second accuser's suspicion still demotes.
  const time_point when = w.clock.now();
  e.on_accuse(accuse_from(node_id{2}, when));
  const time_point first = e.self_accusation_time();
  w.clock.advance(sec(30));
  e.on_accuse(accuse_from(node_id{3}, when));
  EXPECT_GT(e.self_accusation_time(), first);
}

TEST(AccuseIdempotency, OmegaLReplayDoesNotDemoteTwice) {
  elector_world w;
  w.clock.set(time_origin + sec(10));
  omega_l e(w.context(p1, true));
  w.add_member(p1);
  ASSERT_EQ(e.evaluate(), p1);  // competing, phase 1

  const proto::accuse_msg msg = accuse_from(node_id{2}, w.clock.now());
  e.on_accuse(msg);
  const time_point demoted_to = e.self_accusation_time();
  EXPECT_EQ(demoted_to, w.clock.now());

  w.clock.advance(sec(30));
  e.on_accuse(msg);
  EXPECT_EQ(e.self_accusation_time(), demoted_to);
}

TEST(AccuseIdempotency, OmegaLPhaseGuardStillScreensReplays) {
  // Order of the two filters matters to neither outcome: a duplicate that
  // also carries a stale phase is dropped (by the phase guard and by the
  // dedup), and a current-phase duplicate is dropped by the dedup alone.
  elector_world w;
  w.clock.set(time_origin + sec(10));
  omega_l e(w.context(p1, true));
  w.add_member(p1);
  ASSERT_EQ(e.evaluate(), p1);
  const time_point join_acc = e.self_accusation_time();

  // Phase 0 predates our competition phase (1): ignored outright, and it
  // must not poison the dedup map for the real phase-1 suspicion.
  e.on_accuse(accuse_from(node_id{2}, w.clock.now(), /*phase=*/0));
  EXPECT_EQ(e.self_accusation_time(), join_acc)
      << "stale-phase accuse must not demote";

  const proto::accuse_msg real = accuse_from(node_id{2}, w.clock.now());
  e.on_accuse(real);
  const time_point demoted_to = e.self_accusation_time();
  EXPECT_EQ(demoted_to, w.clock.now());
  w.clock.advance(sec(30));
  e.on_accuse(real);
  EXPECT_EQ(e.self_accusation_time(), demoted_to);
}

}  // namespace
}  // namespace omega::election
