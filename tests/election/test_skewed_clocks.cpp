// Omega_lc under skewed clocks (ISSUE 10 satellite). Accusation times are
// read from each process's *local* clock and compared across processes, so
// a clock offset shifts every timestamp one process reports. The algorithm
// never compensates — instead its stability argument makes offsets benign:
// accusation times of distinct processes are separated by join/accusation
// *events* (seconds apart), so an offset far smaller than that separation
// can never flip the (accusation time, pid) order; and an offset large
// enough to flip one comparison still cannot make the skewed candidate win
// or lose *permanently*, because a single accusation moves its time past
// any bounded offset. These tests pin both halves of that argument, plus
// stage-2 forwarding carrying skewed timestamps verbatim.
//
// Mechanics: two elector instances live in two `elector_world`s whose
// manual clocks disagree by a constant offset; `advance()` moves both in
// lockstep (real time passes equally, the clocks just disagree), electors
// are constructed at the instant whose local reading should become their
// join-time accusation stamp, and payloads are ferried between the
// instances exactly as ALIVEs would carry them.
#include <gtest/gtest.h>

#include "election/omega_lc.hpp"
#include "elector_fixture.hpp"

namespace omega::election {
namespace {

using testing::elector_world;
using testing::payload_from;

constexpr process_id p1{1};
constexpr process_id p2{2};
constexpr process_id p3{3};

/// Two worlds with disagreeing clocks advancing in lockstep. World `a`
/// hosts p1 and runs `skew` ahead of world `b`'s (reference) clock.
struct skewed_pair {
  elector_world a;  // p1's world, clock = reference + skew
  elector_world b;  // p2's world, reference clock

  explicit skewed_pair(duration skew, duration start = duration{0}) {
    a.clock.set(time_origin + start + skew);
    b.clock.set(time_origin + start);
  }

  void advance(duration d) {
    a.clock.advance(d);
    b.clock.advance(d);
  }

  /// Both processes appear in both membership views.
  void add_members() {
    for (auto* world : {&a, &b}) {
      world->add_member(p1);
      world->add_member(p2);
    }
  }
};

/// Ferries `from`'s current ALIVE payload into `to`.
void deliver(omega_lc& from, process_id from_pid, omega_lc& to) {
  proto::group_payload p;
  from.fill_payload(p);
  to.on_alive_payload(node_id{from_pid.value()}, 1, p);
}

TEST(SkewedClocks, SmallOffsetCannotStealEstablishedLeadership) {
  // p2 is the established leader (stamp t0). p1 joins 50 s later with its
  // clock 300 ms *behind* — its join stamp reads 49.7 s, "too early" by
  // the offset but still far later than t0. The offset must not hand p1
  // the leadership on either side.
  skewed_pair w(msec(-300));
  omega_lc e2(w.b.context(p2, true));  // stamp t0
  w.advance(sec(50));
  omega_lc e1(w.a.context(p1, true));  // stamp t49.7
  w.add_members();

  deliver(e2, p2, e1);
  deliver(e1, p1, e2);
  EXPECT_EQ(e1.evaluate(), p2);
  EXPECT_EQ(e2.evaluate(), p2);
}

TEST(SkewedClocks, SkewedCandidateStillWinsWhenGenuinelyEarliest) {
  // The mirror image: p1's clock runs 300 ms *ahead*, inflating its join
  // stamp to t0.3 — but p1 is genuinely senior by 50 s, so the offset
  // must not cost it the election either.
  skewed_pair w(msec(300));
  omega_lc e1(w.a.context(p1, true));  // stamp t0.3
  w.advance(sec(50));
  omega_lc e2(w.b.context(p2, true));  // stamp t50
  w.add_members();

  deliver(e1, p1, e2);
  deliver(e2, p2, e1);
  EXPECT_EQ(e1.evaluate(), p1);
  EXPECT_EQ(e2.evaluate(), p1);
}

TEST(SkewedClocks, AccusedSkewedLeaderIsDemotedDespiteOffset) {
  // p1 leads with its clock 300 ms behind. When an accusation lands, p1
  // re-stamps its accusation time from its *own* (behind) clock — still
  // tens of seconds past p2's stamp, so the offset cannot save it.
  skewed_pair w(msec(-300), sec(10));
  omega_lc e1(w.a.context(p1, true));  // stamp t9.7
  omega_lc e2(w.b.context(p2, true));  // stamp t10
  w.add_members();
  deliver(e1, p1, e2);
  deliver(e2, p2, e1);
  ASSERT_EQ(e2.evaluate(), p1);

  w.advance(sec(60));
  proto::accuse_msg accuse;
  accuse.from = node_id{2};
  accuse.group = group_id{1};
  accuse.target = p1;
  accuse.target_inc = 1;
  e1.on_accuse(accuse);
  // p1's own clock reads t69.7 — behind real time, but 59.7 s past p2.
  EXPECT_EQ(e1.self_accusation_time(), w.a.clock.now());

  deliver(e1, p1, e2);
  EXPECT_EQ(e1.evaluate(), p2);
  EXPECT_EQ(e2.evaluate(), p2);
}

TEST(SkewedClocks, OversizedOffsetFlipsOneElectionButNotForever) {
  // The documented boundary: an offset LARGER than the stamp separation
  // does flip the comparison — p1's clock is 5 s behind and the genuine
  // seniority gap is only 2 s, so p1's join stamp (t7) undercuts the
  // sitting leader's (t10) and p1 wrongly wins. The stability property is
  // that this cannot be permanent: one accusation against p1 moves its
  // stamp past any bounded offset and the rightful leader takes over for
  // good.
  skewed_pair w(sec(-5), sec(10));
  omega_lc e2(w.b.context(p2, true));  // stamp t10
  w.advance(sec(2));
  omega_lc e1(w.a.context(p1, true));  // joins at real t12, stamps t7
  w.add_members();
  deliver(e1, p1, e2);
  deliver(e2, p2, e1);
  ASSERT_EQ(e2.evaluate(), p1) << "oversized offset should flip the rank";

  // p2's FD (rightly or wrongly) accuses p1 once.
  w.advance(sec(30));
  proto::accuse_msg accuse;
  accuse.from = node_id{2};
  accuse.group = group_id{1};
  accuse.target = p1;
  accuse.target_inc = 1;
  e1.on_accuse(accuse);
  deliver(e1, p1, e2);
  EXPECT_EQ(e1.evaluate(), p2);
  EXPECT_EQ(e2.evaluate(), p2);

  // ...and p1's offset cannot win it back: its stamp only moves forward.
  w.advance(sec(30));
  deliver(e2, p2, e1);
  deliver(e1, p1, e2);
  EXPECT_EQ(e1.evaluate(), p2);
  EXPECT_EQ(e2.evaluate(), p2);
}

TEST(SkewedClocks, ForwardingCarriesSkewedStampsVerbatim) {
  // Stage 2 must forward a skewed leader's accusation stamp as-is: p2's
  // direct link FROM p1 is dead (FD suspects p1), p3 forwards p1 as its
  // local leader with p1's behind-by-300ms stamp. p2 keeps electing p1
  // through the report, exactly as with a true stamp.
  elector_world w;
  w.clock.set(time_origin + sec(100));
  omega_lc e(w.context(p2, true));
  w.add_member(p1);
  w.add_member(p2);
  w.add_member(p3);

  const time_point skewed_stamp = time_origin + sec(1) - msec(300);
  proto::group_payload from_p3 = payload_from(p3, time_origin + sec(50));
  from_p3.local_leader = p1;
  from_p3.local_leader_acc = skewed_stamp;
  e.on_alive_payload(node_id{3}, 1, from_p3);
  w.distrust(p1);

  EXPECT_EQ(e.evaluate(), p1);
  // The suppression rule holds regardless of the stamp's skew: while p3
  // forwards p1, p2's pending accusation of p1 must not fire.
  EXPECT_TRUE(w.accusations.empty());
}

}  // namespace
}  // namespace omega::election
