// Ablation tests: each disabled mechanism must visibly lose the property it
// exists to provide, at both unit and cluster scale. These back the
// ablation_mechanisms bench.
#include <gtest/gtest.h>

#include "election/omega_l.hpp"
#include "election/omega_lc.hpp"
#include "elector_fixture.hpp"
#include "harness/experiment.hpp"

namespace omega::election {
namespace {

using testing::elector_world;
using testing::payload_from;

constexpr process_id p1{1};
constexpr process_id p2{2};
constexpr process_id p3{3};

TEST(AblationOmegaLc, NoForwardingLosesLeaderBehindCrashedLink) {
  // Exactly the OmegaLc.ForwardingElectsLeaderBehindCrashedLink setup, with
  // forwarding off: the elector must fall back to itself.
  elector_world w;
  w.clock.set(time_origin + sec(100));
  omega_lc e(w.context(p2, true), omega_lc::options{.forwarding = false});
  w.add_member(p1);
  w.add_member(p2);
  w.add_member(p3);

  proto::group_payload from_p3 = payload_from(p3, time_origin + sec(50));
  from_p3.local_leader = p1;
  from_p3.local_leader_acc = time_origin + sec(1);
  e.on_alive_payload(node_id{3}, 1, from_p3);
  w.distrust(p1);

  EXPECT_EQ(e.evaluate(), p3)
      << "without forwarding, the unreachable p1 must not be electable";
}

TEST(AblationOmegaLc, ForwardingVariantsAgreeOnHealthyLinks) {
  // With all links healthy the ablation is behaviour-identical: forwarding
  // only matters when direct knowledge is missing.
  elector_world w;
  w.clock.set(time_origin + sec(100));
  omega_lc full(w.context(p2, true));
  omega_lc ablated(w.context(p2, true), omega_lc::options{.forwarding = false});
  w.add_member(p1);
  w.add_member(p2);
  for (auto* e : {&full, &ablated}) {
    e->on_alive_payload(node_id{1}, 1, payload_from(p1, time_origin + sec(5)));
  }
  EXPECT_EQ(full.evaluate(), ablated.evaluate());
}

TEST(AblationOmegaL, NoPhaseGuardPunishesVoluntarySilence) {
  elector_world w;
  w.clock.set(time_origin + sec(100));
  omega_l e(w.context(p2, true), omega_l::options{.phase_guard = false});
  w.add_member(p1);
  w.add_member(p2);
  e.on_alive_payload(node_id{1}, 1, payload_from(p1, time_origin + sec(10)));
  ASSERT_EQ(e.evaluate(), p1);  // withdrawn, voluntarily silent

  const time_point before = e.self_accusation_time();
  w.clock.advance(sec(5));
  proto::accuse_msg accuse;
  accuse.target = p2;
  accuse.target_inc = 1;
  accuse.phase = 0;  // stale phase: guard would drop it
  e.on_accuse(accuse);
  EXPECT_GT(e.self_accusation_time(), before)
      << "ablated variant must accept the stale accusation";
}

TEST(AblationOmegaL, PhaseGuardVariantsAgreeOnFreshAccusations) {
  for (bool guard : {true, false}) {
    elector_world w;
    w.clock.set(time_origin + sec(10));
    omega_l e(w.context(p1, true), omega_l::options{.phase_guard = guard});
    w.add_member(p1);
    ASSERT_EQ(e.evaluate(), p1);
    proto::group_payload mine;
    e.fill_payload(mine);

    w.clock.advance(sec(1));
    proto::accuse_msg accuse;
    accuse.target = p1;
    accuse.target_inc = 1;
    accuse.phase = mine.phase;  // current phase: both variants must demote
    e.on_accuse(accuse);
    EXPECT_EQ(e.self_accusation_time(), w.clock.now())
        << "guard=" << guard;
  }
}

TEST(AblationFactory, NamesDistinguishVariants) {
  elector_world w;
  EXPECT_EQ(make_elector(algorithm::omega_lc_noforward, w.context(p1, true))
                ->name(),
            "omega_lc_noforward");
  EXPECT_EQ(make_elector(algorithm::omega_l_nophase, w.context(p1, true))
                ->name(),
            "omega_l_nophase");
}

// ---- cluster scale ----------------------------------------------------------

TEST(AblationCluster, NoForwardingCollapsesUnderLinkCrashes) {
  // Figure 7's mechanism claim, isolated: with frequent link crashes, S2's
  // availability advantage must vanish when forwarding is disabled.
  harness::scenario sc;
  sc.name = "ablation-noforward";
  sc.nodes = 6;
  sc.churn = harness::churn_profile::none();
  sc.link_crashes = net::link_crash_profile::crashes(sec(30), sec(3));
  sc.measured = sec(900);
  sc.seed = 5;

  sc.alg = algorithm::omega_lc;
  harness::experiment full(sc);
  const double with_forwarding = full.run().p_leader;

  sc.alg = algorithm::omega_lc_noforward;
  harness::experiment ablated(sc);
  const double without_forwarding = ablated.run().p_leader;

  EXPECT_GT(with_forwarding, without_forwarding)
      << "forwarding is the robustness mechanism; removing it must hurt";
}

TEST(AblationCluster, NoPhaseGuardDestabilizesOmegaL) {
  // A quiet cluster with churn: the guarded S3 never demotes a live leader;
  // the unguarded variant racks up unjustified demotions because withdrawn
  // processes keep getting (wrongly) accused... whenever they re-enter.
  harness::scenario sc;
  sc.name = "ablation-nophase";
  sc.nodes = 6;
  sc.churn = harness::churn_profile::paper_default();
  sc.churn.mean_uptime = sec(120);
  sc.measured = sec(900);
  sc.seed = 5;

  sc.alg = algorithm::omega_l;
  harness::experiment guarded(sc);
  const auto rg = guarded.run();

  sc.alg = algorithm::omega_l_nophase;
  harness::experiment unguarded(sc);
  const auto ru = unguarded.run();

  EXPECT_GE(ru.unjustified, rg.unjustified);
  EXPECT_LE(rg.unjustified, 1u) << "guarded omega_l should be stable";
}

}  // namespace
}  // namespace omega::election
