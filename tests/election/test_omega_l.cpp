// Unit tests for Omega_l (S3): communication-efficient election via
// competition withdrawal, with phase-guarded accusations protecting
// voluntary silence (the algorithm's stability mechanism).
#include <gtest/gtest.h>

#include "election/omega_l.hpp"
#include "elector_fixture.hpp"

namespace omega::election {
namespace {

using testing::elector_world;
using testing::payload_from;

constexpr process_id p1{1};
constexpr process_id p2{2};
constexpr process_id p3{3};

TEST(OmegaL, CandidateStartsCompeting) {
  elector_world w;
  omega_l e(w.context(p1, true));
  w.add_member(p1);
  EXPECT_TRUE(e.should_send_alive());
  EXPECT_EQ(e.evaluate(), p1);
  EXPECT_TRUE(e.should_send_alive());
}

TEST(OmegaL, NonCandidateNeverCompetes) {
  elector_world w;
  omega_l e(w.context(p1, false));
  w.add_member(p1, false);
  EXPECT_FALSE(e.should_send_alive());
  EXPECT_EQ(e.evaluate(), std::nullopt);
}

TEST(OmegaL, WithdrawsWhenBetterContenderAppears) {
  // Communication efficiency: hearing a better contender makes us stop
  // sending ALIVEs.
  elector_world w;
  w.clock.set(time_origin + sec(100));
  omega_l e(w.context(p2, true));  // self acc = t100
  w.add_member(p1);
  w.add_member(p2);
  ASSERT_TRUE(e.should_send_alive());

  e.on_alive_payload(node_id{1}, 1, payload_from(p1, time_origin + sec(10)));
  EXPECT_EQ(e.evaluate(), p1);
  EXPECT_FALSE(e.should_send_alive()) << "losing contender must fall silent";
}

TEST(OmegaL, ReentersCompetitionWhenLeaderSuspected) {
  elector_world w;
  w.clock.set(time_origin + sec(100));
  omega_l e(w.context(p2, true));
  w.add_member(p1);
  w.add_member(p2);
  e.on_alive_payload(node_id{1}, 1, payload_from(p1, time_origin + sec(10)));
  ASSERT_EQ(e.evaluate(), p1);
  ASSERT_FALSE(e.should_send_alive());

  // FD times out on p1's node: accuse and re-enter the competition.
  w.distrust(p1);
  e.on_fd_transition(node_id{1}, false);
  EXPECT_EQ(e.evaluate(), p2);
  EXPECT_TRUE(e.should_send_alive());
  ASSERT_EQ(w.accusations.size(), 1u);
  EXPECT_EQ(w.accusations[0].msg.target, p1);
}

TEST(OmegaL, AccusePhaseMatchesLastSeenPayload) {
  elector_world w;
  omega_l e(w.context(p2, true));
  w.add_member(p1);
  w.add_member(p2);
  e.on_alive_payload(node_id{1}, 1,
                     payload_from(p1, time_origin, true, true, /*phase=*/7));
  e.on_fd_transition(node_id{1}, false);
  ASSERT_EQ(w.accusations.size(), 1u);
  EXPECT_EQ(w.accusations[0].msg.phase, 7u);
}

TEST(OmegaL, CurrentPhaseAccusationDemotes) {
  elector_world w;
  w.clock.set(time_origin + sec(10));
  omega_l e(w.context(p1, true));
  w.add_member(p1);
  ASSERT_EQ(e.evaluate(), p1);

  proto::group_payload mine;
  e.fill_payload(mine);
  ASSERT_TRUE(mine.competing);

  w.clock.advance(sec(20));
  proto::accuse_msg accuse;
  accuse.target = p1;
  accuse.target_inc = 1;
  accuse.phase = mine.phase;  // matches our live competition phase
  e.on_accuse(accuse);
  EXPECT_EQ(e.self_accusation_time(), w.clock.now());
}

TEST(OmegaL, StalePhaseAccusationIgnored) {
  // THE stability mechanism: an accusation earned during voluntary silence
  // (or any earlier phase) must not advance the accusation time.
  elector_world w;
  w.clock.set(time_origin + sec(10));
  omega_l e(w.context(p1, true));
  w.add_member(p1);
  ASSERT_EQ(e.evaluate(), p1);
  proto::group_payload mine;
  e.fill_payload(mine);

  const time_point before = e.self_accusation_time();
  w.clock.advance(sec(20));
  proto::accuse_msg accuse;
  accuse.target = p1;
  accuse.target_inc = 1;
  accuse.phase = mine.phase - 1;  // from before our current epoch
  e.on_accuse(accuse);
  EXPECT_EQ(e.self_accusation_time(), before);
}

TEST(OmegaL, AccusationWhileSilentIgnored) {
  elector_world w;
  w.clock.set(time_origin + sec(100));
  omega_l e(w.context(p2, true));
  w.add_member(p1);
  w.add_member(p2);
  e.on_alive_payload(node_id{1}, 1, payload_from(p1, time_origin + sec(10)));
  ASSERT_EQ(e.evaluate(), p1);  // now silent

  const time_point before = e.self_accusation_time();
  w.clock.advance(sec(5));
  proto::accuse_msg accuse;
  accuse.target = p2;
  accuse.target_inc = 1;
  accuse.phase = 1;
  e.on_accuse(accuse);
  EXPECT_EQ(e.self_accusation_time(), before)
      << "a withdrawn process cannot be demoted by accusations";
}

TEST(OmegaL, ReentryIncrementsPhase) {
  elector_world w;
  w.clock.set(time_origin + sec(100));
  omega_l e(w.context(p2, true));
  w.add_member(p1);
  w.add_member(p2);

  proto::group_payload first;
  e.fill_payload(first);

  // Withdraw (p1 is better), then p1 crashes and we re-enter.
  e.on_alive_payload(node_id{1}, 1, payload_from(p1, time_origin + sec(10)));
  ASSERT_EQ(e.evaluate(), p1);
  w.distrust(p1);
  e.on_fd_transition(node_id{1}, false);
  ASSERT_EQ(e.evaluate(), p2);

  proto::group_payload second;
  e.fill_payload(second);
  EXPECT_GT(second.phase, first.phase)
      << "re-entering the competition must open a new phase";
}

TEST(OmegaL, GracefulWithdrawalDropsContenderImmediately) {
  // A payload with competing=false removes the contender without waiting
  // for an FD timeout.
  elector_world w;
  w.clock.set(time_origin + sec(100));
  omega_l e(w.context(p2, true));
  w.add_member(p1);
  w.add_member(p2);
  e.on_alive_payload(node_id{1}, 1, payload_from(p1, time_origin + sec(10)));
  ASSERT_EQ(e.evaluate(), p1);

  e.on_alive_payload(node_id{1}, 1,
                     payload_from(p1, time_origin + sec(10), true,
                                  /*competing=*/false));
  EXPECT_EQ(e.evaluate(), p2);
  EXPECT_TRUE(e.should_send_alive());
}

TEST(OmegaL, SuspectedContenderNotElected) {
  elector_world w;
  w.clock.set(time_origin + sec(100));
  omega_l e(w.context(p2, true));
  w.add_member(p1);
  w.add_member(p2);
  e.on_alive_payload(node_id{1}, 1, payload_from(p1, time_origin + sec(10)));
  ASSERT_EQ(e.evaluate(), p1);
  w.distrust(p1);  // FD verdict flips without the transition callback yet
  EXPECT_EQ(e.evaluate(), p2);
}

TEST(OmegaL, StaleIncarnationPayloadIgnored) {
  elector_world w;
  w.clock.set(time_origin + sec(100));
  omega_l e(w.context(p2, true));
  w.add_member(p1, true, 2);
  w.add_member(p2);
  e.on_alive_payload(node_id{1}, 2, payload_from(p1, time_origin + sec(90)));
  e.on_alive_payload(node_id{1}, 1, payload_from(p1, time_origin + sec(1)));
  // The live incarnation's (later) acc time must rank, so we (t100) lose to
  // p1@t90, not to the ghost p1@t1. Verify indirectly: accuse p1@inc2 via a
  // fresh payload with even later time — then we must win.
  ASSERT_EQ(e.evaluate(), p1);
  e.on_alive_payload(node_id{1}, 2, payload_from(p1, time_origin + sec(150)));
  EXPECT_EQ(e.evaluate(), p2);
}

TEST(OmegaL, ContenderMustBeCurrentMember) {
  elector_world w;
  w.clock.set(time_origin + sec(100));
  omega_l e(w.context(p2, true));
  w.add_member(p2);
  // p1 sends ALIVEs but never joined the group (no HELLO processed).
  e.on_alive_payload(node_id{1}, 1, payload_from(p1, time_origin + sec(10)));
  EXPECT_EQ(e.evaluate(), p2);
}

TEST(OmegaL, MemberRemovalForgetsContender) {
  elector_world w;
  w.clock.set(time_origin + sec(100));
  omega_l e(w.context(p2, true));
  w.add_member(p1);
  w.add_member(p2);
  e.on_alive_payload(node_id{1}, 1, payload_from(p1, time_origin + sec(10)));
  ASSERT_EQ(e.evaluate(), p1);
  e.on_member_removed({p1, node_id{1}, 1, true, {}});
  w.remove_member(p1);
  EXPECT_EQ(e.evaluate(), p2);
}

TEST(OmegaL, LateJoinerDoesNotDemoteEstablishedLeader) {
  // Stability parity with S2 for the rejoin scenario that breaks S1.
  elector_world w;
  w.clock.set(time_origin + sec(100));
  omega_l e(w.context(p2, true));
  w.add_member(p2);
  ASSERT_EQ(e.evaluate(), p2);

  w.clock.advance(sec(10));
  w.add_member(p1);
  e.on_alive_payload(node_id{1}, 1, payload_from(p1, w.clock.now()));
  EXPECT_EQ(e.evaluate(), p2);
  EXPECT_TRUE(e.should_send_alive());
}

TEST(OmegaL, PayloadReflectsCompetitionState) {
  elector_world w;
  w.clock.set(time_origin + sec(100));
  omega_l e(w.context(p2, true));
  w.add_member(p1);
  w.add_member(p2);

  proto::group_payload competing;
  e.fill_payload(competing);
  EXPECT_TRUE(competing.competing);
  EXPECT_EQ(competing.accusation_time, time_origin + sec(100));

  e.on_alive_payload(node_id{1}, 1, payload_from(p1, time_origin + sec(10)));
  ASSERT_EQ(e.evaluate(), p1);
  proto::group_payload silent;
  e.fill_payload(silent);
  EXPECT_FALSE(silent.competing);
}

TEST(OmegaL, FactoryProducesOmegaL) {
  elector_world w;
  auto e = make_elector(algorithm::omega_l, w.context(p1, true));
  EXPECT_EQ(e->name(), "omega_l");
}

}  // namespace
}  // namespace omega::election
