// Property-style tests: randomized event sequences against invariants that
// must hold for every elector implementation, swept across algorithms and
// seeds with parameterized gtest.
//
// Invariants checked after every step:
//   I1. evaluate() only ever returns a *candidate member* (or nothing).
//   I2. self_accusation_time() is monotonically non-decreasing.
//   I3. fill_payload() emits our own identity and current candidacy.
//   I4. evaluate() is deterministic: calling it twice in a row without new
//       events yields the same leader.
//   I5. If the local process is the only candidate member and no event ever
//       mentioned another candidate, it elects itself (liveness baseline).
#include <gtest/gtest.h>

#include <tuple>

#include "common/random.hpp"
#include "election/elector.hpp"
#include "elector_fixture.hpp"

namespace omega::election {
namespace {

using testing::elector_world;
using testing::payload_from;

using param = std::tuple<algorithm, std::uint64_t>;  // (algorithm, seed)

class ElectorProperties : public ::testing::TestWithParam<param> {};

TEST_P(ElectorProperties, RandomEventSoup) {
  const auto [alg, seed] = GetParam();
  rng r{seed};
  elector_world w;
  w.clock.set(time_origin + sec(1));

  constexpr process_id self{1};
  auto e = make_elector(alg, w.context(self, /*candidate=*/true));
  w.add_member(self);

  // A pool of four other processes that randomly join/leave/speak.
  constexpr std::uint32_t kPool = 4;
  std::vector<bool> present(kPool + 2, false);
  std::vector<incarnation> incs(kPool + 2, 0);
  present[self.value()] = true;

  time_point last_self_acc = e->self_accusation_time();

  for (int step = 0; step < 400; ++step) {
    w.clock.advance(msec(1 + static_cast<std::int64_t>(r.uniform_below(500))));
    const std::uint32_t pid_num =
        2 + static_cast<std::uint32_t>(r.uniform_below(kPool));
    const process_id pid{pid_num};
    const node_id node{pid_num};

    switch (r.uniform_below(6)) {
      case 0: {  // join (new incarnation)
        if (!present[pid_num]) {
          present[pid_num] = true;
          ++incs[pid_num];
          w.add_member(pid, /*candidate=*/r.bernoulli(0.8), incs[pid_num]);
        }
        break;
      }
      case 1: {  // leave / removal
        if (present[pid_num]) {
          present[pid_num] = false;
          e->on_member_removed({pid, node, incs[pid_num],
                                /*candidate=*/true, {}});
          w.remove_member(pid);
        }
        break;
      }
      case 2: {  // ALIVE payload (sometimes from a stale incarnation)
        const bool stale = r.bernoulli(0.2) && incs[pid_num] > 1;
        const incarnation inc =
            stale ? incs[pid_num] - 1 : std::max<incarnation>(1, incs[pid_num]);
        auto p = payload_from(
            pid, w.clock.now() - msec(static_cast<std::int64_t>(
                     r.uniform_below(5000))),
            /*candidate=*/r.bernoulli(0.9),
            /*competing=*/r.bernoulli(0.8),
            /*phase=*/static_cast<std::uint32_t>(r.uniform_below(4)));
        e->on_alive_payload(node, inc, p);
        break;
      }
      case 3: {  // FD verdict flip
        const bool trusted = r.bernoulli(0.5);
        if (trusted) {
          w.trusted.insert(node);
        } else {
          w.trusted.erase(node);
        }
        e->on_fd_transition(node, trusted);
        break;
      }
      case 4: {  // accusation aimed at us (random phase / incarnation)
        proto::accuse_msg accuse;
        accuse.from = node;
        accuse.group = group_id{1};
        accuse.target = self;
        accuse.target_inc = r.bernoulli(0.8) ? 1 : 2;
        accuse.phase = static_cast<std::uint32_t>(r.uniform_below(4));
        accuse.when = w.clock.now();
        e->on_accuse(accuse);
        break;
      }
      case 5: {  // accusation aimed at someone else entirely
        proto::accuse_msg accuse;
        accuse.target = pid;
        accuse.target_inc = incs[pid_num];
        accuse.phase = 1;
        e->on_accuse(accuse);
        break;
      }
    }

    // ---- invariants --------------------------------------------------------
    const auto leader = e->evaluate();
    if (leader) {
      const bool is_candidate_member = std::any_of(
          w.members.begin(), w.members.end(),
          [&](const membership::member_info& m) {
            return m.pid == *leader && m.candidate;
          });
      ASSERT_TRUE(is_candidate_member)
          << "I1 violated at step " << step << ": elected "
          << leader->value() << " which is not a candidate member";
    }

    ASSERT_GE(e->self_accusation_time(), last_self_acc)
        << "I2 violated at step " << step;
    last_self_acc = e->self_accusation_time();

    proto::group_payload payload;
    e->fill_payload(payload);
    ASSERT_EQ(payload.pid, self) << "I3 violated at step " << step;
    ASSERT_TRUE(payload.candidate) << "I3 violated at step " << step;

    ASSERT_EQ(e->evaluate(), leader) << "I4 violated at step " << step;
  }
}

TEST_P(ElectorProperties, SoleCandidateElectsSelf) {
  const auto [alg, seed] = GetParam();
  rng r{seed ^ 0xabcdef};
  elector_world w;
  w.clock.set(time_origin + sec(1));

  constexpr process_id self{1};
  auto e = make_elector(alg, w.context(self, true));
  w.add_member(self);
  // Add non-candidate members only; they chat but never compete.
  for (std::uint32_t i = 2; i <= 4; ++i) {
    w.add_member(process_id{i}, /*candidate=*/false);
  }
  for (int step = 0; step < 100; ++step) {
    w.clock.advance(msec(100));
    const std::uint32_t pid_num = 2 + static_cast<std::uint32_t>(r.uniform_below(3));
    e->on_alive_payload(node_id{pid_num}, 1,
                        payload_from(process_id{pid_num}, w.clock.now(),
                                     /*candidate=*/false,
                                     /*competing=*/false));
    ASSERT_EQ(e->evaluate(), self) << "I5 violated at step " << step;
  }
}

std::string param_name(const ::testing::TestParamInfo<param>& info) {
  const auto [alg, seed] = info.param;
  std::string name;
  switch (alg) {
    case algorithm::omega_id: name = "S1"; break;
    case algorithm::omega_lc: name = "S2"; break;
    case algorithm::omega_l: name = "S3"; break;
  }
  return name + "_seed" + std::to_string(seed);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ElectorProperties,
    ::testing::Combine(::testing::Values(algorithm::omega_id,
                                         algorithm::omega_lc,
                                         algorithm::omega_l),
                       ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u)),
    param_name);

}  // namespace
}  // namespace omega::election
