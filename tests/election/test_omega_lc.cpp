// Unit tests for Omega_lc (S2): accusation-time ranking with local-leader
// forwarding (the mechanism that tolerates crashed links).
#include <gtest/gtest.h>

#include "election/omega_lc.hpp"
#include "elector_fixture.hpp"

namespace omega::election {
namespace {

using testing::elector_world;
using testing::payload_from;

constexpr process_id p1{1};
constexpr process_id p2{2};
constexpr process_id p3{3};
constexpr process_id p4{4};

TEST(OmegaLc, AloneElectsSelf) {
  elector_world w;
  omega_lc e(w.context(p1, true));
  w.add_member(p1);
  EXPECT_EQ(e.evaluate(), p1);
}

TEST(OmegaLc, EarliestAccusationTimeWins) {
  elector_world w;
  w.clock.set(time_origin + sec(100));
  omega_lc e(w.context(p2, true));  // self_acc = t100
  w.add_member(p1);
  w.add_member(p2);
  // p1 joined (and was therefore last "accused") at t10 — earlier, so p1
  // outranks us even though our id is bigger... and also when it's smaller.
  e.on_alive_payload(node_id{1}, 1, payload_from(p1, time_origin + sec(10)));
  EXPECT_EQ(e.evaluate(), p1);
}

TEST(OmegaLc, IdBreaksAccusationTies) {
  elector_world w;
  w.clock.set(time_origin + sec(50));
  omega_lc e(w.context(p3, true));
  w.add_member(p2);
  w.add_member(p3);
  e.on_alive_payload(node_id{2}, 1, payload_from(p2, time_origin + sec(50)));
  EXPECT_EQ(e.evaluate(), p2);  // same acc time, smaller id
}

TEST(OmegaLc, LateJoinerDoesNotDemoteEstablishedLeader) {
  // The headline stability property: S2 has none of S1's rejoin churn.
  elector_world w;
  w.clock.set(time_origin + sec(100));
  omega_lc e(w.context(p2, true));
  w.add_member(p2);
  ASSERT_EQ(e.evaluate(), p2);

  // p1 (smaller id!) joins later with a later accusation time.
  w.clock.advance(sec(10));
  w.add_member(p1);
  e.on_alive_payload(node_id{1}, 1, payload_from(p1, w.clock.now()));
  EXPECT_EQ(e.evaluate(), p2) << "rejoining smaller id must not win";
}

TEST(OmegaLc, AccusationDemotesSelf) {
  elector_world w;
  w.clock.set(time_origin + sec(10));
  omega_lc e(w.context(p1, true));
  w.add_member(p1);
  w.add_member(p2);
  w.clock.advance(sec(5));
  e.on_alive_payload(node_id{2}, 1, payload_from(p2, w.clock.now()));
  ASSERT_EQ(e.evaluate(), p1);  // earlier acc time

  // Someone suspects us; our accusation time moves to now and p2 wins.
  w.clock.advance(sec(30));
  proto::accuse_msg accuse;
  accuse.from = node_id{2};
  accuse.group = group_id{1};
  accuse.target = p1;
  accuse.target_inc = 1;
  e.on_accuse(accuse);
  EXPECT_EQ(e.evaluate(), p2);
  EXPECT_EQ(e.self_accusation_time(), w.clock.now());
}

TEST(OmegaLc, AccuseForWrongIncarnationIgnored) {
  elector_world w;
  omega_lc e(w.context(p1, true, /*inc=*/3));
  w.add_member(p1);
  const time_point before = e.self_accusation_time();
  w.clock.advance(sec(5));
  proto::accuse_msg accuse;
  accuse.target = p1;
  accuse.target_inc = 2;  // stale: aimed at our previous life
  e.on_accuse(accuse);
  EXPECT_EQ(e.self_accusation_time(), before);
}

TEST(OmegaLc, AccuseForOtherProcessIgnored) {
  elector_world w;
  omega_lc e(w.context(p1, true));
  const time_point before = e.self_accusation_time();
  w.clock.advance(sec(5));
  proto::accuse_msg accuse;
  accuse.target = p2;
  accuse.target_inc = 1;
  e.on_accuse(accuse);
  EXPECT_EQ(e.self_accusation_time(), before);
}

TEST(OmegaLc, SuspicionSendsAccuseToHostNode) {
  elector_world w;
  omega_lc e(w.context(p1, true));
  w.add_member(p1);
  w.add_member(p2);
  e.on_alive_payload(node_id{2}, 1, payload_from(p2, time_origin));

  e.on_fd_transition(node_id{2}, /*trusted=*/false);
  ASSERT_EQ(w.accusations.size(), 1u);
  EXPECT_EQ(w.accusations[0].msg.target, p2);
  EXPECT_EQ(w.accusations[0].msg.target_inc, 1u);
  EXPECT_EQ(w.accusations[0].dst, node_id{2});
}

TEST(OmegaLc, NoAccuseForNonCandidates) {
  elector_world w;
  omega_lc e(w.context(p1, true));
  w.add_member(p2, /*candidate=*/false);
  e.on_alive_payload(node_id{2}, 1,
                     payload_from(p2, time_origin, /*candidate=*/false));
  e.on_fd_transition(node_id{2}, false);
  EXPECT_TRUE(w.accusations.empty()) << "passive members are never accused";
}

TEST(OmegaLc, SuspectedPeerNotElectedDirectly) {
  elector_world w;
  w.clock.set(time_origin + sec(100));
  omega_lc e(w.context(p2, true));
  w.add_member(p1);
  w.add_member(p2);
  e.on_alive_payload(node_id{1}, 1, payload_from(p1, time_origin + sec(1)));
  ASSERT_EQ(e.evaluate(), p1);
  w.distrust(p1);
  EXPECT_EQ(e.evaluate(), p2);
}

TEST(OmegaLc, ForwardingElectsLeaderBehindCrashedLink) {
  // The defining S2 scenario: our direct link FROM p1 is dead (we suspect
  // p1), but p3 still hears p1 and forwards it as p3's local leader. We
  // must keep electing p1 through p3's report.
  elector_world w;
  w.clock.set(time_origin + sec(100));
  omega_lc e(w.context(p2, true));
  w.add_member(p1);
  w.add_member(p2);
  w.add_member(p3);

  // p3's ALIVE reaches us, reporting p1 (acc t1) as p3's local leader.
  proto::group_payload from_p3 = payload_from(p3, time_origin + sec(50));
  from_p3.local_leader = p1;
  from_p3.local_leader_acc = time_origin + sec(1);
  e.on_alive_payload(node_id{3}, 1, from_p3);

  // We never heard p1 directly and our FD suspects its node.
  w.distrust(p1);

  EXPECT_EQ(e.evaluate(), p1) << "forwarded leader must survive link crash";
}

TEST(OmegaLc, ForwardedLeaderMustStillBeCandidateMember) {
  // Forwarding cannot resurrect a process that has left the group: p1 is
  // reported as p3's local leader with a stellar accusation time, but p1 is
  // not a member, so the election must fall to the best *member* (p3, whose
  // acc time beats ours).
  elector_world w;
  w.clock.set(time_origin + sec(100));
  omega_lc e(w.context(p2, true));
  w.add_member(p2);
  w.add_member(p3);

  proto::group_payload from_p3 = payload_from(p3, time_origin + sec(50));
  from_p3.local_leader = p1;  // p1 is not a member here
  from_p3.local_leader_acc = time_origin + sec(1);
  e.on_alive_payload(node_id{3}, 1, from_p3);

  EXPECT_EQ(e.evaluate(), p3);
}

TEST(OmegaLc, FreshestAccusationTimeWinsAcrossSources) {
  // If we directly know a *later* accusation time for the forwarded leader,
  // the forwarded (stale, earlier) one must not make it rank better.
  elector_world w;
  w.clock.set(time_origin + sec(100));
  omega_lc e(w.context(p2, true));
  w.add_member(p1);
  w.add_member(p2);
  w.add_member(p3);

  // Directly: p1 has acc t90 (recently accused). Our own acc is t100.
  e.on_alive_payload(node_id{1}, 1, payload_from(p1, time_origin + sec(90)));
  // p3 forwards p1 with a stale acc t1.
  proto::group_payload from_p3 = payload_from(p3, time_origin + sec(95));
  from_p3.local_leader = p1;
  from_p3.local_leader_acc = time_origin + sec(1);
  e.on_alive_payload(node_id{3}, 1, from_p3);

  // Ranking must use p1@t90: p1 still wins over us (t100) and p3 (t95),
  // but via the *fresh* time. Demote p1 once more and p3 must take over.
  ASSERT_EQ(e.evaluate(), p1);
  proto::group_payload newer = payload_from(p1, time_origin + sec(98));
  e.on_alive_payload(node_id{1}, 1, newer);
  EXPECT_EQ(e.evaluate(), p3);
}

TEST(OmegaLc, AccusationTimesNeverRegress) {
  // A delayed old ALIVE with an earlier accusation time must not roll the
  // peer's accusation time back.
  elector_world w;
  w.clock.set(time_origin + sec(100));
  omega_lc e(w.context(p2, true));
  w.add_member(p1);
  w.add_member(p2);
  e.on_alive_payload(node_id{1}, 1, payload_from(p1, time_origin + sec(60)));
  e.on_alive_payload(node_id{1}, 1, payload_from(p1, time_origin + sec(5)));
  // p1@t60 still loses to... nothing here; verify through ranking against
  // a third peer with acc t30.
  w.add_member(p3);
  e.on_alive_payload(node_id{3}, 1, payload_from(p3, time_origin + sec(30)));
  EXPECT_EQ(e.evaluate(), p3) << "regressed acc time would have made p1 win";
}

TEST(OmegaLc, StaleIncarnationPayloadIgnored) {
  // The live incarnation of p1 ranks *behind* us (acc t150 > our t100); a
  // delayed ALIVE from p1's previous life claims acc t1, which would rank
  // first. Electing p1 would mean the ghost won.
  elector_world w;
  w.clock.set(time_origin + sec(100));
  omega_lc e(w.context(p2, true));
  w.add_member(p1, true, /*inc=*/2);
  w.add_member(p2);
  e.on_alive_payload(node_id{1}, 2, payload_from(p1, time_origin + sec(150)));
  e.on_alive_payload(node_id{1}, 1, payload_from(p1, time_origin + sec(1)));
  EXPECT_EQ(e.evaluate(), p2) << "ghost of a previous incarnation elected";
}

TEST(OmegaLc, MemberRemovalForgetsPeerState) {
  elector_world w;
  w.clock.set(time_origin + sec(100));
  omega_lc e(w.context(p2, true));
  w.add_member(p1);
  w.add_member(p2);
  e.on_alive_payload(node_id{1}, 1, payload_from(p1, time_origin + sec(1)));
  ASSERT_EQ(e.evaluate(), p1);

  e.on_member_removed({p1, node_id{1}, 1, true, {}});
  w.remove_member(p1);
  EXPECT_EQ(e.evaluate(), p2);

  // p1 re-joins as a new incarnation with a fresh acc time: stays behind p2
  // only if its state was really forgotten (fresh join time > our acc).
  w.clock.advance(sec(10));
  w.add_member(p1, true, 2);
  e.on_alive_payload(node_id{1}, 2, payload_from(p1, w.clock.now()));
  EXPECT_EQ(e.evaluate(), p2);
}

TEST(OmegaLc, RemovalOfNewerIncarnationKeepsState) {
  elector_world w;
  omega_lc e(w.context(p2, true));
  w.add_member(p1, true, 2);
  w.add_member(p2);
  e.on_alive_payload(node_id{1}, 2, payload_from(p1, time_origin));
  // A late removal notice for the *older* incarnation must not erase the
  // live incarnation's state.
  e.on_member_removed({p1, node_id{1}, 1, true, {}});
  EXPECT_EQ(e.evaluate(), p1);
}

TEST(OmegaLc, PayloadCarriesLocalLeaderForwarding) {
  elector_world w;
  w.clock.set(time_origin + sec(100));
  omega_lc e(w.context(p2, true));
  w.add_member(p1);
  w.add_member(p2);
  e.on_alive_payload(node_id{1}, 1, payload_from(p1, time_origin + sec(1)));

  proto::group_payload payload;
  e.fill_payload(payload);
  EXPECT_EQ(payload.pid, p2);
  EXPECT_TRUE(payload.competing) << "every alive S2 process is active";
  EXPECT_EQ(payload.local_leader, p1);
  EXPECT_EQ(payload.local_leader_acc, time_origin + sec(1));
}

TEST(OmegaLc, AlwaysSendsAlive) {
  elector_world w;
  omega_lc cand(w.context(p1, true));
  omega_lc passive(w.context(p2, false));
  EXPECT_TRUE(cand.should_send_alive());
  EXPECT_TRUE(passive.should_send_alive())
      << "S2 processes broadcast membership evidence even as non-candidates";
}

TEST(OmegaLc, NonCandidateSelfNeverElectsItself) {
  elector_world w;
  omega_lc e(w.context(p2, /*candidate=*/false));
  w.add_member(p2, false);
  EXPECT_EQ(e.evaluate(), std::nullopt);
}

TEST(OmegaLc, FourProcessConvergenceScenario) {
  // A miniature run: all four elect the earliest-accused process, then it
  // is accused and everyone must converge on the runner-up.
  elector_world w;
  w.clock.set(time_origin + sec(100));
  omega_lc e(w.context(p4, true));
  for (auto pid : {p1, p2, p3, p4}) w.add_member(pid);
  e.on_alive_payload(node_id{1}, 1, payload_from(p1, time_origin + sec(30)));
  e.on_alive_payload(node_id{2}, 1, payload_from(p2, time_origin + sec(20)));
  e.on_alive_payload(node_id{3}, 1, payload_from(p3, time_origin + sec(25)));
  ASSERT_EQ(e.evaluate(), p2);

  // p2 gets accused (we learn via its next ALIVE carrying a later time).
  e.on_alive_payload(node_id{2}, 1,
                     payload_from(p2, time_origin + sec(120)));
  EXPECT_EQ(e.evaluate(), p3);
}

TEST(OmegaLc, FactoryProducesOmegaLc) {
  elector_world w;
  auto e = make_elector(algorithm::omega_lc, w.context(p1, true));
  EXPECT_EQ(e->name(), "omega_lc");
}

TEST(OmegaLc, StabilityScoreTakenOncePerCandidatePerEvaluation) {
  // The scorer callback may walk the adaptation engine's records, so
  // stage 1 must take it once per candidate into a vector — not once per
  // max/filter pass — and fill_payload must reuse the evaluate() result
  // instead of re-running stage 1 (up to 4x per candidate before the fix).
  elector_world w;
  w.clock.set(time_origin + sec(100));
  auto ctx = w.context(p1, true);
  std::size_t calls = 0;
  ctx.stability_score = [&calls](process_id) {
    ++calls;
    return 1.0;
  };
  omega_lc e(std::move(ctx));
  for (auto pid : {p1, p2, p3}) w.add_member(pid);
  e.on_alive_payload(node_id{2}, 1, payload_from(p2, time_origin + sec(20)));
  e.on_alive_payload(node_id{3}, 1, payload_from(p3, time_origin + sec(25)));

  calls = 0;
  ASSERT_EQ(e.evaluate(), p2);
  EXPECT_EQ(calls, 3u);  // three eligible candidates, one score each

  proto::group_payload payload;
  e.fill_payload(payload);
  EXPECT_EQ(payload.local_leader, p2);
  EXPECT_EQ(calls, 3u);  // fill_payload reused the cached stage-1 result

  e.evaluate();
  EXPECT_EQ(calls, 6u);  // each evaluation scores once per candidate
}

TEST(OmegaLc, StabilityFilterStillDropsUnstableCandidate) {
  // Regression guard for the vectorized filter: an unstable candidate far
  // below the best score is dropped even when it has the earliest
  // accusation time.
  elector_world w;
  w.clock.set(time_origin + sec(100));
  auto ctx = w.context(p1, true);
  ctx.stability_score = [](process_id pid) {
    return pid == p2 ? 0.1 : 0.9;  // p2 flaps; everyone else is solid
  };
  omega_lc e(std::move(ctx));
  for (auto pid : {p1, p2, p3}) w.add_member(pid);
  e.on_alive_payload(node_id{2}, 1, payload_from(p2, time_origin + sec(20)));
  e.on_alive_payload(node_id{3}, 1, payload_from(p3, time_origin + sec(25)));
  EXPECT_EQ(e.evaluate(), p3);  // p2 filtered out, p3 beats p1 on acc time
}

}  // namespace
}  // namespace omega::election
