#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace omega::sim {
namespace {

TEST(Simulator, StartsAtOrigin) {
  simulator s;
  EXPECT_EQ(s.now(), time_origin);
  EXPECT_TRUE(s.idle());
}

TEST(Simulator, EventsFireInTimeOrder) {
  simulator s;
  std::vector<int> order;
  s.schedule_at(time_origin + sec(3), [&] { order.push_back(3); });
  s.schedule_at(time_origin + sec(1), [&] { order.push_back(1); });
  s.schedule_at(time_origin + sec(2), [&] { order.push_back(2); });
  s.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.now(), time_origin + sec(3));
}

TEST(Simulator, EqualTimesFireFifo) {
  simulator s;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    s.schedule_at(time_origin + sec(1), [&order, i] { order.push_back(i); });
  }
  s.run_all();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Simulator, ScheduleAfterUsesCurrentTime) {
  simulator s;
  time_point fired{};
  s.schedule_at(time_origin + sec(5), [&] {
    s.schedule_after(sec(2), [&] { fired = s.now(); });
  });
  s.run_all();
  EXPECT_EQ(fired, time_origin + sec(7));
}

TEST(Simulator, CancelPreventsFiring) {
  simulator s;
  bool fired = false;
  const timer_id id = s.schedule_at(time_origin + sec(1), [&] { fired = true; });
  s.cancel(id);
  s.run_all();
  EXPECT_FALSE(fired);
  EXPECT_TRUE(s.idle());
}

TEST(Simulator, CancelIsIdempotentAndSafeAfterFire) {
  simulator s;
  int count = 0;
  const timer_id id = s.schedule_at(time_origin + sec(1), [&] { ++count; });
  s.run_all();
  s.cancel(id);  // already fired: no-op
  s.cancel(id);
  EXPECT_EQ(count, 1);
}

TEST(Simulator, RunUntilStopsAtDeadline) {
  simulator s;
  int count = 0;
  s.schedule_at(time_origin + sec(1), [&] { ++count; });
  s.schedule_at(time_origin + sec(10), [&] { ++count; });
  s.run_until(time_origin + sec(5));
  EXPECT_EQ(count, 1);
  EXPECT_EQ(s.now(), time_origin + sec(5));
  s.run_until(time_origin + sec(15));
  EXPECT_EQ(count, 2);
}

TEST(Simulator, EventAtDeadlineBoundaryFires) {
  simulator s;
  bool fired = false;
  s.schedule_at(time_origin + sec(5), [&] { fired = true; });
  s.run_until(time_origin + sec(5));
  EXPECT_TRUE(fired);
}

TEST(Simulator, PastSchedulingClampsToNow) {
  simulator s;
  s.run_until(time_origin + sec(10));
  time_point fired{};
  s.schedule_at(time_origin + sec(1), [&] { fired = s.now(); });
  s.run_all();
  EXPECT_EQ(fired, time_origin + sec(10));
}

TEST(Simulator, CallbackCanScheduleAndCancel) {
  simulator s;
  bool victim_fired = false;
  const timer_id victim =
      s.schedule_at(time_origin + sec(2), [&] { victim_fired = true; });
  s.schedule_at(time_origin + sec(1), [&] { s.cancel(victim); });
  s.run_all();
  EXPECT_FALSE(victim_fired);
}

TEST(Simulator, PeriodicRescheduling) {
  simulator s;
  int fires = 0;
  std::function<void()> tick = [&] {
    ++fires;
    if (fires < 5) s.schedule_after(sec(1), tick);
  };
  s.schedule_after(sec(1), tick);
  s.run_until(time_origin + sec(100));
  EXPECT_EQ(fires, 5);
  EXPECT_EQ(s.events_executed(), 5u);
}

TEST(Simulator, LiveEventsExcludesCancelled) {
  simulator s;
  const timer_id a = s.schedule_at(time_origin + sec(1), [] {});
  s.schedule_at(time_origin + sec(2), [] {});
  EXPECT_EQ(s.live_events(), 2u);
  s.cancel(a);
  EXPECT_EQ(s.live_events(), 1u);
  EXPECT_FALSE(s.idle());
}

TEST(Simulator, CancelledIdsNeverAliasNewTimers) {
  // Slot reuse with generation tags: a stale id must not cancel the timer
  // that recycled its slot.
  simulator s;
  const timer_id stale = s.schedule_at(time_origin + sec(1), [] {});
  s.cancel(stale);
  bool fired = false;
  s.schedule_at(time_origin + sec(1), [&] { fired = true; });  // reuses slot
  s.cancel(stale);  // stale generation: must be a no-op
  s.run_all();
  EXPECT_TRUE(fired);
}

TEST(Simulator, CompactionPurgesCancelledBacklog) {
  // Cancel far more than half the queue: eager compaction must shrink the
  // heap to the live set instead of letting stale records pile up until
  // their (distant) deadlines.
  simulator s;
  std::vector<timer_id> victims;
  for (int i = 0; i < 1000; ++i) {
    victims.push_back(
        s.schedule_at(time_origin + sec(3600) + sec(i), [] {}));
  }
  int fired = 0;
  for (int i = 0; i < 10; ++i) {
    s.schedule_at(time_origin + sec(1) + sec(i), [&] { ++fired; });
  }
  for (const timer_id id : victims) s.cancel(id);
  EXPECT_EQ(s.live_events(), 10u);
  // Stale records (1000) far exceed live ones (10): compaction has run.
  // Below 64 records the queue is left to lazy purge (compaction there
  // would cost more than it saves), so that's the resting bound.
  EXPECT_LE(s.heap_size(), 64u);
  s.run_all();
  EXPECT_EQ(fired, 10);
  EXPECT_TRUE(s.idle());
}

TEST(Simulator, CompactionPreservesFiringOrder) {
  simulator s;
  std::vector<int> order;
  std::vector<timer_id> victims;
  // Interleave keepers and victims at identical times so a naive rebuild
  // that loses seq numbers would scramble FIFO order.
  for (int i = 0; i < 200; ++i) {
    s.schedule_at(time_origin + sec(1), [&order, i] { order.push_back(i); });
    victims.push_back(s.schedule_at(time_origin + sec(1), [] {}));
  }
  for (const timer_id id : victims) s.cancel(id);
  s.run_all();
  ASSERT_EQ(order.size(), 200u);
  for (int i = 0; i < 200; ++i) EXPECT_EQ(order[i], i);
}

TEST(Simulator, SlabReusesSlotsInSteadyState) {
  // A periodic timer re-arming itself must cycle through a bounded slab no
  // matter how many times it fires.
  simulator s;
  int fires = 0;
  std::function<void()> tick = [&] {
    ++fires;
    if (fires < 1000) s.schedule_after(sec(1), tick);
  };
  s.schedule_after(sec(1), tick);
  s.run_all();
  EXPECT_EQ(fires, 1000);
  EXPECT_LE(s.slab_slots(), 4u);
}

TEST(Simulator, StepRunsExactlyOne) {
  simulator s;
  int count = 0;
  s.schedule_at(time_origin + sec(1), [&] { ++count; });
  s.schedule_at(time_origin + sec(2), [&] { ++count; });
  EXPECT_TRUE(s.step());
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(s.step());
  EXPECT_EQ(count, 2);
  EXPECT_FALSE(s.step());
}

}  // namespace
}  // namespace omega::sim
