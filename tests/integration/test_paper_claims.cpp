// Paper-anchored integration tests: scaled-down versions of the paper's
// headline quantitative claims, small enough for the unit-test suite but
// tight enough to catch regressions in the reproduced behaviour.
#include <gtest/gtest.h>

#include "harness/experiment.hpp"

namespace omega::harness {
namespace {

scenario paper_like(election::algorithm alg) {
  scenario sc;
  sc.name = "paper-claims";
  sc.nodes = 12;
  sc.alg = alg;
  sc.links = net::link_profile::lan();
  sc.churn = churn_profile::paper_default();  // Exp(600 s) up, Exp(5 s) down
  sc.measured = sec(1800);                    // half a simulated hour
  sc.warmup = sec(60);
  sc.seed = 97;
  return sc;
}

TEST(PaperClaims, S1MakesRejoinMistakesAtRoughlySixPerHour) {
  // §6.2: "about 6 times every hour, a process with a smaller id than the
  // current leader re-joined the group ... and demoted this leader."
  // The rate is churn-driven: P(rejoiner has smaller id than the current
  // leader) averaged over a uniform leader is just under 1/2, and with 12
  // nodes crashing every 10 minutes that lands near 6/h. Allow a wide
  // statistical band — the point is "clearly nonzero and of that order".
  scenario sc = paper_like(election::algorithm::omega_id);
  experiment exp(sc);
  const auto r = exp.run();
  EXPECT_GE(r.lambda_u, 1.0);
  EXPECT_LE(r.lambda_u, 16.0);
}

TEST(PaperClaims, S2AndS3NeverDemoteUnjustifiedlyUnderChurn) {
  // §6.3/§6.4: zero unjustified demotions in every lossy-link setting.
  for (auto alg : {election::algorithm::omega_lc, election::algorithm::omega_l}) {
    scenario sc = paper_like(alg);
    sc.measured = sec(3600);  // long enough that churn hits the leader
    experiment exp(sc);
    const auto r = exp.run();
    EXPECT_EQ(r.unjustified, 0u) << election::to_string(alg);
    EXPECT_GT(r.justified + r.leader_crashes, 0u)
        << "churn must actually have exercised the election";
  }
}

TEST(PaperClaims, AvailabilityAboveNinetyNinePercentUnderChurn) {
  // §1: the service provided a commonly-agreed leader ~99.8% of the time
  // under full churn. At test scale we require > 99%.
  for (auto alg : {election::algorithm::omega_lc, election::algorithm::omega_l}) {
    scenario sc = paper_like(alg);
    experiment exp(sc);
    EXPECT_GT(exp.run().p_leader, 0.99) << election::to_string(alg);
  }
}

TEST(PaperClaims, RecoveryTimeTracksDetectionBound) {
  // §6.6: T_r stays just under T^U_D. Check both at the default 1 s and at
  // a tightened 0.5 s bound.
  for (double tud_s : {1.0, 0.5}) {
    scenario sc = paper_like(election::algorithm::omega_lc);
    sc.qos.detection_time = from_seconds(tud_s);
    sc.measured = sec(3600);
    experiment exp(sc);
    const auto r = exp.run();
    ASSERT_GT(r.tr_samples, 0u);
    EXPECT_LT(r.tr_mean_s, tud_s + 0.3) << "T^U_D=" << tud_s;
    EXPECT_GT(r.tr_mean_s, tud_s * 0.3) << "T^U_D=" << tud_s;
  }
}

TEST(PaperClaims, S3TrafficIsFarBelowS2) {
  // Figure 6 at n = 12: roughly an order of magnitude between S2 and S3.
  scenario s2 = paper_like(election::algorithm::omega_lc);
  scenario s3 = paper_like(election::algorithm::omega_l);
  s2.churn = s3.churn = churn_profile::none();
  s2.measured = s3.measured = sec(300);
  experiment e2(s2);
  experiment e3(s3);
  const double ratio = e2.run().kb_per_second / e3.run().kb_per_second;
  EXPECT_GT(ratio, 4.0);
}

TEST(PaperClaims, S2SurvivesLinkCrashesThatBreakS3) {
  // Figure 7's nastiest setting, scaled to 12 nodes / 20 simulated
  // minutes: S2 must stay clearly above S3 in availability.
  scenario base = paper_like(election::algorithm::omega_lc);
  base.link_crashes = net::link_crash_profile::crashes(sec(60), sec(3));
  base.measured = sec(1200);

  experiment s2(base);
  base.alg = election::algorithm::omega_l;
  experiment s3(base);

  const double p2 = s2.run().p_leader;
  const double p3 = s3.run().p_leader;
  EXPECT_GT(p2, 0.97);
  EXPECT_GT(p2, p3 + 0.02);
}

}  // namespace
}  // namespace omega::harness
