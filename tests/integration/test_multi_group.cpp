// Multi-group integration tests: one cluster, several groups with
// different QoS and candidate sets, exercising the shared-FD architecture
// end to end.
#include <gtest/gtest.h>

#include <memory>

#include "net/sim_network.hpp"
#include "service/service.hpp"
#include "sim/simulator.hpp"

namespace omega::service {
namespace {

const group_id fast_group{1};   // tight FD QoS
const group_id slow_group{2};   // loose FD QoS

struct multi_cluster {
  explicit multi_cluster(std::size_t n) : net(sim, n, net::link_profile::lan(), rng{31}) {
    for (std::size_t i = 0; i < n; ++i) roster.push_back(node_id{i});
    for (std::size_t i = 0; i < n; ++i) {
      service_config cfg;
      cfg.self = node_id{i};
      cfg.roster = roster;
      cfg.alg = election::algorithm::omega_lc;
      services.push_back(std::make_unique<leader_election_service>(
          sim, sim, net.endpoint(node_id{i}), cfg));
      auto& svc = *services.back();
      svc.register_process(process_id{i});

      join_options fast;
      fast.qos.detection_time = msec(300);
      svc.join_group(process_id{i}, fast_group, fast);

      join_options slow;
      slow.qos.detection_time = sec(2);
      svc.join_group(process_id{i}, slow_group, slow);
    }
    sim.run_until(sim.now() + sec(10));
  }

  void crash(std::size_t i) {
    net.set_node_alive(node_id{i}, false);
    services[i].reset();
  }

  std::optional<process_id> leader(std::size_t node, group_id g) {
    return services[node] ? services[node]->leader(g) : std::nullopt;
  }

  sim::simulator sim;
  net::sim_network net;
  std::vector<node_id> roster;
  std::vector<std::unique_ptr<leader_election_service>> services;
};

TEST(MultiGroup, BothGroupsElectTheSameClusterIndependently) {
  multi_cluster c(4);
  const auto lf = c.leader(0, fast_group);
  const auto ls = c.leader(0, slow_group);
  ASSERT_TRUE(lf.has_value());
  ASSERT_TRUE(ls.has_value());
  for (std::size_t i = 1; i < 4; ++i) {
    EXPECT_EQ(c.leader(i, fast_group), lf);
    EXPECT_EQ(c.leader(i, slow_group), ls);
  }
}

TEST(MultiGroup, TightQoSGroupRecoversFasterAfterLeaderCrash) {
  multi_cluster c(4);
  const auto lf = c.leader(0, fast_group);
  const auto ls = c.leader(0, slow_group);
  ASSERT_TRUE(lf.has_value());
  ASSERT_EQ(lf, ls) << "same ranking on both groups in this deployment";

  c.crash(lf->value());

  // After the fast group's detection bound (300 ms) plus margin but well
  // before the slow group's (2 s), only the fast group has moved on.
  const std::size_t probe = (lf->value() + 1) % 4;
  c.sim.run_until(c.sim.now() + msec(800));
  const auto fast_leader = c.leader(probe, fast_group);
  const auto slow_leader = c.leader(probe, slow_group);
  ASSERT_TRUE(fast_leader.has_value());
  EXPECT_NE(*fast_leader, *lf) << "fast group should have re-elected by now";
  ASSERT_TRUE(slow_leader.has_value());
  EXPECT_EQ(*slow_leader, *lf) << "slow group should still be in detection";

  // Eventually the slow group follows.
  c.sim.run_until(c.sim.now() + sec(5));
  const auto slow_after = c.leader(probe, slow_group);
  ASSERT_TRUE(slow_after.has_value());
  EXPECT_NE(*slow_after, *lf);
}

TEST(MultiGroup, HeartbeatRateFollowsTightestGroup) {
  multi_cluster c(2);
  // The node-level stream must satisfy the 300 ms group: eta <= 150 ms.
  EXPECT_LE(c.services[0]->current_eta(), msec(150));

  // Leaving the fast group everywhere relaxes the shared rate.
  for (std::size_t i = 0; i < 2; ++i) {
    c.services[i]->leave_group(process_id{i}, fast_group);
  }
  c.sim.run_until(c.sim.now() + sec(60));
  EXPECT_GT(c.services[0]->current_eta(), msec(150))
      << "without the tight group the stream should slow down";
}

TEST(MultiGroup, DisjointCandidateSetsYieldDifferentLeaders) {
  sim::simulator sim;
  net::sim_network net(sim, 4, net::link_profile::lan(), rng{32});
  std::vector<node_id> roster;
  for (std::size_t i = 0; i < 4; ++i) roster.push_back(node_id{i});
  std::vector<std::unique_ptr<leader_election_service>> services;
  for (std::size_t i = 0; i < 4; ++i) {
    service_config cfg;
    cfg.self = node_id{i};
    cfg.roster = roster;
    cfg.alg = election::algorithm::omega_l;
    services.push_back(std::make_unique<leader_election_service>(
        sim, sim, net.endpoint(node_id{i}), cfg));
    services.back()->register_process(process_id{i});
    join_options a;
    a.candidate = i < 2;  // group 1: candidates {0, 1}
    services.back()->join_group(process_id{i}, group_id{1}, a);
    join_options b;
    b.candidate = i >= 2;  // group 2: candidates {2, 3}
    services.back()->join_group(process_id{i}, group_id{2}, b);
  }
  sim.run_until(sim.now() + sec(10));

  const auto l1 = services[0]->leader(group_id{1});
  const auto l2 = services[0]->leader(group_id{2});
  ASSERT_TRUE(l1.has_value());
  ASSERT_TRUE(l2.has_value());
  EXPECT_LT(l1->value(), 2u);
  EXPECT_GE(l2->value(), 2u);
  for (std::size_t i = 1; i < 4; ++i) {
    EXPECT_EQ(services[i]->leader(group_id{1}), l1);
    EXPECT_EQ(services[i]->leader(group_id{2}), l2);
  }
}

}  // namespace
}  // namespace omega::service
