// End-to-end smoke tests: a full simulated cluster running the real service
// stack (transport, FD, membership, election) for each of the three
// algorithms. These are the first line of defence for the whole system.
#include <gtest/gtest.h>

#include "harness/experiment.hpp"

namespace omega::harness {
namespace {

scenario quiet_scenario(election::algorithm alg, std::size_t nodes = 4) {
  scenario sc;
  sc.name = "smoke";
  sc.nodes = nodes;
  sc.alg = alg;
  sc.links = net::link_profile::lan();
  sc.churn = churn_profile::none();
  sc.measured = sec(60);
  sc.warmup = sec(30);
  sc.seed = 7;
  return sc;
}

class ServiceSmoke : public ::testing::TestWithParam<election::algorithm> {};

TEST_P(ServiceSmoke, StableClusterAgreesOnOneLeaderForever) {
  experiment exp(quiet_scenario(GetParam()));
  const auto res = exp.run();
  EXPECT_DOUBLE_EQ(res.p_leader, 1.0) << "quiet cluster must stay agreed";
  EXPECT_EQ(res.unjustified, 0u);
  EXPECT_EQ(res.leader_crashes, 0u);
}

TEST_P(ServiceSmoke, AllNodesSeeTheSameLeader) {
  experiment exp(quiet_scenario(GetParam()));
  exp.run();
  const group_id g{1};
  std::optional<process_id> leader;
  for (std::uint32_t i = 0; i < 4; ++i) {
    auto* svc = exp.node_service(node_id{i});
    ASSERT_NE(svc, nullptr);
    const auto view = svc->leader(g);
    ASSERT_TRUE(view.has_value());
    if (!leader) leader = view;
    EXPECT_EQ(view, leader);
  }
}

TEST_P(ServiceSmoke, LeaderCrashTriggersRecoveryWithinQoSBound) {
  experiment exp(quiet_scenario(GetParam()));
  auto& sim = exp.simulator();
  sim.run_until(time_origin + sec(30));
  exp.group().begin(sim.now());

  const auto leader = exp.group().agreed_leader();
  ASSERT_TRUE(leader.has_value());
  exp.crash_node(node_id{leader->value()});
  // Default QoS: detect within 1s; election adds a little on a LAN.
  sim.run_until(sim.now() + sec(5));
  const auto new_leader = exp.group().agreed_leader();
  ASSERT_TRUE(new_leader.has_value());
  EXPECT_NE(*new_leader, *leader);
  exp.group().finish(sim.now());
  ASSERT_EQ(exp.group().recovery_times().count(), 1u);
  EXPECT_LT(exp.group().recovery_times().mean(), 2.0);
}

TEST_P(ServiceSmoke, CrashedLeaderRejoinsWithoutDisruption) {
  // Stability: the recovered ex-leader must NOT demote the new leader
  // (except under omega_id, where it does by design if it has a lower id).
  const auto alg = GetParam();
  experiment exp(quiet_scenario(alg));
  auto& sim = exp.simulator();
  sim.run_until(time_origin + sec(30));
  exp.group().begin(sim.now());

  const auto old_leader = exp.group().agreed_leader();
  ASSERT_TRUE(old_leader.has_value());
  exp.crash_node(node_id{old_leader->value()});
  sim.run_until(sim.now() + sec(5));
  exp.recover_node(node_id{old_leader->value()});
  sim.run_until(sim.now() + sec(30));
  exp.group().finish(sim.now());

  const auto final_leader = exp.group().agreed_leader();
  ASSERT_TRUE(final_leader.has_value());
  if (alg == election::algorithm::omega_id) {
    // Smallest id wins again after rejoining: one unjustified demotion.
    EXPECT_EQ(*final_leader, *old_leader);
    EXPECT_GE(exp.group().unjustified_demotions(), 1u);
  } else {
    EXPECT_NE(*final_leader, *old_leader);
    EXPECT_EQ(exp.group().unjustified_demotions(), 0u);
  }
}

std::string algorithm_name(const ::testing::TestParamInfo<election::algorithm>& info) {
  switch (info.param) {
    case election::algorithm::omega_id:
      return "S1_omega_id";
    case election::algorithm::omega_lc:
      return "S2_omega_lc";
    case election::algorithm::omega_l:
      return "S3_omega_l";
  }
  return "unknown";
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, ServiceSmoke,
                         ::testing::Values(election::algorithm::omega_id,
                                           election::algorithm::omega_lc,
                                           election::algorithm::omega_l),
                         algorithm_name);

}  // namespace
}  // namespace omega::harness
