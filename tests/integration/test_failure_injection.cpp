// Failure-injection integration tests: targeted link/node faults against
// the full service stack, exercising the behaviours Figures 4-7 rest on.
#include <gtest/gtest.h>

#include "harness/experiment.hpp"

namespace omega::harness {
namespace {

scenario quiet(election::algorithm alg, std::size_t nodes = 4) {
  scenario sc;
  sc.name = "failure-injection";
  sc.nodes = nodes;
  sc.alg = alg;
  sc.links = net::link_profile::lan();
  sc.churn = churn_profile::none();
  sc.measured = sec(60);
  sc.warmup = sec(30);
  sc.seed = 21;
  return sc;
}

/// Runs until the cluster has settled and returns the agreed leader.
process_id settle(experiment& exp) {
  exp.simulator().run_until(time_origin + sec(30));
  const auto leader = exp.group().agreed_leader();
  EXPECT_TRUE(leader.has_value());
  return leader.value_or(process_id::invalid());
}

TEST(FailureInjection, OmegaLcMasksLeaderOutboundLinkCrash) {
  // One leader-outbound link dies. With forwarding, every follower keeps
  // the leader: availability must not collapse and the leader must hold.
  experiment exp(quiet(election::algorithm::omega_lc));
  const process_id leader = settle(exp);
  exp.group().begin(exp.simulator().now());

  // Find a follower and cut leader -> follower.
  const node_id lnode{leader.value()};
  const node_id victim{(leader.value() + 1) % 4};
  exp.network().force_link_state(lnode, victim, false);
  exp.simulator().run_until(exp.simulator().now() + sec(30));
  exp.network().force_link_state(lnode, victim, true);
  exp.simulator().run_until(exp.simulator().now() + sec(10));
  exp.group().finish(exp.simulator().now());

  EXPECT_EQ(exp.group().agreed_leader(), leader)
      << "forwarding should have masked the single link crash";
  EXPECT_GT(exp.group().leader_availability(), 0.9);
}

TEST(FailureInjection, OmegaLRecoversAfterLeaderLinkCrash) {
  // Same fault under Omega_l: no forwarding, so the orphaned follower
  // diverges. After the link heals the group must re-converge on one
  // leader (possibly a new one).
  experiment exp(quiet(election::algorithm::omega_l));
  const process_id leader = settle(exp);

  const node_id lnode{leader.value()};
  const node_id victim{(leader.value() + 1) % 4};
  exp.network().force_link_state(lnode, victim, false);
  exp.simulator().run_until(exp.simulator().now() + sec(30));
  exp.network().force_link_state(lnode, victim, true);
  exp.simulator().run_until(exp.simulator().now() + sec(30));

  const auto healed = exp.group().agreed_leader();
  ASSERT_TRUE(healed.has_value()) << "group failed to re-converge";
}

TEST(FailureInjection, SymmetricPartitionHealsToOneLeader) {
  // Split 4 nodes into {0,1} | {2,3} for a while, then heal. Both halves
  // run elections during the partition; after healing everyone must agree
  // on a single leader again.
  experiment exp(quiet(election::algorithm::omega_lc));
  settle(exp);

  for (std::uint32_t a : {0u, 1u}) {
    for (std::uint32_t b : {2u, 3u}) {
      exp.network().force_link_state(node_id{a}, node_id{b}, false);
      exp.network().force_link_state(node_id{b}, node_id{a}, false);
    }
  }
  exp.simulator().run_until(exp.simulator().now() + sec(30));

  // During the partition there can be no global agreement: the two sides
  // trust different leaders (each side's members still count as alive).
  for (std::uint32_t a : {0u, 1u}) {
    for (std::uint32_t b : {2u, 3u}) {
      exp.network().force_link_state(node_id{a}, node_id{b}, true);
      exp.network().force_link_state(node_id{b}, node_id{a}, true);
    }
  }
  exp.simulator().run_until(exp.simulator().now() + sec(30));

  const auto healed = exp.group().agreed_leader();
  ASSERT_TRUE(healed.has_value()) << "no agreement after partition healed";
  for (std::uint32_t i = 0; i < 4; ++i) {
    auto* svc = exp.node_service(node_id{i});
    ASSERT_NE(svc, nullptr);
    EXPECT_EQ(svc->leader(group_id{1}), healed) << "node " << i << " dissents";
  }
}

TEST(FailureInjection, AsymmetricIsolationOfLeaderEventuallyDemotes) {
  // All of the leader's *outbound* links die (it can still hear others).
  // Nobody receives its heartbeats, so the group must elect someone else —
  // this is the one-way-link case Omega_lc is proven for [4].
  experiment exp(quiet(election::algorithm::omega_lc));
  const process_id leader = settle(exp);

  const node_id lnode{leader.value()};
  for (std::uint32_t i = 0; i < 4; ++i) {
    if (i != leader.value()) {
      exp.network().force_link_state(lnode, node_id{i}, false);
    }
  }
  exp.simulator().run_until(exp.simulator().now() + sec(30));

  for (std::uint32_t i = 0; i < 4; ++i) {
    if (i == leader.value()) continue;
    auto* svc = exp.node_service(node_id{i});
    ASSERT_NE(svc, nullptr);
    const auto view = svc->leader(group_id{1});
    ASSERT_TRUE(view.has_value());
    EXPECT_NE(*view, leader) << "node " << i << " still follows the mute leader";
  }
}

TEST(FailureInjection, NodeFlappingDoesNotWedgeTheGroup) {
  // A node that crashes and recovers rapidly must not prevent the rest of
  // the group from keeping a stable leader.
  experiment exp(quiet(election::algorithm::omega_lc));
  settle(exp);
  exp.group().begin(exp.simulator().now());

  const node_id flappy{3};
  for (int i = 0; i < 6; ++i) {
    exp.crash_node(flappy);
    exp.simulator().run_until(exp.simulator().now() + msec(400));
    exp.recover_node(flappy);
    exp.simulator().run_until(exp.simulator().now() + msec(600));
  }
  exp.simulator().run_until(exp.simulator().now() + sec(10));
  exp.group().finish(exp.simulator().now());

  EXPECT_TRUE(exp.group().agreed_leader().has_value());
  // The flapping non-leader must not have demoted anyone.
  EXPECT_EQ(exp.group().unjustified_demotions(), 0u);
}

TEST(FailureInjection, TotalBlackoutRecovers) {
  // Every link down for 10 s: all processes suspect everyone, then the
  // world comes back. The group must converge again.
  experiment exp(quiet(election::algorithm::omega_lc));
  settle(exp);

  for (std::uint32_t a = 0; a < 4; ++a) {
    for (std::uint32_t b = 0; b < 4; ++b) {
      if (a != b) exp.network().force_link_state(node_id{a}, node_id{b}, false);
    }
  }
  exp.simulator().run_until(exp.simulator().now() + sec(10));
  for (std::uint32_t a = 0; a < 4; ++a) {
    for (std::uint32_t b = 0; b < 4; ++b) {
      if (a != b) exp.network().force_link_state(node_id{a}, node_id{b}, true);
    }
  }
  exp.simulator().run_until(exp.simulator().now() + sec(30));

  const auto healed = exp.group().agreed_leader();
  ASSERT_TRUE(healed.has_value());
}

TEST(FailureInjection, SequentialLeaderAssassination) {
  // Kill whoever is leader, four times in a row; the service must always
  // produce a successor while candidates remain.
  experiment exp(quiet(election::algorithm::omega_lc, 6));
  settle(exp);
  exp.group().begin(exp.simulator().now());

  for (int round = 0; round < 4; ++round) {
    const auto leader = exp.group().agreed_leader();
    ASSERT_TRUE(leader.has_value()) << "round " << round;
    exp.crash_node(node_id{leader->value()});
    exp.simulator().run_until(exp.simulator().now() + sec(5));
  }
  const auto last = exp.group().agreed_leader();
  ASSERT_TRUE(last.has_value());
  exp.group().finish(exp.simulator().now());
  EXPECT_EQ(exp.group().unjustified_demotions(), 0u);
  EXPECT_EQ(exp.group().leader_crashes(), 4u);
  EXPECT_EQ(exp.group().recovery_times().count(), 4u);
  // Every recovery respected (roughly) the 1 s detection + election margin.
  EXPECT_LT(exp.group().recovery_times().mean(), 2.0);
}

}  // namespace
}  // namespace omega::harness
