// Service-layer observability: sink wiring, trace events emitted by the
// protocol modules, unknown-group drop accounting, per-group stats pruning
// and the service_stats -> registry export.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "net/sim_network.hpp"
#include "obs/exposition.hpp"
#include "obs/metrics.hpp"
#include "obs/service_export.hpp"
#include "obs/sink.hpp"
#include "obs/trace.hpp"
#include "proto/wire.hpp"
#include "service/service.hpp"
#include "sim/simulator.hpp"

namespace omega::service {
namespace {

const group_id g1{1};
const group_id g2{2};

/// Like the service_api cluster, but every instance gets its own
/// registry + ring recorder through an obs::sink.
struct observed_cluster {
  explicit observed_cluster(std::size_t n,
                            election::algorithm alg = election::algorithm::omega_lc)
      : net(sim, n, net::link_profile::lan(), rng{11}) {
    for (std::size_t i = 0; i < n; ++i) roster.push_back(node_id{i});
    for (std::size_t i = 0; i < n; ++i) {
      auto o = std::make_unique<node_obs>();
      service_config cfg;
      cfg.self = node_id{i};
      cfg.roster = roster;
      cfg.alg = alg;
      cfg.sink = &o->sink;
      obs.push_back(std::move(o));
      services.push_back(std::make_unique<leader_election_service>(
          sim, sim, net.endpoint(node_id{i}), cfg));
    }
  }

  leader_election_service& at(std::size_t i) { return *services[i]; }
  std::vector<obs::trace_event> events_of(std::size_t i) {
    return obs[i]->ring.events();
  }
  bool has_event(std::size_t i, obs::event_kind kind) {
    auto events = events_of(i);
    return std::any_of(events.begin(), events.end(),
                       [kind](const auto& ev) { return ev.kind == kind; });
  }
  void settle(duration d = sec(5)) { sim.run_until(sim.now() + d); }

  struct node_obs {
    obs::registry reg;
    obs::ring_recorder ring{1024};
    obs::sink sink{&reg, &ring};
  };

  sim::simulator sim;
  net::sim_network net;
  std::vector<node_id> roster;
  std::vector<std::unique_ptr<node_obs>> obs;
  std::vector<std::unique_ptr<leader_election_service>> services;
};

TEST(ServiceObs, SinkStampsRecordingNode) {
  observed_cluster c(2);
  for (std::size_t i = 0; i < 2; ++i) {
    c.at(i).register_process(process_id{i});
    c.at(i).join_group(process_id{i}, g1, {});
  }
  c.settle();
  auto events = c.events_of(1);
  ASSERT_FALSE(events.empty());
  for (const auto& ev : events) EXPECT_EQ(ev.node, node_id{1});
}

TEST(ServiceObs, LeaderChangeAndJoinEventsRecorded) {
  observed_cluster c(3);
  for (std::size_t i = 0; i < 3; ++i) {
    c.at(i).register_process(process_id{i});
    c.at(i).join_group(process_id{i}, g1, {});
  }
  c.settle();
  ASSERT_TRUE(c.at(0).leader(g1).has_value());
  EXPECT_TRUE(c.has_event(0, obs::event_kind::leader_change));
  EXPECT_TRUE(c.has_event(0, obs::event_kind::member_join));
  // The recorded leader matches the service's answer.
  auto events = c.events_of(0);
  std::optional<process_id> last;
  for (const auto& ev : events) {
    if (ev.kind == obs::event_kind::leader_change && ev.group == g1) {
      last = ev.subject.valid() ? std::optional(ev.subject) : std::nullopt;
    }
  }
  EXPECT_EQ(last, c.at(0).leader(g1));
}

TEST(ServiceObs, SuspicionAndAccusationEventsOnCrash) {
  observed_cluster c(3);
  for (std::size_t i = 0; i < 3; ++i) {
    c.at(i).register_process(process_id{i});
    c.at(i).join_group(process_id{i}, g1, {});
  }
  c.settle(sec(10));
  const auto leader = c.at(2).leader(g1);
  ASSERT_TRUE(leader.has_value());
  const std::size_t victim = leader->value();
  ASSERT_NE(victim, 2u);  // highest id never wins the paper's ranking

  c.services[victim].reset();  // crash: heartbeats stop
  c.settle(sec(30));

  const std::size_t observer = victim == 0 ? 1 : 0;
  auto events = c.events_of(observer);
  bool suspected = false;
  for (const auto& ev : events) {
    if (ev.kind == obs::event_kind::suspicion_raised &&
        ev.peer == node_id{victim}) {
      suspected = true;
      EXPECT_GT(ev.value, 0.0) << "seconds since last heartbeat";
    }
  }
  EXPECT_TRUE(suspected);
  EXPECT_TRUE(c.has_event(observer, obs::event_kind::accusation_sent));
  // And a survivor took over.
  const auto new_leader = c.at(observer).leader(g1);
  ASSERT_TRUE(new_leader.has_value());
  EXPECT_NE(*new_leader, *leader);
}

TEST(ServiceObs, CandidacyFlipRecorded) {
  observed_cluster c(1);
  c.at(0).register_process(process_id{0});
  join_options opts;
  opts.candidate = false;
  c.at(0).join_group(process_id{0}, g1, opts);
  c.settle();
  ASSERT_TRUE(c.at(0).set_candidacy(process_id{0}, g1, true));
  auto events = c.events_of(0);
  auto it = std::find_if(events.begin(), events.end(), [](const auto& ev) {
    return ev.kind == obs::event_kind::candidacy_flip;
  });
  ASSERT_NE(it, events.end());
  EXPECT_EQ(it->subject, process_id{0});
  EXPECT_DOUBLE_EQ(it->value, 1.0);
}

TEST(ServiceObs, UnknownGroupDropCountedAndTraced) {
  observed_cluster c(2);
  c.at(0).register_process(process_id{0});
  c.at(0).join_group(process_id{0}, g1, {});
  c.settle(sec(2));
  ASSERT_EQ(c.at(0).stats().dropped_unknown_group, 0u);

  // A stale LEAVE for a group node 0 never joined (e.g. the sender has not
  // processed our own departure yet).
  proto::leave_msg leave;
  leave.from = node_id{1};
  leave.inc = 1;
  leave.group = g2;
  leave.pid = process_id{1};
  c.net.endpoint(node_id{1}).send(node_id{0}, proto::encode(leave));
  c.settle(sec(1));

  EXPECT_EQ(c.at(0).stats().dropped_unknown_group, 1u);
  auto events = c.events_of(0);
  auto it = std::find_if(events.begin(), events.end(), [](const auto& ev) {
    return ev.kind == obs::event_kind::unknown_group_drop;
  });
  ASSERT_NE(it, events.end());
  EXPECT_EQ(it->group, g2);
  EXPECT_EQ(it->peer, node_id{1});
}

TEST(ServiceObs, HelloByGroupPrunedOnLeave) {
  observed_cluster c(2);
  for (std::size_t i = 0; i < 2; ++i) {
    c.at(i).register_process(process_id{i});
    c.at(i).join_group(process_id{i}, g1, {});
    c.at(i).join_group(process_id{i}, g2, {});
  }
  c.settle(sec(30));
  ASSERT_TRUE(c.at(0).stats().hello_by_group.contains(g1));
  ASSERT_TRUE(c.at(0).stats().hello_by_group.contains(g2));

  c.at(0).leave_group(process_id{0}, g1);
  // Departed groups must not keep stale accounting rows alive forever (a
  // long-lived instance cycling through many groups would leak them).
  EXPECT_FALSE(c.at(0).stats().hello_by_group.contains(g1));
  EXPECT_TRUE(c.at(0).stats().hello_by_group.contains(g2));
}

TEST(ServiceObs, ExportPublishesServiceStats) {
  observed_cluster c(2);
  for (std::size_t i = 0; i < 2; ++i) {
    c.at(i).register_process(process_id{i});
    c.at(i).join_group(process_id{i}, g1, {});
  }
  c.settle(sec(10));
  obs::export_service_stats(c.obs[0]->reg, c.at(0));

  auto& reg = c.obs[0]->reg;
  const auto alive = reg.get_counter("omega_messages_sent_total",
                                     {{"kind", "alive"}, {"node", "0"}})
                         .value();
  EXPECT_EQ(alive, c.at(0).stats().alive_sent);
  EXPECT_GT(alive, 0u);
  const auto received =
      reg.get_counter("omega_datagrams_received_total", {{"node", "0"}}).value();
  EXPECT_EQ(received, c.at(0).stats().datagrams_received);
  EXPECT_GT(reg.get_gauge("omega_heartbeat_interval_seconds", {{"node", "0"}})
                .value(),
            0.0);

  // The whole registry renders and re-parses (the exposition smoke).
  auto samples = obs::parse_prometheus(obs::render_prometheus(reg));
  ASSERT_TRUE(samples.has_value());
  EXPECT_FALSE(samples->empty());
}

}  // namespace
}  // namespace omega::service
