// Service-layer observability: sink wiring, trace events emitted by the
// protocol modules, unknown-group drop accounting, per-group stats pruning
// and the service_stats -> registry export.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "net/sim_network.hpp"
#include "obs/causal_graph.hpp"
#include "obs/exposition.hpp"
#include "obs/metrics.hpp"
#include "obs/service_export.hpp"
#include "obs/sink.hpp"
#include "obs/trace.hpp"
#include "proto/wire.hpp"
#include "service/service.hpp"
#include "sim/simulator.hpp"

namespace omega::service {
namespace {

const group_id g1{1};
const group_id g2{2};

/// Like the service_api cluster, but every instance gets its own
/// registry + ring recorder through an obs::sink.
struct observed_cluster {
  explicit observed_cluster(std::size_t n,
                            election::algorithm alg = election::algorithm::omega_lc,
                            bool causal = false)
      : net(sim, n, net::link_profile::lan(), rng{11}) {
    for (std::size_t i = 0; i < n; ++i) roster.push_back(node_id{i});
    for (std::size_t i = 0; i < n; ++i) {
      auto o = std::make_unique<node_obs>();
      service_config cfg;
      cfg.self = node_id{i};
      cfg.roster = roster;
      cfg.alg = alg;
      cfg.sink = &o->sink;
      cfg.causal_stamping = causal;
      obs.push_back(std::move(o));
      services.push_back(std::make_unique<leader_election_service>(
          sim, sim, net.endpoint(node_id{i}), cfg));
    }
  }

  leader_election_service& at(std::size_t i) { return *services[i]; }
  std::vector<obs::trace_event> events_of(std::size_t i) {
    return obs[i]->ring.events();
  }
  bool has_event(std::size_t i, obs::event_kind kind) {
    auto events = events_of(i);
    return std::any_of(events.begin(), events.end(),
                       [kind](const auto& ev) { return ev.kind == kind; });
  }
  void settle(duration d = sec(5)) { sim.run_until(sim.now() + d); }

  struct node_obs {
    obs::registry reg;
    obs::ring_recorder ring{1024};
    obs::sink sink{&reg, &ring};
  };

  sim::simulator sim;
  net::sim_network net;
  std::vector<node_id> roster;
  std::vector<std::unique_ptr<node_obs>> obs;
  std::vector<std::unique_ptr<leader_election_service>> services;
};

TEST(ServiceObs, SinkStampsRecordingNode) {
  observed_cluster c(2);
  for (std::size_t i = 0; i < 2; ++i) {
    c.at(i).register_process(process_id{i});
    c.at(i).join_group(process_id{i}, g1, {});
  }
  c.settle();
  auto events = c.events_of(1);
  ASSERT_FALSE(events.empty());
  for (const auto& ev : events) EXPECT_EQ(ev.node, node_id{1});
}

TEST(ServiceObs, LeaderChangeAndJoinEventsRecorded) {
  observed_cluster c(3);
  for (std::size_t i = 0; i < 3; ++i) {
    c.at(i).register_process(process_id{i});
    c.at(i).join_group(process_id{i}, g1, {});
  }
  c.settle();
  ASSERT_TRUE(c.at(0).leader(g1).has_value());
  EXPECT_TRUE(c.has_event(0, obs::event_kind::leader_change));
  EXPECT_TRUE(c.has_event(0, obs::event_kind::member_join));
  // The recorded leader matches the service's answer.
  auto events = c.events_of(0);
  std::optional<process_id> last;
  for (const auto& ev : events) {
    if (ev.kind == obs::event_kind::leader_change && ev.group == g1) {
      last = ev.subject.valid() ? std::optional(ev.subject) : std::nullopt;
    }
  }
  EXPECT_EQ(last, c.at(0).leader(g1));
}

TEST(ServiceObs, SuspicionAndAccusationEventsOnCrash) {
  observed_cluster c(3);
  for (std::size_t i = 0; i < 3; ++i) {
    c.at(i).register_process(process_id{i});
    c.at(i).join_group(process_id{i}, g1, {});
  }
  c.settle(sec(10));
  const auto leader = c.at(2).leader(g1);
  ASSERT_TRUE(leader.has_value());
  const std::size_t victim = leader->value();
  ASSERT_NE(victim, 2u);  // highest id never wins the paper's ranking

  c.services[victim].reset();  // crash: heartbeats stop
  c.settle(sec(30));

  const std::size_t observer = victim == 0 ? 1 : 0;
  auto events = c.events_of(observer);
  bool suspected = false;
  for (const auto& ev : events) {
    if (ev.kind == obs::event_kind::suspicion_raised &&
        ev.peer == node_id{victim}) {
      suspected = true;
      EXPECT_GT(ev.value, 0.0) << "seconds since last heartbeat";
    }
  }
  EXPECT_TRUE(suspected);
  EXPECT_TRUE(c.has_event(observer, obs::event_kind::accusation_sent));
  // And a survivor took over.
  const auto new_leader = c.at(observer).leader(g1);
  ASSERT_TRUE(new_leader.has_value());
  EXPECT_NE(*new_leader, *leader);
}

TEST(ServiceObs, CandidacyFlipRecorded) {
  observed_cluster c(1);
  c.at(0).register_process(process_id{0});
  join_options opts;
  opts.candidate = false;
  c.at(0).join_group(process_id{0}, g1, opts);
  c.settle();
  ASSERT_TRUE(c.at(0).set_candidacy(process_id{0}, g1, true));
  auto events = c.events_of(0);
  auto it = std::find_if(events.begin(), events.end(), [](const auto& ev) {
    return ev.kind == obs::event_kind::candidacy_flip;
  });
  ASSERT_NE(it, events.end());
  EXPECT_EQ(it->subject, process_id{0});
  EXPECT_DOUBLE_EQ(it->value, 1.0);
}

TEST(ServiceObs, UnknownGroupDropCountedAndTraced) {
  observed_cluster c(2);
  c.at(0).register_process(process_id{0});
  c.at(0).join_group(process_id{0}, g1, {});
  c.settle(sec(2));
  ASSERT_EQ(c.at(0).stats().dropped_unknown_group, 0u);

  // A stale LEAVE for a group node 0 never joined (e.g. the sender has not
  // processed our own departure yet).
  proto::leave_msg leave;
  leave.from = node_id{1};
  leave.inc = 1;
  leave.group = g2;
  leave.pid = process_id{1};
  c.net.endpoint(node_id{1}).send(node_id{0}, proto::encode(leave));
  c.settle(sec(1));

  EXPECT_EQ(c.at(0).stats().dropped_unknown_group, 1u);
  auto events = c.events_of(0);
  auto it = std::find_if(events.begin(), events.end(), [](const auto& ev) {
    return ev.kind == obs::event_kind::unknown_group_drop;
  });
  ASSERT_NE(it, events.end());
  EXPECT_EQ(it->group, g2);
  EXPECT_EQ(it->peer, node_id{1});
}

TEST(ServiceObs, HelloByGroupPrunedOnLeave) {
  observed_cluster c(2);
  for (std::size_t i = 0; i < 2; ++i) {
    c.at(i).register_process(process_id{i});
    c.at(i).join_group(process_id{i}, g1, {});
    c.at(i).join_group(process_id{i}, g2, {});
  }
  c.settle(sec(30));
  ASSERT_TRUE(c.at(0).stats().hello_by_group.contains(g1));
  ASSERT_TRUE(c.at(0).stats().hello_by_group.contains(g2));

  c.at(0).leave_group(process_id{0}, g1);
  // Departed groups must not keep stale accounting rows alive forever (a
  // long-lived instance cycling through many groups would leak them).
  EXPECT_FALSE(c.at(0).stats().hello_by_group.contains(g1));
  EXPECT_TRUE(c.at(0).stats().hello_by_group.contains(g2));
}

TEST(ServiceObs, ExportPublishesServiceStats) {
  observed_cluster c(2);
  for (std::size_t i = 0; i < 2; ++i) {
    c.at(i).register_process(process_id{i});
    c.at(i).join_group(process_id{i}, g1, {});
  }
  c.settle(sec(10));
  obs::export_service_stats(c.obs[0]->reg, c.at(0));

  auto& reg = c.obs[0]->reg;
  const auto alive = reg.get_counter("omega_messages_sent_total",
                                     {{"kind", "alive"}, {"node", "0"}})
                         .value();
  EXPECT_EQ(alive, c.at(0).stats().alive_sent);
  EXPECT_GT(alive, 0u);
  const auto received =
      reg.get_counter("omega_datagrams_received_total", {{"node", "0"}}).value();
  EXPECT_EQ(received, c.at(0).stats().datagrams_received);
  EXPECT_GT(reg.get_gauge("omega_heartbeat_interval_seconds", {{"node", "0"}})
                .value(),
            0.0);

  // The whole registry renders and re-parses (the exposition smoke).
  auto samples = obs::parse_prometheus(obs::render_prometheus(reg));
  ASSERT_TRUE(samples.has_value());
  EXPECT_FALSE(samples->empty());
}

TEST(ServiceObs, ExportPublishesDropAndHelloFamilies) {
  observed_cluster c(2);
  c.at(0).register_process(process_id{0});
  c.at(0).join_group(process_id{0}, g1, {});
  c.at(1).register_process(process_id{1});
  c.at(1).join_group(process_id{1}, g1, {});
  c.settle(sec(30));

  // Provoke one unknown-group drop so the reason-labelled series is live.
  proto::leave_msg leave;
  leave.from = node_id{1};
  leave.inc = 1;
  leave.group = g2;
  leave.pid = process_id{1};
  c.net.endpoint(node_id{1}).send(node_id{0}, proto::encode(leave));
  c.settle(sec(1));

  auto& reg = c.obs[0]->reg;
  obs::export_service_stats(reg, c.at(0));
  EXPECT_EQ(reg.get_counter("omega_datagrams_dropped_total",
                            {{"node", "0"}, {"reason", "unknown_group"}})
                .value(),
            c.at(0).stats().dropped_unknown_group);
  EXPECT_EQ(reg.get_counter("omega_datagrams_dropped_total",
                            {{"node", "0"}, {"reason", "unknown_group"}})
                .value(),
            1u);
  const auto hellos = reg.get_counter("omega_hello_emissions_total",
                                      {{"group", "1"}, {"node", "0"}})
                          .value();
  ASSERT_TRUE(c.at(0).stats().hello_by_group.contains(g1));
  EXPECT_EQ(hellos, c.at(0).stats().hello_by_group.at(g1).hellos);
  EXPECT_GT(hellos, 0u);
  EXPECT_GT(reg.get_counter("omega_hello_destinations_total",
                            {{"group", "1"}, {"node", "0"}})
                .value(),
            0u);
}

TEST(ServiceObs, HeartbeatInterarrivalHistogramPerClass) {
  observed_cluster c(3);
  for (std::size_t i = 0; i < 3; ++i) {
    c.at(i).register_process(process_id{i});
    c.at(i).join_group(process_id{i}, g1, {});  // default class: interactive
  }
  c.settle(sec(30));

  // Node 0 heard many ALIVEs from its two peers; every gap after the first
  // heartbeat of a remote lands one sample in the class-labelled histogram.
  auto& h = c.obs[0]->reg.get_histogram(
      "omega_heartbeat_interarrival_seconds",
      {{"class", "interactive"}, {"node", "0"}}, {});
  EXPECT_GT(h.count(), 10u);
  // The paper's default QoS puts eta at detection/4 = 0.25 s; the mean
  // inter-arrival must sit near it (lossless LAN, two senders).
  const double mean = h.sum() / static_cast<double>(h.count());
  EXPECT_GT(mean, 0.05);
  EXPECT_LT(mean, 1.0);
}

TEST(ServiceObs, CausalChainsLinkAcrossNodes) {
  // End-to-end causal plane at the service layer: stamping on, a crashed
  // leader, and the survivors' merged rings must rebuild into a DAG that
  // explains the failover (the same gate the harness and udp_live enforce).
  observed_cluster c(3, election::algorithm::omega_lc, /*causal=*/true);
  for (std::size_t i = 0; i < 3; ++i) {
    c.at(i).register_process(process_id{i});
    c.at(i).join_group(process_id{i}, g1, {});
  }
  c.settle(sec(10));
  const auto leader = c.at(2).leader(g1);
  ASSERT_TRUE(leader.has_value());
  const std::size_t victim = leader->value();
  ASSERT_NE(victim, 2u);

  const time_point crash_at = c.sim.now();
  c.services[victim].reset();
  c.settle(sec(30));

  std::vector<obs::trace_event> merged;
  for (std::size_t i = 0; i < 3; ++i) {
    const auto evs = c.events_of(i);
    merged.insert(merged.end(), evs.begin(), evs.end());
  }
  const auto graph = obs::causal_graph::build(merged);
  const auto report =
      graph.linkage(node_id{victim}, process_id{victim}, crash_at, c.sim.now());
  EXPECT_GT(report.considered, 0u);
  EXPECT_GE(report.evidence_roots, 1u);
  EXPECT_EQ(report.dangling, 0u);
  EXPECT_GE(report.fraction(), 0.95)
      << report.linked << "/" << report.considered << " linked";

  // At least one resolved edge must cross nodes (an accusation received on
  // a different node than it was sent from).
  bool cross_node_edge = false;
  for (std::size_t i = 0; i < graph.size(); ++i) {
    const int parent = graph.cause_index(i);
    if (parent >= 0 &&
        graph.event(i).node != graph.event(static_cast<std::size_t>(parent)).node) {
      cross_node_edge = true;
      break;
    }
  }
  EXPECT_TRUE(cross_node_edge);
}

TEST(ServiceObs, CausalOffLeavesWireAndTraceUnstamped) {
  observed_cluster c(2);
  for (std::size_t i = 0; i < 2; ++i) {
    c.at(i).register_process(process_id{i});
    c.at(i).join_group(process_id{i}, g1, {});
  }
  c.settle(sec(10));
  for (std::size_t i = 0; i < 2; ++i) {
    for (const auto& ev : c.events_of(i)) {
      EXPECT_FALSE(ev.cause.valid());
      EXPECT_EQ(ev.wall_us, -1);
    }
  }
}

}  // namespace
}  // namespace omega::service
