// Service-layer API tests: registration, join/leave semantics, notification
// modes, multi-group multiplexing, and the heartbeat engine's behaviour —
// all on a small simulated cluster.
#include <gtest/gtest.h>

#include <memory>

#include "net/sim_network.hpp"
#include "service/service.hpp"
#include "sim/simulator.hpp"

namespace omega::service {
namespace {

struct cluster {
  explicit cluster(std::size_t n,
                   election::algorithm alg = election::algorithm::omega_lc,
                   net::link_profile links = net::link_profile::lan())
      : net(sim, n, links, rng{11}) {
    for (std::size_t i = 0; i < n; ++i) roster.push_back(node_id{i});
    for (std::size_t i = 0; i < n; ++i) {
      service_config cfg;
      cfg.self = node_id{i};
      cfg.roster = roster;
      cfg.alg = alg;
      services.push_back(std::make_unique<leader_election_service>(
          sim, sim, net.endpoint(node_id{i}), cfg));
    }
  }

  leader_election_service& at(std::size_t i) { return *services[i]; }
  void settle(duration d = sec(5)) { sim.run_until(sim.now() + d); }

  sim::simulator sim;
  net::sim_network net;
  std::vector<node_id> roster;
  std::vector<std::unique_ptr<leader_election_service>> services;
};

const group_id g1{1};
const group_id g2{2};

TEST(ServiceApi, RegisterRejectsDuplicates) {
  cluster c(1);
  EXPECT_TRUE(c.at(0).register_process(process_id{0}));
  EXPECT_FALSE(c.at(0).register_process(process_id{0}));
}

TEST(ServiceApi, JoinRequiresRegistration) {
  cluster c(1);
  EXPECT_FALSE(c.at(0).join_group(process_id{0}, g1, {}));
  c.at(0).register_process(process_id{0});
  EXPECT_TRUE(c.at(0).join_group(process_id{0}, g1, {}));
}

TEST(ServiceApi, SecondLocalJoinToSameGroupRejected) {
  cluster c(1);
  c.at(0).register_process(process_id{0});
  c.at(0).register_process(process_id{100});
  EXPECT_TRUE(c.at(0).join_group(process_id{0}, g1, {}));
  EXPECT_FALSE(c.at(0).join_group(process_id{100}, g1, {}));
}

TEST(ServiceApi, LeaderQueryUnknownGroupIsEmpty) {
  cluster c(1);
  EXPECT_EQ(c.at(0).leader(group_id{99}), std::nullopt);
}

TEST(ServiceApi, SingleNodeElectsItself) {
  cluster c(1);
  c.at(0).register_process(process_id{0});
  c.at(0).join_group(process_id{0}, g1, {});
  c.settle();
  EXPECT_EQ(c.at(0).leader(g1), process_id{0});
}

TEST(ServiceApi, ThreeNodesAgree) {
  cluster c(3);
  for (std::size_t i = 0; i < 3; ++i) {
    c.at(i).register_process(process_id{i});
    c.at(i).join_group(process_id{i}, g1, {});
  }
  c.settle();
  const auto leader = c.at(0).leader(g1);
  ASSERT_TRUE(leader.has_value());
  EXPECT_EQ(c.at(1).leader(g1), leader);
  EXPECT_EQ(c.at(2).leader(g1), leader);
}

TEST(ServiceApi, InterruptModeFiresOnChanges) {
  cluster c(2);
  int fired = 0;
  std::optional<process_id> last;
  c.at(0).register_process(process_id{0});
  join_options opts;
  opts.notify = notification_mode::interrupt;
  c.at(0).join_group(process_id{0}, g1, opts,
                     [&](group_id g, std::optional<process_id> leader) {
                       EXPECT_EQ(g, g1);
                       ++fired;
                       last = leader;
                     });
  c.at(1).register_process(process_id{1});
  c.at(1).join_group(process_id{1}, g1, {});
  c.settle();
  EXPECT_GT(fired, 0);
  EXPECT_TRUE(last.has_value());
}

TEST(ServiceApi, NonCandidateFollowsButNeverLeads) {
  cluster c(3);
  for (std::size_t i = 0; i < 3; ++i) {
    c.at(i).register_process(process_id{i});
    join_options opts;
    opts.candidate = i != 0;  // process 0 is a passive listener
    c.at(i).join_group(process_id{i}, g1, opts);
  }
  c.settle();
  const auto leader = c.at(0).leader(g1);
  ASSERT_TRUE(leader.has_value());
  EXPECT_NE(*leader, process_id{0});
}

TEST(ServiceApi, LeaveGroupStopsParticipation) {
  cluster c(3);
  for (std::size_t i = 0; i < 3; ++i) {
    c.at(i).register_process(process_id{i});
    c.at(i).join_group(process_id{i}, g1, {});
  }
  c.settle();
  const auto leader = c.at(0).leader(g1);
  ASSERT_TRUE(leader.has_value());

  // The leader's process leaves voluntarily.
  const std::size_t idx = leader->value();
  c.at(idx).leave_group(process_id{idx}, g1);
  c.settle();

  for (std::size_t i = 0; i < 3; ++i) {
    if (i == idx) {
      EXPECT_EQ(c.at(i).leader(g1), std::nullopt);
      continue;
    }
    const auto l = c.at(i).leader(g1);
    ASSERT_TRUE(l.has_value());
    EXPECT_NE(*l, *leader) << "departed process still leads";
  }
}

TEST(ServiceApi, UnregisterLeavesAllGroups) {
  cluster c(2);
  c.at(0).register_process(process_id{0});
  c.at(0).join_group(process_id{0}, g1, {});
  c.at(0).join_group(process_id{0}, g2, {});
  c.at(1).register_process(process_id{1});
  c.at(1).join_group(process_id{1}, g1, {});
  c.at(1).join_group(process_id{1}, g2, {});
  c.settle();

  c.at(0).unregister_process(process_id{0});
  c.settle();
  EXPECT_EQ(c.at(0).leader(g1), std::nullopt);
  EXPECT_EQ(c.at(0).leader(g2), std::nullopt);
  EXPECT_EQ(c.at(1).leader(g1), process_id{1});
  EXPECT_EQ(c.at(1).leader(g2), process_id{1});
}

TEST(ServiceApi, GroupsAreIndependent) {
  // Different candidate sets per group on the same nodes.
  cluster c(3);
  for (std::size_t i = 0; i < 3; ++i) {
    c.at(i).register_process(process_id{i});
    join_options o1;
    o1.candidate = (i == 1);
    c.at(i).join_group(process_id{i}, g1, o1);
    join_options o2;
    o2.candidate = (i == 2);
    c.at(i).join_group(process_id{i}, g2, o2);
  }
  c.settle();
  EXPECT_EQ(c.at(0).leader(g1), process_id{1});
  EXPECT_EQ(c.at(0).leader(g2), process_id{2});
}

TEST(ServiceApi, MultipleGroupsShareOneHeartbeatStream) {
  // The shared-FD architecture: joining a second group must not double the
  // ALIVE rate (payloads are multiplexed onto the node-level stream).
  cluster c(2, election::algorithm::omega_lc);
  for (std::size_t i = 0; i < 2; ++i) {
    c.at(i).register_process(process_id{i});
    c.at(i).join_group(process_id{i}, g1, {});
  }
  c.settle(sec(30));
  const auto one_group = c.at(0).stats().alive_sent;

  for (std::size_t i = 0; i < 2; ++i) {
    c.at(i).join_group(process_id{i}, g2, {});
  }
  c.settle(sec(30));
  const auto two_groups = c.at(0).stats().alive_sent - one_group;

  // Equal windows: the second window's count must stay well below 2x the
  // first (allow 1.5x for the join-time extra announcements).
  EXPECT_LT(two_groups, one_group * 3 / 2)
      << "second group should ride the same ALIVE stream";
}

TEST(ServiceApi, MalformedDatagramsCountedNotFatal) {
  cluster c(2);
  c.at(0).register_process(process_id{0});
  c.at(0).join_group(process_id{0}, g1, {});
  c.at(1).register_process(process_id{1});
  c.at(1).join_group(process_id{1}, g1, {});

  // Inject garbage directly into node 0's endpoint.
  const std::vector<std::byte> junk = {std::byte{0xFF}, std::byte{0x00},
                                       std::byte{0xAB}};
  c.net.endpoint(node_id{1}).send(node_id{0}, junk);
  c.settle();
  EXPECT_GE(c.at(0).stats().malformed_received, 1u);
  EXPECT_EQ(c.at(0).leader(g1), c.at(1).leader(g1));
}

TEST(ServiceApi, EtaRespondsToQoS) {
  // A tighter detection bound must drive a faster heartbeat cadence.
  cluster loose(2);
  cluster tight(2);
  for (std::size_t i = 0; i < 2; ++i) {
    loose.at(i).register_process(process_id{i});
    join_options lo;
    lo.qos.detection_time = sec(2);
    loose.at(i).join_group(process_id{i}, g1, lo);

    tight.at(i).register_process(process_id{i});
    join_options to;
    to.qos.detection_time = msec(200);
    tight.at(i).join_group(process_id{i}, g1, to);
  }
  loose.settle(sec(60));
  tight.settle(sec(60));
  EXPECT_LT(tight.at(0).current_eta(), loose.at(0).current_eta());
}

TEST(ServiceApi, StatsCountTraffic) {
  cluster c(2);
  for (std::size_t i = 0; i < 2; ++i) {
    c.at(i).register_process(process_id{i});
    c.at(i).join_group(process_id{i}, g1, {});
  }
  c.settle(sec(10));
  EXPECT_GT(c.at(0).stats().alive_sent, 0u);
  EXPECT_GT(c.at(0).stats().hello_sent, 0u);
  EXPECT_GT(c.at(0).stats().datagrams_received, 0u);
  EXPECT_EQ(c.at(0).stats().malformed_received, 0u);
}

TEST(ServiceApi, OmegaLFollowersFallSilent) {
  // Communication efficiency end-to-end: after settling, only the S3 leader
  // keeps producing ALIVEs.
  cluster c(3, election::algorithm::omega_l);
  for (std::size_t i = 0; i < 3; ++i) {
    c.at(i).register_process(process_id{i});
    c.at(i).join_group(process_id{i}, g1, {});
  }
  c.settle(sec(30));
  const auto leader = c.at(0).leader(g1);
  ASSERT_TRUE(leader.has_value());

  std::vector<std::uint64_t> before(3), after(3);
  for (std::size_t i = 0; i < 3; ++i) before[i] = c.at(i).stats().alive_sent;
  c.settle(sec(30));
  for (std::size_t i = 0; i < 3; ++i) after[i] = c.at(i).stats().alive_sent;

  for (std::size_t i = 0; i < 3; ++i) {
    const auto delta = after[i] - before[i];
    if (process_id{i} == *leader) {
      EXPECT_GT(delta, 10u) << "leader must keep heartbeating";
    } else {
      EXPECT_LE(delta, 2u) << "follower " << i << " should be silent";
    }
  }
}

TEST(ServiceApi, OmegaLcEveryoneKeepsSending) {
  cluster c(3, election::algorithm::omega_lc);
  for (std::size_t i = 0; i < 3; ++i) {
    c.at(i).register_process(process_id{i});
    c.at(i).join_group(process_id{i}, g1, {});
  }
  c.settle(sec(30));
  std::vector<std::uint64_t> before(3);
  for (std::size_t i = 0; i < 3; ++i) before[i] = c.at(i).stats().alive_sent;
  c.settle(sec(30));
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_GT(c.at(i).stats().alive_sent - before[i], 10u)
        << "S2 node " << i << " must keep broadcasting";
  }
}

TEST(ServiceApi, LeaveLastGroupSilencesNode) {
  cluster c(2);
  for (std::size_t i = 0; i < 2; ++i) {
    c.at(i).register_process(process_id{i});
    c.at(i).join_group(process_id{i}, g1, {});
  }
  c.settle(sec(10));
  c.at(0).leave_group(process_id{0}, g1);
  c.settle(sec(1));
  const auto sent = c.at(0).stats().alive_sent;
  c.settle(sec(30));
  EXPECT_EQ(c.at(0).stats().alive_sent, sent)
      << "a node with no groups must not heartbeat";
}

TEST(ServiceApi, SetCandidacyFlipsInPlaceWithoutLosingTheLeaderView) {
  // The in-place candidacy change (what the hierarchy coordinator uses for
  // promotion/demotion): the group view must survive the flip — no
  // transient leaderless window, unlike a leave + re-join — and a fresh
  // candidate must rank behind the established leader.
  cluster c(3, election::algorithm::omega_l);
  for (std::size_t i = 0; i < 3; ++i) c.at(i).register_process(process_id{i});
  join_options candidate_join;
  c.at(0).join_group(process_id{0}, g1, candidate_join);
  c.settle(sec(2));
  c.at(1).join_group(process_id{1}, g1, candidate_join);
  join_options listener_join;
  listener_join.candidate = false;
  c.at(2).join_group(process_id{2}, g1, listener_join);
  c.settle(sec(10));
  const auto leader = c.at(2).leader(g1);
  ASSERT_TRUE(leader.has_value());
  ASSERT_EQ(*leader, process_id{0});  // earliest accusation time wins

  // set_candidacy on an unjoined group / wrong pid is rejected.
  EXPECT_FALSE(c.at(2).set_candidacy(process_id{2}, g2, true));
  EXPECT_FALSE(c.at(2).set_candidacy(process_id{9}, g1, true));

  // Promotion keeps the current view at the very instant of the flip...
  ASSERT_TRUE(c.at(2).set_candidacy(process_id{2}, g1, true));
  EXPECT_EQ(c.at(2).leader(g1), leader)
      << "in-place promotion must not reset the leader view";
  EXPECT_TRUE(c.at(2).elector_for(g1)->is_candidate());
  // ...and the fresh candidate never displaces the established leader.
  c.settle(sec(15));
  for (std::size_t i = 0; i < 3; ++i) EXPECT_EQ(c.at(i).leader(g1), leader);

  // Demotion back to listener: view intact, candidacy off everywhere.
  ASSERT_TRUE(c.at(2).set_candidacy(process_id{2}, g1, false));
  EXPECT_EQ(c.at(2).leader(g1), leader);
  c.settle(sec(5));
  const auto* m = c.at(0).members(g1).find(process_id{2});
  ASSERT_NE(m, nullptr);
  EXPECT_FALSE(m->candidate) << "demotion must propagate to peer tables";
}

TEST(ServiceApi, DemotedLeaderWithdrawsGracefully) {
  cluster c(3, election::algorithm::omega_l);
  for (std::size_t i = 0; i < 3; ++i) {
    c.at(i).register_process(process_id{i});
    c.at(i).join_group(process_id{i}, g1, {});
    c.settle(sec(1));
  }
  c.settle(sec(10));
  ASSERT_EQ(c.at(1).leader(g1), process_id{0});

  // Demote the sitting leader: its graceful-withdrawal heartbeat hands the
  // group to the next-ranked candidate within a couple of deliveries, and
  // the demoted process follows the successor as a plain member.
  ASSERT_TRUE(c.at(0).set_candidacy(process_id{0}, g1, false));
  c.settle(sec(5));
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(c.at(i).leader(g1), process_id{1}) << "node " << i;
  }
}

}  // namespace
}  // namespace omega::service
