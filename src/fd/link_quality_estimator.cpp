#include "fd/link_quality_estimator.hpp"

#include <algorithm>

namespace omega::fd {

link_quality_estimator::link_quality_estimator(options opts)
    : opts_(opts),
      delay_seconds_(opts.delay_window),
      raw_diff_seconds_(opts.delay_window) {}

void link_quality_estimator::on_heartbeat(std::uint64_t seq, time_point sent,
                                          time_point received) {
  est_valid_ = false;
  ++total_received_;
  if (opts_.synchronized_clocks) {
    // Delay sample; clamp at zero in case of residual clock skew.
    delay_seconds_.add(std::max(0.0, to_seconds(received - sent)));
  } else {
    // Skew-tolerant mode: keep the raw (offset-polluted, possibly negative)
    // difference; estimate() re-bases against the window minimum.
    raw_diff_seconds_.add(to_seconds(received - sent));
  }

  if (!epoch_open_) {
    epoch_open_ = true;
    epoch_min_seq_ = epoch_max_seq_ = seq;
    epoch_received_ = 1;
    return;
  }
  epoch_min_seq_ = std::min(epoch_min_seq_, seq);
  epoch_max_seq_ = std::max(epoch_max_seq_, seq);
  ++epoch_received_;
  if (epoch_received_ >= opts_.loss_epoch) roll_epoch();
}

void link_quality_estimator::roll_epoch() {
  const std::uint64_t span = epoch_max_seq_ - epoch_min_seq_ + 1;
  double observed = 0.0;
  if (span > epoch_received_) {
    observed = 1.0 - static_cast<double>(epoch_received_) / static_cast<double>(span);
  }
  if (have_loss_) {
    loss_ewma_ = (1.0 - opts_.loss_ewma_alpha) * loss_ewma_ +
                 opts_.loss_ewma_alpha * observed;
  } else {
    loss_ewma_ = observed;
    have_loss_ = true;
  }
  epoch_open_ = false;
  epoch_received_ = 0;
}

void link_quality_estimator::reset() {
  est_valid_ = false;
  delay_seconds_.reset();
  raw_diff_seconds_.reset();
  total_received_ = 0;
  epoch_open_ = false;
  epoch_received_ = 0;
  have_loss_ = false;
  loss_ewma_ = 0.0;
}

link_estimate link_quality_estimator::estimate() const {
  if (est_valid_) return est_cache_;
  link_estimate est;
  est.samples = opts_.synchronized_clocks ? delay_seconds_.count()
                                          : raw_diff_seconds_.count();
  if (est.samples == 0) {  // defaults: see qos.hpp
    est_cache_ = est;
    est_valid_ = true;
    return est;
  }

  // Tail-shape verdict from the active window's excess kurtosis; kurtosis
  // is shift-invariant, so the skew-polluted raw differences classify the
  // tail exactly as well as absolute delays do.
  if (opts_.estimate_tail && est.samples >= opts_.tail_min_samples) {
    const windowed_stats& window =
        opts_.synchronized_clocks ? delay_seconds_ : raw_diff_seconds_;
    if (window.excess_kurtosis() > opts_.pareto_kurtosis_threshold) {
      est.tail = delay_tail_model::pareto;
    }
  }

  if (opts_.synchronized_clocks) {
    est.delay_mean = from_seconds(delay_seconds_.mean());
    est.delay_stddev = from_seconds(delay_seconds_.stddev());
  } else {
    // Jitter above the window's fastest observation. The unknown skew and
    // propagation floor cancel out of the (eta, delta) computation up to a
    // constant the configurator absorbs conservatively.
    est.delay_mean = from_seconds(
        std::max(0.0, raw_diff_seconds_.mean() - raw_diff_seconds_.minimum()));
    est.delay_stddev = from_seconds(raw_diff_seconds_.stddev());
  }

  double loss;
  if (have_loss_) {
    loss = loss_ewma_;
  } else if (epoch_open_ && epoch_received_ >= 16) {
    // Early estimate from the partial first epoch.
    const std::uint64_t span = epoch_max_seq_ - epoch_min_seq_ + 1;
    loss = span > epoch_received_
               ? 1.0 - static_cast<double>(epoch_received_) / static_cast<double>(span)
               : 0.0;
  } else {
    loss = est.loss_probability;  // keep the conservative default
  }
  est.loss_probability = std::clamp(std::max(loss, opts_.loss_floor), 0.0, 1.0);
  est_cache_ = est;
  est_valid_ = true;
  return est;
}

}  // namespace omega::fd
