// Shared failure-detector module of one service instance (paper §3, §4).
//
// One fd_manager per workstation monitors every remote node the local
// groups care about, sharing a single link-quality estimator per remote
// across all groups (the cost-sharing idea of the Deianov-Toueg FD service
// architecture). Per (remote, group) it runs an NFD-S heartbeat monitor
// whose delta comes from the group's QoS via the configurator; a periodic
// reconfiguration pass re-runs the configurator against fresh link
// estimates — this is what makes the detector adapt to changing network
// conditions — and renegotiates the senders' heartbeat rates with
// hysteresis.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>

#include "common/executor.hpp"
#include "common/ids.hpp"
#include "fd/configurator.hpp"
#include "fd/heartbeat_monitor.hpp"
#include "fd/link_quality_estimator.hpp"
#include "fd/qos.hpp"
#include "proto/wire.hpp"

namespace omega::fd {

class fd_manager {
 public:
  struct options {
    link_quality_estimator::options lqe{};
    configurator_options configurator{};
    /// How often link estimates are re-read and (eta, delta) recomputed.
    duration reconfig_interval = sec(1);
    /// Relative change of requested eta that triggers a new RATE_REQ.
    double rate_hysteresis = 0.10;
    /// RATE_REQs are refreshed at least this often while the remote lives.
    duration rate_refresh = sec(20);
    /// Suspected *and* silent monitors are garbage-collected after this.
    duration monitor_gc_after = sec(120);
    /// Remotes silent for longer stop receiving RATE_REQs.
    duration rate_silence_cutoff = sec(30);
  };

  /// (group, remote node, trusted?) on every trust/suspect edge.
  using transition_handler = std::function<void(group_id, node_id, bool)>;
  /// Called when a RATE_REQ should be sent to `node` asking for `eta`.
  using rate_request_fn = std::function<void(node_id, duration)>;
  /// Observes every link-estimate update: (remote, fresh estimate, time).
  /// The adaptation engine feeds its link tracker from this stream.
  using link_observer = std::function<void(node_id, const link_estimate&,
                                           time_point)>;

  fd_manager(clock_source& clock, timer_service& timers)
      : fd_manager(clock, timers, options{}) {}
  fd_manager(clock_source& clock, timer_service& timers, options opts);
  ~fd_manager();

  fd_manager(const fd_manager&) = delete;
  fd_manager& operator=(const fd_manager&) = delete;

  void set_transition_handler(transition_handler handler);
  void set_rate_request_fn(rate_request_fn fn);
  void set_link_observer(link_observer observer);

  /// Registers a local group and the FD QoS its members require.
  void add_group(group_id group, const qos_spec& qos);
  void remove_group(group_id group);

  /// Feeds one received ALIVE message: link statistics at node level, then
  /// freshness for every carried group payload (monitors are created
  /// lazily). Heartbeats from an unknown/old incarnation reset/discard
  /// state as appropriate.
  void on_alive(const proto::alive_msg& msg, time_point recv_time);

  /// Drops monitoring state for one (group, remote) — the member left.
  void drop(group_id group, node_id remote);
  /// Drops all state for a remote node (it is known to be gone).
  void drop_node(node_id remote);

  /// Starts / stops the periodic reconfiguration loop.
  void start();
  void stop();

  /// True iff a monitor exists and currently trusts the remote in `group`.
  [[nodiscard]] bool is_trusted(group_id group, node_id remote) const;

  /// Current link estimate for a remote (defaults if never heard).
  [[nodiscard]] link_estimate link_quality(node_id remote) const;

  /// Operating point for (group, remote): override, configured, or
  /// cold-start default — in that order.
  [[nodiscard]] fd_params current_params(group_id group, node_id remote) const;

  /// Pins the operating point of one group: the periodic reconfiguration
  /// pass stops consulting the configurator for it and applies `params`
  /// (monitor deltas immediately, sender rates on the next pass). This is
  /// how an external tuning policy — the adaptation engine, or a frozen
  /// baseline — takes over from the built-in per-tick configurator.
  void set_params_override(group_id group, fd_params params);
  void clear_params_override(group_id group);
  [[nodiscard]] std::optional<fd_params> params_override(group_id group) const;

  /// The sending interval this manager currently asks `remote` to use
  /// (minimum over local groups). Zero if unknown remote.
  [[nodiscard]] duration requested_eta(node_id remote) const;

  /// Number of live (trusted or recently heard) monitors, for introspection.
  [[nodiscard]] std::size_t monitor_count() const;

 private:
  void tick();

  struct remote_state {
    incarnation inc = 0;
    link_quality_estimator lqe;
    std::unordered_map<group_id, std::unique_ptr<heartbeat_monitor>> monitors;
    std::unordered_map<group_id, fd_params> params;
    duration last_requested_eta{0};
    time_point last_rate_sent{};
    time_point last_heard{};
    explicit remote_state(const link_quality_estimator::options& o) : lqe(o) {}
  };

  void reconfigure_all();
  void reconfigure_remote(node_id remote, remote_state& state);
  heartbeat_monitor& ensure_monitor(group_id group, node_id remote,
                                    remote_state& state);

  clock_source& clock_;
  timer_service& timers_;
  options opts_;
  transition_handler on_transition_;
  rate_request_fn send_rate_request_;
  link_observer on_link_sample_;
  std::unordered_map<group_id, qos_spec> groups_;
  std::unordered_map<group_id, fd_params> overrides_;
  std::unordered_map<node_id, std::unique_ptr<remote_state>> remotes_;
  scoped_timer reconfig_timer_;
  bool running_ = false;
};

}  // namespace omega::fd
