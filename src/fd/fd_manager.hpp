// Shared failure-detector module of one service instance (paper §3, §4).
//
// One fd_manager per workstation monitors every remote node the local
// groups care about, sharing a single link-quality estimator per remote
// across all groups (the cost-sharing idea of the Deianov-Toueg FD service
// architecture). Per (remote, group) it runs an NFD-S heartbeat monitor
// whose delta comes from the group's QoS via the configurator; a periodic
// reconfiguration pass re-runs the configurator against each remote's own
// fresh link estimate — this is what makes the detector adapt to changing
// network conditions — and renegotiates the senders' heartbeat rates with
// hysteresis. The unit of configuration is (group, remote): an external
// tuning policy pins operating points through a layered `param_plan`
// (group default + per-remote refinement), so one bad WAN link never drags
// every clean LAN link in the group down to the worst link's delta.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/executor.hpp"
#include "common/ids.hpp"
#include "fd/configurator.hpp"
#include "fd/heartbeat_monitor.hpp"
#include "fd/link_quality_estimator.hpp"
#include "fd/param_plan.hpp"
#include "fd/qos.hpp"
#include "obs/sink.hpp"
#include "proto/wire.hpp"

namespace omega::fd {

class fd_manager {
 public:
  struct options {
    link_quality_estimator::options lqe{};
    configurator_options configurator{};
    /// How often link estimates are re-read and (eta, delta) recomputed.
    duration reconfig_interval = sec(1);
    /// Relative change of requested eta that triggers a new RATE_REQ.
    double rate_hysteresis = 0.10;
    /// RATE_REQs are refreshed at least this often while the remote lives.
    duration rate_refresh = sec(20);
    /// Suspected *and* silent monitors are garbage-collected after this.
    duration monitor_gc_after = sec(120);
    /// Remotes silent for longer stop receiving RATE_REQs.
    duration rate_silence_cutoff = sec(30);
  };

  /// (group, remote node, trusted?) on every trust/suspect edge.
  using transition_handler = std::function<void(group_id, node_id, bool)>;
  /// Called when a RATE_REQ should be sent to `node` asking for `eta`.
  using rate_request_fn = std::function<void(node_id, duration)>;
  /// Observes every link-estimate update: (remote, fresh estimate, time).
  /// The adaptation engine feeds its link tracker from this stream.
  using link_observer = std::function<void(node_id, const link_estimate&,
                                           time_point)>;

  fd_manager(clock_source& clock, timer_service& timers)
      : fd_manager(clock, timers, options{}) {}
  fd_manager(clock_source& clock, timer_service& timers, options opts);
  ~fd_manager();

  fd_manager(const fd_manager&) = delete;
  fd_manager& operator=(const fd_manager&) = delete;

  void set_transition_handler(transition_handler handler);
  void set_rate_request_fn(rate_request_fn fn);
  void set_link_observer(link_observer observer);
  /// Attaches the observability sink; trust/suspect edges emit
  /// suspicion_raised / suspicion_cleared trace events. Null disables.
  void set_sink(obs::sink* sink) { sink_ = sink; }

  /// Registers a local group and the FD QoS its members require.
  void add_group(group_id group, const qos_spec& qos);
  void remove_group(group_id group);

  /// Labels the group's QoS service class ("interactive", "background"...)
  /// for the continuous heartbeat inter-arrival histograms
  /// (`omega_heartbeat_interarrival_seconds{class=...}`). Each received
  /// ALIVE observes its node-level inter-arrival gap once per distinct
  /// class among the carried groups this manager monitors. Unlabelled
  /// groups fall under "default".
  void set_group_class(group_id group, std::string label);

  /// Feeds one received ALIVE message: link statistics at node level, then
  /// freshness for every carried group payload (monitors are created
  /// lazily). Heartbeats from an unknown/old incarnation reset/discard
  /// state as appropriate.
  void on_alive(const proto::alive_msg& msg, time_point recv_time);

  /// Drops monitoring state for one (group, remote) — the member left.
  /// The remote's min-combined heartbeat rate is recomputed immediately
  /// (and a RATE_REQ sent if it relaxed beyond the hysteresis band), so a
  /// departed tight group stops pinning the remote to a fast rate until
  /// the next periodic refresh.
  void drop(group_id group, node_id remote);
  /// Drops all state for a remote node (it is known to be gone), including
  /// any per-remote plan refinements that name it.
  void drop_node(node_id remote);

  /// Starts / stops the periodic reconfiguration loop.
  void start();
  void stop();

  /// True iff a monitor exists and currently trusts the remote in `group`.
  [[nodiscard]] bool is_trusted(group_id group, node_id remote) const;

  /// Current link estimate for a remote (defaults if never heard).
  [[nodiscard]] link_estimate link_quality(node_id remote) const;

  /// Operating point for (group, remote): override, configured, or
  /// cold-start default — in that order.
  [[nodiscard]] fd_params current_params(group_id group, node_id remote) const;

  /// Pins the *group-default* layer of the group's operating-point plan:
  /// the periodic reconfiguration pass stops consulting the configurator
  /// for (group, remote) pairs the plan covers and applies the resolved
  /// params (monitor deltas immediately, sender rates on the next pass).
  /// This is how an external tuning policy — the adaptation engine, or a
  /// frozen baseline — takes over from the built-in per-tick configurator.
  /// Remotes with a per-remote refinement keep their refinement.
  void set_params_override(group_id group, fd_params params);
  /// Pins the operating point of one (group, remote) link — the per-remote
  /// refinement layer. Takes precedence over the group default.
  void set_params_override(group_id group, node_id remote, fd_params params);
  /// Clears the whole plan of a group (default and all refinements).
  void clear_params_override(group_id group);
  /// Clears one per-remote refinement; the group default (if any) applies
  /// again on the next reconfiguration pass.
  void clear_params_override(group_id group, node_id remote);
  /// The group-default layer, if pinned.
  [[nodiscard]] std::optional<fd_params> params_override(group_id group) const;
  /// The resolved override for one (group, remote): refinement, else
  /// group default, else nullopt.
  [[nodiscard]] std::optional<fd_params> params_override(group_id group,
                                                         node_id remote) const;

  /// The sending interval this manager currently asks `remote` to use
  /// (minimum over local groups). Zero if unknown remote.
  [[nodiscard]] duration requested_eta(node_id remote) const;

  /// Number of live (trusted or recently heard) monitors, for introspection.
  [[nodiscard]] std::size_t monitor_count() const;

  /// Total per-remote refinement entries across all group plans — the
  /// per-link override memory whose scaling the large-roster bench tracks.
  [[nodiscard]] std::size_t plan_refinement_count() const;

 private:
  void tick();

  struct remote_state {
    incarnation inc = 0;
    link_quality_estimator lqe;
    std::unordered_map<group_id, std::unique_ptr<heartbeat_monitor>> monitors;
    std::unordered_map<group_id, fd_params> params;
    /// Positive-only lookup cache for the per-ALIVE hot path: (group,
    /// monitor, inter-arrival cell) triples known to be registered and
    /// monitored, scanned linearly (a node is in a handful of groups).
    /// Cleared whenever `monitors` shrinks or a class label changes;
    /// pointer targets are stable (unique_ptr map / registry cells).
    struct hot_entry {
      group_id group;
      heartbeat_monitor* monitor;
      /// The group's class histogram, or null without a metrics registry.
      obs::histogram* interarrival;
    };
    std::vector<hot_entry> hot;
    duration last_requested_eta{0};
    time_point last_rate_sent{};
    time_point last_heard{};
    explicit remote_state(const link_quality_estimator::options& o) : lqe(o) {}
  };

  void reconfigure_all();
  void reconfigure_remote(node_id remote, remote_state& state);
  /// Removes `remote`'s refinement from every group plan (node gone/GC'd).
  void forget_remote_refinements(node_id remote);
  /// Min-combines the per-group etas currently stored for `remote` and
  /// sends a RATE_REQ when the result moved beyond the hysteresis band (or
  /// the periodic refresh is due). Called from the reconfiguration pass and
  /// immediately from `drop`.
  void renegotiate_rate(node_id remote, remote_state& state, time_point now);
  heartbeat_monitor& ensure_monitor(group_id group, node_id remote,
                                    remote_state& state);

  static constexpr std::uint64_t trust_key(group_id group, node_id remote) {
    return (static_cast<std::uint64_t>(group.value()) << 32) |
           static_cast<std::uint64_t>(remote.value());
  }
  /// Drops every (group, remote) trust entry backed by `state`'s monitors —
  /// the bulk-teardown paths (incarnation restart, node drop, GC) destroy
  /// possibly-trusted monitors without firing transitions, and the mirror
  /// must not outlive them.
  void forget_trust(node_id remote, const remote_state& state);

  clock_source& clock_;
  timer_service& timers_;
  options opts_;
  transition_handler on_transition_;
  rate_request_fn send_rate_request_;
  link_observer on_link_sample_;
  /// Resolves the inter-arrival histogram cell for `group`'s class label
  /// (null without a metrics registry). Cheap enough for hot-cache fills
  /// only — the per-ALIVE path reads the cached cell.
  [[nodiscard]] obs::histogram* interarrival_cell(group_id group);

  obs::sink* sink_ = nullptr;
  std::unordered_map<group_id, qos_spec> groups_;
  /// QoS class labels per group (see set_group_class).
  std::unordered_map<group_id, std::string> classes_;
  std::unordered_map<group_id, param_plan> plans_;
  std::unordered_map<node_id, std::unique_ptr<remote_state>> remotes_;
  /// Mirror of "monitor exists and trusts" per (group, remote), maintained
  /// at every trust edge and every monitor teardown. `is_trusted` is called
  /// per contender per election evaluation, and the mirror answers it with
  /// one flat hash probe instead of two chained map lookups.
  std::unordered_set<std::uint64_t> trusted_pairs_;
  scoped_timer reconfig_timer_;
  bool running_ = false;
};

}  // namespace omega::fd
