// QoS vocabulary of the Chen-Toueg-Aguilera failure detector [5].
//
// An application that monitors a process specifies three bounds
// (paper §3): T^U_D (detection time), T^L_MR (mean time between FD
// mistakes) and P^L_A (probability the FD is correct at a random time).
// The configurator translates these, together with the current link
// quality (p_L, E[D], S[D]), into the two operational parameters of the
// NFD-S algorithm: the heartbeat interval eta and the freshness shift delta.
#pragma once

#include <cstddef>

#include "common/time.hpp"

namespace omega::fd {

/// Application-facing QoS requirement for monitoring one process.
struct qos_spec {
  /// T^U_D: upper bound on crash-detection time.
  duration detection_time = sec(1);
  /// T^L_MR: lower bound on the expected time between two FD mistakes.
  duration mistake_recurrence = std::chrono::duration_cast<duration>(
      std::chrono::hours(24 * 100));
  /// P^L_A: lower bound on the query accuracy probability.
  double query_accuracy = 0.99999988;

  /// The default used by almost all experiments in the paper (§6.1):
  /// detect within 1 s, at most one mistake per 100 days per monitored
  /// process, accuracy 0.99999988.
  static qos_spec paper_default() { return {}; }

  friend bool operator==(const qos_spec&, const qos_spec&) = default;
};

/// Output of the configurator: NFD-S operating point.
struct fd_params {
  /// Heartbeat sending interval (the paper's eta).
  duration eta;
  /// Freshness-point shift: a heartbeat sent at s is "fresh" until
  /// s + eta + delta (the paper's delta timeout).
  duration delta;
  /// True when the QoS is predicted to hold under the current link
  /// estimate; false when the returned point is only the best effort.
  bool qos_feasible = true;

  friend bool operator==(const fd_params&, const fd_params&) = default;
};

/// Tail model used by the configurator for Pr(D > x).
enum class delay_tail_model {
  /// Exponential tail exp(-x / E[D]) — matches the evaluation's
  /// exponentially distributed delays (paper §6.1).
  exponential,
  /// Distribution-free one-sided Chebyshev bound V / (V + (x - E)^2),
  /// usable when nothing is known about the delay distribution [5].
  chebyshev,
  /// Heavy-tailed Pareto model for WAN delay, moment-fitted from
  /// (E[D], S[D]): shape alpha = 1 + sqrt(1 + E^2/V), scale
  /// x_m = E (alpha - 1) / alpha, Pr(D > x) = (x_m / x)^alpha for
  /// x > x_m. Polynomial decay: far out in the tail it is much more
  /// conservative than the exponential model.
  pareto,
};

/// Current estimate of one directed link's behaviour, produced by the
/// link-quality estimator from the received heartbeat stream.
struct link_estimate {
  double loss_probability = 0.01;  // p_L
  duration delay_mean = msec(1);   // E[D]
  duration delay_stddev = msec(1); // sqrt(V[D])
  std::size_t samples = 0;         // heartbeats the estimate is based on
  /// Online tail-shape verdict of the estimator (excess kurtosis over the
  /// delay window): exponential until the window proves a heavier tail.
  /// Consumed only when `configurator_options::auto_tail` is on — with it
  /// off the configurator's static `tail` choice applies, as before.
  delay_tail_model tail = delay_tail_model::exponential;

  friend bool operator==(const link_estimate&, const link_estimate&) = default;
};

}  // namespace omega::fd
