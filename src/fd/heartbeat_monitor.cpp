#include "fd/heartbeat_monitor.hpp"

#include <utility>

namespace omega::fd {

heartbeat_monitor::heartbeat_monitor(clock_source& clock, timer_service& timers,
                                     duration delta,
                                     std::function<void(bool)> on_transition)
    : clock_(clock),
      timer_(timers),
      delta_(delta),
      on_transition_(std::move(on_transition)) {}

void heartbeat_monitor::on_heartbeat(time_point send_time, duration sender_eta) {
  ever_heard_ = true;
  last_heartbeat_ = clock_.now();
  const time_point fresh_until = send_time + sender_eta + delta_;
  if (fresh_until <= deadline_ && trusted_) return;  // stale / reordered
  if (fresh_until <= clock_.now()) return;           // already expired in flight
  deadline_ = std::max(deadline_, fresh_until);
  arm();
  if (!trusted_) {
    trusted_ = true;
    if (on_transition_) on_transition_(true);
  }
}

void heartbeat_monitor::arm() {
  timer_.arm_at(deadline_, [this] { expire(); });
}

void heartbeat_monitor::expire() {
  if (!trusted_) return;
  if (clock_.now() < deadline_) {
    // Deadline moved forward after this timer was armed; re-arm.
    arm();
    return;
  }
  trusted_ = false;
  if (on_transition_) on_transition_(false);
}

}  // namespace omega::fd
