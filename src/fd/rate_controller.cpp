#include "fd/rate_controller.hpp"

#include <algorithm>

namespace omega::fd {

rate_controller::rate_controller(duration default_eta, duration expiry)
    : default_eta_(default_eta), expiry_(expiry) {}

void rate_controller::on_request(node_id from, duration eta, time_point now) {
  if (eta <= duration{0}) return;  // malformed; ignore
  auto [it, inserted] = requests_.try_emplace(from, request{eta, now + expiry_});
  if (!inserted) {
    // Overwriting the entry that achieved (or could have achieved) the
    // cached minimum with a slower rate can raise the true minimum, which
    // an in-place update cannot express — rescan on next query. Extending
    // an expiry never needs an invalidation: valid_until_ may still point
    // at the overwritten (earlier) deadline, and rescanning early is
    // harmless.
    if (cache_valid_ && it->second.eta <= cached_min_ && eta > it->second.eta) {
      cache_valid_ = false;
    }
    it->second = request{eta, now + expiry_};
  }
  if (cache_valid_ && (cached_min_ == duration{0} || eta <= cached_min_)) {
    cached_min_ = eta;
    valid_until_ = std::min(valid_until_, it->second.expires);
  }
}

void rate_controller::forget(node_id from) {
  auto it = requests_.find(from);
  if (it == requests_.end()) return;
  // Removing a potential minimum-achiever can raise the minimum.
  if (cache_valid_ && it->second.eta <= cached_min_) cache_valid_ = false;
  requests_.erase(it);
}

duration rate_controller::effective_eta(time_point now) const {
  if (cache_valid_ && now < valid_until_) {
    return cached_min_ == duration{0} ? default_eta_ : cached_min_;
  }
  duration eta{0};
  time_point next_expiry = time_point::max();
  for (const auto& [node, req] : requests_) {
    if (req.expires <= now) continue;  // expired; pruned lazily by overwrite
    if (eta == duration{0} || req.eta < eta) eta = req.eta;
    next_expiry = std::min(next_expiry, req.expires);
  }
  cached_min_ = eta;
  valid_until_ = next_expiry;
  cache_valid_ = true;
  return eta == duration{0} ? default_eta_ : eta;
}

}  // namespace omega::fd
