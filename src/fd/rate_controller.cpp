#include "fd/rate_controller.hpp"

#include <algorithm>

namespace omega::fd {

rate_controller::rate_controller(duration default_eta, duration expiry)
    : default_eta_(default_eta), expiry_(expiry) {}

void rate_controller::on_request(node_id from, duration eta, time_point now) {
  if (eta <= duration{0}) return;  // malformed; ignore
  requests_[from] = request{eta, now + expiry_};
}

void rate_controller::forget(node_id from) { requests_.erase(from); }

duration rate_controller::effective_eta(time_point now) const {
  duration eta{0};
  for (const auto& [node, req] : requests_) {
    if (req.expires <= now) continue;  // expired; pruned lazily by overwrite
    if (eta == duration{0} || req.eta < eta) eta = req.eta;
  }
  return eta == duration{0} ? default_eta_ : eta;
}

}  // namespace omega::fd
