#include "fd/configurator.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace omega::fd {

double delay_tail(const link_estimate& link, delay_tail_model tail,
                  double x_seconds) {
  if (x_seconds <= 0.0) return 1.0;
  switch (tail) {
    case delay_tail_model::exponential: {
      const double mean = std::max(to_seconds(link.delay_mean), 1e-9);
      return std::exp(-x_seconds / mean);
    }
    case delay_tail_model::chebyshev: {
      const double mean = std::max(to_seconds(link.delay_mean), 0.0);
      if (x_seconds <= mean) return 1.0;
      const double sd = std::max(to_seconds(link.delay_stddev), 1e-9);
      const double var = sd * sd;
      const double excess = x_seconds - mean;
      return var / (var + excess * excess);
    }
    case delay_tail_model::pareto: {
      // Moment fit of a Pareto(x_m, alpha): E = alpha x_m / (alpha - 1),
      // V / E^2 = 1 / (alpha (alpha - 2)) => alpha = 1 + sqrt(1 + E^2/V)
      // (always > 2, so both fitted moments exist).
      const double mean = std::max(to_seconds(link.delay_mean), 1e-9);
      const double sd = std::max(to_seconds(link.delay_stddev), 1e-9);
      const double ratio = (mean / sd) * (mean / sd);
      const double alpha = 1.0 + std::sqrt(1.0 + ratio);
      const double x_m = mean * (alpha - 1.0) / alpha;
      if (x_seconds <= x_m) return 1.0;
      return std::pow(x_m / x_seconds, alpha);
    }
  }
  return 1.0;
}

double mistake_probability(const link_estimate& link, delay_tail_model tail,
                           double eta_s, double delta_s) {
  if (eta_s <= 0.0) return 1.0;
  const double p = std::clamp(link.loss_probability, 0.0, 1.0);
  const int k = static_cast<int>(delta_s / eta_s) + 1;
  double q0 = 1.0;
  for (int j = 1; j <= k; ++j) {
    const double x = delta_s - static_cast<double>(j - 1) * eta_s;
    const double factor = p + (1.0 - p) * delay_tail(link, tail, x);
    q0 *= std::min(factor, 1.0);
    if (q0 < 1e-300) return 0.0;  // underflow guard: effectively impossible
  }
  return q0;
}

bool qos_constraints_hold_q0(const qos_spec& qos, double loss_probability,
                             double eta_s, double q0, double margin) {
  const double p = std::clamp(loss_probability, 0.0, 0.999999);
  const double recurrence =
      q0 > 0.0 ? eta_s / q0 : std::numeric_limits<double>::infinity();
  const double mistake_budget = (1.0 - qos.query_accuracy) / margin;
  const bool accuracy_ok = q0 / (1.0 - p) <= mistake_budget;
  return recurrence >= to_seconds(qos.mistake_recurrence) * margin &&
         accuracy_ok;
}

bool qos_constraints_hold(const qos_spec& qos, const link_estimate& link,
                          delay_tail_model tail, double eta_s, double delta_s,
                          double margin) {
  const double q0 = mistake_probability(link, tail, eta_s, delta_s);
  return qos_constraints_hold_q0(qos, link.loss_probability, eta_s, q0, margin);
}

fd_params cold_start_params(const qos_spec& qos) {
  fd_params params;
  params.eta = qos.detection_time / 4;
  params.delta = qos.detection_time - params.eta;
  params.qos_feasible = false;  // unverified until the estimator warms up
  return params;
}

fd_params configure(const qos_spec& qos, const link_estimate& link,
                    const configurator_options& opts) {
  if (link.samples < opts.min_samples) return cold_start_params(qos);

  const delay_tail_model tail = effective_tail(link, opts);
  const double total = to_seconds(qos.detection_time);
  const int steps = std::max(opts.grid_steps, 4);

  double best_eta = 0.0;
  double best_q0 = 1.0;
  double best_recurrence = 0.0;

  // Walk eta from largest (cheapest) to smallest; take the first feasible
  // point. Track the best-achievable recurrence for the infeasible fallback.
  for (int i = steps - 1; i >= 1; --i) {
    const double eta = total * static_cast<double>(i) / static_cast<double>(steps);
    const double delta = total - eta;
    const double q0 = mistake_probability(link, tail, eta, delta);
    const double recurrence = q0 > 0.0 ? eta / q0 : std::numeric_limits<double>::infinity();

    if (qos_constraints_hold_q0(qos, link.loss_probability, eta, q0)) {
      // Round eta once and take delta as the exact integer complement so
      // eta + delta == detection_time holds on the duration grid.
      const duration eta_d = from_seconds(eta);
      return fd_params{eta_d, qos.detection_time - eta_d, true};
    }
    if (recurrence > best_recurrence) {
      best_recurrence = recurrence;
      best_eta = eta;
      best_q0 = q0;
    }
  }

  // Nothing feasible (e.g. loss too high for this T^U_D): best effort.
  (void)best_q0;
  fd_params params;
  params.eta = from_seconds(best_eta > 0.0 ? best_eta : total / steps);
  params.delta = qos.detection_time - params.eta;
  params.qos_feasible = false;
  return params;
}

}  // namespace omega::fd
