#include "fd/fd_manager.hpp"

#include <algorithm>
#include <cmath>
#include <utility>
#include <vector>

namespace omega::fd {

fd_manager::fd_manager(clock_source& clock, timer_service& timers, options opts)
    : clock_(clock), timers_(timers), opts_(opts), reconfig_timer_(timers) {}

fd_manager::~fd_manager() { stop(); }

void fd_manager::set_transition_handler(transition_handler handler) {
  on_transition_ = std::move(handler);
}

void fd_manager::set_rate_request_fn(rate_request_fn fn) {
  send_rate_request_ = std::move(fn);
}

void fd_manager::set_link_observer(link_observer observer) {
  on_link_sample_ = std::move(observer);
}

void fd_manager::set_params_override(group_id group, fd_params params) {
  param_plan& plan = plans_[group];
  plan.set_group_default(params);
  // Apply the new delta to existing monitors immediately; rates follow on
  // the next reconfiguration pass (hysteresis applies there as usual).
  // Remotes with a per-remote refinement keep their more specific layer.
  // The params cache stays monitor-scoped: a remote not monitored in this
  // group must not have the group's eta min-combined into its rate.
  for (auto& [node, state] : remotes_) {
    if (plan.has_remote(node)) continue;
    auto it = state->monitors.find(group);
    if (it == state->monitors.end()) continue;
    state->params[group] = params;
    it->second->set_delta(params.delta);
  }
}

void fd_manager::set_params_override(group_id group, node_id remote,
                                     fd_params params) {
  plans_[group].set_remote(remote, params);
  auto it = remotes_.find(remote);
  if (it == remotes_.end()) return;
  auto m = it->second->monitors.find(group);
  if (m == it->second->monitors.end()) return;
  it->second->params[group] = params;
  m->second->set_delta(params.delta);
}

void fd_manager::clear_params_override(group_id group) {
  plans_.erase(group);
}

void fd_manager::clear_params_override(group_id group, node_id remote) {
  auto it = plans_.find(group);
  if (it == plans_.end()) return;
  it->second.clear_remote(remote);
  if (it->second.empty()) plans_.erase(it);
}

std::optional<fd_params> fd_manager::params_override(group_id group) const {
  auto it = plans_.find(group);
  if (it == plans_.end()) return std::nullopt;
  return it->second.group_default();
}

std::optional<fd_params> fd_manager::params_override(group_id group,
                                                     node_id remote) const {
  auto it = plans_.find(group);
  if (it == plans_.end()) return std::nullopt;
  return it->second.resolve(remote);
}

void fd_manager::add_group(group_id group, const qos_spec& qos) {
  groups_[group] = qos;
}

void fd_manager::set_group_class(group_id group, std::string label) {
  classes_[group] = std::move(label);
  // Cached inter-arrival cells may now point at the wrong class series.
  for (auto& [node, state] : remotes_) state->hot.clear();
}

obs::histogram* fd_manager::interarrival_cell(group_id group) {
  if (sink_ == nullptr || sink_->metrics() == nullptr) return nullptr;
  static const std::string default_class = "default";
  auto it = classes_.find(group);
  const std::string& label = it != classes_.end() ? it->second : default_class;
  // Bounds span the experiments' heartbeat cadences: eta = detection/4
  // puts interactive links around tens of ms and background links at
  // multiple seconds.
  // The node label disambiguates the series when many instances' registries
  // are merged into one exposition page (harness / udp_live /metrics).
  return &sink_->metrics()->get_histogram(
      "omega_heartbeat_interarrival_seconds",
      {{"class", label}, {"node", std::to_string(sink_->self().value())}},
      {0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5});
}

void fd_manager::remove_group(group_id group) {
  groups_.erase(group);
  plans_.erase(group);
  for (auto& [node, state] : remotes_) {
    trusted_pairs_.erase(trust_key(group, node));
    state->monitors.erase(group);
    state->params.erase(group);
    state->hot.clear();
  }
}

heartbeat_monitor& fd_manager::ensure_monitor(group_id group, node_id remote,
                                              remote_state& state) {
  auto it = state.monitors.find(group);
  if (it == state.monitors.end()) {
    auto qos_it = groups_.find(group);
    const qos_spec qos = qos_it != groups_.end() ? qos_it->second : qos_spec{};
    const fd_params params = [&] {
      auto p = state.params.find(group);
      if (p != state.params.end()) return p->second;
      if (auto plan = plans_.find(group); plan != plans_.end()) {
        if (auto resolved = plan->second.resolve(remote)) return *resolved;
      }
      return cold_start_params(qos);
    }();
    auto monitor = std::make_unique<heartbeat_monitor>(
        clock_, timers_, params.delta, [this, group, remote](bool trusted) {
          // Causal root when the edge fires from the monitor's own timeout
          // (a suspicion is spontaneous evidence); a trust edge raised while
          // handling an ALIVE is already inside the datagram's activation
          // and keeps that cause.
          obs::sink::activation causal_scope(sink_);
          // Mirror first: the transition handler re-enters is_trusted via
          // the elector re-evaluation.
          if (trusted) {
            trusted_pairs_.insert(trust_key(group, remote));
          } else {
            trusted_pairs_.erase(trust_key(group, remote));
          }
          if (sink_) {
            obs::trace_event ev;
            ev.kind = trusted ? obs::event_kind::suspicion_cleared
                              : obs::event_kind::suspicion_raised;
            ev.at = clock_.now();
            ev.group = group;
            ev.peer = remote;
            if (!trusted) {
              // Staleness of the suspect's evidence: how long since its
              // last heartbeat (the forensics detection phase reads this).
              if (auto rit = remotes_.find(remote); rit != remotes_.end()) {
                auto mit = rit->second->monitors.find(group);
                if (mit != rit->second->monitors.end()) {
                  ev.value =
                      to_seconds(ev.at - mit->second->last_heartbeat());
                }
              }
            }
            sink_->record(ev);
          }
          if (on_transition_) on_transition_(group, remote, trusted);
        });
    it = state.monitors.emplace(group, std::move(monitor)).first;
  }
  return *it->second;
}

void fd_manager::on_alive(const proto::alive_msg& msg, time_point recv_time) {
  auto [it, inserted] = remotes_.try_emplace(msg.from, nullptr);
  if (inserted) {
    it->second = std::make_unique<remote_state>(opts_.lqe);
    it->second->inc = msg.inc;
  }
  remote_state& state = *it->second;
  if (msg.inc < state.inc) return;  // stale incarnation: drop entirely
  if (msg.inc > state.inc) {
    // The node restarted: its old stream statistics and freshness no longer
    // describe this incarnation.
    state.inc = msg.inc;
    state.lqe.reset();
    forget_trust(msg.from, state);
    state.monitors.clear();
    state.params.clear();
    state.hot.clear();
  }
  // Node-level inter-arrival gap, taken before last_heard is overwritten;
  // observed below once per distinct QoS class among the carried groups.
  const bool have_gap = state.last_heard != time_point{};
  const duration gap = have_gap ? recv_time - state.last_heard : duration{};
  state.last_heard = recv_time;
  state.lqe.on_heartbeat(msg.seq, msg.send_time, recv_time);
  if (on_link_sample_) on_link_sample_(msg.from, state.lqe.estimate(), recv_time);

  // Distinct class cells already observed for this ALIVE (groups sharing a
  // class share a cell, so pointer identity is the dedup key).
  obs::histogram* observed[4] = {};
  std::size_t observed_n = 0;

  for (const auto& payload : msg.groups) {
    // Hot path: one linear probe of the positive cache instead of two hash
    // lookups (groups_ + monitors) per carried payload.
    const remote_state::hot_entry* entry = nullptr;
    for (const auto& e : state.hot) {
      if (e.group == payload.group) {
        entry = &e;
        break;
      }
    }
    if (entry == nullptr) {
      if (groups_.find(payload.group) == groups_.end()) continue;  // not ours
      heartbeat_monitor* mon = &ensure_monitor(payload.group, msg.from, state);
      state.hot.push_back({payload.group, mon, interarrival_cell(payload.group)});
      entry = &state.hot.back();
    }
    if (have_gap && entry->interarrival != nullptr && observed_n < 4) {
      bool seen = false;
      for (std::size_t i = 0; i < observed_n; ++i) {
        if (observed[i] == entry->interarrival) {
          seen = true;
          break;
        }
      }
      if (!seen) {
        observed[observed_n++] = entry->interarrival;
        entry->interarrival->observe(to_seconds(gap));
      }
    }
    entry->monitor->on_heartbeat(msg.send_time, msg.eta);
  }
}

void fd_manager::drop(group_id group, node_id remote) {
  if (auto plan = plans_.find(group); plan != plans_.end()) {
    plan->second.clear_remote(remote);
    if (plan->second.empty()) plans_.erase(plan);
  }
  auto it = remotes_.find(remote);
  if (it == remotes_.end()) return;
  trusted_pairs_.erase(trust_key(group, remote));
  it->second->monitors.erase(group);
  it->second->params.erase(group);
  it->second->hot.clear();
  // The dropped group may have been the one pinning this remote to a fast
  // heartbeat rate; renegotiate from the remaining groups immediately
  // instead of leaving the stale request in force until the next refresh.
  renegotiate_rate(remote, *it->second, clock_.now());
}

void fd_manager::forget_remote_refinements(node_id remote) {
  for (auto it = plans_.begin(); it != plans_.end();) {
    it->second.clear_remote(remote);
    if (it->second.empty()) {
      it = plans_.erase(it);
    } else {
      ++it;
    }
  }
}

void fd_manager::drop_node(node_id remote) {
  forget_remote_refinements(remote);
  if (auto it = remotes_.find(remote); it != remotes_.end()) {
    forget_trust(remote, *it->second);
    remotes_.erase(it);
  }
}

void fd_manager::forget_trust(node_id remote, const remote_state& state) {
  for (const auto& [group, monitor] : state.monitors) {
    trusted_pairs_.erase(trust_key(group, remote));
  }
}

void fd_manager::start() {
  if (running_) return;
  running_ = true;
  reconfig_timer_.arm_after(opts_.reconfig_interval, [this] { tick(); });
}

void fd_manager::tick() {
  reconfigure_all();
  if (running_) {
    reconfig_timer_.arm_after(opts_.reconfig_interval, [this] { tick(); });
  }
}

void fd_manager::stop() {
  running_ = false;
  reconfig_timer_.cancel();
}

void fd_manager::reconfigure_all() {
  const time_point now = clock_.now();
  std::vector<node_id> gc;
  for (auto& [node, state] : remotes_) {
    reconfigure_remote(node, *state);
    // GC: remotes silent for a long time with no trusted monitor hold no
    // useful state (a re-appearing node is re-learned from its next ALIVE).
    const bool any_trusted =
        std::any_of(state->monitors.begin(), state->monitors.end(),
                    [](const auto& kv) { return kv.second->trusted(); });
    if (!any_trusted && state->last_heard + opts_.monitor_gc_after < now) {
      gc.push_back(node);
    }
  }
  for (node_id node : gc) {
    // Same hygiene as drop_node: a GC'd remote's per-remote refinements
    // must not apply to its reincarnation on a possibly different link.
    // (No monitor is trusted here — GC requires it — but clear the trust
    // mirror under the same invariant as every other teardown.)
    forget_remote_refinements(node);
    if (auto it = remotes_.find(node); it != remotes_.end()) {
      forget_trust(node, *it->second);
      remotes_.erase(it);
    }
  }
}

void fd_manager::reconfigure_remote(node_id remote, remote_state& state) {
  const link_estimate link = state.lqe.estimate();

  // Only groups that actually monitor this remote get an operating point
  // (and a say in its rate): iterating all registered groups here would
  // resurrect params for a (group, remote) that `drop` just tore down and
  // re-pin the dropped group's fast rate on the next pass.
  for (auto& [group, monitor] : state.monitors) {
    auto git = groups_.find(group);
    if (git == groups_.end()) continue;
    // Per-(group, remote) resolution: plan refinement > plan group default
    // > the configurator solved against *this* remote's link estimate.
    const fd_params params = [&] {
      if (auto plan = plans_.find(group); plan != plans_.end()) {
        if (auto resolved = plan->second.resolve(remote)) return *resolved;
      }
      return configure(git->second, link, opts_.configurator);
    }();
    state.params[group] = params;
    monitor->set_delta(params.delta);
  }
  renegotiate_rate(remote, state, clock_.now());
}

void fd_manager::renegotiate_rate(node_id remote, remote_state& state,
                                  time_point now) {
  // Min-combine the per-remote etas across all groups monitoring this
  // remote: the sender must satisfy its most demanding local group.
  duration min_eta{0};
  for (const auto& [group, params] : state.params) {
    if (groups_.find(group) == groups_.end()) continue;  // group removed
    if (state.monitors.find(group) == state.monitors.end()) continue;
    if (min_eta == duration{0} || params.eta < min_eta) min_eta = params.eta;
  }
  if (min_eta == duration{0}) return;  // nothing monitored here any more

  // Hysteresis; skip long-silent remotes.
  if (!send_rate_request_) return;
  if (state.last_heard == time_point{} ||
      state.last_heard + opts_.rate_silence_cutoff < now) {
    return;
  }
  const bool first = state.last_requested_eta == duration{0};
  const double old_s = to_seconds(state.last_requested_eta);
  const double new_s = to_seconds(min_eta);
  const bool changed =
      first || std::abs(new_s - old_s) > opts_.rate_hysteresis * old_s;
  const bool refresh_due = state.last_rate_sent + opts_.rate_refresh <= now;
  if (changed || refresh_due) {
    state.last_requested_eta = min_eta;
    state.last_rate_sent = now;
    send_rate_request_(remote, min_eta);
  }
}

bool fd_manager::is_trusted(group_id group, node_id remote) const {
  return trusted_pairs_.find(trust_key(group, remote)) != trusted_pairs_.end();
}

link_estimate fd_manager::link_quality(node_id remote) const {
  auto it = remotes_.find(remote);
  if (it == remotes_.end()) return link_estimate{};
  return it->second->lqe.estimate();
}

fd_params fd_manager::current_params(group_id group, node_id remote) const {
  if (auto plan = plans_.find(group); plan != plans_.end()) {
    if (auto resolved = plan->second.resolve(remote)) return *resolved;
  }
  auto git = groups_.find(group);
  const qos_spec qos = git != groups_.end() ? git->second : qos_spec{};
  auto it = remotes_.find(remote);
  if (it == remotes_.end()) return cold_start_params(qos);
  auto p = it->second->params.find(group);
  if (p == it->second->params.end()) return cold_start_params(qos);
  return p->second;
}

duration fd_manager::requested_eta(node_id remote) const {
  auto it = remotes_.find(remote);
  if (it == remotes_.end()) return duration{0};
  return it->second->last_requested_eta;
}

std::size_t fd_manager::monitor_count() const {
  std::size_t n = 0;
  for (const auto& [node, state] : remotes_) n += state->monitors.size();
  return n;
}

std::size_t fd_manager::plan_refinement_count() const {
  std::size_t n = 0;
  for (const auto& [group, plan] : plans_) n += plan.remote_count();
  return n;
}

}  // namespace omega::fd
