// NFD-S freshness monitor for one (remote node, group) pair (paper §3).
//
// Tracks whether the remote process is currently trusted. A heartbeat sent
// at time s by a sender using interval eta is fresh until s + eta + delta
// (the freshness point of the *next* heartbeat, shifted by delta). The
// monitor keeps the maximum such deadline over all received heartbeats and
// suspects when the local clock passes it. The sender's current eta is
// taken from each ALIVE message, so rate renegotiation never desynchronizes
// the two sides.
#pragma once

#include <functional>

#include "common/executor.hpp"
#include "common/time.hpp"

namespace omega::fd {

class heartbeat_monitor {
 public:
  /// `on_transition(trusted)` fires on every trust <-> suspect edge,
  /// including the initial trust when the first heartbeat arrives.
  heartbeat_monitor(clock_source& clock, timer_service& timers, duration delta,
                    std::function<void(bool)> on_transition);

  heartbeat_monitor(const heartbeat_monitor&) = delete;
  heartbeat_monitor& operator=(const heartbeat_monitor&) = delete;

  /// Feeds one received heartbeat (sender timestamp + sender's interval).
  void on_heartbeat(time_point send_time, duration sender_eta);

  /// Updates the freshness shift; applies to subsequent heartbeats.
  void set_delta(duration delta) { delta_ = delta; }
  [[nodiscard]] duration delta() const { return delta_; }

  [[nodiscard]] bool trusted() const { return trusted_; }
  /// Time the current freshness expires (meaningful while trusted).
  [[nodiscard]] time_point deadline() const { return deadline_; }
  /// Local receipt time of the most recent heartbeat (even stale ones —
  /// any heartbeat is evidence of life). Origin if never heard.
  [[nodiscard]] time_point last_heartbeat() const { return last_heartbeat_; }

 private:
  void arm();
  void expire();

  clock_source& clock_;
  scoped_timer timer_;
  duration delta_;
  std::function<void(bool)> on_transition_;
  bool trusted_ = false;
  bool ever_heard_ = false;
  time_point deadline_{};
  time_point last_heartbeat_{};
};

}  // namespace omega::fd
