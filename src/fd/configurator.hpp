// Failure Detector Configurator (paper §3, Figure 1; Chen et al. [5] §5).
//
// Translates a QoS requirement (T^U_D, T^L_MR, P^L_A) plus the current link
// estimate (p_L, E[D], S[D]) into the NFD-S operating point (eta, delta).
//
// Model (NFD-S with freshness points): the sender emits heartbeat m_i at
// sigma_i = i*eta; the monitor trusts during [tau_i, tau_{i+1}) iff some
// m_j, j >= i, has arrived, where tau_i = sigma_i + delta. Consequences:
//
//  * worst-case detection time is eta + delta (crash right after a send),
//    so any (eta, delta) with eta + delta <= T^U_D meets T^U_D;
//  * a *mistake* happens at a freshness point tau_{i+1} iff none of the
//    messages m_{i+1}..m_{i+k} (those already sent by tau_{i+1},
//    k = floor(delta/eta) + 1) has arrived by tau_{i+1}:
//        q0 = prod_{j=1..k} [ p_L + (1 - p_L) * Pr(D > delta - (j-1)*eta) ]
//    giving an expected mistake recurrence E[T_MR] = eta / q0;
//  * a mistake lasts until the next heartbeat gets through,
//    E[T_M] <= eta / (1 - p_L), so the query accuracy is at least
//        P_A >= 1 - q0 / (1 - p_L).
//
// The configurator picks the *largest* eta (fewest messages, i.e. cheapest
// operating point) with delta = T^U_D - eta such that both the E[T_MR] and
// the P_A constraints hold. When no point on the grid is feasible (e.g.
// extremely lossy link and tight T^U_D), it returns the point with the best
// achievable mistake recurrence and marks it `qos_feasible = false` — the
// same "QoS under some conditions" caveat as the paper.
#pragma once

#include "fd/qos.hpp"

namespace omega::fd {

struct configurator_options {
  /// Number of grid points for eta in (0, T^U_D).
  int grid_steps = 100;
  /// Tail bound used for Pr(D > x).
  delay_tail_model tail = delay_tail_model::exponential;
  /// Per-link tail selection: use the estimator's online tail-shape
  /// verdict (`link_estimate::tail`) instead of the static `tail` above.
  /// This is how the adaptive engine stops mis-modeling Pareto WAN links
  /// with an exponential tail (and vice versa): the retuner's
  /// `configurator_options` flows through here, so flipping this flag in
  /// `retuner_options::configurator` makes every link self-select.
  bool auto_tail = false;
  /// Below this many link samples the estimator output is not trusted and
  /// a conservative default operating point is returned instead.
  std::size_t min_samples = 16;
};

/// The tail model `configure` will actually use for `link` under `opts`.
[[nodiscard]] inline delay_tail_model effective_tail(
    const link_estimate& link, const configurator_options& opts) {
  return opts.auto_tail ? link.tail : opts.tail;
}

/// Pr(D > x) under the given tail model and link estimate.
[[nodiscard]] double delay_tail(const link_estimate& link, delay_tail_model tail,
                                double x_seconds);

/// Probability that a given freshness point opens a mistake (q0 above).
[[nodiscard]] double mistake_probability(const link_estimate& link,
                                         delay_tail_model tail, double eta_s,
                                         double delta_s);

/// Do both QoS constraints (E[T_MR] >= T^L_MR and P_A >= P^L_A) hold at
/// the point (eta, delta) under `link`? `margin` scales the requirements
/// (> 1 stricter, < 1 more lenient); the adaptive retuner uses it as a
/// Schmitt trigger. This is the single home of the constraint math — the
/// grid searches in `configure` and in the adaptive retuner both call it.
[[nodiscard]] bool qos_constraints_hold(const qos_spec& qos,
                                        const link_estimate& link,
                                        delay_tail_model tail, double eta_s,
                                        double delta_s, double margin = 1.0);

/// Same predicate with a precomputed mistake probability, for grid
/// searches that already need q0 for other bookkeeping.
[[nodiscard]] bool qos_constraints_hold_q0(const qos_spec& qos,
                                           double loss_probability,
                                           double eta_s, double q0,
                                           double margin = 1.0);

/// Computes the NFD-S operating point for one monitored link.
[[nodiscard]] fd_params configure(const qos_spec& qos, const link_estimate& link,
                                  const configurator_options& opts = {});

/// Conservative operating point used before the estimator has enough
/// samples: eta = T^U_D / 4, delta = 3*T^U_D / 4.
[[nodiscard]] fd_params cold_start_params(const qos_spec& qos);

}  // namespace omega::fd
