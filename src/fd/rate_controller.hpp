// Sender-side heartbeat rate control.
//
// Monitors compute the heartbeat interval eta their QoS needs (per link,
// min-combined across their local groups) and send RATE_REQ messages; the
// sender must emit at the *fastest* rate any live monitor demands (paper
// §3: the configurator "computes the frequency eta at which q must send
// alive messages"). The default rate applies only while no unexpired
// request is outstanding (cold start, or every monitor gone): outstanding
// requests drive the rate in *both* directions, so a cluster whose
// monitors all relaxed — per-remote refinements on good links, or a
// background-class group — actually sends fewer heartbeats. Monitors stay
// safe under a slower-than-expected stream because every ALIVE carries the
// sender's current eta and freshness adapts to it. Requests expire so that
// a crashed monitor's demand does not pin a rate forever.
#pragma once

#include <unordered_map>

#include "common/ids.hpp"
#include "common/time.hpp"

namespace omega::fd {

class rate_controller {
 public:
  /// `default_eta` is the rate used with no outstanding requests (derived
  /// from the sender's own QoS spec); `expiry` ages requests out.
  explicit rate_controller(duration default_eta, duration expiry = sec(60));

  /// Records a rate request from `from` received at `now`.
  void on_request(node_id from, duration eta, time_point now);

  /// Drops any outstanding request from `from` (it left or crashed).
  void forget(node_id from);

  /// Smallest (fastest) unexpired requested interval; the default when no
  /// unexpired request is outstanding.
  [[nodiscard]] duration effective_eta(time_point now) const;

  void set_default_eta(duration eta) { default_eta_ = eta; }
  [[nodiscard]] duration default_eta() const { return default_eta_; }

  [[nodiscard]] std::size_t outstanding_requests() const { return requests_.size(); }

 private:
  struct request {
    duration eta;
    time_point expires;
  };

  duration default_eta_;
  duration expiry_;
  std::unordered_map<node_id, request> requests_;

  /// Memoized scan result. effective_eta() is called on every outgoing
  /// ALIVE, and the full scan over per-remote requests made it O(cluster)
  /// per heartbeat. The cached minimum stays exact until either a request
  /// mutation that could raise the minimum (invalidation below) or the
  /// earliest recorded expiry passes (`valid_until`); both trigger a fresh
  /// scan. Mutations that can only lower or confirm the minimum update it
  /// in place. `valid_until` is allowed to be conservative (early) — an
  /// early rescan returns the same value, a late one could not.
  mutable bool cache_valid_ = false;
  mutable duration cached_min_{0};  // 0 = no unexpired request seen
  mutable time_point valid_until_{};
};

}  // namespace omega::fd
