// Link Quality Estimator (paper §3, Figure 1).
//
// Continuously estimates the quality of the directed link from a monitored
// process q to the local process p, using only the ALIVE messages p
// receives from q:
//   * message-loss probability p_L — from gaps in the heartbeat sequence
//     numbers, folded over fixed-size epochs into an EWMA. The estimate is
//     floored at ~1/(2*window): a finite sample can never certify a lower
//     loss rate, and the floor is what makes the configurator keep a safety
//     margin on clean LANs.
//   * delay mean E[D] and standard deviation S[D] — from the difference
//     between the embedded send timestamp and the local receive time over a
//     sliding window. (Simulation clocks are perfectly synchronized; the
//     real-time runtime relies on NTP-grade sync exactly like the paper's
//     LAN testbed.)
//
// For deployments without synchronized clocks, the estimator has a
// *skew-tolerant* mode (Chen et al.'s NFD-E idea): raw `received - sent`
// differences are offset by an unknown constant (clock skew), so the mode
// re-bases every sample against the smallest difference seen in the window
// — the sample that experienced the least queuing. The re-based values
// estimate delay *jitter above the minimum*; the unknown propagation floor
// is invisible to any clock-free scheme, which only makes the (eta, delta)
// choice slightly conservative. Loss estimation is unaffected (sequence
// numbers carry no time).
#pragma once

#include <cstdint>

#include "common/stats.hpp"
#include "common/time.hpp"
#include "fd/qos.hpp"

namespace omega::fd {

class link_quality_estimator {
 public:
  struct options {
    std::size_t delay_window = 256;   // samples kept for E[D], S[D]
    std::size_t loss_epoch = 128;     // heartbeats per loss-counting epoch
    double loss_ewma_alpha = 0.3;     // weight of the newest epoch
    double loss_floor = 0.5 / 256.0;  // cannot certify loss below this
    /// True (default): sender and receiver clocks are comparable, delays
    /// are measured absolutely. False: skew-tolerant mode — delays are
    /// measured relative to the window's minimum difference (see header).
    bool synchronized_clocks = true;
    /// Online tail-shape estimation (ISSUE 10 satellite): classify the
    /// delay tail from the window's excess kurtosis instead of hardwiring
    /// the exponential assumption. An exponential's excess kurtosis is 6;
    /// windows decisively above `pareto_kurtosis_threshold` are flagged
    /// `delay_tail_model::pareto` in the estimate (a Pareto tail with
    /// alpha <= 4 has a divergent fourth moment, so its empirical kurtosis
    /// runs away as the window fills). The verdict is a *hint*: it only
    /// changes FD behaviour when `configurator_options::auto_tail` is on.
    bool estimate_tail = true;
    double pareto_kurtosis_threshold = 12.0;
    /// Below this many delay samples the kurtosis is too noisy to call
    /// anything non-exponential.
    std::size_t tail_min_samples = 64;
  };

  link_quality_estimator() : link_quality_estimator(options{}) {}
  explicit link_quality_estimator(options opts);

  /// Feeds one received heartbeat. Duplicate or reordered sequence numbers
  /// are tolerated (reordering shrinks the apparent gap; duplicates cannot
  /// occur because each sequence number is sent exactly once).
  void on_heartbeat(std::uint64_t seq, time_point sent, time_point received);

  /// Forgets everything (monitored process restarted with a new incarnation,
  /// so the old stream's statistics no longer apply).
  void reset();

  /// Current (p_L, E[D], S[D]) estimate with the number of samples behind it.
  [[nodiscard]] link_estimate estimate() const;

  /// Total heartbeats observed since the last reset.
  [[nodiscard]] std::uint64_t heartbeats_seen() const { return total_received_; }

 private:
  void roll_epoch();

  options opts_;
  windowed_stats delay_seconds_;  // absolute (synchronized) or re-based (skewed)
  windowed_stats raw_diff_seconds_;  // skew-tolerant mode: raw recv - sent
  std::uint64_t total_received_ = 0;

  /// estimate() is a pure function of the sample state and is queried both
  /// per received ALIVE (the link observer) and per remote per
  /// reconfiguration tick; the memo makes every query between two
  /// heartbeats free.
  mutable bool est_valid_ = false;
  mutable link_estimate est_cache_{};

  bool epoch_open_ = false;
  std::uint64_t epoch_min_seq_ = 0;
  std::uint64_t epoch_max_seq_ = 0;
  std::uint64_t epoch_received_ = 0;

  bool have_loss_ = false;
  double loss_ewma_ = 0.0;
};

}  // namespace omega::fd
