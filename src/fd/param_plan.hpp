// Layered operating-point plan for one group.
//
// The unit of FD configuration is (group, remote): one NFD-S monitor runs
// per (remote, group), and a cluster with one bad WAN link must not pay
// that link's delta on every clean LAN link. A plan therefore layers an
// optional group-wide default under per-remote refinements:
//
//   resolve(remote) = per-remote refinement, else group default, else
//                     nothing (the caller falls through to the per-link
//                     configurator / cold start).
//
// `fd_manager` keeps one plan per group; the adaptation engine writes the
// group default from its robust cluster aggregate and refines per remote
// from each peer's own tracked link window.
#pragma once

#include <optional>
#include <unordered_map>

#include "common/ids.hpp"
#include "fd/qos.hpp"

namespace omega::fd {

class param_plan {
 public:
  void set_group_default(fd_params params) { group_default_ = params; }
  void set_remote(node_id remote, fd_params params) {
    remotes_[remote] = params;
  }
  void clear_remote(node_id remote) { remotes_.erase(remote); }

  /// Most specific layer that applies to `remote`.
  [[nodiscard]] std::optional<fd_params> resolve(node_id remote) const {
    auto it = remotes_.find(remote);
    if (it != remotes_.end()) return it->second;
    return group_default_;
  }

  [[nodiscard]] std::optional<fd_params> group_default() const {
    return group_default_;
  }
  [[nodiscard]] bool has_remote(node_id remote) const {
    return remotes_.find(remote) != remotes_.end();
  }
  [[nodiscard]] bool empty() const {
    return !group_default_.has_value() && remotes_.empty();
  }
  [[nodiscard]] std::size_t remote_count() const { return remotes_.size(); }

 private:
  std::optional<fd_params> group_default_;
  std::unordered_map<node_id, fd_params> remotes_;
};

}  // namespace omega::fd
