// Umbrella header for the omega-election library.
//
// Pulls in the entire public API: the service facade, the election
// algorithms, both substrates (deterministic simulator and real-time UDP
// runtime), and the experiment harness. Fine-grained includes are under
// the individual module directories; this header is for applications that
// just want the service.
//
//   #include "omega.hpp"
//
//   omega::sim::simulator sim;
//   omega::net::sim_network net(sim, 5, omega::net::link_profile::lan(),
//                               omega::rng{42});
//   omega::service::leader_election_service svc(sim, sim,
//                                               net.endpoint(omega::node_id{0}),
//                                               cfg);
#pragma once

#include "common/ids.hpp"
#include "common/random.hpp"
#include "common/time.hpp"
#include "election/elector.hpp"
#include "fd/qos.hpp"
#include "harness/experiment.hpp"
#include "harness/scenario.hpp"
#include "metrics/group_metrics.hpp"
#include "net/link_model.hpp"
#include "net/sim_network.hpp"
#include "runtime/real_time.hpp"
#include "runtime/udp_transport.hpp"
#include "service/service.hpp"
#include "sim/simulator.hpp"
