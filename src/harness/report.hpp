// Plain-text table reporting for the benchmark binaries.
//
// Every figure-reproduction bench prints the same rows/series the paper
// reports, with the paper's published value alongside the measured one so
// the comparison is visible in the raw bench output.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace omega::harness {

class table {
 public:
  explicit table(std::string title) : title_(std::move(title)) {}

  table& headers(std::vector<std::string> cols);
  table& row(std::vector<std::string> cells);
  void print(std::ostream& out) const;

 private:
  std::string title_;
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Fixed-precision double, e.g. fmt_double(0.938, 2) == "0.94".
[[nodiscard]] std::string fmt_double(double v, int precision);
/// Fraction as percent, e.g. fmt_percent(0.99842, 2) == "99.84%".
[[nodiscard]] std::string fmt_percent(double fraction, int precision);
/// Mean with 95% CI half-width, e.g. "0.94 +/-0.05".
[[nodiscard]] std::string fmt_ci(double mean, double half_width, int precision);

}  // namespace omega::harness
