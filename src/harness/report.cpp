#include "harness/report.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace omega::harness {

table& table::headers(std::vector<std::string> cols) {
  headers_ = std::move(cols);
  return *this;
}

table& table::row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
  return *this;
}

void table::print(std::ostream& out) const {
  std::vector<std::size_t> widths(headers_.size(), 0);
  for (std::size_t i = 0; i < headers_.size(); ++i) widths[i] = headers_[i].size();
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size() && i < widths.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }

  out << "== " << title_ << " ==\n";
  const auto print_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      out << "  " << std::left << std::setw(static_cast<int>(widths[i])) << cells[i];
    }
    out << "\n";
  };
  print_row(headers_);
  std::size_t total = 0;
  for (std::size_t w : widths) total += w + 2;
  out << "  " << std::string(total > 2 ? total - 2 : 0, '-') << "\n";
  for (const auto& row : rows_) print_row(row);
  out << "\n";
}

std::string fmt_double(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string fmt_percent(double fraction, int precision) {
  return fmt_double(fraction * 100.0, precision) + "%";
}

std::string fmt_ci(double mean, double half_width, int precision) {
  return fmt_double(mean, precision) + " +/-" + fmt_double(half_width, precision);
}

}  // namespace omega::harness
