// Declarative fault scripting for scenarios (ISSUE 10; DESIGN.md §11).
//
// A `fault_script` is a list of `fault_step`s carried by `scenario`: each
// step names one fault action, when it fires (offset from simulation
// start), optionally how long it lasts (the experiment schedules the
// inverse action at `at + lasts`), and an optional repeat schedule. The
// experiment translates steps into simulator timers at construction and
// drives the `net::adversary` installed on the simulated network — plus
// the per-node `skewed_clock` wrappers for the clock-fault class, which
// lives in the nodes rather than in the network.
//
// Determinism contract: same scenario seed + same script => same merged
// trace, byte for byte. Every stochastic fault choice draws from the
// adversary's private RNG stream (split from the scenario root *after* all
// base streams), so adding a script never perturbs the base scenario's
// draws, and an empty script is byte-identical to the pre-adversary
// harness.
#pragma once

#include <cstddef>
#include <string>
#include <variant>
#include <vector>

#include "common/ids.hpp"
#include "common/time.hpp"
#include "net/adversary.hpp"
#include "proto/wire.hpp"

namespace omega::harness {

/// One-way cut: datagrams `from -> to` die, the reverse direction flows.
struct fault_cut {
  node_id from;
  node_id to;
};

/// Named partition: the union of `members` and the nodes of the listed
/// tier-0 `regions` (hierarchy runs; ignored in flat scenarios) is severed
/// from the rest of the cluster in both directions. Reverted (or healed by
/// a later step) by name.
struct fault_partition {
  std::string name;
  std::vector<node_id> members;
  std::vector<std::size_t> regions;
};

/// Flap one directed link on a duty cycle.
struct fault_flap {
  node_id from;
  node_id to;
  net::flap_spec spec;
};

/// Flap every inter-region (WAN) link on one duty cycle. In a flat
/// scenario (no hierarchy) this flaps every non-loopback link.
struct fault_flap_wan {
  net::flap_spec spec;
};

/// Cluster-wide bounded duplication of admitted datagrams.
struct fault_duplicate {
  net::duplicate_spec spec;
};

/// Cluster-wide deterministic permutation-window reordering.
struct fault_reorder {
  net::reorder_spec spec;
};

/// Delay inflation for one wire message kind (proto::peek_kind).
struct fault_kind_delay {
  proto::msg_kind kind = proto::msg_kind::alive;
  duration extra{};
};

/// Clock skew/drift of one node, injected through the clock_source seam:
/// the node's service reads base + offset + drift * elapsed. Reverting
/// restores the base clock.
struct fault_skew {
  node_id node;
  duration offset{};
  /// Dimensionless rate error (200e-6 = 200 ppm fast; negative = slow).
  double drift = 0.0;
};

using fault_action =
    std::variant<fault_cut, fault_partition, fault_flap, fault_flap_wan,
                 fault_duplicate, fault_reorder, fault_kind_delay, fault_skew>;

struct fault_step {
  /// Offset from simulation start (not from the end of warm-up).
  duration at{};
  /// 0 = permanent (until a later step heals it); otherwise the inverse
  /// action runs at `at + lasts`.
  duration lasts{};
  /// Repeat the whole step (apply + revert) every `repeat_every`; 0 = once.
  duration repeat_every{};
  /// Number of *extra* firings when repeating (total = repeat_count + 1).
  std::size_t repeat_count = 0;
  fault_action action;
};

}  // namespace omega::harness
