// Experiment scenario description (paper §6.1).
//
// One scenario = one cell of one figure: a cluster size, an election
// algorithm, a link behaviour, a churn model, an FD QoS and a simulated
// duration. The defaults reproduce the paper's standard setting: 12
// workstations, one group with every process a candidate, per-node
// up-time Exp(600 s) / recovery Exp(5 s), FD QoS (1 s, 100 days,
// 0.99999988).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "adaptive/engine.hpp"
#include "common/time.hpp"
#include "election/elector.hpp"
#include "fd/qos.hpp"
#include "harness/fault_script.hpp"
#include "net/link_model.hpp"

namespace omega::harness {

/// Workstation crash/recovery dynamics (§6.1 "Workstations behavior").
struct churn_profile {
  bool enabled = true;
  duration mean_uptime = sec(600);
  duration mean_recovery = sec(5);

  static churn_profile none() { return {false, {}, {}}; }
  static churn_profile paper_default() { return {}; }
};

/// One step of a dynamic link profile: at offset `at` from simulation
/// start, every directed link switches to `links`. This is how experiments
/// model a network that degrades (or heals) mid-run: LAN -> lossy -> WAN.
struct link_phase {
  duration at{};
  net::link_profile links;
};

/// Hierarchical election (src/hierarchy/): the roster is split into
/// contiguous regions, every node runs its region's election, and regional
/// leaders are promoted tier by tier until one global group (all other
/// nodes listen there). `scenario::qos`, `fd_class` and `alg` configure
/// the region tier; the upper tiers are configured here. The experiment's
/// ground truth and leader metrics then track the *global* leader, and
/// per-region trackers + the cross-tier blame split land in
/// `experiment_result::regions` / `outages_blamed_*`.
struct hierarchy_profile {
  bool enabled = false;
  /// Number of regions; 0 derives it from `region_size`.
  std::size_t regions = 0;
  /// Nodes per region when `regions` is 0 (ceil division fills the rest).
  std::size_t region_size = 0;
  /// Explicit multi-tier shape: groups per tier, ending in the single
  /// global group (e.g. {12, 3, 1} = regions -> zones -> global). When
  /// non-empty it overrides `regions` / `region_size`; when empty the
  /// shape is the two-tier {regions, 1}.
  std::vector<std::size_t> tiers;
  /// Roster-scoped HELLO/LEAVE dissemination (the coordinator requests
  /// `membership::hello_fanout::roster` on every service). false keeps the
  /// cluster-wide anti-entropy — the pre-scoping baseline that
  /// bench/fig12_roster_scope compares against.
  bool scoped_hello = true;
  /// Links between nodes of *different* regions; nullopt keeps
  /// `scenario::links` for all pairs (region-scoped link profiles).
  std::optional<net::link_profile> inter_region_links;
  /// Per-region churn overrides (index = region); regions beyond the
  /// vector's size use `scenario::churn` (region-scoped churn profiles).
  std::vector<churn_profile> region_churn;
  /// FD QoS and class of the global tier. Background class lets the
  /// listener-heavy global group relax heartbeat rates when adaptive.
  fd::qos_spec global_qos = fd::qos_spec::paper_default();
  adaptive::qos_class global_class = adaptive::qos_class::background;

  static hierarchy_profile none() { return {}; }
  static hierarchy_profile with_regions(std::size_t regions) {
    hierarchy_profile h;
    h.enabled = true;
    h.regions = regions;
    return h;
  }
  static hierarchy_profile with_region_size(std::size_t size) {
    hierarchy_profile h;
    h.enabled = true;
    h.region_size = size;
    return h;
  }
  /// Three-tier shape: `regions` leaf groups coarsened into `zones` groups
  /// under one global group (the §7 tiered composition at depth 3).
  static hierarchy_profile three_tier(std::size_t regions, std::size_t zones) {
    hierarchy_profile h;
    h.enabled = true;
    h.tiers = {regions, zones, 1};
    return h;
  }
};

struct scenario {
  std::string name = "unnamed";
  std::size_t nodes = 12;
  election::algorithm alg = election::algorithm::omega_lc;

  net::link_profile links = net::link_profile::lan();
  /// Scheduled link-profile changes (applied in `at` order on top of the
  /// initial `links`). Empty = the static single-profile runs of the paper.
  std::vector<link_phase> link_phases;
  /// Mixed-topology clusters: the last `wan_nodes` workstations reach (and
  /// are reached by) every peer through `wan_links` instead of `links` —
  /// a LAN cluster with a few members behind a WAN. 0 = homogeneous.
  std::size_t wan_nodes = 0;
  net::link_profile wan_links = net::link_profile::lossy(msec(50), 0.01);
  net::link_crash_profile link_crashes = net::link_crash_profile::none();
  churn_profile churn = churn_profile::paper_default();
  fd::qos_spec qos = fd::qos_spec::paper_default();

  /// Tuning policy of every service instance (continuous = seed behaviour,
  /// frozen = static cold-start baseline, adaptive = adaptation engine)
  /// plus the engine's knobs.
  adaptive::engine_options adaptive{};
  /// QoS class every process joins the group with (adaptive mode only):
  /// interactive minimizes detection latency, background heartbeat rate.
  adaptive::qos_class fd_class = adaptive::qos_class::interactive;
  /// Let electors consult the stability scorer (adaptive mode only).
  bool stability_ranking = false;

  /// Number of leadership candidates; the first `candidates` pids are
  /// candidates, the rest join as passive (non-candidate) members.
  /// 0 means "all". Ignored when `hierarchy` is enabled (candidacy is the
  /// coordinator's business there).
  std::size_t candidates = 0;

  /// Hierarchical (two-tier) election instead of the single flat group.
  hierarchy_profile hierarchy = hierarchy_profile::none();

  /// Adversarial fault script (DESIGN.md §11): declarative at-time /
  /// for-duration / repeat steps driving the `net::adversary` fault plane
  /// and the per-node skewed clocks. Empty (default) installs no adversary
  /// at all — that run is byte-identical to the pre-adversary harness (the
  /// golden-trace guard proves it).
  std::vector<fault_step> fault_script;

  /// Attach a per-node observability sink (metrics registry + bounded
  /// trace ring) to every service instance. Off by default: the un-traced
  /// run is the overhead baseline the CI gate protects.
  bool trace = false;
  /// Ring capacity (events retained per node) when `trace` is on.
  std::size_t trace_capacity = 2048;
  /// Causal tracing (DESIGN.md §7): activate every sink's causal plane and
  /// stamp causally potent outbound datagrams with the provoking trace
  /// event's cause id (wire envelope v2), so `experiment::build_causal_graph`
  /// can rebuild a failover as a DAG. Needs `trace`; off by default — the
  /// unstamped run is the byte-identity baseline the golden-trace guard and
  /// the overhead gate protect.
  bool causal = false;
  /// Attach the per-event-kind host-time profiler to the simulated network:
  /// `omega_sim_handler_seconds{kind}` histograms land in
  /// `experiment::sim_registry()`. Never touches virtual time.
  bool profile_sim = false;

  /// Simulated measurement window (after warm-up).
  duration measured = std::chrono::duration_cast<duration>(std::chrono::hours(2));
  /// Warm-up before metrics/traffic accounting starts (FD estimator
  /// convergence; churn also starts after the warm-up).
  duration warmup = sec(60);

  std::uint64_t seed = 42;
};

}  // namespace omega::harness
