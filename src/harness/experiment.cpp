#include "harness/experiment.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <string>
#include <utility>
#include <variant>

#include "obs/exposition.hpp"
#include "obs/service_export.hpp"

namespace omega::harness {

experiment::experiment(scenario sc) : sc_(std::move(sc)), root_rng_(sc_.seed) {
  if (sc_.nodes == 0) throw std::invalid_argument("experiment: zero nodes");
  // A demotion completing within ~2 detection bounds of the demoted
  // process's real crash is attributable to that crash, even if the
  // process recovered in between (see the group_metrics header).
  metrics_.set_justification_window(sc_.qos.detection_time * 2);
  net_ = std::make_unique<net::sim_network>(sim_, sc_.nodes, sc_.links,
                                            root_rng_.split());
  // Mixed topology: every directed link touching one of the last
  // `wan_nodes` workstations runs the WAN profile.
  if (sc_.wan_nodes > 0 && sc_.wan_nodes < sc_.nodes) {
    const std::size_t first_wan = sc_.nodes - sc_.wan_nodes;
    for (std::size_t i = 0; i < sc_.nodes; ++i) {
      for (std::size_t j = 0; j < sc_.nodes; ++j) {
        if (i == j || (i < first_wan && j < first_wan)) continue;
        net_->set_link_profile(node_id{static_cast<std::uint32_t>(i)},
                               node_id{static_cast<std::uint32_t>(j)},
                               sc_.wan_links);
      }
    }
  }
  // Hierarchy: derive the region layout and apply region-scoped link
  // profiles (intra-region pairs keep `links`, inter-region pairs switch
  // to the WAN-grade profile when one is given).
  if (sc_.hierarchy.enabled) {
    if (!sc_.hierarchy.tiers.empty()) {
      // Explicit multi-tier shape (3-tier and deeper compositions).
      topo_.emplace(hierarchy::topology(sc_.nodes, sc_.hierarchy.tiers));
    } else {
      std::size_t regions = sc_.hierarchy.regions;
      if (regions == 0 && sc_.hierarchy.region_size > 0) {
        regions = (sc_.nodes + sc_.hierarchy.region_size - 1) /
                  sc_.hierarchy.region_size;
      }
      if (regions == 0 || regions > sc_.nodes) {
        throw std::invalid_argument("experiment: bad hierarchy region count");
      }
      topo_.emplace(hierarchy::topology::two_tier(sc_.nodes, regions));
    }
    hier_metrics_ = std::make_unique<metrics::hierarchy_metrics>(
        topo_->groups_in_tier(0), [this](process_id pid) {
          // The harness runs pid i on node i.
          return topo_->region_of(node_id{pid.value()});
        });
    hier_metrics_->set_justification_window(sc_.qos.detection_time * 2);
    metrics_.set_agreement_observer(
        [this](time_point now, std::optional<process_id> agreed) {
          hier_metrics_->on_global_agreement(now, agreed);
        });
    if (sc_.hierarchy.inter_region_links) {
      for (std::size_t i = 0; i < sc_.nodes; ++i) {
        for (std::size_t j = 0; j < sc_.nodes; ++j) {
          const node_id a{static_cast<std::uint32_t>(i)};
          const node_id b{static_cast<std::uint32_t>(j)};
          if (i == j || topo_->same_region(a, b)) continue;
          net_->set_link_profile(a, b, *sc_.hierarchy.inter_region_links);
        }
      }
    }
  }

  if (sc_.link_crashes.enabled) net_->enable_link_crashes(sc_.link_crashes);

  // Dynamic link profile: schedule every phase change up front.
  for (const link_phase& phase : sc_.link_phases) {
    sim_.schedule_at(time_origin + phase.at, [this, profile = phase.links] {
      net_->set_all_link_profiles(profile);
    });
  }

  if (sc_.trace) {
    obs_.reserve(sc_.nodes);
    for (std::size_t i = 0; i < sc_.nodes; ++i) {
      obs_.push_back(std::make_unique<node_obs>(sc_.trace_capacity));
    }
  }
  if (sc_.profile_sim) {
    profiler_ = std::make_unique<obs::profiler>(&sim_metrics_);
    net_->set_profiler(profiler_.get());
  }

  nodes_.reserve(sc_.nodes);
  rng stagger = root_rng_.split();
  for (std::size_t i = 0; i < sc_.nodes; ++i) {
    workstation ws;
    ws.node = node_id{static_cast<std::uint32_t>(i)};
    ws.pid = process_id{static_cast<std::uint32_t>(i)};
    ws.churn = sc_.churn;
    if (topo_) {
      const std::size_t region = topo_->region_of(ws.node);
      if (region < sc_.hierarchy.region_churn.size()) {
        ws.churn = sc_.hierarchy.region_churn[region];
      }
    }
    ws.churn_rng = root_rng_.split();
    nodes_.push_back(std::move(ws));
  }
  // Stagger the initial joins over two seconds so the cluster does not
  // behave as if a perfectly synchronized script started it (it never does
  // on a real testbed either).
  for (auto& ws : nodes_) {
    const time_point join_at = time_origin + stagger.exponential(msec(500));
    boot_node(ws, join_at);
  }

  // Adversarial fault script (DESIGN.md §11). The adversary's stream is the
  // *last* split off the root: base streams (network, stagger, churn) keep
  // the exact draw sequence of a script-free run, and a run with an empty
  // script takes no split at all — byte-identical to the pre-adversary
  // harness, as the golden-trace guard checks.
  if (!sc_.fault_script.empty()) {
    for (const fault_step& step : sc_.fault_script) {
      if (const auto* skew = std::get_if<fault_skew>(&step.action)) {
        // Pre-create the wrapper (zero skew = pass-through) so the service
        // can be bound to it before the fault fires; services start only
        // once the simulator runs.
        auto& ws = nodes_.at(skew->node.value());
        if (!ws.clock) {
          ws.clock = std::make_unique<skewed_clock>(sim_);
          ws.timers = std::make_unique<skewed_timer_service>(sim_, *ws.clock);
        }
      }
    }
    adversary_ = std::make_unique<net::adversary>(root_rng_.split());
    net_->install_adversary(adversary_.get());
    for (const fault_step& step : sc_.fault_script) schedule_fault_step(step);

    if (hier_metrics_) {
      // Forensics oracle: the fault script is fully declarative, so every
      // fault episode window is known up front. Each window is extended by
      // a slack tail covering not just detection + re-election but the
      // adaptive plane's memory: the link-quality estimators keep ~256
      // samples per link, so an episode's loss/delay pollution mis-tunes
      // the FD operating point for up to a couple of minutes after the
      // revert, and the delayed mistakes it causes are still the fault's.
      const duration slack =
          5 * std::max(sc_.qos.detection_time,
                       sc_.hierarchy.global_qos.detection_time) +
          sec(120);
      std::vector<std::pair<time_point, time_point>> windows;
      for (const fault_step& step : sc_.fault_script) {
        const std::size_t firings =
            step.repeat_every > duration{0} ? step.repeat_count + 1 : 1;
        for (std::size_t k = 0; k < firings; ++k) {
          const time_point from =
              time_origin + step.at +
              step.repeat_every * static_cast<std::int64_t>(k);
          const time_point until = step.lasts > duration{0}
                                       ? from + step.lasts + slack
                                       : time_point::max();
          windows.emplace_back(from, until);
        }
      }
      hier_metrics_->set_fault_oracle(
          [windows = std::move(windows)](time_point start, time_point end) {
            for (const auto& [from, until] : windows) {
              if (start <= until && end >= from) return true;
            }
            return false;
          });
    }
  }
}

experiment::~experiment() {
  for (auto& ws : nodes_) {
    if (ws.churn_timer != no_timer) sim_.cancel(ws.churn_timer);
  }
}

void experiment::boot_node(workstation& ws, time_point join_at) {
  sim_.schedule_at(join_at, [this, &ws] { start_service(ws); });
}

void experiment::start_service(workstation& ws) {
  ws.up = true;
  net_->set_node_alive(ws.node, true);

  service::service_config cfg;
  cfg.self = ws.node;
  cfg.inc = ws.next_inc++;
  cfg.roster.reserve(sc_.nodes);
  for (const auto& other : nodes_) cfg.roster.push_back(other.node);
  cfg.alg = sc_.alg;
  cfg.adaptive = sc_.adaptive;
  if (!obs_.empty()) {
    cfg.sink = &obs_[ws.node.value()]->sink;
    cfg.causal_stamping = sc_.causal;
  }
  // Nodes targeted by a fault_skew step read their skewed wrapper — clock
  // AND timers, since protocol code derives absolute timer deadlines from
  // the clock it reads (see skewed_clock.hpp). All other nodes bind the
  // simulator directly (identical object identity to the script-free
  // harness).
  clock_source& clock = ws.clock ? static_cast<clock_source&>(*ws.clock)
                                 : static_cast<clock_source&>(sim_);
  timer_service& timers = ws.timers ? static_cast<timer_service&>(*ws.timers)
                                    : static_cast<timer_service&>(sim_);
  ws.svc = std::make_unique<service::leader_election_service>(
      clock, timers, net_->endpoint(ws.node), cfg);

  const process_id pid = ws.pid;
  ws.svc->register_process(pid);
  metrics_.on_join(sim_.now(), pid);
  if (hier_metrics_) hier_metrics_->on_join(sim_.now(), pid);

  if (topo_) {
    // Hierarchical scenario: the coordinator joins the whole group chain;
    // the experiment's metrics track the top-tier ("global") leader view
    // and the per-region trackers follow the tier-0 views.
    hierarchy::coordinator_options copts;
    copts.region.qos = sc_.qos;
    copts.region.fd_class = sc_.fd_class;
    copts.region.alg = sc_.alg;
    copts.region.stability_ranking = sc_.stability_ranking;
    copts.upper.qos = sc_.hierarchy.global_qos;
    copts.upper.fd_class = sc_.hierarchy.global_class;
    copts.scoped_hello = sc_.hierarchy.scoped_hello;
    const std::size_t top = topo_->top_tier();
    ws.coord = std::make_unique<hierarchy::hierarchy_coordinator>(
        *ws.svc, *topo_, pid, copts,
        [this, pid, top](std::size_t tier, std::optional<process_id> leader) {
          if (tier == top) metrics_.on_leader_view(sim_.now(), pid, leader);
          if (tier == 0) hier_metrics_->on_region_view(sim_.now(), pid, leader);
        });
    metrics_.on_leader_view(sim_.now(), pid, ws.coord->global_leader());
    hier_metrics_->on_region_view(sim_.now(), pid, ws.coord->leader(0));
    return;
  }

  const bool candidate =
      sc_.candidates == 0 || ws.pid.value() < sc_.candidates;
  service::join_options jo;
  jo.candidate = candidate;
  jo.qos = sc_.qos;
  jo.fd_class = sc_.fd_class;
  jo.notify = service::notification_mode::interrupt;
  jo.stability_ranking = sc_.stability_ranking;

  ws.svc->join_group(pid, group_, jo,
                     [this, pid](group_id, std::optional<process_id> leader) {
                       metrics_.on_leader_view(sim_.now(), pid, leader);
                     });
  // The join itself may already have produced a view (e.g. self-leader).
  metrics_.on_leader_view(sim_.now(), pid, ws.svc->leader(group_));
}

void experiment::crash_node(node_id node) {
  workstation& ws = nodes_.at(node.value());
  if (!ws.up) return;
  ws.up = false;
  dead_alive_sent_ += ws.svc->stats().alive_sent;
  if (auto* eng = ws.svc->adaptation()) dead_retunes_ += eng->total_retunes();
  // Final snapshot export before the instance dies: advance_to keeps the
  // node's counter series monotone across the incarnation boundary.
  if (!obs_.empty()) {
    obs::export_service_stats(obs_[node.value()]->metrics, *ws.svc);
  }
  ws.coord.reset();  // no shutdown(): a crash sends no goodbyes
  ws.svc.reset();    // destroys all state; no goodbye messages
  net_->set_node_alive(ws.node, false);
  metrics_.on_crash(sim_.now(), ws.pid);
  if (hier_metrics_) hier_metrics_->on_crash(sim_.now(), ws.pid);
}

void experiment::recover_node(node_id node) {
  workstation& ws = nodes_.at(node.value());
  if (ws.up) return;
  metrics_.on_recover(sim_.now(), ws.pid);
  if (hier_metrics_) hier_metrics_->on_recover(sim_.now(), ws.pid);
  start_service(ws);
}

void experiment::schedule_fault_step(const fault_step& step) {
  const std::size_t firings =
      step.repeat_every > duration{0} ? step.repeat_count + 1 : 1;
  for (std::size_t k = 0; k < firings; ++k) {
    const time_point at =
        time_origin + step.at +
        step.repeat_every * static_cast<std::int64_t>(k);
    sim_.schedule_at(at, [this, action = step.action] { apply_fault(action); });
    if (step.lasts > duration{0}) {
      sim_.schedule_at(at + step.lasts,
                       [this, action = step.action] { revert_fault(action); });
    }
  }
}

std::vector<node_id> experiment::resolve_partition_members(
    const fault_partition& spec) const {
  std::vector<node_id> members = spec.members;
  if (topo_) {
    for (const std::size_t region : spec.regions) {
      for (std::size_t i = 0; i < sc_.nodes; ++i) {
        const node_id n{static_cast<std::uint32_t>(i)};
        if (topo_->region_of(n) == region) members.push_back(n);
      }
    }
  }
  return members;
}

template <typename Fn>
void experiment::for_each_wan_link(Fn&& fn) const {
  for (std::size_t i = 0; i < sc_.nodes; ++i) {
    for (std::size_t j = 0; j < sc_.nodes; ++j) {
      if (i == j) continue;
      const node_id a{static_cast<std::uint32_t>(i)};
      const node_id b{static_cast<std::uint32_t>(j)};
      if (topo_ && topo_->same_region(a, b)) continue;
      fn(a, b);
    }
  }
}

void experiment::apply_fault(const fault_action& action) {
  std::visit(
      [this](const auto& f) {
        using T = std::decay_t<decltype(f)>;
        if constexpr (std::is_same_v<T, fault_cut>) {
          adversary_->cut_link(f.from, f.to);
        } else if constexpr (std::is_same_v<T, fault_partition>) {
          adversary_->partition(f.name, resolve_partition_members(f));
        } else if constexpr (std::is_same_v<T, fault_flap>) {
          adversary_->flap_link(f.from, f.to, f.spec);
        } else if constexpr (std::is_same_v<T, fault_flap_wan>) {
          for_each_wan_link(
              [&](node_id a, node_id b) { adversary_->flap_link(a, b, f.spec); });
        } else if constexpr (std::is_same_v<T, fault_duplicate>) {
          adversary_->set_duplication(f.spec);
        } else if constexpr (std::is_same_v<T, fault_reorder>) {
          adversary_->set_reorder(f.spec);
        } else if constexpr (std::is_same_v<T, fault_kind_delay>) {
          adversary_->set_kind_delay(f.kind, f.extra);
        } else if constexpr (std::is_same_v<T, fault_skew>) {
          nodes_.at(f.node.value())
              .clock->set_skew(f.offset, f.drift, sim_.now());
        }
      },
      action);
}

void experiment::revert_fault(const fault_action& action) {
  std::visit(
      [this](const auto& f) {
        using T = std::decay_t<decltype(f)>;
        if constexpr (std::is_same_v<T, fault_cut>) {
          adversary_->heal_link(f.from, f.to);
        } else if constexpr (std::is_same_v<T, fault_partition>) {
          adversary_->heal_partition(f.name);
        } else if constexpr (std::is_same_v<T, fault_flap>) {
          adversary_->stop_flap(f.from, f.to);
        } else if constexpr (std::is_same_v<T, fault_flap_wan>) {
          for_each_wan_link(
              [&](node_id a, node_id b) { adversary_->stop_flap(a, b); });
        } else if constexpr (std::is_same_v<T, fault_duplicate>) {
          adversary_->clear_duplication();
        } else if constexpr (std::is_same_v<T, fault_reorder>) {
          adversary_->clear_reorder();
        } else if constexpr (std::is_same_v<T, fault_kind_delay>) {
          adversary_->clear_kind_delay(f.kind);
        } else if constexpr (std::is_same_v<T, fault_skew>) {
          nodes_.at(f.node.value()).clock->clear_skew();
        }
      },
      action);
}

void experiment::schedule_crash(workstation& ws) {
  const duration wait = ws.churn_rng.exponential(ws.churn.mean_uptime);
  ws.churn_timer = sim_.schedule_after(wait, [this, &ws] {
    crash_node(ws.node);
    schedule_recovery(ws);
  });
}

void experiment::schedule_recovery(workstation& ws) {
  const duration wait = ws.churn_rng.exponential(ws.churn.mean_recovery);
  ws.churn_timer = sim_.schedule_after(wait, [this, &ws] {
    recover_node(ws.node);
    schedule_crash(ws);
  });
}

obs::registry* experiment::node_registry(node_id node) {
  return obs_.empty() ? nullptr : &obs_.at(node.value())->metrics;
}

obs::ring_recorder* experiment::node_trace(node_id node) {
  return obs_.empty() ? nullptr : &obs_.at(node.value())->trace;
}

std::vector<obs::trace_event> experiment::merged_trace() const {
  std::vector<obs::trace_event> merged;
  for (const auto& o : obs_) {
    const auto events = o->trace.events();
    merged.insert(merged.end(), events.begin(), events.end());
  }
  std::sort(merged.begin(), merged.end(),
            [](const obs::trace_event& a, const obs::trace_event& b) {
              if (a.at != b.at) return a.at < b.at;
              if (a.node != b.node) return a.node < b.node;
              return a.seq < b.seq;
            });
  return merged;
}

void experiment::export_metrics() {
  if (adversary_) {
    // Fault-plane counters land in the run-scoped registry so forensics
    // can correlate drops/dups with injected faults even when per-node
    // tracing is off.
    const net::adversary::counters& c = adversary_->totals();
    const auto dropped = [&](const char* fault) -> obs::counter& {
      return sim_metrics_.get_counter("omega_adversary_dropped_total",
                                      {{"fault", fault}});
    };
    dropped("cut").advance_to(c.dropped_cut);
    dropped("partition").advance_to(c.dropped_partition);
    dropped("flap").advance_to(c.dropped_flap);
    sim_metrics_.get_counter("omega_adversary_duplicated_total")
        .advance_to(c.duplicated);
    sim_metrics_.get_counter("omega_adversary_reorder_delayed_total")
        .advance_to(c.reorder_delayed);
    sim_metrics_.get_counter("omega_adversary_kind_delayed_total")
        .advance_to(c.kind_delayed);
  }
  if (obs_.empty()) return;
  for (const auto& ws : nodes_) {
    if (ws.svc) {
      obs::export_service_stats(obs_[ws.node.value()]->metrics, *ws.svc);
    }
    // Ring health: how complete the forensic record is. `dropped > 0` means
    // the window outgrew the ring and DAG linkage may report dangling ids.
    node_obs& o = *obs_[ws.node.value()];
    const obs::label_set labels = {{"node", std::to_string(ws.node.value())}};
    o.metrics.get_counter("omega_trace_events_total", labels)
        .advance_to(o.trace.recorded());
    o.metrics.get_counter("omega_trace_dropped_total", labels)
        .advance_to(o.trace.dropped());
  }
}

obs::causal_graph experiment::build_causal_graph() const {
  return obs::causal_graph::build(merged_trace());
}

obs::outage_budget experiment::attribute_outage_dag(
    node_id victim, time_point start, time_point end,
    std::optional<process_id> resolved_leader) const {
  // The harness runs pid i on node i; the sim clock is the shared timeline.
  return build_causal_graph().attribute_outage(
      victim, process_id{victim.value()}, start, end, resolved_leader,
      obs::causal_graph::timeline::sim);
}

bool experiment::serve_http(std::uint16_t port, duration refresh) {
  if (http_ && http_->running()) return true;
  auto ep = std::make_unique<obs::http_endpoint>();
  if (!ep->start(port)) return false;
  http_ = std::move(ep);
  publish_http();
  if (refresh > duration{0}) schedule_http_refresh(refresh);
  return true;
}

void experiment::schedule_http_refresh(duration refresh) {
  sim_.schedule_after(refresh, [this, refresh] {
    publish_http();
    schedule_http_refresh(refresh);
  });
}

void experiment::publish_http() {
  if (!http_ || !http_->running()) return;
  export_metrics();
  std::vector<const obs::registry*> regs;
  regs.reserve(obs_.size() + 1);
  regs.push_back(&sim_metrics_);
  for (const auto& o : obs_) regs.push_back(&o->metrics);
  http_->publish("/metrics", obs::render_prometheus(regs),
                 std::string(obs::http_endpoint::metrics_content_type));
  http_->publish("/trace", obs::render_jsonl(merged_trace()),
                 std::string(obs::http_endpoint::trace_content_type));
}

obs::outage_budget experiment::attribute_outage(
    node_id victim, time_point start, time_point end,
    std::optional<process_id> resolved_leader) const {
  const auto merged = merged_trace();
  // The harness runs pid i on node i.
  return obs::attribute_outage(merged, victim, process_id{victim.value()},
                               start, end, resolved_leader);
}

std::uint64_t experiment::total_alive_sent() const {
  std::uint64_t total = dead_alive_sent_;
  for (const auto& ws : nodes_) {
    if (ws.svc) total += ws.svc->stats().alive_sent;
  }
  return total;
}

std::uint64_t experiment::total_retunes() const {
  std::uint64_t total = dead_retunes_;
  for (const auto& ws : nodes_) {
    if (!ws.svc) continue;
    if (const auto* eng = std::as_const(*ws.svc).adaptation()) {
      total += eng->total_retunes();
    }
  }
  return total;
}

service::leader_election_service* experiment::node_service(node_id node) {
  return nodes_.at(node.value()).svc.get();
}

hierarchy::hierarchy_coordinator* experiment::node_coordinator(node_id node) {
  return nodes_.at(node.value()).coord.get();
}

bool experiment::node_up(node_id node) const { return nodes_.at(node.value()).up; }

experiment_result experiment::run() {
  const auto wall_start = std::chrono::steady_clock::now();
  // Warm-up: stable cluster, estimators converge, leader settles.
  sim_.run_until(time_origin + sc_.warmup);

  metrics_.begin(sim_.now());
  if (hier_metrics_) hier_metrics_->begin(sim_.now());
  net_->reset_traffic();
  const std::uint64_t alive_base = total_alive_sent();
  const std::uint64_t retunes_base = total_retunes();
  for (auto& ws : nodes_) {
    if (ws.churn.enabled) schedule_crash(ws);
  }

  sim_.run_until(time_origin + sc_.warmup + sc_.measured);
  metrics_.finish(sim_.now());
  if (hier_metrics_) hier_metrics_->finish(sim_.now());
  export_metrics();  // end-of-window snapshot for exposition

  experiment_result res;
  res.p_leader = metrics_.leader_availability();
  res.tr_mean_s = metrics_.recovery_times().mean();
  res.tr_ci95_s = metrics_.recovery_times().ci95_half_width();
  res.tr_samples = metrics_.recovery_times().count();
  res.lambda_u = metrics_.mistakes_per_hour();
  res.unjustified = metrics_.unjustified_demotions();
  res.justified = metrics_.justified_changes();
  res.leader_crashes = metrics_.leader_crashes();

  if (hier_metrics_) {
    res.regions.reserve(hier_metrics_->regions());
    for (std::size_t r = 0; r < hier_metrics_->regions(); ++r) {
      const metrics::group_metrics& rm = hier_metrics_->region(r);
      experiment_result::region_result rr;
      rr.availability = rm.leader_availability();
      rr.tr_mean_s = rm.recovery_times().mean();
      rr.tr_samples = rm.recovery_times().count();
      rr.leader_crashes = rm.leader_crashes();
      res.regions.push_back(rr);
    }
    res.outages_blamed_regional = hier_metrics_->outages_blamed_regional();
    res.outages_blamed_global = hier_metrics_->outages_blamed_global();
    res.outages_blamed_fault = hier_metrics_->outages_blamed_fault();
  }

  double cpu = 0.0;
  double kbs = 0.0;
  for (const auto& ws : nodes_) {
    const auto& t = net_->traffic(ws.node);
    cpu += cost_.cpu_percent(t, sc_.measured);
    kbs += metrics::cost_model::sent_kb_per_second(t, sc_.measured);
  }
  res.cpu_percent = cpu / static_cast<double>(sc_.nodes);
  res.kb_per_second = kbs / static_cast<double>(sc_.nodes);
  const double node_seconds =
      to_seconds(sc_.measured) * static_cast<double>(sc_.nodes);
  res.alive_per_node_per_second =
      node_seconds > 0.0
          ? static_cast<double>(total_alive_sent() - alive_base) / node_seconds
          : 0.0;
  res.retunes = total_retunes() - retunes_base;

  res.simulated_hours = to_seconds(sc_.measured) / 3600.0;
  res.events_executed = sim_.events_executed();
  res.wall_clock_s = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - wall_start)
                         .count();
  return res;
}

}  // namespace omega::harness
