// Per-node clock fault: a clock_source decorator reading
//   now() = base + offset + drift * (base - anchor),
// plus the matching timer_service decorator.
//
// The harness hands these wrappers (instead of the simulator clock/timers)
// to the service instances of nodes targeted by a `fault_skew` step, so
// every timestamp the node *reads* — ALIVE send times, accusation times,
// FD freshness arithmetic, obs wall stamps — diverges from its peers
// exactly like a bad oscillator would. The timer decorator is load-bearing,
// not cosmetic: protocol code computes *absolute* deadlines from its local
// clock ("fire at last_send + eta") and arms them via `schedule_at`. On a
// real host such a deadline is interpreted against the same skewed
// CLOCK_REALTIME that produced it; armed raw on the shared simulated
// timeline instead, a clock-behind node's deadlines all land in the past
// and its periodic timers degenerate into an infinite same-instant re-arm
// loop. `skewed_timer_service` applies the inverse skew map so a deadline
// derived from the local clock fires at the base instant where the local
// clock actually reads that value. With zero skew installed both wrappers
// are exact pass-throughs, so pre-creating them for a node that is skewed
// only later does not change behaviour before the fault fires.
#pragma once

#include <cmath>
#include <cstdint>

#include "common/executor.hpp"
#include "common/time.hpp"

namespace omega::harness {

class skewed_clock final : public clock_source {
 public:
  explicit skewed_clock(const clock_source& base) : base_(&base) {}

  /// Installs a skew: constant `offset` plus `drift` (dimensionless rate
  /// error, e.g. 500e-6 = 500 ppm fast) accumulating from `anchor`.
  void set_skew(duration offset, double drift, time_point anchor) {
    offset_ = offset;
    drift_ = drift;
    anchor_ = anchor;
  }
  /// Reverts to an exact pass-through. Note: like a real clock being
  /// step-corrected, this may move the node's perceived time backwards.
  void clear_skew() {
    offset_ = duration{0};
    drift_ = 0.0;
  }

  [[nodiscard]] duration offset() const { return offset_; }
  [[nodiscard]] double drift() const { return drift_; }

  [[nodiscard]] time_point now() const override { return project(base_->now()); }

  /// The forward map for an arbitrary base instant (now() = project(base
  /// now)). Exposed so the inverse can verify itself against the exact
  /// integer arithmetic the clock performs.
  [[nodiscard]] time_point project(time_point base) const {
    duration skew = offset_;
    if (drift_ != 0.0) {
      skew += duration{static_cast<std::int64_t>(
          drift_ * static_cast<double>((base - anchor_).count()))};
    }
    return base + skew;
  }

  /// Inverse map: the earliest base instant at which this clock reads at
  /// least `local`. (local = b + offset + drift * (b - anchor)  =>
  ///  b = anchor + (local - offset - anchor) / (1 + drift).)
  /// The "at least" matters: a deadline mapped one microsecond early would
  /// fire while the local clock still reads deadline-1, and deadline-
  /// rechecking callers (the heartbeat monitor) would re-arm at the same
  /// base instant forever. Rounding is corrected against the exact forward
  /// map, never trusted to floating point alone.
  [[nodiscard]] time_point to_base(time_point local) const {
    if (drift_ == 0.0) return local - offset_;
    const double num =
        static_cast<double>((local - offset_ - anchor_).count());
    time_point b =
        anchor_ + duration{static_cast<std::int64_t>(num / (1.0 + drift_))};
    while (project(b) < local) b += duration{1};
    while (b > anchor_ && project(b - duration{1}) >= local) b -= duration{1};
    return b;
  }

  /// A local-clock-relative delay expressed in base time (the constant
  /// offset cancels in differences; only drift rescales). Rounded up so a
  /// delay never elapses early on the local clock.
  [[nodiscard]] duration unscale(duration local) const {
    if (drift_ == 0.0) return local;
    return duration{static_cast<std::int64_t>(std::ceil(
        static_cast<double>(local.count()) / (1.0 + drift_)))};
  }

 private:
  const clock_source* base_;
  duration offset_{};
  double drift_ = 0.0;
  time_point anchor_{};
};

/// Timer decorator paired with a node's `skewed_clock`: absolute deadlines
/// (computed by protocol code from the skewed clock) are mapped back onto
/// the shared base timeline before arming; relative delays are de-drifted.
/// Pass-through when no skew is installed.
class skewed_timer_service final : public timer_service {
 public:
  skewed_timer_service(timer_service& base, const skewed_clock& clock)
      : base_(&base), clock_(&clock) {}

  timer_id schedule_at(time_point when, unique_task fn) override {
    return base_->schedule_at(clock_->to_base(when), std::move(fn));
  }
  timer_id schedule_after(duration after, unique_task fn) override {
    return base_->schedule_after(clock_->unscale(after), std::move(fn));
  }
  void cancel(timer_id id) override { base_->cancel(id); }

 private:
  timer_service* base_;
  const skewed_clock* clock_;
};

}  // namespace omega::harness
