// Experiment runner: builds a simulated cluster for a scenario, injects
// workstation churn, runs the virtual clock, and extracts the paper's QoS
// and overhead metrics.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "common/random.hpp"
#include "harness/scenario.hpp"
#include "harness/skewed_clock.hpp"
#include "hierarchy/coordinator.hpp"
#include "net/adversary.hpp"
#include "metrics/cost_model.hpp"
#include "metrics/group_metrics.hpp"
#include "metrics/hierarchy_metrics.hpp"
#include "net/sim_network.hpp"
#include "obs/causal_graph.hpp"
#include "obs/forensics.hpp"
#include "obs/http_endpoint.hpp"
#include "obs/profiler.hpp"
#include "obs/sink.hpp"
#include "service/service.hpp"
#include "sim/simulator.hpp"

namespace omega::harness {

/// All numbers extracted from one scenario run.
struct experiment_result {
  // QoS metrics (paper §5).
  double p_leader = 0.0;          // leader availability
  double tr_mean_s = 0.0;         // average leader recovery time (seconds)
  double tr_ci95_s = 0.0;         // 95% confidence half-width
  std::size_t tr_samples = 0;     // number of leader crashes measured
  double lambda_u = 0.0;          // unjustified demotions per hour
  std::uint64_t unjustified = 0;
  std::uint64_t justified = 0;
  std::uint64_t leader_crashes = 0;

  // Overhead (paper §6.5), averaged per workstation.
  double cpu_percent = 0.0;
  double kb_per_second = 0.0;
  /// ALIVE datagrams emitted per workstation per second over the measured
  /// window (the heartbeat rate; the adaptive-tuning figures compare it).
  double alive_per_node_per_second = 0.0;
  /// Operating-point adoptions by the adaptation engines (0 unless the
  /// scenario runs in adaptive tuning mode).
  std::uint64_t retunes = 0;

  // Hierarchy-aware metrics (empty / zero unless `scenario::hierarchy`).
  struct region_result {
    double availability = 0.0;  // region-tier P_leader
    double tr_mean_s = 0.0;     // region-tier leader recovery time
    std::size_t tr_samples = 0;
    std::uint64_t leader_crashes = 0;
  };
  /// Per-region (tier-0) QoS, index = region.
  std::vector<region_result> regions;
  /// Cross-tier blame split of global-leader outages (see
  /// metrics::hierarchy_metrics): resolved by the crashed leader's own
  /// region's failover vs by a global re-election among established
  /// candidates.
  std::uint64_t outages_blamed_regional = 0;
  std::uint64_t outages_blamed_global = 0;
  /// Healthy-leader demotions attributed to injected network faults (only
  /// populated when the scenario runs a fault_script — see DESIGN.md §11).
  std::uint64_t outages_blamed_fault = 0;

  // Run bookkeeping.
  double simulated_hours = 0.0;
  std::uint64_t events_executed = 0;
  /// Real time spent simulating this cell (warm-up + measured window) — the
  /// simulator-cost number the BENCH_*.json wall-clock columns report.
  double wall_clock_s = 0.0;
};

/// The simulated 12-workstation testbed: one `leader_election_service` per
/// node, one application process per service, a single group everyone
/// joins, plus the churn injector that kills and restarts instances.
/// With `scenario::hierarchy` enabled each node instead runs a
/// `hierarchy::hierarchy_coordinator`, and the metrics' ground truth is the
/// *global* (top-tier) leader that every node's coordinator reports.
class experiment {
 public:
  explicit experiment(scenario sc);
  ~experiment();

  experiment(const experiment&) = delete;
  experiment& operator=(const experiment&) = delete;

  /// Runs warm-up + measurement and returns the extracted metrics.
  experiment_result run();

  /// Access for white-box integration tests (valid after construction).
  [[nodiscard]] sim::simulator& simulator() { return sim_; }
  [[nodiscard]] net::sim_network& network() { return *net_; }
  [[nodiscard]] metrics::group_metrics& group() { return metrics_; }
  /// Hierarchy-aware trackers, or nullptr for flat scenarios.
  [[nodiscard]] metrics::hierarchy_metrics* hier_metrics() {
    return hier_metrics_.get();
  }
  [[nodiscard]] service::leader_election_service* node_service(node_id node);
  /// The node's hierarchy coordinator, or nullptr (flat scenario / node
  /// down).
  [[nodiscard]] hierarchy::hierarchy_coordinator* node_coordinator(node_id node);
  /// The hierarchy shape, or nullptr for flat scenarios.
  [[nodiscard]] const hierarchy::topology* topo() const {
    return topo_ ? &*topo_ : nullptr;
  }
  /// The scripted fault plane, or nullptr when `scenario::fault_script` is
  /// empty (no adversary is installed at all on such runs).
  [[nodiscard]] net::adversary* fault_plane() { return adversary_.get(); }
  /// The node's skewed-clock wrapper, or nullptr when no `fault_skew` step
  /// targets it (such nodes read the simulator clock directly).
  [[nodiscard]] skewed_clock* node_clock(node_id node) {
    return nodes_.at(node.value()).clock.get();
  }
  /// True ground truth: is the workstation currently up?
  [[nodiscard]] bool node_up(node_id node) const;
  /// Crash / recover a node on demand (used by tests; the churn injector
  /// uses the same paths).
  void crash_node(node_id node);
  void recover_node(node_id node);

  /// ALIVEs sent by all instances so far, dead incarnations included
  /// (exposed for white-box rate assertions).
  [[nodiscard]] std::uint64_t total_alive_sent() const;
  /// Adaptation-engine adoptions so far, dead incarnations included.
  [[nodiscard]] std::uint64_t total_retunes() const;

  // ---- observability (scenario::trace) -----------------------------------
  // Each node owns one registry + ring recorder for the whole run: they
  // survive crash/recovery cycles of the instrumented service, so exported
  // counters stay monotone and the trace spans incarnations.

  /// The node's metrics registry, or nullptr when tracing is off.
  [[nodiscard]] obs::registry* node_registry(node_id node);
  /// The node's trace ring, or nullptr when tracing is off.
  [[nodiscard]] obs::ring_recorder* node_trace(node_id node);
  /// All nodes' trace events merged into one timeline (time, node, seq
  /// order). Empty when tracing is off.
  [[nodiscard]] std::vector<obs::trace_event> merged_trace() const;
  /// Re-exports every live instance's service_stats into its registry
  /// (crashes export automatically before the instance dies).
  void export_metrics();
  /// Forensics over the merged trace: attributes the outage of `victim`'s
  /// leadership over [start, end] (see obs::attribute_outage; the harness
  /// runs pid i on node i).
  [[nodiscard]] obs::outage_budget attribute_outage(
      node_id victim, time_point start, time_point end,
      std::optional<process_id> resolved_leader = std::nullopt) const;

  /// Harness-level registry: metrics that belong to the run rather than to
  /// one node (the sim profiler's per-kind handler-time histograms).
  [[nodiscard]] obs::registry& sim_registry() { return sim_metrics_; }

  /// Rebuilds the causal DAG from the merged per-node rings (meaningful on
  /// `scenario::causal` runs; without stamping every event is a root).
  [[nodiscard]] obs::causal_graph build_causal_graph() const;
  /// DAG-based outage attribution — same contract as `attribute_outage`,
  /// but phase boundaries come from causal links instead of the time
  /// window alone (obs::causal_graph::attribute_outage, sim timeline).
  [[nodiscard]] obs::outage_budget attribute_outage_dag(
      node_id victim, time_point start, time_point end,
      std::optional<process_id> resolved_leader = std::nullopt) const;

  /// Mounts the embedded HTTP endpoint on 127.0.0.1:`port` (0 = kernel
  /// pick, see `http_port()`), publishes an initial /metrics + /trace
  /// snapshot and re-publishes every `refresh` of *simulated* time while
  /// the clock advances. Returns false if the socket could not be bound.
  bool serve_http(std::uint16_t port, duration refresh = sec(5));
  /// The endpoint's bound port, or 0 when not serving.
  [[nodiscard]] std::uint16_t http_port() const {
    return http_ ? http_->port() : 0;
  }
  /// Renders and publishes fresh /metrics and /trace snapshots (no-op
  /// unless `serve_http` succeeded).
  void publish_http();

 private:
  struct workstation {
    node_id node;
    process_id pid;
    incarnation next_inc = 1;
    bool up = false;
    /// Clock + timer wrappers for nodes targeted by a `fault_skew` step
    /// (created at construction as zero-skew pass-throughs; null for all
    /// other nodes, which bind the simulator directly). Declared before
    /// `svc`, which holds references into both — the service's destructor
    /// cancels its timers through the wrapper.
    std::unique_ptr<skewed_clock> clock;
    std::unique_ptr<skewed_timer_service> timers;
    std::unique_ptr<service::leader_election_service> svc;
    /// Joined after svc, destroyed before it (holds a reference into it).
    std::unique_ptr<hierarchy::hierarchy_coordinator> coord;
    /// Effective churn dynamics (region-scoped under a hierarchy profile).
    churn_profile churn;
    rng churn_rng{0};
    timer_id churn_timer = no_timer;
  };

  void boot_node(workstation& ws, time_point join_at);
  void start_service(workstation& ws);
  /// Translates one fault_step into simulator timers (apply + revert).
  void schedule_fault_step(const fault_step& step);
  void apply_fault(const fault_action& action);
  void revert_fault(const fault_action& action);
  /// Explicit members plus the nodes of the named tier-0 regions.
  [[nodiscard]] std::vector<node_id> resolve_partition_members(
      const fault_partition& spec) const;
  /// Every directed inter-region link (hierarchy runs) or every directed
  /// non-loopback link (flat runs).
  template <typename Fn>
  void for_each_wan_link(Fn&& fn) const;
  /// Self-rearming sim timer republishing the HTTP snapshots.
  void schedule_http_refresh(duration refresh);
  void schedule_crash(workstation& ws);
  void schedule_recovery(workstation& ws);

  /// Per-node observability plane (scenario::trace). Declared before
  /// `nodes_` so the sinks outlive the service instances pointing at them.
  struct node_obs {
    obs::registry metrics;
    obs::ring_recorder trace;
    obs::sink sink;
    explicit node_obs(std::size_t capacity)
        : trace(capacity), sink(&metrics, &trace) {}
  };

  scenario sc_;
  rng root_rng_;
  sim::simulator sim_;
  std::unique_ptr<net::sim_network> net_;
  /// Scripted fault plane (scenario::fault_script); null when the script is
  /// empty. Destroyed after net_ would be wrong — declared after net_ so it
  /// dies first, and net_ never touches it during destruction.
  std::unique_ptr<net::adversary> adversary_;
  /// Run-scoped metrics + the sim profiler feeding them (scenario::profile_sim).
  obs::registry sim_metrics_;
  std::unique_ptr<obs::profiler> profiler_;
  /// Live telemetry endpoint (serve_http), refreshed by a sim timer.
  std::unique_ptr<obs::http_endpoint> http_;
  std::optional<hierarchy::topology> topo_;
  std::vector<std::unique_ptr<node_obs>> obs_;
  std::vector<workstation> nodes_;
  metrics::group_metrics metrics_;
  /// Per-region trackers + cross-tier blame split (hierarchy scenarios).
  std::unique_ptr<metrics::hierarchy_metrics> hier_metrics_;
  metrics::cost_model cost_;
  group_id group_ = group_id{1};
  /// Counters accumulated from instances destroyed by churn, so rate
  /// accounting survives crash/recovery cycles.
  std::uint64_t dead_alive_sent_ = 0;
  std::uint64_t dead_retunes_ = 0;
};

}  // namespace omega::harness
