#include "service/service.hpp"

#include <algorithm>
#include <unordered_set>
#include <utility>

namespace omega::service {

namespace {
template <class... Ts>
struct overloaded : Ts... {
  using Ts::operator()...;
};
template <class... Ts>
overloaded(Ts...) -> overloaded<Ts...>;

membership::group_maintenance::options gm_options(const service_config& cfg) {
  auto opts = cfg.gm;
  opts.fanout = cfg.hello_fanout;
  return opts;
}
}  // namespace

leader_election_service::leader_election_service(clock_source& clock,
                                                 timer_service& timers,
                                                 net::transport& transport,
                                                 service_config config)
    : clock_(clock),
      timers_(timers),
      transport_(transport),
      config_(std::move(config)),
      fd_(clock, timers, config_.fd),
      gm_(clock, timers, config_.self, config_.inc, gm_options(config_)),
      rate_(fd::qos_spec{}.detection_time / 4),
      alive_timer_(timers) {
  transport_.set_receive_handler([this](const net::datagram& d) { on_datagram(d); });

  if (config_.sink) {
    config_.sink->set_self(config_.self);
    if (config_.causal_stamping) config_.sink->enable_causal(config_.inc);
    fd_.set_sink(config_.sink);
    gm_.set_sink(config_.sink);
  }

  fd_.set_transition_handler([this](group_id g, node_id node, bool trusted) {
    auto it = groups_.find(g);
    if (it == groups_.end()) return;
    it->second.elector->on_fd_transition(node, trusted);
    reevaluate(g);
  });
  fd_.set_rate_request_fn([this](node_id node, duration eta) {
    send_to(node, proto::rate_request_msg{config_.self, config_.inc, eta});
  });

  gm_.set_broadcast([this](const proto::wire_message& msg) { broadcast(msg); });
  gm_.set_unicast([this](node_id dst, const proto::wire_message& msg) {
    send_to(dst, msg);
  });
  gm_.set_multicast(
      [this](const std::vector<node_id>& dsts, const proto::wire_message& msg) {
        multicast(dsts, msg);
      });
  gm_.set_cluster_roster(config_.roster);
  gm_.set_vouch([this](group_id g, const membership::member_info& m) {
    return fd_.is_trusted(g, m.node);
  });
  gm_.set_events(membership::group_maintenance::events{
      .on_member_joined =
          [this](group_id g, const membership::member_info&) { reevaluate(g); },
      .on_member_removed =
          [this](group_id g, const membership::member_info& m) {
            auto it = groups_.find(g);
            if (it == groups_.end()) return;
            it->second.elector->on_member_removed(m);
            if (m.node != config_.self) fd_.drop(g, m.node);
            if (adaptive_) {
              adaptive_->on_member_removed(m.pid, m.inc);
              if (m.node != config_.self) {
                adaptive_->on_group_member_dropped(g, m.node);
              }
              // Drop the node's link history only once no group has a
              // member there: a node that merely left one group is still
              // monitored (and may be the binding worst link) elsewhere.
              bool still_member = false;
              for (const auto& [g2, gs2] : groups_) {
                for (const auto& mem : gm_.table(g2).members_view()) {
                  if (mem.node == m.node) {
                    still_member = true;
                    break;
                  }
                }
                if (still_member) break;
              }
              if (!still_member && m.node != config_.self) {
                adaptive_->on_node_dropped(m.node);
              }
            }
            reevaluate(g);
          },
      .on_member_reincarnated = nullptr,
  });

  if (config_.adaptive.mode == adaptive::tuning_mode::adaptive) {
    adaptive_ = std::make_unique<adaptive::engine>(clock_, timers_, fd_,
                                                   config_.adaptive);
    if (config_.sink) adaptive_->set_sink(config_.sink);
    fd_.set_link_observer(
        [this](node_id node, const fd::link_estimate& est, time_point now) {
          adaptive_->on_link_sample(node, est, now);
        });
  }

  fd_.start();
  gm_.start();
  if (adaptive_) adaptive_->start();
}

leader_election_service::~leader_election_service() {
  // A destroyed instance models a crash: silence, not goodbyes.
  transport_.set_receive_handler({});
}

// ---- application API -------------------------------------------------------

bool leader_election_service::register_process(process_id pid) {
  return registered_.try_emplace(pid, true).second;
}

void leader_election_service::unregister_process(process_id pid) {
  std::vector<group_id> joined;
  for (const auto& [g, gs] : groups_) {
    if (gs.local_pid == pid) joined.push_back(g);
  }
  for (group_id g : joined) leave_group(pid, g);
  registered_.erase(pid);
}

election::elector_context leader_election_service::make_context(group_id group,
                                                                process_id pid,
                                                                bool candidate) {
  election::elector_context ctx;
  ctx.self_node = config_.self;
  ctx.self_pid = pid;
  ctx.self_inc = config_.inc;
  ctx.group = group;
  ctx.candidate = candidate;
  ctx.clock = &clock_;
  ctx.is_trusted = [this, group](node_id node) { return fd_.is_trusted(group, node); };
  ctx.members = [this, group]() -> const std::vector<membership::member_info>& {
    return gm_.table(group).members_view();
  };
  ctx.members_version = [this, group] { return gm_.table(group).version(); };
  ctx.send_accuse = [this](const proto::accuse_msg& msg, node_id dst) {
    if (config_.sink) {
      obs::trace_event ev;
      ev.kind = obs::event_kind::accusation_sent;
      ev.at = clock_.now();
      ev.group = msg.group;
      ev.subject = msg.target;
      ev.peer = dst;
      config_.sink->record(ev);
    }
    send_to(dst, msg);
  };
  ctx.sink = config_.sink;
  return ctx;
}

bool leader_election_service::wants_stability_ranking(
    const join_options& options) const {
  return options.stability_ranking && adaptive_ != nullptr;
}

bool leader_election_service::join_group(process_id pid, group_id group,
                                         const join_options& options,
                                         leader_callback on_change) {
  if (registered_.find(pid) == registered_.end()) return false;
  if (groups_.find(group) != groups_.end()) return false;

  fd_.add_group(group, options.qos);
  fd_.set_group_class(group, std::string(adaptive::to_string(options.fd_class)));
  rate_.set_default_eta(std::min(rate_.default_eta(), options.qos.detection_time / 4));

  // Hand the group's operating point to the configured tuning policy.
  switch (config_.adaptive.mode) {
    case adaptive::tuning_mode::continuous:
      break;  // seed behaviour: fd_manager reconfigures per tick
    case adaptive::tuning_mode::frozen:
      fd_.set_params_override(group, fd::cold_start_params(options.qos));
      break;
    case adaptive::tuning_mode::adaptive:
      adaptive_->add_group(group, options.qos, options.fd_class);
      break;
  }

  election::elector_context ctx = make_context(group, pid, options.candidate);
  if (wants_stability_ranking(options)) {
    ctx.stability_score = [this](process_id candidate) {
      return adaptive_ ? adaptive_->stability(candidate) : 0.0;
    };
  }

  group_state gs;
  gs.group = group;
  gs.local_pid = pid;
  gs.options = options;
  gs.elector =
      election::make_elector(options.alg.value_or(config_.alg), std::move(ctx));
  gs.last_self_acc = gs.elector->self_accusation_time();
  gs.on_change = std::move(on_change);
  if (adaptive_) {
    // Self-observation: ALIVEs are not self-delivered, so the stability
    // scorer learns about the local process here (join = first seen) and on
    // accusation advances (see reevaluate), exactly as peers do from our
    // payloads. The first accusation time fed is the baseline, not an event.
    adaptive_->observe_local_member(pid, config_.self, config_.inc,
                                    clock_.now());
    if (options.candidate) {
      adaptive_->observe_local_accusation(pid, config_.inc, gs.last_self_acc,
                                          clock_.now());
    }
  }
  auto [it, inserted] = groups_.emplace(group, std::move(gs));

  gm_.local_join(group, pid, options.candidate);  // broadcasts HELLO
  reevaluate(group);
  // Re-find: the reevaluation's leader callback may re-enter join_group /
  // leave_group (the hierarchy coordinator promotes from it), and a map
  // insert can rehash `it` away. Element *references* survive rehashing —
  // reevaluate's internal reference is safe — but iterators do not.
  auto post = groups_.find(group);
  if (post != groups_.end() && post->second.was_sending) schedule_alive();
  return true;
}

void leader_election_service::leave_group(process_id pid, group_id group) {
  auto it = groups_.find(group);
  if (it == groups_.end() || it->second.local_pid != pid) return;
  gm_.local_leave(group, pid);  // broadcasts LEAVE
  fd_.remove_group(group);
  if (adaptive_) adaptive_->remove_group(group);
  groups_.erase(it);
  // The per-group HELLO accounting row is meaningless once the node no
  // longer participates (and a later unrelated join of the same group id
  // must start from zero).
  stats_.hello_by_group.erase(group);
  // Relax the default heartbeat cadence to the tightest *remaining* group
  // (join_group only ever ratchets it down).
  duration def = fd::qos_spec{}.detection_time / 4;
  for (const auto& [g, gs] : groups_) {
    def = std::min(def, gs.options.qos.detection_time / 4);
  }
  rate_.set_default_eta(def);
  if (groups_.empty()) alive_timer_.cancel();
}

bool leader_election_service::set_candidacy(process_id pid, group_id group,
                                            bool candidate) {
  auto it = groups_.find(group);
  if (it == groups_.end() || it->second.local_pid != pid) return false;
  group_state& gs = it->second;
  if (gs.options.candidate == candidate) return true;
  gs.options.candidate = candidate;
  gs.elector->set_candidate(candidate);
  // The promotion's accusation-time reset is an entry baseline, not an
  // accusation event: sync the cache so reevaluate() does not treat it as
  // "our rank just worsened", and feed the scorer the new baseline.
  gs.last_self_acc = gs.elector->self_accusation_time();
  if (adaptive_ && candidate) {
    adaptive_->observe_local_accusation(pid, config_.inc, gs.last_self_acc,
                                        clock_.now());
  }
  gm_.update_local_candidacy(group, candidate);
  if (config_.sink) {
    obs::trace_event ev;
    ev.kind = obs::event_kind::candidacy_flip;
    ev.at = clock_.now();
    ev.group = group;
    ev.subject = pid;
    ev.value = candidate ? 1.0 : 0.0;
    config_.sink->record(ev);
  }
  reevaluate(group);
  return true;
}

std::optional<process_id> leader_election_service::leader(group_id group) const {
  auto it = groups_.find(group);
  return it != groups_.end() ? it->second.last_leader : std::nullopt;
}

duration leader_election_service::current_eta() const {
  return rate_.effective_eta(clock_.now());
}

const membership::member_table& leader_election_service::members(group_id group) const {
  return gm_.table(group);
}

election::elector* leader_election_service::elector_for(group_id group) {
  auto it = groups_.find(group);
  return it != groups_.end() ? it->second.elector.get() : nullptr;
}

void leader_election_service::set_leader_observer(leader_callback observer) {
  leader_observer_ = std::move(observer);
}

// ---- inbound dispatch -------------------------------------------------------

void leader_election_service::on_datagram(const net::datagram& dgram) {
  ++stats_.datagrams_received;
  // Decode into the long-lived scratch: handlers take the message by const
  // reference and copy what they keep, so its storage can be recycled for
  // the next datagram (allocation-free once the capacities warm up).
  cause_id inbound;
  if (!proto::decode_into(rx_scratch_, dgram.payload, &inbound)) {
    ++stats_.malformed_received;
    return;
  }
  // Everything this datagram provokes — FD transitions, election moves,
  // eager ALIVEs — is attributed to the sender's wire stamp (or recorded
  // as caused-by-nothing for unstamped version-1 traffic).
  obs::sink::activation scope(config_.sink, inbound);
  std::visit([this](const auto& m) { handle(m); }, rx_scratch_);
}

void leader_election_service::note_unknown_group(group_id group, node_id from) {
  ++stats_.dropped_unknown_group;
  if (config_.sink) {
    obs::trace_event ev;
    ev.kind = obs::event_kind::unknown_group_drop;
    ev.at = clock_.now();
    ev.group = group;
    ev.peer = from;
    config_.sink->record(ev);
  }
}

void leader_election_service::handle(const proto::alive_msg& msg) {
  const time_point now = clock_.now();
  // An ALIVE whose every payload targets groups we never joined (or have
  // already left) is stale traffic racing our LEAVE: account for it instead
  // of silently ignoring the payloads below. The node-level freshness and
  // membership evidence are still consumed — the sender is alive regardless.
  if (!msg.groups.empty()) {
    const bool any_known =
        std::any_of(msg.groups.begin(), msg.groups.end(), [this](const auto& p) {
          return groups_.find(p.group) != groups_.end();
        });
    if (!any_known) note_unknown_group(msg.groups.front().group, msg.from);
  }
  // Membership evidence first (electors pull membership during evaluation),
  // then failure-detector freshness, then election payloads.
  gm_.on_alive(msg, now);
  fd_.on_alive(msg, now);
  for (const auto& payload : msg.groups) {
    auto it = groups_.find(payload.group);
    if (it == groups_.end()) continue;
    if (adaptive_) adaptive_->on_payload_observed(msg.from, msg.inc, payload, now);
    it->second.elector->on_alive_payload(msg.from, msg.inc, payload);
  }
  for (const auto& payload : msg.groups) {
    if (groups_.find(payload.group) != groups_.end()) reevaluate(payload.group);
  }
}

void leader_election_service::handle(const proto::accuse_msg& msg) {
  auto it = groups_.find(msg.group);
  if (it == groups_.end()) {
    note_unknown_group(msg.group, msg.from);
    return;
  }
  if (it->second.local_pid != msg.target) return;
  if (config_.sink) {
    obs::trace_event ev;
    ev.kind = obs::event_kind::accusation_received;
    ev.at = clock_.now();
    ev.group = msg.group;
    ev.subject = msg.target;
    ev.peer = msg.from;
    config_.sink->record(ev);
  }
  it->second.elector->on_accuse(msg);
  reevaluate(msg.group);
}

void leader_election_service::handle(const proto::hello_msg& msg) {
  gm_.on_hello(msg, clock_.now());
}

void leader_election_service::handle(const proto::hello_ack_msg& msg) {
  gm_.on_hello_ack(msg, clock_.now());
}

void leader_election_service::handle(const proto::leave_msg& msg) {
  if (groups_.find(msg.group) == groups_.end()) {
    note_unknown_group(msg.group, msg.from);
    return;
  }
  gm_.on_leave(msg);
}

void leader_election_service::handle(const proto::rate_request_msg& msg) {
  const time_point now = clock_.now();
  rate_.on_request(msg.from, msg.desired_eta, now);
  // If the new effective rate is faster than the pending tick, pull it in.
  if (!groups_.empty()) schedule_alive();
}

// ---- election plumbing ------------------------------------------------------

void leader_election_service::reevaluate(group_id group) {
  auto it = groups_.find(group);
  if (it == groups_.end()) return;
  group_state& gs = it->second;

  const std::optional<process_id> leader = gs.elector->evaluate();
  const bool sending = gs.elector->should_send_alive();

  if (adaptive_ && gs.options.candidate &&
      gs.elector->self_accusation_time() != gs.last_self_acc) {
    // Mirror the self-accusation advance into the stability scorer: peers
    // count it from our next payload, the local scorer counts it here.
    adaptive_->observe_local_accusation(gs.local_pid, config_.inc,
                                        gs.elector->self_accusation_time(),
                                        clock_.now());
  }

  if (sending != gs.was_sending) {
    gs.was_sending = sending;
    if (sending) {
      // Entering the competition (or joining): announce immediately instead
      // of waiting for the next tick — this is what keeps election time far
      // below detection time.
      send_alive_now();
      schedule_alive();
    } else {
      // Omega_l graceful withdrawal: one final heartbeat with
      // competing=false so peers drop us without waiting for a timeout.
      send_alive_now(group);
    }
  } else if (sending &&
             gs.elector->self_accusation_time() != gs.last_self_acc) {
    // Our rank just worsened (we were accused): push the new accusation
    // time to peers immediately so the group converges on the successor in
    // one message delay instead of waiting out the heartbeat period.
    send_alive_now();
    schedule_alive();
  }
  gs.last_self_acc = gs.elector->self_accusation_time();

  if (leader != gs.last_leader) {
    gs.last_leader = leader;
    if (config_.sink) {
      obs::trace_event ev;
      ev.kind = obs::event_kind::leader_change;
      ev.at = clock_.now();
      ev.group = group;
      ev.subject = leader.value_or(process_id::invalid());
      config_.sink->record(ev);
    }
    if (gs.options.notify == notification_mode::interrupt && gs.on_change) {
      gs.on_change(group, leader);
    }
    if (leader_observer_) leader_observer_(group, leader);
  }
}

void leader_election_service::reevaluate_all() {
  std::vector<group_id> ids;
  ids.reserve(groups_.size());
  for (const auto& [g, gs] : groups_) ids.push_back(g);
  for (group_id g : ids) reevaluate(g);
}

// ---- heartbeat engine -------------------------------------------------------

void leader_election_service::schedule_alive() {
  if (groups_.empty()) return;
  // Anchor the cadence to the last actual send: re-scheduling (e.g. after a
  // rate request) must never push the next heartbeat further out, or a
  // steady stream of control traffic could silence the heartbeats entirely.
  const time_point now = clock_.now();
  const duration eta = rate_.effective_eta(now);
  time_point due = last_alive_sent_ + eta;
  // Never arm in the past or at the current instant: a suppressed send (e.g.
  // an Omega_l follower outside the competition, or a node with no peers yet)
  // leaves last_alive_sent_ stale, and re-arming "at now" would make the
  // timer fire repeatedly at the same simulated instant.
  if (due <= now) due = now + eta;
  alive_timer_.arm_at(due, [this] { alive_tick(); });
}

void leader_election_service::alive_tick() {
  // Periodic heartbeats are spontaneous: open a causal root so nothing
  // stale gets stamped into them.
  obs::sink::activation scope(config_.sink);
  send_alive_now();
  schedule_alive();
}

void leader_election_service::send_alive_now(std::optional<group_id> extra_group) {
  proto::alive_msg msg;
  msg.from = config_.self;
  msg.inc = config_.inc;
  msg.send_time = clock_.now();
  msg.eta = rate_.effective_eta(clock_.now());

  std::unordered_set<node_id> destinations;
  for (auto& [g, gs] : groups_) {
    const bool include = gs.elector->should_send_alive() ||
                         (extra_group.has_value() && *extra_group == g);
    if (!include) continue;
    proto::group_payload payload;
    gs.elector->fill_payload(payload);
    msg.groups.push_back(payload);
    for (const auto& m : gm_.table(g).members_view()) {
      if (m.node != config_.self) destinations.insert(m.node);
    }
  }
  if (msg.groups.empty() || destinations.empty()) return;

  msg.seq = ++alive_seq_;
  last_alive_sent_ = clock_.now();
  ++stats_.alive_sent;
  // Eager ALIVEs fired from within an activation (competition entry, rank
  // worsening) carry the provoking event's stamp; periodic ticks are roots
  // and go out as plain version-1 datagrams.
  const cause_id cause =
      config_.causal_stamping && config_.sink != nullptr
          ? config_.sink->current_cause()
          : cause_id{};
  // Flatten the set in its own iteration order (the order the per-dst send
  // loop used to run in), encode once into a pool buffer, and fan out by
  // reference: the 500-node roster costs one encode, zero copies.
  dst_scratch_.assign(destinations.begin(), destinations.end());
  transport_.multicast(dst_scratch_,
                       proto::encode_shared(proto::wire_message{std::move(msg)},
                                            transport_.pool(), cause));
}

// ---- outbound helpers -------------------------------------------------------

void leader_election_service::count_sent(const proto::wire_message& msg) {
  std::visit(overloaded{
                 [this](const proto::alive_msg&) { /* counted at send_alive */ },
                 [this](const proto::accuse_msg&) { ++stats_.accuse_sent; },
                 [this](const proto::hello_msg&) { ++stats_.hello_sent; },
                 [this](const proto::hello_ack_msg&) { ++stats_.hello_ack_sent; },
                 [this](const proto::leave_msg&) { ++stats_.leave_sent; },
                 [this](const proto::rate_request_msg&) { ++stats_.rate_request_sent; },
             },
             msg);
}

void leader_election_service::count_hello_destinations(
    const proto::wire_message& msg, std::uint64_t destinations) {
  const auto* hello = std::get_if<proto::hello_msg>(&msg);
  if (hello == nullptr) return;
  for (const auto& entry : hello->entries) {
    auto& per_group = stats_.hello_by_group[entry.group];
    ++per_group.hellos;
    per_group.destinations += destinations;
  }
}

cause_id leader_election_service::outbound_cause(
    const proto::wire_message& msg) const {
  if (!config_.causal_stamping || config_.sink == nullptr) return {};
  if (std::holds_alternative<proto::rate_request_msg>(msg)) return {};
  return config_.sink->current_cause();
}

void leader_election_service::send_to(node_id dst, const proto::wire_message& msg) {
  count_sent(msg);
  count_hello_destinations(msg, 1);
  transport_.send(dst,
                  proto::encode_shared(msg, transport_.pool(), outbound_cause(msg)));
}

void leader_election_service::broadcast(const proto::wire_message& msg) {
  count_sent(msg);
  dst_scratch_.clear();
  for (node_id node : config_.roster) {
    if (node != config_.self) dst_scratch_.push_back(node);
  }
  count_hello_destinations(msg, dst_scratch_.size());
  if (dst_scratch_.empty()) return;
  if (std::holds_alternative<proto::hello_msg>(msg)) {
    // Steady-state anti-entropy: the same HELLO goes out every period until
    // membership changes, so reuse the sealed bytes instead of re-encoding.
    transport_.multicast(dst_scratch_, hello_cache_.get(msg, transport_.pool(),
                                                        outbound_cause(msg)));
    return;
  }
  transport_.multicast(dst_scratch_,
                       proto::encode_shared(msg, transport_.pool(),
                                            outbound_cause(msg)));
}

void leader_election_service::multicast(const std::vector<node_id>& dsts,
                                        const proto::wire_message& msg) {
  if (dsts.empty()) return;
  count_sent(msg);
  count_hello_destinations(msg, dsts.size());
  transport_.multicast(dsts, proto::encode_shared(msg, transport_.pool(),
                                                  outbound_cause(msg)));
}

void leader_election_service::set_hello_fanout(membership::hello_fanout fanout) {
  config_.hello_fanout = fanout;
  gm_.set_fanout(fanout);
}

}  // namespace omega::service
