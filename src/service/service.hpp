// The leader-election service (paper §4, Figure 2).
//
// One instance runs per workstation. Application processes register with
// their local instance, then join/leave groups; for every joined group the
// instance wires together the three core modules:
//
//   Group Maintenance  — who is in the group (HELLO/LEAVE + ALIVE evidence),
//   Failure Detector   — Chen et al. QoS detector over node-level ALIVEs,
//   Election Algorithm — pluggable Omega_id / Omega_lc / Omega_l elector.
//
// The instance multiplexes all groups over a single node-level heartbeat
// stream (the shared-FD architecture of [6, 11] that amortizes monitoring
// cost across applications): each ALIVE datagram carries one election
// payload per group in which this node is actively transmitting.
//
// Destroying the instance models a workstation crash: no goodbyes are sent
// and all volatile state vanishes. The churn injector of the experiment
// harness does exactly that, then constructs a fresh instance with a
// higher incarnation to model recovery.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "adaptive/engine.hpp"
#include "common/executor.hpp"
#include "common/ids.hpp"
#include "election/elector.hpp"
#include "fd/fd_manager.hpp"
#include "fd/rate_controller.hpp"
#include "membership/group_maintenance.hpp"
#include "net/transport.hpp"
#include "proto/wire.hpp"
#include "service/config.hpp"

namespace omega::service {

/// Fired on leader changes: (group, new leader or nullopt while leaderless).
using leader_callback = std::function<void(group_id, std::optional<process_id>)>;

class leader_election_service {
 public:
  leader_election_service(clock_source& clock, timer_service& timers,
                          net::transport& transport, service_config config);
  ~leader_election_service();

  leader_election_service(const leader_election_service&) = delete;
  leader_election_service& operator=(const leader_election_service&) = delete;

  // ---- application API (paper §4) ---------------------------------------

  /// Registers an application process under a unique id. Must precede any
  /// join. Returns false if the id is already registered here.
  bool register_process(process_id pid);

  /// Unregisters a process, leaving all groups it joined.
  void unregister_process(process_id pid);

  /// Joins `pid` to `group`. At most one local process may be the node's
  /// member of a given group (the experiments' configuration; see
  /// DESIGN.md). `on_change` is invoked on every leader change when the
  /// notification mode is `interrupt`. Returns false if the join is
  /// rejected (unregistered pid or group already joined locally).
  bool join_group(process_id pid, group_id group, const join_options& options,
                  leader_callback on_change = nullptr);

  /// Leaves the group: broadcasts LEAVE and drops all local group state.
  void leave_group(process_id pid, group_id group);

  /// Changes `pid`'s candidacy in `group` in place. Unlike leave +
  /// re-join (the historical way to flip the flag), this preserves the
  /// elector's learned state and current leader view — a re-join resets
  /// both, leaving the node transiently leaderless, and its LEAVE/JOIN
  /// datagrams can arrive reordered at peers (dropping the member until
  /// the next anti-entropy round). Becoming a candidate still ranks the
  /// process behind any established leader, exactly as a fresh join
  /// would. Returns false if `pid` has not joined `group`.
  bool set_candidacy(process_id pid, group_id group, bool candidate);

  /// Query-mode leader lookup: the current (cached) leader choice of this
  /// instance for `group`, or nullopt if unknown/leaderless.
  [[nodiscard]] std::optional<process_id> leader(group_id group) const;

  // ---- introspection -----------------------------------------------------

  [[nodiscard]] const service_config& config() const { return config_; }
  [[nodiscard]] const service_stats& stats() const { return stats_; }
  [[nodiscard]] node_id self() const { return config_.self; }
  /// The clock this instance runs on (sim or real time).
  [[nodiscard]] clock_source& clock() const { return clock_; }

  /// Current effective heartbeat interval of this sender.
  [[nodiscard]] duration current_eta() const;

  /// Membership view (empty table for unknown groups).
  [[nodiscard]] const membership::member_table& members(group_id group) const;

  /// The elector driving `group`, or nullptr (exposed for tests).
  [[nodiscard]] election::elector* elector_for(group_id group);

  /// The failure-detector module (exposed for tests and benchmarks).
  [[nodiscard]] fd::fd_manager& failure_detector() { return fd_; }

  /// The adaptation engine, or nullptr unless the instance runs in
  /// `adaptive::tuning_mode::adaptive` (exposed for tests and benchmarks).
  [[nodiscard]] adaptive::engine* adaptation() { return adaptive_.get(); }
  [[nodiscard]] const adaptive::engine* adaptation() const {
    return adaptive_.get();
  }

  /// Observer invoked on *every* leader change of any group, after the
  /// per-subscription callbacks. The experiment harness uses this to track
  /// ground-truth agreement.
  void set_leader_observer(leader_callback observer);

  /// The observability sink this instance records through (the one from
  /// `service_config::sink`), or nullptr. The hierarchy coordinator uses it
  /// to annotate its groups with tier numbers before joining them.
  [[nodiscard]] obs::sink* observability() const { return config_.sink; }

  /// Switches the membership-dissemination policy at runtime (see
  /// `service_config::hello_fanout`). The hierarchy coordinator calls this
  /// with `roster` so hierarchical deployments stop paying for cluster-wide
  /// HELLO anti-entropy; flat deployments keep the configured default.
  void set_hello_fanout(membership::hello_fanout fanout);
  [[nodiscard]] membership::hello_fanout hello_fanout() const {
    return config_.hello_fanout;
  }

 private:
  struct group_state {
    group_id group;
    process_id local_pid;
    join_options options;
    std::unique_ptr<election::elector> elector;
    std::optional<process_id> last_leader;
    bool announced_leader_once = false;
    bool was_sending = false;
    /// Last self accusation time pushed to peers; a change triggers an
    /// eager ALIVE so demotions propagate in one delay, not one eta.
    time_point last_self_acc{};
    leader_callback on_change;
  };

  // Wiring.
  void on_datagram(const net::datagram& dgram);
  /// Counts (and traces) a well-formed datagram addressed to a group this
  /// instance does not participate in.
  void note_unknown_group(group_id group, node_id from);
  void handle(const proto::alive_msg& msg);
  void handle(const proto::accuse_msg& msg);
  void handle(const proto::hello_msg& msg);
  void handle(const proto::hello_ack_msg& msg);
  void handle(const proto::leave_msg& msg);
  void handle(const proto::rate_request_msg& msg);

  // Election plumbing.
  void reevaluate(group_id group);
  void reevaluate_all();
  election::elector_context make_context(group_id group, process_id pid,
                                         bool candidate);
  [[nodiscard]] bool wants_stability_ranking(const join_options& options) const;

  // Heartbeat engine.
  void schedule_alive();
  void alive_tick();
  /// Sends one ALIVE immediately. When `extra_group` is set, its payload is
  /// included even if its elector is no longer sending (the Omega_l
  /// "graceful withdrawal" final heartbeat).
  void send_alive_now(std::optional<group_id> extra_group = std::nullopt);

  // Outbound helpers.
  void send_to(node_id dst, const proto::wire_message& msg);
  void broadcast(const proto::wire_message& msg);
  void multicast(const std::vector<node_id>& dsts, const proto::wire_message& msg);
  void count_sent(const proto::wire_message& msg);
  void count_hello_destinations(const proto::wire_message& msg,
                                std::uint64_t destinations);
  /// Cause to stamp into an outbound datagram's wire envelope: the sink's
  /// current cause when causal stamping is on, except for RATE_REQ (FD rate
  /// plumbing, causally inert). Invalid = plain version-1 envelope.
  [[nodiscard]] cause_id outbound_cause(const proto::wire_message& msg) const;

  /// Reused destination buffer for the fan-out paths (no per-send vector).
  std::vector<node_id> dst_scratch_;

  /// Serialized-bytes cache for the periodic HELLO anti-entropy broadcast:
  /// between membership changes the message is byte-identical, so the
  /// re-broadcast reuses one sealed payload instead of re-encoding
  /// (encode_cache re-encodes automatically on change or cause stamp).
  proto::encode_cache hello_cache_;

  /// Receive scratch for on_datagram: decode_into reuses its vectors, so a
  /// steady stream of ALIVEs parses without allocating. Handlers only see
  /// it as a const reference and must copy anything they keep.
  proto::wire_message rx_scratch_;

  clock_source& clock_;
  timer_service& timers_;
  net::transport& transport_;
  service_config config_;
  service_stats stats_;

  fd::fd_manager fd_;
  membership::group_maintenance gm_;
  fd::rate_controller rate_;
  std::unique_ptr<adaptive::engine> adaptive_;

  std::unordered_map<process_id, bool> registered_;  // pid -> exists
  std::unordered_map<group_id, group_state> groups_;

  scoped_timer alive_timer_;
  std::uint64_t alive_seq_ = 0;
  time_point last_alive_sent_{};

  leader_callback leader_observer_;
};

}  // namespace omega::service
