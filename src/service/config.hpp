// Configuration types of the leader-election service.
#pragma once

#include <optional>
#include <unordered_map>
#include <vector>

#include "adaptive/engine.hpp"
#include "common/ids.hpp"
#include "election/elector.hpp"
#include "fd/fd_manager.hpp"
#include "fd/qos.hpp"
#include "membership/group_maintenance.hpp"
#include "obs/sink.hpp"

namespace omega::service {

/// Static configuration of one service instance (one per workstation).
struct service_config {
  /// This workstation's identity in the cluster.
  node_id self;
  /// Restart counter; the harness increments it on every recovery, standing
  /// in for the boot-id a real deployment would derive from the OS.
  incarnation inc = 1;
  /// All workstations that may run the service (the installation roster the
  /// paper's deployment configures per cluster). Join HELLOs (and, under
  /// `hello_fanout::all`, every HELLO/LEAVE) go to every roster node.
  std::vector<node_id> roster;
  /// Destination policy of the periodic HELLO anti-entropy and of LEAVE:
  /// `all` (default) broadcasts to the installation roster — the paper's
  /// behaviour, right for flat deployments where every node shares the one
  /// group anyway; `roster` scopes each announcement to the group rosters
  /// that can use it (the hierarchy coordinator requests this, since the
  /// cluster-wide broadcast is the dominant per-node cost there).
  membership::hello_fanout hello_fanout = membership::hello_fanout::all;
  /// Which of the three election algorithms this instance runs.
  election::algorithm alg = election::algorithm::omega_lc;
  /// Failure-detector tuning (estimator windows, reconfiguration cadence...).
  fd::fd_manager::options fd{};
  /// Group-maintenance tuning (HELLO period, eviction timeout).
  membership::group_maintenance::options gm{};
  /// Online QoS re-configuration: tuning mode plus adaptation-engine knobs
  /// (tracker windows, retune hysteresis, stability scoring).
  adaptive::engine_options adaptive{};
  /// Observability sink (metrics + structured trace), threaded through
  /// every module of the instance. Null (the default) disables the plane;
  /// instrumented sites then cost one pointer compare. The sink must
  /// outlive the service instance.
  obs::sink* sink = nullptr;
  /// Causal tracing (DESIGN.md §7): propagate cause ids through the sink's
  /// activation scopes and stamp them into the wire envelopes of causally
  /// potent datagrams (version-2 envelope). Off by default — stamping off
  /// is guaranteed byte-identical on the wire and in the trace JSONL to a
  /// build without the feature (the golden-trace guard pins this). Needs
  /// `sink` to do anything.
  bool causal_stamping = false;
};

/// How a joined process wants to learn about leader changes (paper §4:
/// "by an interrupt from the service ... or by querying the service").
enum class notification_mode {
  interrupt,  // callback on every leader change
  query,      // the process polls leader()
};

/// Per-join parameters (paper §4: group id, candidacy, notification mode,
/// FD QoS).
struct join_options {
  /// Whether this process is willing to lead the group.
  bool candidate = true;
  notification_mode notify = notification_mode::interrupt;
  /// Election algorithm for this group, overriding the instance-wide
  /// `service_config::alg`. The hierarchy coordinator uses this to run the
  /// link-crash-tolerant omega_lc inside regions while the listener-heavy
  /// global tier runs the communication-efficient omega_l (listeners never
  /// send ALIVE payloads there).
  std::optional<election::algorithm> alg;
  /// QoS of the underlying failure detector used for this group.
  fd::qos_spec qos{};
  /// Service class of this group's failure detection when the instance
  /// runs in adaptive tuning mode: `interactive` re-tunes toward minimum
  /// detection latency, `background` toward minimum heartbeat rate (both
  /// subject to `qos`). Ignored in continuous/frozen modes.
  adaptive::qos_class fd_class = adaptive::qos_class::interactive;
  /// Let the elector consult the adaptation engine's per-candidate
  /// stability score (observed uptime, accusation history, link quality)
  /// when ranking leaders. Only effective when the service runs in
  /// adaptive tuning mode; off by default — the paper's ranking applies.
  bool stability_ranking = false;
};

/// Counters exposed for tests, benchmarks and the overhead figures.
struct service_stats {
  std::uint64_t alive_sent = 0;
  std::uint64_t accuse_sent = 0;
  std::uint64_t hello_sent = 0;
  std::uint64_t hello_ack_sent = 0;
  std::uint64_t leave_sent = 0;
  std::uint64_t rate_request_sent = 0;
  std::uint64_t datagrams_received = 0;
  std::uint64_t malformed_received = 0;
  /// Well-formed datagrams addressed to a group this instance has not
  /// joined (or has already left) — late traffic racing a leave, or stale
  /// senders that have not yet processed our LEAVE. Previously these were
  /// silently ignored, indistinguishable from decode failures.
  std::uint64_t dropped_unknown_group = 0;

  /// Per-group HELLO dissemination accounting: how many HELLO emissions
  /// carried the group's entry and to how many destinations in total. Under
  /// `hello_fanout::all` every carried group is attributed the full roster
  /// fan-out; under `roster` scoping the per-group counts diverge — which
  /// is exactly what the fig12 economics and the scoping tests measure.
  struct group_hello_stats {
    std::uint64_t hellos = 0;
    std::uint64_t destinations = 0;
  };
  std::unordered_map<group_id, group_hello_stats> hello_by_group;
};

}  // namespace omega::service
