// Node-to-node datagram transport abstraction.
//
// The service exchanges small datagrams (ALIVE, HELLO, ACCUSE, ...) between
// workstations. `transport` is the only way protocol code touches the
// network, so the same service runs over the simulated network
// (`net::sim_network`) or over real UDP sockets (`runtime::udp_transport`).
// Datagram semantics match UDP: unordered, unreliable, no connection state.
#pragma once

#include <cstddef>
#include <functional>
#include <span>
#include <vector>

#include "common/ids.hpp"
#include "common/time.hpp"
#include "net/shared_payload.hpp"

namespace omega::net {

/// A received datagram. `payload` is only valid during the callback.
struct datagram {
  node_id from;
  std::span<const std::byte> payload;
};

using receive_handler = std::function<void(const datagram&)>;

class transport {
 public:
  virtual ~transport() = default;

  /// Sends one datagram to `dst` (fire-and-forget).
  virtual void send(node_id dst, std::span<const std::byte> payload) = 0;

  /// Sends one datagram to every node in `dsts` (the roster-scoped
  /// dissemination path: the caller encodes once, the transport fans out).
  /// The default replicates over `send`; transports with a cheaper group
  /// primitive (kernel multicast, shared-memory rings) can override.
  virtual void multicast(std::span<const node_id> dsts,
                         std::span<const std::byte> payload) {
    for (node_id dst : dsts) send(dst, payload);
  }

  /// Zero-copy variants: the sender encodes once into a buffer from
  /// `pool()` and the transport shares references instead of copying per
  /// destination. Transports that can hold the bytes beyond the call (the
  /// simulated network's in-flight delivery events) override these; the
  /// defaults forward to the span paths, which is exactly right for real
  /// sockets (the kernel copies the datagram immediately anyway).
  virtual void send(node_id dst, shared_payload payload) {
    send(dst, payload.bytes());
  }
  virtual void multicast(std::span<const node_id> dsts,
                         shared_payload payload) {
    for (node_id dst : dsts) send(dst, payload);
  }

  /// Buffer pool senders encode into; buffers sealed from it are recycled
  /// once the last in-flight reference drops. The simulated network shares
  /// one pool across all its endpoints (the free list is sized by the
  /// cluster-wide ALIVE/HELLO working set).
  [[nodiscard]] virtual payload_pool& pool() { return own_pool_; }

  /// The node this endpoint belongs to.
  [[nodiscard]] virtual node_id local_node() const = 0;

  /// Installs the upcall for incoming datagrams, replacing any previous one.
  /// Pass an empty function to mute the endpoint (e.g. while "crashed").
  virtual void set_receive_handler(receive_handler handler) = 0;

 private:
  /// Per-endpoint fallback pool for transports that don't override `pool()`
  /// (the real-UDP endpoint: buffers recycle as soon as `send` returns).
  payload_pool own_pool_;
};

/// Per-node traffic totals (both directions), used for the bandwidth and
/// CPU-overhead figures. `bytes_*` include per-datagram framing overhead
/// (UDP + IP + Ethernet headers), mirroring what the paper's testbed
/// measurements would have captured on the wire.
struct traffic_totals {
  std::uint64_t datagrams_sent = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t datagrams_received = 0;
  std::uint64_t bytes_received = 0;
};

/// Framing overhead added to every datagram when accounting bytes:
/// 8 (UDP) + 20 (IPv4) + 18 (Ethernet II + FCS).
inline constexpr std::size_t wire_overhead_bytes = 46;

}  // namespace omega::net
