// Scriptable network fault plane layered on `sim_network` (ISSUE 10).
//
// The base simulator models the paper's two fault classes (symmetric loss,
// link crash/recovery). Real deployments misbehave in richer ways, and the
// protocol claims (stable leadership, bounded detection, no stale
// resurrection) need to survive them. The adversary expresses five fault
// classes, all deterministic for a fixed seed + script:
//
//   * one-way cuts      — drop every datagram A -> B while B -> A flows;
//   * named partitions  — a node set is severed from the rest in *both*
//                         directions; partitions are named so scripts can
//                         heal them individually, and multiple partitions
//                         compose (a datagram dies if any active partition
//                         separates its endpoints);
//   * flapping links    — a directed link alternates up/down on a strict
//                         duty cycle (period, up-fraction, phase), evaluated
//                         arithmetically from the virtual clock: no timers,
//                         no RNG, so a flap schedule is exactly reproducible;
//   * duplication +     — admitted datagrams are duplicated (bounded k extra
//     reordering          copies of the *same* refcounted buffer, so the
//                         zero-copy property holds) and/or reordered by a
//                         deterministic permutation window: within every
//                         window of W consecutive datagrams on a directed
//                         link, delivery delays are inflated to reverse the
//                         send order. Per-kind delay inflation (keyed on
//                         `proto::peek_kind`) lets scripts slow one message
//                         type (e.g. ALIVEs crawl while ACCUSEs sprint);
//   * clock skew/drift  — not the adversary's business: injected through the
//                         `clock_source` seam by the harness
//                         (`harness::skewed_clock`), because clocks belong
//                         to nodes, not to the network.
//
// Contract with `sim_network`: when no adversary is installed the hot path
// is byte-identical to the pre-adversary simulator (guarded by the golden
// trace fingerprints); when one is installed, only the three hook points
// (`should_drop`, `extra_delay`, `plan_duplicates`) run, and only the
// adversary's private RNG stream draws — base link streams are untouched.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/ids.hpp"
#include "common/random.hpp"
#include "common/time.hpp"
#include "proto/wire.hpp"

namespace omega::net {

/// Duty cycle of a flapping directed link. The link is up during the first
/// `up_fraction` of every `period`, starting `phase` into the cycle;
/// evaluated as pure arithmetic on the virtual clock.
struct flap_spec {
  duration period = sec(10);
  double up_fraction = 0.5;  // clamped to [0, 1]
  duration phase{};

  friend bool operator==(const flap_spec&, const flap_spec&) = default;
};

/// Bounded at-least-once duplication: each admitted datagram is duplicated
/// with `probability`; a duplicated datagram gains 1..`max_copies` extra
/// deliveries, each delayed by an extra uniform(0, spread] on top of the
/// link's sampled transit time.
struct duplicate_spec {
  double probability = 0.0;
  std::size_t max_copies = 1;
  duration spread = msec(5);

  friend bool operator==(const duplicate_spec&, const duplicate_spec&) = default;
};

/// Deterministic permutation-window reordering: the i-th datagram of every
/// window of `window` consecutive datagrams on a directed link gets
/// `(window - 1 - i) * spacing` extra delay, reversing the window's send
/// order when `spacing` dominates the link's own jitter.
struct reorder_spec {
  std::size_t window = 0;  // 0 or 1 = off
  duration spacing = msec(2);

  friend bool operator==(const reorder_spec&, const reorder_spec&) = default;
};

class adversary {
 public:
  /// Hard bound on extra deliveries per datagram (keeps the stack buffer in
  /// `sim_network::on_send` fixed-size).
  static constexpr std::size_t max_duplicate_copies = 8;

  /// All stochastic choices (duplication coin flips, duplicate spreads)
  /// come from this private stream, so installing an adversary never
  /// perturbs the base network's draws.
  explicit adversary(rng stream) : rng_(stream) {}

  // ---- one-way cuts ------------------------------------------------------
  void cut_link(node_id from, node_id to);
  void heal_link(node_id from, node_id to);
  [[nodiscard]] bool link_cut(node_id from, node_id to) const;

  // ---- named partitions --------------------------------------------------
  /// Severs `members` from every node outside the set, both directions.
  /// Re-declaring an active name replaces its member set.
  void partition(std::string name, std::vector<node_id> members);
  /// Heals one named partition; returns false if no such partition.
  bool heal_partition(std::string_view name);
  void heal_all_partitions();
  [[nodiscard]] std::size_t active_partitions() const { return partitions_.size(); }
  /// True when some active partition separates `a` and `b`.
  [[nodiscard]] bool partitioned(node_id a, node_id b) const;

  // ---- flapping ----------------------------------------------------------
  void flap_link(node_id from, node_id to, flap_spec spec);
  void stop_flap(node_id from, node_id to);
  void stop_all_flaps();
  /// Duty-cycle verdict for a flapping link at `now`; true (up) for links
  /// with no flap installed.
  [[nodiscard]] bool flap_up(node_id from, node_id to, time_point now) const;

  // ---- duplication / reordering / per-kind delay -------------------------
  void set_duplication(duplicate_spec spec) { dup_ = spec; }
  void clear_duplication() { dup_ = duplicate_spec{}; }
  void set_reorder(reorder_spec spec) { reorder_ = spec; }
  void clear_reorder() { reorder_ = reorder_spec{}; }
  void set_kind_delay(proto::msg_kind kind, duration extra);
  void clear_kind_delay(proto::msg_kind kind);
  void clear_kind_delays();

  // ---- hooks called by sim_network (hot path) ----------------------------
  /// Drop verdict for one datagram about to transit `from -> to`. Counts
  /// the drop against the first matching fault class (cut, then partition,
  /// then flap).
  [[nodiscard]] bool should_drop(node_id from, node_id to, time_point now);
  /// Extra delivery delay for one admitted datagram: per-kind inflation
  /// plus the reorder window's deterministic slot delay.
  [[nodiscard]] duration extra_delay(node_id from, node_id to,
                                     std::span<const std::byte> payload);
  /// Plans the extra deliveries of one admitted datagram. Fills
  /// `extra_delays` (capacity `max_duplicate_copies`) with the additional
  /// delay of each duplicate and returns how many were planned (0 = none).
  [[nodiscard]] std::size_t plan_duplicates(duration* extra_delays);

  /// Per-fault-class totals since construction, for the obs export and the
  /// fault-injection assertions of the test battery.
  struct counters {
    std::uint64_t dropped_cut = 0;
    std::uint64_t dropped_partition = 0;
    std::uint64_t dropped_flap = 0;
    std::uint64_t duplicated = 0;        // extra deliveries scheduled
    std::uint64_t reorder_delayed = 0;   // datagrams with a reorder slot delay
    std::uint64_t kind_delayed = 0;      // datagrams with per-kind inflation
  };
  [[nodiscard]] const counters& totals() const { return counters_; }

 private:
  struct partition_state {
    std::string name;
    std::unordered_set<std::uint32_t> members;
  };

  static std::uint64_t link_key(node_id from, node_id to) {
    return (static_cast<std::uint64_t>(from.value()) << 32) | to.value();
  }
  static bool duty_up(const flap_spec& spec, time_point now);
  /// kind_delay_ slot of a wire kind, or npos for unmapped kinds.
  static std::size_t kind_slot(proto::msg_kind kind) {
    const auto v = static_cast<std::size_t>(kind);
    return v < kind_slots ? v : kind_slots;
  }

  static constexpr std::size_t kind_slots = 8;

  std::unordered_set<std::uint64_t> cuts_;
  std::vector<partition_state> partitions_;
  std::unordered_map<std::uint64_t, flap_spec> flaps_;
  duplicate_spec dup_{};
  reorder_spec reorder_{};
  /// Per-directed-link datagram counter driving the permutation windows.
  std::unordered_map<std::uint64_t, std::uint64_t> reorder_pos_;
  std::array<duration, kind_slots + 1> kind_delay_{};  // +1: dead slot for unmapped
  bool any_kind_delay_ = false;
  rng rng_;
  counters counters_;
};

}  // namespace omega::net
