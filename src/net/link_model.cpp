#include "net/link_model.hpp"

namespace omega::net {

std::optional<duration> link_model::transit() {
  if (!up_) return std::nullopt;  // crashed link: receiver fully disconnected
  if (rng_.bernoulli(profile_.loss_probability)) return std::nullopt;
  if (profile_.mean_delay <= duration{0}) return duration{0};
  switch (profile_.delay_dist) {
    case delay_distribution::exponential:
      return rng_.exponential(profile_.mean_delay);
    case delay_distribution::pareto:
      return rng_.pareto(profile_.mean_delay, profile_.pareto_alpha);
  }
  return rng_.exponential(profile_.mean_delay);
}

}  // namespace omega::net
