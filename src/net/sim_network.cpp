#include "net/sim_network.hpp"

#include <cassert>
#include <stdexcept>
#include <utility>

namespace omega::net {

class sim_network::endpoint_impl final : public transport {
 public:
  endpoint_impl(sim_network& net, node_id self) : net_(net), self_(self) {}

  void send(node_id dst, std::span<const std::byte> payload) override {
    net_.on_send(self_, dst, payload);
  }

  [[nodiscard]] node_id local_node() const override { return self_; }

  void set_receive_handler(receive_handler handler) override {
    handler_ = std::move(handler);
  }

  void deliver(node_id from, std::span<const std::byte> payload) {
    if (handler_) handler_(datagram{from, payload});
  }

 private:
  friend class sim_network;
  sim_network& net_;
  node_id self_;
  receive_handler handler_;
};

sim_network::sim_network(sim::simulator& sim, std::size_t node_count,
                         link_profile default_profile, rng seed)
    : sim_(sim) {
  if (node_count == 0) throw std::invalid_argument("sim_network: node_count == 0");
  endpoints_.reserve(node_count);
  for (std::size_t i = 0; i < node_count; ++i) {
    endpoints_.push_back(
        std::make_unique<endpoint_impl>(*this, node_id{static_cast<std::uint32_t>(i)}));
  }
  links_.reserve(node_count * node_count);
  for (std::size_t i = 0; i < node_count * node_count; ++i) {
    links_.emplace_back(default_profile, seed.split());
  }
  alive_.assign(node_count, true);
  traffic_.assign(node_count, traffic_totals{});
  link_flip_timers_.assign(node_count * node_count, no_timer);
}

sim_network::~sim_network() {
  for (timer_id id : link_flip_timers_) {
    if (id != no_timer) sim_.cancel(id);
  }
}

transport& sim_network::endpoint(node_id node) {
  return *endpoints_.at(node.value());
}

void sim_network::set_node_alive(node_id node, bool alive) {
  alive_.at(node.value()) = alive;
}

bool sim_network::node_alive(node_id node) const {
  return alive_.at(node.value());
}

void sim_network::set_all_link_profiles(link_profile profile) {
  for (auto& link : links_) link.set_profile(profile);
}

void sim_network::set_link_profile(node_id from, node_id to, link_profile profile) {
  links_.at(link_index(from, to)).set_profile(profile);
}

void sim_network::enable_link_crashes(link_crash_profile profile) {
  if (!profile.enabled) return;
  crash_profile_ = profile;
  for (std::size_t idx = 0; idx < links_.size(); ++idx) {
    const std::size_t n = endpoints_.size();
    if (idx / n == idx % n) continue;  // no self-links
    schedule_link_flip(idx);
  }
}

void sim_network::schedule_link_flip(std::size_t link_idx) {
  link_model& link = links_[link_idx];
  const duration wait = link.up() ? link.draw_uptime(crash_profile_)
                                  : link.draw_downtime(crash_profile_);
  link_flip_timers_[link_idx] = sim_.schedule_after(wait, [this, link_idx] {
    link_model& l = links_[link_idx];
    l.set_up(!l.up());
    schedule_link_flip(link_idx);
  });
}

void sim_network::force_link_state(node_id from, node_id to, bool up) {
  links_.at(link_index(from, to)).set_up(up);
}

bool sim_network::link_up(node_id from, node_id to) const {
  return links_.at(link_index(from, to)).up();
}

const traffic_totals& sim_network::traffic(node_id node) const {
  return traffic_.at(node.value());
}

void sim_network::reset_traffic() {
  traffic_.assign(traffic_.size(), traffic_totals{});
}

std::size_t sim_network::link_index(node_id from, node_id to) const {
  const std::size_t n = endpoints_.size();
  const std::size_t f = from.value();
  const std::size_t t = to.value();
  if (f >= n || t >= n) throw std::out_of_range("sim_network: bad node id");
  return f * n + t;
}

void sim_network::on_send(node_id from, node_id to,
                          std::span<const std::byte> payload) {
  if (!alive_.at(from.value())) return;  // a dead host cannot transmit
  auto& tx = traffic_.at(from.value());
  ++tx.datagrams_sent;
  tx.bytes_sent += payload.size() + wire_overhead_bytes;
  if (tap_) tap_(from, to, payload);

  if (from == to) {
    // Loopback: immediate, lossless (matches kernel loopback behaviour).
    deliver_later(from, to, std::vector<std::byte>(payload.begin(), payload.end()));
    return;
  }
  auto delay = links_.at(link_index(from, to)).transit();
  if (!delay.has_value()) {
    ++dropped_by_links_;
    return;
  }
  std::vector<std::byte> copy(payload.begin(), payload.end());
  sim_.schedule_after(*delay, [this, from, to, data = std::move(copy)]() mutable {
    deliver_now(from, to, std::move(data));
  });
}

void sim_network::deliver_later(node_id from, node_id to,
                                std::vector<std::byte> payload) {
  sim_.schedule_after(duration{0},
                      [this, from, to, data = std::move(payload)]() mutable {
                        deliver_now(from, to, std::move(data));
                      });
}

void sim_network::deliver_now(node_id from, node_id to,
                              std::vector<std::byte> payload) {
  if (!alive_.at(to.value())) {
    ++dropped_dead_node_;
    return;
  }
  auto& rx = traffic_.at(to.value());
  ++rx.datagrams_received;
  rx.bytes_received += payload.size() + wire_overhead_bytes;
  endpoints_[to.value()]->deliver(from, payload);
}

}  // namespace omega::net
