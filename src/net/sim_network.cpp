#include "net/sim_network.hpp"

#include <cassert>
#include <stdexcept>
#include <utility>

#include "net/adversary.hpp"
#include "proto/wire.hpp"

namespace omega::net {

class sim_network::endpoint_impl final : public transport {
 public:
  endpoint_impl(sim_network& net, node_id self) : net_(net), self_(self) {}

  void send(node_id dst, std::span<const std::byte> payload) override {
    net_.on_send(self_, dst, payload);
  }

  void send(node_id dst, shared_payload payload) override {
    net_.on_send(self_, dst, std::move(payload));
  }

  void multicast(std::span<const node_id> dsts,
                 shared_payload payload) override {
    // Encode-once fan-out: every destination's delivery event references
    // the same sealed buffer. Destination order matches the looping
    // default, so event scheduling (and the trace) is unchanged.
    for (node_id dst : dsts) net_.on_send(self_, dst, payload);
  }

  [[nodiscard]] payload_pool& pool() override { return net_.pool_; }

  [[nodiscard]] node_id local_node() const override { return self_; }

  void set_receive_handler(receive_handler handler) override {
    handler_ = std::move(handler);
  }

  void deliver(node_id from, std::span<const std::byte> payload) {
    if (handler_) handler_(datagram{from, payload});
  }

 private:
  friend class sim_network;
  sim_network& net_;
  node_id self_;
  receive_handler handler_;
};

sim_network::sim_network(sim::simulator& sim, std::size_t node_count,
                         link_profile default_profile, rng seed)
    : sim_(sim),
      // Free-list sized by the steady-state working set: every node has a
      // handful of distinct datagrams in flight (ALIVE fan-out shares one
      // buffer across the whole roster), plus headroom for HELLO bursts.
      pool_(node_count * 4 + 64) {
  if (node_count == 0) throw std::invalid_argument("sim_network: node_count == 0");
  endpoints_.reserve(node_count);
  for (std::size_t i = 0; i < node_count; ++i) {
    endpoints_.push_back(
        std::make_unique<endpoint_impl>(*this, node_id{static_cast<std::uint32_t>(i)}));
  }
  links_.reserve(node_count * node_count);
  for (std::size_t i = 0; i < node_count * node_count; ++i) {
    links_.emplace_back(default_profile, seed.split());
  }
  alive_.assign(node_count, true);
  traffic_.assign(node_count, traffic_totals{});
}

sim_network::~sim_network() = default;

transport& sim_network::endpoint(node_id node) {
  return *endpoints_.at(node.value());
}

void sim_network::set_node_alive(node_id node, bool alive) {
  alive_.at(node.value()) = alive;
}

bool sim_network::node_alive(node_id node) const {
  return alive_.at(node.value());
}

void sim_network::set_all_link_profiles(link_profile profile) {
  for (auto& link : links_) link.set_profile(profile);
}

void sim_network::set_link_profile(node_id from, node_id to, link_profile profile) {
  links_.at(link_index(from, to)).set_profile(profile);
}

void sim_network::enable_link_crashes(link_crash_profile profile) {
  if (!profile.enabled) return;
  crash_profile_ = profile;
  crash_anchor_ = sim_.now();
}

void sim_network::force_link_state(node_id from, node_id to, bool up) {
  links_.at(link_index(from, to)).set_up(up);
}

bool sim_network::link_up(node_id from, node_id to) {
  link_model& link = links_.at(link_index(from, to));
  if (crash_profile_.enabled && from != to) {
    link.advance_crashes(crash_profile_, crash_anchor_, sim_.now());
  }
  return link.up();
}

const traffic_totals& sim_network::traffic(node_id node) const {
  return traffic_.at(node.value());
}

void sim_network::reset_traffic() {
  traffic_.assign(traffic_.size(), traffic_totals{});
  dropped_by_links_ = 0;
  dropped_dead_node_ = 0;
  dropped_by_adversary_ = 0;
}

std::size_t sim_network::link_index(node_id from, node_id to) const {
  const std::size_t n = endpoints_.size();
  const std::size_t f = from.value();
  const std::size_t t = to.value();
  assert(f < n && t < n && "sim_network: bad node id");
  return f * n + t;
}

bool sim_network::admit(node_id from, node_id to,
                        std::span<const std::byte> payload, duration& delay) {
  assert(from.value() < alive_.size() && to.value() < alive_.size());
  if (!alive_[from.value()]) return false;  // a dead host cannot transmit
  auto& tx = traffic_[from.value()];
  ++tx.datagrams_sent;
  tx.bytes_sent += payload.size() + wire_overhead_bytes;
  if (tap_) tap_(from, to, payload);

  if (from == to) {
    // Loopback: immediate, lossless (matches kernel loopback behaviour).
    delay = duration{0};
    return true;
  }
  // Adversary verdict before the link draw: a cut/partitioned/flapped-down
  // link behaves like a severed wire, and skipping the base link's transit
  // draw keeps its RNG stream aligned with the fault-free schedule of the
  // surviving traffic.
  if (adversary_ != nullptr && adversary_->should_drop(from, to, sim_.now())) {
    ++dropped_by_adversary_;
    return false;
  }
  link_model& link = links_[link_index(from, to)];
  if (crash_profile_.enabled) {
    link.advance_crashes(crash_profile_, crash_anchor_, sim_.now());
  }
  const auto transit = link.transit();
  if (!transit.has_value()) {
    ++dropped_by_links_;
    return false;
  }
  delay = *transit;
  if (adversary_ != nullptr) delay += adversary_->extra_delay(from, to, payload);
  return true;
}

void sim_network::on_send(node_id from, node_id to,
                          std::span<const std::byte> payload) {
  duration delay{};
  if (!admit(from, to, payload, delay)) return;
  // Copying span path (raw callers): the bytes are only valid during this
  // call, so they move into a pooled buffer for the flight.
  dispatch(from, to, delay, pool_.copy(payload));
}

void sim_network::on_send(node_id from, node_id to, shared_payload payload) {
  duration delay{};
  if (!admit(from, to, payload.bytes(), delay)) return;
  dispatch(from, to, delay, std::move(payload));
}

void sim_network::dispatch(node_id from, node_id to, duration delay,
                           shared_payload payload) {
  if (adversary_ != nullptr && from != to) {
    duration extras[adversary::max_duplicate_copies];
    const std::size_t copies = adversary_->plan_duplicates(extras);
    for (std::size_t i = 0; i < copies; ++i) {
      // Each duplicate holds a reference to the same sealed buffer.
      schedule_delivery(from, to, delay + extras[i], payload);
    }
  }
  schedule_delivery(from, to, delay, std::move(payload));
}

void sim_network::schedule_delivery(node_id from, node_id to, duration delay,
                                    shared_payload payload) {
  sim_.schedule_after(delay,
                      [this, from, to, data = std::move(payload)] {
                        deliver_now(from, to, data);
                      });
}

void sim_network::deliver_now(node_id from, node_id to,
                              const shared_payload& payload) {
  if (!alive_[to.value()]) {
    ++dropped_dead_node_;
    return;
  }
  auto& rx = traffic_[to.value()];
  rx.datagrams_received += 1;
  rx.bytes_received += payload.size() + wire_overhead_bytes;
  if (profiler_ != nullptr) {
    // Host-time cost of the whole receive stack (decode + FD + membership
    // + election reevaluation), labelled by wire kind.
    const auto kind = proto::peek_kind(payload.bytes());
    obs::profiler::scope timed(
        profiler_, kind ? proto::to_string(*kind) : "malformed");
    endpoints_[to.value()]->deliver(from, payload.bytes());
    return;
  }
  endpoints_[to.value()]->deliver(from, payload.bytes());
}

}  // namespace omega::net
