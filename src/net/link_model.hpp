// Stochastic model of one directed communication link.
//
// Reproduces the two fault models of the paper's evaluation (§6.1):
//  * "lossy links": every message is dropped with probability `loss_probability`;
//    surviving messages are delayed by an exponentially distributed time with
//    mean `mean_delay` (the paper's D).
//  * "links prone to crashes": the link alternates between up (exponential
//    mean up-time) and down (exponential mean down-time); while down, *all*
//    messages are dropped — the receiver is completely disconnected from the
//    sender. While up, losses and delays are those of the base profile.
#pragma once

#include <optional>

#include "common/random.hpp"
#include "common/time.hpp"

namespace omega::net {

/// Shape of the per-message delay distribution.
enum class delay_distribution {
  /// Exponentially distributed delays — the paper's §6.1 model.
  exponential,
  /// Heavy-tailed Pareto delays (WAN-grade tails): most messages arrive
  /// quickly, a polynomially decaying fraction arrives very late. This is
  /// the traffic the configurator's `fd::delay_tail_model::pareto` models.
  pareto,
};

/// Steady-state behaviour of a link: (D, p_L) in the paper's notation.
struct link_profile {
  /// Probability that a message is dropped (p_L).
  double loss_probability = 0.0;
  /// Mean of the message delay (D).
  duration mean_delay = usec(25);
  delay_distribution delay_dist = delay_distribution::exponential;
  /// Pareto tail exponent (used when `delay_dist` is pareto). Smaller =
  /// heavier tail; values are clamped above 1 so the mean stays `mean_delay`.
  double pareto_alpha = 2.5;

  /// The paper's five headline lossy-link settings.
  static link_profile lan() { return {0.0, usec(25)}; }
  static link_profile lossy(duration d, double pl) { return {pl, d}; }
  /// A WAN link with Pareto-tailed delays of the given mean and exponent.
  static link_profile heavy_tailed(duration d, double pl, double alpha = 2.5) {
    link_profile p;
    p.loss_probability = pl;
    p.mean_delay = d;
    p.delay_dist = delay_distribution::pareto;
    p.pareto_alpha = alpha;
    return p;
  }
};

/// Crash/recovery dynamics of a link; disabled by default.
struct link_crash_profile {
  bool enabled = false;
  duration mean_uptime = sec(600);
  duration mean_downtime = sec(3);

  static link_crash_profile none() { return {}; }
  static link_crash_profile crashes(duration up, duration down) {
    return {true, up, down};
  }
};

/// Per-directed-link state machine deciding the fate of each message.
class link_model {
 public:
  link_model(link_profile profile, rng stream)
      : profile_(profile), rng_(stream) {}

  /// Decides the fate of one message sent now: `nullopt` means dropped,
  /// otherwise the in-flight delay before delivery.
  std::optional<duration> transit();

  void set_profile(link_profile profile) { profile_ = profile; }
  [[nodiscard]] const link_profile& profile() const { return profile_; }

  void set_up(bool up) { up_ = up; }
  [[nodiscard]] bool up() const { return up_; }

  /// Advances the lazy crash/recovery process to `now`. The up/down flip
  /// schedule is drawn on demand from this link's own RNG stream the first
  /// time the link is touched after `enable_crashes` — arming 250k timers up
  /// front for a 500-node mesh (O(n²)) was the old, eager design. `anchor`
  /// is the enable time: the first up-period starts there, exactly like the
  /// first eagerly-scheduled flip used to.
  void advance_crashes(const link_crash_profile& p, time_point anchor,
                       time_point now) {
    if (!flips_armed_) {
      flips_armed_ = true;
      next_flip_ = anchor + draw_uptime(p);
    }
    while (next_flip_ <= now) {
      up_ = !up_;
      next_flip_ += up_ ? draw_uptime(p) : draw_downtime(p);
    }
  }

  /// Draws the next up or down period for the crash process.
  duration draw_uptime(const link_crash_profile& p) { return rng_.exponential(p.mean_uptime); }
  duration draw_downtime(const link_crash_profile& p) { return rng_.exponential(p.mean_downtime); }

 private:
  link_profile profile_;
  bool up_ = true;
  bool flips_armed_ = false;
  time_point next_flip_{};
  rng rng_;
};

}  // namespace omega::net
