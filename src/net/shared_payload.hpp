// Refcounted immutable datagram buffer with a recycling pool.
//
// The simulated network used to heap-allocate a fresh byte vector per
// *delivery*: a multicast to a 500-node roster copied the encoded message
// 500 times. A `shared_payload` is encoded once (into a buffer checked out
// of a `payload_pool`), then every in-flight delivery event holds one
// reference; when the last reference drops, the buffer — capacity intact —
// goes back to the pool's free list. In steady state the ALIVE/HELLO
// working set cycles through a fixed set of buffers and the datagram path
// allocates nothing (DESIGN.md §9).
//
// The buffer is immutable after `seal`: receivers get `std::span<const
// std::byte>` views, so a multicast destination can never mutate the bytes
// a sibling destination is about to read. Lifetime is decoupled from the
// pool: payloads still in flight when their pool is destroyed (the
// simulator may hold delivery events past the network's teardown) are
// orphaned and self-delete on the last release. Not thread-safe by design —
// the pool lives on a single event loop, like everything else in the stack.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace omega::net {

class payload_pool;

class shared_payload {
 public:
  shared_payload() = default;
  shared_payload(const shared_payload& other) : b_(other.b_) {
    if (b_ != nullptr) ++b_->refs;
  }
  shared_payload(shared_payload&& other) noexcept : b_(other.b_) {
    other.b_ = nullptr;
  }
  shared_payload& operator=(const shared_payload& other) {
    if (this != &other) {
      release();
      b_ = other.b_;
      if (b_ != nullptr) ++b_->refs;
    }
    return *this;
  }
  shared_payload& operator=(shared_payload&& other) noexcept {
    if (this != &other) {
      release();
      b_ = other.b_;
      other.b_ = nullptr;
    }
    return *this;
  }
  ~shared_payload() { release(); }

  [[nodiscard]] std::span<const std::byte> bytes() const {
    return b_ != nullptr ? std::span<const std::byte>(b_->data)
                         : std::span<const std::byte>();
  }
  [[nodiscard]] std::size_t size() const {
    return b_ != nullptr ? b_->data.size() : 0;
  }
  [[nodiscard]] bool empty() const { return size() == 0; }
  [[nodiscard]] explicit operator bool() const { return b_ != nullptr; }

  /// References alive, 0 for an empty handle (white-box for the tests).
  [[nodiscard]] std::uint32_t use_count() const {
    return b_ != nullptr ? b_->refs : 0;
  }

 private:
  friend class payload_pool;
  struct block {
    std::vector<std::byte> data;
    std::uint32_t refs = 0;
    payload_pool* owner = nullptr;  // null once orphaned: self-delete
    // Intrusive list of live (sealed, not yet fully released) blocks, so a
    // dying pool can orphan the ones the simulator still references.
    block* prev = nullptr;
    block* next = nullptr;
  };
  explicit shared_payload(block* b) : b_(b) {}
  inline void release();

  block* b_ = nullptr;
};

/// Free list of payload blocks. `checkout` hands out an empty vector with
/// recycled capacity to encode into; `seal` wraps the filled bytes into an
/// immutable refcounted payload whose storage returns here when the last
/// reference drops. Sized by the working set: at most `max_free` idle
/// buffers are retained, the rest are freed.
class payload_pool {
 public:
  explicit payload_pool(std::size_t max_free = 256) : max_free_(max_free) {}
  payload_pool(const payload_pool&) = delete;
  payload_pool& operator=(const payload_pool&) = delete;
  ~payload_pool() {
    for (shared_payload::block* b : free_) delete b;
    for (shared_payload::block* b : staged_) delete b;
    // In-flight payloads outlive the pool: orphan them so the last release
    // frees the block directly instead of chasing a dangling owner.
    for (shared_payload::block* b = live_head_; b != nullptr;) {
      shared_payload::block* next = b->next;
      b->owner = nullptr;
      b->prev = b->next = nullptr;
      b = next;
    }
  }

  /// An empty buffer with recycled capacity, ready to be encoded into.
  [[nodiscard]] std::vector<std::byte> checkout() {
    if (free_.empty()) return {};
    shared_payload::block* b = free_.back();
    free_.pop_back();
    std::vector<std::byte> buf = std::move(b->data);
    buf.clear();
    staged_.push_back(b);
    return buf;
  }

  /// Seals `bytes` (typically a filled `checkout` buffer) into an immutable
  /// payload with one reference.
  [[nodiscard]] shared_payload seal(std::vector<std::byte> bytes) {
    shared_payload::block* b;
    if (!staged_.empty()) {
      b = staged_.back();
      staged_.pop_back();
    } else {
      b = new shared_payload::block();
    }
    b->data = std::move(bytes);
    b->refs = 1;
    b->owner = this;
    b->prev = nullptr;
    b->next = live_head_;
    if (live_head_ != nullptr) live_head_->prev = b;
    live_head_ = b;
    ++live_;
    return shared_payload(b);
  }

  /// Copies a raw span into a pooled payload (the copying-transport
  /// fallback path).
  [[nodiscard]] shared_payload copy(std::span<const std::byte> bytes) {
    std::vector<std::byte> buf = checkout();
    buf.assign(bytes.begin(), bytes.end());
    return seal(std::move(buf));
  }

  /// Idle recycled buffers currently retained.
  [[nodiscard]] std::size_t free_buffers() const { return free_.size(); }
  /// Payloads sealed and not yet fully released.
  [[nodiscard]] std::size_t live_payloads() const { return live_; }
  [[nodiscard]] std::size_t max_free() const { return max_free_; }

 private:
  friend class shared_payload;
  void put_back(shared_payload::block* b) {
    if (b->prev != nullptr) b->prev->next = b->next;
    if (b->next != nullptr) b->next->prev = b->prev;
    if (live_head_ == b) live_head_ = b->next;
    b->prev = b->next = nullptr;
    --live_;
    if (free_.size() < max_free_) {
      b->data.clear();  // capacity retained for the next checkout
      free_.push_back(b);
    } else {
      delete b;
    }
  }

  std::size_t max_free_;
  std::size_t live_ = 0;
  std::vector<shared_payload::block*> free_;
  /// Blocks whose vector is checked out but not yet sealed back.
  std::vector<shared_payload::block*> staged_;
  shared_payload::block* live_head_ = nullptr;
};

void shared_payload::release() {
  if (b_ == nullptr) return;
  if (--b_->refs == 0) {
    if (b_->owner != nullptr) {
      b_->owner->put_back(b_);
    } else {
      delete b_;
    }
  }
  b_ = nullptr;
}

}  // namespace omega::net
