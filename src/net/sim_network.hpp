// Simulated cluster network.
//
// Owns one `link_model` per directed node pair, one transport endpoint per
// node, and the per-node traffic accounting used by the overhead figures.
// Delivery is an event on the discrete-event simulator after the
// link-sampled delay. Node liveness is controlled by the churn injector:
// datagrams to/from a crashed node are dropped, exactly like UDP datagrams
// addressed to a powered-off host.
//
// Hot-path design (DESIGN.md §9): datagrams are refcounted immutable
// `shared_payload` buffers drawn from one network-wide recycling pool — a
// multicast to a 500-node roster encodes and allocates once, and every
// delivery event holds a reference instead of a copy. Link crash/recovery
// processes are drawn lazily per link on first touch (the eager design
// armed O(n²) flip timers at enable time). Per-send bounds checks are
// debug asserts: node ids come from the roster, not from the wire.
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <vector>

#include "common/executor.hpp"
#include "common/ids.hpp"
#include "common/random.hpp"
#include "net/link_model.hpp"
#include "net/shared_payload.hpp"
#include "net/transport.hpp"
#include "obs/profiler.hpp"
#include "sim/simulator.hpp"

namespace omega::net {

class adversary;

class sim_network {
 public:
  /// Builds a fully connected network of `node_count` nodes where every
  /// directed link starts with `default_profile`. Each link gets an
  /// independent RNG stream split from `seed`.
  sim_network(sim::simulator& sim, std::size_t node_count,
              link_profile default_profile, rng seed);
  ~sim_network();

  sim_network(const sim_network&) = delete;
  sim_network& operator=(const sim_network&) = delete;

  [[nodiscard]] std::size_t node_count() const { return endpoints_.size(); }

  /// Endpoint for `node`; valid for the lifetime of the network.
  [[nodiscard]] transport& endpoint(node_id node);

  /// Marks a node up/down. A down node neither sends nor receives.
  void set_node_alive(node_id node, bool alive);
  [[nodiscard]] bool node_alive(node_id node) const;

  /// Replaces the steady-state profile of every directed link.
  void set_all_link_profiles(link_profile profile);
  /// Replaces the profile of one directed link (from -> to).
  void set_link_profile(node_id from, node_id to, link_profile profile);

  /// Enables the link crash/recovery process on every directed link
  /// (paper §6.1, "links prone to crashes"). Each link alternates
  /// independently; the first up-period starts now. Flip times are drawn
  /// lazily from each link's own RNG stream when the link is next touched
  /// (a message transits or `link_up` is queried) — no timers are armed.
  void enable_link_crashes(link_crash_profile profile);

  /// Forces one directed link up or down (tests and targeted experiments).
  void force_link_state(node_id from, node_id to, bool up);
  [[nodiscard]] bool link_up(node_id from, node_id to);

  /// Traffic totals for one node since construction (or last reset).
  [[nodiscard]] const traffic_totals& traffic(node_id node) const;
  /// Zeroes all per-node traffic totals *and* the cluster-wide drop
  /// counters, so drop rates are measured over the same window as traffic.
  void reset_traffic();

  /// Shared buffer pool of this network (also reachable via any endpoint's
  /// `transport::pool()`). Exposed for white-box recycling tests.
  [[nodiscard]] payload_pool& buffer_pool() { return pool_; }

  /// Observer of every datagram accepted for transmission (sender alive),
  /// invoked before loss/crash drops — the same population `traffic()`
  /// counts as sent. Benches use it with `proto::peek_kind` to split
  /// traffic by message type; pass an empty function to remove.
  using send_tap =
      std::function<void(node_id from, node_id to, std::span<const std::byte>)>;
  void set_send_tap(send_tap tap) { tap_ = std::move(tap); }

  /// Attaches the scoped-timer profiler: every datagram delivery is timed
  /// (host time, steady_clock) under the label of its wire message kind —
  /// the per-event-kind execution-time histograms of the observability
  /// plane. Null (default) disables; virtual time and event order are
  /// never affected either way.
  void set_profiler(obs::profiler* profiler) { profiler_ = profiler; }

  /// Installs (or removes, with nullptr) the scriptable fault plane. With
  /// no adversary installed the hot path is byte-identical to the
  /// pre-adversary simulator — the golden-trace fingerprints guard this.
  /// The adversary must outlive the network or be removed first.
  void install_adversary(adversary* adv) { adversary_ = adv; }
  [[nodiscard]] adversary* fault_plane() { return adversary_; }

  /// Cluster-wide totals of datagrams dropped by links (loss + crash) and
  /// dropped because the destination node was down.
  [[nodiscard]] std::uint64_t dropped_by_links() const { return dropped_by_links_; }
  [[nodiscard]] std::uint64_t dropped_dead_node() const { return dropped_dead_node_; }
  /// Datagrams dropped by the installed adversary (all fault classes).
  [[nodiscard]] std::uint64_t dropped_by_adversary() const {
    return dropped_by_adversary_;
  }

 private:
  class endpoint_impl;
  friend class endpoint_impl;

  [[nodiscard]] std::size_t link_index(node_id from, node_id to) const;
  /// Accounting + tap + link fate for one datagram of `size` bytes.
  /// Returns false when the datagram dies before the wire (dead sender) or
  /// on it (loss / crashed link); otherwise `delay` holds the transit time.
  bool admit(node_id from, node_id to, std::span<const std::byte> payload,
             duration& delay);
  void on_send(node_id from, node_id to, std::span<const std::byte> payload);
  void on_send(node_id from, node_id to, shared_payload payload);
  /// Schedules one admitted datagram plus any adversary-planned duplicates
  /// (every extra delivery shares the same refcounted buffer).
  void dispatch(node_id from, node_id to, duration delay,
                shared_payload payload);
  void schedule_delivery(node_id from, node_id to, duration delay,
                         shared_payload payload);
  void deliver_now(node_id from, node_id to, const shared_payload& payload);

  sim::simulator& sim_;
  link_crash_profile crash_profile_;
  time_point crash_anchor_{};
  std::vector<std::unique_ptr<endpoint_impl>> endpoints_;
  std::vector<link_model> links_;  // row-major [from][to]
  std::vector<bool> alive_;
  std::vector<traffic_totals> traffic_;
  payload_pool pool_;
  send_tap tap_;
  obs::profiler* profiler_ = nullptr;
  adversary* adversary_ = nullptr;
  std::uint64_t dropped_by_links_ = 0;
  std::uint64_t dropped_dead_node_ = 0;
  std::uint64_t dropped_by_adversary_ = 0;
};

}  // namespace omega::net
