#include "net/adversary.hpp"

#include <algorithm>

namespace omega::net {

void adversary::cut_link(node_id from, node_id to) {
  cuts_.insert(link_key(from, to));
}

void adversary::heal_link(node_id from, node_id to) {
  cuts_.erase(link_key(from, to));
}

bool adversary::link_cut(node_id from, node_id to) const {
  return cuts_.find(link_key(from, to)) != cuts_.end();
}

void adversary::partition(std::string name, std::vector<node_id> members) {
  std::unordered_set<std::uint32_t> set;
  set.reserve(members.size());
  for (node_id n : members) set.insert(n.value());
  for (auto& p : partitions_) {
    if (p.name == name) {
      p.members = std::move(set);
      return;
    }
  }
  partitions_.push_back({std::move(name), std::move(set)});
}

bool adversary::heal_partition(std::string_view name) {
  const auto it = std::find_if(
      partitions_.begin(), partitions_.end(),
      [&](const partition_state& p) { return p.name == name; });
  if (it == partitions_.end()) return false;
  partitions_.erase(it);
  return true;
}

void adversary::heal_all_partitions() { partitions_.clear(); }

bool adversary::partitioned(node_id a, node_id b) const {
  for (const auto& p : partitions_) {
    const bool in_a = p.members.find(a.value()) != p.members.end();
    const bool in_b = p.members.find(b.value()) != p.members.end();
    if (in_a != in_b) return true;
  }
  return false;
}

void adversary::flap_link(node_id from, node_id to, flap_spec spec) {
  spec.up_fraction = std::clamp(spec.up_fraction, 0.0, 1.0);
  if (spec.period <= duration{0}) spec.period = usec(1);
  flaps_[link_key(from, to)] = spec;
}

void adversary::stop_flap(node_id from, node_id to) {
  flaps_.erase(link_key(from, to));
}

void adversary::stop_all_flaps() { flaps_.clear(); }

bool adversary::duty_up(const flap_spec& spec, time_point now) {
  const std::int64_t period = spec.period.count();
  std::int64_t pos = (now.time_since_epoch() + spec.phase).count() % period;
  if (pos < 0) pos += period;
  const auto up_window = static_cast<std::int64_t>(
      spec.up_fraction * static_cast<double>(period));
  return pos < up_window;
}

bool adversary::flap_up(node_id from, node_id to, time_point now) const {
  const auto it = flaps_.find(link_key(from, to));
  return it == flaps_.end() || duty_up(it->second, now);
}

void adversary::set_kind_delay(proto::msg_kind kind, duration extra) {
  kind_delay_[kind_slot(kind)] = extra;
  any_kind_delay_ = false;
  for (std::size_t i = 0; i < kind_slots; ++i) {
    if (kind_delay_[i] > duration{0}) any_kind_delay_ = true;
  }
}

void adversary::clear_kind_delay(proto::msg_kind kind) {
  set_kind_delay(kind, duration{0});
}

void adversary::clear_kind_delays() {
  kind_delay_.fill(duration{0});
  any_kind_delay_ = false;
}

bool adversary::should_drop(node_id from, node_id to, time_point now) {
  if (!cuts_.empty() && cuts_.find(link_key(from, to)) != cuts_.end()) {
    ++counters_.dropped_cut;
    return true;
  }
  if (!partitions_.empty() && partitioned(from, to)) {
    ++counters_.dropped_partition;
    return true;
  }
  if (!flaps_.empty()) {
    const auto it = flaps_.find(link_key(from, to));
    if (it != flaps_.end() && !duty_up(it->second, now)) {
      ++counters_.dropped_flap;
      return true;
    }
  }
  return false;
}

duration adversary::extra_delay(node_id from, node_id to,
                                std::span<const std::byte> payload) {
  duration extra{0};
  if (any_kind_delay_) {
    if (const auto kind = proto::peek_kind(payload)) {
      const duration d = kind_delay_[kind_slot(*kind)];
      if (d > duration{0}) {
        extra += d;
        ++counters_.kind_delayed;
      }
    }
  }
  if (reorder_.window > 1) {
    std::uint64_t& sent = reorder_pos_[link_key(from, to)];
    const auto slot = static_cast<std::size_t>(sent % reorder_.window);
    ++sent;
    const duration d = reorder_.spacing *
                       static_cast<std::int64_t>(reorder_.window - 1 - slot);
    if (d > duration{0}) {
      extra += d;
      ++counters_.reorder_delayed;
    }
  }
  return extra;
}

std::size_t adversary::plan_duplicates(duration* extra_delays) {
  if (dup_.probability <= 0.0 || dup_.max_copies == 0) return 0;
  if (!rng_.bernoulli(dup_.probability)) return 0;
  std::size_t copies = std::min(dup_.max_copies, max_duplicate_copies);
  if (copies > 1) copies = 1 + static_cast<std::size_t>(rng_.uniform_below(copies));
  const std::int64_t spread = std::max<std::int64_t>(dup_.spread.count(), 1);
  for (std::size_t i = 0; i < copies; ++i) {
    // Uniform in (0, spread]: a duplicate never lands strictly before (or
    // tied with) the original's slot unless the link jitter makes it so.
    extra_delays[i] =
        duration{1 + static_cast<std::int64_t>(rng_.uniform_below(
                         static_cast<std::uint64_t>(spread)))};
  }
  counters_.duplicated += copies;
  return copies;
}

}  // namespace omega::net
