// CPU and bandwidth overhead accounting (paper §6.5, Figure 6).
//
// Bandwidth is measured exactly: the simulated network counts every byte
// of every datagram including UDP/IP/Ethernet framing, which is what the
// paper's per-workstation traffic numbers captured.
//
// CPU cannot be measured in a discrete-event simulation, so we use a work
// proxy: each datagram sent or received costs a fixed per-datagram budget
// plus a per-byte budget (syscall + protocol handling dominate at these
// message sizes). The constants are calibrated once (see EXPERIMENTS.md)
// and held fixed across every algorithm, network setting and group size,
// so the *shape* Figure 6 reports — quadratic growth for S2 vs. linear for
// S3, higher cost on worse links — is preserved by construction.
#pragma once

#include "common/time.hpp"
#include "net/transport.hpp"

namespace omega::metrics {

struct cost_model {
  /// Cost per datagram sent or received (syscall, parse, dispatch).
  double us_per_datagram = 15.0;
  /// Incremental cost per payload byte (copy + checksum).
  double us_per_kilobyte = 2.0;

  /// Percentage of one CPU consumed by the given traffic over `elapsed`.
  [[nodiscard]] double cpu_percent(const net::traffic_totals& t,
                                   duration elapsed) const;

  /// Kilobytes per second of traffic *generated* by the node (sent bytes,
  /// matching the paper's "KB/s of message traffic per workstation").
  [[nodiscard]] static double sent_kb_per_second(const net::traffic_totals& t,
                                                 duration elapsed);
};

}  // namespace omega::metrics
