// Hierarchy-aware QoS metrics: per-region trackers plus a cross-tier
// blame split of global-leader outages.
//
// The flat `group_metrics` answers "does the cluster have a leader" for one
// group. A tiered deployment needs two more views:
//
//   * per-region P_leader / T_r — each tier-0 region runs its own election,
//     and a region can be leaderless (or flapping) while the global tier is
//     perfectly healthy, and vice versa. One `group_metrics` per region,
//     fed with that region's ground truth and region-tier leader views,
//     makes fig11-style benches diagnostic per region.
//
//   * a blame split of global-leader outages. When the agreed global
//     leader crashes, recovery can come through two different paths:
//       - global re-election: another *established* global candidate (a
//         different region's promoted leader) wins — the outage is bounded
//         by global-tier detection + election;
//       - regional failover: the new agreed global leader comes out of the
//         crashed leader's own region — the vacancy had to wait for that
//         region to re-elect and promote a replacement up the chain, so
//         the regional failover is what bounded the outage.
//     Each closed outage is attributed to exactly one bucket, decided by
//     where the *resolving* leader came from: even when a global outage
//     spans a concurrent regional failover, the bucket is "global" if an
//     established foreign candidate ended it first. Outages whose old
//     leader did not crash or leave (agreement blips, voluntary demotions)
//     land in neither bucket: if the owner installed a fault oracle (the
//     harness does when a `fault_script` runs — see DESIGN.md §11) and the
//     oracle says an injected network fault overlapped the outage window,
//     the outage is blamed on the fault; otherwise it is unattributed.
//
// The tracker is deliberately topology-agnostic: the owner supplies a
// pid -> region mapping (the harness derives it from `hierarchy::topology`)
// and routes ground-truth lifecycle events and region-tier views here; the
// global tier's agreement transitions arrive from the global
// `group_metrics`'s agreement observer.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/ids.hpp"
#include "common/stats.hpp"
#include "common/time.hpp"
#include "metrics/group_metrics.hpp"

namespace omega::metrics {

class hierarchy_metrics {
 public:
  using region_of_fn = std::function<std::size_t(process_id)>;

  /// `regions` tier-0 regions; `region_of` maps any process the harness
  /// reports to its region index (must be < regions).
  hierarchy_metrics(std::size_t regions, region_of_fn region_of);

  /// Justified-demotion window, forwarded to every region tracker and used
  /// to decide whether a global outage was crash-caused (see group_metrics).
  void set_justification_window(duration window);

  /// Starts / stops metric accounting (forwarded to the region trackers).
  void begin(time_point start);
  void finish(time_point end);

  // ---- ground-truth lifecycle, routed to the pid's region tracker --------
  void on_join(time_point now, process_id pid);
  void on_leave(time_point now, process_id pid);
  void on_crash(time_point now, process_id pid);
  void on_recover(time_point now, process_id pid);

  /// `viewer`'s region-tier (tier 0) leader view changed.
  void on_region_view(time_point now, process_id viewer,
                      std::optional<process_id> leader);

  /// The agreed *global* leader changed (wire this to the global
  /// `group_metrics::set_agreement_observer`).
  void on_global_agreement(time_point now, std::optional<process_id> agreed);

  /// Forensics hook for injected network faults: `oracle(start, end)`
  /// answers "was an injected fault plausibly responsible for an agreement
  /// loss spanning [start, end]" (the harness derives it from the scenario's
  /// fault_script episode windows plus detection slack). When installed,
  /// demotions of a still-healthy leader inside a fault window are blamed
  /// on the fault instead of landing in the unattributed bucket.
  using fault_oracle_fn = std::function<bool(time_point, time_point)>;
  void set_fault_oracle(fault_oracle_fn oracle) {
    fault_oracle_ = std::move(oracle);
  }

  // ---- results ------------------------------------------------------------
  [[nodiscard]] std::size_t regions() const { return regions_.size(); }
  [[nodiscard]] const group_metrics& region(std::size_t r) const {
    return regions_.at(r);
  }

  /// Global-leader outages resolved by a promotion out of the crashed
  /// leader's own region (the regional failover bounded the vacancy).
  [[nodiscard]] std::uint64_t outages_blamed_regional() const {
    return blamed_regional_;
  }
  /// Global-leader outages resolved by an established candidate from a
  /// different region (pure global re-election).
  [[nodiscard]] std::uint64_t outages_blamed_global() const {
    return blamed_global_;
  }
  /// Global-leader outages of a still-healthy leader that the fault oracle
  /// attributed to an injected network fault (0 without an oracle).
  [[nodiscard]] std::uint64_t outages_blamed_fault() const {
    return blamed_fault_;
  }
  /// Agreement losses whose old leader neither crashed nor left and that no
  /// installed fault oracle claimed: in no blame bucket by construction.
  [[nodiscard]] std::uint64_t outages_unattributed() const {
    return unattributed_;
  }
  /// Outage durations (seconds) per blame bucket.
  [[nodiscard]] const running_stats& regional_blame_durations() const {
    return regional_durations_;
  }
  [[nodiscard]] const running_stats& global_blame_durations() const {
    return global_durations_;
  }

 private:
  void classify(time_point now, process_id old_leader, process_id new_leader,
                duration outage);
  [[nodiscard]] bool recently_departed(process_id pid, time_point now) const;

  std::vector<group_metrics> regions_;
  region_of_fn region_of_;
  duration justification_window_ = sec(2);
  bool accounting_ = false;

  std::optional<process_id> global_leader_;
  std::optional<process_id> outage_victim_;  // open global outage, if any
  time_point outage_start_{};
  /// Set at event time when the current global leader (or open-outage
  /// victim) crashes/leaves, so a slow re-election is still attributed to
  /// the crash even past the justification window (same rationale as
  /// group_metrics's pending_prev_invalidated_).
  bool outage_victim_departed_ = false;
  std::unordered_map<process_id, time_point> last_departure_;

  std::uint64_t blamed_regional_ = 0;
  std::uint64_t blamed_global_ = 0;
  std::uint64_t blamed_fault_ = 0;
  std::uint64_t unattributed_ = 0;
  running_stats regional_durations_;
  running_stats global_durations_;
  fault_oracle_fn fault_oracle_;
};

}  // namespace omega::metrics
