#include "metrics/hierarchy_metrics.hpp"

#include <stdexcept>
#include <utility>

namespace omega::metrics {

hierarchy_metrics::hierarchy_metrics(std::size_t regions, region_of_fn region_of)
    : regions_(regions), region_of_(std::move(region_of)) {
  if (regions == 0) throw std::invalid_argument("hierarchy_metrics: no regions");
  if (!region_of_) throw std::invalid_argument("hierarchy_metrics: no region map");
}

void hierarchy_metrics::set_justification_window(duration window) {
  justification_window_ = window;
  for (auto& r : regions_) r.set_justification_window(window);
}

void hierarchy_metrics::begin(time_point start) {
  accounting_ = true;
  for (auto& r : regions_) r.begin(start);
}

void hierarchy_metrics::finish(time_point end) {
  accounting_ = false;
  for (auto& r : regions_) r.finish(end);
}

void hierarchy_metrics::on_join(time_point now, process_id pid) {
  regions_.at(region_of_(pid)).on_join(now, pid);
}

void hierarchy_metrics::on_leave(time_point now, process_id pid) {
  last_departure_[pid] = now;
  if ((outage_victim_ && *outage_victim_ == pid) ||
      (!outage_victim_ && global_leader_ && *global_leader_ == pid)) {
    outage_victim_departed_ = true;
  }
  regions_.at(region_of_(pid)).on_leave(now, pid);
}

void hierarchy_metrics::on_crash(time_point now, process_id pid) {
  last_departure_[pid] = now;
  if ((outage_victim_ && *outage_victim_ == pid) ||
      (!outage_victim_ && global_leader_ && *global_leader_ == pid)) {
    outage_victim_departed_ = true;
  }
  regions_.at(region_of_(pid)).on_crash(now, pid);
}

void hierarchy_metrics::on_recover(time_point now, process_id pid) {
  regions_.at(region_of_(pid)).on_recover(now, pid);
}

void hierarchy_metrics::on_region_view(time_point now, process_id viewer,
                                       std::optional<process_id> leader) {
  regions_.at(region_of_(viewer)).on_leader_view(now, viewer, leader);
}

bool hierarchy_metrics::recently_departed(process_id pid, time_point now) const {
  auto it = last_departure_.find(pid);
  if (it == last_departure_.end()) return false;
  return now - it->second <= justification_window_;
}

void hierarchy_metrics::classify(time_point now, process_id old_leader,
                                 process_id new_leader, duration outage) {
  if (!accounting_) return;
  if (!outage_victim_departed_ && !recently_departed(old_leader, now)) {
    // The old leader is still healthy: a failover neither tier can be
    // blamed for. If an injected network fault overlapped the outage
    // window, blame the fault; otherwise it is an unattributed blip.
    if (fault_oracle_ && fault_oracle_(now - outage, now)) {
      ++blamed_fault_;
    } else {
      ++unattributed_;
    }
    return;
  }
  if (region_of_(new_leader) == region_of_(old_leader)) {
    // Resolved from inside the crashed leader's region: the global vacancy
    // waited on that region's failover + promotion chain.
    ++blamed_regional_;
    regional_durations_.add(to_seconds(outage));
  } else {
    // An established candidate from another region took over first.
    ++blamed_global_;
    global_durations_.add(to_seconds(outage));
  }
}

void hierarchy_metrics::on_global_agreement(time_point now,
                                            std::optional<process_id> agreed) {
  if (agreed == global_leader_) return;
  if (!agreed.has_value()) {
    // Agreement lost: open an outage against the leader that held it.
    if (global_leader_ && !outage_victim_) {
      outage_victim_ = global_leader_;
      outage_start_ = now;
    }
  } else {
    if (outage_victim_) {
      // Re-agreement on the same leader is a blip, not a resolved outage.
      if (*agreed != *outage_victim_) {
        classify(now, *outage_victim_, *agreed, now - outage_start_);
      }
      outage_victim_.reset();
    } else if (global_leader_ && *agreed != *global_leader_) {
      // Direct L -> L' switch with no leaderless gap (e.g. the crash was
      // detected and the successor adopted within one refresh).
      classify(now, *global_leader_, *agreed, duration{0});
    }
    outage_victim_departed_ = false;
  }
  global_leader_ = agreed;
}

}  // namespace omega::metrics
