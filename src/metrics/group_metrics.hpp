// Ground-truth QoS metrics of a leader-election service (paper §5).
//
// The experiment harness feeds this tracker two kinds of events:
//   * each process's current leader view (from the service's interrupt
//     notifications), and
//   * ground-truth process lifecycle events (crash / recover / join /
//     leave) from the churn injector.
//
// From these it computes the paper's three metrics:
//
//   P_leader — fraction of time the group *has a leader*: there is an alive
//              member L such that every alive member's view equals L.
//   T_r      — leader recovery time: from the crash of the agreed leader to
//              the next instant the group has a leader again (mean + 95% CI).
//   lambda_u — unjustified demotions per hour: the agreed leader changed
//              from L to L' != L although L neither crashed nor left.
//
// A transient loss of agreement that re-forms on the *same* leader is a
// blip, not a demotion. A demotion whose old leader crashed (or left)
// between losing and re-forming agreement is justified.
//
// One subtlety: a leader can crash and recover *faster than the FD
// detection bound*. Peers never notice; agreement transiently re-forms on
// the recovered process (same pid, new incarnation), and only then does the
// group switch to the stable successor — a switch caused by the real crash,
// but happening after the re-agreement blip. Classifying that switch by
// "is the old leader alive right now?" would mislabel it a mistake. We
// therefore treat a demotion as justified when the demoted process crashed
// (or left) within a configurable justification window (default 2 s —
// twice the paper's detection bound; set it from the scenario's QoS).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_map>

#include "common/ids.hpp"
#include "common/stats.hpp"
#include "common/time.hpp"

namespace omega::metrics {

class group_metrics {
 public:
  group_metrics() = default;

  /// Starts metric accounting at `start`. Lifecycle events before `begin`
  /// still shape the tracked state but accrue no metric time.
  void begin(time_point start);
  /// Stops accounting at `end` (idempotent).
  void finish(time_point end);

  // ---- events -------------------------------------------------------------
  void on_join(time_point now, process_id pid);
  void on_leave(time_point now, process_id pid);
  void on_crash(time_point now, process_id pid);
  /// Recovery restores aliveness; a following on_join makes it a member again.
  void on_recover(time_point now, process_id pid);
  /// `viewer`'s service announced a new leader view for the group.
  void on_leader_view(time_point now, process_id viewer,
                      std::optional<process_id> leader);

  // ---- results ------------------------------------------------------------
  [[nodiscard]] double leader_availability() const { return availability_.fraction(); }
  [[nodiscard]] duration observed() const { return availability_.total(); }
  /// T_r samples in seconds.
  [[nodiscard]] const running_stats& recovery_times() const { return recovery_; }
  [[nodiscard]] std::uint64_t unjustified_demotions() const { return unjustified_; }
  [[nodiscard]] std::uint64_t justified_changes() const { return justified_; }
  [[nodiscard]] double mistakes_per_hour() const;
  /// Durations of leaderless episodes, in seconds (extra diagnostic).
  [[nodiscard]] const running_stats& outage_durations() const { return outages_; }
  /// Number of times the *agreed leader* crashed during accounting.
  [[nodiscard]] std::uint64_t leader_crashes() const { return leader_crashes_; }
  /// Current agreed leader, if any (for tests).
  [[nodiscard]] std::optional<process_id> agreed_leader() const { return agreed_; }

  /// Invoked on every change of the agreed leader (including to "none") —
  /// used by demos/tools to narrate the ground truth as it evolves.
  using agreement_observer =
      std::function<void(time_point, std::optional<process_id>)>;
  void set_agreement_observer(agreement_observer obs) {
    agreement_observer_ = std::move(obs);
  }

  /// A demotion is justified when the demoted process crashed or left at
  /// most this long ago (see the header comment). Callers should size it
  /// from the FD QoS: twice the detection bound is comfortable.
  void set_justification_window(duration window) {
    justification_window_ = window;
  }

 private:
  struct process_state {
    bool alive = true;
    bool member = false;
    std::optional<process_id> view;
    /// Last time this process crashed or voluntarily left (for the
    /// justification window).
    std::optional<time_point> last_departure;
  };

  [[nodiscard]] bool recently_departed(process_id pid, time_point now) const;

  void refresh(time_point now);
  [[nodiscard]] std::optional<process_id> compute_agreement() const;

  std::unordered_map<process_id, process_state> processes_;
  time_fraction availability_;
  bool accounting_ = false;
  duration justification_window_ = sec(2);

  std::optional<process_id> agreed_;
  // Demotion bookkeeping: the leader whose agreement was most recently lost,
  // and whether it crashed/left since.
  std::optional<process_id> pending_prev_leader_;
  bool pending_prev_invalidated_ = false;
  time_point agreement_lost_at_{};

  // Open T_r sample (agreed leader crashed, waiting for new agreement).
  std::optional<time_point> open_recovery_start_;

  running_stats recovery_;
  running_stats outages_;
  std::uint64_t unjustified_ = 0;
  std::uint64_t justified_ = 0;
  std::uint64_t leader_crashes_ = 0;

  agreement_observer agreement_observer_;
};

}  // namespace omega::metrics
