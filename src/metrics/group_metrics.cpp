#include "metrics/group_metrics.hpp"

namespace omega::metrics {

void group_metrics::begin(time_point start) {
  accounting_ = true;
  agreed_ = compute_agreement();
  availability_.begin(start, agreed_.has_value());
}

void group_metrics::finish(time_point end) {
  if (!accounting_) return;
  availability_.finish(end);
  accounting_ = false;
}

void group_metrics::on_join(time_point now, process_id pid) {
  auto& st = processes_[pid];
  st.member = true;
  st.alive = true;
  st.view.reset();
  refresh(now);
}

void group_metrics::on_leave(time_point now, process_id pid) {
  auto& st = processes_[pid];
  st.member = false;
  st.view.reset();
  st.last_departure = now;
  refresh(now);
  // Invalidate after refresh(): if this leave itself broke the agreement,
  // refresh() is what records pid as the pending previous leader.
  if (pending_prev_leader_ && *pending_prev_leader_ == pid) {
    pending_prev_invalidated_ = true;  // a leaving leader's demotion is justified
  }
}

void group_metrics::on_crash(time_point now, process_id pid) {
  auto& st = processes_[pid];
  st.alive = false;
  st.member = false;  // the crash killed the process; a recovery re-joins
  st.view.reset();
  st.last_departure = now;
  if (agreed_ && *agreed_ == pid && accounting_) {
    // The commonly-agreed leader crashed: a T_r sample opens now.
    ++leader_crashes_;
    open_recovery_start_ = now;
  }
  refresh(now);
  // Invalidate after refresh(): if this crash itself broke the agreement,
  // refresh() is what records pid as the pending previous leader. Classifying
  // at event time (not at re-agreement time) keeps a crash-then-rejoin of the
  // old leader correctly counted as justified.
  if (pending_prev_leader_ && *pending_prev_leader_ == pid) {
    pending_prev_invalidated_ = true;
  }
}

void group_metrics::on_recover(time_point now, process_id pid) {
  auto& st = processes_[pid];
  st.alive = true;
  st.member = false;  // not a member again until its service re-joins
  st.view.reset();
  refresh(now);
}

void group_metrics::on_leader_view(time_point now, process_id viewer,
                                   std::optional<process_id> leader) {
  processes_[viewer].view = leader;
  refresh(now);
}

bool group_metrics::recently_departed(process_id pid, time_point now) const {
  auto it = processes_.find(pid);
  if (it == processes_.end() || !it->second.last_departure) return false;
  return now - *it->second.last_departure <= justification_window_;
}

std::optional<process_id> group_metrics::compute_agreement() const {
  // Agreement: at least one alive member, all alive members share one view,
  // and the viewed leader itself is an alive member.
  std::optional<process_id> common;
  bool any = false;
  for (const auto& [pid, st] : processes_) {
    if (!st.alive || !st.member) continue;
    any = true;
    if (!st.view.has_value()) return std::nullopt;
    if (!common) {
      common = st.view;
    } else if (*common != *st.view) {
      return std::nullopt;
    }
  }
  if (!any || !common) return std::nullopt;
  auto it = processes_.find(*common);
  if (it == processes_.end() || !it->second.alive || !it->second.member) {
    return std::nullopt;
  }
  return common;
}

void group_metrics::refresh(time_point now) {
  const std::optional<process_id> next = compute_agreement();
  if (next == agreed_) return;

  if (accounting_) availability_.update(now, next.has_value());

  if (agreed_ && !next) {
    // Agreement lost: remember who held it, to classify the eventual change.
    pending_prev_leader_ = agreed_;
    pending_prev_invalidated_ = false;
    agreement_lost_at_ = now;
  } else if (next) {
    const bool had_prev = pending_prev_leader_.has_value();
    const process_id prev =
        had_prev ? *pending_prev_leader_ : (agreed_ ? *agreed_ : process_id::invalid());
    const bool direct_switch = agreed_.has_value();  // L -> L' with no gap

    if (accounting_) {
      if (open_recovery_start_) {
        recovery_.add(to_seconds(now - *open_recovery_start_));
        open_recovery_start_.reset();
      }
      if (had_prev && !direct_switch) {
        outages_.add(to_seconds(now - agreement_lost_at_));
      }
      const process_id old_leader = direct_switch ? *agreed_ : prev;
      if (old_leader.valid() && old_leader != *next) {
        const bool old_invalidated =
            (direct_switch ? false : pending_prev_invalidated_) ||
            recently_departed(old_leader, now);
        if (!old_invalidated) {
          ++unjustified_;
        } else {
          ++justified_;
        }
      }
    }
    pending_prev_leader_.reset();
    pending_prev_invalidated_ = false;
  }
  agreed_ = next;
  if (agreement_observer_) agreement_observer_(now, agreed_);
}

double group_metrics::mistakes_per_hour() const {
  const double hours = to_seconds(availability_.total()) / 3600.0;
  if (hours <= 0.0) return 0.0;
  return static_cast<double>(unjustified_) / hours;
}

}  // namespace omega::metrics
