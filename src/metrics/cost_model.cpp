#include "metrics/cost_model.hpp"

namespace omega::metrics {

double cost_model::cpu_percent(const net::traffic_totals& t, duration elapsed) const {
  const double seconds = to_seconds(elapsed);
  if (seconds <= 0.0) return 0.0;
  const double datagrams =
      static_cast<double>(t.datagrams_sent + t.datagrams_received);
  const double kilobytes =
      static_cast<double>(t.bytes_sent + t.bytes_received) / 1024.0;
  const double busy_us = datagrams * us_per_datagram + kilobytes * us_per_kilobyte;
  return busy_us / (seconds * 1e6) * 100.0;
}

double cost_model::sent_kb_per_second(const net::traffic_totals& t,
                                      duration elapsed) {
  const double seconds = to_seconds(elapsed);
  if (seconds <= 0.0) return 0.0;
  return static_cast<double>(t.bytes_sent) / 1024.0 / seconds;
}

}  // namespace omega::metrics
