#include "membership/member_table.hpp"

#include <algorithm>

namespace omega::membership {

upsert_result member_table::upsert(process_id pid, node_id node, incarnation inc,
                                   bool candidate, time_point now,
                                   member_info* prior) {
  auto it = members_.find(pid);
  if (it == members_.end()) {
    const member_info m{pid, node, inc, candidate, now};
    members_.emplace(pid, m);
    insert_cache(m);
    if (min_bound_valid_) min_refresh_bound_ = std::min(min_refresh_bound_, now);
    ++version_;
    return upsert_result::joined;
  }
  member_info& m = it->second;
  if (prior != nullptr) *prior = m;
  if (inc < m.inc) return upsert_result::stale_ignored;
  if (inc > m.inc) {
    m = member_info{pid, node, inc, candidate, now};
    patch_cache(m);
    ++version_;
    return upsert_result::reincarnated;
  }
  m.last_refresh = std::max(m.last_refresh, now);
  if (m.candidate != candidate || m.node != node) {
    m.candidate = candidate;
    m.node = node;
    patch_cache(m);
    ++version_;
    return upsert_result::updated;
  }
  patch_cache(m);
  return upsert_result::unchanged;
}

std::optional<member_info> member_table::remove(process_id pid, incarnation inc) {
  auto it = members_.find(pid);
  if (it == members_.end()) return std::nullopt;
  if (inc < it->second.inc) return std::nullopt;  // stale LEAVE: ignore
  member_info removed = it->second;
  members_.erase(it);
  erase_cache(removed.pid);
  ++version_;
  return removed;
}

std::vector<member_info> member_table::remove_node(node_id node) {
  std::vector<member_info> removed;
  for (auto it = members_.begin(); it != members_.end();) {
    if (it->second.node == node) {
      removed.push_back(it->second);
      it = members_.erase(it);
    } else {
      ++it;
    }
  }
  if (!removed.empty()) {
    cache_valid_ = false;
    ++version_;
  }
  return removed;
}

std::vector<member_info> member_table::evict_stale(
    time_point cutoff, const std::function<bool(const member_info&)>& still_vouched) {
  std::vector<member_info> evicted;
  if (min_bound_valid_ && min_refresh_bound_ >= cutoff) return evicted;
  time_point min_refresh = time_point::max();
  for (auto it = members_.begin(); it != members_.end();) {
    const member_info& m = it->second;
    if (m.last_refresh < cutoff && !still_vouched(m)) {
      evicted.push_back(m);
      it = members_.erase(it);
    } else {
      min_refresh = std::min(min_refresh, m.last_refresh);
      ++it;
    }
  }
  min_refresh_bound_ = min_refresh;
  min_bound_valid_ = true;
  if (!evicted.empty()) {
    cache_valid_ = false;
    ++version_;
  }
  return evicted;
}

const member_info* member_table::find(process_id pid) const {
  auto it = members_.find(pid);
  return it != members_.end() ? &it->second : nullptr;
}

std::vector<member_info> member_table::members() const { return members_view(); }

const std::vector<member_info>& member_table::members_view() const {
  if (!cache_valid_) {
    sorted_cache_.clear();
    sorted_cache_.reserve(members_.size());
    for (const auto& [pid, info] : members_) sorted_cache_.push_back(info);
    std::sort(sorted_cache_.begin(), sorted_cache_.end(),
              [](const member_info& a, const member_info& b) { return a.pid < b.pid; });
    cache_valid_ = true;
  }
  return sorted_cache_;
}

void member_table::patch_cache(const member_info& m) {
  if (!cache_valid_) return;
  auto it = std::lower_bound(
      sorted_cache_.begin(), sorted_cache_.end(), m.pid,
      [](const member_info& a, process_id pid) { return a.pid < pid; });
  if (it != sorted_cache_.end() && it->pid == m.pid) *it = m;
}

void member_table::insert_cache(const member_info& m) {
  if (!cache_valid_) return;
  // In-place sorted insert: a full rebuild per join made cluster cold-start
  // quadratic per table (every discovery round re-sorted the growing
  // roster), which dominated 500-node bench settle time.
  auto it = std::lower_bound(
      sorted_cache_.begin(), sorted_cache_.end(), m.pid,
      [](const member_info& a, process_id pid) { return a.pid < pid; });
  sorted_cache_.insert(it, m);
}

void member_table::erase_cache(process_id pid) {
  if (!cache_valid_) return;
  auto it = std::lower_bound(
      sorted_cache_.begin(), sorted_cache_.end(), pid,
      [](const member_info& a, process_id p) { return a.pid < p; });
  if (it != sorted_cache_.end() && it->pid == pid) sorted_cache_.erase(it);
}

}  // namespace omega::membership
