#include "membership/member_table.hpp"

#include <algorithm>

namespace omega::membership {

upsert_result member_table::upsert(process_id pid, node_id node, incarnation inc,
                                   bool candidate, time_point now) {
  auto it = members_.find(pid);
  if (it == members_.end()) {
    members_.emplace(pid, member_info{pid, node, inc, candidate, now});
    return upsert_result::joined;
  }
  member_info& m = it->second;
  if (inc < m.inc) return upsert_result::stale_ignored;
  if (inc > m.inc) {
    m = member_info{pid, node, inc, candidate, now};
    return upsert_result::reincarnated;
  }
  m.last_refresh = std::max(m.last_refresh, now);
  if (m.candidate != candidate || m.node != node) {
    m.candidate = candidate;
    m.node = node;
    return upsert_result::updated;
  }
  return upsert_result::unchanged;
}

std::optional<member_info> member_table::remove(process_id pid, incarnation inc) {
  auto it = members_.find(pid);
  if (it == members_.end()) return std::nullopt;
  if (inc < it->second.inc) return std::nullopt;  // stale LEAVE: ignore
  member_info removed = it->second;
  members_.erase(it);
  return removed;
}

std::vector<member_info> member_table::remove_node(node_id node) {
  std::vector<member_info> removed;
  for (auto it = members_.begin(); it != members_.end();) {
    if (it->second.node == node) {
      removed.push_back(it->second);
      it = members_.erase(it);
    } else {
      ++it;
    }
  }
  return removed;
}

std::vector<member_info> member_table::evict_stale(
    time_point cutoff, const std::function<bool(const member_info&)>& still_vouched) {
  std::vector<member_info> evicted;
  for (auto it = members_.begin(); it != members_.end();) {
    const member_info& m = it->second;
    if (m.last_refresh < cutoff && !still_vouched(m)) {
      evicted.push_back(m);
      it = members_.erase(it);
    } else {
      ++it;
    }
  }
  return evicted;
}

const member_info* member_table::find(process_id pid) const {
  auto it = members_.find(pid);
  return it != members_.end() ? &it->second : nullptr;
}

std::vector<member_info> member_table::members() const {
  std::vector<member_info> out;
  out.reserve(members_.size());
  for (const auto& [pid, info] : members_) out.push_back(info);
  std::sort(out.begin(), out.end(),
            [](const member_info& a, const member_info& b) { return a.pid < b.pid; });
  return out;
}

}  // namespace omega::membership
