// Membership view of one group at one service instance (paper §4, "Group
// Maintenance" module).
//
// Tracks the set of processes currently believed to be in the group: who
// hosts them, their incarnation, whether they are leadership candidates and
// when we last heard membership evidence about them (HELLO or ALIVE).
// Entries from older incarnations are replaced; long-silent entries are
// evicted by the group-maintenance sweep once the failure detector no
// longer vouches for them.
#pragma once

#include <cstddef>
#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/ids.hpp"
#include "common/time.hpp"

namespace omega::membership {

struct member_info {
  process_id pid;
  node_id node;
  incarnation inc = 0;
  bool candidate = false;
  time_point last_refresh{};

  friend bool operator==(const member_info&, const member_info&) = default;
};

/// Result of an upsert, so callers know which notifications to emit.
enum class upsert_result {
  unchanged,      // already knew this (refreshed the timestamp only)
  joined,         // brand-new member
  reincarnated,   // same pid, higher incarnation (process recovered)
  updated,        // candidate flag or hosting node changed
  stale_ignored,  // evidence from an older incarnation; dropped
};

class member_table {
 public:
  /// Inserts or refreshes a member; see `upsert_result` for the outcome.
  upsert_result upsert(process_id pid, node_id node, incarnation inc,
                       bool candidate, time_point now);

  /// Removes a member if the evidence is not stale (incarnation >= stored).
  /// Returns the removed entry, if any.
  std::optional<member_info> remove(process_id pid, incarnation inc);

  /// Removes every member hosted on `node`; returns the removed entries.
  std::vector<member_info> remove_node(node_id node);

  /// Removes members whose last refresh is older than `cutoff` and for whom
  /// `still_vouched(member)` is false. Returns the evicted entries.
  std::vector<member_info> evict_stale(
      time_point cutoff, const std::function<bool(const member_info&)>& still_vouched);

  [[nodiscard]] const member_info* find(process_id pid) const;
  [[nodiscard]] std::vector<member_info> members() const;
  [[nodiscard]] std::size_t size() const { return members_.size(); }
  [[nodiscard]] bool empty() const { return members_.empty(); }

 private:
  std::unordered_map<process_id, member_info> members_;
};

}  // namespace omega::membership
