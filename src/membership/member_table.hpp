// Membership view of one group at one service instance (paper §4, "Group
// Maintenance" module).
//
// Tracks the set of processes currently believed to be in the group: who
// hosts them, their incarnation, whether they are leadership candidates and
// when we last heard membership evidence about them (HELLO or ALIVE).
// Entries from older incarnations are replaced; long-silent entries are
// evicted by the group-maintenance sweep once the failure detector no
// longer vouches for them.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/ids.hpp"
#include "common/time.hpp"

namespace omega::membership {

struct member_info {
  process_id pid;
  node_id node;
  incarnation inc = 0;
  bool candidate = false;
  time_point last_refresh{};

  friend bool operator==(const member_info&, const member_info&) = default;
};

/// Result of an upsert, so callers know which notifications to emit.
enum class upsert_result {
  unchanged,      // already knew this (refreshed the timestamp only)
  joined,         // brand-new member
  reincarnated,   // same pid, higher incarnation (process recovered)
  updated,        // candidate flag or hosting node changed
  stale_ignored,  // evidence from an older incarnation; dropped
};

class member_table {
 public:
  /// Inserts or refreshes a member; see `upsert_result` for the outcome.
  /// If `prior` is non-null, it receives the entry as it was before the
  /// call (unchanged when the result is `joined`) — saves the caller a
  /// second hash lookup on the per-ALIVE path.
  upsert_result upsert(process_id pid, node_id node, incarnation inc,
                       bool candidate, time_point now,
                       member_info* prior = nullptr);

  /// Removes a member if the evidence is not stale (incarnation >= stored).
  /// Returns the removed entry, if any.
  std::optional<member_info> remove(process_id pid, incarnation inc);

  /// Removes every member hosted on `node`; returns the removed entries.
  std::vector<member_info> remove_node(node_id node);

  /// Removes members whose last refresh is older than `cutoff` and for whom
  /// `still_vouched(member)` is false. Returns the evicted entries.
  std::vector<member_info> evict_stale(
      time_point cutoff, const std::function<bool(const member_info&)>& still_vouched);

  [[nodiscard]] const member_info* find(process_id pid) const;
  [[nodiscard]] std::vector<member_info> members() const;

  /// The members sorted by pid, as a reference into a cache that stays valid
  /// until the next membership *change* (join/leave/eviction). Timestamp
  /// refreshes — the once-per-ALIVE common case — patch the cache in place,
  /// so the election hot path reads the roster without copying or sorting
  /// it. The reference is invalidated by any non-const member call.
  [[nodiscard]] const std::vector<member_info>& members_view() const;

  [[nodiscard]] std::size_t size() const { return members_.size(); }
  [[nodiscard]] bool empty() const { return members_.empty(); }

  /// Monotonic counter bumped by every change to membership *content* —
  /// joins, leaves, evictions, reincarnations, candidate/host updates —
  /// but not by pure last_refresh timestamps. Electors use it to detect
  /// roster changes between evaluations without rescanning the roster.
  [[nodiscard]] std::uint64_t version() const { return version_; }

 private:
  /// Mirrors an updated entry into the sorted cache (pid unchanged, so the
  /// sort position is stable). No-op while the cache is invalid.
  void patch_cache(const member_info& m);
  /// Sorted-position insert / erase keeping the cache valid across single
  /// joins and removals; bulk removals (remove_node, evict_stale) just
  /// invalidate instead. No-ops while the cache is invalid.
  void insert_cache(const member_info& m);
  void erase_cache(process_id pid);

  std::unordered_map<process_id, member_info> members_;
  mutable std::vector<member_info> sorted_cache_;
  mutable bool cache_valid_ = false;
  std::uint64_t version_ = 0;

  /// Lower bound on every member's last_refresh, so the periodic eviction
  /// sweep can prove "nobody is stale" without scanning. Refreshes only
  /// raise timestamps (time is monotone) and removals only raise the true
  /// minimum, so the bound stays valid between full scans; inserts fold
  /// their timestamp in. evict_stale recomputes it exactly when it does
  /// scan. A conservative (low) bound only costs an unnecessary scan.
  time_point min_refresh_bound_{};
  bool min_bound_valid_ = false;
};

}  // namespace omega::membership
