// Group Maintenance module (paper §4, Figure 2).
//
// Builds and maintains, for every group the local node participates in,
// (a) the set of processes currently in the group and (b) enough liveness
// bookkeeping for the service to derive the "active" subset. The protocol:
//
//  * on join, the node broadcasts HELLO (reply_requested) to the cluster
//    roster; peers answer with a unicast HELLO_ACK membership snapshot;
//  * HELLOs are re-broadcast periodically (anti-entropy) so lost packets
//    and recovered nodes converge;
//  * ALIVE messages implicitly refresh / create membership (a heartbeat
//    carrying a group payload is proof of membership);
//  * LEAVE removes a member immediately; crashed members are evicted after
//    an eviction timeout once the failure detector stops vouching for them.
//
// This module is transport-agnostic: the owner injects send callbacks and
// a "does the FD still trust this member" predicate.
#pragma once

#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/executor.hpp"
#include "common/ids.hpp"
#include "membership/member_table.hpp"
#include "proto/wire.hpp"

namespace omega::membership {

class group_maintenance {
 public:
  struct options {
    /// Period of the anti-entropy HELLO broadcast and eviction sweep.
    duration hello_interval = sec(2);
    /// Members silent (no HELLO/ALIVE) for this long are evicted unless the
    /// failure detector still trusts their node.
    duration eviction_after = sec(30);
  };

  struct events {
    /// A member joined (or was discovered) in `group`.
    std::function<void(group_id, const member_info&)> on_member_joined;
    /// A member left, was evicted, or its old incarnation was replaced.
    std::function<void(group_id, const member_info&)> on_member_removed;
    /// Convenience signal after `on_member_removed` when the same pid
    /// immediately re-joined with a newer incarnation.
    std::function<void(group_id, const member_info&)> on_member_reincarnated;
  };

  /// `broadcast` sends to every roster node except self; `unicast` to one.
  using broadcast_fn = std::function<void(const proto::wire_message&)>;
  using unicast_fn = std::function<void(node_id, const proto::wire_message&)>;
  /// Asks the FD whether `member`'s node is currently trusted in `group`.
  using vouch_fn = std::function<bool(group_id, const member_info&)>;

  group_maintenance(clock_source& clock, timer_service& timers, node_id self,
                    incarnation inc, options opts);
  ~group_maintenance();

  group_maintenance(const group_maintenance&) = delete;
  group_maintenance& operator=(const group_maintenance&) = delete;

  void set_broadcast(broadcast_fn fn) { broadcast_ = std::move(fn); }
  void set_unicast(unicast_fn fn) { unicast_ = std::move(fn); }
  void set_vouch(vouch_fn fn) { vouch_ = std::move(fn); }
  void set_events(events ev) { events_ = std::move(ev); }

  /// Local process joins a group: recorded and announced immediately.
  void local_join(group_id group, process_id pid, bool candidate);

  /// Local process leaves: LEAVE is broadcast, membership updated.
  void local_leave(group_id group, process_id pid);

  // ---- inbound protocol events (wired by the service) -------------------
  void on_hello(const proto::hello_msg& msg, time_point now);
  void on_hello_ack(const proto::hello_ack_msg& msg, time_point now);
  void on_leave(const proto::leave_msg& msg);
  /// ALIVE as implicit membership evidence for each carried group payload.
  void on_alive(const proto::alive_msg& msg, time_point now);

  /// Starts/stops the periodic HELLO + eviction sweep.
  void start();
  void stop();

  /// Membership of `group` (empty table if unknown group).
  [[nodiscard]] const member_table& table(group_id group) const;
  [[nodiscard]] std::vector<group_id> groups() const;
  /// The local member entry for `group`, if the local node joined it.
  [[nodiscard]] std::optional<member_info> local_member(group_id group) const;

 private:
  struct group_state {
    member_table table;
    std::optional<member_info> local;  // this node's process in the group
  };

  void sweep();
  void broadcast_hello(bool reply_requested);
  [[nodiscard]] proto::hello_msg build_hello(bool reply_requested) const;
  [[nodiscard]] proto::hello_ack_msg build_snapshot() const;
  void apply_upsert(group_id group, process_id pid, node_id node, incarnation inc,
                    bool candidate, time_point now);

  clock_source& clock_;
  scoped_timer sweep_timer_;
  node_id self_;
  incarnation inc_;
  options opts_;
  broadcast_fn broadcast_;
  unicast_fn unicast_;
  vouch_fn vouch_;
  events events_;
  std::unordered_map<group_id, group_state> groups_;
  bool running_ = false;
};

}  // namespace omega::membership
