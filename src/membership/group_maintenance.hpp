// Group Maintenance module (paper §4, Figure 2).
//
// Builds and maintains, for every group the local node participates in,
// (a) the set of processes currently in the group and (b) enough liveness
// bookkeeping for the service to derive the "active" subset. The protocol:
//
//  * on join, the node broadcasts HELLO (reply_requested) to the cluster
//    roster; peers answer with a unicast HELLO_ACK membership snapshot;
//  * HELLOs are re-sent periodically (anti-entropy) so lost packets and
//    recovered nodes converge — cluster-wide by default, or scoped to the
//    per-group rosters under `hello_fanout::roster` (see below);
//  * ALIVE messages implicitly refresh / create membership (a heartbeat
//    carrying a group payload is proof of membership);
//  * LEAVE removes a member immediately; crashed members are evicted after
//    an eviction timeout once the failure detector stops vouching for them.
//
// This module is transport-agnostic: the owner injects send callbacks and
// a "does the FD still trust this member" predicate.
#pragma once

#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/executor.hpp"
#include "common/ids.hpp"
#include "membership/member_table.hpp"
#include "obs/sink.hpp"
#include "proto/wire.hpp"

namespace omega::membership {

/// Destination policy of the periodic HELLO anti-entropy (and LEAVE).
///
/// `all` reproduces the paper's deployment: every announcement goes to the
/// whole installation roster. That is the right default for the flat
/// 12-workstation clusters of the evaluation, but it is the one remaining
/// all-to-all path in a hierarchical deployment, where a node shares groups
/// with a handful of peers yet still gossips to all n of them.
///
/// `roster` scopes dissemination to the peers that can use it:
///   * a *candidate* member's entry for a group goes to every node hosting
///     a member of that group (the group roster) — candidates must stay in
///     every member's view to be electable and to fan ALIVEs out;
///   * a *listener* (non-candidate) entry goes only to the nodes hosting
///     the group's candidates — they are the ones that must keep the
///     listener in their tables (the leader sends it ALIVEs; the sweep
///     would otherwise evict it). Fellow listeners have no use for it.
///   * the initial join HELLO (reply_requested) still goes cluster-wide:
///     it is the discovery bootstrap that seeds the rosters in the first
///     place, and it is O(roster) once per join, not per interval;
///   * each sweep additionally probes `anti_entropy_probes` roster nodes
///     outside the scoped destination set (round-robin, reply_requested),
///     healing the rare gap where a join HELLO was lost *and* every
///     snapshot holder crashed.
enum class hello_fanout : std::uint8_t {
  all,     // cluster-wide broadcast (seed behaviour, flat deployments)
  roster,  // per-group scoped send (hierarchical deployments)
};

class group_maintenance {
 public:
  /// Bounded snapshot-solicitation set of a scoped join (known peers
  /// first, roster rotation as fallback): O(1) HELLO_ACKs per join
  /// instead of one from every roster node.
  static constexpr std::size_t kSnapshotFanout = 3;

  struct options {
    /// Period of the anti-entropy HELLO broadcast and eviction sweep.
    duration hello_interval = sec(2);
    /// Members silent (no HELLO/ALIVE) for this long are evicted unless the
    /// failure detector still trusts their node.
    duration eviction_after = sec(30);
    /// Destination policy of HELLO/LEAVE dissemination (see `hello_fanout`).
    hello_fanout fanout = hello_fanout::all;
    /// Extra discovery probes per sweep in `roster` mode (see above).
    std::size_t anti_entropy_probes = 1;
  };

  struct events {
    /// A member joined (or was discovered) in `group`.
    std::function<void(group_id, const member_info&)> on_member_joined;
    /// A member left, was evicted, or its old incarnation was replaced.
    std::function<void(group_id, const member_info&)> on_member_removed;
    /// Convenience signal after `on_member_removed` when the same pid
    /// immediately re-joined with a newer incarnation.
    std::function<void(group_id, const member_info&)> on_member_reincarnated;
  };

  /// `broadcast` sends to every roster node except self; `unicast` to one;
  /// `multicast` to an explicit destination set (the scoped path).
  using broadcast_fn = std::function<void(const proto::wire_message&)>;
  using unicast_fn = std::function<void(node_id, const proto::wire_message&)>;
  using multicast_fn =
      std::function<void(const std::vector<node_id>&, const proto::wire_message&)>;
  /// Asks the FD whether `member`'s node is currently trusted in `group`.
  using vouch_fn = std::function<bool(group_id, const member_info&)>;

  group_maintenance(clock_source& clock, timer_service& timers, node_id self,
                    incarnation inc, options opts);
  ~group_maintenance();

  group_maintenance(const group_maintenance&) = delete;
  group_maintenance& operator=(const group_maintenance&) = delete;

  void set_broadcast(broadcast_fn fn) { broadcast_ = std::move(fn); }
  void set_unicast(unicast_fn fn) { unicast_ = std::move(fn); }
  void set_multicast(multicast_fn fn) { multicast_ = std::move(fn); }
  void set_vouch(vouch_fn fn) { vouch_ = std::move(fn); }
  void set_events(events ev) { events_ = std::move(ev); }
  /// Attaches the observability sink; membership churn (join, leave,
  /// eviction) emits trace events. Null disables.
  void set_sink(obs::sink* sink) { sink_ = sink; }

  /// Installation roster used by the `roster`-mode discovery probes. Without
  /// it (or without a multicast hook) the module falls back to `all`.
  void set_cluster_roster(std::vector<node_id> roster);

  /// Switches the dissemination policy at runtime (takes effect from the
  /// next emission; the hierarchy coordinator requests `roster` scoping).
  void set_fanout(hello_fanout fanout) { opts_.fanout = fanout; }
  [[nodiscard]] hello_fanout fanout() const { return opts_.fanout; }

  /// Local process joins a group: recorded and announced immediately.
  void local_join(group_id group, process_id pid, bool candidate);

  /// Local process leaves: LEAVE is broadcast, membership updated.
  void local_leave(group_id group, process_id pid);

  /// Changes the local member's candidacy flag in place and announces it —
  /// the membership half of a promotion/demotion that keeps the group view
  /// (a leave + re-join resets every peer's state and the LEAVE/JOIN
  /// datagrams can arrive reordered). Becoming a candidate in roster mode
  /// re-announces cluster-wide and re-solicits bounded snapshots: the
  /// scoped listener traffic may have let this node's roster view age out,
  /// and a candidate must know the whole roster to lead it.
  void update_local_candidacy(group_id group, bool candidate);

  // ---- inbound protocol events (wired by the service) -------------------
  void on_hello(const proto::hello_msg& msg, time_point now);
  void on_hello_ack(const proto::hello_ack_msg& msg, time_point now);
  void on_leave(const proto::leave_msg& msg);
  /// ALIVE as implicit membership evidence for each carried group payload.
  void on_alive(const proto::alive_msg& msg, time_point now);

  /// Starts/stops the periodic HELLO + eviction sweep.
  void start();
  void stop();

  /// Membership of `group` (empty table if unknown group).
  [[nodiscard]] const member_table& table(group_id group) const;
  [[nodiscard]] std::vector<group_id> groups() const;
  /// The local member entry for `group`, if the local node joined it.
  [[nodiscard]] std::optional<member_info> local_member(group_id group) const;

  /// Nodes hosting members of `group`, self excluded (the group roster the
  /// scoped dissemination targets; empty for unknown groups).
  [[nodiscard]] std::vector<node_id> group_roster(group_id group) const;

 private:
  struct group_state {
    member_table table;
    std::optional<member_info> local;  // this node's process in the group
  };

  void sweep();
  void broadcast_hello(bool reply_requested);
  /// The `roster`-mode anti-entropy emission: per-destination entry sets,
  /// bucketed into one multicast per distinct set, plus discovery probes.
  void emit_scoped_hello();
  /// Per-group scoped destination set (candidate -> roster, listener ->
  /// candidate hosts); empty if the group is unknown or has no local member.
  [[nodiscard]] std::vector<node_id> scoped_destinations(
      const group_state& state) const;
  [[nodiscard]] bool scoped_mode() const {
    return opts_.fanout == hello_fanout::roster && multicast_ != nullptr;
  }
  /// The scoped join/promotion bootstrap: cluster-wide announce plus a
  /// bounded snapshot solicitation targeting `group`'s peers first.
  void scoped_announce(group_id group);
  [[nodiscard]] std::vector<node_id> snapshot_targets(group_id preferred);
  [[nodiscard]] proto::hello_msg build_hello(bool reply_requested) const;
  /// Membership snapshot. With a `request` (roster mode) it is scoped to
  /// the groups the requester announced: entries for groups it does not
  /// participate in are dead weight (its apply path drops them), and the
  /// full known world is O(cluster) large. Null = the seed's full
  /// snapshot (`all` fanout stays byte-identical).
  [[nodiscard]] proto::hello_ack_msg build_snapshot(
      const proto::hello_msg* request) const;
  void apply_upsert(group_id group, process_id pid, node_id node, incarnation inc,
                    bool candidate, time_point now);
  void note_membership(obs::event_kind kind, group_id group, process_id pid,
                       node_id node);

  clock_source& clock_;
  scoped_timer sweep_timer_;
  node_id self_;
  incarnation inc_;
  options opts_;
  broadcast_fn broadcast_;
  unicast_fn unicast_;
  multicast_fn multicast_;
  vouch_fn vouch_;
  events events_;
  obs::sink* sink_ = nullptr;
  std::unordered_map<group_id, group_state> groups_;
  std::vector<node_id> cluster_roster_;
  std::size_t probe_cursor_ = 0;  // round-robin position in cluster_roster_
  bool running_ = false;
};

}  // namespace omega::membership
