#include "membership/group_maintenance.hpp"

#include <utility>

namespace omega::membership {

namespace {
const member_table empty_table{};
}  // namespace

group_maintenance::group_maintenance(clock_source& clock, timer_service& timers,
                                     node_id self, incarnation inc, options opts)
    : clock_(clock), sweep_timer_(timers), self_(self), inc_(inc), opts_(opts) {}

group_maintenance::~group_maintenance() { stop(); }

void group_maintenance::local_join(group_id group, process_id pid, bool candidate) {
  const time_point now = clock_.now();
  auto& state = groups_[group];
  state.local = member_info{pid, self_, inc_, candidate, now};
  apply_upsert(group, pid, self_, inc_, candidate, now);
  broadcast_hello(/*reply_requested=*/true);
}

void group_maintenance::local_leave(group_id group, process_id pid) {
  auto it = groups_.find(group);
  if (it == groups_.end()) return;
  if (auto removed = it->second.table.remove(pid, inc_)) {
    if (events_.on_member_removed) events_.on_member_removed(group, *removed);
  }
  if (broadcast_) {
    broadcast_(proto::leave_msg{self_, inc_, group, pid});
  }
  if (it->second.local && it->second.local->pid == pid) {
    // The local process was the node's member in this group: the node no
    // longer participates at all, so the whole group view is dropped.
    groups_.erase(it);
  }
}

void group_maintenance::apply_upsert(group_id group, process_id pid, node_id node,
                                     incarnation inc, bool candidate,
                                     time_point now) {
  auto it = groups_.find(group);
  if (it == groups_.end()) return;  // not a group we participate in
  member_table& table = it->second.table;
  const member_info* before = table.find(pid);
  const member_info prior = before ? *before : member_info{};
  switch (table.upsert(pid, node, inc, candidate, now)) {
    case upsert_result::joined:
      if (events_.on_member_joined) events_.on_member_joined(group, *table.find(pid));
      break;
    case upsert_result::reincarnated:
      if (events_.on_member_removed) events_.on_member_removed(group, prior);
      if (events_.on_member_reincarnated) {
        events_.on_member_reincarnated(group, *table.find(pid));
      }
      if (events_.on_member_joined) events_.on_member_joined(group, *table.find(pid));
      break;
    case upsert_result::updated:
    case upsert_result::unchanged:
    case upsert_result::stale_ignored:
      break;
  }
}

void group_maintenance::on_hello(const proto::hello_msg& msg, time_point now) {
  for (const auto& entry : msg.entries) {
    apply_upsert(entry.group, entry.pid, msg.from, msg.inc, entry.candidate, now);
  }
  if (msg.reply_requested && unicast_) {
    unicast_(msg.from, build_snapshot());
  }
}

void group_maintenance::on_hello_ack(const proto::hello_ack_msg& msg, time_point now) {
  for (const auto& entry : msg.entries) {
    apply_upsert(entry.group, entry.pid, entry.node, entry.inc, entry.candidate, now);
  }
}

void group_maintenance::on_leave(const proto::leave_msg& msg) {
  auto it = groups_.find(msg.group);
  if (it == groups_.end()) return;
  if (auto removed = it->second.table.remove(msg.pid, msg.inc)) {
    if (events_.on_member_removed) events_.on_member_removed(msg.group, *removed);
  }
}

void group_maintenance::on_alive(const proto::alive_msg& msg, time_point now) {
  for (const auto& payload : msg.groups) {
    apply_upsert(payload.group, payload.pid, msg.from, msg.inc, payload.candidate, now);
  }
}

void group_maintenance::start() {
  if (running_) return;
  running_ = true;
  sweep_timer_.arm_after(opts_.hello_interval, [this] { sweep(); });
}

void group_maintenance::stop() {
  running_ = false;
  sweep_timer_.cancel();
}

void group_maintenance::sweep() {
  broadcast_hello(/*reply_requested=*/false);
  const time_point cutoff = clock_.now() - opts_.eviction_after;
  // Iterate over a snapshot of the group ids: an eviction event may re-enter
  // local_join / local_leave (the hierarchy coordinator promotes and demotes
  // from leader callbacks), and a map insert could rehash under a live
  // iterator.
  std::vector<group_id> ids;
  ids.reserve(groups_.size());
  for (const auto& [group, state] : groups_) ids.push_back(group);
  for (const group_id g : ids) {
    auto it = groups_.find(g);
    if (it == groups_.end()) continue;  // left during an earlier event
    auto evicted =
        it->second.table.evict_stale(cutoff, [&](const member_info& m) {
          if (m.node == self_) return true;  // never evict local members
          return vouch_ ? vouch_(g, m) : false;
        });
    for (const member_info& m : evicted) {
      if (events_.on_member_removed) events_.on_member_removed(g, m);
    }
  }
  if (running_) {
    sweep_timer_.arm_after(opts_.hello_interval, [this] { sweep(); });
  }
}

void group_maintenance::broadcast_hello(bool reply_requested) {
  if (!broadcast_) return;
  proto::hello_msg hello = build_hello(reply_requested);
  if (hello.entries.empty()) return;
  broadcast_(hello);
}

proto::hello_msg group_maintenance::build_hello(bool reply_requested) const {
  proto::hello_msg msg;
  msg.from = self_;
  msg.inc = inc_;
  msg.reply_requested = reply_requested;
  for (const auto& [group, state] : groups_) {
    if (!state.local) continue;
    msg.entries.push_back({group, state.local->pid, state.local->candidate});
  }
  return msg;
}

proto::hello_ack_msg group_maintenance::build_snapshot() const {
  proto::hello_ack_msg msg;
  msg.from = self_;
  msg.inc = inc_;
  for (const auto& [group, state] : groups_) {
    for (const member_info& m : state.table.members()) {
      msg.entries.push_back({group, m.pid, m.node, m.inc, m.candidate});
    }
  }
  return msg;
}

const member_table& group_maintenance::table(group_id group) const {
  auto it = groups_.find(group);
  return it != groups_.end() ? it->second.table : empty_table;
}

std::vector<group_id> group_maintenance::groups() const {
  std::vector<group_id> out;
  out.reserve(groups_.size());
  for (const auto& [group, state] : groups_) out.push_back(group);
  return out;
}

std::optional<member_info> group_maintenance::local_member(group_id group) const {
  auto it = groups_.find(group);
  return it != groups_.end() ? it->second.local : std::nullopt;
}

}  // namespace omega::membership
