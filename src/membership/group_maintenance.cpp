#include "membership/group_maintenance.hpp"

#include <algorithm>
#include <unordered_set>
#include <utility>

namespace omega::membership {

namespace {
const member_table empty_table{};
}  // namespace

group_maintenance::group_maintenance(clock_source& clock, timer_service& timers,
                                     node_id self, incarnation inc, options opts)
    : clock_(clock), sweep_timer_(timers), self_(self), inc_(inc), opts_(opts) {}

group_maintenance::~group_maintenance() { stop(); }

void group_maintenance::local_join(group_id group, process_id pid, bool candidate) {
  const time_point now = clock_.now();
  auto& state = groups_[group];
  state.local = member_info{pid, self_, inc_, candidate, now};
  apply_upsert(group, pid, self_, inc_, candidate, now);
  if (!scoped_mode()) {
    broadcast_hello(/*reply_requested=*/true);
    return;
  }
  scoped_announce(group);
}

void group_maintenance::scoped_announce(group_id group) {
  // Scoped bootstrap: the announcement still goes cluster-wide (discovery
  // must reach peers we do not know yet), but soliciting a snapshot from
  // every roster node would cost O(n) ACKs of O(n) entries on every join —
  // and candidacy changes re-announce, so hierarchies pay it on each
  // promotion. A bounded solicitation set plus the periodic probes
  // converges the same view for O(1) ACKs.
  if (broadcast_) {
    proto::hello_msg hello = build_hello(/*reply_requested=*/false);
    if (!hello.entries.empty()) broadcast_(hello);
  }
  const std::vector<node_id> targets = snapshot_targets(group);
  if (!targets.empty()) {
    proto::hello_msg ask = build_hello(/*reply_requested=*/true);
    if (!ask.entries.empty()) multicast_(targets, ask);
  }
}

std::vector<node_id> group_maintenance::snapshot_targets(group_id preferred) {
  // Prefer peers of the group being (re)announced — only they can answer
  // with entries about it — then any tracked peer (warm snapshots for the
  // other groups), then roster rotation for the very first join.
  std::vector<node_id> targets;
  std::unordered_set<node_id> seen;
  const auto take_from = [&](const member_table& table) {
    for (const member_info& m : table.members_view()) {
      if (m.node == self_ || !seen.insert(m.node).second) continue;
      targets.push_back(m.node);
      if (targets.size() >= kSnapshotFanout) return true;
    }
    return false;
  };
  if (auto it = groups_.find(preferred); it != groups_.end()) {
    if (take_from(it->second.table)) return targets;
  }
  for (const auto& [group, state] : groups_) {
    if (group == preferred) continue;
    if (take_from(state.table)) return targets;
  }
  for (std::size_t step = 0;
       step < cluster_roster_.size() && targets.size() < kSnapshotFanout;
       ++step) {
    const node_id candidate =
        cluster_roster_[probe_cursor_++ % cluster_roster_.size()];
    if (candidate == self_ || seen.count(candidate) > 0) continue;
    seen.insert(candidate);
    targets.push_back(candidate);
  }
  if (!cluster_roster_.empty()) probe_cursor_ %= cluster_roster_.size();
  return targets;
}

void group_maintenance::update_local_candidacy(group_id group, bool candidate) {
  auto it = groups_.find(group);
  if (it == groups_.end() || !it->second.local) return;
  if (it->second.local->candidate == candidate) return;
  const time_point now = clock_.now();
  it->second.local->candidate = candidate;
  apply_upsert(group, it->second.local->pid, self_, inc_, candidate, now);
  if (scoped_mode() && candidate) {
    // Promotion: every group member must (re)learn us as a candidate — the
    // listeners' scoped refreshes gate on the flag — and we must re-learn
    // the full roster in case listener entries aged out of our table while
    // we listened. Same bootstrap as a scoped join.
    scoped_announce(group);
    return;
  }
  // Demotion (or `all` fanout): the regular emission path carries the new
  // flag — scoped to whoever needs it, or cluster-wide respectively.
  broadcast_hello(/*reply_requested=*/false);
}

void group_maintenance::local_leave(group_id group, process_id pid) {
  auto it = groups_.find(group);
  if (it == groups_.end()) return;
  // Capture the destination set before the removal empties it: in roster
  // mode the LEAVE goes exactly to the nodes that track this group, so a
  // node leaving one group stops gossiping to disjoint-group peers.
  std::vector<node_id> scoped_dsts;
  if (scoped_mode()) scoped_dsts = group_roster(group);
  if (auto removed = it->second.table.remove(pid, inc_)) {
    note_membership(obs::event_kind::member_leave, group, pid, self_);
    if (events_.on_member_removed) events_.on_member_removed(group, *removed);
  }
  const proto::leave_msg leave{self_, inc_, group, pid};
  if (scoped_mode()) {
    if (!scoped_dsts.empty()) multicast_(scoped_dsts, leave);
  } else if (broadcast_) {
    broadcast_(leave);
  }
  if (it->second.local && it->second.local->pid == pid) {
    // The local process was the node's member in this group: the node no
    // longer participates at all, so the whole group view is dropped.
    groups_.erase(it);
  }
}

void group_maintenance::note_membership(obs::event_kind kind, group_id group,
                                        process_id pid, node_id node) {
  if (!sink_) return;
  obs::trace_event ev;
  ev.kind = kind;
  ev.at = clock_.now();
  ev.group = group;
  ev.subject = pid;
  ev.peer = node;
  sink_->record(ev);
}

void group_maintenance::apply_upsert(group_id group, process_id pid, node_id node,
                                     incarnation inc, bool candidate,
                                     time_point now) {
  auto it = groups_.find(group);
  if (it == groups_.end()) return;  // not a group we participate in
  member_table& table = it->second.table;
  member_info prior{};
  switch (table.upsert(pid, node, inc, candidate, now, &prior)) {
    case upsert_result::joined:
      note_membership(obs::event_kind::member_join, group, pid, node);
      if (events_.on_member_joined) events_.on_member_joined(group, *table.find(pid));
      break;
    case upsert_result::reincarnated:
      note_membership(obs::event_kind::member_join, group, pid, node);
      if (events_.on_member_removed) events_.on_member_removed(group, prior);
      if (events_.on_member_reincarnated) {
        events_.on_member_reincarnated(group, *table.find(pid));
      }
      if (events_.on_member_joined) events_.on_member_joined(group, *table.find(pid));
      break;
    case upsert_result::updated:
    case upsert_result::unchanged:
    case upsert_result::stale_ignored:
      break;
  }
}

void group_maintenance::on_hello(const proto::hello_msg& msg, time_point now) {
  for (const auto& entry : msg.entries) {
    apply_upsert(entry.group, entry.pid, msg.from, msg.inc, entry.candidate, now);
  }
  if (msg.reply_requested && unicast_) {
    if (scoped_mode()) {
      proto::hello_ack_msg snapshot = build_snapshot(&msg);
      if (!snapshot.entries.empty()) unicast_(msg.from, snapshot);
    } else {
      // Seed behaviour (byte-identical under `all` fanout): the full
      // known world, sent unconditionally.
      unicast_(msg.from, build_snapshot(nullptr));
    }
  }
}

void group_maintenance::on_hello_ack(const proto::hello_ack_msg& msg, time_point now) {
  for (const auto& entry : msg.entries) {
    apply_upsert(entry.group, entry.pid, entry.node, entry.inc, entry.candidate, now);
  }
}

void group_maintenance::on_leave(const proto::leave_msg& msg) {
  auto it = groups_.find(msg.group);
  if (it == groups_.end()) return;
  if (auto removed = it->second.table.remove(msg.pid, msg.inc)) {
    note_membership(obs::event_kind::member_leave, msg.group, msg.pid, msg.from);
    if (events_.on_member_removed) events_.on_member_removed(msg.group, *removed);
  }
}

void group_maintenance::on_alive(const proto::alive_msg& msg, time_point now) {
  for (const auto& payload : msg.groups) {
    apply_upsert(payload.group, payload.pid, msg.from, msg.inc, payload.candidate, now);
  }
}

void group_maintenance::start() {
  if (running_) return;
  running_ = true;
  sweep_timer_.arm_after(opts_.hello_interval, [this] { sweep(); });
}

void group_maintenance::stop() {
  running_ = false;
  sweep_timer_.cancel();
}

void group_maintenance::sweep() {
  // Periodic anti-entropy is a spontaneous causal root: the HELLO goes out
  // unstamped and evictions start their own chains.
  obs::sink::activation causal_scope(sink_);
  broadcast_hello(/*reply_requested=*/false);
  const time_point cutoff = clock_.now() - opts_.eviction_after;
  // Iterate over a snapshot of the group ids: an eviction event may re-enter
  // local_join / local_leave (the hierarchy coordinator promotes and demotes
  // from leader callbacks), and a map insert could rehash under a live
  // iterator.
  std::vector<group_id> ids;
  ids.reserve(groups_.size());
  for (const auto& [group, state] : groups_) ids.push_back(group);
  for (const group_id g : ids) {
    auto it = groups_.find(g);
    if (it == groups_.end()) continue;  // left during an earlier event
    auto evicted =
        it->second.table.evict_stale(cutoff, [&](const member_info& m) {
          if (m.node == self_) return true;  // never evict local members
          return vouch_ ? vouch_(g, m) : false;
        });
    for (const member_info& m : evicted) {
      note_membership(obs::event_kind::member_evicted, g, m.pid, m.node);
      if (events_.on_member_removed) events_.on_member_removed(g, m);
    }
  }
  if (running_) {
    sweep_timer_.arm_after(opts_.hello_interval, [this] { sweep(); });
  }
}

void group_maintenance::broadcast_hello(bool reply_requested) {
  // The initial join HELLO (reply_requested) always goes cluster-wide: it
  // is the discovery bootstrap that seeds the group rosters the scoped
  // path later relies on. Only the periodic anti-entropy is scoped.
  if (!reply_requested && scoped_mode()) {
    emit_scoped_hello();
    return;
  }
  if (!broadcast_) return;
  proto::hello_msg hello = build_hello(reply_requested);
  if (hello.entries.empty()) return;
  broadcast_(hello);
}

std::vector<node_id> group_maintenance::scoped_destinations(
    const group_state& state) const {
  std::vector<node_id> dsts;
  if (!state.local) return dsts;
  const bool local_is_candidate = state.local->candidate;
  std::unordered_set<node_id> seen;
  for (const member_info& m : state.table.members_view()) {
    if (m.node == self_) continue;
    // Candidates announce to the whole group roster; listeners only to the
    // candidate hosts (the nodes whose tables must keep vouching for them).
    if ((local_is_candidate || m.candidate) && seen.insert(m.node).second) {
      dsts.push_back(m.node);
    }
  }
  return dsts;
}

void group_maintenance::emit_scoped_hello() {
  // Build the per-destination entry sets, then bucket destinations that
  // share one (typically: full-roster groups collapse into a single
  // multicast) so the transport can fan each encoding out once.
  std::vector<node_id> dst_order;                       // first-seen order
  std::unordered_map<node_id, std::vector<proto::hello_msg::entry>> per_dst;
  for (const auto& [group, state] : groups_) {
    if (!state.local) continue;
    const proto::hello_msg::entry entry{group, state.local->pid,
                                        state.local->candidate};
    for (const node_id dst : scoped_destinations(state)) {
      auto [it, inserted] = per_dst.try_emplace(dst);
      if (inserted) dst_order.push_back(dst);
      it->second.push_back(entry);
    }
  }

  // Bucket by identical entry sets. Entries were appended in one pass over
  // `groups_`, so two destinations covering the same groups hold equal
  // vectors; the distinct-set count is bounded by the (small) group count.
  std::vector<std::pair<std::vector<proto::hello_msg::entry>, std::vector<node_id>>>
      buckets;
  for (const node_id dst : dst_order) {
    auto& entries = per_dst[dst];
    auto bucket = std::find_if(buckets.begin(), buckets.end(), [&](const auto& b) {
      return b.first == entries;
    });
    if (bucket == buckets.end()) {
      buckets.emplace_back(std::move(entries), std::vector<node_id>{dst});
    } else {
      bucket->second.push_back(dst);
    }
  }

  proto::hello_msg msg;
  msg.from = self_;
  msg.inc = inc_;
  msg.reply_requested = false;
  for (auto& [entries, dsts] : buckets) {
    msg.entries = std::move(entries);
    multicast_(dsts, msg);
  }

  // Discovery probes: rotate through roster nodes outside the scoped set
  // with a full reply-requested HELLO, healing lost-join gaps over time.
  if (opts_.anti_entropy_probes == 0 || cluster_roster_.empty()) return;
  std::unordered_set<node_id> covered(dst_order.begin(), dst_order.end());
  std::vector<node_id> probes;
  for (std::size_t step = 0;
       step < cluster_roster_.size() && probes.size() < opts_.anti_entropy_probes;
       ++step) {
    const node_id candidate =
        cluster_roster_[probe_cursor_++ % cluster_roster_.size()];
    if (candidate == self_ || covered.count(candidate) > 0) continue;
    probes.push_back(candidate);
  }
  probe_cursor_ %= cluster_roster_.size();
  if (probes.empty()) return;
  proto::hello_msg probe = build_hello(/*reply_requested=*/true);
  if (probe.entries.empty()) return;
  multicast_(probes, probe);
}

void group_maintenance::set_cluster_roster(std::vector<node_id> roster) {
  cluster_roster_ = std::move(roster);
  probe_cursor_ = 0;
}

proto::hello_msg group_maintenance::build_hello(bool reply_requested) const {
  proto::hello_msg msg;
  msg.from = self_;
  msg.inc = inc_;
  msg.reply_requested = reply_requested;
  for (const auto& [group, state] : groups_) {
    if (!state.local) continue;
    msg.entries.push_back({group, state.local->pid, state.local->candidate});
  }
  return msg;
}

proto::hello_ack_msg group_maintenance::build_snapshot(
    const proto::hello_msg* request) const {
  std::unordered_set<group_id> requested;
  if (request != nullptr) {
    for (const auto& entry : request->entries) requested.insert(entry.group);
  }
  proto::hello_ack_msg msg;
  msg.from = self_;
  msg.inc = inc_;
  for (const auto& [group, state] : groups_) {
    if (request != nullptr && requested.count(group) == 0) continue;
    for (const member_info& m : state.table.members_view()) {
      msg.entries.push_back({group, m.pid, m.node, m.inc, m.candidate});
    }
  }
  return msg;
}

const member_table& group_maintenance::table(group_id group) const {
  auto it = groups_.find(group);
  return it != groups_.end() ? it->second.table : empty_table;
}

std::vector<group_id> group_maintenance::groups() const {
  std::vector<group_id> out;
  out.reserve(groups_.size());
  for (const auto& [group, state] : groups_) out.push_back(group);
  return out;
}

std::optional<member_info> group_maintenance::local_member(group_id group) const {
  auto it = groups_.find(group);
  return it != groups_.end() ? it->second.local : std::nullopt;
}

std::vector<node_id> group_maintenance::group_roster(group_id group) const {
  std::vector<node_id> roster;
  auto it = groups_.find(group);
  if (it == groups_.end()) return roster;
  std::unordered_set<node_id> seen;
  for (const member_info& m : it->second.table.members_view()) {
    if (m.node == self_ || !seen.insert(m.node).second) continue;
    roster.push_back(m.node);
  }
  return roster;
}

}  // namespace omega::membership
