#include "adaptive/stability_scorer.hpp"

#include <algorithm>
#include <cmath>

namespace omega::adaptive {

void stability_scorer::on_member_seen(process_id pid, node_id node,
                                      incarnation inc, time_point now) {
  auto [it, inserted] = records_.try_emplace(pid);
  record& rec = it->second;
  if (inserted || inc > rec.inc) {
    rec = record{};
    rec.inc = inc;
    rec.first_seen = now;
  } else if (inc < rec.inc) {
    return;  // stale incarnation evidence
  }
  rec.node = node;
}

double stability_scorer::decayed_events(const record& rec,
                                        time_point now) const {
  if (rec.events <= 0.0) return 0.0;
  const double hl = to_seconds(opts_.event_halflife);
  if (hl <= 0.0) return rec.events;
  const double dt = std::max(0.0, to_seconds(now - rec.events_as_of));
  return rec.events * std::pow(0.5, dt / hl);
}

void stability_scorer::on_accusation_observed(process_id pid, incarnation inc,
                                              time_point acc_time,
                                              time_point now) {
  auto it = records_.find(pid);
  if (it == records_.end()) {
    on_member_seen(pid, node_id::invalid(), inc, now);
    it = records_.find(pid);
  }
  record& rec = it->second;
  if (inc < rec.inc) return;
  // The very first accusation time we see is the candidate's baseline (its
  // join time), not an event; only *advances* count as instability.
  if (rec.has_acc_time && acc_time > rec.last_acc_time) {
    rec.events = decayed_events(rec, now) + 1.0;
    rec.events_as_of = now;
  }
  if (!rec.has_acc_time || acc_time > rec.last_acc_time) {
    rec.last_acc_time = acc_time;
    rec.has_acc_time = true;
  }
}

void stability_scorer::on_member_removed(process_id pid, incarnation inc) {
  auto it = records_.find(pid);
  if (it != records_.end() && it->second.inc <= inc) records_.erase(it);
}

void stability_scorer::forget_node(node_id node) { link_loss_.erase(node); }

void stability_scorer::set_link_loss(node_id node, double loss_probability) {
  link_loss_[node] = std::clamp(loss_probability, 0.0, 1.0);
}

double stability_scorer::instability_events(process_id pid,
                                            time_point now) const {
  auto it = records_.find(pid);
  return it != records_.end() ? decayed_events(it->second, now) : 0.0;
}

double stability_scorer::score(process_id pid, time_point now) const {
  auto it = records_.find(pid);
  if (it == records_.end()) return 0.0;
  const record& rec = it->second;

  const double uptime_s = std::max(0.0, to_seconds(now - rec.first_seen));
  const double scale = std::max(to_seconds(opts_.uptime_scale), 1e-9);
  const double uptime_term = 1.0 - std::exp(-uptime_s / scale);

  const double events_term =
      std::exp(-opts_.event_weight * decayed_events(rec, now));

  double link_term = 1.0;  // unknown link: no penalty
  if (auto loss = link_loss_.find(rec.node); loss != link_loss_.end()) {
    const double sat = std::max(opts_.loss_saturation, 1e-9);
    link_term = std::clamp(1.0 - loss->second / sat, 0.0, 1.0);
  }

  const double w_total =
      std::max(opts_.w_uptime + opts_.w_events + opts_.w_link, 1e-9);
  return (opts_.w_uptime * uptime_term + opts_.w_events * events_term +
          opts_.w_link * link_term) /
         w_total;
}

}  // namespace omega::adaptive
