// Online NFD-S operating-point re-tuning (DESIGN.md §5).
//
// The paper's configurator answers "given the QoS bounds and the link,
// what is the *cheapest* operating point?" — it maximizes eta under the
// detection bound. That leaves measurable performance on the table when the
// link is good: with T^U_D fixed, the expected crash-detection latency of
// NFD-S is E[T_D] ~ delta + eta/2, so a smaller feasible delta means
// strictly faster detection at the same heartbeat rate.
//
// The retuner therefore supports two objectives:
//
//   paper_max_eta  — the original grid search (fd::configure): largest eta
//                    with delta = T^U_D - eta meeting E[T_MR] and P_A.
//   min_detection  — minimize delta + eta/2 subject to the same mistake-
//                    recurrence and accuracy constraints, the detection
//                    bound eta + delta <= T^U_D, and a heartbeat *rate
//                    budget* eta >= eta_budget, so adapting never sends
//                    faster than the static configuration it replaces.
//                    When no point within the budget is feasible (the link
//                    degraded beyond what the budget can monitor), it falls
//                    back to the paper solver: accuracy wins over cost, the
//                    same priority the paper gives it.
//
// Groups choose between the objectives through their *QoS class*
// (`qos_class`): an `interactive` group minimizes expected detection
// latency (min_detection), a `background` group minimizes heartbeat rate
// subject to the same QoS constraints (paper_max_eta — the paper's
// cheapest-point solver *is* the rate minimizer).
//
// One retuner instance serves one group and keeps *per-link* damping
// state: the group-level point is solved from the tracker's robust
// cluster aggregate (the base layer of the fd param_plan), and each peer
// with a confident tracked window gets its own independently damped
// operating point (the per-remote refinement layer), so a clean LAN link
// never inherits a WAN link's delta.
//
// Stability: re-solving every estimator tick would let estimate jitter
// oscillate (eta, delta) and thrash the cluster with RATE_REQ renegotiation.
// Two dampers make the retuner provably calm:
//
//   * hysteresis dead band — a candidate point replaces the current one
//     only if eta or delta moved by more than a relative band (or the
//     feasibility verdict flipped);
//   * min-dwell — once adopted, an operating point is held for at least
//     `min_dwell`, bounding the retune rate to one per dwell window no
//     matter how noisy the estimates are.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>
#include <unordered_map>

#include "common/ids.hpp"
#include "common/time.hpp"
#include "fd/configurator.hpp"
#include "fd/qos.hpp"

namespace omega::adaptive {

enum class tuning_objective {
  paper_max_eta,
  min_detection,
};

/// Per-group service class: what the group's retuner optimizes for once
/// the QoS constraints hold.
enum class qos_class {
  /// Minimize expected detection latency delta + eta/2 (leader handover
  /// speed matters more than traffic).
  interactive,
  /// Minimize heartbeat rate (largest feasible eta): monitoring cost
  /// matters more than detection slack inside the T^U_D bound.
  background,
};

[[nodiscard]] std::string_view to_string(qos_class cls);

struct retuner_options {
  tuning_objective objective = tuning_objective::min_detection;
  /// Heartbeat-rate budget for `min_detection`: the solver never picks
  /// eta below this. Zero means "derive from the QoS": T^U_D / 4, the
  /// cold-start rate, so adaptive never exceeds the frozen baseline.
  /// Values are clamped to at most 0.9 * T^U_D so a positive delta always
  /// fits inside the detection bound.
  duration eta_budget{0};
  /// What to do when no point within the budget can hold the QoS. True
  /// (default): hold the line on cost — eta stays at the budget, delta
  /// stretches to the full detection window (maximum heartbeats per
  /// freshness point, the best recurrence the budget buys) and the point
  /// is marked infeasible, mirroring the paper's best-effort caveat. The
  /// sending rate is then *provably* capped, which also stops transient
  /// estimate spikes from pinning peers to a fast rate through the 60 s
  /// RATE_REQ expiry. False: fall back to the paper solver, which may
  /// exceed the budget to restore accuracy.
  bool rate_cap_hard = true;
  /// Minimum time between two adopted retunes.
  duration min_dwell = sec(10);
  /// Relative dead band on eta and delta: candidate points inside the band
  /// do not replace the current one — unless the current point stopped
  /// satisfying the QoS under the latest estimate (a stale point is never
  /// kept for calm's sake).
  double eta_band = 0.20;
  double delta_band = 0.20;
  /// Grid resolution of the min-detection search: eta values tried between
  /// the budget and T^U_D / 2 (expected detection delta + eta/2 only grows
  /// with eta once the loss-driven delta >= (k-1)*eta dominates, so larger
  /// eta never wins), delta values tried per eta.
  int eta_steps = 16;
  int delta_steps = 100;
  /// Schmitt trigger on QoS feasibility. New points are solved with a
  /// stricter margin (`adopt_margin` > 1 scales the recurrence/accuracy
  /// requirements up), while the current point is only declared stale when
  /// it misses the *relaxed* requirement (`keep_margin` < 1). A point that
  /// was adopted with margin therefore cannot be invalidated by estimate
  /// jitter around the exact constraint boundary.
  double adopt_margin = 1.25;
  double keep_margin = 0.8;
  /// Round the link estimate up (conservatively) onto a coarse geometric
  /// grid before solving. This makes the solved operating point piecewise
  /// constant in the raw estimates: per-heartbeat estimator jitter lands in
  /// the same cell and produces bit-identical parameters, so the dead band
  /// and dwell timer only ever see *real* link changes. Disabling it is
  /// useful in tests that probe the solver itself.
  bool quantize_inputs = true;
  fd::configurator_options configurator{};
};

class retuner {
 public:
  /// `cls` selects the solving objective: `background` forces
  /// `paper_max_eta`; `interactive` keeps `opts.objective` (min_detection
  /// by default).
  retuner(fd::qos_spec qos, qos_class cls, retuner_options opts);
  retuner(fd::qos_spec qos, retuner_options opts)
      : retuner(qos, qos_class::interactive, opts) {}

  /// Pure solver (no hysteresis state): the operating point this objective
  /// picks for `link`. Falls back to `fd::cold_start_params` below the
  /// configurator's sample floor, exactly like `fd::configure`.
  [[nodiscard]] static fd::fd_params solve(const fd::qos_spec& qos,
                                           const fd::link_estimate& link,
                                           const retuner_options& opts);

  /// Does `params` satisfy the recurrence and accuracy constraints of
  /// `qos` under `link` (quantized per `opts`), scaled by `margin` (> 1
  /// stricter, < 1 more lenient)? True when the estimate has too few
  /// samples to judge.
  [[nodiscard]] static bool point_feasible(const fd::qos_spec& qos,
                                           const fd::link_estimate& link,
                                           const fd::fd_params& params,
                                           const retuner_options& opts,
                                           double margin = 1.0);

  /// One damped *group-level* re-tuning step at time `now`: solves for
  /// `link` (the cluster aggregate) and returns the new operating point iff
  /// it clears the dwell gate and moved outside the dead band (or
  /// feasibility flipped). Returns nullopt when the current point stands.
  [[nodiscard]] std::optional<fd::fd_params> evaluate(
      const fd::link_estimate& link, time_point now);

  /// Same damped step for one peer's own tracked link window. Each peer
  /// carries independent damping state (dwell timer, dead band anchor), so
  /// a WAN link re-tuning does not consume the LAN links' dwell windows.
  [[nodiscard]] std::optional<fd::fd_params> evaluate_peer(
      node_id peer, const fd::link_estimate& link, time_point now);

  /// Drops the per-peer damping state (peer left, or its window went
  /// stale and the group default applies again).
  void forget_peer(node_id peer);
  [[nodiscard]] bool has_peer(node_id peer) const {
    return peers_.find(peer) != peers_.end();
  }

  /// Group-level current point (the param_plan's group-default layer).
  [[nodiscard]] const fd::fd_params& current() const { return group_.current; }
  /// Per-peer current point; falls back to the group-level point when the
  /// peer has no refinement.
  [[nodiscard]] const fd::fd_params& current(node_id peer) const;
  /// Operating-point adoptions, group-level and per-peer combined.
  [[nodiscard]] std::uint64_t retune_count() const { return retune_count_; }
  [[nodiscard]] time_point last_retune() const { return group_.last_retune; }
  [[nodiscard]] const fd::qos_spec& qos() const { return qos_; }
  [[nodiscard]] qos_class service_class() const { return class_; }

  /// Expected crash-detection latency of an operating point under NFD-S
  /// (crash uniformly within a send interval): delta + eta / 2.
  [[nodiscard]] static double expected_detection_s(const fd::fd_params& p) {
    return to_seconds(p.delta) + to_seconds(p.eta) / 2.0;
  }

 private:
  /// Damping state of one operating point (the group default, or one
  /// per-peer refinement): hysteresis anchor + dwell timer.
  struct damped_state {
    fd::fd_params current;
    bool adopted_once = false;
    time_point last_retune{};
  };

  [[nodiscard]] std::optional<fd::fd_params> evaluate_damped(
      damped_state& state, const fd::link_estimate& link, time_point now);
  [[nodiscard]] bool outside_dead_band(const fd::fd_params& current,
                                       const fd::fd_params& candidate) const;

  fd::qos_spec qos_;
  qos_class class_;
  retuner_options opts_;
  damped_state group_;
  std::unordered_map<node_id, damped_state> peers_;
  std::uint64_t retune_count_ = 0;
};

}  // namespace omega::adaptive
