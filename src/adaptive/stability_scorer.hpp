// SEER-style per-candidate stability scoring (DESIGN.md §5).
//
// The accusation-time mechanism of Omega_lc / Omega_l already demotes
// processes *after* they misbehave; the scorer adds a forward-looking
// ranking signal: how stable has this candidate looked recently? Three
// observable ingredients, all derivable from traffic every node already
// receives (no new messages):
//
//   * uptime — how long the candidate's current incarnation has been seen
//     in the group (fresh recoveries score low, exactly the instability S1
//     suffers from);
//   * accusation history — every *advance* of a candidate's accusation time
//     (carried in its ALIVE payloads) is one observed instability event.
//     Events decay exponentially, so ancient history stops mattering;
//   * link quality — the measured loss toward the candidate's node: a
//     leader we can barely hear is a leader we will wrongly suspect.
//
// The score is in [0, 1], higher = more stable. It is *advisory*: electors
// consult it only when the join enabled stability ranking, and only to
// choose among candidates (see omega_lc: candidates within a tolerance of
// the best band are ranked by the usual (accusation time, pid) order, so
// the classic correctness argument is untouched once scores converge).
#pragma once

#include <cstdint>
#include <unordered_map>

#include "common/ids.hpp"
#include "common/time.hpp"

namespace omega::adaptive {

class stability_scorer {
 public:
  struct options {
    /// Uptime scale: score credit is 1 - exp(-uptime / uptime_scale).
    duration uptime_scale = sec(120);
    /// Half-life of an observed instability (accusation) event.
    duration event_halflife = sec(300);
    /// Score penalty steepness per (decayed) instability event.
    double event_weight = 1.0;
    /// Loss fraction that zeroes the link term (10% loss by default).
    double loss_saturation = 0.10;
    /// Blend weights (normalized internally).
    double w_uptime = 0.5;
    double w_events = 0.3;
    double w_link = 0.2;
  };

  stability_scorer() : stability_scorer(options{}) {}
  explicit stability_scorer(options opts) : opts_(opts) {}

  /// Membership evidence: `pid`'s incarnation `inc` hosted on `node` was
  /// seen at `now`. A higher incarnation resets uptime and history (the
  /// recovered process is a new member).
  void on_member_seen(process_id pid, node_id node, incarnation inc,
                      time_point now);

  /// A candidate's broadcast accusation time advanced: one observed
  /// instability event at `now`.
  void on_accusation_observed(process_id pid, incarnation inc,
                              time_point acc_time, time_point now);

  void on_member_removed(process_id pid, incarnation inc);

  /// Drops per-node link state (the node is known gone).
  void forget_node(node_id node);

  /// Current measured loss toward the node hosting a candidate.
  void set_link_loss(node_id node, double loss_probability);

  /// Stability score in [0, 1]; unknown processes score 0.
  [[nodiscard]] double score(process_id pid, time_point now) const;

  /// Decayed instability-event count (exposed for tests/metrics).
  [[nodiscard]] double instability_events(process_id pid, time_point now) const;

  [[nodiscard]] std::size_t tracked_count() const { return records_.size(); }

 private:
  struct record {
    node_id node;
    incarnation inc = 0;
    time_point first_seen{};
    time_point last_acc_time{};
    bool has_acc_time = false;
    double events = 0.0;        // decayed instability events
    time_point events_as_of{};  // decay reference point
  };

  [[nodiscard]] double decayed_events(const record& rec, time_point now) const;

  options opts_;
  std::unordered_map<process_id, record> records_;
  std::unordered_map<node_id, double> link_loss_;
};

}  // namespace omega::adaptive
