#include "adaptive/engine.hpp"

namespace omega::adaptive {

std::string_view to_string(tuning_mode mode) {
  switch (mode) {
    case tuning_mode::continuous: return "continuous";
    case tuning_mode::frozen: return "frozen";
    case tuning_mode::adaptive: return "adaptive";
  }
  return "unknown";
}

engine::engine(clock_source& clock, timer_service& timers, fd::fd_manager& fd,
               engine_options opts)
    : clock_(clock),
      fd_(fd),
      opts_(opts),
      tracker_(opts.tracker),
      scorer_(opts.scorer),
      tick_timer_(timers) {}

engine::~engine() { stop(); }

void engine::start() {
  if (running_) return;
  running_ = true;
  tick_timer_.arm_after(opts_.tick_interval, [this] { tick(); });
}

void engine::stop() {
  running_ = false;
  tick_timer_.cancel();
}

void engine::add_group(group_id group, const fd::qos_spec& qos) {
  retuners_[group] = std::make_unique<retuner>(qos, opts_.retuner);
  // Pin the cold-start point immediately: until the tracker has confident
  // estimates the adaptive instance behaves exactly like the frozen one
  // (and like the continuous one, whose configurator is still warming up).
  fd_.set_params_override(group, fd::cold_start_params(qos));
}

void engine::remove_group(group_id group) {
  retuners_.erase(group);
  fd_.clear_params_override(group);
}

void engine::on_link_sample(node_id peer, const fd::link_estimate& est,
                            time_point now) {
  tracker_.observe(peer, est, now);
  scorer_.set_link_loss(peer, est.loss_probability);
}

void engine::on_payload_observed(node_id from, incarnation inc,
                                 const proto::group_payload& payload,
                                 time_point now) {
  scorer_.on_member_seen(payload.pid, from, inc, now);
  if (payload.candidate) {
    scorer_.on_accusation_observed(payload.pid, inc, payload.accusation_time,
                                   now);
  }
}

void engine::on_member_removed(process_id pid, incarnation inc) {
  scorer_.on_member_removed(pid, inc);
}

void engine::on_node_dropped(node_id node) {
  tracker_.forget(node);
  scorer_.forget_node(node);
}

double engine::stability(process_id pid) const {
  return scorer_.score(pid, clock_.now());
}

const retuner* engine::retuner_for(group_id group) const {
  auto it = retuners_.find(group);
  return it != retuners_.end() ? it->second.get() : nullptr;
}

std::uint64_t engine::total_retunes() const {
  std::uint64_t n = 0;
  for (const auto& [group, rt] : retuners_) n += rt->retune_count();
  return n;
}

void engine::tick() {
  const time_point now = clock_.now();
  const fd::link_estimate binding = tracker_.aggregate(now);

  for (auto& [group, rt] : retuners_) {
    if (auto params = rt->evaluate(binding, now)) {
      fd_.set_params_override(group, *params);
    }
  }

  if (running_) {
    tick_timer_.arm_after(opts_.tick_interval, [this] { tick(); });
  }
}

}  // namespace omega::adaptive
