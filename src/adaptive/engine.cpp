#include "adaptive/engine.hpp"

#include <optional>
#include <utility>
#include <vector>

namespace omega::adaptive {

std::string_view to_string(tuning_mode mode) {
  switch (mode) {
    case tuning_mode::continuous: return "continuous";
    case tuning_mode::frozen: return "frozen";
    case tuning_mode::adaptive: return "adaptive";
  }
  return "unknown";
}

engine::engine(clock_source& clock, timer_service& timers, fd::fd_manager& fd,
               engine_options opts)
    : clock_(clock),
      fd_(fd),
      opts_(opts),
      tracker_(opts.tracker),
      scorer_(opts.scorer),
      tick_timer_(timers) {}

engine::~engine() { stop(); }

void engine::start() {
  if (running_) return;
  running_ = true;
  tick_timer_.arm_after(opts_.tick_interval, [this] { tick(); });
}

void engine::stop() {
  running_ = false;
  tick_timer_.cancel();
}

void engine::add_group(group_id group, const fd::qos_spec& qos,
                       qos_class cls) {
  retuners_[group] = std::make_unique<retuner>(qos, cls, opts_.retuner);
  // Pin the cold-start point as the group default immediately: until the
  // tracker has confident estimates the adaptive instance behaves exactly
  // like the frozen one (and like the continuous one, whose configurator
  // is still warming up).
  fd_.set_params_override(group, fd::cold_start_params(qos));
}

void engine::remove_group(group_id group) {
  retuners_.erase(group);
  fd_.clear_params_override(group);
}

void engine::on_link_sample(node_id peer, const fd::link_estimate& est,
                            time_point now) {
  tracker_.observe(peer, est, now);
  scorer_.set_link_loss(peer, est.loss_probability);
}

void engine::on_payload_observed(node_id from, incarnation inc,
                                 const proto::group_payload& payload,
                                 time_point now) {
  scorer_.on_member_seen(payload.pid, from, inc, now);
  if (payload.candidate) {
    scorer_.on_accusation_observed(payload.pid, inc, payload.accusation_time,
                                   now);
  }
}

void engine::observe_local_member(process_id pid, node_id self,
                                  incarnation inc, time_point now) {
  scorer_.on_member_seen(pid, self, inc, now);
}

void engine::observe_local_accusation(process_id pid, incarnation inc,
                                      time_point acc_time, time_point now) {
  scorer_.on_accusation_observed(pid, inc, acc_time, now);
}

void engine::on_member_removed(process_id pid, incarnation inc) {
  scorer_.on_member_removed(pid, inc);
}

void engine::on_group_member_dropped(group_id group, node_id node) {
  auto it = retuners_.find(group);
  if (it != retuners_.end()) it->second->forget_peer(node);
}

void engine::on_node_dropped(node_id node) {
  tracker_.forget(node);
  scorer_.forget_node(node);
  // Per-remote refinements for a gone node are stale policy: clear them so
  // a reappearing node starts from the group default, not the old link's
  // operating point.
  for (auto& [group, rt] : retuners_) {
    rt->forget_peer(node);
    fd_.clear_params_override(group, node);
  }
}

double engine::stability(process_id pid) const {
  return scorer_.score(pid, clock_.now());
}

const retuner* engine::retuner_for(group_id group) const {
  auto it = retuners_.find(group);
  return it != retuners_.end() ? it->second.get() : nullptr;
}

std::uint64_t engine::total_retunes() const {
  std::uint64_t n = 0;
  for (const auto& [group, rt] : retuners_) n += rt->retune_count();
  return n;
}

void engine::tick() {
  // Periodic retune pass: a causal root (retune events are inert anyway,
  // but rate renegotiations it triggers must not inherit a stale cause).
  obs::sink::activation causal_scope(sink_);
  const time_point now = clock_.now();
  const fd::link_estimate binding = tracker_.aggregate(now);
  // The tracked estimate is per peer, not per (group, peer): blend each
  // window once and reuse it across every group's retuner.
  std::vector<std::pair<node_id, std::optional<fd::link_estimate>>> peers;
  if (opts_.per_link) {
    for (node_id peer : tracker_.peers()) {
      peers.emplace_back(peer, tracker_.tracked(peer, now));
    }
  }

  for (auto& [group, rt] : retuners_) {
    // Group default from the robust cluster aggregate: the layer that
    // covers peers whose own window is not (yet) confident.
    if (auto params = rt->evaluate(binding, now)) {
      fd_.set_params_override(group, *params);
      if (sink_) {
        obs::trace_event ev;
        ev.kind = obs::event_kind::retune;
        ev.at = now;
        ev.group = group;
        ev.value = to_seconds(params->eta);
        sink_->record(ev);
      }
    }
    // Per-link refinements from each peer's own tracked window.
    for (const auto& [peer, est] : peers) {
      if (!est || est->samples < opts_.tracker.confidence_floor) {
        // Stale or unknown link: drop the refinement so the conservative
        // group default applies again (and damping restarts on return).
        if (rt->has_peer(peer)) {
          rt->forget_peer(peer);
          fd_.clear_params_override(group, peer);
        }
        continue;
      }
      if (auto params = rt->evaluate_peer(peer, *est, now)) {
        fd_.set_params_override(group, peer, *params);
        if (sink_) {
          obs::trace_event ev;
          ev.kind = obs::event_kind::retune;
          ev.at = now;
          ev.group = group;
          ev.peer = peer;  // per-link refinement (unset peer = group default)
          ev.value = to_seconds(params->eta);
          sink_->record(ev);
        }
      }
    }
  }

  if (running_) {
    tick_timer_.arm_after(opts_.tick_interval, [this] { tick(); });
  }
}

}  // namespace omega::adaptive
