// Adaptation engine: the measurement -> configuration loop (DESIGN.md §5).
//
// One engine runs inside each service instance (when enabled) and closes
// the loop the paper leaves open between "the configurator solved (eta,
// delta) once" and "the network keeps changing":
//
//   fd_manager link samples ──> link_tracker ──> per-peer windows +
//                                                robust cluster aggregate
//                                                      │ (periodic tick)
//   fd_manager param_plan <── per-group retuner (hysteresis + dwell) <──┘
//
// Adopted operating points are pushed into the failure detector's layered
// *param_plan*: the point solved from the cluster aggregate becomes the
// group default, and every peer with a confident tracked window gets a
// per-(group, remote) refinement solved from *its own* link estimate — so
// one bad WAN link no longer drags clean LAN links to its delta. Monitors
// pick up new deltas immediately and the next reconfiguration pass
// renegotiates sender rates (RATE_REQ through the existing
// rate_controller) toward the resolved per-remote etas. Each group's
// retuner carries the group's QoS class (`qos_class`): interactive groups
// minimize detection latency, background groups minimize heartbeat rate.
// The stability_scorer rides the same observation stream (ALIVE payloads)
// and serves candidate scores to electors that opted in.
//
// Tuning modes of a service instance:
//   continuous — the seed behaviour: fd_manager re-runs the paper
//                configurator every reconfig tick, undamped. No engine.
//   frozen     — the cold-start operating point is pinned forever (the
//                static baseline the adaptive bench compares against).
//   adaptive   — this engine: damped re-tuning with the min-detection
//                objective plus stability scoring.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>

#include "adaptive/link_tracker.hpp"
#include "adaptive/retuner.hpp"
#include "adaptive/stability_scorer.hpp"
#include "common/executor.hpp"
#include "common/ids.hpp"
#include "fd/fd_manager.hpp"
#include "obs/sink.hpp"
#include "proto/wire.hpp"

namespace omega::adaptive {

enum class tuning_mode {
  continuous,  // per-tick paper configurator (seed behaviour)
  frozen,      // cold-start operating point pinned forever
  adaptive,    // adaptation engine: damped min-detection re-tuning
};

[[nodiscard]] std::string_view to_string(tuning_mode mode);

struct engine_options {
  tuning_mode mode = tuning_mode::continuous;
  /// How often the engine re-reads the tracker and consults the retuners.
  duration tick_interval = sec(2);
  /// Emit per-(group, remote) refinements from each peer's own tracked
  /// window on top of the aggregate-solved group default. Off = the
  /// group-global behaviour (one cluster quantile drives every link),
  /// kept as the baseline `bench/fig10_perlink` compares against.
  bool per_link = true;
  link_tracker::options tracker{};
  retuner_options retuner{};
  stability_scorer::options scorer{};
};

class engine {
 public:
  engine(clock_source& clock, timer_service& timers, fd::fd_manager& fd,
         engine_options opts);
  ~engine();

  engine(const engine&) = delete;
  engine& operator=(const engine&) = delete;

  void start();
  void stop();

  /// Attaches the observability sink; adopted operating points emit retune
  /// trace events. Null disables.
  void set_sink(obs::sink* sink) { sink_ = sink; }

  /// Registers a group whose operating-point plan this engine manages;
  /// `cls` is the group's QoS class (objective of its retuner).
  void add_group(group_id group, const fd::qos_spec& qos,
                 qos_class cls = qos_class::interactive);
  void remove_group(group_id group);

  /// One link-quality sample from the failure detector's estimator.
  void on_link_sample(node_id peer, const fd::link_estimate& est,
                      time_point now);

  /// One received ALIVE payload: membership + accusation evidence for the
  /// stability scorer.
  void on_payload_observed(node_id from, incarnation inc,
                           const proto::group_payload& payload,
                           time_point now);

  /// Local-process evidence the ALIVE stream cannot provide: heartbeats are
  /// not self-delivered, so without these the scorer never observes the
  /// local pid, holds stability(self) at 0.0, and omega_lc's stage-1
  /// pre-filter can drop the node's own candidacy once peers' scores exceed
  /// the tolerance. The hosting service feeds the join and every
  /// self-accusation advance, mirroring what peers observe in our payloads.
  void observe_local_member(process_id pid, node_id self, incarnation inc,
                            time_point now);
  void observe_local_accusation(process_id pid, incarnation inc,
                                time_point acc_time, time_point now);

  void on_member_removed(process_id pid, incarnation inc);
  /// The FD dropped (group, node) — `fd_manager::drop` cleared the plan's
  /// refinement, so the retuner's per-peer damping state must go too or
  /// the two views desync and the refinement is never re-emitted.
  void on_group_member_dropped(group_id group, node_id node);
  void on_node_dropped(node_id node);

  /// Stability score of a candidate at the current clock (for electors).
  [[nodiscard]] double stability(process_id pid) const;

  [[nodiscard]] link_tracker& tracker() { return tracker_; }
  [[nodiscard]] stability_scorer& scorer() { return scorer_; }
  [[nodiscard]] const retuner* retuner_for(group_id group) const;
  [[nodiscard]] std::uint64_t total_retunes() const;
  [[nodiscard]] const engine_options& options() const { return opts_; }

 private:
  void tick();

  clock_source& clock_;
  fd::fd_manager& fd_;
  engine_options opts_;
  link_tracker tracker_;
  stability_scorer scorer_;
  std::unordered_map<group_id, std::unique_ptr<retuner>> retuners_;
  scoped_timer tick_timer_;
  obs::sink* sink_ = nullptr;
  bool running_ = false;
};

}  // namespace omega::adaptive
