#include "adaptive/link_tracker.hpp"

#include <algorithm>
#include <vector>
#include <cmath>

namespace omega::adaptive {

void link_tracker::observe(node_id peer, const fd::link_estimate& est,
                           time_point now) {
  // Estimates below the confidence floor still carry the estimator's
  // *prior* (default loss) rather than measurement; recording them would
  // bleed the prior into the smoothing window and walk the blended loss
  // through quantization cells as they age out — thrash, not signal.
  if (est.samples < opts_.confidence_floor) return;
  peer_record& rec = peers_[peer];
  rec.window.push_back(snapshot{now, est});
  prune(rec, now);
}

void link_tracker::forget(node_id peer) { peers_.erase(peer); }

std::vector<node_id> link_tracker::peers() const {
  std::vector<node_id> out;
  out.reserve(peers_.size());
  for (const auto& [peer, rec] : peers_) out.push_back(peer);
  return out;
}

void link_tracker::clear() { peers_.clear(); }

void link_tracker::prune(peer_record& rec, time_point now) const {
  while (rec.window.size() > opts_.max_snapshots) rec.window.pop_front();
  // Keep the newest snapshot unconditionally: silence must decay confidence
  // via `blend`, not erase the link.
  while (rec.window.size() > 1 && rec.window.front().at + opts_.window < now) {
    rec.window.pop_front();
  }
}

fd::link_estimate link_tracker::blend(const peer_record& rec,
                                      time_point now) const {
  // Unweighted mean over the in-window snapshots; the window itself is the
  // recency weighting (old snapshots age out entirely).
  double loss = 0.0;
  double delay = 0.0;
  double stddev = 0.0;
  std::size_t counted = 0;
  for (const snapshot& s : rec.window) {
    if (s.at + opts_.window < now) continue;
    loss += s.est.loss_probability;
    delay += to_seconds(s.est.delay_mean);
    stddev += to_seconds(s.est.delay_stddev);
    ++counted;
  }
  const snapshot& newest = rec.window.back();
  fd::link_estimate out = newest.est;
  if (counted > 0) {
    const double n = static_cast<double>(counted);
    out.loss_probability = loss / n;
    out.delay_mean = from_seconds(delay / n);
    out.delay_stddev = from_seconds(stddev / n);
  }

  // Staleness decay: confidence halves (by default) per `stale_after` of
  // silence beyond the first grace period.
  const duration age = now - newest.at;
  if (age > opts_.stale_after && opts_.stale_after > duration{0}) {
    const double periods =
        to_seconds(age - opts_.stale_after) / to_seconds(opts_.stale_after);
    const double factor = std::pow(opts_.stale_decay, periods);
    out.samples = static_cast<std::size_t>(
        static_cast<double>(newest.est.samples) * factor);
  }
  return out;
}

std::optional<fd::link_estimate> link_tracker::tracked(node_id peer,
                                                       time_point now) const {
  auto it = peers_.find(peer);
  if (it == peers_.end() || it->second.window.empty()) return std::nullopt;
  return blend(it->second, now);
}

fd::link_estimate link_tracker::aggregate(time_point now) const {
  std::vector<double> losses;
  std::vector<double> delays;
  std::vector<double> stddevs;
  std::size_t min_samples = 0;
  for (const auto& [peer, rec] : peers_) {
    if (rec.window.empty()) continue;
    const fd::link_estimate est = blend(rec, now);
    if (est.samples < opts_.confidence_floor) continue;
    losses.push_back(est.loss_probability);
    delays.push_back(to_seconds(est.delay_mean));
    stddevs.push_back(to_seconds(est.delay_stddev));
    // Confidence of the aggregate is the confidence of its least-known link.
    min_samples = losses.size() == 1 ? est.samples
                                     : std::min(min_samples, est.samples);
  }
  fd::link_estimate agg;
  agg.loss_probability = 0.0;
  agg.delay_mean = duration{0};
  agg.delay_stddev = duration{0};
  agg.samples = 0;
  if (losses.empty()) return agg;

  const double q = std::clamp(opts_.aggregate_quantile, 0.0, 1.0);
  const auto at_quantile = [&](std::vector<double>& v) {
    const auto idx = static_cast<std::size_t>(
        std::ceil(q * static_cast<double>(v.size() - 1)));
    std::nth_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(idx),
                     v.end());
    return v[idx];
  };
  agg.loss_probability = at_quantile(losses);
  agg.delay_mean = from_seconds(at_quantile(delays));
  agg.delay_stddev = from_seconds(at_quantile(stddevs));
  agg.samples = min_samples;
  return agg;
}

duration link_tracker::delay_trend_stddev(node_id peer, time_point now) const {
  auto it = peers_.find(peer);
  if (it == peers_.end() || it->second.window.empty()) return duration{0};
  double sum = 0.0;
  double sum_sq = 0.0;
  std::size_t n = 0;
  for (const snapshot& s : it->second.window) {
    if (s.at + opts_.window < now) continue;
    const double d = to_seconds(s.est.delay_mean);
    sum += d;
    sum_sq += d * d;
    ++n;
  }
  if (n < 2) return duration{0};
  const double mean = sum / static_cast<double>(n);
  const double var =
      std::max(0.0, sum_sq / static_cast<double>(n) - mean * mean);
  return from_seconds(std::sqrt(var));
}

}  // namespace omega::adaptive
