// Per-peer link-quality tracking for the adaptation engine (DESIGN.md §5).
//
// The failure detector's link-quality estimator produces a point estimate
// per remote on every received heartbeat. The tracker turns that stream
// into something a *re-tuning policy* can trust:
//
//  * a sliding window of recent estimate snapshots per peer, so the view
//    smooths over per-heartbeat jitter instead of chasing it;
//  * staleness decay — a peer we have not heard from recently has an
//    estimate of *decaying confidence*. Confidence is expressed through the
//    `samples` field of the returned `fd::link_estimate`: it shrinks
//    geometrically with silence, and once it falls below the configurator's
//    `min_samples` the solver automatically falls back to the conservative
//    cold-start operating point. Staleness therefore degrades gracefully
//    into "we do not know this link anymore" without a separate code path;
//  * a cluster *aggregate*: the element-wise worst link among peers with
//    live confidence. Group-wide heartbeat parameters must satisfy the QoS
//    on every monitored link, so the binding constraint is the worst one.
#pragma once

#include <deque>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/ids.hpp"
#include "common/time.hpp"
#include "fd/qos.hpp"

namespace omega::adaptive {

class link_tracker {
 public:
  struct options {
    /// Snapshots older than this are dropped from the smoothing window
    /// (the newest snapshot is always kept so silence decays confidence
    /// instead of erasing the link outright).
    duration window = sec(30);
    /// Hard cap on snapshots retained per peer.
    std::size_t max_snapshots = 64;
    /// Age at which confidence starts decaying.
    duration stale_after = sec(10);
    /// Multiplier applied to the sample count per `stale_after` of silence
    /// beyond the first.
    double stale_decay = 0.5;
    /// Peers whose (decayed) sample count is below this do not contribute
    /// to the aggregate: a peer that just (re)appeared or went silent has
    /// nothing trustworthy to say about the network, and letting it drag
    /// the aggregate's confidence down would flip every retuner to the
    /// cold-start point on each churn event. Matches the configurator's
    /// default `min_samples`.
    std::size_t confidence_floor = 16;
    /// Which per-peer quantile the aggregate reports for loss/delay.
    /// 1.0 = strict worst link. The default 0.9 (second-worst in a
    /// 12-node cluster) is robust: one peer's estimator excursion — a
    /// 2-sigma loss epoch happens somewhere in the cluster every few
    /// minutes — cannot move the group operating point on its own.
    double aggregate_quantile = 0.9;
  };

  link_tracker() : link_tracker(options{}) {}
  explicit link_tracker(options opts) : opts_(opts) {}

  /// Feeds one estimator snapshot for `peer` taken at `now`. Snapshots
  /// below the confidence floor are ignored (they reflect the estimator's
  /// prior, not the link).
  void observe(node_id peer, const fd::link_estimate& est, time_point now);

  /// Drops all state for one peer (it left or its node is known dead).
  void forget(node_id peer);
  void clear();

  /// Smoothed estimate for one peer with staleness-decayed confidence, or
  /// nullopt if the peer was never observed.
  [[nodiscard]] std::optional<fd::link_estimate> tracked(node_id peer,
                                                         time_point now) const;

  /// Binding estimate for a group-wide operating point: the per-field
  /// `aggregate_quantile` of loss / delay mean / delay stddev across
  /// confident peers (1.0 = strict element-wise worst link; the default
  /// 0.9 is robust to a single peer's estimator excursion at the price of
  /// ignoring the one worst link), with the min (decayed) sample count as
  /// confidence. Returns a zero-sample estimate when no confident peer
  /// exists.
  [[nodiscard]] fd::link_estimate aggregate(time_point now) const;

  /// Delay jitter across the smoothing window: the standard deviation of
  /// the windowed delay-mean snapshots (route flapping shows up here long
  /// before the per-heartbeat stddev moves).
  [[nodiscard]] duration delay_trend_stddev(node_id peer, time_point now) const;

  [[nodiscard]] std::size_t peer_count() const { return peers_.size(); }

  /// All peers with any tracked window (order unspecified). The per-link
  /// retuning loop walks this and filters by `tracked(...)->samples`.
  [[nodiscard]] std::vector<node_id> peers() const;

 private:
  struct snapshot {
    time_point at{};
    fd::link_estimate est;
  };
  struct peer_record {
    std::deque<snapshot> window;  // oldest first
  };

  void prune(peer_record& rec, time_point now) const;
  [[nodiscard]] fd::link_estimate blend(const peer_record& rec,
                                        time_point now) const;

  options opts_;
  std::unordered_map<node_id, peer_record> peers_;
};

}  // namespace omega::adaptive
